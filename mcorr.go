package mcorr

import (
	"fmt"
	"io"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/collector"
	"mcorr/internal/core"
	"mcorr/internal/diagnose"
	"mcorr/internal/manager"
	"mcorr/internal/mathx"
	"mcorr/internal/obs"
	"mcorr/internal/shard"
	"mcorr/internal/shardnet"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// Core model surface.
type (
	// Point is one joint observation of a measurement pair.
	Point = mathx.Point2
	// ModelConfig configures a pairwise model (see core.Config).
	ModelConfig = core.Config
	// Model is the paper's pairwise correlation model M = (G, V).
	Model = core.Model
	// StepResult is the outcome of scoring one observation.
	StepResult = core.StepResult
	// Explanation is the model's human-readable account of one
	// observation: the paper's "problematic measurement ranges".
	Explanation = core.Explanation
	// CellInfo is one grid cell as measurement-value ranges.
	CellInfo = core.CellInfo
	// ModelDiagnostics summarizes a model's internal state.
	ModelDiagnostics = core.Diagnostics
	// GridConfig controls the adaptive discretization.
	GridConfig = core.GridConfig
	// Grid is the discretized measurement space.
	Grid = core.Grid
	// KernelKind selects the spatial-closeness kernel.
	KernelKind = core.KernelKind
	// UpdateRule selects the matrix update rule.
	UpdateRule = core.UpdateRule
)

// Kernel and update-rule constants (see the core package).
const (
	KernelHarmonic = core.KernelHarmonic
	KernelProduct  = core.KernelProduct
	KernelUniform  = core.KernelUniform

	UpdateKernelBayes = core.UpdateKernelBayes
	UpdateDirichlet   = core.UpdateDirichlet
)

// TrainModel builds a pairwise model from history points.
func TrainModel(history []Point, cfg ModelConfig) (*Model, error) {
	return core.Train(history, cfg)
}

// TimeConditionedModel keeps one transition matrix per time-of-day bucket
// over a shared grid (extension; see core.TimeConditioned).
type TimeConditionedModel = core.TimeConditioned

// TrainTimeConditionedModel builds a time-conditioned model from a
// regularly sampled history starting at start with the given step.
func TrainTimeConditionedModel(history []Point, start time.Time, step time.Duration, buckets int, cfg ModelConfig) (*TimeConditionedModel, error) {
	return core.TrainTimeConditioned(history, start, step, buckets, cfg)
}

// FitnessFromRow computes the paper's rank-based fitness score
// Q = 1 − (π(c_h) − 1)/s for a transition distribution row and the cell h
// the observation landed in.
func FitnessFromRow(row []float64, h int) float64 { return core.FitnessFromRow(row, h) }

// RankInRow returns the paper's ranking function π(c_h): the 1-based rank
// of cell h by decreasing probability (ties broken by index).
func RankInRow(row []float64, h int) int { return core.RankInRow(row, h) }

// Time-series surface.
type (
	// MeasurementID names a metric on a machine.
	MeasurementID = timeseries.MeasurementID
	// Series is one measurement's regular time series.
	Series = timeseries.Series
	// Dataset is a set of measurements on a shared grid.
	Dataset = timeseries.Dataset
	// Sample is one observation flowing through the pipeline.
	Sample = tsdb.Sample
	// Store is the in-memory time-series database.
	Store = tsdb.Store
)

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return timeseries.NewDataset() }

// NewSeries allocates an empty series.
func NewSeries(id MeasurementID, start time.Time, step time.Duration) (*Series, error) {
	return timeseries.NewSeries(id, start, step)
}

// NewStore returns an in-memory time-series store.
func NewStore(step time.Duration, retention int) (*Store, error) {
	return tsdb.NewStore(step, retention)
}

// Manager surface.
type (
	// ManagerConfig configures the model fleet.
	ManagerConfig = manager.Config
	// Manager owns one model per measurement pair.
	Manager = manager.Manager
	// Row is one synchronized observation of all measurements.
	Row = manager.Row
	// StepReport is the fleet's per-sample scoring output.
	StepReport = manager.StepReport
	// Pair is an unordered measurement pair.
	Pair = manager.Pair
	// Localization ranks machines by average fitness.
	Localization = manager.Localization
	// ShardCoordinator is the sharded scoring fabric: the pair graph
	// partitioned across N manager shards with centrally merged,
	// bit-identical Q^a/Q aggregation (see WithShards).
	ShardCoordinator = shard.Coordinator
	// ShardNetCoordinator is the networked scoring fabric: the same
	// partition fanned out to worker processes over TCP, with outcomes
	// returned through the collector's exactly-once delivery and merged
	// by the same central aggregator (see NewShardNetFleet).
	ShardNetCoordinator = shardnet.Coordinator
	// ShardNetConfig configures the networked fabric.
	ShardNetConfig = shardnet.Config
	// ShardNetWorkerConfig configures one networked shard worker process.
	ShardNetWorkerConfig = shardnet.WorkerConfig
	// ShardNetWorker is a networked shard scoring worker (see mcshard).
	ShardNetWorker = shardnet.Worker
)

// NewShardNetFleet trains the pair graph, partitions it across the
// configured worker processes (same rendezvous assignment as WithShards),
// ships each worker its models, and returns the coordinator. The merged
// Q^a/Q trajectory is bit-identical to the in-process fabrics for any
// worker count.
func NewShardNetFleet(history *Dataset, cfg ShardNetConfig) (*ShardNetCoordinator, error) {
	return shardnet.New(history, cfg)
}

// ListenShardNetWorker binds a networked shard worker to addr (":0"
// picks a free port). Call Serve on the result to accept coordinator
// sessions; see cmd/mcshard for the standalone binary.
func ListenShardNetWorker(addr string, cfg ShardNetWorkerConfig) (*ShardNetWorker, error) {
	return shardnet.ListenWorker(addr, cfg)
}

// Fleet is the scoring surface shared by the single Manager and the
// sharded ShardCoordinator: everything a monitor needs to score rows,
// read the three-level fitness state, and localize problems. Both
// implementations produce bit-identical trajectories over the same rows.
type Fleet interface {
	// Step scores one synchronized row across every trained link.
	Step(Row) StepReport
	// Run replays a dataset through Step in time order.
	Run(ds *Dataset, from, to time.Time) ([]StepReport, error)
	// IDs returns the monitored measurements.
	IDs() []MeasurementID
	// Pairs returns every trained link in canonical order.
	Pairs() []Pair
	// Steps counts rows that produced a system score.
	Steps() int
	// SystemMean is the running mean system fitness Q.
	SystemMean() float64
	// MeasurementMeans is the running mean Q^a per measurement.
	MeasurementMeans() map[MeasurementID]float64
	// Localize ranks machines by mean fitness, worst first.
	Localize() Localization
	// ResetAccumulators clears the running means.
	ResetAccumulators()
	// SetAdaptive toggles online model updating.
	SetAdaptive(bool)
	// ResetChains clears every model's Markov position.
	ResetChains()
	// Close releases worker pools.
	Close()
}

// Compile-time proof that both fleet shapes satisfy the interface.
var (
	_ Fleet = (*Manager)(nil)
	_ Fleet = (*ShardCoordinator)(nil)
	_ Fleet = (*ShardNetCoordinator)(nil)
)

// ShardFor returns the shard in [0, shards) that owns the given pair
// under the fabric's rendezvous hashing — useful for capacity planning
// and for locating a pair's models on disk (data-dir/shard-<k>/).
func ShardFor(p Pair, shards int) int { return shard.Assign(p.String(), shards) }

// NewManager trains one model per pair of measurements in history.
func NewManager(history *Dataset, cfg ManagerConfig) (*Manager, error) {
	return manager.New(history, cfg)
}

// LoadModel restores a pairwise model saved with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// LoadManager restores a manager (and every trained pair model) saved
// with Manager.Save, attaching the given alarm sink (nil discards).
func LoadManager(r io.Reader, sink AlarmSink) (*Manager, error) {
	return manager.LoadManager(r, sink)
}

// Alarm surface.
type (
	// Alarm is one problem notification.
	Alarm = alarm.Alarm
	// AlarmSink consumes alarms.
	AlarmSink = alarm.Sink
	// MemorySink records alarms in memory.
	MemorySink = alarm.MemorySink
	// ChannelSink forwards alarms to a channel.
	ChannelSink = alarm.ChannelSink
)

// Alarm severity and scope constants.
const (
	SeverityInfo     = alarm.SeverityInfo
	SeverityWarning  = alarm.SeverityWarning
	SeverityCritical = alarm.SeverityCritical

	ScopePair        = alarm.ScopePair
	ScopeMeasurement = alarm.ScopeMeasurement
	ScopeSystem      = alarm.ScopeSystem
)

// NewChannelSink returns an alarm sink backed by a buffered channel.
func NewChannelSink(capacity int) *ChannelSink { return alarm.NewChannelSink(capacity) }

// NewDeduper wraps a sink with a holdoff window per alarm key.
func NewDeduper(next AlarmSink, holdoff time.Duration) AlarmSink {
	return alarm.NewDeduper(next, holdoff)
}

// Collector surface.
type (
	// CollectorServer receives agent sample streams over TCP.
	CollectorServer = collector.Server
	// CollectorAgent ships samples from one machine.
	CollectorAgent = collector.Agent
	// ReliableAgent is a collector agent with reconnection, backoff and
	// a bounded resend buffer.
	ReliableAgent = collector.ReliableAgent
	// ReliableConfig tunes a ReliableAgent.
	ReliableConfig = collector.ReliableConfig
)

// NewReliableAgent returns an agent that reconnects with backoff and
// buffers samples across outages.
func NewReliableAgent(addr, name string, cfg ReliableConfig) *ReliableAgent {
	return collector.NewReliableAgent(addr, name, cfg)
}

// NewEscalator wraps a sink with an escalation policy: count repeats of
// one condition within window publish an additional critical alarm.
func NewEscalator(next AlarmSink, count int, window time.Duration) AlarmSink {
	return alarm.NewEscalator(next, count, window)
}

// NewCollectorServer returns a collector server feeding the store.
func NewCollectorServer(store *Store) (*CollectorServer, error) {
	return collector.NewServer(store, nil)
}

// Observability surface.
type (
	// OpsServer serves the process's observability endpoints: /metrics
	// (Prometheus text format), /vars (JSON), /healthz, /statusz (recent
	// pipeline spans) and /debug/pprof.
	OpsServer = obs.OpsServer
)

// ServeOps starts the ops HTTP server on addr (e.g. ":6060") for the
// process-wide metric registry and tracer. Close the returned server to
// stop it.
func ServeOps(addr string) (*OpsServer, error) { return obs.ServeOps(addr) }

// RegisterBuildInfo publishes the mcorr_build_info identity gauge
// (constant 1, labeled with the binary's version, the Go runtime version
// and the shard count) on the process-wide registry. Call once at
// startup; a later call replaces the previous series.
func RegisterBuildInfo(version string, shards int) { obs.RegisterBuildInfo(version, shards) }

// DialCollector connects an agent to a collector server.
func DialCollector(addr, agentName string) (*CollectorAgent, error) {
	return collector.Dial(addr, agentName)
}

// DialCollectorTenant connects an agent to a collector server, naming the
// tenant that owns the agent's samples in the hello. An empty tenant
// emits the legacy hello, which a multi-tenant server routes to its
// default tenant.
func DialCollectorTenant(addr, agentName, tenant string) (*CollectorAgent, error) {
	return collector.DialTenant(addr, agentName, tenant)
}

// MonitorOption customizes monitor construction (see WithShards).
type MonitorOption func(*monitorOptions)

type monitorOptions struct {
	shards     int
	scoreQueue int
	diagnosis  *DiagnosisConfig
	discovery  *DiscoveryConfig
	// tenantOwned suppresses the monitor-level /api/v1/ registration: a
	// tenant's monitor must not shadow the registry-wide TenantAPI that
	// dispatches to every tenant by name.
	tenantOwned bool
}

// withTenantOwnedAPI marks the monitor as owned by a Tenant, which
// mounts the API surface itself (through the registry's TenantAPI).
func withTenantOwnedAPI() MonitorOption {
	return func(o *monitorOptions) { o.tenantOwned = true }
}

// WithShards partitions the monitor's pair graph across n manager shards
// (the sharded scoring fabric; see ShardCoordinator). n <= 1 keeps the
// single-manager path. Fitness trajectories are bit-identical for every
// shard count.
func WithShards(n int) MonitorOption {
	return func(o *monitorOptions) { o.shards = n }
}

// WithScoreQueue bounds a row queue of the given depth between ingest and
// the scoring fleet, so row assembly (store queries) overlaps with
// scoring. A full queue blocks ingest — explicit backpressure, never
// shedding — and a single consumer scores rows in time order, so fitness
// trajectories are bit-identical to the unqueued path. depth <= 0 keeps
// the inline path.
func WithScoreQueue(depth int) MonitorOption {
	return func(o *monitorOptions) { o.scoreQueue = depth }
}

// Monitor glues a store and a scoring fleet together for streaming use:
// ingest samples as they arrive, and complete rows are scored
// automatically in time order.
type Monitor struct {
	store      *Store
	fleet      Fleet
	coord      *ShardCoordinator // non-nil iff the fleet is sharded
	step       time.Duration
	cursor     time.Time
	ids        []MeasurementID
	scoreQueue int              // bounded row-queue depth (0 = score inline)
	diag       *DiagnosisEngine // non-nil iff built with WithDiagnosis
	api        *diagnose.API    // per-fleet API (nil unless diagnosis is on)
}

// newFleet trains either a single manager or a sharded coordinator.
func newFleet(history *Dataset, cfg ManagerConfig, shards int) (Fleet, *ShardCoordinator, error) {
	if shards > 1 {
		coord, err := shard.New(history, shard.Config{Shards: shards, Manager: cfg})
		if err != nil {
			return nil, nil, err
		}
		return coord, coord, nil
	}
	mgr, err := manager.New(history, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mgr, nil, nil
}

// NewMonitor trains a scoring fleet on history and returns a monitor
// whose cursor starts at the end of the history window. By default the
// fleet is one Manager; WithShards(n) partitions it across n shards.
func NewMonitor(history *Dataset, cfg ManagerConfig, opts ...MonitorOption) (*Monitor, error) {
	var o monitorOptions
	for _, opt := range opts {
		opt(&o)
	}
	ids := history.IDs()
	if len(ids) < 2 {
		return nil, fmt.Errorf("monitor needs at least 2 measurements, got %d", len(ids))
	}
	step := history.Get(ids[0]).Step
	var diag *DiagnosisEngine
	if o.diagnosis != nil {
		// The engine wraps the alarm sink before the fleet exists so it
		// sees the full stream from the first scored row.
		diag = diagnose.NewEngine(*o.diagnosis)
		cfg.Sink = diag.WrapSink(cfg.Sink)
	}
	var (
		fleet Fleet
		coord *ShardCoordinator
		err   error
	)
	if o.discovery != nil {
		var df *discoveryFleet
		df, err = newDiscoveryFleet(history, cfg, *o.discovery, o.shards)
		if err != nil {
			return nil, err
		}
		fleet, coord = df, df.coord
	} else if fleet, coord, err = newFleet(history, cfg, o.shards); err != nil {
		return nil, err
	}
	var api *diagnose.API
	if diag != nil {
		api = wireDiagnosis(diag, fleet)
		if !o.tenantOwned {
			obs.RegisterOpsHandler("/api/v1/", api)
		}
	}
	store, err := tsdb.NewStore(step, 0)
	if err != nil {
		fleet.Close()
		return nil, err
	}
	cursor := time.Time{}
	for _, id := range ids {
		if end := history.Get(id).End(); end.After(cursor) {
			cursor = end
		}
	}
	return &Monitor{store: store, fleet: fleet, coord: coord, step: step, cursor: cursor, ids: ids, scoreQueue: o.scoreQueue, diag: diag, api: api}, nil
}

// Fleet exposes the scoring fleet (a *Manager or a *ShardCoordinator).
func (m *Monitor) Fleet() Fleet { return m.fleet }

// Manager exposes the underlying model fleet when the monitor is
// unsharded; it returns nil for a sharded monitor (use Fleet, or
// Coordinator for the shard-specific surface).
func (m *Monitor) Manager() *Manager {
	f := m.fleet
	if df, ok := f.(*discoveryFleet); ok {
		f = df.inner
	}
	if mgr, ok := f.(*Manager); ok {
		return mgr
	}
	return nil
}

// Discovery exposes the discovery-bounded fleet surface, or nil when the
// monitor was built without WithPairBudget/WithDiscovery.
func (m *Monitor) Discovery() DiscoveryFleet {
	if df, ok := m.fleet.(*discoveryFleet); ok {
		return df
	}
	return nil
}

// Coordinator exposes the sharded fabric, or nil when unsharded.
func (m *Monitor) Coordinator() *ShardCoordinator { return m.coord }

// Diagnosis exposes the incident diagnosis engine, or nil when the
// monitor was built without WithDiagnosis.
func (m *Monitor) Diagnosis() *DiagnosisEngine { return m.diag }

// Shards returns the monitor's current shard count (1 when unsharded).
func (m *Monitor) Shards() int {
	if m.coord != nil {
		return m.coord.NumShards()
	}
	return 1
}

// Reshard repartitions a sharded monitor across n shards without
// retraining or disturbing the fitness trajectory (see
// ShardCoordinator.Reshard). It returns the number of pair models that
// changed owner, and an error on an unsharded monitor.
func (m *Monitor) Reshard(n int) (int, error) {
	if m.coord == nil {
		return 0, fmt.Errorf("monitor: not sharded; construct with WithShards to reshard")
	}
	return m.coord.Reshard(n)
}

// Cursor returns the timestamp of the next row the monitor will score.
func (m *Monitor) Cursor() time.Time { return m.cursor }

// Ingest stores the samples and scores every row that became complete
// (all monitored measurements present) up to the newest common timestamp.
// It returns the reports for the rows scored by this call. The ingest →
// score pipeline is traced (span "monitor.ingest" on the default obs
// tracer, visible at /statusz of an ops server).
func (m *Monitor) Ingest(samples ...Sample) ([]StepReport, error) {
	sp := obs.StartSpan("monitor.ingest")
	defer sp.End()
	sp.Phase("ingest")
	if err := m.store.AppendBatch(samples); err != nil {
		return nil, err
	}
	sp.Phase("score")
	// Rows are complete up to the minimum last-sample time.
	var ready time.Time
	for i, id := range m.ids {
		last, ok := m.store.LastTime(id)
		if !ok {
			return nil, nil // some measurement has no data yet
		}
		if i == 0 || last.Before(ready) {
			ready = last
		}
	}
	return m.flushUntil(ready.Add(m.step)), nil
}

// FlushUpTo forces scoring of all rows before deadline even if some
// measurements are missing samples (gaps reset the affected links).
func (m *Monitor) FlushUpTo(deadline time.Time) []StepReport {
	return m.flushUntil(deadline)
}

// scoreRow steps the fleet and, when diagnosis is attached, feeds the
// finished report to the engine — after scoring, never inside it, so the
// diagnosis layer stays off the Manager.Step hot path.
func (m *Monitor) scoreRow(row Row) StepReport {
	report := m.fleet.Step(row)
	if m.diag != nil {
		m.diag.Observe(report)
	}
	return report
}

func (m *Monitor) flushUntil(until time.Time) []StepReport {
	if m.scoreQueue <= 0 {
		var reports []StepReport
		for m.cursor.Before(until) {
			reports = append(reports, m.scoreRow(m.nextRow()))
		}
		return reports
	}
	// Pipelined path: row assembly (store queries) runs ahead of scoring
	// through a bounded queue. A single consumer scores in time order —
	// exactly the inline order, so trajectories stay bit-identical — and
	// a full queue blocks this producer rather than dropping rows.
	rows := make(chan Row, m.scoreQueue)
	done := make(chan []StepReport, 1)
	go func() {
		var reports []StepReport
		for row := range rows {
			reports = append(reports, m.scoreRow(row))
		}
		done <- reports
	}()
	for m.cursor.Before(until) {
		row := m.nextRow()
		select {
		case rows <- row:
		default:
			obsFlowRowBlocked.Inc()
			rows <- row // backpressure: wait for the scorer, never shed
		}
		obsFlowRowDepth.Set(float64(len(rows)))
	}
	close(rows)
	reports := <-done
	obsFlowRowDepth.Set(0)
	return reports
}

// nextRow assembles the row at the cursor from the store and advances
// the cursor one step.
func (m *Monitor) nextRow() Row {
	ds := m.store.QueryAll(m.cursor, m.cursor.Add(m.step))
	row := Row{Time: m.cursor, Values: make(map[MeasurementID]float64, len(m.ids))}
	for _, id := range m.ids {
		if s := ds.Get(id); s != nil && s.Len() > 0 {
			row.Values[id] = s.Values[0]
		}
	}
	m.cursor = m.cursor.Add(m.step)
	return row
}
