package mcorr_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// ingestRows streams n full rows into a plain monitor and returns the
// reports.
func ingestRows(t *testing.T, mon *mcorr.Monitor, ds *timeseries.Dataset, from time.Time, n int) []mcorr.StepReport {
	t.Helper()
	var out []mcorr.StepReport
	for k := 0; k < n; k++ {
		tm := from.Add(time.Duration(k) * timeseries.SampleStep)
		var batch []mcorr.Sample
		for _, id := range ds.IDs() {
			s := ds.Get(id)
			if i, ok := s.IndexOf(tm); ok {
				batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
			}
		}
		rep, err := mon.Ingest(batch...)
		if err != nil {
			t.Fatalf("Ingest row %d: %v", k, err)
		}
		out = append(out, rep...)
	}
	return out
}

// TestMonitorWithShardsBitIdentical drives the public streaming surface:
// a sharded monitor must produce bit-identical reports to an unsharded
// one over the same sample stream, before and after a live reshard.
func TestMonitorWithShardsBitIdentical(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "W", Machines: 2, Days: 2, Seed: 23,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, day1)
	mcfg := mcorr.ManagerConfig{Model: mcorr.ModelConfig{Adaptive: true}}

	plain, err := mcorr.NewMonitor(history, mcfg)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	defer plain.Fleet().Close()
	if plain.Manager() == nil || plain.Coordinator() != nil || plain.Shards() != 1 {
		t.Fatal("unsharded monitor accessors inconsistent")
	}
	if _, err := plain.Reshard(2); err == nil {
		t.Error("Reshard on an unsharded monitor: want error")
	}

	shardedMon, err := mcorr.NewMonitor(history, mcfg, mcorr.WithShards(3))
	if err != nil {
		t.Fatalf("NewMonitor(WithShards): %v", err)
	}
	defer shardedMon.Fleet().Close()
	if shardedMon.Manager() != nil {
		t.Error("sharded monitor: Manager() should be nil")
	}
	if shardedMon.Coordinator() == nil || shardedMon.Shards() != 3 {
		t.Fatalf("sharded monitor: Coordinator=%v Shards=%d", shardedMon.Coordinator(), shardedMon.Shards())
	}

	const total = 24
	want := ingestRows(t, plain, ds, day1, total)
	got := ingestRows(t, shardedMon, ds, day1, total/2)
	if moved, err := shardedMon.Reshard(2); err != nil || shardedMon.Shards() != 2 {
		t.Fatalf("Reshard: moved=%d err=%v shards=%d", moved, err, shardedMon.Shards())
	}
	got = append(got, ingestRows(t, shardedMon, ds, day1.Add(total/2*timeseries.SampleStep), total/2)...)

	if len(got) != len(want) {
		t.Fatalf("sharded scored %d rows, unsharded %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i].System) != math.Float64bits(want[i].System) {
			t.Fatalf("row %d: sharded Q=%x unsharded Q=%x", i,
				math.Float64bits(got[i].System), math.Float64bits(want[i].System))
		}
	}
	if math.Float64bits(shardedMon.Fleet().SystemMean()) != math.Float64bits(plain.Fleet().SystemMean()) {
		t.Error("system means diverged")
	}
	// ShardFor locates every pair within the current topology.
	for _, p := range shardedMon.Coordinator().Pairs() {
		if k := mcorr.ShardFor(p, 2); k < 0 || k >= 2 {
			t.Fatalf("ShardFor(%s, 2) = %d", p, k)
		}
	}
}

// TestDurableMonitorShardedRecovery is the in-process sharded durability
// round-trip: checkpoint a sharded fleet (per-shard epoch files + root
// checkpoint), abandon it mid-stream, recover, and require the combined
// trajectory to match an unsharded durable baseline bit for bit — then
// reshard the recovered fleet and keep going.
func TestDurableMonitorShardedRecovery(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "D", Machines: 2, Days: 2, Seed: 41,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, day1)
	mcfg := mcorr.ManagerConfig{Model: mcorr.ModelConfig{Adaptive: true}}
	const total = 30

	base, err := mcorr.NewDurableMonitor(history, mcfg, mcorr.DurabilityConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewDurableMonitor: %v", err)
	}
	want := make(map[time.Time]uint64, total)
	for _, r := range feedRows(t, base, ds, day1, total) {
		want[r.Time] = math.Float64bits(r.System)
	}
	if err := base.Close(); err != nil {
		t.Fatalf("baseline Close: %v", err)
	}

	dir := t.TempDir()
	dcfg := mcorr.DurabilityConfig{DataDir: dir, CheckpointEvery: 10}
	crash, err := mcorr.NewDurableMonitor(history, mcfg, dcfg, mcorr.WithShards(3))
	if err != nil {
		t.Fatalf("NewDurableMonitor(sharded): %v", err)
	}
	if crash.Manager() != nil || crash.Coordinator() == nil {
		t.Fatal("sharded durable monitor accessors inconsistent")
	}
	for _, r := range feedRows(t, crash, ds, day1, 17) {
		if bits, ok := want[r.Time]; !ok || bits != math.Float64bits(r.System) {
			t.Fatalf("pre-crash row %s diverged from unsharded baseline", r.Time)
		}
	}
	for k := 0; k < 3; k++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d", k))); err != nil {
			t.Fatalf("shard checkpoint dir missing: %v", err)
		}
	}
	crash.Fleet().Close() // abandon without a final checkpoint

	dm, recovered, err := mcorr.OpenDurableMonitor(dcfg, nil)
	if err != nil {
		t.Fatalf("OpenDurableMonitor: %v", err)
	}
	defer dm.Close()
	if dm.Coordinator() == nil || dm.Monitor().Shards() != 3 {
		t.Fatalf("recovered topology: coord=%v shards=%d", dm.Coordinator(), dm.Monitor().Shards())
	}
	// Rows 10..16 were past the last checkpoint: recovery re-scores them.
	if len(recovered) != 7 {
		t.Fatalf("recovered %d rows, want 7", len(recovered))
	}

	// Continue, resharding mid-stream; Reshard checkpoints the new
	// topology immediately, so the moved models survive a further reopen.
	resumeAt := day1.Add(17 * timeseries.SampleStep)
	post := feedRows(t, dm, ds, resumeAt, 5)
	if _, err := dm.Reshard(2); err != nil {
		t.Fatalf("Reshard: %v", err)
	}
	post = append(post, feedRows(t, dm, ds, resumeAt.Add(5*timeseries.SampleStep), total-17-5)...)
	for _, r := range append(recovered, post...) {
		bits, ok := want[r.Time]
		if !ok || bits != math.Float64bits(r.System) {
			t.Fatalf("row %s diverged after sharded recovery/reshard", r.Time)
		}
	}

	// Reopen once more: the post-reshard checkpoint must restore the
	// 2-shard topology (and the shrink GC must have dropped shard-2).
	if err := dm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	again, replayed, err := mcorr.OpenDurableMonitor(dcfg, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer again.Close()
	if len(replayed) != 0 {
		t.Errorf("clean close should replay 0 rows, got %d", len(replayed))
	}
	if again.Monitor().Shards() != 2 {
		t.Errorf("reopened shards = %d, want 2", again.Monitor().Shards())
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-2")); !os.IsNotExist(err) {
		t.Errorf("shard-2 dir should be garbage-collected after shrink, stat err=%v", err)
	}
	if math.Float64bits(again.Fleet().SystemMean()) != math.Float64bits(base.Fleet().SystemMean()) {
		t.Error("reopened system mean diverged from baseline")
	}
}
