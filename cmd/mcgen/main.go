// Command mcgen generates synthetic monitoring data for one infrastructure
// group — the documented substitution for the paper's proprietary traces —
// and writes it as CSV plus a JSON ground-truth file.
//
// Usage:
//
//	mcgen -group A -machines 12 -days 30 -seed 1 \
//	      -fault decoupled-spike@A-srv-01/ifOutOctetsRate@2008-06-13T09:00:00Z@2008-06-13T11:00:00Z \
//	      -out groupA.csv -truth groupA-truth.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// faultFlags collects repeatable -fault specs.
type faultFlags []simulator.Fault

func (f *faultFlags) String() string { return fmt.Sprintf("%d faults", len(*f)) }

// Set parses kind@machine[/metric]@start@end[@magnitude].
func (f *faultFlags) Set(spec string) error {
	fault, err := simulator.ParseFault(fmt.Sprintf("cli-%d", len(*f)), spec)
	if err != nil {
		return err
	}
	*f = append(*f, fault)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		group    = flag.String("group", "A", "group name (machine prefix)")
		machines = flag.Int("machines", 12, "machines in the group")
		days     = flag.Int("days", 30, "days of data starting May 29, 2008")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output CSV path (default stdout)")
		truthOut = flag.String("truth", "", "optional ground-truth JSON path")
		faults   faultFlags
	)
	flag.Var(&faults, "fault", "fault spec kind@machine[/metric]@start@end[@magnitude] (repeatable)")
	flag.Parse()

	ds, gt, err := simulator.Generate(simulator.GroupConfig{
		Name:     *group,
		Machines: *machines,
		Days:     *days,
		Seed:     *seed,
		Faults:   faults,
	})
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := timeseries.WriteCSV(w, ds); err != nil {
		return err
	}
	if *truthOut != "" {
		data, err := json.MarshalIndent(gt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*truthOut, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "mcgen: wrote %d measurements x %d days (%d faults)\n",
		ds.Len(), *days, len(faults))
	return nil
}
