// Command mcshard is a networked shard scoring worker: one process owning
// one shard of the pair-model fleet. An mcdetect coordinator started with
// -shard-workers dials the address printed on the first stdout line
// (LISTEN <addr>), streams the shard's trained models plus one row frame
// per monitoring step, and receives the shard's outcome sets back through
// the collector's exactly-once delivery path.
//
// The worker checkpoints its models and applied sequence under
// -data-dir/shard-<k>/ on the coordinator-announced cadence, so a
// SIGKILLed worker restarted with the same -data-dir and address rejoins
// the fabric with the merged Q^a/Q trajectory unchanged: the coordinator
// replays the rows since the checkpoint from its ring and filters the
// re-sent outcomes.
//
// Usage:
//
//	mcshard -data-dir /var/lib/mcorr/worker0 [-listen 127.0.0.1:9440] [-ops-addr :9101]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"mcorr/internal/obs"
	"mcorr/internal/shardnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcshard: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "control listen address the coordinator dials (0 picks a free port)")
		dataDir   = flag.String("data-dir", "", "checkpoint root; shard state persists under data-dir/shard-<k>/ (required)")
		ckptEvery = flag.Int("checkpoint-every", 0, "override the coordinator-announced checkpoint cadence in rows (0 = follow the coordinator)")
		opsAddr   = flag.String("ops-addr", "", "serve ops endpoints (/metrics, /healthz, /statusz, /debug/pprof) on this address")
	)
	flag.Parse()
	if *dataDir == "" {
		return fmt.Errorf("-data-dir is required")
	}
	if *opsAddr != "" {
		ops, err := obs.ServeOps(*opsAddr)
		if err != nil {
			return err
		}
		defer ops.Close()
		log.Printf("ops server on http://%s", ops.Addr())
	}

	w, err := shardnet.ListenWorker(*listen, shardnet.WorkerConfig{
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		Logger:          obs.NewLogger(os.Stderr),
	})
	if err != nil {
		return err
	}
	// The first stdout line is machine-readable so orchestration (and the
	// crash-recovery test harness) can discover a :0-assigned port.
	fmt.Printf("LISTEN %s\n", w.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		w.Close()
	}()
	return w.Serve()
}
