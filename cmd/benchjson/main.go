// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON document on stdout, so benchmark runs can be
// committed and diffed (see `make bench-json`).
//
// Usage:
//
//	go test -run '^$' -bench 'Observe|RowInto' -benchmem . | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Report is the full document: environment header lines plus results.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func parseLine(fields []string) (Result, bool) {
	// BenchmarkName-8  1000  123.4 ns/op  [45 B/op  2 allocs/op]  [9.9 MB/s]
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: strings.TrimSuffix(fields[0], "-1"), Iterations: iters}
	// Trim the GOMAXPROCS suffix generically (-N at the end of the name).
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.BytesPerOp = &n
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.AllocsPerOp = &n
		case "MB/s":
			if r.MBPerSec, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
		}
	}
	return r, seen
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		default:
			if r, ok := parseLine(strings.Fields(line)); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
