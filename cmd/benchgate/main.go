// Command benchgate compares a fresh benchmark run against the committed
// baseline (BENCH_scoring.json) and reports per-benchmark regressions
// beyond a tolerance. Both inputs are benchjson documents, so the typical
// flow is:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson > /tmp/fresh.json
//	benchgate -baseline BENCH_scoring.json -fresh /tmp/fresh.json
//
// Benchmark timings on shared or throttled hardware (CI runners
// especially) are noisy, so the gate is advisory by default: it prints
// every regression and exits 0 unless -strict is set. The committed
// baseline stays the source of truth — when a change legitimately moves a
// number, regenerate it with `make bench-json` and commit the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors cmd/benchjson's Result (only the fields the gate reads).
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// report mirrors cmd/benchjson's Report.
type report struct {
	Results []result `json:"results"`
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		if r.NsPerOp > 0 {
			out[r.Name] = r.NsPerOp
		}
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_scoring.json", "committed baseline benchjson document")
	fresh := flag.String("fresh", "", "fresh benchjson document to compare (required)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slowdown before a benchmark counts as regressed")
	strict := flag.Bool("strict", false, "exit non-zero on regressions instead of only reporting them")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-60s baseline %.0f ns/op, absent from fresh run\n", name, b)
			continue
		}
		delta := (c - b) / b
		switch {
		case delta > *tolerance:
			regressed++
			fmt.Printf("REGRESS  %-60s %.0f -> %.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
				name, b, c, 100*delta, 100**tolerance)
		case delta < -*tolerance:
			fmt.Printf("IMPROVE  %-60s %.0f -> %.0f ns/op (%+.1f%%) — consider re-baselining\n",
				name, b, c, 100*delta)
		default:
			fmt.Printf("ok       %-60s %.0f -> %.0f ns/op (%+.1f%%)\n", name, b, c, 100*delta)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("NEW      %-60s not in baseline — regenerate with `make bench-json`\n", name)
		}
	}
	if regressed > 0 {
		fmt.Printf("benchgate: %d benchmark(s) regressed beyond %.0f%%\n", regressed, 100**tolerance)
		if *strict {
			os.Exit(1)
		}
		fmt.Println("benchgate: advisory mode, not failing the build (use -strict to enforce)")
	} else {
		fmt.Println("benchgate: all benchmarks within tolerance")
	}
}
