// Command mcdetect trains the transition-probability model fleet on the
// first part of a monitoring CSV and runs problem determination and
// localization on the rest, printing the system fitness timeline, alarms
// and the machine ranking.
//
// Usage:
//
//	mcdetect -data group.csv -train-days 8 -adaptive -threshold 0.5
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"mcorr"
	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/eval"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/shard"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"

	// Registered for the ops surface: one scrape of /metrics shows the
	// whole pipeline's metric schema (collector included), not just the
	// packages this command exercises.
	_ "mcorr/internal/collector"
)

// version identifies the build on /metrics (mcorr_build_info); override
// with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcdetect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataPath  = flag.String("data", "", "monitoring CSV (from mcgen)")
		trainDays = flag.Int("train-days", 8, "days of the file used as training history")
		adaptive  = flag.Bool("adaptive", true, "update models online during the test run")
		threshold = flag.Float64("threshold", 0.5, "measurement fitness alarm threshold")
		sysThresh = flag.Float64("system-threshold", 0.8, "system fitness alarm threshold")
		delta     = flag.Float64("delta", 0, "pair transition-probability alarm threshold (0 = off)")
		maxMeas   = flag.Int("max-measurements", 40, "cap on monitored measurements (highest variance kept)")
		holdoff   = flag.Duration("holdoff", time.Hour, "alarm dedup holdoff")
		saveTo    = flag.String("save-models", "", "after the run, save the trained manager (all pair models) to this file")
		loadFrom  = flag.String("load-models", "", "skip training and restore a manager saved by -save-models")
		truthPath = flag.String("truth", "", "ground-truth JSON (from mcgen) to score detection against")
		opsAddr   = flag.String("ops-addr", "", "serve ops endpoints (/metrics, /healthz, /statusz, /debug/pprof) on this address")
		linger    = flag.Duration("ops-linger", 0, "keep the ops server up this long after the run (for scraping final state)")

		shards = flag.Int("shards", 1, "partition the pair graph across this many manager shards (1 = unsharded; trajectories are bit-identical for any value)")

		shardWorkers = flag.String("shard-workers", "", "comma-separated mcshard control addresses: fan scoring out to networked worker processes (batch mode; trajectories are bit-identical to in-process runs)")
		shardListen  = flag.String("shard-listen", "127.0.0.1:0", "outcome-return listen address for -shard-workers (must be dialable from the workers)")
		printSteps   = flag.Bool("print-steps", false, "batch mode: print one STEP line per scored row, as durable mode does")
		dataDir      = flag.String("data-dir", "", "durable mode: keep WAL + checkpoints here and recover from them on restart")
		ckptEvery    = flag.Int("checkpoint-every", 240, "durable mode: checkpoint after this many scored rows")
		ckptIvl      = flag.Duration("checkpoint-interval", 0, "durable mode: also checkpoint after this much wall time (0 = off)")
		fsync        = flag.String("fsync", "batch", "durable mode: WAL fsync policy (always, batch, none)")
		pace         = flag.Duration("pace", 0, "sleep between streamed rows (durable mode, and batch mode with -print-steps)")
		scoreQ       = flag.Int("score-queue", 0, "durable mode: bounded row queue depth between ingest and scoring (0 = score inline; any depth is trajectory-identical)")

		incident     = flag.Bool("incident", false, "run the incident diagnosis engine and print root-cause digests (INCIDENT lines)")
		incOpenBelow = flag.Float64("incident-open-below", 0.8, "open an incident when system Q stays below this")
		incOpenAfter = flag.Int("incident-open-after", 2, "consecutive below-threshold rows before an incident opens (1 = open on first dip)")
		incBreak     = flag.Float64("incident-break", 0.5, "a measurement counts as broken below this Q^a during root-cause analysis")

		pairBudget = flag.String("pair-budget", "", "bound the modeled pair graph and enable streaming discovery: \"full\", \"N%\" of l(l-1)/2, or an absolute pair count (empty = full graph, discovery off)")
		discTopK   = flag.Int("discover-top-k", 8, "discovery: admission prefers up to this many pairs per measurement")
		discEvict  = flag.Float64("discover-evict-below", 0.15, "discovery: evict an admitted pair whose |correlation| stays below this across rounds")
		discRound  = flag.Int("discover-round", 120, "discovery: rows per probe round (graph changes apply at round boundaries)")
		discLags   = flag.Int("discover-lags", 4, "discovery: scan correlation lags in [-L, L] sample steps (0 = lag 0 only)")

		tenantArg = flag.String("tenant", "", "tenant mode: a single tenant name (streams -data as that tenant, durable state under data-dir/tenants/<name>) or name=csv[,name2=csv2,...] for several isolated tenants in one process; STEP/INCIDENT/DISCOVER/PAIRGRAPH lines gain a tenant= suffix (empty = legacy single-system mode)")
	)
	flag.Parse()
	specs, err := parseTenantArg(*tenantArg, *dataPath)
	if err != nil {
		return err
	}
	if specs == nil && *dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	obs.RegisterBuildInfo(version, *shards)
	diagCfg := mcorr.DiagnosisConfig{OpenBelow: *incOpenBelow, OpenAfter: *incOpenAfter, MeasurementBreak: *incBreak}
	if *opsAddr != "" {
		ops, err := obs.ServeOps(*opsAddr)
		if err != nil {
			return err
		}
		defer ops.Close()
		log.Printf("ops server on http://%s (metrics, healthz, statusz, pprof)", ops.Addr())
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}
	discCfg := func(l int) (mcorr.DiscoveryConfig, error) {
		budget, err := mcorr.ParsePairBudget(*pairBudget, l)
		if err != nil {
			return mcorr.DiscoveryConfig{}, err
		}
		lags := *discLags
		if lags <= 0 {
			lags = -1 // discover.Config treats 0 as "default"; negative means lag 0 only
		}
		return mcorr.DiscoveryConfig{
			Budget:     budget,
			TopK:       *discTopK,
			EvictBelow: *discEvict,
			RoundRows:  *discRound,
			Lags:       lags,
		}, nil
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shardWorkers != "" {
		if specs != nil || *dataDir != "" || *loadFrom != "" || *saveTo != "" || *pairBudget != "" {
			return fmt.Errorf("-shard-workers cannot combine with -tenant, -data-dir, -load-models, -save-models or -pair-budget")
		}
	}
	if specs != nil {
		if *loadFrom != "" || *saveTo != "" || *truthPath != "" {
			return fmt.Errorf("-tenant cannot combine with -load-models, -save-models or -truth")
		}
		return runTenants(specs, tenantParams{
			trainDays: *trainDays, adaptive: *adaptive,
			threshold: *threshold, sysThresh: *sysThresh, delta: *delta,
			holdoff: *holdoff, maxMeas: *maxMeas, shards: *shards,
			dataDir: *dataDir, every: *ckptEvery, interval: *ckptIvl,
			fsync: *fsync, pace: *pace, scoreQueue: *scoreQ,
			incident: *incident, incidentCfg: diagCfg,
			pairBudget: *pairBudget, discCfg: discCfg,
		})
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := timeseries.ReadCSV(f)
	if err != nil {
		return err
	}
	ids := ds.IDs()
	if len(ids) == 0 {
		return fmt.Errorf("empty dataset")
	}
	start := ds.Get(ids[0]).Start
	end := ds.Get(ids[0]).End()
	for _, id := range ids {
		s := ds.Get(id)
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End().After(end) {
			end = s.End()
		}
	}
	trainEnd := start.AddDate(0, 0, *trainDays)
	if !trainEnd.Before(end) {
		return fmt.Errorf("training window (%d days) covers the whole file", *trainDays)
	}

	memory := &alarm.MemorySink{}
	logSink := &alarm.LogSink{Logger: log.New(os.Stdout, "ALARM ", 0)}
	sink := alarm.NewDeduper(alarm.Multi{memory, logSink}, *holdoff)

	mcfg := manager.Config{
		Model:                core.Config{Adaptive: *adaptive, Grid: core.GridConfig{MaxIntervals: 12}},
		MeasurementThreshold: *threshold,
		SystemThreshold:      *sysThresh,
		ProbDelta:            *delta,
		Sink:                 sink,
		TrackPairMeans:       true,
	}

	if *dataDir != "" {
		dcfg := durableConfig{
			dataDir: *dataDir, every: *ckptEvery, interval: *ckptIvl,
			fsync: *fsync, pace: *pace, maxMeas: *maxMeas, shards: *shards,
			scoreQueue: *scoreQ, incident: *incident, incidentCfg: diagCfg,
			pairBudget: *pairBudget, discCfg: discCfg,
		}
		return runDurable(ds, start, trainEnd, end, mcfg, dcfg, memory)
	}

	var fleet mcorr.Fleet
	var watched *timeseries.Dataset
	if *loadFrom != "" {
		if *shards > 1 {
			return fmt.Errorf("-load-models requires -shards=1 (sharded fleets persist via -data-dir checkpoints)")
		}
		if *pairBudget != "" {
			return fmt.Errorf("-load-models cannot combine with -pair-budget (discovery state persists via -data-dir checkpoints)")
		}
		mf, err := os.Open(*loadFrom)
		if err != nil {
			return err
		}
		mgr, err := manager.LoadManager(mf, sink)
		if cerr := mf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fleet = mgr
		watched = eval.Subset(ds, mgr.IDs())
		fmt.Printf("restored %d pair models from %s\n", len(mgr.Pairs()), *loadFrom)
	} else {
		selected := eval.SelectMeasurements(ds, start, trainEnd, eval.SelectionCriteria{Max: *maxMeas, MinCV: 0.01})
		if len(selected) < 2 {
			return fmt.Errorf("fewer than 2 measurements pass the variance filter")
		}
		watched = eval.Subset(ds, selected)
		fmt.Printf("training on %s .. %s (%d measurements, %d pairs, %d shards)\n",
			start.Format(time.RFC3339), trainEnd.Format(time.RFC3339),
			len(selected), len(selected)*(len(selected)-1)/2, *shards)
		if *pairBudget != "" {
			dcfg, derr := discCfg(len(selected))
			if derr != nil {
				return derr
			}
			var df mcorr.DiscoveryFleet
			df, err = mcorr.NewDiscoveryFleet(watched.Slice(start, trainEnd), mcfg, dcfg, *shards)
			if err == nil {
				admitted, budget, candidates := df.BudgetInfo()
				fmt.Printf("pair budget: %d admitted of %d candidates (budget %d)\n", admitted, candidates, budget)
				fleet = df
			}
		} else if *shardWorkers != "" {
			workers := strings.Split(*shardWorkers, ",")
			fmt.Printf("fanning out to %d networked shard workers (outcome listener %s)\n", len(workers), *shardListen)
			fleet, err = mcorr.NewShardNetFleet(watched.Slice(start, trainEnd), mcorr.ShardNetConfig{
				Workers:         workers,
				Listen:          *shardListen,
				Manager:         mcfg,
				CheckpointEvery: *ckptEvery,
			})
		} else if *shards > 1 {
			fleet, err = shard.New(watched.Slice(start, trainEnd), shard.Config{Shards: *shards, Manager: mcfg})
		} else {
			fleet, err = manager.New(watched.Slice(start, trainEnd), mcfg)
		}
		if err != nil {
			return err
		}
	}

	var diag *mcorr.DiagnosisEngine
	if *incident {
		diag = mcorr.NewDiagnosisEngine(diagCfg, fleet)
	}

	defer fleet.Close()
	fmt.Printf("detecting on %s .. %s (adaptive=%v)\n", trainEnd.Format(time.RFC3339), end.Format(time.RFC3339), *adaptive)
	started := time.Now()
	var reports []mcorr.StepReport
	if *printSteps || *pace > 0 {
		// Streamed variant of fleet.Run: same rows in the same order, with
		// a STEP line (and optional pacing) per row so an external harness
		// can watch — and interrupt — the run mid-stream.
		rows, rerr := manager.BuildRows(watched.Slice(trainEnd, end), trainEnd, end)
		if rerr != nil {
			return rerr
		}
		reports = make([]mcorr.StepReport, 0, len(rows))
		for _, row := range rows {
			if *pace > 0 {
				time.Sleep(*pace)
			}
			r := fleet.Step(row)
			if *printSteps {
				printStep(r)
			}
			reports = append(reports, r)
		}
	} else if reports, err = fleet.Run(watched.Slice(trainEnd, end), trainEnd, end); err != nil {
		return err
	}
	elapsed := time.Since(started)
	printDiscover(fleet)
	if diag != nil {
		// Batch mode scores the whole window first; the engine replays the
		// report stream afterwards — same digests, off the scoring path.
		for _, r := range reports {
			diag.Observe(r)
		}
	}

	timeline := eval.SystemTimeline(reports)
	fmt.Printf("\nprocessed %d rows in %v (%v per row)\n", len(reports), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(max(1, len(reports)))).Round(time.Microsecond))
	fmt.Printf("mean system fitness Q = %.4f\n", fleet.SystemMean())
	if len(timeline) > 0 {
		fmt.Printf("Q timeline: %s\n", eval.Sparkline(eval.Downsample(eval.Scores(timeline), 96), 0, 1))
	}
	lowest := math.Inf(1)
	var lowestAt time.Time
	for _, s := range timeline {
		if s.Score < lowest {
			lowest, lowestAt = s.Score, s.Time
		}
	}
	if !math.IsInf(lowest, 1) {
		fmt.Printf("lowest Q = %.4f at %s\n", lowest, lowestAt.Format(time.RFC3339))
	}

	loc := fleet.Localize()
	fmt.Println("\nmachines ranked by average fitness (worst first):")
	for i, ms := range loc.Machines {
		fmt.Printf("  %2d. %-16s Q=%.4f (%d measurements)\n", i+1, ms.Machine, ms.Score, ms.Measurements)
		if i >= 9 {
			fmt.Printf("  ... %d more\n", len(loc.Machines)-10)
			break
		}
	}
	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			return err
		}
		gt, err := simulator.LoadGroundTruth(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		m := eval.EvaluateDetection(timeline, gt, *sysThresh)
		fmt.Printf("\ndetection vs ground truth (system Q < %.2f): %d/%d events detected, mean delay %v, false-alarm rate %.3f\n",
			*sysThresh, m.Detected, m.Events, m.MeanDelay, m.FalseAlarmRate)
	}

	if worst := worstPairs(fleet, 5); len(worst) > 0 {
		fmt.Println("\nworst links (mean Q^{a,b}, the paper's pair-level drill-down):")
		for _, ps := range worst {
			fmt.Printf("  %-60s Q=%.4f (%d samples)\n", ps.Pair.String(), ps.Score, ps.Samples)
		}
	}
	fmt.Printf("\nalarms: %d (deduped, holdoff %v)\n", memory.Len(), *holdoff)
	printIncidents(diag)

	if *saveTo != "" {
		mgr, ok := fleet.(*manager.Manager)
		if !ok {
			return fmt.Errorf("-save-models requires -shards=1 (sharded fleets persist via -data-dir checkpoints)")
		}
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		err = mgr.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("saved %d pair models to %s\n", len(mgr.Pairs()), *saveTo)
	}
	return nil
}

// worstPairs reads the pair-level drill-down from either fleet shape.
func worstPairs(fleet mcorr.Fleet, k int) []manager.PairScore {
	wp, ok := fleet.(interface{ WorstPairs(int) []manager.PairScore })
	if !ok {
		return nil
	}
	return wp.WorstPairs(k)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// durableConfig carries the -data-dir flag family into runDurable.
type durableConfig struct {
	dataDir     string
	every       int
	interval    time.Duration
	fsync       string
	pace        time.Duration
	maxMeas     int
	shards      int
	scoreQueue  int
	incident    bool
	incidentCfg mcorr.DiagnosisConfig

	// pairBudget is the raw -pair-budget value ("" = discovery off);
	// discCfg resolves it against a fleet size (percentages need l).
	pairBudget string
	discCfg    func(l int) (mcorr.DiscoveryConfig, error)
}

// runDurable is the crash-safe streaming mode: a DurableMonitor fed row by
// row from the CSV, with every acked batch in the WAL before the next row
// and automatic checkpoints on the configured cadence. Restarted with the
// same -data-dir it recovers from checkpoint + WAL replay and continues
// where it left off; the per-step fitness lines (STEP <time> Q=<score>)
// are bit-identical to an uninterrupted run.
func runDurable(ds *timeseries.Dataset, start, trainEnd, end time.Time, mcfg manager.Config, dcfg durableConfig, memory *alarm.MemorySink) error {
	policy, err := mcorr.ParseSyncPolicy(dcfg.fsync)
	if err != nil {
		return err
	}
	cfg := mcorr.DurabilityConfig{
		DataDir:            dcfg.dataDir,
		CheckpointEvery:    dcfg.every,
		CheckpointInterval: dcfg.interval,
		Fsync:              policy,
	}
	opts := []mcorr.MonitorOption{mcorr.WithScoreQueue(dcfg.scoreQueue)}
	if dcfg.incident {
		opts = append(opts, mcorr.WithDiagnosis(dcfg.incidentCfg))
	}
	var dm *mcorr.DurableMonitor
	if mcorr.HasCheckpoint(dcfg.dataDir) {
		// The checkpoint's recorded topology wins over -shards: recovery
		// must reopen the shard files the checkpoint references.
		if dcfg.pairBudget != "" {
			// The checkpointed discovery config is authoritative on
			// recovery (like shard topology); the flag value here only
			// marks discovery as enabled, so resolve percentages against
			// the measurement cap rather than the not-yet-known fleet.
			disc, derr := dcfg.discCfg(dcfg.maxMeas)
			if derr != nil {
				return derr
			}
			opts = append(opts, mcorr.WithDiscovery(disc))
		}
		var recovered []mcorr.StepReport
		dm, recovered, err = mcorr.OpenDurableMonitor(cfg, mcfg.Sink, opts...)
		if err != nil {
			return err
		}
		applied, skipped := dm.RecoveryStats()
		fmt.Printf("recovered from %s: %d WAL samples replayed (%d skipped), %d rows re-scored, %d shards, resuming at %s\n",
			dcfg.dataDir, applied, skipped, len(recovered), dm.Monitor().Shards(), dm.Cursor().Format(time.RFC3339))
		for _, r := range recovered {
			printStep(r)
		}
	} else {
		selected := eval.SelectMeasurements(ds, start, trainEnd, eval.SelectionCriteria{Max: dcfg.maxMeas, MinCV: 0.01})
		if len(selected) < 2 {
			return fmt.Errorf("fewer than 2 measurements pass the variance filter")
		}
		watched := eval.Subset(ds, selected)
		fmt.Printf("training on %s .. %s (%d measurements, %d shards), durable state in %s\n",
			start.Format(time.RFC3339), trainEnd.Format(time.RFC3339), len(selected), dcfg.shards, dcfg.dataDir)
		if dcfg.pairBudget != "" {
			disc, derr := dcfg.discCfg(len(selected))
			if derr != nil {
				return derr
			}
			opts = append(opts, mcorr.WithDiscovery(disc))
		}
		dm, err = mcorr.NewDurableMonitor(watched.Slice(start, trainEnd), mcfg, cfg,
			append(opts, mcorr.WithShards(dcfg.shards))...)
		if err != nil {
			return err
		}
		if df, ok := dm.Fleet().(mcorr.DiscoveryFleet); ok {
			admitted, budget, candidates := df.BudgetInfo()
			fmt.Printf("pair budget: %d admitted of %d candidates (budget %d)\n", admitted, candidates, budget)
		}
	}
	ids := dm.Fleet().IDs()
	step := ds.Get(ids[0]).Step
	for t := dm.Cursor(); t.Before(end); t = t.Add(step) {
		if dcfg.pace > 0 {
			time.Sleep(dcfg.pace)
		}
		var batch []mcorr.Sample
		for _, id := range ids {
			s := ds.Get(id)
			if s == nil {
				continue
			}
			if idx, ok := s.IndexOf(t); ok {
				batch = append(batch, mcorr.Sample{ID: id, Time: t, Value: s.Values[idx]})
			}
		}
		reports, err := dm.Ingest(batch...)
		if err != nil {
			return err
		}
		forced, err := dm.FlushUpTo(t.Add(step))
		if err != nil {
			return err
		}
		for _, r := range reports {
			printStep(r)
		}
		for _, r := range forced {
			printStep(r)
		}
		printDiscover(dm.Fleet())
	}

	fleet := dm.Fleet()
	fmt.Printf("mean system fitness Q = %.4f over %d rows\n", fleet.SystemMean(), fleet.Steps())
	if loc := fleet.Localize(); len(loc.Machines) > 0 {
		fmt.Printf("worst machine: %s Q=%.4f\n", loc.Machines[0].Machine, loc.Machines[0].Score)
	}
	fmt.Printf("alarms: %d\n", memory.Len())
	printIncidents(dm.Diagnosis())
	if _, ok := dm.Fleet().(mcorr.DiscoveryFleet); ok {
		printPairGraph(dm.Fleet().Pairs())
	}
	return dm.Close()
}

// printDiscover emits one deterministic line per discovery round that
// changed the pair graph. Like STEP lines, these compare bit for bit
// between an uninterrupted durable run and a crash-recovered one.
func printDiscover(f mcorr.Fleet) {
	df, ok := f.(mcorr.DiscoveryFleet)
	if !ok {
		return
	}
	for _, ev := range df.DrainDiscoveryEvents() {
		fmt.Printf("DISCOVER %s round=%d admitted=%d evicted=%d pairs=%d\n",
			ev.Time.Format(time.RFC3339), ev.Round, len(ev.Admitted), len(ev.Evicted), ev.Pairs)
	}
}

// printPairGraph fingerprints the final pair graph: the FNV-64a hash of
// the canonically sorted pair list. The crash-recovery test compares the
// line against an uninterrupted baseline to prove both runs converged on
// the identical graph.
func printPairGraph(pairs []mcorr.Pair) {
	manager.SortPairs(pairs)
	h := fnv.New64a()
	for _, p := range pairs {
		h.Write([]byte(p.String()))
		h.Write([]byte{'\n'})
	}
	fmt.Printf("PAIRGRAPH pairs=%d hash=%016x\n", len(pairs), h.Sum64())
}

// printIncidents emits one deterministic line per incident digest. Like
// the STEP lines, these compare bit for bit between an uninterrupted
// durable run and one recovered after a crash: incident IDs, impact
// times and rankings are functions of the replayed trajectory.
func printIncidents(eng *mcorr.DiagnosisEngine) {
	if eng == nil {
		return
	}
	digests := eng.Incidents()
	fmt.Printf("incidents: %d\n", len(digests))
	for _, d := range digests {
		suspect, top := d.Suspect, "-"
		if suspect == "" {
			suspect = "-"
		}
		if len(d.Candidates) > 0 {
			top = d.Candidates[0].Measurement
		}
		fmt.Printf("INCIDENT %s state=%s severity=%s impact=%s low=%.17g broken=%d suspect=%s top=%s\n",
			d.ID, d.State, d.Severity, d.ImpactTime.Format(time.RFC3339), d.SystemLow, d.Broken, suspect, top)
	}
}

// printStep emits one row's fitness with full float precision; the crash-
// recovery test compares these lines bit for bit across runs.
func printStep(r mcorr.StepReport) {
	fmt.Printf("STEP %s Q=%.17g scored=%d\n", r.Time.Format(time.RFC3339), r.System, r.ScoredPairs)
}

// tenantSpec names one tenant and the monitoring CSV it streams.
type tenantSpec struct {
	name string
	csv  string
}

// parseTenantArg resolves -tenant: empty = legacy mode (nil specs); a
// bare name list streams -data into each named tenant; the name=csv form
// gives every tenant its own file.
func parseTenantArg(arg, dataPath string) ([]tenantSpec, error) {
	if arg == "" {
		return nil, nil
	}
	var specs []tenantSpec
	seen := map[string]bool{}
	for _, p := range strings.Split(arg, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, csv, hasCSV := strings.Cut(p, "=")
		if !hasCSV {
			csv = dataPath
		}
		if name == "" || csv == "" {
			return nil, fmt.Errorf("-tenant entry %q: want name or name=csv (with -data set for the bare form)", p)
		}
		if seen[name] {
			return nil, fmt.Errorf("-tenant names %q twice", name)
		}
		seen[name] = true
		specs = append(specs, tenantSpec{name: name, csv: csv})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-tenant names no tenants")
	}
	return specs, nil
}

// tenantParams carries the flag family into runTenants.
type tenantParams struct {
	trainDays  int
	adaptive   bool
	threshold  float64
	sysThresh  float64
	delta      float64
	holdoff    time.Duration
	maxMeas    int
	shards     int
	dataDir    string
	every      int
	interval   time.Duration
	fsync      string
	pace       time.Duration
	scoreQueue int
	incident   bool

	incidentCfg mcorr.DiagnosisConfig
	pairBudget  string
	discCfg     func(l int) (mcorr.DiscoveryConfig, error)
}

// tenantRun is one tenant's streaming state inside runTenants.
type tenantRun struct {
	name string
	t    *mcorr.Tenant
	ds   *timeseries.Dataset
	end  time.Time
}

// runTenants is the multi-tenant streaming mode: one isolated tenant per
// spec inside a shared registry, each trained on the first -train-days of
// its CSV (or recovered from data-dir/tenants/<name>) and fed row by row
// on a merged clock. Every deterministic line (STEP, DISCOVER, INCIDENT,
// PAIRGRAPH) carries a tenant= suffix so per-tenant trajectories can be
// compared bit for bit across runs and process layouts.
func runTenants(specs []tenantSpec, p tenantParams) error {
	durable := p.dataDir != ""
	var dcfg mcorr.DurabilityConfig
	if durable {
		policy, err := mcorr.ParseSyncPolicy(p.fsync)
		if err != nil {
			return err
		}
		dcfg = mcorr.DurabilityConfig{
			CheckpointEvery:    p.every,
			CheckpointInterval: p.interval,
			Fsync:              policy,
		}
	}
	reg := mcorr.NewTenantRegistry(p.dataDir)
	defer reg.Close()

	logSink := &alarm.LogSink{Logger: log.New(os.Stdout, "ALARM ", 0)}
	runs := make([]tenantRun, 0, len(specs))
	for _, spec := range specs {
		f, err := os.Open(spec.csv)
		if err != nil {
			return err
		}
		ds, err := timeseries.ReadCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("tenant %s: %w", spec.name, err)
		}
		ids := ds.IDs()
		if len(ids) == 0 {
			return fmt.Errorf("tenant %s: empty dataset", spec.name)
		}
		start, end := ds.Get(ids[0]).Start, ds.Get(ids[0]).End()
		for _, id := range ids {
			s := ds.Get(id)
			if s.Start.Before(start) {
				start = s.Start
			}
			if s.End().After(end) {
				end = s.End()
			}
		}
		trainEnd := start.AddDate(0, 0, p.trainDays)
		if !trainEnd.Before(end) {
			return fmt.Errorf("tenant %s: training window (%d days) covers the whole file", spec.name, p.trainDays)
		}

		memory := &alarm.MemorySink{}
		mcfg := manager.Config{
			Model:                core.Config{Adaptive: p.adaptive, Grid: core.GridConfig{MaxIntervals: 12}},
			MeasurementThreshold: p.threshold,
			SystemThreshold:      p.sysThresh,
			ProbDelta:            p.delta,
			Sink:                 alarm.NewDeduper(alarm.Multi{memory, logSink}, p.holdoff),
			TrackPairMeans:       true,
		}
		opts := []mcorr.MonitorOption{mcorr.WithScoreQueue(p.scoreQueue)}
		if p.incident {
			opts = append(opts, mcorr.WithDiagnosis(p.incidentCfg))
		}

		recovering := durable && mcorr.HasCheckpoint(mcorr.TenantDir(p.dataDir, spec.name))
		var history *timeseries.Dataset
		if recovering {
			// The checkpoint's recorded topology and discovery config win
			// on recovery; the flags only mark discovery as enabled, so
			// percentages resolve against the measurement cap.
			if p.pairBudget != "" {
				disc, derr := p.discCfg(p.maxMeas)
				if derr != nil {
					return derr
				}
				opts = append(opts, mcorr.WithDiscovery(disc))
			}
		} else {
			selected := eval.SelectMeasurements(ds, start, trainEnd, eval.SelectionCriteria{Max: p.maxMeas, MinCV: 0.01})
			if len(selected) < 2 {
				return fmt.Errorf("tenant %s: fewer than 2 measurements pass the variance filter", spec.name)
			}
			watched := eval.Subset(ds, selected)
			history = watched.Slice(start, trainEnd)
			fmt.Printf("training on %s .. %s (%d measurements, %d shards) tenant=%s\n",
				start.Format(time.RFC3339), trainEnd.Format(time.RFC3339), len(selected), p.shards, spec.name)
			if p.pairBudget != "" {
				disc, derr := p.discCfg(len(selected))
				if derr != nil {
					return derr
				}
				opts = append(opts, mcorr.WithDiscovery(disc))
			}
			opts = append(opts, mcorr.WithShards(p.shards))
		}

		name := spec.name
		t, err := reg.CreateTenant(mcorr.TenantConfig{
			Name:       name,
			History:    history,
			Manager:    mcfg,
			Durable:    durable,
			Durability: dcfg,
			Options:    opts,
			OnReport: func(tenant string, r mcorr.StepReport) {
				printStepTenant(r, tenant)
			},
		})
		if err != nil {
			return err
		}
		if recovering {
			applied, skipped := t.Durable().RecoveryStats()
			fmt.Printf("recovered from %s: %d WAL samples replayed (%d skipped), %d rows re-scored, %d shards, resuming at %s tenant=%s\n",
				mcorr.TenantDir(p.dataDir, name), applied, skipped, len(t.Recovered()),
				t.Monitor().Shards(), t.Monitor().Cursor().Format(time.RFC3339), name)
		}
		if df, ok := t.Fleet().(mcorr.DiscoveryFleet); ok {
			admitted, budget, candidates := df.BudgetInfo()
			fmt.Printf("pair budget: %d admitted of %d candidates (budget %d) tenant=%s\n", admitted, candidates, budget, name)
		}
		runs = append(runs, tenantRun{name: name, t: t, ds: ds, end: end})
	}

	// Merged clock: every tenant advances through the same timestamps, so
	// a crash interrupts all of them mid-stream rather than one at a time.
	step := runs[0].ds.Get(runs[0].ds.IDs()[0]).Step
	clock, horizon := runs[0].t.Monitor().Cursor(), runs[0].end
	for _, rs := range runs {
		if c := rs.t.Monitor().Cursor(); c.Before(clock) {
			clock = c
		}
		if rs.end.After(horizon) {
			horizon = rs.end
		}
	}
	for tm := clock; tm.Before(horizon); tm = tm.Add(step) {
		if p.pace > 0 {
			time.Sleep(p.pace)
		}
		for _, rs := range runs {
			if tm.Before(rs.t.Monitor().Cursor()) || !tm.Before(rs.end) {
				continue
			}
			var batch []mcorr.Sample
			for _, id := range rs.t.Fleet().IDs() {
				s := rs.ds.Get(id)
				if s == nil {
					continue
				}
				if idx, ok := s.IndexOf(tm); ok {
					batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[idx]})
				}
			}
			if _, err := rs.t.Ingest(batch...); err != nil {
				return fmt.Errorf("tenant %s: %w", rs.name, err)
			}
			if _, err := rs.t.FlushUpTo(tm.Add(step)); err != nil {
				return fmt.Errorf("tenant %s: %w", rs.name, err)
			}
			printDiscoverTenant(rs.t.Fleet(), rs.name)
		}
	}

	for _, rs := range runs {
		fleet := rs.t.Fleet()
		fmt.Printf("mean system fitness Q = %.4f over %d rows tenant=%s\n", fleet.SystemMean(), fleet.Steps(), rs.name)
		if loc := fleet.Localize(); len(loc.Machines) > 0 {
			fmt.Printf("worst machine: %s Q=%.4f tenant=%s\n", loc.Machines[0].Machine, loc.Machines[0].Score, rs.name)
		}
		printIncidentsTenant(rs.t.Diagnosis(), rs.name)
		if _, ok := fleet.(mcorr.DiscoveryFleet); ok {
			printPairGraphTenant(fleet.Pairs(), rs.name)
		}
	}
	return reg.Close()
}

// printStepTenant is printStep with the tenant suffix used in tenant mode.
func printStepTenant(r mcorr.StepReport, tenant string) {
	fmt.Printf("STEP %s Q=%.17g scored=%d tenant=%s\n", r.Time.Format(time.RFC3339), r.System, r.ScoredPairs, tenant)
}

// printDiscoverTenant is printDiscover with the tenant suffix.
func printDiscoverTenant(f mcorr.Fleet, tenant string) {
	df, ok := f.(mcorr.DiscoveryFleet)
	if !ok {
		return
	}
	for _, ev := range df.DrainDiscoveryEvents() {
		fmt.Printf("DISCOVER %s round=%d admitted=%d evicted=%d pairs=%d tenant=%s\n",
			ev.Time.Format(time.RFC3339), ev.Round, len(ev.Admitted), len(ev.Evicted), ev.Pairs, tenant)
	}
}

// printIncidentsTenant is printIncidents with the tenant suffix.
func printIncidentsTenant(eng *mcorr.DiagnosisEngine, tenant string) {
	if eng == nil {
		return
	}
	digests := eng.Incidents()
	fmt.Printf("incidents: %d tenant=%s\n", len(digests), tenant)
	for _, d := range digests {
		suspect, top := d.Suspect, "-"
		if suspect == "" {
			suspect = "-"
		}
		if len(d.Candidates) > 0 {
			top = d.Candidates[0].Measurement
		}
		fmt.Printf("INCIDENT %s state=%s severity=%s impact=%s low=%.17g broken=%d suspect=%s top=%s tenant=%s\n",
			d.ID, d.State, d.Severity, d.ImpactTime.Format(time.RFC3339), d.SystemLow, d.Broken, suspect, top, tenant)
	}
}

// printPairGraphTenant is printPairGraph with the tenant suffix.
func printPairGraphTenant(pairs []mcorr.Pair, tenant string) {
	manager.SortPairs(pairs)
	h := fnv.New64a()
	for _, p := range pairs {
		h.Write([]byte(p.String()))
		h.Write([]byte{'\n'})
	}
	fmt.Printf("PAIRGRAPH pairs=%d hash=%016x tenant=%s\n", len(pairs), h.Sum64(), tenant)
}
