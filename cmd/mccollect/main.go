// Command mccollect is a live end-to-end demo of the monitoring pipeline:
// it starts a multi-tenant collector server, creates one isolated tenant
// per -tenant name (each with its own generated workload and a monitor
// trained on day 1 of it), then replays day 2 through real TCP agents
// (one per machine per tenant) at an accelerated pace while each tenant's
// monitor scores its completed rows and prints alarms.
//
// Usage:
//
//	mccollect -machines 4 -rows 120 -addr 127.0.0.1:0
//	mccollect -tenant alpha,beta -tenant-rate 5000 -ops-addr :6060
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// version identifies the build on /metrics (mcorr_build_info); override
// with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mccollect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machines = flag.Int("machines", 4, "simulated machines / agents per tenant")
		rows     = flag.Int("rows", 120, "monitoring rows to stream")
		addr     = flag.String("addr", "127.0.0.1:0", "collector listen address")
		seed     = flag.Int64("seed", 7, "simulation seed (tenant i uses seed+i)")
		opsAddr  = flag.String("ops-addr", "", "serve ops endpoints (/metrics, /healthz, /statusz, /api/v1, /debug/pprof) on this address")
		pace     = flag.Duration("pace", 0, "sleep between streamed rows (lets an ops scraper watch the run)")
		shards   = flag.Int("shards", 1, "partition each tenant's pair graph across this many manager shards")

		tenantsArg = flag.String("tenant", "default", "comma-separated tenant names; each gets an isolated store, fleet and quotas")
		tenantRate = flag.Float64("tenant-rate", 0, "per-tenant collector ingest rate limit in samples/s (0 = off)")
		tenantMeas = flag.Int("tenant-measurements", 0, "per-tenant distinct-measurement quota (0 = unlimited)")

		dataDir   = flag.String("data-dir", "", "durable mode: per-tenant WAL + checkpoints under here (tenants/<name>); restart recovers every tenant")
		fsync     = flag.String("fsync", "batch", "durable mode: WAL fsync policy (always, batch, none)")
		ckptEvery = flag.Int("checkpoint-every", 50, "durable mode: checkpoint a tenant after this many scored rows")

		flowQueue  = flag.Int("flow-queue", 0, "flow control: admission queue depth in batches between handlers and the stores (0 = append inline)")
		shedPolicy = flag.String("shed", "block", "flow control: full-queue policy (block, drop-oldest, reject)")
		agentRate  = flag.Float64("agent-rate", 0, "flow control: per-agent rate limit in samples/s (0 = off)")
		agentBurst = flag.Int("agent-burst", 0, "flow control: per-agent token-bucket burst in samples (0 = auto)")
		writeTO    = flag.Duration("write-timeout", 0, "flow control: ack write deadline (0 = match the read idle timeout)")
		scoreQueue = flag.Int("score-queue", 0, "bounded row queue depth between ingest and scoring (0 = score inline)")

		incident     = flag.Bool("incident", true, "run the incident diagnosis engine per tenant (digests under /api/v1/incidents?tenant=<name>)")
		incOpenBelow = flag.Float64("incident-open-below", 0.8, "open an incident when a tenant's system Q stays below this")

		pairBudget = flag.String("pair-budget", "", "bound each tenant's modeled pair graph and enable streaming discovery: \"full\", \"N%\" of l(l-1)/2, or an absolute pair count (empty = full graph, discovery off)")
		discTopK   = flag.Int("discover-top-k", 8, "discovery: admission prefers up to this many pairs per measurement")
		discEvict  = flag.Float64("discover-evict-below", 0.15, "discovery: evict an admitted pair whose |correlation| stays below this across rounds")
		discRound  = flag.Int("discover-round", 120, "discovery: rows per probe round (graph changes apply at round boundaries)")
		discLags   = flag.Int("discover-lags", 4, "discovery: scan correlation lags in [-L, L] sample steps (0 = lag 0 only)")
	)
	flag.Parse()
	mcorr.RegisterBuildInfo(version, *shards)

	var names []string
	for _, n := range strings.Split(*tenantsArg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return fmt.Errorf("-tenant names no tenants")
	}

	if *opsAddr != "" {
		ops, err := mcorr.ServeOps(*opsAddr)
		if err != nil {
			return err
		}
		defer ops.Close()
		log.Printf("ops server on http://%s (metrics, healthz, statusz, api/v1, pprof)", ops.Addr())
	}

	monOpts := []mcorr.MonitorOption{mcorr.WithShards(*shards), mcorr.WithScoreQueue(*scoreQueue)}
	if *incident {
		monOpts = append(monOpts, mcorr.WithDiagnosis(mcorr.DiagnosisConfig{OpenBelow: *incOpenBelow}))
	}
	if *pairBudget != "" {
		// Resolved against the per-tenant measurement count below; the
		// budget string is validated here against a placeholder so typos
		// fail before any tenant is built.
		if _, err := mcorr.ParsePairBudget(*pairBudget, 2); err != nil {
			return err
		}
	}

	durCfg := mcorr.DurabilityConfig{CheckpointEvery: *ckptEvery}
	if *dataDir != "" {
		policy, err := mcorr.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		durCfg.Fsync = policy
		log.Printf("durable tenants under %s (fsync=%s, checkpoint every %d rows)", *dataDir, policy, *ckptEvery)
	}

	reg := mcorr.NewTenantRegistry(*dataDir)
	defer reg.Close()

	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "live-fault", Machine: simulator.MachineName("L", 1), Metric: "",
		Kind:  simulator.FaultFlapping,
		Start: day1.Add(6 * time.Hour), End: day1.Add(8 * time.Hour),
	}
	var alarms atomic.Int64
	datasets := make(map[string]*timeseries.Dataset, len(names))
	for i, name := range names {
		ds, _, err := simulator.Generate(simulator.GroupConfig{
			Name: "L", Machines: *machines, Days: 2, Seed: *seed + int64(i), Faults: []simulator.Fault{fault},
		})
		if err != nil {
			return err
		}
		datasets[name] = ds
		opts := monOpts
		if *pairBudget != "" {
			budget, err := mcorr.ParsePairBudget(*pairBudget, ds.Len())
			if err != nil {
				return err
			}
			lags := *discLags
			if lags <= 0 {
				lags = -1 // negative = lag 0 only; 0 would mean "default"
			}
			opts = append(append([]mcorr.MonitorOption{}, monOpts...), mcorr.WithDiscovery(mcorr.DiscoveryConfig{
				Budget:     budget,
				TopK:       *discTopK,
				EvictBelow: *discEvict,
				RoundRows:  *discRound,
				Lags:       lags,
			}))
		}
		log.Printf("tenant %s: training monitor on day 1 (%d measurements, %d shards)", name, ds.Len(), *shards)
		t, err := reg.CreateTenant(mcorr.TenantConfig{
			Name:    name,
			History: ds.Slice(timeseries.MonitoringStart, day1),
			Manager: mcorr.ManagerConfig{},
			Quota: mcorr.TenantQuota{
				MaxMeasurements:  *tenantMeas,
				SamplesPerSecond: *tenantRate,
			},
			Durable:    *dataDir != "",
			Durability: durCfg,
			Options:    opts,
			OnReport: func(tenant string, r mcorr.StepReport) {
				marker := ""
				if fault.ActiveAt(r.Time) {
					marker = "  <- ground-truth fault window"
				}
				if r.System < 0.75 {
					alarms.Add(1)
					log.Printf("LOW FITNESS tenant=%s Q=%.3f at %s%s", tenant, r.System, r.Time.Format("15:04"), marker)
				} else if r.Time.Minute() == 0 {
					log.Printf("Q=%.3f tenant=%s at %s%s", r.System, tenant, r.Time.Format("15:04"), marker)
				}
			},
		})
		if err != nil {
			return err
		}
		if df, ok := t.Fleet().(mcorr.DiscoveryFleet); ok {
			admitted, budget, candidates := df.BudgetInfo()
			log.Printf("tenant %s: pair budget: %d admitted of %d candidates (budget %d)", name, admitted, candidates, budget)
		}
		if n := len(t.Recovered()); n > 0 {
			log.Printf("tenant %s: recovered, %d rows re-scored, resuming at %s", name, n, t.Monitor().Cursor().Format(time.RFC3339))
		}
	}

	srv, err := mcorr.NewTenantCollectorServer(reg)
	if err != nil {
		return err
	}
	if *flowQueue > 0 || *agentRate > 0 || *writeTO > 0 {
		policy, err := mcorr.ParseShedPolicy(*shedPolicy)
		if err != nil {
			return err
		}
		srv.SetFlow(mcorr.FlowConfig{
			QueueDepth:   *flowQueue,
			Shed:         policy,
			AgentRate:    *agentRate,
			AgentBurst:   *agentBurst,
			WriteTimeout: *writeTO,
		})
		log.Printf("flow control: queue=%d shed=%s agent-rate=%.0f/s", *flowQueue, policy, *agentRate)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("collector listening on %s (%d tenants: %s)", bound, len(names), strings.Join(names, ", "))

	// One reliable TCP agent per machine per tenant (reconnects with
	// backoff, so a collector blip never loses samples). The hello names
	// the tenant; the server routes each connection's batches to it.
	agents := make(map[string][]*mcorr.ReliableAgent, len(names))
	for _, name := range names {
		list := make([]*mcorr.ReliableAgent, *machines)
		for i := range list {
			agentName := simulator.MachineName("L", i)
			if len(names) > 1 {
				agentName = name + "-" + agentName
			}
			list[i] = mcorr.NewReliableAgent(bound.String(), agentName, mcorr.ReliableConfig{Tenant: name})
			defer list[i].Close()
		}
		agents[name] = list
	}
	hb, err := mcorr.DialCollectorTenant(bound.String(), "heartbeat-probe", names[0])
	if err != nil {
		return err
	}
	defer hb.Close()
	stopHB := hb.StartHeartbeats(2 * time.Second)
	defer stopHB()

	if *rows > timeseries.SamplesPerDay {
		*rows = timeseries.SamplesPerDay
	}
	log.Printf("streaming %d rows of day 2 through %d agents x %d tenants (fault: %s %s-%s)",
		*rows, *machines, len(names), fault.Kind, fault.Start.Format("15:04"), fault.End.Format("15:04"))
	for k := 0; k < *rows; k++ {
		if *pace > 0 {
			time.Sleep(*pace)
		}
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		for _, name := range names {
			ds := datasets[name]
			ids := ds.IDs()
			// Each agent ships its machine's samples for this timestamp;
			// the server stores them in the tenant's store and the
			// tenant's monitor scores each row that completes.
			for i, a := range agents[name] {
				machine := simulator.MachineName("L", i)
				var batch []mcorr.Sample
				for _, id := range ids {
					if id.Machine != machine {
						continue
					}
					s := ds.Get(id)
					if idx, ok := s.IndexOf(tm); ok {
						batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[idx]})
					}
				}
				if err := a.Send(batch); err != nil {
					return fmt.Errorf("tenant %s agent %s: %w", name, machine, err)
				}
			}
			t, _ := reg.Tenant(name)
			if df, ok := t.Fleet().(mcorr.DiscoveryFleet); ok {
				for _, ev := range df.DrainDiscoveryEvents() {
					log.Printf("DISCOVER tenant=%s round=%d admitted=%d evicted=%d pairs=%d",
						name, ev.Round, len(ev.Admitted), len(ev.Evicted), ev.Pairs)
				}
			}
		}
	}
	for _, name := range names {
		t, _ := reg.Tenant(name)
		if err := t.Checkpoint(); err != nil {
			return err
		}
		if diag := t.Diagnosis(); diag != nil {
			for _, d := range diag.Incidents() {
				log.Printf("INCIDENT tenant=%s %s state=%s severity=%s impact=%s suspect=%s candidates=%d",
					name, d.ID, d.State, d.Severity, d.ImpactTime.Format("15:04"), d.Suspect, len(d.Candidates))
			}
		}
	}
	log.Printf("done: %d low-fitness rows flagged; server stats: %+v", alarms.Load(), srv.Stats())
	return nil
}
