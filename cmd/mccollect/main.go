// Command mccollect is a live end-to-end demo of the monitoring pipeline:
// it starts a collector server, trains a Monitor on one day of generated
// history, then replays the next day through real TCP agents (one per
// machine) at an accelerated pace while the monitor scores each completed
// row and prints alarms.
//
// Usage:
//
//	mccollect -machines 4 -rows 120 -addr 127.0.0.1:0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// version identifies the build on /metrics (mcorr_build_info); override
// with -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mccollect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		machines = flag.Int("machines", 4, "simulated machines / agents")
		rows     = flag.Int("rows", 120, "monitoring rows to stream")
		addr     = flag.String("addr", "127.0.0.1:0", "collector listen address")
		seed     = flag.Int64("seed", 7, "simulation seed")
		opsAddr  = flag.String("ops-addr", "", "serve ops endpoints (/metrics, /healthz, /statusz, /debug/pprof) on this address")
		pace     = flag.Duration("pace", 0, "sleep between streamed rows (lets an ops scraper watch the run)")
		shards   = flag.Int("shards", 1, "partition the monitor's pair graph across this many manager shards")

		dataDir   = flag.String("data-dir", "", "durable mode: WAL-log every acked sample here and replay on restart")
		fsync     = flag.String("fsync", "batch", "durable mode: WAL fsync policy (always, batch, none)")
		ckptEvery = flag.Int("checkpoint-every", 50, "durable mode: snapshot the collector store every this many rows")

		flowQueue  = flag.Int("flow-queue", 0, "flow control: admission queue depth in batches between handlers and the store (0 = append inline)")
		shedPolicy = flag.String("shed", "block", "flow control: full-queue policy (block, drop-oldest, reject)")
		agentRate  = flag.Float64("agent-rate", 0, "flow control: per-agent rate limit in samples/s (0 = off)")
		agentBurst = flag.Int("agent-burst", 0, "flow control: per-agent token-bucket burst in samples (0 = auto)")
		writeTO    = flag.Duration("write-timeout", 0, "flow control: ack write deadline (0 = match the read idle timeout)")
		scoreQueue = flag.Int("score-queue", 0, "bounded row queue depth between ingest and scoring (0 = score inline)")

		incident     = flag.Bool("incident", true, "run the incident diagnosis engine (digests under /api/v1/incidents on the ops server)")
		incOpenBelow = flag.Float64("incident-open-below", 0.8, "open an incident when system Q stays below this")

		pairBudget = flag.String("pair-budget", "", "bound the modeled pair graph and enable streaming discovery: \"full\", \"N%\" of l(l-1)/2, or an absolute pair count (empty = full graph, discovery off)")
		discTopK   = flag.Int("discover-top-k", 8, "discovery: admission prefers up to this many pairs per measurement")
		discEvict  = flag.Float64("discover-evict-below", 0.15, "discovery: evict an admitted pair whose |correlation| stays below this across rounds")
		discRound  = flag.Int("discover-round", 120, "discovery: rows per probe round (graph changes apply at round boundaries)")
		discLags   = flag.Int("discover-lags", 4, "discovery: scan correlation lags in [-L, L] sample steps (0 = lag 0 only)")
	)
	flag.Parse()
	mcorr.RegisterBuildInfo(version, *shards)

	if *opsAddr != "" {
		ops, err := mcorr.ServeOps(*opsAddr)
		if err != nil {
			return err
		}
		defer ops.Close()
		log.Printf("ops server on http://%s (metrics, healthz, statusz, pprof)", ops.Addr())
	}

	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "live-fault", Machine: simulator.MachineName("L", 1), Metric: "",
		Kind:  simulator.FaultFlapping,
		Start: day1.Add(6 * time.Hour), End: day1.Add(8 * time.Hour),
	}
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "L", Machines: *machines, Days: 2, Seed: *seed, Faults: []simulator.Fault{fault},
	})
	if err != nil {
		return err
	}

	log.Printf("training monitor on day 1 (%d measurements, %d shards)", ds.Len(), *shards)
	monOpts := []mcorr.MonitorOption{mcorr.WithShards(*shards), mcorr.WithScoreQueue(*scoreQueue)}
	if *incident {
		monOpts = append(monOpts, mcorr.WithDiagnosis(mcorr.DiagnosisConfig{OpenBelow: *incOpenBelow}))
	}
	if *pairBudget != "" {
		budget, err := mcorr.ParsePairBudget(*pairBudget, ds.Len())
		if err != nil {
			return err
		}
		lags := *discLags
		if lags <= 0 {
			lags = -1 // negative = lag 0 only; 0 would mean "default"
		}
		monOpts = append(monOpts, mcorr.WithDiscovery(mcorr.DiscoveryConfig{
			Budget:     budget,
			TopK:       *discTopK,
			EvictBelow: *discEvict,
			RoundRows:  *discRound,
			Lags:       lags,
		}))
	}
	mon, err := mcorr.NewMonitor(ds.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{}, monOpts...)
	if err != nil {
		return err
	}
	defer mon.Fleet().Close()
	if df, ok := mon.Fleet().(mcorr.DiscoveryFleet); ok {
		admitted, budget, candidates := df.BudgetInfo()
		log.Printf("pair budget: %d admitted of %d candidates (budget %d)", admitted, candidates, budget)
	}

	// The collector receives agent batches; we drain them into the
	// monitor row by row. With -data-dir the store is WAL-backed: every
	// sample is durably logged before the agent's batch is acked, and a
	// restarted collector replays the log instead of starting empty.
	var store *mcorr.Store
	if *dataDir != "" {
		policy, err := mcorr.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		var replayed int
		store, replayed, err = mcorr.OpenDurableStore(*dataDir, timeseries.SampleStep, 0, policy)
		if err != nil {
			return err
		}
		defer mcorr.CloseDurableStore(store)
		log.Printf("durable store in %s (fsync=%s): %d samples replayed from WAL", *dataDir, policy, replayed)
	} else {
		store, err = mcorr.NewStore(timeseries.SampleStep, 0)
		if err != nil {
			return err
		}
	}
	srv, err := mcorr.NewCollectorServer(store)
	if err != nil {
		return err
	}
	if *flowQueue > 0 || *agentRate > 0 || *writeTO > 0 {
		policy, err := mcorr.ParseShedPolicy(*shedPolicy)
		if err != nil {
			return err
		}
		srv.SetFlow(mcorr.FlowConfig{
			QueueDepth:   *flowQueue,
			Shed:         policy,
			AgentRate:    *agentRate,
			AgentBurst:   *agentBurst,
			WriteTimeout: *writeTO,
		})
		log.Printf("flow control: queue=%d shed=%s agent-rate=%.0f/s", *flowQueue, policy, *agentRate)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("collector listening on %s", bound)

	// One reliable TCP agent per machine (reconnects with backoff, so a
	// collector blip never loses samples), each with a heartbeat loop.
	agents := make([]*mcorr.ReliableAgent, *machines)
	for i := range agents {
		agents[i] = mcorr.NewReliableAgent(bound.String(), simulator.MachineName("L", i), mcorr.ReliableConfig{})
		defer agents[i].Close()
	}
	hb, err := mcorr.DialCollector(bound.String(), "heartbeat-probe")
	if err != nil {
		return err
	}
	defer hb.Close()
	stopHB := hb.StartHeartbeats(2 * time.Second)
	defer stopHB()

	ids := ds.IDs()
	if *rows > timeseries.SamplesPerDay {
		*rows = timeseries.SamplesPerDay
	}
	log.Printf("streaming %d rows of day 2 through %d agents (fault: %s %s-%s)",
		*rows, *machines, fault.Kind, fault.Start.Format("15:04"), fault.End.Format("15:04"))
	alarms := 0
	for k := 0; k < *rows; k++ {
		if *pace > 0 {
			time.Sleep(*pace)
		}
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		// Each agent ships its machine's samples for this timestamp.
		for i, a := range agents {
			machine := simulator.MachineName("L", i)
			var batch []mcorr.Sample
			for _, id := range ids {
				if id.Machine != machine {
					continue
				}
				s := ds.Get(id)
				if idx, ok := s.IndexOf(tm); ok {
					batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[idx]})
				}
			}
			if err := a.Send(batch); err != nil {
				return fmt.Errorf("agent %s: %w", machine, err)
			}
		}
		// Collect what the server stored for this row and feed the monitor.
		rowDS := store.QueryAll(tm, tm.Add(timeseries.SampleStep))
		var samples []mcorr.Sample
		for _, id := range rowDS.IDs() {
			s := rowDS.Get(id)
			if s.Len() > 0 {
				samples = append(samples, mcorr.Sample{ID: id, Time: tm, Value: s.Values[0]})
			}
		}
		reports, err := mon.Ingest(samples...)
		if err != nil {
			return err
		}
		for _, r := range reports {
			marker := ""
			if fault.ActiveAt(r.Time) {
				marker = "  <- ground-truth fault window"
			}
			if r.System < 0.75 {
				alarms++
				log.Printf("LOW FITNESS Q=%.3f at %s%s", r.System, r.Time.Format("15:04"), marker)
			} else if r.Time.Minute() == 0 {
				log.Printf("Q=%.3f at %s%s", r.System, r.Time.Format("15:04"), marker)
			}
		}
		if df, ok := mon.Fleet().(mcorr.DiscoveryFleet); ok {
			for _, ev := range df.DrainDiscoveryEvents() {
				log.Printf("DISCOVER round=%d admitted=%d evicted=%d pairs=%d",
					ev.Round, len(ev.Admitted), len(ev.Evicted), ev.Pairs)
			}
		}
		if *dataDir != "" && *ckptEvery > 0 && (k+1)%*ckptEvery == 0 {
			if err := mcorr.CheckpointStore(*dataDir, store); err != nil {
				return err
			}
		}
	}
	if *dataDir != "" {
		if err := mcorr.CheckpointStore(*dataDir, store); err != nil {
			return err
		}
	}
	if diag := mon.Diagnosis(); diag != nil {
		for _, d := range diag.Incidents() {
			log.Printf("INCIDENT %s state=%s severity=%s impact=%s suspect=%s candidates=%d",
				d.ID, d.State, d.Severity, d.ImpactTime.Format("15:04"), d.Suspect, len(d.Candidates))
		}
	}
	log.Printf("done: %d low-fitness rows flagged; server stats: %+v", alarms, srv.Stats())
	return nil
}
