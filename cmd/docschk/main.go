// Command docschk is the documentation gate behind `make docs-check`.
// It walks the repository and fails (exit 1) when documentation has
// drifted from the code:
//
//   - every package (root, internal, cmd, examples) must carry a package
//     comment;
//   - every exported top-level identifier — funcs, methods on exported
//     types, types, and const/var specs — must have a doc comment
//     (grouped const/var blocks may be documented at the block level);
//   - every relative link in *.md files must point at a file or
//     directory that exists.
//
// Usage: docschk [root] (default ".").
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docschk: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docschk: ok")
}

// skipDir reports whether a directory should not be descended into.
func skipDir(name string) bool {
	return name == ".git" || name == "testdata" || strings.HasPrefix(name, ".")
}

// checkGoDocs parses every non-test Go file and returns one problem line
// per missing package comment or undocumented exported identifier.
func checkGoDocs(root string) []string {
	var problems []string
	pkgHasComment := map[string]bool{} // dir -> any file carries a package comment
	pkgFiles := map[string][]*ast.File{}
	pkgNames := map[string]string{}
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		pkgFiles[dir] = append(pkgFiles[dir], f)
		pkgNames[dir] = f.Name.Name
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			pkgHasComment[dir] = true
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walk: %v", err))
		return problems
	}

	for dir, files := range pkgFiles {
		if !pkgHasComment[dir] {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package comment (add a doc.go)", dir, pkgNames[dir]))
		}
		for _, f := range files {
			problems = append(problems, undocumentedIn(fset, f)...)
		}
	}
	return problems
}

// undocumentedIn returns a problem per exported top-level identifier in
// one file that has no doc comment.
func undocumentedIn(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems,
			fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc on the grouped block, the spec, or a
					// trailing line comment all count.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a func is free-standing or a method
// on an exported type; methods on unexported types are not API surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link target in *.md files
// exists on disk (anchors are stripped; absolute URLs are ignored).
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, statErr := os.Stat(resolved); statErr != nil {
				problems = append(problems,
					fmt.Sprintf("%s: broken relative link (%s)", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("walk md: %v", err))
	}
	return problems
}
