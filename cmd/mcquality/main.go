// Command mcquality runs the detection-quality harness: the incident
// acceptance scenario (injected fault on one machine of a simulated
// group) replayed at a sweep of pair budgets, scored for recall,
// precision, time-to-detect and localization rank against the
// simulator's ground truth. The JSON report answers "how small can the
// pair budget go before detection degrades?" — the budget-tuning input
// for -pair-budget.
//
// Usage:
//
//	mcquality -out QUALITY.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcorr/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcquality:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "", "write the JSON report here (empty = stdout table only)")
		budgets = flag.String("budgets", strings.Join(eval.QualityBudgets, ","), "comma-separated pair-budget sweep (\"full\", \"N%\" or absolute counts)")
	)
	flag.Parse()
	var sweep []string
	for _, b := range strings.Split(*budgets, ",") {
		if b = strings.TrimSpace(b); b != "" {
			sweep = append(sweep, b)
		}
	}
	rep, err := eval.RunQuality(sweep)
	if err != nil {
		return err
	}
	if err := eval.QualityTable(rep).Render(os.Stdout); err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		err = eval.WriteQualityJSON(f, rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
