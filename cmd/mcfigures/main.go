// Command mcfigures regenerates every figure of the paper's evaluation
// section against the simulated environment, printing numeric tables and
// shape checks, and optionally writing per-table CSV files.
//
// Usage:
//
//	mcfigures                 # all figures, default environment
//	mcfigures -fig fig12      # one figure
//	mcfigures -csv out/       # also write CSVs
//	mcfigures -list           # list figure IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mcorr/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcfigures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figID    = flag.String("fig", "all", "figure ID to run, or 'all'")
		seed     = flag.Int64("seed", 2008, "environment seed")
		machines = flag.Int("machines", 12, "machines per group")
		csvDir   = flag.String("csv", "", "directory for per-table CSV output")
		report   = flag.String("report", "", "write a markdown paper-vs-measured report to this file")
		list     = flag.Bool("list", false, "list figure IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, g := range eval.Generators() {
			fmt.Printf("%-10s %s\n", g.ID, g.Description)
		}
		return nil
	}

	fmt.Fprintf(os.Stderr, "mcfigures: generating environment (3 groups x %d machines x 30 days, seed %d)...\n", *machines, *seed)
	env, err := eval.NewEnv(eval.EnvConfig{Seed: *seed, Machines: *machines})
	if err != nil {
		return err
	}

	var figures []*eval.Figure
	if *figID == "all" {
		figures, err = eval.RunAll(env, os.Stdout)
		if err != nil {
			return err
		}
	} else {
		fig, err := eval.RunFigure(env, *figID)
		if err != nil {
			return err
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		figures = []*eval.Figure{fig}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for _, fig := range figures {
			for i, tab := range fig.Tables {
				name := fmt.Sprintf("%s_%d.csv", fig.ID, i)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return err
				}
				err = tab.WriteCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(os.Stderr, "mcfigures: CSVs written to %s\n", *csvDir)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		err = eval.WriteMarkdownReport(f, eval.ReportTitle(time.Now()), env, figures)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mcfigures: report written to %s\n", *report)
	}
	return nil
}
