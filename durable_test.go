package mcorr_test

import (
	"errors"
	"math"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/manager"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// feedRows streams n full rows starting at from into the durable monitor,
// mirroring mcdetect's durable loop (Ingest + forced flush per row).
func feedRows(t *testing.T, dm *mcorr.DurableMonitor, ds *timeseries.Dataset, from time.Time, n int) []mcorr.StepReport {
	t.Helper()
	var out []mcorr.StepReport
	for k := 0; k < n; k++ {
		tm := from.Add(time.Duration(k) * timeseries.SampleStep)
		var batch []mcorr.Sample
		for _, id := range ds.IDs() {
			s := ds.Get(id)
			if i, ok := s.IndexOf(tm); ok {
				batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
			}
		}
		rep, err := dm.Ingest(batch...)
		if err != nil {
			t.Fatalf("Ingest row %d: %v", k, err)
		}
		out = append(out, rep...)
		forced, err := dm.FlushUpTo(tm.Add(timeseries.SampleStep))
		if err != nil {
			t.Fatalf("FlushUpTo row %d: %v", k, err)
		}
		out = append(out, forced...)
	}
	return out
}

func TestDurableMonitorRecoveryReproducesTrajectory(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "D", Machines: 2, Days: 2, Seed: 41,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, day1)
	mcfg := mcorr.ManagerConfig{Model: mcorr.ModelConfig{Adaptive: true}}
	const total = 30

	// Baseline: an uninterrupted durable run over all rows.
	base, err := mcorr.NewDurableMonitor(history, mcfg, mcorr.DurabilityConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewDurableMonitor: %v", err)
	}
	want := make(map[time.Time]uint64, total)
	for _, r := range feedRows(t, base, ds, day1, total) {
		want[r.Time] = math.Float64bits(r.System)
	}
	if len(want) != total {
		t.Fatalf("baseline scored %d rows, want %d", len(want), total)
	}
	if err := base.Close(); err != nil {
		t.Fatalf("baseline Close: %v", err)
	}

	// Crashed run: same data, checkpoint every 10 rows, abandoned without
	// Close after 17 rows (the manager pool is released, the WAL and
	// checkpoint are left as the "crash" would leave them).
	dir := t.TempDir()
	dcfg := mcorr.DurabilityConfig{DataDir: dir, CheckpointEvery: 10}
	crash, err := mcorr.NewDurableMonitor(history, mcfg, dcfg)
	if err != nil {
		t.Fatalf("NewDurableMonitor(crash): %v", err)
	}
	pre := feedRows(t, crash, ds, day1, 17)
	for _, r := range pre {
		if bits, ok := want[r.Time]; !ok || bits != math.Float64bits(r.System) {
			t.Fatalf("pre-crash row %s diverged from baseline", r.Time)
		}
	}
	crash.Manager().Close()

	if !mcorr.HasCheckpoint(dir) {
		t.Fatal("HasCheckpoint = false after a checkpointed run")
	}
	dm, recovered, err := mcorr.OpenDurableMonitor(dcfg, nil)
	if err != nil {
		t.Fatalf("OpenDurableMonitor: %v", err)
	}
	defer dm.Close()
	applied, _ := dm.RecoveryStats()
	if applied == 0 {
		t.Error("recovery replayed 0 WAL samples; the tail after the checkpoint should not be empty")
	}
	// Rows 10..16 were after the last checkpoint: recovery re-scores them.
	if len(recovered) != 7 {
		t.Fatalf("recovered %d rows, want 7 (rows after the 10-row checkpoint)", len(recovered))
	}
	resumeAt := day1.Add(17 * timeseries.SampleStep)
	if !dm.Cursor().Equal(resumeAt) {
		t.Fatalf("Cursor after recovery = %s, want %s", dm.Cursor(), resumeAt)
	}

	post := feedRows(t, dm, ds, resumeAt, total-17)
	seen := make(map[time.Time]bool)
	for _, r := range append(recovered, post...) {
		bits, ok := want[r.Time]
		if !ok {
			t.Fatalf("recovered run scored unexpected row %s", r.Time)
		}
		if bits != math.Float64bits(r.System) {
			t.Fatalf("row %s: Q=%x after recovery, baseline %x — trajectory diverged",
				r.Time, math.Float64bits(r.System), bits)
		}
		seen[r.Time] = true
	}
	for k := 10; k < total; k++ {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		if !seen[tm] {
			t.Errorf("row %s missing from recovered trajectory", tm)
		}
	}
}

func TestDurableMonitorCleanCloseRecoversInstantly(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "D", Machines: 2, Days: 2, Seed: 43,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	dir := t.TempDir()
	dcfg := mcorr.DurabilityConfig{DataDir: dir}
	dm, err := mcorr.NewDurableMonitor(ds.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{}, dcfg)
	if err != nil {
		t.Fatalf("NewDurableMonitor: %v", err)
	}
	feedRows(t, dm, ds, day1, 5)
	if err := dm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := dm.Ingest(); err == nil {
		t.Error("Ingest after Close: want error")
	}

	re, recovered, err := mcorr.OpenDurableMonitor(dcfg, nil)
	if err != nil {
		t.Fatalf("OpenDurableMonitor after clean close: %v", err)
	}
	defer re.Close()
	applied, skipped := re.RecoveryStats()
	if applied != 0 || skipped != 0 || len(recovered) != 0 {
		t.Errorf("clean close recovery replayed %d/%d samples, re-scored %d rows; want all zero",
			applied, skipped, len(recovered))
	}
	if wantCursor := day1.Add(5 * timeseries.SampleStep); !re.Cursor().Equal(wantCursor) {
		t.Errorf("Cursor = %s, want %s", re.Cursor(), wantCursor)
	}
}

func TestOpenDurableMonitorWithoutCheckpoint(t *testing.T) {
	_, _, err := mcorr.OpenDurableMonitor(mcorr.DurabilityConfig{DataDir: t.TempDir()}, nil)
	if !errors.Is(err, manager.ErrNoCheckpoint) {
		t.Fatalf("empty dir = %v, want ErrNoCheckpoint", err)
	}
}

func TestOpenDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	id := timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}
	t0 := time.Date(2026, time.March, 1, 0, 0, 0, 0, time.UTC)

	s, replayed, err := mcorr.OpenDurableStore(dir, time.Minute, 0, mcorr.SyncBatch)
	if err != nil {
		t.Fatalf("OpenDurableStore: %v", err)
	}
	if replayed != 0 {
		t.Fatalf("fresh dir replayed %d samples", replayed)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(mcorr.Sample{ID: id, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mcorr.CheckpointStore(dir, s); err != nil {
		t.Fatalf("CheckpointStore: %v", err)
	}
	for i := 4; i < 7; i++ {
		if err := s.Append(mcorr.Sample{ID: id, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mcorr.CloseDurableStore(s); err != nil {
		t.Fatalf("CloseDurableStore: %v", err)
	}

	s2, replayed, err := mcorr.OpenDurableStore(dir, time.Minute, 0, mcorr.SyncBatch)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mcorr.CloseDurableStore(s2)
	if replayed != 3 {
		t.Errorf("replayed %d samples, want 3 (the tail past the checkpoint)", replayed)
	}
	if got := s2.Len(id); got != 7 {
		t.Errorf("recovered store has %d samples, want 7", got)
	}
	series, err := s2.Query(id, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range series.Values {
		if v != float64(i) {
			t.Errorf("value %d = %v, want %d", i, v, i)
		}
	}
}
