package mcorr

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"mcorr/internal/obs"
)

// TestOperationsDocCoverage keeps OPERATIONS.md honest: every flag the
// shipped binaries declare and every metric family the live registry
// exports must be mentioned in the runbook. New flags and metrics fail
// this test until they are documented.
func TestOperationsDocCoverage(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatalf("read OPERATIONS.md: %v", err)
	}
	text := string(doc)

	flagDecl := regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Float64|Duration)\(\s*"([a-z][a-z-]*)"`)
	for _, src := range []string{"cmd/mcdetect/main.go", "cmd/mccollect/main.go", "cmd/mcshard/main.go"} {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("read %s: %v", src, err)
		}
		matches := flagDecl.FindAllStringSubmatch(string(b), -1)
		if len(matches) == 0 {
			t.Fatalf("%s: found no flag declarations — regex out of date?", src)
		}
		for _, m := range matches {
			if want := fmt.Sprintf("`-%s`", m[1]); !strings.Contains(text, want) {
				t.Errorf("%s declares -%s but OPERATIONS.md does not mention %s", src, m[1], want)
			}
		}
	}

	// The process gauges register lazily when an ops server starts;
	// spin one up so MetricNames reports the full surface an operator
	// would actually scrape.
	srv, err := obs.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer srv.Close()

	names := obs.Default().MetricNames()
	if len(names) == 0 {
		t.Fatal("registry reports no metric families")
	}
	for _, name := range names {
		if want := fmt.Sprintf("`%s`", name); !strings.Contains(text, want) {
			t.Errorf("registry exports %s but OPERATIONS.md does not mention %s", name, want)
		}
	}
}
