// Streaming: the full distributed pipeline on real sockets. Agents (one
// per machine) ship samples over TCP to a collector; the collector lands
// them in the time-series store; a Monitor scores each completed row with
// the adaptive model fleet and prints anomalies as they happen.
package main

import (
	"fmt"
	"log"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two days of data for three machines; day 2 carries a flapping
	// fault (values stay in range, transitions go wild) from 05:00-07:00.
	day2 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "flap", Machine: simulator.MachineName("S", 1), Metric: "",
		Kind:  simulator.FaultFlapping,
		Start: day2.Add(5 * time.Hour), End: day2.Add(7 * time.Hour),
	}
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "S", Machines: 3, Days: 2, Seed: 99, Faults: []simulator.Fault{fault},
	})
	if err != nil {
		return err
	}

	// Train the monitor on day 1.
	mon, err := mcorr.NewMonitor(ds.Slice(timeseries.MonitoringStart, day2), mcorr.ManagerConfig{})
	if err != nil {
		return err
	}

	// Stand up the collector and connect one TCP agent per machine.
	store, err := mcorr.NewStore(timeseries.SampleStep, 0)
	if err != nil {
		return err
	}
	srv, err := mcorr.NewCollectorServer(store)
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("collector listening on %s\n", addr)

	machines := ds.Machines()
	agents := make([]*mcorr.CollectorAgent, len(machines))
	for i, m := range machines {
		a, err := mcorr.DialCollector(addr.String(), m)
		if err != nil {
			return err
		}
		defer a.Close()
		agents[i] = a
	}
	fmt.Printf("%d agents connected\n\n", len(agents))

	// Stream the first 10 hours of day 2 (100 rows), one timestamp at a
	// time, through the sockets and into the monitor.
	ids := ds.IDs()
	rows := 100
	anomalies := 0
	for k := 0; k < rows; k++ {
		tm := day2.Add(time.Duration(k) * timeseries.SampleStep)
		for i, m := range machines {
			var batch []mcorr.Sample
			for _, id := range ids {
				if id.Machine != m {
					continue
				}
				s := ds.Get(id)
				if idx, ok := s.IndexOf(tm); ok {
					batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[idx]})
				}
			}
			if err := agents[i].Send(batch); err != nil {
				return err
			}
		}
		// Hand the freshly collected row to the monitor.
		row := store.QueryAll(tm, tm.Add(timeseries.SampleStep))
		var samples []mcorr.Sample
		for _, id := range row.IDs() {
			if s := row.Get(id); s.Len() > 0 {
				samples = append(samples, mcorr.Sample{ID: id, Time: tm, Value: s.Values[0]})
			}
		}
		reports, err := mon.Ingest(samples...)
		if err != nil {
			return err
		}
		for _, r := range reports {
			if r.System < 0.6 {
				anomalies++
				inFault := ""
				if fault.ActiveAt(r.Time) {
					inFault = "  (inside the ground-truth fault window)"
				}
				fmt.Printf("%s  Q=%.3f  ANOMALY%s\n", r.Time.Format("15:04"), r.System, inFault)
			}
		}
	}
	st := srv.Stats()
	fmt.Printf("\nstreamed %d rows; server received %d samples over %d connections; %d anomalous rows\n",
		rows, st.Samples, st.TotalConns, anomalies)
	return nil
}
