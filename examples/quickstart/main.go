// Quickstart: train the paper's transition-probability model on one pair
// of correlated measurements, stream new observations through it, and
// catch the moment their correlation breaks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcorr"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// History: two measurements driven by the same workload. Think
	// "requests per second" and "CPU utilization" sampled every 6
	// minutes for a week (≈1680 points).
	var history []mcorr.Point
	load := 50.0
	for i := 0; i < 1680; i++ {
		load = clamp(load+rng.NormFloat64()*3, 5, 100)
		history = append(history, observe(load, rng))
	}

	// Train the model M = (G, V): an adaptive grid over the 2-D space
	// plus a Bayesian transition matrix between its cells.
	model, err := mcorr.TrainModel(history, mcorr.ModelConfig{Adaptive: true})
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	fmt.Printf("trained model: %d grid cells\n\n", model.NumCells())

	// Online phase: normal samples score high fitness...
	fmt.Println("normal operation:")
	for i := 0; i < 5; i++ {
		load = clamp(load+rng.NormFloat64()*3, 5, 100)
		report(model.Step(observe(load, rng)))
	}

	// ...then the CPU decouples from the load (a runaway process):
	// each value alone looks plausible, but the *joint* transition is
	// wildly improbable, so the fitness score collapses.
	fmt.Println("\nfault injected (CPU decoupled from load):")
	var faulty mcorr.Point
	for i := 0; i < 5; i++ {
		load = clamp(load+rng.NormFloat64()*3, 5, 100)
		p := observe(load, rng)
		p.Y = 95 + rng.NormFloat64() // pegged CPU, independent of load
		if i == 0 {
			// Ask the model to explain the first faulty observation in
			// measurement units — the paper's human-debugging output.
			if ex, ok := model.Explain(p, 1); ok {
				fmt.Printf("  explain: pair was in %s, expected %s (p=%.3f)\n",
					ex.From, ex.Expected[0], ex.Expected[0].Prob)
			}
			faulty = p
		}
		report(model.Step(p))
	}
	fmt.Printf("\n(the faulty observation was %+v — plausible alone, impossible jointly)\n", faulty)
}

// observe derives the two correlated measurements from the load.
func observe(load float64, rng *rand.Rand) mcorr.Point {
	return mcorr.Point{
		X: load*120 + rng.NormFloat64()*80,           // network octets/s
		Y: 100*(1-1/(1+load/40)) + rng.NormFloat64(), // CPU %, saturating
	}
}

func report(res mcorr.StepResult) {
	switch {
	case res.OutOfGrid:
		// The point left the learned operating region entirely: the
		// paper assigns it probability 0 and fitness 0.
		fmt.Println("  outside the learned operating region (P=0, fitness=0)  ANOMALY")
	case !res.Scored:
		fmt.Println("  (warming up)")
	case res.Fitness < 0.5:
		fmt.Printf("  fitness=%.3f  P(transition)=%.4f  ANOMALY\n", res.Fitness, res.Prob)
	default:
		fmt.Printf("  fitness=%.3f  P(transition)=%.4f  ok\n", res.Fitness, res.Prob)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
