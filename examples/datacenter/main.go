// Datacenter: whole-system problem determination and localization. A
// simulated group of servers shares a diurnal workload; one machine
// misbehaves for two hours. The manager watches every measurement pair
// (l(l−1)/2 models), aggregates the paper's three fitness levels
// (pair → measurement → system), and drills down to the faulty machine.
package main

import (
	"fmt"
	"log"
	"time"

	"mcorr"
	"mcorr/internal/eval"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Simulate 6 machines for 2 days; machine D-srv-02 breaks its
	// correlations from 09:00 to 11:00 on day 2.
	day2 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	fault := simulator.Fault{
		ID: "incident-42", Machine: simulator.MachineName("D", 2), Metric: "",
		Kind:  simulator.FaultCorrelationBreak,
		Start: day2.Add(9 * time.Hour), End: day2.Add(11 * time.Hour), Magnitude: 2,
	}
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "D", Machines: 6, Days: 2, Seed: 11, Faults: []simulator.Fault{fault},
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d measurements on %d machines\n", ds.Len(), len(ds.Machines()))

	// Train on day 1, with alarms flowing into a channel sink behind a
	// one-hour deduper.
	sink := mcorr.NewChannelSink(256)
	mgr, err := mcorr.NewManager(ds.Slice(timeseries.MonitoringStart, day2), mcorr.ManagerConfig{
		Model:                mcorr.ModelConfig{Adaptive: true},
		MeasurementThreshold: 0.55,
		SystemThreshold:      0.8,
		Sink:                 mcorr.NewDeduper(sink, time.Hour),
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d pairwise models\n\n", len(mgr.Pairs()))

	// Replay day 2 as the online stream, in two phases: the operator's
	// normal morning, then — once the system score dips — a drill-down
	// window whose accumulated per-machine averages localize the fault.
	// (Accumulating over the whole day would dilute a 2-hour incident.)
	reports, err := mgr.Run(ds, day2, day2.Add(9*time.Hour))
	if err != nil {
		return err
	}
	mgr.ResetAccumulators()
	drill, err := mgr.Run(ds, day2.Add(9*time.Hour), day2.Add(12*time.Hour))
	if err != nil {
		return err
	}
	loc := mgr.Localize() // machine ranking over the 9am-12pm window
	mgr.ResetAccumulators()
	rest, err := mgr.Run(ds, day2.Add(12*time.Hour), day2.AddDate(0, 0, 1))
	if err != nil {
		return err
	}
	reports = append(reports, drill...)
	reports = append(reports, rest...)

	// System-level view: Q per six-hour quarter (the paper's Figure 12
	// x-axis), with the fault window standing out.
	timeline := eval.SystemTimeline(reports)
	quarters := eval.QuarterMeans(timeline)
	fmt.Println("system fitness Q by quarter of day 2:")
	for q, label := range timeseries.QuarterLabels {
		marker := ""
		if q == 1 {
			marker = "   <- fault 09:00-11:00 in here"
		}
		fmt.Printf("  %-9s %.3f%s\n", label, quarters[q], marker)
	}
	fmt.Printf("timeline: %s\n\n", eval.Sparkline(eval.Downsample(eval.Scores(timeline), 80), 0, 1))

	// Drill down: machine ranking accumulated over the 9am-12pm window
	// that contains the incident.
	fmt.Println("machines ranked by average fitness over 9am-12pm (worst first):")
	for i, ms := range loc.Machines {
		marker := ""
		if ms.Machine == fault.Machine {
			marker = "   <- ground truth"
		}
		fmt.Printf("  %d. %-12s Q=%.4f%s\n", i+1, ms.Machine, ms.Score, marker)
	}
	if loc.Suspect() == fault.Machine {
		fmt.Println("\nlocalization: CORRECT")
	} else {
		fmt.Println("\nlocalization: MISSED")
	}

	// And the alarm stream an operator would have seen.
	close(sink.C)
	var pairAlarms, measAlarms, sysAlarms int
	var sample *mcorr.Alarm
	for a := range sink.C {
		a := a
		switch a.Scope {
		case mcorr.ScopePair:
			pairAlarms++
		case mcorr.ScopeMeasurement:
			measAlarms++
			if sample == nil && a.Measurement.Machine == fault.Machine {
				sample = &a
			}
		case mcorr.ScopeSystem:
			sysAlarms++
		}
	}
	fmt.Printf("\nalarms (deduped): %d measurement, %d system, %d pair\n", measAlarms, sysAlarms, pairAlarms)
	if sample != nil {
		fmt.Printf("example: %s\n", sample)
	}
	return nil
}
