// Baselines: why model transitions instead of static shapes? This example
// pits the paper's transition-probability model against the two prior-work
// detectors it improves upon — linear invariants (Jiang et al.) and
// Gaussian-mixture ellipses (Guo et al.) — on a temporal anomaly that
// leaves every individual sample looking perfectly normal.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcorr/internal/baseline"
	"mcorr/internal/core"
	"mcorr/internal/mathx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// system emits a two-regime pair: a batch job toggles the machine between
// a light profile (y ≈ 0.5x) and a heavy one (y ≈ 4x).
func system(rng *rand.Rand, n int) []mathx.Point2 {
	pts := make([]mathx.Point2, n)
	x, heavy := 50.0, false
	for i := range pts {
		if rng.Float64() < 0.01 {
			heavy = !heavy
		}
		x = clamp(x+rng.NormFloat64()*2, 5, 100)
		y := 0.5 * x
		if heavy {
			y = 4 * x
		}
		pts[i] = mathx.Point2{X: x, Y: y + rng.NormFloat64()}
	}
	return pts
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	history := system(rng, 5000)

	model, err := core.Train(history, core.Config{})
	if err != nil {
		return err
	}
	li, err := baseline.TrainLinearInvariant(history, baseline.LinearConfig{})
	if err != nil {
		return err
	}
	gmm, err := baseline.TrainGMMEllipse(history, baseline.GMMEllipseConfig{Seed: 3})
	if err != nil {
		return err
	}
	detectors := []baseline.PairDetector{
		&baseline.TransitionAdapter{Model: model}, li, gmm,
	}

	fmt.Printf("trained on %d points; linear invariant R²=%.3f (valid=%v); transition grid: %d cells\n\n",
		len(history), li.R2(), li.Valid(), model.NumCells())

	// Scenario 1: normal continuation — everyone should stay quiet.
	normal := system(rand.New(rand.NewSource(8)), 400)
	baselineScore := make(map[string]float64)
	fmt.Println("scenario 1: normal continuation")
	for _, d := range detectors {
		d.Reset()
		s := baseline.MeanScore(d, normal)
		baselineScore[d.Name()] = s
		fmt.Printf("  %-24s mean score %.3f\n", d.Name(), s)
	}

	// Scenario 2: flapping — the system oscillates between two perfectly
	// valid operating points every sample. Marginals: normal. Scatter:
	// on the learned manifold. Transitions: absurd.
	flap := make([]mathx.Point2, 400)
	for i := range flap {
		if i%2 == 0 {
			flap[i] = mathx.Point2{X: 10, Y: 5 + rng.NormFloat64()}
		} else {
			flap[i] = mathx.Point2{X: 95, Y: 47.5 + rng.NormFloat64()}
		}
	}
	fmt.Println("\nscenario 2: flapping between two valid states (temporal anomaly)")
	for _, d := range detectors {
		d.Reset()
		score := baseline.MeanScore(d, flap)
		// A detector "sees" the fault when its score drops well below
		// its own normal-operation level.
		verdict := "BLIND"
		if score < baselineScore[d.Name()]-0.15 {
			verdict = "detects it"
		}
		fmt.Printf("  %-24s mean score %.3f (normal %.3f)  -> %s\n",
			d.Name(), score, baselineScore[d.Name()], verdict)
	}

	// Scenario 3: an off-manifold outlier — the classic spatial anomaly
	// every detector should catch (the transition model and GMM clearly;
	// the linear invariant only because its residual explodes too).
	outlier := append(system(rand.New(rand.NewSource(9)), 50),
		mathx.Point2{X: 50, Y: 350})
	fmt.Println("\nscenario 3: spatial outlier far off the manifold (last point)")
	for _, d := range detectors {
		d.Reset()
		var last float64
		var ok bool
		for _, p := range outlier {
			last, ok = d.Step(p)
		}
		if !ok {
			continue
		}
		fmt.Printf("  %-24s final-point score %.3f\n", d.Name(), last)
	}

	fmt.Println("\ntakeaway: only the transition-probability model sees both spatial AND temporal anomalies —")
	fmt.Println("the paper's argument for modeling correlations across observation time.")
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
