package mcorr_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

func TestTrainModelFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	history := make([]mcorr.Point, 2000)
	x := 50.0
	for i := range history {
		x += rng.NormFloat64() * 2
		if x < 0 {
			x = 0
		}
		if x > 100 {
			x = 100
		}
		history[i] = mcorr.Point{X: x, Y: 2*x + rng.NormFloat64()*3}
	}
	model, err := mcorr.TrainModel(history, mcorr.ModelConfig{Adaptive: true})
	if err != nil {
		t.Fatalf("TrainModel: %v", err)
	}
	model.Step(mcorr.Point{X: 50, Y: 100})
	res := model.Step(mcorr.Point{X: 51, Y: 102})
	if !res.Scored || res.Fitness <= 0 {
		t.Errorf("facade Step = %+v", res)
	}
}

func TestMonitorScoresCompleteRows(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "F", Machines: 2, Days: 2, Seed: 23,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mon, err := mcorr.NewMonitor(ds.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if mon.Manager() == nil {
		t.Fatal("Manager accessor nil")
	}

	// Stream the second day sample row by sample row.
	ids := ds.IDs()
	var reports []mcorr.StepReport
	for k := 0; k < 20; k++ {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		var batch []mcorr.Sample
		for _, id := range ids {
			s := ds.Get(id)
			i, ok := s.IndexOf(tm)
			if !ok {
				t.Fatalf("missing sample at %v", tm)
			}
			batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
		}
		rep, err := mon.Ingest(batch...)
		if err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		reports = append(reports, rep...)
	}
	if len(reports) != 20 {
		t.Fatalf("scored rows = %d, want 20", len(reports))
	}
	// After warm-up, system fitness should be high and finite.
	var sum float64
	var n int
	for _, r := range reports[1:] {
		if !math.IsNaN(r.System) {
			sum += r.System
			n++
		}
	}
	if n == 0 || sum/float64(n) < 0.7 {
		t.Errorf("streaming system fitness = %.3f over %d rows", sum/float64(n), n)
	}
}

func TestMonitorPartialRowsWaitThenFlush(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "F", Machines: 2, Days: 2, Seed: 29,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mon, err := mcorr.NewMonitor(ds.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	ids := ds.IDs()
	// Send only the first measurement's sample: the row is incomplete, so
	// nothing is scored yet.
	s0 := ds.Get(ids[0])
	i, _ := s0.IndexOf(day1)
	rep, err := mon.Ingest(mcorr.Sample{ID: ids[0], Time: day1, Value: s0.Values[i]})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(rep) != 0 {
		t.Errorf("incomplete row should not be scored, got %d reports", len(rep))
	}
	// Force it: FlushUpTo scores the partial row (links with gaps reset).
	forced := mon.FlushUpTo(day1.Add(timeseries.SampleStep))
	if len(forced) != 1 {
		t.Fatalf("FlushUpTo scored %d rows", len(forced))
	}
	if forced[0].ScoredPairs != 0 {
		t.Errorf("first-ever row cannot score pairs, got %d", forced[0].ScoredPairs)
	}
}

func TestMonitorScoreQueueBitIdentical(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "F", Machines: 2, Days: 2, Seed: 31,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, day1)
	inline, err := mcorr.NewMonitor(history, mcorr.ManagerConfig{})
	if err != nil {
		t.Fatalf("NewMonitor inline: %v", err)
	}
	queued, err := mcorr.NewMonitor(history, mcorr.ManagerConfig{}, mcorr.WithScoreQueue(4))
	if err != nil {
		t.Fatalf("NewMonitor queued: %v", err)
	}
	ids := ds.IDs()
	for k := 0; k < 40; k++ {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		var batch []mcorr.Sample
		for _, id := range ids {
			s := ds.Get(id)
			if i, ok := s.IndexOf(tm); ok {
				batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
			}
		}
		a, err := inline.Ingest(batch...)
		if err != nil {
			t.Fatalf("inline Ingest: %v", err)
		}
		b, err := queued.Ingest(batch...)
		if err != nil {
			t.Fatalf("queued Ingest: %v", err)
		}
		if len(a) != len(b) {
			t.Fatalf("row %d: inline scored %d, queued scored %d", k, len(a), len(b))
		}
		for i := range a {
			// Bit-for-bit: the row queue only pipelines, never reorders.
			if math.Float64bits(a[i].System) != math.Float64bits(b[i].System) ||
				a[i].ScoredPairs != b[i].ScoredPairs || !a[i].Time.Equal(b[i].Time) {
				t.Fatalf("row %d diverged: inline %+v vs queued %+v", k, a[i], b[i])
			}
		}
	}
	if inline.Fleet().SystemMean() != queued.Fleet().SystemMean() {
		t.Errorf("running means diverged: %v vs %v",
			inline.Fleet().SystemMean(), queued.Fleet().SystemMean())
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := mcorr.NewMonitor(mcorr.NewDataset(), mcorr.ManagerConfig{}); err == nil {
		t.Error("empty history: want error")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := mcorr.NewStore(time.Minute, 10); err != nil {
		t.Errorf("NewStore: %v", err)
	}
	if _, err := mcorr.NewSeries(mcorr.MeasurementID{Machine: "m", Metric: "x"}, time.Now(), time.Minute); err != nil {
		t.Errorf("NewSeries: %v", err)
	}
	sink := mcorr.NewChannelSink(4)
	dedup := mcorr.NewDeduper(sink, time.Hour)
	dedup.Publish(mcorr.Alarm{Time: time.Now(), Severity: mcorr.SeverityInfo, Scope: mcorr.ScopeSystem})
	if len(sink.C) != 1 {
		t.Error("facade alarm plumbing broken")
	}
	store, _ := mcorr.NewStore(time.Minute, 0)
	srv, err := mcorr.NewCollectorServer(store)
	if err != nil {
		t.Fatalf("NewCollectorServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	agent, err := mcorr.DialCollector(addr.String(), "facade-test")
	if err != nil {
		t.Fatalf("DialCollector: %v", err)
	}
	defer agent.Close()
	err = agent.Send([]mcorr.Sample{{
		ID:    mcorr.MeasurementID{Machine: "m", Metric: "cpu"},
		Time:  time.Now(),
		Value: 1,
	}})
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func TestFacadePersistence(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "F", Machines: 2, Days: 2, Seed: 31,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sub := mcorr.NewDataset()
	for _, id := range ds.IDs()[:6] {
		sub.Add(ds.Get(id))
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mgr, err := mcorr.NewManager(sub.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	var buf bytes.Buffer
	if err := mgr.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := mcorr.LoadManager(&buf, nil)
	if err != nil {
		t.Fatalf("LoadManager: %v", err)
	}
	if len(restored.Pairs()) != len(mgr.Pairs()) {
		t.Errorf("pairs %d != %d", len(restored.Pairs()), len(mgr.Pairs()))
	}
	// Pair-model persistence through the facade.
	ids := sub.IDs()
	model := mgr.Model(ids[0], ids[1])
	buf.Reset()
	if err := model.Save(&buf); err != nil {
		t.Fatalf("model Save: %v", err)
	}
	if _, err := mcorr.LoadModel(&buf); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
}

func TestFacadeReliableAgentAndEscalator(t *testing.T) {
	store, _ := mcorr.NewStore(time.Minute, 0)
	srv, err := mcorr.NewCollectorServer(store)
	if err != nil {
		t.Fatalf("NewCollectorServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	ra := mcorr.NewReliableAgent(addr.String(), "facade-rel", mcorr.ReliableConfig{})
	defer ra.Close()
	err = ra.Send([]mcorr.Sample{{
		ID:   mcorr.MeasurementID{Machine: "m", Metric: "cpu"},
		Time: time.Now(), Value: 1,
	}})
	if err != nil {
		t.Fatalf("reliable Send: %v", err)
	}
	sink := mcorr.NewChannelSink(8)
	esc := mcorr.NewEscalator(sink, 2, time.Hour)
	a := mcorr.Alarm{Time: time.Now(), Severity: mcorr.SeverityWarning, Scope: mcorr.ScopeSystem}
	esc.Publish(a)
	esc.Publish(a)
	if len(sink.C) != 3 { // two originals + one escalation
		t.Errorf("escalator published %d alarms, want 3", len(sink.C))
	}
}
