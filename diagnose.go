package mcorr

import (
	"mcorr/internal/diagnose"
	"mcorr/internal/obs"
)

// Diagnosis surface: the incident intelligence layer (see the
// internal/diagnose package). A monitor constructed with WithDiagnosis
// feeds every finished StepReport into a diagnosis engine that keeps
// bounded fitness histories, opens an incident when the system fitness
// Q stays below a threshold, and maintains a ranked root-cause digest —
// who broke first, fan-out of broken pair models, machine rollup via
// Localize, families, temporal chain, severity.
type (
	// DiagnosisConfig tunes the incident engine (zero value = defaults).
	DiagnosisConfig = diagnose.Config
	// DiagnosisEngine is the anomaly-triggered root-cause engine.
	DiagnosisEngine = diagnose.Engine
	// IncidentDigest is the compact explanation of one incident.
	IncidentDigest = diagnose.Digest
	// IncidentCandidate is one ranked root-cause candidate.
	IncidentCandidate = diagnose.Candidate
)

// WithDiagnosis attaches an incident diagnosis engine to the monitor.
// The engine observes the alarm stream and every step report strictly
// after scoring (nothing on the Manager.Step hot path), and its JSON API
// is mounted on every ops server under /api/v1/ (incidents, fitness,
// topology). For a durable monitor the engine's state rides in every
// checkpoint, so incidents — IDs and rankings included — survive crash
// recovery.
func WithDiagnosis(cfg DiagnosisConfig) MonitorOption {
	return func(o *monitorOptions) { o.diagnosis = &cfg }
}

// NewDiagnosisEngine builds a standalone incident engine wired to an
// already-trained fleet: the fleet's Localize backs the machine rollup
// and the diagnosis API is mounted under /api/v1/ on every ops server.
// Feed it StepReports with Observe after each scored row. Prefer
// WithDiagnosis when constructing a Monitor — this constructor is for
// batch flows (e.g. mcdetect replaying a file through Fleet.Run) that
// never build one.
func NewDiagnosisEngine(cfg DiagnosisConfig, fleet Fleet) *DiagnosisEngine {
	eng := diagnose.NewEngine(cfg)
	attachDiagnosis(eng, fleet)
	return eng
}

// attachDiagnosis finishes wiring an engine once the fleet exists: the
// Localize rollup source and the versioned ops API (the fleet also backs
// /api/v1/topology when it exposes the topology surface).
func attachDiagnosis(eng *DiagnosisEngine, fleet Fleet) {
	obs.RegisterOpsHandler("/api/v1/", wireDiagnosis(eng, fleet))
}

// wireDiagnosis builds the per-fleet diagnosis API without mounting it on
// the ops surface: the Localize rollup source is connected and the fleet's
// topology/discovery views attached. Standalone monitors mount the result
// themselves (attachDiagnosis); tenants hand it to the registry-level
// TenantAPI, which dispatches by ?tenant=. eng may be nil for a tenant
// without a diagnosis engine — the API then serves topology only.
func wireDiagnosis(eng *DiagnosisEngine, fleet Fleet) *diagnose.API {
	if eng != nil {
		eng.SetLocalizeFn(fleet.Localize)
	}
	fv, _ := fleet.(diagnose.FleetView)
	api := diagnose.NewAPI(eng, fv)
	if dv, ok := fleet.(diagnose.DiscoveryView); ok {
		api.SetDiscovery(dv)
	}
	return api
}
