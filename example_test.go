package mcorr_test

import (
	"fmt"
	"math"
	"time"

	"mcorr"
)

// ExampleFitnessFromRow reproduces the paper's Figure-11 worked example:
// the fitness score of each possible destination cell given one transition
// distribution.
func ExampleFitnessFromRow() {
	// Transition probabilities out of the current cell (2×3 grid).
	row := []float64{0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094}
	for h := range row {
		fmt.Printf("c%d: rank %d, fitness %.4f\n",
			h+1, mcorr.RankInRow(row, h), mcorr.FitnessFromRow(row, h))
	}
	// Output:
	// c1: rank 5, fitness 0.3333
	// c2: rank 2, fitness 0.8333
	// c3: rank 3, fitness 0.6667
	// c4: rank 1, fitness 1.0000
	// c5: rank 4, fitness 0.5000
	// c6: rank 6, fitness 0.1667
}

// ExampleTrainModel trains on a perfectly deterministic correlated pair
// and shows that a normal continuation scores high fitness while a
// correlation-breaking jump scores low.
func ExampleTrainModel() {
	// History: x ramps up and down; y = 2x. Deterministic, so the output
	// is stable.
	var history []mcorr.Point
	for cycle := 0; cycle < 40; cycle++ {
		for i := 0; i < 50; i++ {
			x := float64(i)
			if cycle%2 == 1 {
				x = float64(49 - i)
			}
			history = append(history, mcorr.Point{X: x, Y: 2 * x})
		}
	}
	model, err := mcorr.TrainModel(history, mcorr.ModelConfig{})
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	model.Step(mcorr.Point{X: 20, Y: 40})
	normal := model.Step(mcorr.Point{X: 21, Y: 42}) // follows the pattern
	model.Reset()
	model.Step(mcorr.Point{X: 20, Y: 40})
	broken := model.Step(mcorr.Point{X: 48, Y: 2}) // x high, y low: breaks y=2x

	fmt.Printf("normal step:  fitness > 0.9? %v\n", normal.Fitness > 0.9)
	fmt.Printf("broken step:  fitness < 0.3? %v\n", broken.Fitness < 0.3)
	// Output:
	// normal step:  fitness > 0.9? true
	// broken step:  fitness < 0.3? true
}

// ExampleModel_Explain shows the paper's human-debugging output: the
// measurement ranges of the expected versus observed cells.
func ExampleModel_Explain() {
	var history []mcorr.Point
	for cycle := 0; cycle < 40; cycle++ {
		for i := 0; i < 50; i++ {
			x := float64(i)
			if cycle%2 == 1 {
				x = float64(49 - i)
			}
			history = append(history, mcorr.Point{X: x, Y: 2 * x})
		}
	}
	model, err := mcorr.TrainModel(history, mcorr.ModelConfig{})
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	model.Step(mcorr.Point{X: 20, Y: 40})
	ex, ok := model.Explain(mcorr.Point{X: 21, Y: 42}, 1)
	if !ok {
		fmt.Println("nothing to explain")
		return
	}
	fmt.Printf("observed cell rank %d, fitness %.2f, in grid: %v\n",
		ex.Observed.Rank, ex.Fitness, !ex.OutOfGrid)
	fmt.Printf("ranges are finite: %v\n",
		!math.IsInf(ex.Observed.XLo, 0) && !math.IsInf(ex.Observed.YHi, 0))
	// Output:
	// observed cell rank 1, fitness 1.00, in grid: true
	// ranges are finite: true
}

// ExampleNewMonitor wires the streaming glue: samples arrive measurement
// by measurement; complete rows are scored automatically.
func ExampleNewMonitor() {
	start := time.Date(2008, time.May, 29, 0, 0, 0, 0, time.UTC)
	step := 6 * time.Minute
	idA := mcorr.MeasurementID{Machine: "srv-1", Metric: "netIn"}
	idB := mcorr.MeasurementID{Machine: "srv-1", Metric: "cpu"}

	// One day of deterministic history for both measurements.
	history := mcorr.NewDataset()
	sa, _ := mcorr.NewSeries(idA, start, step)
	sb, _ := mcorr.NewSeries(idB, start, step)
	for i := 0; i < 240; i++ {
		load := 50 + 40*math.Sin(float64(i)/240*2*math.Pi)
		sa.Append(load * 100)
		sb.Append(load)
	}
	history.Add(sa)
	history.Add(sb)

	mon, err := mcorr.NewMonitor(history, mcorr.ManagerConfig{})
	if err != nil {
		fmt.Println("monitor:", err)
		return
	}
	// Stream three new rows.
	day2 := start.AddDate(0, 0, 1)
	var scored int
	for i := 0; i < 3; i++ {
		tm := day2.Add(time.Duration(i) * step)
		load := 50 + 40*math.Sin(float64(240+i)/240*2*math.Pi)
		reports, err := mon.Ingest(
			mcorr.Sample{ID: idA, Time: tm, Value: load * 100},
			mcorr.Sample{ID: idB, Time: tm, Value: load},
		)
		if err != nil {
			fmt.Println("ingest:", err)
			return
		}
		for _, r := range reports {
			if r.ScoredPairs > 0 {
				scored++
			}
		}
	}
	fmt.Printf("rows with scored links: %d of 3\n", scored)
	// Output:
	// rows with scored links: 2 of 3
}
