package mcorr_test

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// rowBatch assembles one complete sample row at tm.
func rowBatch(t *testing.T, ds *timeseries.Dataset, tm time.Time) []mcorr.Sample {
	t.Helper()
	var batch []mcorr.Sample
	for _, id := range ds.IDs() {
		s := ds.Get(id)
		i, ok := s.IndexOf(tm)
		if !ok {
			t.Fatalf("missing sample at %v", tm)
		}
		batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
	}
	return batch
}

// bits projects a report stream to comparable Q bit patterns.
func bits(reports []mcorr.StepReport) []uint64 {
	out := make([]uint64, len(reports))
	for i, r := range reports {
		out[i] = math.Float64bits(r.System)
	}
	return out
}

// TestTenantIsolationBitIdentical is the multi-tenant acceptance test:
// two tenants sharing one registry and one collector server — with
// colliding measurement IDs, since both workloads use the same group
// name — must produce exactly the Q trajectories of two isolated
// single-tenant monitors fed the same workloads.
func TestTenantIsolationBitIdentical(t *testing.T) {
	const rows = 30
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	seeds := map[string]int64{"alpha": 31, "beta": 37}
	datasets := make(map[string]*timeseries.Dataset, len(seeds))
	baseline := make(map[string][]uint64, len(seeds))
	for name, seed := range seeds {
		ds, _, err := simulator.Generate(simulator.GroupConfig{
			Name: "F", Machines: 2, Days: 2, Seed: seed,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		datasets[name] = ds
		mon, err := mcorr.NewMonitor(ds.Slice(timeseries.MonitoringStart, day1), mcorr.ManagerConfig{})
		if err != nil {
			t.Fatalf("NewMonitor: %v", err)
		}
		var reports []mcorr.StepReport
		for k := 0; k < rows; k++ {
			rep, err := mon.Ingest(rowBatch(t, ds, day1.Add(time.Duration(k)*timeseries.SampleStep))...)
			if err != nil {
				t.Fatalf("baseline ingest: %v", err)
			}
			reports = append(reports, rep...)
		}
		if len(reports) != rows {
			t.Fatalf("baseline %s scored %d rows, want %d", name, len(reports), rows)
		}
		baseline[name] = bits(reports)
		mon.Fleet().Close()
	}

	reg := mcorr.NewTenantRegistry("")
	defer reg.Close()
	got := make(map[string][]uint64, len(seeds))
	for name := range seeds {
		name := name
		_, err := reg.CreateTenant(mcorr.TenantConfig{
			Name:    name,
			History: datasets[name].Slice(timeseries.MonitoringStart, day1),
			OnReport: func(tenant string, r mcorr.StepReport) {
				got[tenant] = append(got[tenant], math.Float64bits(r.System))
			},
		})
		if err != nil {
			t.Fatalf("CreateTenant %s: %v", name, err)
		}
	}

	srv, err := mcorr.NewTenantCollectorServer(reg)
	if err != nil {
		t.Fatalf("NewTenantCollectorServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	agents := make(map[string]*mcorr.ReliableAgent, len(seeds))
	for name := range seeds {
		agents[name] = mcorr.NewReliableAgent(addr.String(), name+"-shipper", mcorr.ReliableConfig{Tenant: name})
		defer agents[name].Close()
	}
	// Interleave the two tenants' rows over the shared server.
	for k := 0; k < rows; k++ {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		for name, a := range agents {
			if err := a.Send(rowBatch(t, datasets[name], tm)); err != nil {
				t.Fatalf("tenant %s send: %v", name, err)
			}
		}
	}

	for name := range seeds {
		if len(got[name]) != rows {
			t.Fatalf("tenant %s scored %d rows, want %d", name, len(got[name]), rows)
		}
		for i := range baseline[name] {
			if got[name][i] != baseline[name][i] {
				t.Fatalf("tenant %s row %d: Q bits %x != baseline %x (tenancy must not perturb trajectories)",
					name, i, got[name][i], baseline[name][i])
			}
		}
	}
}

// TestTenantMeasurementQuota proves the quota cuts a batch at the first
// over-cap measurement and reports the stored prefix, so the collector
// acks truthfully.
func TestTenantMeasurementQuota(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "F", Machines: 2, Days: 2, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	reg := mcorr.NewTenantRegistry("")
	defer reg.Close()
	tn, err := reg.CreateTenant(mcorr.TenantConfig{
		Name:    "capped",
		History: ds.Slice(timeseries.MonitoringStart, day1),
		Quota:   mcorr.TenantQuota{MaxMeasurements: len(ds.IDs())},
	})
	if err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}

	// The trained measurements fill the quota exactly: known IDs pass...
	if _, err := tn.Ingest(rowBatch(t, ds, day1)...); err != nil {
		t.Fatalf("ingest of known measurements: %v", err)
	}
	// ...but a batch introducing a new one is cut there.
	next := day1.Add(timeseries.SampleStep)
	batch := rowBatch(t, ds, next)
	batch = append(batch, mcorr.Sample{
		ID:   timeseries.MeasurementID{Machine: "F-srv-00", Metric: "surprise"},
		Time: next, Value: 1,
	})
	_, err = tn.Ingest(batch...)
	var pae *tsdb.PartialAppendError
	if !errors.As(err, &pae) {
		t.Fatalf("over-quota ingest: got %v, want PartialAppendError", err)
	}
	if pae.Stored != len(batch)-1 {
		t.Errorf("stored prefix = %d, want %d", pae.Stored, len(batch)-1)
	}
	if !errors.Is(err, mcorr.ErrMeasurementQuota) {
		t.Errorf("error does not wrap ErrMeasurementQuota: %v", err)
	}
	// The refused measurement was never admitted: retrying it alone is
	// still refused rather than passing as "already seen".
	if _, err := tn.Ingest(batch[len(batch)-1]); !errors.Is(err, mcorr.ErrMeasurementQuota) {
		t.Errorf("retry of refused measurement: got %v, want quota error", err)
	}
}

// TestTenantMaxPairsQuota: without discovery, a full pair graph beyond
// MaxPairs refuses tenant creation; with discovery, the budget clamps.
func TestTenantMaxPairsQuota(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "F", Machines: 2, Days: 1, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	end := timeseries.MonitoringStart.AddDate(0, 0, 1)
	reg := mcorr.NewTenantRegistry("")
	defer reg.Close()
	if _, err := reg.CreateTenant(mcorr.TenantConfig{
		Name:    "tight",
		History: ds.Slice(timeseries.MonitoringStart, end),
		Quota:   mcorr.TenantQuota{MaxPairs: 1},
	}); err == nil {
		t.Fatal("full graph beyond MaxPairs: want error")
	}
	tn, err := reg.CreateTenant(mcorr.TenantConfig{
		Name:    "clamped",
		History: ds.Slice(timeseries.MonitoringStart, end),
		Quota:   mcorr.TenantQuota{MaxPairs: 3},
		Options: []mcorr.MonitorOption{mcorr.WithDiscovery(mcorr.DiscoveryConfig{Budget: 100})},
	})
	if err != nil {
		t.Fatalf("CreateTenant with discovery: %v", err)
	}
	df := tn.Monitor().Discovery()
	if df == nil {
		t.Fatal("discovery fleet missing")
	}
	if _, budget, _ := df.BudgetInfo(); budget != 3 {
		t.Errorf("discovery budget = %d, want clamped to MaxPairs 3", budget)
	}
}

// TestTenantRegistryLifecycle covers naming, duplicates, lookup order,
// routing and close semantics.
func TestTenantRegistryLifecycle(t *testing.T) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "F", Machines: 2, Days: 1, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	end := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, end)

	if mcorr.ValidTenantName("") || mcorr.ValidTenantName("-lead") || mcorr.ValidTenantName("UP") ||
		!mcorr.ValidTenantName("team-a_2") {
		t.Error("ValidTenantName alphabet wrong")
	}

	reg := mcorr.NewTenantRegistry("")
	defer reg.Close()
	for _, name := range []string{"beta", "alpha"} {
		if _, err := reg.CreateTenant(mcorr.TenantConfig{Name: name, History: history}); err != nil {
			t.Fatalf("CreateTenant %s: %v", name, err)
		}
	}
	if _, err := reg.CreateTenant(mcorr.TenantConfig{Name: "alpha", History: history}); err == nil {
		t.Error("duplicate tenant: want error")
	}
	if _, err := reg.CreateTenant(mcorr.TenantConfig{Name: "Bad Name", History: history}); err == nil {
		t.Error("invalid name: want error")
	}
	if _, err := reg.CreateTenant(mcorr.TenantConfig{Name: "durable-no-dir", History: history, Durable: true}); err == nil {
		t.Error("durable tenant without data dir: want error")
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names = %v", names)
	}
	// An empty config name means the default tenant.
	if _, err := reg.CreateTenant(mcorr.TenantConfig{History: history}); err != nil {
		t.Fatalf("default tenant: %v", err)
	}
	name, sink, err := reg.SinkFor("")
	if err != nil || name != mcorr.DefaultTenant || sink == nil {
		t.Errorf("SinkFor(\"\") = (%q, %v, %v)", name, sink, err)
	}
	if _, _, err := reg.SinkFor("ghost"); err == nil {
		t.Error("SinkFor unknown tenant: want error")
	}
	if err := reg.CloseTenant("ghost"); err == nil {
		t.Error("CloseTenant unknown: want error")
	}
	if err := reg.CloseTenant("beta"); err != nil {
		t.Errorf("CloseTenant: %v", err)
	}
	if _, ok := reg.Tenant("beta"); ok {
		t.Error("closed tenant still routed")
	}
	if err := reg.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := reg.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := reg.CreateTenant(mcorr.TenantConfig{Name: "late", History: history}); err == nil {
		t.Error("CreateTenant after Close: want error")
	}
}

// TestTenantDirLegacyLayout: the default tenant reuses a pre-tenancy
// data-dir root; everything else lives under tenants/<name>.
func TestTenantDirLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	if got, want := mcorr.TenantDir(dir, "default"), filepath.Join(dir, "tenants", "default"); got != want {
		t.Errorf("fresh default dir = %s, want %s", got, want)
	}
	if got, want := mcorr.TenantDir(dir, "alpha"), filepath.Join(dir, "tenants", "alpha"); got != want {
		t.Errorf("alpha dir = %s, want %s", got, want)
	}
	// A pre-tenancy checkpoint at the root pins the default tenant there.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := mcorr.TenantDir(dir, "default"); got != dir {
		t.Errorf("legacy default dir = %s, want the root %s", got, dir)
	}
	if got, want := mcorr.TenantDir(dir, "alpha"), filepath.Join(dir, "tenants", "alpha"); got != want {
		t.Errorf("alpha dir with legacy root = %s, want %s", got, want)
	}
}

// TestTenantDurableRecovery closes a durable tenant mid-stream and
// recovers it in a fresh registry: the continued trajectory must be
// bit-identical to an uninterrupted in-memory baseline.
func TestTenantDurableRecovery(t *testing.T) {
	const half = 20
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "F", Machines: 2, Days: 2, Seed: 41})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, day1)

	mon, err := mcorr.NewMonitor(history, mcorr.ManagerConfig{})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	var base []mcorr.StepReport
	for k := 0; k < 2*half; k++ {
		rep, err := mon.Ingest(rowBatch(t, ds, day1.Add(time.Duration(k)*timeseries.SampleStep))...)
		if err != nil {
			t.Fatalf("baseline ingest: %v", err)
		}
		base = append(base, rep...)
	}
	want := bits(base)
	mon.Fleet().Close()

	dir := t.TempDir()
	reg := mcorr.NewTenantRegistry(dir)
	var got []uint64
	report := func(_ string, r mcorr.StepReport) { got = append(got, math.Float64bits(r.System)) }
	tn, err := reg.CreateTenant(mcorr.TenantConfig{
		Name: "alpha", History: history, Durable: true,
		Durability: mcorr.DurabilityConfig{CheckpointEvery: 8, Fsync: mcorr.SyncNone},
		OnReport:   report,
	})
	if err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	for k := 0; k < half; k++ {
		if _, err := tn.Ingest(rowBatch(t, ds, day1.Add(time.Duration(k)*timeseries.SampleStep))...); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg2 := mcorr.NewTenantRegistry(dir)
	defer reg2.Close()
	tn2, err := reg2.CreateTenant(mcorr.TenantConfig{
		Name: "alpha", Durable: true,
		Durability: mcorr.DurabilityConfig{CheckpointEvery: 8, Fsync: mcorr.SyncNone},
		OnReport:   report,
	})
	if err != nil {
		t.Fatalf("recovering CreateTenant: %v", err)
	}
	if cur := tn2.Monitor().Cursor(); !cur.Equal(day1.Add(half * timeseries.SampleStep)) {
		t.Fatalf("recovered cursor = %v", cur)
	}
	for k := half; k < 2*half; k++ {
		if _, err := tn2.Ingest(rowBatch(t, ds, day1.Add(time.Duration(k)*timeseries.SampleStep))...); err != nil {
			t.Fatalf("post-recovery ingest: %v", err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scored %d rows across close/recover, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: Q bits %x != baseline %x after recovery", i, got[i], want[i])
		}
	}
}
