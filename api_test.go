package mcorr_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/timeseries"
)

// lagAPIDataset builds a three-measurement workload with a known causal
// lag: y is x delayed by exactly lagSteps grid rows, z is independent
// noise. The correlate endpoint must rank y first and detect the lag.
func lagAPIDataset(t *testing.T, days, lagSteps int) *timeseries.Dataset {
	t.Helper()
	n := days * timeseries.SamplesPerDay
	rng := rand.New(rand.NewSource(99))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ds := timeseries.NewDataset()
	for metric, vals := range map[string]func(i int) float64{
		"x": func(i int) float64 { return x[i] },
		"y": func(i int) float64 {
			if i < lagSteps {
				return rng.NormFloat64()
			}
			return x[i-lagSteps]
		},
		"z": func(i int) float64 { return rng.NormFloat64() },
	} {
		s, err := timeseries.NewSeries(
			timeseries.MeasurementID{Machine: "m1", Metric: metric},
			timeseries.MonitoringStart, timeseries.SampleStep)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.Append(vals(i))
		}
		ds.Add(s)
	}
	return ds
}

// newAPIServer boots a registry holding one streaming default tenant
// (with diagnosis attached) and serves its API over httptest.
func newAPIServer(t *testing.T, streamRows int) (*httptest.Server, *timeseries.Dataset) {
	t.Helper()
	const lagSteps = 2
	ds := lagAPIDataset(t, 2, lagSteps)
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	reg := mcorr.NewTenantRegistry("")
	t.Cleanup(func() { reg.Close() })
	tn, err := reg.CreateTenant(mcorr.TenantConfig{
		Name:    mcorr.DefaultTenant,
		History: ds.Slice(timeseries.MonitoringStart, day1),
		Options: []mcorr.MonitorOption{mcorr.WithDiagnosis(mcorr.DiagnosisConfig{})},
	})
	if err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	for k := 0; k < streamRows; k++ {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		if _, err := tn.Ingest(rowBatch(t, ds, tm)...); err != nil {
			t.Fatalf("ingest row %d: %v", k, err)
		}
	}
	srv := httptest.NewServer(mcorr.NewTenantAPI(reg))
	t.Cleanup(srv.Close)
	return srv, ds
}

func postCorrelate(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/api/v1/correlate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST correlate: %v", err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) (code, msg string) {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return env.Error.Code, env.Error.Message
}

type correlateResultJSON struct {
	Measurement string   `json:"measurement"`
	Correlation float64  `json:"correlation"`
	Lag         int      `json:"lag"`
	Samples     int      `json:"samples"`
	Fitness     *float64 `json:"fitness"`
}

type correlateResponseJSON struct {
	Anchor string `json:"anchor"`
	Window struct {
		Start string `json:"start"`
		End   string `json:"end"`
		Rows  int    `json:"rows"`
	} `json:"window"`
	Lags struct {
		Min int `json:"min"`
		Max int `json:"max"`
	} `json:"lags"`
	Results []correlateResultJSON `json:"results"`
	Engine  struct {
		Tenant       string  `json:"tenant"`
		Steps        int     `json:"steps"`
		Measurements int     `json:"measurements"`
		StepSeconds  float64 `json:"step_seconds"`
	} `json:"engine"`
}

// TestCorrelateDetectsSeededLag is the endpoint's acceptance test: with
// y seeded as x delayed by 2 rows, POST correlate must rank y first at
// lag +2 with near-unit correlation, z last.
func TestCorrelateDetectsSeededLag(t *testing.T) {
	srv, _ := newAPIServer(t, 120)
	resp := postCorrelate(t, srv, `{"anchor":"x@m1","window":{"last":100},"lags":{"min":-4,"max":4}}`)
	if resp.StatusCode != http.StatusOK {
		code, msg := decodeEnvelope(t, resp)
		t.Fatalf("correlate: status %d (%s: %s)", resp.StatusCode, code, msg)
	}
	defer resp.Body.Close()
	var out correlateResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if out.Anchor != "x@m1" || out.Window.Rows != 100 {
		t.Errorf("anchor=%q rows=%d, want x@m1/100", out.Anchor, out.Window.Rows)
	}
	if out.Lags.Min != -4 || out.Lags.Max != 4 {
		t.Errorf("lags echoed as [%d,%d]", out.Lags.Min, out.Lags.Max)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2 (y and z)", len(out.Results))
	}
	top := out.Results[0]
	if top.Measurement != "y@m1" {
		t.Fatalf("top candidate %q, want the seeded y@m1 (results: %+v)", top.Measurement, out.Results)
	}
	if top.Lag != 2 {
		t.Errorf("detected lag %d, want +2 (y trails x by 2 rows)", top.Lag)
	}
	if top.Correlation < 0.99 {
		t.Errorf("correlation at lag 2 = %v, want ~1", top.Correlation)
	}
	if top.Samples < 90 {
		t.Errorf("overlap %d, want >= 90 of 100 rows", top.Samples)
	}
	if top.Fitness == nil {
		t.Error("fitness missing for a fleet-scored measurement")
	}
	if z := out.Results[1]; z.Measurement != "z@m1" {
		t.Errorf("second candidate %q, want z@m1", z.Measurement)
	}
	if out.Engine.Tenant != mcorr.DefaultTenant || out.Engine.Measurements != 3 {
		t.Errorf("engine block = %+v", out.Engine)
	}
	if out.Engine.StepSeconds != timeseries.SampleStep.Seconds() {
		t.Errorf("step_seconds = %v", out.Engine.StepSeconds)
	}

	// The explicit {start,end} window form resolves to the same grid.
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	body := fmt.Sprintf(`{"anchor":"x@m1","candidates":["y@m1"],"window":{"start":%q,"end":%q}}`,
		day1.Format(time.RFC3339), day1.Add(120*timeseries.SampleStep).Format(time.RFC3339))
	resp = postCorrelate(t, srv, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-window correlate: status %d", resp.StatusCode)
	}
	out = correlateResponseJSON{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	resp.Body.Close()
	if out.Window.Rows != 120 || len(out.Results) != 1 || out.Results[0].Lag != 2 {
		t.Errorf("explicit window: rows=%d results=%+v", out.Window.Rows, out.Results)
	}
}

// TestAPIErrorContract locks the shared error envelope: status and code
// for every failure mode of the serving tier.
func TestAPIErrorContract(t *testing.T) {
	srv, _ := newAPIServer(t, 40)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"correlate GET", "GET", "/api/v1/correlate", "", 405, "method_not_allowed"},
		{"tenants POST", "POST", "/api/v1/tenants", "{}", 405, "method_not_allowed"},
		{"invalid JSON", "POST", "/api/v1/correlate", "{", 400, "bad_request"},
		{"trailing data", "POST", "/api/v1/correlate", `{"anchor":"x@m1","window":{"last":5}}{}`, 400, "bad_request"},
		{"unknown field", "POST", "/api/v1/correlate", `{"anchor":"x@m1","window":{"last":5},"nope":1}`, 400, "bad_request"},
		{"missing anchor", "POST", "/api/v1/correlate", `{"window":{"last":5}}`, 400, "bad_request"},
		{"missing window", "POST", "/api/v1/correlate", `{"anchor":"x@m1"}`, 400, "bad_request"},
		{"both window forms", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"last":5,"start":"2008-05-30T00:00:00Z","end":"2008-05-31T00:00:00Z"}}`,
			400, "bad_request"},
		{"negative last", "POST", "/api/v1/correlate", `{"anchor":"x@m1","window":{"last":-3}}`, 400, "bad_request"},
		{"start after end", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"start":"2008-05-31T00:00:00Z","end":"2008-05-30T00:00:00Z"}}`,
			400, "invalid_window"},
		{"start equals end", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"start":"2008-05-31T00:00:00Z","end":"2008-05-31T00:00:00Z"}}`,
			400, "invalid_window"},
		{"window too wide", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"start":"2008-01-01T00:00:00Z","end":"2010-01-01T00:00:00Z"}}`,
			400, "bad_request"},
		{"lags inverted", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"last":5},"lags":{"min":3,"max":-3}}`, 400, "bad_request"},
		{"lags out of range", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","window":{"last":5},"lags":{"min":-200,"max":200}}`, 400, "bad_request"},
		{"unknown tenant", "POST", "/api/v1/correlate",
			`{"tenant":"ghost","anchor":"x@m1","window":{"last":5}}`, 404, "unknown_tenant"},
		{"unknown anchor", "POST", "/api/v1/correlate",
			`{"anchor":"missing@m1","window":{"last":5}}`, 404, "unknown_measurement"},
		{"unknown candidate", "POST", "/api/v1/correlate",
			`{"anchor":"x@m1","candidates":["missing@m1"],"window":{"last":5}}`, 404, "unknown_measurement"},
		{"fitness unknown tenant", "GET", "/api/v1/fitness?tenant=ghost", "", 404, "unknown_tenant"},
		{"topology unknown tenant", "GET", "/api/v1/topology?tenant=ghost", "", 404, "unknown_tenant"},
		{"incidents unknown tenant", "GET", "/api/v1/incidents?tenant=ghost", "", 404, "unknown_tenant"},
		{"fitness unknown measurement", "GET", "/api/v1/fitness?measurement=missing@m1", "", 404, "unknown_measurement"},
		{"unknown endpoint", "GET", "/api/v1/nope", "", 404, "not_found"},
	}
	// Oversized body: beyond the 1 MiB cap.
	huge := `{"anchor":"` + strings.Repeat("a", 1<<20) + `","window":{"last":5}}`
	cases = append(cases, struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{"oversized body", "POST", "/api/v1/correlate", huge, 413, "too_large"})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			code, msg := decodeEnvelope(t, resp)
			if resp.StatusCode != tc.status || code != tc.code {
				t.Errorf("got status=%d code=%q (%s), want %d/%q",
					resp.StatusCode, code, msg, tc.status, tc.code)
			}
		})
	}
}

// TestTenantScopedEndpoints exercises the happy paths of the dispatched
// per-tenant endpoints and the registry listing.
func TestTenantScopedEndpoints(t *testing.T) {
	srv, _ := newAPIServer(t, 40)
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	status, body := get("/api/v1/tenants")
	if status != http.StatusOK {
		t.Fatalf("tenants: status %d: %s", status, body)
	}
	var tl struct {
		Total   int `json:"total"`
		Tenants []struct {
			Name         string `json:"name"`
			Durable      bool   `json:"durable"`
			Measurements int    `json:"measurements"`
			Steps        int    `json:"steps"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("tenants payload: %v", err)
	}
	if tl.Total != 1 || tl.Tenants[0].Name != mcorr.DefaultTenant ||
		tl.Tenants[0].Measurements != 3 || tl.Tenants[0].Steps < 39 || tl.Tenants[0].Durable {
		t.Errorf("tenants payload = %+v", tl)
	}

	// Explicit and implicit tenant scoping resolve to the same tenant.
	for _, path := range []string{"/api/v1/topology", "/api/v1/topology?tenant=" + mcorr.DefaultTenant} {
		status, body = get(path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, status, body)
		}
		if !bytes.Contains(body, []byte(`"x@m1"`)) {
			t.Errorf("%s payload lacks measurement x@m1", path)
		}
	}
	if status, body = get("/api/v1/fitness"); status != http.StatusOK || !bytes.Contains(body, []byte(`"q"`)) {
		t.Errorf("fitness: status %d: %s", status, body)
	}
	if status, body = get("/api/v1/incidents"); status != http.StatusOK {
		t.Errorf("incidents: status %d: %s", status, body)
	}
}

// TestCorrelateTrailingWindowBeforeFirstRow pins the invalid_window
// contract for the last-form boundary: a tenant that has scored no rows
// yet has no cursor, so any trailing window rounds to zero samples and
// must be refused with the invalid_window envelope — not answered with
// an empty 200 against a nonexistent grid range.
func TestCorrelateTrailingWindowBeforeFirstRow(t *testing.T) {
	srv, _ := newAPIServer(t, 0)
	resp := postCorrelate(t, srv, `{"anchor":"x@m1","window":{"last":5}}`)
	code, msg := decodeEnvelope(t, resp)
	if resp.StatusCode != http.StatusBadRequest || code != "invalid_window" {
		t.Fatalf("correlate before first row: status=%d code=%q (%s), want 400/invalid_window",
			resp.StatusCode, code, msg)
	}
}
