package mcorr

import (
	"testing"
)

// FuzzCorrelateRequest hammers the correlate body parser — the only part
// of the endpoint that touches attacker-controlled bytes before any
// tenant lookup — and checks the invariants every accepted query must
// satisfy, so the handler downstream can trust them.
func FuzzCorrelateRequest(f *testing.F) {
	seeds := []string{
		`{"anchor":"cpu@srv-01","window":{"last":40}}`,
		`{"tenant":"alpha","anchor":"cpu@srv-01","candidates":["mem@srv-01","net@srv-02"],"window":{"last":100},"lags":{"min":-4,"max":4}}`,
		`{"anchor":"cpu@srv-01","window":{"start":"2008-05-30T00:00:00Z","end":"2008-05-31T00:00:00Z"}}`,
		`{"anchor":"cpu@srv-01","candidates":["a","a","b"],"window":{"last":1},"lags":{"min":0,"max":0}}`,
		`{"anchor":"","window":{"last":5}}`,
		`{"anchor":"x","window":{}}`,
		`{"anchor":"x","window":{"last":-1}}`,
		`{"anchor":"x","window":{"last":5,"start":"2008-05-30T00:00:00Z"}}`,
		`{"anchor":"x","window":{"start":"not-a-time","end":"2008-05-31T00:00:00Z"}}`,
		// Boundary shapes for the invalid_window class: a zero-length
		// explicit range (start == end) and a trailing window of zero
		// rows, both of which must be rejected, never answered empty.
		`{"anchor":"x","window":{"start":"2008-05-30T00:00:00Z","end":"2008-05-30T00:00:00Z"}}`,
		`{"anchor":"x","window":{"last":0}}`,
		`{"anchor":"x","window":{"last":5},"lags":{"min":9,"max":-9}}`,
		`{"anchor":"x","window":{"last":5},"unknown_field":true}`,
		`{"anchor":"x","window":{"last":5}}{"trailing":1}`,
		`[]`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := parseCorrelateRequest(data)
		if err != nil {
			return // rejected bodies are fine; we only audit accepted ones
		}
		if q.anchor == "" {
			t.Fatal("accepted query with empty anchor")
		}
		if q.tenant == "" {
			t.Fatal("accepted query with empty tenant (must default)")
		}
		if q.minLag > q.maxLag || q.minLag < -maxCorrelateLag || q.maxLag > maxCorrelateLag {
			t.Fatalf("accepted lag range [%d, %d] outside contract", q.minLag, q.maxLag)
		}
		if len(q.candidates) > maxCorrelateCandidates {
			t.Fatalf("accepted %d candidates; cap is %d", len(q.candidates), maxCorrelateCandidates)
		}
		seen := make(map[string]bool, len(q.candidates))
		for _, c := range q.candidates {
			if c == "" {
				t.Fatal("accepted empty candidate name")
			}
			if seen[c] {
				t.Fatalf("candidate %q survived deduplication twice", c)
			}
			seen[c] = true
		}
		switch {
		case q.last != 0:
			if q.last < 1 || q.last > maxWindowRows {
				t.Fatalf("accepted last=%d outside [1, %d]", q.last, maxWindowRows)
			}
			if !q.start.IsZero() || !q.end.IsZero() {
				t.Fatal("last-form window carries explicit bounds")
			}
		default:
			if !q.start.Before(q.end) {
				t.Fatalf("accepted explicit window [%v, %v) with start >= end", q.start, q.end)
			}
		}
	})
}
