package mcorr_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/mathx"
	"mcorr/internal/shard"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// The discovery tier's core safety property: mutating the pair graph
// mid-stream (evicting one pair, admitting another) must not perturb any
// surviving pair's trajectory. Q^{a,b} is a function of that pair's model
// and its own chain state alone, so a subject fleet whose graph churns
// must score every untouched pair bit-identically (Float64bits) to a
// shadow fleet that never changed — including after a save/load recovery
// cycle and, in the sharded variant, across a live reshard. (The
// aggregates Q^a and Q are means over the current link set, so they
// legitimately move when the graph does; the invariant lives at the pair
// level.)

// propertyFixture builds the shared simulator world: 2 clean days of
// group "P", day 1 for training, day 2 streamed row by row.
func propertyFixture(t *testing.T) (history *timeseries.Dataset, rows []manager.Row, cfg manager.Config) {
	t.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "P", Machines: 3, Days: 2, Seed: 17,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history = ds.Slice(timeseries.MonitoringStart, day1)
	rows, err = manager.BuildRows(ds, day1, day1.AddDate(0, 0, 1))
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}
	cfg = manager.Config{
		Model:          core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 12}},
		KeepPairScores: true,
	}
	return history, rows, cfg
}

// trainPairModel fits a fresh model for p from the training history, the
// same way the discovery tier trains an admission.
func trainPairModel(t *testing.T, history *timeseries.Dataset, p manager.Pair, cfg core.Config) *core.Model {
	t.Helper()
	sa, sb := history.Get(p.A), history.Get(p.B)
	if sa == nil || sb == nil {
		t.Fatalf("pair %s outside dataset", p)
	}
	var pts []mathx.Point2
	for i := 0; i < sa.Len(); i++ {
		tm := sa.Start.Add(time.Duration(i) * sa.Step)
		j, ok := sb.IndexOf(tm)
		if !ok {
			continue
		}
		x, y := sa.Values[i], sb.Values[j]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		pts = append(pts, mathx.Point2{X: x, Y: y})
	}
	model, err := core.Train(pts, cfg)
	if err != nil {
		t.Fatalf("Train(%s): %v", p, err)
	}
	return model
}

// comparePairScores asserts that every survivor scored by the shadow on
// this row was scored bit-identically by the subject.
func comparePairScores(t *testing.T, row int, survivors []manager.Pair, subject, shadow manager.StepReport) {
	t.Helper()
	for _, p := range survivors {
		want, inShadow := shadow.Pairs[p]
		got, inSubject := subject.Pairs[p]
		if inShadow != inSubject {
			t.Fatalf("row %d: pair %s scored in shadow=%v subject=%v", row, p, inShadow, inSubject)
		}
		if inShadow && math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("row %d: pair %s diverged: subject %.17g (%016x) shadow %.17g (%016x)",
				row, p, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestGraphChurnLeavesSurvivorsBitIdentical is the unsharded property:
// the subject starts without one pair, evicts another mid-stream,
// admits the missing one later, and round-trips through Save/LoadManager
// — while every untouched pair tracks the shadow exactly.
func TestGraphChurnLeavesSurvivorsBitIdentical(t *testing.T) {
	history, rows, cfg := propertyFixture(t)

	shadow, err := manager.New(history, cfg)
	if err != nil {
		t.Fatalf("shadow New: %v", err)
	}
	defer shadow.Close()
	all := shadow.Pairs()
	manager.SortPairs(all)
	if len(all) < 4 {
		t.Fatalf("fixture too small: %d pairs", len(all))
	}
	victim, missing := all[0], all[1]
	var survivors []manager.Pair
	for _, p := range all[2:] {
		survivors = append(survivors, p)
	}

	subject, err := manager.NewSubset(history, cfg, func(p manager.Pair) bool { return p != missing })
	if err != nil {
		t.Fatalf("subject NewSubset: %v", err)
	}
	defer func() { subject.Close() }()
	if len(subject.Pairs()) != len(all)-1 {
		t.Fatalf("subject starts with %d pairs, want %d", len(subject.Pairs()), len(all)-1)
	}

	const (
		evictAt  = 40
		admitAt  = 140
		reloadAt = 200
	)
	for i, row := range rows {
		switch i {
		case evictAt:
			if !subject.RemovePair(victim) {
				t.Fatalf("row %d: victim %s was not present", i, victim)
			}
		case admitAt:
			model := trainPairModel(t, history, missing, cfg.Model)
			if err := subject.AddModel(missing, model); err != nil {
				t.Fatalf("row %d: AddModel(%s): %v", i, missing, err)
			}
		case reloadAt:
			var buf bytes.Buffer
			if err := subject.Save(&buf); err != nil {
				t.Fatalf("row %d: Save: %v", i, err)
			}
			subject.Close()
			subject, err = manager.LoadManager(&buf, nil)
			if err != nil {
				t.Fatalf("row %d: LoadManager: %v", i, err)
			}
		}
		sub := subject.Step(row)
		sh := shadow.Step(row)
		comparePairScores(t, i, survivors, sub, sh)
	}

	// The churned pairs ended where the mutations left them: victim out,
	// missing in.
	final := subject.Pairs()
	hasVictim, hasMissing := false, false
	for _, p := range final {
		hasVictim = hasVictim || p == victim
		hasMissing = hasMissing || p == missing
	}
	if hasVictim || !hasMissing {
		t.Errorf("final graph: victim present=%v missing present=%v, want false/true", hasVictim, hasMissing)
	}
}

// TestShardedGraphChurnMatchesUnshardedShadow is the sharded variant:
// graph mutations go through the coordinator (rendezvous-hashed to a
// shard), a live Reshard moves models between shards mid-stream, and
// the survivors still track an unsharded, untouched shadow bit for bit.
func TestShardedGraphChurnMatchesUnshardedShadow(t *testing.T) {
	history, rows, cfg := propertyFixture(t)

	shadow, err := manager.New(history, cfg)
	if err != nil {
		t.Fatalf("shadow New: %v", err)
	}
	defer shadow.Close()
	all := shadow.Pairs()
	manager.SortPairs(all)
	victim, missing := all[0], all[1]
	survivors := all[2:]

	subject, err := shard.New(history, shard.Config{
		Shards:  3,
		Manager: cfg,
		Keep:    func(p manager.Pair) bool { return p != missing },
	})
	if err != nil {
		t.Fatalf("subject shard.New: %v", err)
	}
	defer subject.Close()

	const (
		evictAt   = 40
		admitAt   = 140
		reshardAt = 220
	)
	for i, row := range rows {
		switch i {
		case evictAt:
			if !subject.RemovePair(victim) {
				t.Fatalf("row %d: victim %s was not present", i, victim)
			}
		case admitAt:
			model := trainPairModel(t, history, missing, cfg.Model)
			if err := subject.AddModel(missing, model); err != nil {
				t.Fatalf("row %d: AddModel(%s): %v", i, missing, err)
			}
		case reshardAt:
			if _, err := subject.Reshard(2); err != nil {
				t.Fatalf("row %d: Reshard: %v", i, err)
			}
		}
		sub := subject.Step(row)
		sh := shadow.Step(row)
		comparePairScores(t, i, survivors, sub, sh)
	}
}
