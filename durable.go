package mcorr

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mcorr/internal/manager"
	"mcorr/internal/tsdb"
	"mcorr/internal/wal"
)

// Durability surface: the write-ahead log's sync policy, re-exported for
// command-line flags.
type SyncPolicy = wal.SyncPolicy

// Sync policy constants (see the wal package).
const (
	SyncBatch  = wal.SyncBatch
	SyncAlways = wal.SyncAlways
	SyncNone   = wal.SyncNone
)

// ParseSyncPolicy parses the -fsync flag values "batch", "always", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurabilityConfig locates and tunes the on-disk state of a durable
// pipeline. Layout under DataDir:
//
//	DataDir/checkpoint   versioned gob snapshot (manager + store + cursor)
//	DataDir/wal/         segmented write-ahead log of acked samples
type DurabilityConfig struct {
	// DataDir is the root of the durable state (required).
	DataDir string
	// CheckpointEvery triggers an automatic checkpoint after this many
	// scored rows. If both CheckpointEvery and CheckpointInterval are
	// zero, a default of every 240 rows (one simulated day) applies.
	CheckpointEvery int
	// CheckpointInterval triggers an automatic checkpoint after this much
	// wall time (0 disables the time trigger).
	CheckpointInterval time.Duration
	// Fsync is the WAL sync policy (default SyncBatch).
	Fsync SyncPolicy
	// SegmentBytes is the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.CheckpointEvery == 0 && c.CheckpointInterval == 0 {
		c.CheckpointEvery = 240
	}
	return c
}

func (c DurabilityConfig) checkpointPath() string { return filepath.Join(c.DataDir, "checkpoint") }
func (c DurabilityConfig) walDir() string         { return filepath.Join(c.DataDir, "wal") }

func (c DurabilityConfig) walOptions() wal.Options {
	return wal.Options{SegmentBytes: c.SegmentBytes, Sync: c.Fsync}
}

// HasCheckpoint reports whether dataDir holds a checkpoint to recover from
// (the OpenDurableMonitor vs NewDurableMonitor decision).
func HasCheckpoint(dataDir string) bool {
	_, err := os.Stat(filepath.Join(dataDir, "checkpoint"))
	return err == nil
}

// DurableMonitor is a Monitor whose state survives crashes: every acked
// sample batch is in the write-ahead log before Ingest returns, and the
// whole pipeline (model fleet, store, scoring cursor) is checkpointed
// atomically on a step/time cadence. After a crash, OpenDurableMonitor
// restores the last checkpoint, replays the WAL tail, and re-scores the
// recovered rows — reproducing the exact fitness trajectory of an
// uninterrupted run (scoring is deterministic).
type DurableMonitor struct {
	mu      sync.Mutex
	mon     *Monitor
	log     *wal.Log
	cfg     DurabilityConfig
	cadence manager.Cadence
	rows    int // cumulative scored rows, the cadence's progress counter
	closed  bool

	replayApplied int
	replaySkipped int
}

// NewDurableMonitor trains a monitor on history (exactly like NewMonitor)
// and makes it durable under cfg.DataDir: a WAL is attached to the store
// and an initial checkpoint of the freshly trained fleet is written before
// returning, so even an immediate crash recovers to the trained state.
func NewDurableMonitor(history *Dataset, mcfg ManagerConfig, cfg DurabilityConfig) (*DurableMonitor, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("durable monitor: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("durable monitor: %w", err)
	}
	mon, err := NewMonitor(history, mcfg)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		mon.mgr.Close()
		return nil, err
	}
	mon.store.AttachWAL(log)
	d := &DurableMonitor{mon: mon, log: log, cfg: cfg,
		cadence: manager.Cadence{EverySteps: cfg.CheckpointEvery, Interval: cfg.CheckpointInterval}}
	if err := d.checkpointLocked(); err != nil {
		log.Close()
		mon.mgr.Close()
		return nil, err
	}
	return d, nil
}

// OpenDurableMonitor recovers a durable monitor from cfg.DataDir: it loads
// the latest checkpoint, replays WAL records past the checkpoint's
// sequence number into the store, re-scores every recovered row, and
// returns the reports of those re-scored rows (the post-crash replay of
// the fitness trajectory). A missing checkpoint is manager.ErrNoCheckpoint
// — cold-start with NewDurableMonitor instead.
func OpenDurableMonitor(cfg DurabilityConfig, sink AlarmSink) (*DurableMonitor, []StepReport, error) {
	cfg = cfg.withDefaults()
	ck, err := manager.ReadCheckpointFile(cfg.checkpointPath())
	if err != nil {
		return nil, nil, err
	}
	mgr, err := manager.LoadManager(bytes.NewReader(ck.Manager), sink)
	if err != nil {
		return nil, nil, fmt.Errorf("recover manager: %w", err)
	}
	store, err := tsdb.Restore(bytes.NewReader(ck.Store))
	if err != nil {
		mgr.Close()
		return nil, nil, fmt.Errorf("recover store: %w", err)
	}
	applied, skipped, err := store.ReplayWAL(cfg.walDir(), ck.WALSeq)
	if err != nil {
		mgr.Close()
		return nil, nil, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		mgr.Close()
		return nil, nil, err
	}
	store.AttachWAL(log)
	mon := &Monitor{store: store, mgr: mgr, step: store.Step(), cursor: ck.Cursor, ids: mgr.IDs()}
	d := &DurableMonitor{mon: mon, log: log, cfg: cfg,
		cadence:       manager.Cadence{EverySteps: cfg.CheckpointEvery, Interval: cfg.CheckpointInterval},
		replayApplied: applied, replaySkipped: skipped}

	// Re-score everything the store holds beyond the checkpoint cursor.
	// WAL records are whole ingest batches (CRC-framed, torn tails
	// dropped), so the store only ever recovers complete rows; forcing
	// the flush here replays Manager.Step in the original order and
	// reproduces the pre-crash trajectory bit for bit.
	var last time.Time
	for _, id := range mon.ids {
		if t, ok := store.LastTime(id); ok && t.After(last) {
			last = t
		}
	}
	var recovered []StepReport
	if !last.IsZero() && !last.Before(mon.cursor) {
		recovered = mon.FlushUpTo(last.Add(mon.step))
	}
	d.rows = len(recovered)
	return d, recovered, nil
}

// Monitor exposes the underlying monitor.
func (d *DurableMonitor) Monitor() *Monitor { return d.mon }

// Manager exposes the underlying model fleet.
func (d *DurableMonitor) Manager() *Manager { return d.mon.Manager() }

// Cursor returns the timestamp of the next row to be scored — after
// recovery, the point a feeder should resume streaming from.
func (d *DurableMonitor) Cursor() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mon.cursor
}

// RecoveryStats reports how many WAL samples the last OpenDurableMonitor
// applied and skipped (zero for a fresh NewDurableMonitor).
func (d *DurableMonitor) RecoveryStats() (applied, skipped int) {
	return d.replayApplied, d.replaySkipped
}

// Ingest stores and scores samples exactly like Monitor.Ingest, with two
// durability guarantees layered on: the applied samples are in the WAL
// before Ingest returns, and a checkpoint is written automatically
// whenever the configured cadence comes due.
func (d *DurableMonitor) Ingest(samples ...Sample) ([]StepReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("durable monitor: closed")
	}
	reports, err := d.mon.Ingest(samples...)
	if err != nil {
		return reports, err
	}
	return reports, d.afterScoreLocked(len(reports))
}

// FlushUpTo forces scoring of all rows before deadline (gaps reset the
// affected links), then applies the checkpoint cadence.
func (d *DurableMonitor) FlushUpTo(deadline time.Time) ([]StepReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("durable monitor: closed")
	}
	reports := d.mon.FlushUpTo(deadline)
	return reports, d.afterScoreLocked(len(reports))
}

func (d *DurableMonitor) afterScoreLocked(scored int) error {
	d.rows += scored
	if !d.cadence.Due(d.rows, time.Now()) {
		return nil
	}
	return d.checkpointLocked()
}

// Checkpoint forces an immediate checkpoint regardless of cadence.
func (d *DurableMonitor) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("durable monitor: closed")
	}
	return d.checkpointLocked()
}

// checkpointLocked snapshots manager + store + cursor atomically and then
// drops WAL segments the snapshot has made redundant. The WAL sequence is
// read before the snapshots: every record with Seq <= WALSeq is already
// applied to the store, so the snapshot covers it and truncation is safe;
// anything appended concurrently gets Seq > WALSeq and stays replayable
// (replay is idempotent, so overlap is harmless).
func (d *DurableMonitor) checkpointLocked() error {
	seq := d.log.LastSeq()
	var mbuf, sbuf bytes.Buffer
	if err := d.mon.mgr.Save(&mbuf); err != nil {
		return fmt.Errorf("checkpoint manager: %w", err)
	}
	if err := d.mon.store.Snapshot(&sbuf); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	ck := &manager.Checkpoint{
		CreatedAt: time.Now(),
		Cursor:    d.mon.cursor,
		WALSeq:    seq,
		Steps:     d.mon.mgr.Steps(),
		Manager:   mbuf.Bytes(),
		Store:     sbuf.Bytes(),
	}
	if err := manager.WriteCheckpointFile(d.cfg.checkpointPath(), ck); err != nil {
		return err
	}
	d.cadence.Mark(d.rows, time.Now())
	if err := d.log.TruncateBefore(seq); err != nil {
		return fmt.Errorf("wal retention: %w", err)
	}
	return nil
}

// Close writes a final checkpoint and releases the WAL and the manager's
// worker pool. A monitor closed cleanly recovers instantly (empty WAL
// tail).
func (d *DurableMonitor) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.checkpointLocked()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	d.mon.mgr.Close()
	return err
}

// OpenDurableStore opens (or recovers) a standalone WAL-backed store under
// dataDir — the collector-side durability primitive, with no manager
// attached. If a checkpoint exists the store is restored from it first;
// then the WAL tail is replayed, and a fresh WAL is attached so subsequent
// appends are logged before they are acked. It returns the store and the
// number of samples replayed from the WAL.
func OpenDurableStore(dataDir string, step time.Duration, retention int, policy SyncPolicy) (*Store, int, error) {
	cfg := DurabilityConfig{DataDir: dataDir, Fsync: policy}
	if err := os.MkdirAll(cfg.walDir(), 0o755); err != nil {
		return nil, 0, fmt.Errorf("durable store: %w", err)
	}
	var (
		store *Store
		after uint64
	)
	ck, err := manager.ReadCheckpointFile(cfg.checkpointPath())
	switch {
	case err == nil:
		store, err = tsdb.Restore(bytes.NewReader(ck.Store))
		if err != nil {
			return nil, 0, fmt.Errorf("durable store recover: %w", err)
		}
		after = ck.WALSeq
	case errors.Is(err, manager.ErrNoCheckpoint):
		store, err = tsdb.NewStore(step, retention)
		if err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, err
	}
	applied, _, err := store.ReplayWAL(cfg.walDir(), after)
	if err != nil {
		return nil, 0, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		return nil, 0, err
	}
	store.AttachWAL(log)
	return store, applied, nil
}

// CheckpointStore writes a store-only checkpoint (no manager blob) for a
// store opened with OpenDurableStore and truncates the WAL segments the
// snapshot covers. Safe to call while appends are in flight: the sequence
// is read before the snapshot, so concurrent appends stay replayable.
func CheckpointStore(dataDir string, s *Store) error {
	log := s.WAL()
	if log == nil {
		return fmt.Errorf("durable store checkpoint: store has no WAL attached")
	}
	seq := log.LastSeq()
	var sbuf bytes.Buffer
	if err := s.Snapshot(&sbuf); err != nil {
		return fmt.Errorf("durable store checkpoint: %w", err)
	}
	ck := &manager.Checkpoint{CreatedAt: time.Now(), WALSeq: seq, Store: sbuf.Bytes()}
	cfg := DurabilityConfig{DataDir: dataDir}
	if err := manager.WriteCheckpointFile(cfg.checkpointPath(), ck); err != nil {
		return err
	}
	if err := log.TruncateBefore(seq); err != nil {
		return fmt.Errorf("durable store wal retention: %w", err)
	}
	return nil
}

// CloseDurableStore detaches and closes the store's WAL (final sync
// included). The store itself stays usable in memory.
func CloseDurableStore(s *Store) error {
	log := s.WAL()
	if log == nil {
		return nil
	}
	return log.Close()
}
