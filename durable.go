package mcorr

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mcorr/internal/diagnose"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/shard"
	"mcorr/internal/tsdb"
	"mcorr/internal/wal"
)

// Durability surface: the write-ahead log's sync policy, re-exported for
// command-line flags.
type SyncPolicy = wal.SyncPolicy

// Sync policy constants (see the wal package).
const (
	SyncBatch  = wal.SyncBatch
	SyncAlways = wal.SyncAlways
	SyncNone   = wal.SyncNone
)

// ParseSyncPolicy parses the -fsync flag values "batch", "always", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// DurabilityConfig locates and tunes the on-disk state of a durable
// pipeline. Layout under DataDir:
//
//	DataDir/checkpoint             versioned gob snapshot (fleet + store + cursor)
//	DataDir/wal/                   segmented write-ahead log of acked samples
//	DataDir/shard-<k>/checkpoint-<epoch>   shard k's model fleet (sharded mode)
//
// In sharded mode the root checkpoint holds the coordinator state and an
// epoch number; the per-shard files carrying that epoch hold the models.
// Shard files are written first, the root checkpoint is atomically renamed
// into place last, and stale epochs are garbage-collected afterwards — a
// crash anywhere in the sequence recovers from the previous epoch.
type DurabilityConfig struct {
	// DataDir is the root of the durable state (required).
	DataDir string
	// CheckpointEvery triggers an automatic checkpoint after this many
	// scored rows. If both CheckpointEvery and CheckpointInterval are
	// zero, a default of every 240 rows (one simulated day) applies.
	CheckpointEvery int
	// CheckpointInterval triggers an automatic checkpoint after this much
	// wall time (0 disables the time trigger).
	CheckpointInterval time.Duration
	// Fsync is the WAL sync policy (default SyncBatch).
	Fsync SyncPolicy
	// SegmentBytes is the WAL segment rotation size (default 4 MiB).
	SegmentBytes int64
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.CheckpointEvery == 0 && c.CheckpointInterval == 0 {
		c.CheckpointEvery = 240
	}
	return c
}

func (c DurabilityConfig) checkpointPath() string { return filepath.Join(c.DataDir, "checkpoint") }
func (c DurabilityConfig) walDir() string         { return filepath.Join(c.DataDir, "wal") }

func (c DurabilityConfig) shardDir(k int) string {
	return filepath.Join(c.DataDir, fmt.Sprintf("shard-%d", k))
}

func (c DurabilityConfig) shardCheckpointPath(k int, epoch uint64) string {
	return filepath.Join(c.shardDir(k), fmt.Sprintf("checkpoint-%d", epoch))
}

func (c DurabilityConfig) walOptions() wal.Options {
	return wal.Options{SegmentBytes: c.SegmentBytes, Sync: c.Fsync}
}

// HasCheckpoint reports whether dataDir holds a checkpoint to recover from
// (the OpenDurableMonitor vs NewDurableMonitor decision).
func HasCheckpoint(dataDir string) bool {
	_, err := os.Stat(filepath.Join(dataDir, "checkpoint"))
	return err == nil
}

// DurableMonitor is a Monitor whose state survives crashes: every acked
// sample batch is in the write-ahead log before Ingest returns, and the
// whole pipeline (model fleet, store, scoring cursor) is checkpointed
// atomically on a step/time cadence. After a crash, OpenDurableMonitor
// restores the last checkpoint, replays the WAL tail, and re-scores the
// recovered rows — reproducing the exact fitness trajectory of an
// uninterrupted run (scoring is deterministic).
//
// Flow control composes with durability: WithScoreQueue only pipelines
// row assembly against scoring — a full queue blocks the producer, rows
// are scored by a single consumer in time order, and nothing between the
// WAL and the scorer ever sheds data — so trajectories stay bit-identical
// with any queue depth, including across crash recovery. Overload
// shedding is allowed only at the collector boundary, before a sample is
// acked into the WAL (see CollectorServer.SetFlow).
type DurableMonitor struct {
	mu      sync.Mutex
	mon     *Monitor
	log     *wal.Log
	cfg     DurabilityConfig
	cadence manager.Cadence
	rows    int    // cumulative scored rows, the cadence's progress counter
	epoch   uint64 // last committed sharded-checkpoint epoch
	closed  bool

	replayApplied int
	replaySkipped int
}

// NewDurableMonitor trains a monitor on history (exactly like NewMonitor)
// and makes it durable under cfg.DataDir: a WAL is attached to the store
// and an initial checkpoint of the freshly trained fleet is written before
// returning, so even an immediate crash recovers to the trained state.
func NewDurableMonitor(history *Dataset, mcfg ManagerConfig, cfg DurabilityConfig, opts ...MonitorOption) (*DurableMonitor, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("durable monitor: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("durable monitor: %w", err)
	}
	mon, err := NewMonitor(history, mcfg, opts...)
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		mon.fleet.Close()
		return nil, err
	}
	mon.store.AttachWAL(log)
	d := &DurableMonitor{mon: mon, log: log, cfg: cfg,
		cadence: manager.Cadence{EverySteps: cfg.CheckpointEvery, Interval: cfg.CheckpointInterval}}
	if err := d.checkpointLocked(); err != nil {
		log.Close()
		mon.fleet.Close()
		return nil, err
	}
	return d, nil
}

// OpenDurableMonitor recovers a durable monitor from cfg.DataDir: it loads
// the latest checkpoint, replays WAL records past the checkpoint's
// sequence number into the store, re-scores every recovered row, and
// returns the reports of those re-scored rows (the post-crash replay of
// the fitness trajectory). A missing checkpoint is manager.ErrNoCheckpoint
// — cold-start with NewDurableMonitor instead.
func OpenDurableMonitor(cfg DurabilityConfig, sink AlarmSink, opts ...MonitorOption) (*DurableMonitor, []StepReport, error) {
	cfg = cfg.withDefaults()
	var o monitorOptions
	for _, opt := range opts {
		opt(&o) // shard count comes from the checkpoint; WithShards is ignored here
	}
	ck, err := manager.ReadCheckpointFile(cfg.checkpointPath())
	if err != nil {
		return nil, nil, err
	}
	var diag *DiagnosisEngine
	if o.diagnosis != nil {
		// The engine and its sink wrapper exist before the fleet so the
		// replayed rows' alarms flow through it, and its checkpointed
		// state is restored before any row replays — the replay then
		// continues the incident state machine exactly where the
		// pre-crash run left it (same IDs, same rankings).
		diag = diagnose.NewEngine(*o.diagnosis)
		sink = diag.WrapSink(sink)
	}
	fleet, coord, err := recoverFleet(cfg, ck, sink)
	if err != nil {
		return nil, nil, err
	}
	if o.discovery != nil {
		// The discovery wrapper goes on before diagnosis attaches so the
		// topology API sees the discovery views, and before replay so the
		// re-scored rows drive the sketches (and any round boundaries)
		// exactly like the pre-crash run.
		df, derr := wrapRecoveredFleet(fleet, *o.discovery, ck.Discover)
		if derr != nil {
			fleet.Close()
			return nil, nil, fmt.Errorf("recover discovery: %w", derr)
		}
		fleet = df
	}
	var api *diagnose.API
	if diag != nil {
		if len(ck.Diagnose) > 0 {
			if err := diag.UnmarshalState(ck.Diagnose); err != nil {
				fleet.Close()
				return nil, nil, fmt.Errorf("recover diagnosis: %w", err)
			}
		}
		api = wireDiagnosis(diag, fleet)
		if !o.tenantOwned {
			obs.RegisterOpsHandler("/api/v1/", api)
		}
	}
	store, err := tsdb.Restore(bytes.NewReader(ck.Store))
	if err != nil {
		fleet.Close()
		return nil, nil, fmt.Errorf("recover store: %w", err)
	}
	applied, skipped, err := store.ReplayWAL(cfg.walDir(), ck.WALSeq)
	if err != nil {
		fleet.Close()
		return nil, nil, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		fleet.Close()
		return nil, nil, err
	}
	store.AttachWAL(log)
	mon := &Monitor{store: store, fleet: fleet, coord: coord, step: store.Step(), cursor: ck.Cursor, ids: fleet.IDs(), scoreQueue: o.scoreQueue, diag: diag, api: api}
	d := &DurableMonitor{mon: mon, log: log, cfg: cfg, epoch: ck.Epoch,
		cadence:       manager.Cadence{EverySteps: cfg.CheckpointEvery, Interval: cfg.CheckpointInterval},
		replayApplied: applied, replaySkipped: skipped}
	manager.RecordCheckpointEpoch(ck.Epoch)

	// Re-score everything the store holds beyond the checkpoint cursor.
	// WAL records are whole ingest batches (CRC-framed, torn tails
	// dropped), so the store only ever recovers complete rows; forcing
	// the flush here replays Manager.Step in the original order and
	// reproduces the pre-crash trajectory bit for bit.
	var last time.Time
	for _, id := range mon.ids {
		if t, ok := store.LastTime(id); ok && t.After(last) {
			last = t
		}
	}
	var recovered []StepReport
	if !last.IsZero() && !last.Before(mon.cursor) {
		recovered = mon.FlushUpTo(last.Add(mon.step))
	}
	d.rows = len(recovered)
	return d, recovered, nil
}

// recoverFleet restores the scoring fleet a checkpoint describes: the
// single manager blob for the classic layout, or the coordinator state
// plus every shard-<k>/checkpoint-<epoch> file for the sharded layout.
func recoverFleet(cfg DurabilityConfig, ck *manager.Checkpoint, sink AlarmSink) (Fleet, *ShardCoordinator, error) {
	if ck.Shards == 0 {
		mgr, err := manager.LoadManager(bytes.NewReader(ck.Manager), sink)
		if err != nil {
			return nil, nil, fmt.Errorf("recover manager: %w", err)
		}
		return mgr, nil, nil
	}
	files := make([]*os.File, 0, ck.Shards)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	blobs := make([]io.Reader, ck.Shards)
	for k := 0; k < ck.Shards; k++ {
		f, err := os.Open(cfg.shardCheckpointPath(k, ck.Epoch))
		if err != nil {
			return nil, nil, fmt.Errorf("recover shard %d (epoch %d): %w", k, ck.Epoch, err)
		}
		files = append(files, f)
		blobs[k] = f
	}
	coord, err := shard.Load(bytes.NewReader(ck.Coord), blobs, sink)
	if err != nil {
		return nil, nil, fmt.Errorf("recover sharded fleet: %w", err)
	}
	return coord, coord, nil
}

// Monitor exposes the underlying monitor.
func (d *DurableMonitor) Monitor() *Monitor { return d.mon }

// Fleet exposes the scoring fleet (a *Manager or a *ShardCoordinator).
func (d *DurableMonitor) Fleet() Fleet { return d.mon.Fleet() }

// Manager exposes the underlying model fleet when unsharded; nil for a
// sharded monitor (use Fleet or Coordinator).
func (d *DurableMonitor) Manager() *Manager { return d.mon.Manager() }

// Coordinator exposes the sharded fabric, or nil when unsharded.
func (d *DurableMonitor) Coordinator() *ShardCoordinator { return d.mon.Coordinator() }

// Diagnosis exposes the incident diagnosis engine, or nil when built
// without WithDiagnosis.
func (d *DurableMonitor) Diagnosis() *DiagnosisEngine { return d.mon.Diagnosis() }

// Reshard repartitions a sharded durable monitor across n shards and
// immediately checkpoints the new topology (the checkpoint-split): the
// new epoch's shard files are written before the root checkpoint flips,
// so a crash during resharding recovers the old topology and a crash
// after it recovers the new one — never a mix.
func (d *DurableMonitor) Reshard(n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, fmt.Errorf("durable monitor: closed")
	}
	moved, err := d.mon.Reshard(n)
	if err != nil {
		return 0, err
	}
	return moved, d.checkpointLocked()
}

// Cursor returns the timestamp of the next row to be scored — after
// recovery, the point a feeder should resume streaming from.
func (d *DurableMonitor) Cursor() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mon.cursor
}

// RecoveryStats reports how many WAL samples the last OpenDurableMonitor
// applied and skipped (zero for a fresh NewDurableMonitor).
func (d *DurableMonitor) RecoveryStats() (applied, skipped int) {
	return d.replayApplied, d.replaySkipped
}

// Ingest stores and scores samples exactly like Monitor.Ingest, with two
// durability guarantees layered on: the applied samples are in the WAL
// before Ingest returns, and a checkpoint is written automatically
// whenever the configured cadence comes due.
func (d *DurableMonitor) Ingest(samples ...Sample) ([]StepReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("durable monitor: closed")
	}
	reports, err := d.mon.Ingest(samples...)
	if err != nil {
		return reports, err
	}
	return reports, d.afterScoreLocked(len(reports))
}

// FlushUpTo forces scoring of all rows before deadline (gaps reset the
// affected links), then applies the checkpoint cadence.
func (d *DurableMonitor) FlushUpTo(deadline time.Time) ([]StepReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("durable monitor: closed")
	}
	reports := d.mon.FlushUpTo(deadline)
	return reports, d.afterScoreLocked(len(reports))
}

func (d *DurableMonitor) afterScoreLocked(scored int) error {
	d.rows += scored
	if !d.cadence.Due(d.rows, time.Now()) {
		return nil
	}
	return d.checkpointLocked()
}

// Checkpoint forces an immediate checkpoint regardless of cadence.
func (d *DurableMonitor) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("durable monitor: closed")
	}
	return d.checkpointLocked()
}

// checkpointLocked snapshots manager + store + cursor atomically and then
// drops WAL segments the snapshot has made redundant. The WAL sequence is
// read before the snapshots: every record with Seq <= WALSeq is already
// applied to the store, so the snapshot covers it and truncation is safe;
// anything appended concurrently gets Seq > WALSeq and stays replayable
// (replay is idempotent, so overlap is harmless).
func (d *DurableMonitor) checkpointLocked() error {
	seq := d.log.LastSeq()
	// Every checkpoint advances the epoch (in the sharded layout it also
	// versions the per-shard files); the committed value lands on the
	// mcorr_checkpoint_epoch gauge below.
	epoch := d.epoch + 1
	ck := &manager.Checkpoint{
		CreatedAt: time.Now(),
		Cursor:    d.mon.cursor,
		WALSeq:    seq,
		Steps:     d.mon.fleet.Steps(),
		Epoch:     epoch,
	}
	if coord := d.mon.coord; coord != nil {
		// Sharded layout: per-shard model files carry the next epoch; they
		// are all durable before the root checkpoint (written last, below)
		// makes that epoch authoritative.
		n := coord.NumShards()
		for k := 0; k < n; k++ {
			if err := os.MkdirAll(d.cfg.shardDir(k), 0o755); err != nil {
				return fmt.Errorf("checkpoint shard %d: %w", k, err)
			}
			path := d.cfg.shardCheckpointPath(k, epoch)
			if err := manager.AtomicWrite(path, func(f *os.File) error {
				return coord.SaveShard(k, f)
			}); err != nil {
				return fmt.Errorf("checkpoint shard %d: %w", k, err)
			}
		}
		var cbuf bytes.Buffer
		if err := coord.SaveState(&cbuf); err != nil {
			return fmt.Errorf("checkpoint coordinator: %w", err)
		}
		ck.Shards = n
		ck.Coord = cbuf.Bytes()
	} else {
		var mbuf bytes.Buffer
		if err := d.mon.Manager().Save(&mbuf); err != nil {
			return fmt.Errorf("checkpoint manager: %w", err)
		}
		ck.Manager = mbuf.Bytes()
	}
	if d.mon.diag != nil {
		blob, err := d.mon.diag.MarshalState()
		if err != nil {
			return fmt.Errorf("checkpoint diagnosis: %w", err)
		}
		ck.Diagnose = blob
	}
	if df, ok := d.mon.fleet.(*discoveryFleet); ok {
		blob, err := df.MarshalDiscoveryState()
		if err != nil {
			return fmt.Errorf("checkpoint discovery: %w", err)
		}
		ck.Discover = blob
	}
	var sbuf bytes.Buffer
	if err := d.mon.store.Snapshot(&sbuf); err != nil {
		return fmt.Errorf("checkpoint store: %w", err)
	}
	ck.Store = sbuf.Bytes()
	if err := manager.WriteCheckpointFile(d.cfg.checkpointPath(), ck); err != nil {
		return err
	}
	d.epoch = ck.Epoch
	manager.RecordCheckpointEpoch(ck.Epoch)
	d.cadence.Mark(d.rows, time.Now())
	if err := d.log.TruncateBefore(seq); err != nil {
		return fmt.Errorf("wal retention: %w", err)
	}
	if ck.Shards > 0 {
		d.gcShardEpochs(ck.Shards, ck.Epoch)
	}
	return nil
}

// gcShardEpochs removes per-shard checkpoint files from superseded epochs
// and shard directories beyond the current shard count (left behind when
// a reshard shrank the fleet). Best-effort: the authoritative state is
// the root checkpoint, and stale files are harmless until the next GC.
func (d *DurableMonitor) gcShardEpochs(shards int, epoch uint64) {
	keep := fmt.Sprintf("checkpoint-%d", epoch)
	dirs, err := filepath.Glob(filepath.Join(d.cfg.DataDir, "shard-*"))
	if err != nil {
		return
	}
	for _, dir := range dirs {
		var k int
		if _, err := fmt.Sscanf(filepath.Base(dir), "shard-%d", &k); err != nil {
			continue
		}
		if k >= shards {
			os.RemoveAll(dir)
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.Name() != keep {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// Close writes a final checkpoint and releases the WAL and the manager's
// worker pool. A monitor closed cleanly recovers instantly (empty WAL
// tail).
func (d *DurableMonitor) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.checkpointLocked()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	d.mon.fleet.Close()
	return err
}

// OpenDurableStore opens (or recovers) a standalone WAL-backed store under
// dataDir — the collector-side durability primitive, with no manager
// attached. If a checkpoint exists the store is restored from it first;
// then the WAL tail is replayed, and a fresh WAL is attached so subsequent
// appends are logged before they are acked. It returns the store and the
// number of samples replayed from the WAL.
func OpenDurableStore(dataDir string, step time.Duration, retention int, policy SyncPolicy) (*Store, int, error) {
	cfg := DurabilityConfig{DataDir: dataDir, Fsync: policy}
	if err := os.MkdirAll(cfg.walDir(), 0o755); err != nil {
		return nil, 0, fmt.Errorf("durable store: %w", err)
	}
	var (
		store *Store
		after uint64
	)
	ck, err := manager.ReadCheckpointFile(cfg.checkpointPath())
	switch {
	case err == nil:
		store, err = tsdb.Restore(bytes.NewReader(ck.Store))
		if err != nil {
			return nil, 0, fmt.Errorf("durable store recover: %w", err)
		}
		after = ck.WALSeq
	case errors.Is(err, manager.ErrNoCheckpoint):
		store, err = tsdb.NewStore(step, retention)
		if err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, err
	}
	applied, _, err := store.ReplayWAL(cfg.walDir(), after)
	if err != nil {
		return nil, 0, err
	}
	log, err := wal.Open(cfg.walDir(), cfg.walOptions())
	if err != nil {
		return nil, 0, err
	}
	store.AttachWAL(log)
	return store, applied, nil
}

// CheckpointStore writes a store-only checkpoint (no manager blob) for a
// store opened with OpenDurableStore and truncates the WAL segments the
// snapshot covers. Safe to call while appends are in flight: the sequence
// is read before the snapshot, so concurrent appends stay replayable.
func CheckpointStore(dataDir string, s *Store) error {
	log := s.WAL()
	if log == nil {
		return fmt.Errorf("durable store checkpoint: store has no WAL attached")
	}
	seq := log.LastSeq()
	var sbuf bytes.Buffer
	if err := s.Snapshot(&sbuf); err != nil {
		return fmt.Errorf("durable store checkpoint: %w", err)
	}
	ck := &manager.Checkpoint{CreatedAt: time.Now(), WALSeq: seq, Store: sbuf.Bytes()}
	cfg := DurabilityConfig{DataDir: dataDir}
	if err := manager.WriteCheckpointFile(cfg.checkpointPath(), ck); err != nil {
		return err
	}
	if err := log.TruncateBefore(seq); err != nil {
		return fmt.Errorf("durable store wal retention: %w", err)
	}
	return nil
}

// CloseDurableStore detaches and closes the store's WAL (final sync
// included). The store itself stays usable in memory.
func CloseDurableStore(s *Store) error {
	log := s.WAL()
	if log == nil {
		return nil
	}
	return log.Close()
}
