package mcorr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/diagnose"
	"mcorr/internal/obs"
	"mcorr/internal/tsdb"
)

// DefaultTenant is the tenant that owns traffic from agents whose hello
// carries no tenant field — every pre-tenancy wire client lands here, so
// a single-tenant deployment never has to name anything.
const DefaultTenant = "default"

// ErrMeasurementQuota is the cause wrapped into the PartialAppendError a
// tenant returns when a batch would push it past its MaxMeasurements
// quota. The leading samples under quota are stored (and acked); the
// tail is refused.
var ErrMeasurementQuota = errors.New("measurement quota exceeded")

// TenantQuota bounds one tenant's resource footprint. The zero value is
// unlimited.
type TenantQuota struct {
	// MaxMeasurements caps the distinct measurements the tenant may
	// ingest. A batch introducing a measurement beyond the cap is cut
	// there and the tail refused with ErrMeasurementQuota (surfaced as a
	// partial ack on the wire, so agents do not lose the under-quota
	// prefix). 0 = unlimited.
	MaxMeasurements int `json:"max_measurements"`
	// MaxPairs caps the tenant's modeled pair graph. With discovery
	// enabled it clamps the discovery budget; without discovery, tenant
	// creation fails when the full graph l(l−1)/2 exceeds the cap.
	// 0 = unlimited.
	MaxPairs int `json:"max_pairs"`
	// SamplesPerSecond rate-limits the tenant's collector ingest with a
	// token bucket (enforced server-side, ahead of per-agent limits).
	// 0 = unlimited.
	SamplesPerSecond float64 `json:"samples_per_second"`
	// Burst is the tenant token-bucket capacity in samples
	// (0 = max(SamplesPerSecond, the wire batch limit)).
	Burst int `json:"burst"`
}

// TenantConfig describes one tenant to Registry.CreateTenant.
type TenantConfig struct {
	// Name identifies the tenant: lowercase letters, digits, "-" and "_",
	// max 64 bytes (it becomes a directory name and a metric label).
	// Empty means DefaultTenant.
	Name string
	// History trains the tenant's fleet (required unless the tenant is
	// durable and a checkpoint already exists to recover from).
	History *Dataset
	// Manager configures the tenant's model fleet.
	Manager ManagerConfig
	// Quota bounds the tenant's footprint (zero value = unlimited).
	Quota TenantQuota
	// Durable persists the tenant under <registry data dir>/tenants/<name>
	// (the default tenant reuses a pre-tenancy layout at the data-dir root
	// when one exists). CreateTenant recovers from an existing checkpoint
	// automatically.
	Durable bool
	// Durability tunes checkpoint cadence and WAL fsync for a durable
	// tenant. DataDir is derived from the registry and ignored here.
	Durability DurabilityConfig
	// Options customize the monitor (shards, score queue, diagnosis,
	// discovery) exactly as for NewMonitor.
	Options []MonitorOption
	// OnReport, when set, receives every finished StepReport (including
	// rows re-scored during recovery ingest) under the tenant's lock, in
	// scoring order.
	OnReport func(tenant string, r StepReport)
}

// Tenant is one isolated monitored system inside a multi-tenant
// deployment: its own store, scoring fleet, optional discovery policy and
// diagnosis engine, optional durable state, and its own quotas. A Tenant
// is a collector Sink — the server routes each connection's batches to
// the tenant named in the agent's hello. All methods are safe for
// concurrent use; ingest is serialized per tenant, so trajectories are
// deterministic per tenant regardless of cross-tenant interleaving.
type Tenant struct {
	name  string
	quota TenantQuota

	mu        sync.Mutex
	mon       *Monitor
	dur       *DurableMonitor // non-nil iff durable
	api       *diagnose.API
	seen      map[MeasurementID]bool
	onReport  func(string, StepReport)
	recovered []StepReport
	closed    bool
}

// Per-tenant metric families. Labeled by tenant name; series are deleted
// when the tenant closes, so cardinality tracks the live tenant set.
var (
	obsTenantCount = obs.Default().Gauge("mcorr_tenant_count",
		"Tenants currently open across every registry in the process.")
	obsTenantRows = obs.Default().CounterVec("mcorr_tenant_rows_total",
		"Rows scored per tenant.",
		"tenant")
	obsTenantOpenIncidents = obs.Default().GaugeVec("mcorr_tenant_incidents_open",
		"Open incidents per tenant (tenants with a diagnosis engine).",
		"tenant")
	obsTenantQuotaRejected = obs.Default().CounterVec("mcorr_tenant_quota_rejected_total",
		"Samples refused by a tenant's measurement quota.",
		"tenant")
)

// ValidTenantName reports whether name is usable as a tenant name:
// non-empty, at most 64 bytes, lowercase letters, digits, "-" and "_",
// not starting with a separator. Tenant names become directory names
// under data-dir/tenants/ and values of the tenant metric label, so the
// alphabet is deliberately narrow.
func ValidTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// TenantDir returns the durable-state directory for a tenant under the
// registry's data dir. Tenants live under dataDir/tenants/<name>, with
// one backward-compatible exception: when the default tenant finds a
// pre-tenancy layout at the data-dir root (a checkpoint or WAL written
// by an older single-tenant deployment), it keeps using the root, so
// upgrades recover their existing state.
func TenantDir(dataDir, name string) string {
	if name == DefaultTenant {
		if HasCheckpoint(dataDir) {
			return dataDir
		}
		if _, err := os.Stat(filepath.Join(dataDir, "wal")); err == nil {
			return dataDir
		}
	}
	return filepath.Join(dataDir, "tenants", name)
}

// Registry creates, looks up and closes tenants, and routes collector
// traffic to them (it satisfies the collector's TenantRouter). Building
// a registry mounts the tenant-scoped query API on every ops server
// under /api/v1/ (tenants, correlate, and tenant-dispatched fitness /
// incidents / topology).
type Registry struct {
	dataDir string

	mu      sync.RWMutex
	tenants map[string]*Tenant
	// collectors are the collector servers routing through this registry
	// (registered by NewTenantCollectorServer); closing a tenant tears
	// its per-tenant/per-agent flow series and limiter state out of each.
	collectors []*CollectorServer
	closed     bool
}

// NewTenantRegistry returns an empty registry. dataDir is the root for
// durable tenants ("" = in-memory tenants only; creating a durable
// tenant then fails).
func NewTenantRegistry(dataDir string) *Registry {
	r := &Registry{dataDir: dataDir, tenants: make(map[string]*Tenant)}
	obs.RegisterOpsHandler("/api/v1/", NewTenantAPI(r))
	return r
}

// CreateTenant creates (or, for a durable tenant with an existing
// checkpoint, recovers) a tenant and registers it for routing. The
// returned tenant's Recovered reports hold the re-scored post-crash rows
// when recovery happened.
func (r *Registry) CreateTenant(cfg TenantConfig) (*Tenant, error) {
	name := cfg.Name
	if name == "" {
		name = DefaultTenant
	}
	if !ValidTenantName(name) {
		return nil, fmt.Errorf("mcorr: invalid tenant name %q", cfg.Name)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("mcorr: tenant registry closed")
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("mcorr: tenant %q already exists", name)
	}
	r.mu.Unlock()

	t, err := buildTenant(r.dataDir, name, cfg)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		t.Close()
		return nil, errors.New("mcorr: tenant registry closed")
	}
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		t.Close()
		return nil, fmt.Errorf("mcorr: tenant %q already exists", name)
	}
	r.tenants[name] = t
	n := len(r.tenants)
	r.mu.Unlock()
	obsTenantCount.Set(float64(n))
	return t, nil
}

// buildTenant constructs the tenant's monitor (fresh or recovered) and
// wraps it with quota state and the per-tenant API.
func buildTenant(dataDir, name string, cfg TenantConfig) (*Tenant, error) {
	opts := append(append([]MonitorOption{}, cfg.Options...), withTenantOwnedAPI())
	var probe monitorOptions
	for _, opt := range opts {
		opt(&probe)
	}
	if cfg.Quota.MaxPairs > 0 && probe.discovery != nil {
		if probe.discovery.Budget == 0 || probe.discovery.Budget > cfg.Quota.MaxPairs {
			clamped := *probe.discovery
			clamped.Budget = cfg.Quota.MaxPairs
			opts = append(opts, WithDiscovery(clamped))
		}
	}

	var (
		mon       *Monitor
		dur       *DurableMonitor
		recovered []StepReport
		err       error
	)
	switch {
	case cfg.Durable && dataDir == "":
		return nil, fmt.Errorf("mcorr: tenant %q is durable but the registry has no data dir", name)
	case cfg.Durable:
		dcfg := cfg.Durability
		dcfg.DataDir = TenantDir(dataDir, name)
		if HasCheckpoint(dcfg.DataDir) {
			dur, recovered, err = OpenDurableMonitor(dcfg, cfg.Manager.Sink, opts...)
		} else {
			if cfg.History == nil {
				return nil, fmt.Errorf("mcorr: tenant %q has no checkpoint to recover and no history to train on", name)
			}
			dur, err = NewDurableMonitor(cfg.History, cfg.Manager, dcfg, opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("mcorr: tenant %q: %w", name, err)
		}
		mon = dur.Monitor()
	default:
		if cfg.History == nil {
			return nil, fmt.Errorf("mcorr: tenant %q needs History (in-memory tenants cannot recover)", name)
		}
		mon, err = NewMonitor(cfg.History, cfg.Manager, opts...)
		if err != nil {
			return nil, fmt.Errorf("mcorr: tenant %q: %w", name, err)
		}
	}

	if cfg.Quota.MaxPairs > 0 && probe.discovery == nil {
		l := len(mon.ids)
		if full := l * (l - 1) / 2; full > cfg.Quota.MaxPairs {
			if dur != nil {
				dur.Close()
			} else {
				mon.fleet.Close()
			}
			return nil, fmt.Errorf("mcorr: tenant %q: full pair graph %d exceeds MaxPairs %d (enable discovery with WithPairBudget, or raise the quota)",
				name, full, cfg.Quota.MaxPairs)
		}
	}

	api := mon.api
	if api == nil {
		// No diagnosis engine: the tenant still serves topology (and
		// correlate, which reads the store directly).
		api = wireDiagnosis(nil, mon.fleet)
	}
	seen := make(map[MeasurementID]bool, len(mon.ids))
	for _, id := range mon.ids {
		seen[id] = true
	}
	// Measurements replayed from the WAL beyond the trained set also
	// count against the quota after recovery.
	for _, id := range mon.store.IDs() {
		seen[id] = true
	}
	t := &Tenant{
		name:      name,
		quota:     cfg.Quota,
		mon:       mon,
		dur:       dur,
		api:       api,
		seen:      seen,
		onReport:  cfg.OnReport,
		recovered: recovered,
	}
	if t.onReport != nil {
		for _, rep := range recovered {
			t.onReport(name, rep)
		}
	}
	if len(recovered) > 0 {
		obsTenantRows.With(name).Add(uint64(len(recovered)))
	}
	return t, nil
}

// Tenant looks a tenant up by name.
func (r *Registry) Tenant(name string) (*Tenant, bool) {
	r.mu.RLock()
	t, ok := r.tenants[name]
	r.mu.RUnlock()
	return t, ok
}

// Names returns the open tenants' names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Tenants returns the open tenants sorted by name.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// CloseTenant closes one tenant (final checkpoint for durable tenants)
// and removes it from routing. Closing an unknown tenant is an error.
func (r *Registry) CloseTenant(name string) error {
	r.mu.Lock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	n := len(r.tenants)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("mcorr: unknown tenant %q", name)
	}
	obsTenantCount.Set(float64(n))
	err := t.Close()
	r.forgetTenantSeries(name)
	return err
}

// Close closes every tenant. The registry cannot be reused.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.tenants = map[string]*Tenant{}
	r.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	var first error
	for _, t := range tenants {
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
		r.forgetTenantSeries(t.name)
	}
	obsTenantCount.Set(0)
	return first
}

// SinkFor implements the collector's TenantRouter: the wire tenant ""
// (a legacy hello) maps to DefaultTenant; unknown tenants refuse the
// connection.
func (r *Registry) SinkFor(tenant string) (string, collector.Sink, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	t, ok := r.Tenant(tenant)
	if !ok {
		return "", nil, fmt.Errorf("mcorr: unknown tenant %q", tenant)
	}
	return t.name, t, nil
}

// TenantLimit implements the collector's TenantRouter: the tenant's
// ingest rate quota.
func (r *Registry) TenantLimit(name string) (rate float64, burst int) {
	t, ok := r.Tenant(name)
	if !ok {
		return 0, 0
	}
	return t.quota.SamplesPerSecond, t.quota.Burst
}

// NewTenantCollectorServer returns a collector server that routes every
// agent connection to the registry's tenants by the tenant field of the
// agent's hello (legacy hellos land on the default tenant).
func NewTenantCollectorServer(r *Registry) (*CollectorServer, error) {
	srv, err := collector.NewTenantServer(r, nil)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, srv)
	r.mu.Unlock()
	return srv, nil
}

// forgetTenantSeries removes a closed tenant's footprint from every
// collector server routed by this registry.
func (r *Registry) forgetTenantSeries(name string) {
	r.mu.RLock()
	collectors := append([]*CollectorServer(nil), r.collectors...)
	r.mu.RUnlock()
	for _, srv := range collectors {
		srv.ForgetTenant(name)
	}
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's configured quotas.
func (t *Tenant) Quota() TenantQuota { return t.quota }

// Monitor exposes the tenant's monitor.
func (t *Tenant) Monitor() *Monitor { return t.mon }

// Durable exposes the durable wrapper, or nil for an in-memory tenant.
func (t *Tenant) Durable() *DurableMonitor { return t.dur }

// Fleet exposes the tenant's scoring fleet.
func (t *Tenant) Fleet() Fleet { return t.mon.Fleet() }

// Diagnosis exposes the tenant's incident engine, or nil when the tenant
// was built without WithDiagnosis.
func (t *Tenant) Diagnosis() *DiagnosisEngine { return t.mon.Diagnosis() }

// Recovered returns the step reports re-scored during crash recovery
// (empty for a fresh tenant).
func (t *Tenant) Recovered() []StepReport { return t.recovered }

// AppendBatch implements the collector Sink: the tenant ingests the
// batch, scoring every row it completes. Quota refusals surface as
// *tsdb.PartialAppendError so the collector acks exactly the stored
// prefix.
func (t *Tenant) AppendBatch(batch []tsdb.Sample) error {
	_, err := t.Ingest(batch...)
	return err
}

// Ingest stores the samples (under the tenant's measurement quota) and
// scores every row that became complete, exactly like Monitor.Ingest but
// serialized per tenant and counted on the tenant metric families.
func (t *Tenant) Ingest(samples ...Sample) ([]StepReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("mcorr: tenant %q closed", t.name)
	}
	admitted, qerr := t.admitLocked(samples)
	var (
		reports []StepReport
		err     error
	)
	if len(admitted) > 0 {
		if t.dur != nil {
			reports, err = t.dur.Ingest(admitted...)
		} else {
			reports, err = t.mon.Ingest(admitted...)
		}
	}
	t.noteReportsLocked(reports)
	if err != nil {
		return reports, err
	}
	if qerr != nil {
		return reports, &tsdb.PartialAppendError{Stored: len(admitted), Err: qerr}
	}
	return reports, nil
}

// FlushUpTo forces scoring of every row before deadline even when some
// measurements are missing samples (gaps reset the affected links),
// exactly like Monitor.FlushUpTo but with the tenant's metric and
// OnReport bookkeeping.
func (t *Tenant) FlushUpTo(deadline time.Time) ([]StepReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("mcorr: tenant %q closed", t.name)
	}
	var (
		reports []StepReport
		err     error
	)
	if t.dur != nil {
		reports, err = t.dur.FlushUpTo(deadline)
	} else {
		reports = t.mon.FlushUpTo(deadline)
	}
	t.noteReportsLocked(reports)
	return reports, err
}

// noteReportsLocked counts finished rows on the tenant metric families
// and delivers them to OnReport. Caller holds t.mu.
func (t *Tenant) noteReportsLocked(reports []StepReport) {
	if len(reports) == 0 {
		return
	}
	obsTenantRows.With(t.name).Add(uint64(len(reports)))
	if diag := t.mon.Diagnosis(); diag != nil {
		obsTenantOpenIncidents.With(t.name).Set(float64(diag.OpenCount()))
	}
	if t.onReport != nil {
		for _, rep := range reports {
			t.onReport(t.name, rep)
		}
	}
}

// admitLocked applies the measurement quota to a batch: samples for
// known measurements always pass; a sample introducing a measurement
// beyond MaxMeasurements cuts the batch there. Caller holds t.mu.
func (t *Tenant) admitLocked(samples []Sample) ([]Sample, error) {
	if t.quota.MaxMeasurements <= 0 {
		return samples, nil
	}
	for i, s := range samples {
		if t.seen[s.ID] {
			continue
		}
		if len(t.seen) >= t.quota.MaxMeasurements {
			obsTenantQuotaRejected.With(t.name).Add(uint64(len(samples) - i))
			return samples[:i], fmt.Errorf("tenant %q: measurement %s over cap %d: %w",
				t.name, s.ID, t.quota.MaxMeasurements, ErrMeasurementQuota)
		}
		t.seen[s.ID] = true
	}
	return samples, nil
}

// Checkpoint forces a durable tenant's checkpoint (no-op for in-memory
// tenants).
func (t *Tenant) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dur == nil || t.closed {
		return nil
	}
	return t.dur.Checkpoint()
}

// Close releases the tenant: a final checkpoint and WAL close for a
// durable tenant, fleet worker shutdown for all, and removal of the
// tenant's labeled metric series.
func (t *Tenant) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var err error
	if t.dur != nil {
		err = t.dur.Close()
	} else {
		t.mon.fleet.Close()
	}
	obsTenantRows.Delete(t.name)
	obsTenantOpenIncidents.Delete(t.name)
	obsTenantQuotaRejected.Delete(t.name)
	return err
}
