package mcorr

import (
	"mcorr/internal/collector"
	"mcorr/internal/obs"
)

// Flow-control surface. The collector's overload-protection layer
// (admission queue, shed policies, per-agent rate limits, ack throttle
// hints) is configured through CollectorServer.SetFlow with these types;
// the monitor's bounded row queue is configured with WithScoreQueue.
type (
	// FlowConfig tunes the collector server's flow-control layer (see
	// CollectorServer.SetFlow). The zero value disables it.
	FlowConfig = collector.FlowConfig
	// ShedPolicy selects what the server does with a batch when the
	// admission queue is full.
	ShedPolicy = collector.ShedPolicy
	// AckInfo is an ack's stored count plus the server's throttle hint.
	AckInfo = collector.AckInfo
)

// Shed policies (see the collector package for semantics).
const (
	ShedBlock      = collector.ShedBlock
	ShedDropOldest = collector.ShedDropOldest
	ShedReject     = collector.ShedReject
)

// ParseShedPolicy parses "block", "drop-oldest" or "reject".
func ParseShedPolicy(s string) (ShedPolicy, error) { return collector.ParseShedPolicy(s) }

// Monitor-side flow metrics: the bounded row queue between ingest and
// scoring. Shedding never happens here — a full queue blocks the
// producer (explicit backpressure) so DurableMonitor trajectories stay
// bit-identical; only the collector boundary is allowed to drop data.
var (
	obsFlowRowDepth = obs.Default().Gauge("mcorr_flow_row_queue_depth",
		"Rows currently buffered between ingest and the scoring fleet.")
	obsFlowRowBlocked = obs.Default().Counter("mcorr_flow_row_queue_blocked_total",
		"Times the ingest side blocked on a full row queue (backpressure).")
)
