// Package mcorr is a Go implementation of the transition-probability
// correlation model of Gao, Jiang, Chen and Han, "Modeling Probabilistic
// Measurement Correlations for Problem Determination in Large-Scale
// Distributed Systems" (ICDCS 2009), together with everything needed to
// run it as a monitoring system: a time-series store, a TCP collection
// pipeline, a model fleet with the paper's three-level fitness scoring,
// problem localization, alarming, baselines from the cited prior work, and
// a synthetic datacenter workload for experimentation.
//
// # The model in brief
//
// Two measurements observed together form a 2-D point per sampling
// interval. The history of such points defines a grid over the plane
// (density-adaptive per dimension) and a Markov transition matrix between
// grid cells, initialized with a spatial-closeness prior and updated by
// Bayesian multiplicative updates on every observed transition. A new
// observation is scored by the rank of its landing cell in the predicted
// transition distribution — the fitness score Q ∈ [0, 1]. Low fitness on
// one link implicates a pair; consistently low fitness on all links of one
// measurement implicates that measurement; aggregated per machine it
// localizes the faulty server.
//
// # Quick start
//
//	history := []mcorr.Point{ ... }           // (m1, m2) per 6-minute sample
//	model, err := mcorr.TrainModel(history, mcorr.ModelConfig{Adaptive: true})
//	if err != nil { ... }
//	for _, p := range online {
//		res := model.Step(p)
//		if res.Scored && res.Fitness < 0.3 {
//			// the pair's correlation broke at this sample
//		}
//	}
//
// For whole-system monitoring use NewManager (one model per measurement
// pair, Q^a and Q aggregation, localization) or Monitor (manager + store +
// sample ingestion glue).
//
// # Scaling out: the sharded scoring fabric
//
// The pair graph grows quadratically in the measurement count. WithShards
// partitions it across N manager shards by rendezvous hashing — each shard
// owns its models and worker pool — while a coordinator merges every
// shard's per-pair outcomes through one central aggregation path, so the
// Q^a/Q trajectories stay bit-identical to an unsharded run for any shard
// count. Monitor.Reshard (and DurableMonitor.Reshard) repartitions a live
// fleet without retraining or disturbing the trajectory. The Fleet
// interface abstracts over both shapes.
//
// # Durability
//
// NewDurableMonitor/OpenDurableMonitor wrap the monitor in a write-ahead
// log plus crash-atomic checkpoints under a data directory. Every acked
// sample batch is logged before ingestion returns; recovery restores the
// last checkpoint, replays the WAL tail and re-scores the recovered rows,
// reproducing the pre-crash fitness trajectory exactly. Sharded fleets
// checkpoint one epoch-versioned file per shard plus a root checkpoint
// that commits the epoch. See OPERATIONS.md for the runbook.
package mcorr
