module mcorr

go 1.22
