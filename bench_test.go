// Benchmarks regenerating every figure of the paper's evaluation section
// (one Benchmark per table/figure; the figure generators print the same
// rows/series the paper reports), plus micro-benchmarks for the hot paths
// of the model itself.
//
// Run with:
//
//	go test -bench=. -benchmem
package mcorr_test

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/core"
	"mcorr/internal/discover"
	"mcorr/internal/eval"
	"mcorr/internal/manager"
	"mcorr/internal/mathx"
	"mcorr/internal/obs"
	"mcorr/internal/shard"
	"mcorr/internal/shardnet"
	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
	"mcorr/internal/timeseries"
)

// benchEnv is the shared small-scale reproduction environment (3 groups ×
// 6 machines × 30 days). Built once; figure generators only read from it.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *eval.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal, benchEnvErr = eval.NewEnv(eval.EnvConfig{Seed: 2008, Machines: 6, Days: 30})
	})
	if benchEnvErr != nil {
		b.Fatalf("env: %v", benchEnvErr)
	}
	return benchEnvVal
}

// benchFigure runs one figure generator per iteration and fails on error.
func benchFigure(b *testing.B, run func(*eval.Env) (*eval.Figure, error)) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := run(env)
		if err != nil {
			b.Fatalf("figure: %v", err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatalf("render: %v", err)
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig01RawSeries(b *testing.B) { benchFigure(b, eval.Fig01RawSeries) }

func BenchmarkFig02ScatterShapes(b *testing.B) { benchFigure(b, eval.Fig02ScatterShapes) }

func BenchmarkFig05PriorMatrix(b *testing.B) {
	benchFigure(b, func(*eval.Env) (*eval.Figure, error) { return eval.Fig05PriorMatrix() })
}

func BenchmarkFig07GridAdapt(b *testing.B) {
	benchFigure(b, func(*eval.Env) (*eval.Figure, error) { return eval.Fig07GridAdapt() })
}

func BenchmarkFig09Posterior(b *testing.B) {
	benchFigure(b, func(*eval.Env) (*eval.Figure, error) { return eval.Fig09Posterior() })
}

func BenchmarkClosenessCensus(b *testing.B) { benchFigure(b, eval.ClosenessCensus) }

func BenchmarkFig11Fitness(b *testing.B) {
	benchFigure(b, func(*eval.Env) (*eval.Figure, error) { return eval.Fig11Fitness() })
}

func BenchmarkFig12ProblemDetermination(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig12ProblemDetermination(e, 15) })
}

func BenchmarkFig13aOfflineVsAdaptive(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig13aOfflineVsAdaptive(e, 12) })
}

func BenchmarkFig13bUpdateTime(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig13bUpdateTime(e, 12, 5) })
}

func BenchmarkFig14Localization(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig14Localization(e, 4, 5, 12) })
}

func BenchmarkFig15Periodic(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig15Periodic(e, 12) })
}

func BenchmarkFig16TrainingSize(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.Fig16TrainingSize(e, 12) })
}

func BenchmarkBaselineComparison(b *testing.B) { benchFigure(b, eval.BaselineComparison) }

func BenchmarkAblation(b *testing.B) { benchFigure(b, eval.Ablation) }

// --- Micro-benchmarks of the model's hot paths --------------------------

// corrWalk produces a correlated random walk for model benchmarks.
func corrWalk(seed int64, n int) []mathx.Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]mathx.Point2, n)
	x := 50.0
	for i := range pts {
		x = mathx.Clamp(x+rng.NormFloat64()*2, 0, 100)
		pts[i] = mathx.Point2{X: x, Y: 2*x + rng.NormFloat64()*3}
	}
	return pts
}

// BenchmarkModelTrain measures building M = (G, V) from 8 days of samples.
func BenchmarkModelTrain(b *testing.B) {
	history := corrWalk(1, 8*timeseries.SamplesPerDay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(history, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelStepAdaptive measures the paper's online update + score
// path per sample (Figure 13(b)'s unit of work for one pair).
func BenchmarkModelStepAdaptive(b *testing.B) {
	model, err := core.Train(corrWalk(2, 4*timeseries.SamplesPerDay), core.Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	stream := corrWalk(3, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(stream[i%len(stream)])
	}
}

// BenchmarkModelStepOffline measures pure scoring without updates.
func BenchmarkModelStepOffline(b *testing.B) {
	model, err := core.Train(corrWalk(4, 4*timeseries.SamplesPerDay), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	stream := corrWalk(5, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Step(stream[i%len(stream)])
	}
}

// BenchmarkGridBuild measures the MAFIA-style discretization.
func BenchmarkGridBuild(b *testing.B) {
	history := corrWalk(6, 8*timeseries.SamplesPerDay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildGrid(history, core.GridConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDayRows materializes the day-1 rows of a benchmark dataset.
func benchDayRows(ds *timeseries.Dataset, day1 time.Time) []manager.Row {
	ids := ds.IDs()
	rows := make([]manager.Row, timeseries.SamplesPerDay)
	for k := range rows {
		tm := day1.Add(time.Duration(k) * timeseries.SampleStep)
		vals := make(map[timeseries.MeasurementID]float64, len(ids))
		for _, id := range ids {
			s := ds.Get(id)
			if idx, ok := s.IndexOf(tm); ok {
				vals[id] = s.Values[idx]
			}
		}
		rows[k] = manager.Row{Time: tm, Values: vals}
	}
	return rows
}

// benchFleet trains the adaptive benchmark fleet (machines*6 measurements
// → l(l−1)/2 models) on day 0 and returns it with the day-1 rows, warmed
// until a full replay pass reports zero grid growth: adaptive growth is a
// first-pass transient that reallocates matrices and caches, and the
// steady-state numbers are only honest once StepReport.GrownPairs says it
// has fully settled.
func benchFleet(b *testing.B, machines int) (*manager.Manager, []manager.Row) {
	b.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "Z", Machines: machines, Days: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	mgr, err := manager.New(ds.Slice(timeseries.MonitoringStart, day1), manager.Config{
		Model: core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 12}},
	})
	if err != nil {
		b.Fatal(err)
	}
	rows := benchDayRows(ds, day1)
	for pass := 0; pass < 4; pass++ {
		grown := 0
		for _, row := range rows {
			grown += mgr.Step(row).GrownPairs
		}
		if grown == 0 {
			break
		}
	}
	return mgr, rows
}

// benchManagerStep measures one synchronized row through the warmed fleet.
func benchManagerStep(b *testing.B, machines int) {
	mgr, rows := benchFleet(b, machines)
	defer mgr.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Step(rows[i%len(rows)])
	}
}

// BenchmarkManagerStep covers the paper's small (l=12, 66 pairs) and
// medium (l=36, 630 pairs) manager scales over real simulator traffic —
// which re-scores the naturally dirty fraction of pairs each step (about
// half; the rest carry cached outcomes forward).
func BenchmarkManagerStep(b *testing.B) {
	b.Run("l=12", func(b *testing.B) { benchManagerStep(b, 2) })
	b.Run("l=36", func(b *testing.B) { benchManagerStep(b, 6) })
	// l=48 (1128 pairs) is the full-graph baseline the pair-budget
	// benchmark (BenchmarkManagerStepBudget) is measured against.
	b.Run("l=48", func(b *testing.B) { benchManagerStep(b, 8) })
}

// benchManagerStepIncremental pins the dirty fraction instead of taking
// whatever the simulator traffic produces: after the fleet settles into
// steady self-runs on a constant row, the measured loop alternates that
// row with a variant in which `dirty` of the l series moved to a
// different grid cell (their most-different value of the day), so exactly
// the pairs touching those series re-score every step and every other
// pair exercises the skip path.
func benchManagerStepIncremental(b *testing.B, machines, dirty int) {
	mgr, rows := benchFleet(b, machines)
	defer mgr.Close()
	base := rows[0]
	variant := manager.Row{Time: base.Time, Values: make(map[timeseries.MeasurementID]float64, len(base.Values))}
	for id, v := range base.Values {
		variant.Values[id] = v
	}
	changed := 0
	for _, id := range mgr.IDs() {
		if changed >= dirty {
			break
		}
		bv, ok := base.Values[id]
		if !ok {
			continue
		}
		best, bestD := bv, 0.0
		for _, row := range rows {
			if v, ok := row.Values[id]; ok {
				if d := math.Abs(v - bv); d > bestD {
					best, bestD = v, d
				}
			}
		}
		variant.Values[id] = best
		changed++
	}
	// Settle every pair into a frozen self-run on the base row.
	for k := 0; k < 4; k++ {
		mgr.Step(base)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 1 {
			mgr.Step(variant)
		} else {
			mgr.Step(base)
		}
	}
}

// BenchmarkManagerStepIncremental sweeps fleet scale × dirty fraction for
// the incremental scheduler: dirty=one is the paper's sparse steady state
// (a single series moved), few is ~l/8 series, all moves every series
// (the incremental path's worst case — effectively a full rescore plus
// bookkeeping).
func BenchmarkManagerStepIncremental(b *testing.B) {
	for _, sc := range []struct{ machines, l int }{{2, 12}, {6, 36}, {8, 48}} {
		few := sc.l / 8
		if few < 2 {
			few = 2
		}
		for _, df := range []struct {
			name  string
			dirty int
		}{{"all", sc.l}, {"few", few}, {"one", 1}} {
			b.Run(fmt.Sprintf("l=%d/dirty=%s", sc.l, df.name), func(b *testing.B) {
				benchManagerStepIncremental(b, sc.machines, df.dirty)
			})
		}
	}
}

// benchManagerStepSharded is benchManagerStep routed through the shard
// coordinator: the same fleet scale, partitioned across `shards` manager
// shards. shards=1 exercises the coordinator's single-shard fast path
// (its overhead over a bare manager is the fabric's fixed cost); higher
// counts show the fan-out cost or win for the host's core count.
func benchManagerStepSharded(b *testing.B, machines, shards int) {
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "Z", Machines: machines, Days: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	coord, err := shard.New(ds.Slice(timeseries.MonitoringStart, day1), shard.Config{
		Shards: shards,
		Manager: manager.Config{
			Model: core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 12}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	rows := benchDayRows(ds, day1)
	// Warm until adaptive grid growth settles, as in benchFleet.
	for pass := 0; pass < 4; pass++ {
		grown := 0
		for _, row := range rows {
			grown += coord.Step(row).GrownPairs
		}
		if grown == 0 {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Step(rows[i%len(rows)])
	}
}

// BenchmarkManagerStepSharded records the sharded step latency at the
// paper's small scale (l=12) and a large fleet (l=48, 1128 pairs) for
// shard counts 1/2/4. Recorded in BENCH_scoring.json by `make
// bench-json`; parallel speedup at shards>1 requires spare cores.
func BenchmarkManagerStepSharded(b *testing.B) {
	for _, sc := range []struct{ machines, l int }{{2, 12}, {8, 48}} {
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("l=%d/shards=%d", sc.l, n), func(b *testing.B) {
				benchManagerStepSharded(b, sc.machines, n)
			})
		}
	}
}

// startBenchShardWorker launches one mcshard worker process for the
// networked-fabric benchmark and returns its parsed control address.
func startBenchShardWorker(b *testing.B, bin, dir string) string {
	b.Helper()
	cmd := exec.Command(bin, "-data-dir", dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatalf("mcshard stdout: %v", err)
	}
	if err := cmd.Start(); err != nil {
		b.Fatalf("start mcshard: %v", err)
	}
	b.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Process.Wait()
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		b.Fatalf("mcshard produced no LISTEN line: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "LISTEN ")
	if !ok {
		b.Fatalf("unexpected first mcshard line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	return addr
}

// benchShardNetStep is benchManagerStepSharded with the shards moved out
// of process: `workers` real mcshard processes score over TCP and return
// outcomes through the collector's exactly-once path, while the central
// aggregator merges. Process spawn, training, state transfer, and warm-up
// all happen outside the timer; checkpointing is pushed past the horizon
// so the loop measures pure fan-out/score/merge.
func benchShardNetStep(b *testing.B, machines, workers int) {
	bin := testkit.BuildBinary(b, "mcorr/cmd/mcshard")
	addrs := make([]string, workers)
	for k := range addrs {
		addrs[k] = startBenchShardWorker(b, bin, b.TempDir())
	}
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "Z", Machines: machines, Days: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	coord, err := shardnet.New(ds.Slice(timeseries.MonitoringStart, day1), shardnet.Config{
		Workers: addrs,
		Manager: manager.Config{
			Model: core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 12}},
		},
		CheckpointEvery: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	rows := benchDayRows(ds, day1)
	// Warm until adaptive grid growth settles, as in benchFleet.
	for pass := 0; pass < 4; pass++ {
		grown := 0
		for _, row := range rows {
			grown += coord.Step(row).GrownPairs
		}
		if grown == 0 {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord.Step(rows[i%len(rows)])
	}
}

// BenchmarkShardNetStep records the networked multi-process step latency
// at l=48 (1128 pairs) across 4 worker processes — the distributed
// counterpart of BenchmarkManagerStepSharded/l=48/shards=4. Recorded in
// BENCH_scoring.json by `make bench-json`. Beating the in-process number
// requires at least one spare core per worker: on a single-core host the
// fan-out serializes onto the same CPU as in-process scoring and the
// wire/wakeup overhead is pure loss, so compare the two entries with the
// recording host's core count in mind.
func BenchmarkShardNetStep(b *testing.B) {
	b.Run("l=48/workers=4", func(b *testing.B) { benchShardNetStep(b, 8, 4) })
}

// benchMatrix builds a trained kernel-Bayes transition matrix on a 12×12
// grid (s = 144 cells) for the row-cache micro-benchmarks.
func benchMatrix(b *testing.B) *core.TransitionMatrix {
	b.Helper()
	grid, err := core.UniformGrid(0, 100, 12, 0, 100, 12)
	if err != nil {
		b.Fatal(err)
	}
	kernel, err := core.NewKernel(core.KernelHarmonic, 2, 12, 12)
	if err != nil {
		b.Fatal(err)
	}
	tm, err := core.NewTransitionMatrix(grid, kernel, core.UpdateKernelBayes, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for k := 0; k < 4096; k++ {
		if err := tm.Observe(rng.Intn(tm.NumCells()), rng.Intn(tm.NumCells())); err != nil {
			b.Fatal(err)
		}
	}
	return tm
}

// BenchmarkObserve measures one online kernel-Bayes update (row-major
// kernel add + recenter + cache invalidation).
func BenchmarkObserve(b *testing.B) {
	tm := benchMatrix(b)
	s := tm.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tm.Observe(i%s, (i*7)%s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowInto contrasts the clean path (cached normalized row is
// copied out) with the dirty path (each read renormalizes after an
// Observe invalidates the row).
func BenchmarkRowInto(b *testing.B) {
	b.Run("clean", func(b *testing.B) {
		tm := benchMatrix(b)
		dst := make([]float64, tm.NumCells())
		if _, err := tm.RowInto(dst, 5); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tm.RowInto(dst, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty", func(b *testing.B) {
		tm := benchMatrix(b)
		dst := make([]float64, tm.NumCells())
		s := tm.NumCells()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tm.Observe(5, i%s); err != nil {
				b.Fatal(err)
			}
			if _, err := tm.RowInto(dst, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProb measures single-entry reads off a clean row — the
// amortized-O(1), zero-allocation path.
func BenchmarkProb(b *testing.B) {
	tm := benchMatrix(b)
	s := tm.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.Prob(5, i%s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitnessHotPath measures the combined prob+fitness scoring read
// Model.Step performs per sample, rotating over rows so the cache is
// exercised beyond a single hot line.
func BenchmarkFitnessHotPath(b *testing.B) {
	tm := benchMatrix(b)
	s := tm.NumCells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tm.ScoreTransition(i%7, (i*11)%s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsCounterHotPath measures the instrumentation cost the
// manager pays per scored sample: one counter increment plus one
// histogram observation. Both must stay allocation-free and well under
// the 50ns budget that keeps metrics out of the scoring profile.
func BenchmarkObsCounterHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_samples_total", "bench")
	h := reg.Histogram("bench_fitness", "bench", obs.FitnessBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i%100) / 100)
	}
}

// BenchmarkCollectorThroughput measures samples/sec through the real TCP
// pipeline (agent encode → socket → server decode → store).
func BenchmarkCollectorThroughput(b *testing.B) {
	store, err := mcorr.NewStore(time.Millisecond, 0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := mcorr.NewCollectorServer(store)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	agent, err := mcorr.DialCollector(addr.String(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()
	const batchSize = 256
	batch := make([]mcorr.Sample, batchSize)
	id := mcorr.MeasurementID{Machine: "bench", Metric: "cpu"}
	epoch := timeseries.MonitoringStart
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = mcorr.Sample{
				ID:    id,
				Time:  epoch.Add(time.Duration(i*batchSize+j) * time.Millisecond),
				Value: float64(j),
			}
		}
		if err := agent.Send(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(batchSize * 40) // approximate wire bytes per batch... per op
}

// BenchmarkSimulatorDay measures generating one machine-day of all six
// metrics.
func BenchmarkSimulatorDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := simulator.Generate(simulator.GroupConfig{
			Name: "Z", Machines: 1, Days: 1, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultKindSweep(b *testing.B) { benchFigure(b, eval.FaultKindSweep) }

func BenchmarkTimeConditionedExtension(b *testing.B) {
	benchFigure(b, func(e *eval.Env) (*eval.Figure, error) { return eval.TimeConditionedExtension(e, 8) })
}

// benchBudgetFleet trains the discovery-bounded benchmark fleet at a
// percentage pair budget on the same data as benchFleet, warmed the same
// way (replay passes until adaptive growth settles).
func benchBudgetFleet(b *testing.B, machines int, budget string) (mcorr.DiscoveryFleet, []manager.Row) {
	b.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{Name: "Z", Machines: machines, Days: 2, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	n, err := mcorr.ParsePairBudget(budget, ds.Len())
	if err != nil {
		b.Fatal(err)
	}
	df, err := mcorr.NewDiscoveryFleet(ds.Slice(timeseries.MonitoringStart, day1),
		manager.Config{Model: core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 12}}},
		mcorr.DiscoveryConfig{Budget: n}, 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := benchDayRows(ds, day1)
	for pass := 0; pass < 4; pass++ {
		grown := 0
		for _, row := range rows {
			grown += df.Step(row).GrownPairs
		}
		if grown == 0 {
			break
		}
	}
	df.DrainDiscoveryEvents()
	return df, rows
}

// BenchmarkManagerStepBudget is the pair-budget acceptance benchmark:
// one synchronized row through a warmed l=48 fleet modeling only 25% of
// the 1128-pair graph (sketch maintenance for the admitted pairs and the
// probe batch included). Compare against BenchmarkManagerStep/l=48 —
// the budget must buy at least the 3x step speedup that justifies it.
func BenchmarkManagerStepBudget(b *testing.B) {
	b.Run("l=48/budget=25%", func(b *testing.B) {
		df, rows := benchBudgetFleet(b, 8, "25%")
		defer df.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			df.Step(rows[i%len(rows)])
		}
	})
}

// benchDiscoverRows builds synthetic correlated rows for a fleet of l
// series without the simulator (which would dominate setup at l=1024):
// a shared latent driver plus a per-series deterministic LCG wobble.
func benchDiscoverRows(l, n int) ([]timeseries.MeasurementID, []manager.Row) {
	ids := make([]timeseries.MeasurementID, l)
	for i := range ids {
		ids[i] = timeseries.MeasurementID{
			Machine: fmt.Sprintf("m%03d", i/6),
			Metric:  fmt.Sprintf("c%d", i%6),
		}
	}
	state := uint64(1)
	lcg := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	start := timeseries.MonitoringStart
	rows := make([]manager.Row, n)
	for k := range rows {
		latent := math.Sin(float64(k) / 7)
		vals := make(map[timeseries.MeasurementID]float64, l)
		for i, id := range ids {
			vals[id] = latent*float64(1+i%5) + 0.3*lcg()
		}
		rows[k] = manager.Row{Time: start.Add(time.Duration(k) * timeseries.SampleStep), Values: vals}
	}
	return ids, rows
}

// BenchmarkDiscoverStep isolates the discovery tier's per-row cost —
// ingest into the history rings, sketch updates for admitted + probed
// pairs, and the amortized round policy — at growing fleet sizes under a
// 10% pair budget. This is the O(l + admitted + probe) bound the tier
// promises, versus the O(l^2) full graph it replaces.
func BenchmarkDiscoverStep(b *testing.B) {
	for _, l := range []int{48, 256, 1024} {
		l := l
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			ids, rows := benchDiscoverRows(l, 128)
			budget, err := mcorr.ParsePairBudget("10%", l)
			if err != nil {
				b.Fatal(err)
			}
			d, err := discover.New(ids, discover.Config{Budget: budget})
			if err != nil {
				b.Fatal(err)
			}
			d.Bootstrap(rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Observe(rows[i%len(rows)])
			}
		})
	}
}
