package mcorr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/tsdb"
)

// Query-surface limits. The correlate endpoint is an interactive ops
// tool, not a batch engine, so windows and fan-out are bounded.
const (
	// maxCorrelateBody caps the correlate request body.
	maxCorrelateBody = 1 << 20
	// maxCorrelateCandidates caps the explicit candidate list.
	maxCorrelateCandidates = 256
	// maxCorrelateLag caps |lag| in steps.
	maxCorrelateLag = 64
	// maxWindowRows caps the window length in grid rows.
	maxWindowRows = 100000
	// defaultLagSpan is the lag range scanned when the request names none.
	defaultLagSpan = 4
	// minCorrelateSamples is the overlap below which a lag's correlation
	// is undefined and skipped.
	minCorrelateSamples = 3
)

// TenantAPI is the registry-level HTTP query surface, mounted under
// /api/v1/ on every ops server:
//
//	GET  /api/v1/tenants       the open tenants with footprint + quotas
//	POST /api/v1/correlate     windowed lagged correlation against the
//	                           tenant's time-series store
//	GET  /api/v1/incidents     dispatched to the tenant named by
//	GET  /api/v1/incidents/{id}  ?tenant= (default "default")
//	GET  /api/v1/fitness
//	GET  /api/v1/topology
//
// Errors use the shared obs.APIError envelope.
type TenantAPI struct {
	reg *Registry
}

// NewTenantAPI builds the HTTP surface over a tenant registry.
// NewTenantRegistry mounts it automatically; construct one directly only
// to serve a registry on a mux of your own.
func NewTenantAPI(reg *Registry) *TenantAPI {
	obs.RegisterRoute("GET", "/api/v1/tenants")
	obs.RegisterRoute("POST", "/api/v1/correlate")
	return &TenantAPI{reg: reg}
}

// ServeHTTP implements http.Handler.
func (a *TenantAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/api/v1/")
	switch {
	case path == "tenants":
		a.serveTenants(w, r)
	case path == "correlate":
		a.serveCorrelate(w, r)
	case path == "incidents" || strings.HasPrefix(path, "incidents/") ||
		path == "fitness" || path == "topology":
		// Tenant-scoped endpoints: resolve ?tenant= and delegate to the
		// tenant's own diagnosis/topology API.
		name := r.URL.Query().Get("tenant")
		if name == "" {
			name = DefaultTenant
		}
		t, ok := a.reg.Tenant(name)
		if !ok {
			obs.WriteJSONError(w, http.StatusNotFound, "unknown_tenant",
				"unknown tenant "+name)
			return
		}
		t.api.ServeHTTP(w, r)
	default:
		obs.WriteJSONError(w, http.StatusNotFound, "not_found",
			"unknown endpoint; see /api/v1/tenants /api/v1/correlate /api/v1/incidents /api/v1/fitness /api/v1/topology")
	}
}

func writeAPIJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError carries an HTTP status and envelope code out of the
// correlate pipeline so the handler can map failures faithfully.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// invalidWindow builds the invalid_window envelope for degenerate query
// windows — zero-length ranges, ranges that round to zero grid rows, or
// trailing windows against a tenant that has no scoring grid yet. These
// used to surface as generic bad_request (or, for some shapes, an empty
// 200); the dedicated code lets clients distinguish "fix your window"
// from "fix your JSON".
func invalidWindow(msg string) *httpError {
	return &httpError{http.StatusBadRequest, "invalid_window", msg}
}

func writeHTTPError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		obs.WriteJSONError(w, he.status, he.code, he.msg)
		return
	}
	obs.WriteJSONError(w, http.StatusInternalServerError, "internal", err.Error())
}

// tenantInfo is one row of the /api/v1/tenants payload.
type tenantInfo struct {
	Name         string `json:"name"`
	Durable      bool   `json:"durable"`
	Measurements int    `json:"measurements"`
	Pairs        int    `json:"pairs"`
	Steps        int    `json:"steps"`
	// OpenIncidents is present only for tenants with a diagnosis engine.
	OpenIncidents *int        `json:"open_incidents,omitempty"`
	Quota         TenantQuota `json:"quota"`
}

// tenantsResponse is the /api/v1/tenants payload.
type tenantsResponse struct {
	Total   int          `json:"total"`
	Tenants []tenantInfo `json:"tenants"`
}

func (a *TenantAPI) serveTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		obs.WriteJSONError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"use GET for /api/v1/tenants")
		return
	}
	tenants := a.reg.Tenants()
	infos := make([]tenantInfo, len(tenants))
	for i, t := range tenants {
		fleet := t.mon.Fleet()
		info := tenantInfo{
			Name:         t.name,
			Durable:      t.dur != nil,
			Measurements: len(fleet.IDs()),
			Pairs:        len(fleet.Pairs()),
			Steps:        fleet.Steps(),
			Quota:        t.quota,
		}
		if diag := t.mon.Diagnosis(); diag != nil {
			n := diag.OpenCount()
			info.OpenIncidents = &n
		}
		infos[i] = info
	}
	writeAPIJSON(w, tenantsResponse{Total: len(infos), Tenants: infos})
}

// correlateWindow selects the query window: either an explicit
// [start, end) range (RFC 3339) or the trailing `last` grid rows before
// the tenant's scoring cursor. Exactly one form must be used.
type correlateWindow struct {
	Start string `json:"start,omitempty"`
	End   string `json:"end,omitempty"`
	Last  int    `json:"last,omitempty"`
}

// correlateLags is the inclusive lag range scanned, in grid steps.
type correlateLags struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// correlateRequest is the POST /api/v1/correlate body.
type correlateRequest struct {
	Tenant     string          `json:"tenant,omitempty"`
	Anchor     string          `json:"anchor"`
	Candidates []string        `json:"candidates,omitempty"`
	Window     correlateWindow `json:"window"`
	Lags       *correlateLags  `json:"lags,omitempty"`
}

// correlateQuery is a validated correlate request.
type correlateQuery struct {
	tenant     string
	anchor     string
	candidates []string
	start, end time.Time // zero when the last-form window was used
	last       int       // > 0 iff the last-form window was used
	minLag     int
	maxLag     int
}

// parseCorrelateRequest validates a correlate body without touching any
// tenant state (it is the fuzz target for the endpoint). The returned
// query has tenant defaulted, candidates deduplicated in request order,
// and a non-empty lag range within [-maxCorrelateLag, maxCorrelateLag].
func parseCorrelateRequest(data []byte) (correlateQuery, error) {
	var req correlateRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return correlateQuery{}, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return correlateQuery{}, errors.New("trailing data after JSON body")
	}
	q := correlateQuery{tenant: req.Tenant, anchor: req.Anchor}
	if q.tenant == "" {
		q.tenant = DefaultTenant
	}
	if q.anchor == "" {
		return correlateQuery{}, errors.New("anchor is required (\"metric@machine\")")
	}
	if len(req.Candidates) > maxCorrelateCandidates {
		return correlateQuery{}, fmt.Errorf("%d candidates; max %d", len(req.Candidates), maxCorrelateCandidates)
	}
	seen := make(map[string]bool, len(req.Candidates))
	for _, c := range req.Candidates {
		if c == "" {
			return correlateQuery{}, errors.New("empty candidate name")
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		q.candidates = append(q.candidates, c)
	}

	w := req.Window
	switch {
	case w.Last != 0 && (w.Start != "" || w.End != ""):
		return correlateQuery{}, errors.New("window: use either {start,end} or {last}, not both")
	case w.Last != 0:
		if w.Last < 0 || w.Last > maxWindowRows {
			return correlateQuery{}, fmt.Errorf("window.last must be in [1, %d]", maxWindowRows)
		}
		q.last = w.Last
	case w.Start != "" || w.End != "":
		if w.Start == "" || w.End == "" {
			return correlateQuery{}, errors.New("window: start and end are both required")
		}
		start, err := time.Parse(time.RFC3339, w.Start)
		if err != nil {
			return correlateQuery{}, fmt.Errorf("window.start: %w", err)
		}
		end, err := time.Parse(time.RFC3339, w.End)
		if err != nil {
			return correlateQuery{}, fmt.Errorf("window.end: %w", err)
		}
		if start.Equal(end) {
			return correlateQuery{}, invalidWindow("window: start == end selects zero rows")
		}
		if !start.Before(end) {
			return correlateQuery{}, invalidWindow("window: start must be before end")
		}
		q.start, q.end = start, end
	default:
		return correlateQuery{}, errors.New("window is required: {\"last\": n} or {\"start\": ..., \"end\": ...}")
	}

	q.minLag, q.maxLag = -defaultLagSpan, defaultLagSpan
	if req.Lags != nil {
		if req.Lags.Min > req.Lags.Max {
			return correlateQuery{}, errors.New("lags: min must be <= max")
		}
		if req.Lags.Min < -maxCorrelateLag || req.Lags.Max > maxCorrelateLag {
			return correlateQuery{}, fmt.Errorf("lags must be within [%d, %d]", -maxCorrelateLag, maxCorrelateLag)
		}
		q.minLag, q.maxLag = req.Lags.Min, req.Lags.Max
	}
	return q, nil
}

func (a *TenantAPI) serveCorrelate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		obs.WriteJSONError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"use POST for /api/v1/correlate")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCorrelateBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			obs.WriteJSONError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxCorrelateBody))
			return
		}
		obs.WriteJSONError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	q, err := parseCorrelateRequest(body)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) {
			obs.WriteJSONError(w, he.status, he.code, he.msg)
			return
		}
		obs.WriteJSONError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	t, ok := a.reg.Tenant(q.tenant)
	if !ok {
		obs.WriteJSONError(w, http.StatusNotFound, "unknown_tenant", "unknown tenant "+q.tenant)
		return
	}
	resp, err := t.Correlate(q)
	if err != nil {
		writeHTTPError(w, err)
		return
	}
	writeAPIJSON(w, resp)
}

// correlateResult is one ranked candidate in the correlate response.
type correlateResult struct {
	Measurement string `json:"measurement"`
	// Correlation is the lagged Pearson coefficient at the detected lag
	// (0 when Samples is 0 — no lag had enough overlap or variance).
	Correlation float64 `json:"correlation"`
	// Lag is the detected lag in grid steps: positive means the candidate
	// trails the anchor by that many steps.
	Lag int `json:"lag"`
	// Samples is the overlap count behind Correlation.
	Samples int `json:"samples"`
	// Fitness is the candidate's running mean Q^a, when the fleet has
	// scored it.
	Fitness *float64 `json:"fitness,omitempty"`
	// Admission is the discovery tier's correlation estimate for the
	// (anchor, candidate) pair, when a discovery tier admitted it.
	Admission *float64 `json:"admission,omitempty"`
}

// correlateDiscovery summarizes the discovery tier in the engine block.
type correlateDiscovery struct {
	Admitted   int `json:"admitted"`
	Budget     int `json:"budget"` // 0 = unlimited
	Candidates int `json:"candidates"`
}

// correlateEngine is the engine metadata block of the correlate response.
type correlateEngine struct {
	Tenant       string              `json:"tenant"`
	Steps        int                 `json:"steps"`
	Shards       int                 `json:"shards"`
	Pairs        int                 `json:"pairs"`
	Measurements int                 `json:"measurements"`
	StepSeconds  float64             `json:"step_seconds"`
	Discovery    *correlateDiscovery `json:"discovery,omitempty"`
}

// correlateResponseWindow echoes the resolved window.
type correlateResponseWindow struct {
	Start string `json:"start"`
	End   string `json:"end"`
	Rows  int    `json:"rows"`
}

// correlateResponse is the POST /api/v1/correlate payload.
type correlateResponse struct {
	Anchor  string                  `json:"anchor"`
	Window  correlateResponseWindow `json:"window"`
	Lags    correlateLags           `json:"lags"`
	Results []correlateResult       `json:"results"`
	Engine  correlateEngine         `json:"engine"`
}

// Correlate runs a validated windowed-correlation query against the
// tenant's store and fleet: the anchor series is compared to every
// candidate over the window at each lag in the range, and candidates are
// ranked by |correlation| at their best lag. Failures are *httpError
// values carrying the API status and code.
func (t *Tenant) Correlate(q correlateQuery) (*correlateResponse, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, &httpError{http.StatusNotFound, "unknown_tenant", "tenant " + t.name + " closed"}
	}
	step := t.mon.step
	cursor := t.mon.cursor
	t.mu.Unlock()

	// Resolve the window onto the store grid.
	if step <= 0 {
		return nil, invalidWindow("tenant has no scoring grid yet; no window can be resolved")
	}
	start, end := q.start, q.end
	rows := q.last
	if q.last > 0 {
		if cursor.IsZero() || t.mon.Fleet().Steps() == 0 {
			// No row ever scored: the trailing window ends at a cursor
			// that nothing has streamed up to, so it rounds to zero
			// samples instead of a real [start, end) range.
			return nil, invalidWindow(fmt.Sprintf("window.last=%d rounds to zero samples: tenant has scored no rows yet", q.last))
		}
		end = cursor
		start = end.Add(-time.Duration(q.last) * step)
	} else {
		rows = int(end.Sub(start) / step)
		if time.Duration(rows)*step < end.Sub(start) {
			rows++
		}
		if rows > maxWindowRows {
			return nil, &httpError{http.StatusBadRequest, "bad_request",
				fmt.Sprintf("window spans %d rows at step %s; max %d", rows, step, maxWindowRows)}
		}
	}
	if rows <= 0 {
		return nil, invalidWindow("window rounds to zero grid rows")
	}

	// Resolve measurement names against the fleet's trained set plus
	// anything streamed into the store since.
	known := make(map[string]MeasurementID, len(t.mon.ids))
	for _, id := range t.mon.ids {
		known[id.String()] = id
	}
	for _, id := range t.mon.store.IDs() {
		known[id.String()] = id
	}
	anchorID, ok := known[q.anchor]
	if !ok {
		return nil, &httpError{http.StatusNotFound, "unknown_measurement", "unknown measurement " + q.anchor}
	}
	candidates := q.candidates
	if len(candidates) == 0 {
		// Default: every fleet measurement except the anchor, in the
		// fleet's canonical order.
		for _, id := range t.mon.ids {
			if id != anchorID {
				candidates = append(candidates, id.String())
			}
		}
	}
	candIDs := make([]MeasurementID, len(candidates))
	for i, name := range candidates {
		id, ok := known[name]
		if !ok {
			return nil, &httpError{http.StatusNotFound, "unknown_measurement", "unknown measurement " + name}
		}
		candIDs[i] = id
	}

	anchorVals, err := gridValues(t.mon.store, anchorID, start, rows, step)
	if err != nil {
		return nil, err
	}

	fleet := t.mon.Fleet()
	means := fleet.MeasurementMeans()
	var admission map[Pair]float64
	var disc *correlateDiscovery
	if df := t.mon.Discovery(); df != nil {
		admission = df.AdmissionScores()
		admitted, budget, cands := df.BudgetInfo()
		disc = &correlateDiscovery{Admitted: admitted, Budget: budget, Candidates: cands}
	}

	results := make([]correlateResult, len(candIDs))
	for i, id := range candIDs {
		vals, err := gridValues(t.mon.store, id, start, rows, step)
		if err != nil {
			return nil, err
		}
		r, lag, n := bestLagCorrelation(anchorVals, vals, q.minLag, q.maxLag)
		res := correlateResult{Measurement: id.String(), Correlation: r, Lag: lag, Samples: n}
		if m, ok := means[id]; ok {
			mv := m
			res.Fitness = &mv
		}
		if s, ok := admission[manager.MakePair(anchorID, id)]; ok {
			sv := s
			res.Admission = &sv
		}
		results[i] = res
	}
	// Rank by |correlation|, strongest first; undefined (zero-sample)
	// results sink to the bottom; ties break by name for determinism.
	sort.SliceStable(results, func(i, j int) bool {
		if (results[i].Samples == 0) != (results[j].Samples == 0) {
			return results[j].Samples == 0
		}
		ai, aj := math.Abs(results[i].Correlation), math.Abs(results[j].Correlation)
		if ai != aj {
			return ai > aj
		}
		return results[i].Measurement < results[j].Measurement
	})

	return &correlateResponse{
		Anchor: q.anchor,
		Window: correlateResponseWindow{
			Start: start.UTC().Format(time.RFC3339),
			End:   end.UTC().Format(time.RFC3339),
			Rows:  rows,
		},
		Lags:    correlateLags{Min: q.minLag, Max: q.maxLag},
		Results: results,
		Engine: correlateEngine{
			Tenant:       t.name,
			Steps:        fleet.Steps(),
			Shards:       t.mon.Shards(),
			Pairs:        len(fleet.Pairs()),
			Measurements: len(fleet.IDs()),
			StepSeconds:  step.Seconds(),
			Discovery:    disc,
		},
	}, nil
}

// gridValues reads one measurement's window as a dense grid array of
// length rows starting at start, NaN where the store has no sample.
func gridValues(store *Store, id MeasurementID, start time.Time, rows int, step time.Duration) ([]float64, error) {
	end := start.Add(time.Duration(rows) * step)
	s, err := store.Query(id, start, end)
	if err != nil {
		if errors.Is(err, tsdb.ErrUnknownMeasurement) {
			return nil, &httpError{http.StatusNotFound, "unknown_measurement", "unknown measurement " + id.String()}
		}
		return nil, err
	}
	vals := make([]float64, rows)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for i := 0; i < s.Len(); i++ {
		idx := int(s.TimeAt(i).Sub(start) / step)
		if idx >= 0 && idx < rows {
			vals[idx] = s.Values[i]
		}
	}
	return vals, nil
}

// bestLagCorrelation scans lags in the inclusive range and returns the
// Pearson coefficient at the best lag, the lag, and the overlap count.
// The candidate y is compared against the anchor x over pairs
// (x[i], y[i+lag]), so a positive lag means y trails x. Lags are scanned
// outward from zero (0, +1, -1, +2, -2, ...) and a lag wins only with a
// strictly larger |r|, so the smallest-magnitude lag is detected on ties
// — deterministically. Lags with fewer than minCorrelateSamples
// NaN-free overlapping pairs, or with zero variance on either side, are
// skipped; (0, 0, 0) is returned when every lag is skipped.
func bestLagCorrelation(x, y []float64, minLag, maxLag int) (r float64, lag int, samples int) {
	span := maxLag
	if -minLag > span {
		span = -minLag
	}
	found := false
	for d := 0; d <= span; d++ {
		for _, l := range []int{d, -d} {
			if l < minLag || l > maxLag || (l == 0 && d != 0) {
				continue
			}
			c, n, ok := laggedPearson(x, y, l)
			if !ok {
				continue
			}
			if !found || math.Abs(c) > math.Abs(r) {
				r, lag, samples = c, l, n
				found = true
			}
			if d == 0 {
				break // +0 and -0 are the same lag
			}
		}
	}
	if !found {
		return 0, 0, 0
	}
	return r, lag, samples
}

// laggedPearson computes the Pearson coefficient over pairs
// (x[i], y[i+lag]) where both sides are NaN-free, reporting the overlap
// count and whether the coefficient is defined (enough overlap, nonzero
// variance on both sides).
func laggedPearson(x, y []float64, lag int) (r float64, n int, ok bool) {
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		j := i + lag
		if j < 0 || j >= len(y) {
			continue
		}
		a, b := x[i], y[j]
		if math.IsNaN(a) || math.IsNaN(b) {
			continue
		}
		n++
		sx += a
		sy += b
		sxx += a * a
		syy += b * b
		sxy += a * b
	}
	if n < minCorrelateSamples {
		return 0, n, false
	}
	fn := float64(n)
	cov := sxy - sx*sy/fn
	vx := sxx - sx*sx/fn
	vy := syy - sy*sy/fn
	if vx <= 0 || vy <= 0 {
		return 0, n, false
	}
	return cov / math.Sqrt(vx*vy), n, true
}
