package mcorr_test

import (
	"testing"
	"time"

	"mcorr"
	"mcorr/internal/eval"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// TestDiagnosisBlamesInjectedFault is the incident-layer acceptance test:
// for several simulator fault kinds, train a monitor on clean days, run
// the faulty day through it with diagnosis attached, and require the
// incident digest's top root-cause candidate to sit on the machine the
// fault was injected into.
func TestDiagnosisBlamesInjectedFault(t *testing.T) {
	start := timeseries.MonitoringStart
	trainEnd := start.AddDate(0, 0, 2)
	const faultyIdx = 2
	scenarios := []struct {
		name string
		kind simulator.FaultKind
	}{
		{"flapping", simulator.FaultFlapping},
		{"decoupled-spike", simulator.FaultDecoupledSpike},
		{"correlation-break", simulator.FaultCorrelationBreak},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			machine := simulator.MachineName("D", faultyIdx)
			fault := simulator.Fault{
				ID: "e2e-" + sc.name, Machine: machine, Kind: sc.kind,
				Start: trainEnd.Add(6 * time.Hour), End: trainEnd.Add(9 * time.Hour),
			}
			ds, _, err := simulator.Generate(simulator.GroupConfig{
				Name: "D", Machines: 4, Days: 3, Seed: 11,
				Faults: []simulator.Fault{fault},
			})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			// The mcdetect pipeline's selection step: keep the measurements
			// with real signal, drop near-constant metrics whose models
			// never stabilize.
			selected := eval.SelectMeasurements(ds, start, trainEnd, eval.SelectionCriteria{Max: 16, MinCV: 0.01})
			if len(selected) < 2 {
				t.Fatalf("variance filter kept %d measurements", len(selected))
			}
			watched := eval.Subset(ds, selected)
			// Adaptive models keep the healthy baseline calibrated across days
			// (system Q stays >0.9 away from the fault), but they also absorb
			// a fault within a couple of rows — so open on the first
			// below-threshold row instead of debouncing.
			mon, err := mcorr.NewMonitor(watched.Slice(start, trainEnd),
				mcorr.ManagerConfig{Model: mcorr.ModelConfig{Adaptive: true, Grid: mcorr.GridConfig{MaxIntervals: 12}}},
				mcorr.WithDiagnosis(mcorr.DiagnosisConfig{OpenAfter: 1}))
			if err != nil {
				t.Fatalf("NewMonitor: %v", err)
			}
			defer mon.Fleet().Close()
			diag := mon.Diagnosis()
			if diag == nil {
				t.Fatal("Diagnosis() = nil despite WithDiagnosis")
			}

			// Stream the faulty day up to an hour past the fault window.
			end := fault.End.Add(time.Hour)
			for tm := trainEnd; tm.Before(end); tm = tm.Add(timeseries.SampleStep) {
				var batch []mcorr.Sample
				for _, id := range selected {
					s := watched.Get(id)
					if i, ok := s.IndexOf(tm); ok {
						batch = append(batch, mcorr.Sample{ID: id, Time: tm, Value: s.Values[i]})
					}
				}
				if _, err := mon.Ingest(batch...); err != nil {
					t.Fatalf("Ingest at %v: %v", tm, err)
				}
			}

			incs := diag.Incidents()
			if len(incs) == 0 {
				t.Fatalf("no incident opened for %s on %s", sc.kind, machine)
			}
			// Judge the incident that covers the fault window (warm-up may
			// produce an unrelated earlier one).
			var best *mcorr.IncidentDigest
			for i := range incs {
				d := &incs[i]
				if d.ImpactTime.Before(fault.End) && !d.ImpactTime.Before(fault.Start.Add(-time.Hour)) {
					if best == nil || d.Broken > best.Broken {
						best = d
					}
				}
			}
			if best == nil {
				t.Fatalf("no incident with impact near the fault window %v..%v; got %+v",
					fault.Start, fault.End, incs)
			}
			if len(best.Candidates) == 0 {
				t.Fatalf("incident %s has no candidates: %+v", best.ID, best)
			}
			if got := best.Candidates[0].Machine; got != machine {
				t.Errorf("top candidate on %s, want injected machine %s\ncandidates: %+v",
					got, machine, best.Candidates)
			}
			if best.Suspect != machine {
				t.Errorf("Suspect = %s, want %s", best.Suspect, machine)
			}
			if best.Severity == "" || len(best.Rings) == 0 || len(best.Chain) == 0 {
				t.Errorf("digest incomplete: severity=%q rings=%d chain=%d",
					best.Severity, len(best.Rings), len(best.Chain))
			}
		})
	}
}
