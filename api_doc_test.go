package mcorr

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"mcorr/internal/obs"
)

// TestAPIDocCoverage is the API reference gate: every endpoint the
// process can answer — the static ops surface, the diagnosis API and
// the multi-tenant serving tier — must be documented in API.md as a
// backticked `METHOD pattern`. Adding a route without documenting it
// fails this test; so does documenting a route that no longer exists.
func TestAPIDocCoverage(t *testing.T) {
	// Touch every handler constructor so the full route table registers,
	// exactly as a serving process would.
	obs.NewOpsMux(obs.Default(), nil)
	NewTenantAPI(nil)
	wireDiagnosis(nil, nil)

	routes := obs.Routes()
	if len(routes) < 13 {
		t.Fatalf("route table has only %d entries; registration is incomplete: %v", len(routes), routes)
	}
	doc, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatalf("reading API.md: %v", err)
	}
	text := string(doc)
	for _, r := range routes {
		needle := fmt.Sprintf("`%s %s`", r.Method, r.Pattern)
		if !strings.Contains(text, needle) {
			t.Errorf("API.md does not document %s — add a section containing %s", needle, needle)
		}
	}

	// The reverse direction: every documented route heading must still be
	// registered, so the reference cannot drift ahead of the code.
	known := make(map[string]bool, len(routes))
	for _, r := range routes {
		known[r.Method+" "+r.Pattern] = true
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "### `") {
			continue
		}
		entry := strings.TrimPrefix(line, "### `")
		entry, _, ok := strings.Cut(entry, "`")
		if !ok || !known[entry] {
			t.Errorf("API.md documents %q but no such route is registered", entry)
		}
	}
}
