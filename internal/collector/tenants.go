package collector

import (
	"errors"
	"net"
	"sync"
	"time"

	"mcorr/internal/obs"
)

// TenantRouter routes collector traffic to per-tenant sinks. The server
// resolves the tenant an agent names in its hello frame ("" for the
// legacy hello with no tenant field) once per connection; every batch
// the connection delivers is appended to that tenant's sink and counted
// against that tenant's rate limit.
//
// mcorr's tenant Registry satisfies this interface; tests supply small
// fakes.
type TenantRouter interface {
	// SinkFor resolves a wire tenant name (possibly "") to the canonical
	// tenant name and its sink. An error refuses the connection.
	SinkFor(tenant string) (name string, sink Sink, err error)
	// TenantLimit returns a tenant's ingest rate limit in samples per
	// second and its token-bucket burst in samples. Rate 0 disables the
	// limit; burst 0 picks max(rate, MaxBatch).
	TenantLimit(name string) (rate float64, burst int)
}

// NewTenantServer returns a server that routes every connection's
// batches through the router instead of a single fixed sink. logger may
// be nil to discard diagnostics.
func NewTenantServer(router TenantRouter, logger *obs.Logger) (*Server, error) {
	if router == nil {
		return nil, errors.New("collector: nil tenant router")
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &Server{
		log:      logger.With("component", "collector"),
		conns:    make(map[net.Conn]*AgentStatus),
		readIdle: 2 * time.Minute,
	}
	s.SetTenantRouter(router)
	return s, nil
}

// SetTenantRouter installs (or replaces) the tenant router. Must be
// called before Serve. With a router installed the server's fixed sink
// (if any) is bypassed: every connection resolves its sink through the
// router at hello time, and tenant-level token buckets meter ingest per
// tenant ahead of the per-agent limit.
func (s *Server) SetTenantRouter(r TenantRouter) {
	s.router = r
	s.tlimiter = &tenantLimiter{buckets: make(map[string]*tokenBucket)}
}

// tenantLimiter applies per-tenant token-bucket rate limits. Unlike the
// per-agent limiter, the rate and burst are supplied per call (each
// tenant has its own quota, looked up from the router), so buckets for
// different tenants refill at different speeds. Cardinality is bounded
// by tenant count.
type tenantLimiter struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// forget drops a tenant's token bucket so closed tenants do not pin
// limiter state forever.
func (l *tenantLimiter) forget(tenant string) {
	l.mu.Lock()
	delete(l.buckets, tenant)
	l.mu.Unlock()
}

// ForgetTenant tears down the server-side footprint of a closed tenant:
// the tenant-labeled mcorr_flow_* series, the tenant's rate-limit
// bucket, and the per-agent mcorr_flow_* label children of every agent
// whose live connections all belong to that tenant. Without it, a
// tenant whose agents never disconnect leaks its label children forever
// — the per-agent cleanup only runs on an agent's last disconnect,
// which never comes for a long-lived idle connection.
//
// Safe to call while the agents are still connected: a surviving
// connection that keeps sending merely fails against the closed
// tenant's sink, and any series it re-creates is deleted again when the
// connection finally drops.
func (s *Server) ForgetTenant(name string) {
	s.mu.Lock()
	// An agent name may appear on connections of several tenants (shared
	// relays); only forget names whose every connection is in the closed
	// tenant.
	owned := make(map[string]bool)
	for _, st := range s.conns {
		if st.Name == "" {
			continue
		}
		if st.Tenant == name {
			if _, seen := owned[st.Name]; !seen {
				owned[st.Name] = true
			}
		} else {
			owned[st.Name] = false
		}
	}
	s.mu.Unlock()
	for agent, only := range owned {
		if !only {
			continue
		}
		obsAgentLastSeen.Delete(agent)
		obsFlowAgentRate.Delete(agent)
		if s.limiter != nil {
			s.limiter.forget(agent)
		}
		if s.meter != nil {
			s.meter.forget(agent)
		}
	}
	obsFlowTenantSamples.Delete(name)
	obsFlowTenantThrottled.Delete(name)
	if s.tlimiter != nil {
		s.tlimiter.forget(name)
	}
}

// take attempts to withdraw n tokens from the tenant's bucket at the
// given rate/burst. Semantics match limiter.take: on refusal it reports
// how long to wait and the currently available whole tokens.
func (l *tenantLimiter) take(tenant string, rate float64, burst float64, n int, now time.Time) (ok bool, wait time.Duration, credit int) {
	if burst <= 0 {
		burst = rate
		if burst < MaxBatch {
			burst = MaxBatch
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[tenant]
	if !found {
		b = &tokenBucket{tokens: burst, last: now}
		l.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * rate
			if b.tokens > burst {
				b.tokens = burst
			}
		}
		b.last = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0, int(b.tokens)
	}
	wait = time.Duration((need - b.tokens) / rate * float64(time.Second))
	return false, wait, int(b.tokens)
}
