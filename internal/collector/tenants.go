package collector

import (
	"errors"
	"net"
	"sync"
	"time"

	"mcorr/internal/obs"
)

// TenantRouter routes collector traffic to per-tenant sinks. The server
// resolves the tenant an agent names in its hello frame ("" for the
// legacy hello with no tenant field) once per connection; every batch
// the connection delivers is appended to that tenant's sink and counted
// against that tenant's rate limit.
//
// mcorr's tenant Registry satisfies this interface; tests supply small
// fakes.
type TenantRouter interface {
	// SinkFor resolves a wire tenant name (possibly "") to the canonical
	// tenant name and its sink. An error refuses the connection.
	SinkFor(tenant string) (name string, sink Sink, err error)
	// TenantLimit returns a tenant's ingest rate limit in samples per
	// second and its token-bucket burst in samples. Rate 0 disables the
	// limit; burst 0 picks max(rate, MaxBatch).
	TenantLimit(name string) (rate float64, burst int)
}

// NewTenantServer returns a server that routes every connection's
// batches through the router instead of a single fixed sink. logger may
// be nil to discard diagnostics.
func NewTenantServer(router TenantRouter, logger *obs.Logger) (*Server, error) {
	if router == nil {
		return nil, errors.New("collector: nil tenant router")
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &Server{
		log:      logger.With("component", "collector"),
		conns:    make(map[net.Conn]*AgentStatus),
		readIdle: 2 * time.Minute,
	}
	s.SetTenantRouter(router)
	return s, nil
}

// SetTenantRouter installs (or replaces) the tenant router. Must be
// called before Serve. With a router installed the server's fixed sink
// (if any) is bypassed: every connection resolves its sink through the
// router at hello time, and tenant-level token buckets meter ingest per
// tenant ahead of the per-agent limit.
func (s *Server) SetTenantRouter(r TenantRouter) {
	s.router = r
	s.tlimiter = &tenantLimiter{buckets: make(map[string]*tokenBucket)}
}

// tenantLimiter applies per-tenant token-bucket rate limits. Unlike the
// per-agent limiter, the rate and burst are supplied per call (each
// tenant has its own quota, looked up from the router), so buckets for
// different tenants refill at different speeds. Cardinality is bounded
// by tenant count.
type tenantLimiter struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// take attempts to withdraw n tokens from the tenant's bucket at the
// given rate/burst. Semantics match limiter.take: on refusal it reports
// how long to wait and the currently available whole tokens.
func (l *tenantLimiter) take(tenant string, rate float64, burst float64, n int, now time.Time) (ok bool, wait time.Duration, credit int) {
	if burst <= 0 {
		burst = rate
		if burst < MaxBatch {
			burst = MaxBatch
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[tenant]
	if !found {
		b = &tokenBucket{tokens: burst, last: now}
		l.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * rate
			if b.tokens > burst {
				b.tokens = burst
			}
		}
		b.last = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0, int(b.tokens)
	}
	wait = time.Duration((need - b.tokens) / rate * float64(time.Second))
	return false, wait, int(b.tokens)
}
