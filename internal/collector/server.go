package collector

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"mcorr/internal/obs"
	"mcorr/internal/tsdb"
)

// Sink receives decoded sample batches. tsdb.Store satisfies it.
type Sink interface {
	AppendBatch([]tsdb.Sample) error
}

var _ Sink = (*tsdb.Store)(nil)

// ServerStats is a snapshot of server counters.
type ServerStats struct {
	Connections int // currently open
	TotalConns  int
	Samples     int
	Heartbeats  int
	Errors      int
}

// AgentStatus is the server's view of one connected agent — the ops
// surface for "which machines are reporting, and how recently".
type AgentStatus struct {
	Name        string
	Remote      string
	ConnectedAt time.Time
	LastFrame   time.Time
	Samples     int
}

// Server accepts agent connections and feeds their samples into a sink.
// Construct with NewServer, start with Serve, stop with Close.
type Server struct {
	sink Sink
	log  *obs.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]*AgentStatus
	closed   bool
	stats    ServerStats
	wg       sync.WaitGroup
	readIdle time.Duration
}

// NewServer returns a server delivering to sink. logger may be nil to
// discard diagnostics; a non-nil logger keeps its destination and flags
// but records are rendered through the structured key=value logger (see
// NewServerWithLogger for full control over levels and bound fields).
func NewServer(sink Sink, logger *log.Logger) (*Server, error) {
	var ol *obs.Logger
	if logger != nil {
		ol = obs.FromStd(logger)
	}
	return NewServerWithLogger(sink, ol)
}

// NewServerWithLogger returns a server delivering to sink, logging through
// the given structured logger (nil discards diagnostics). Every record
// carries component=collector.
func NewServerWithLogger(sink Sink, logger *obs.Logger) (*Server, error) {
	if sink == nil {
		return nil, errors.New("collector: nil sink")
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	return &Server{
		sink:     sink,
		log:      logger.With("component", "collector"),
		conns:    make(map[net.Conn]*AgentStatus),
		readIdle: 2 * time.Minute,
	}, nil
}

// SetIdleTimeout changes the per-read idle timeout (default 2 minutes).
// Must be called before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.readIdle = d }

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector listen %s: %w", addr, err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close is called. It returns the
// first accept error after shutdown begins (nil for a clean close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("collector: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("collector accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		now := time.Now()
		s.conns[conn] = &AgentStatus{
			Remote:      conn.RemoteAddr().String(),
			ConnectedAt: now,
			LastFrame:   now,
		}
		s.stats.Connections++
		s.stats.TotalConns++
		s.mu.Unlock()
		obsConnections.Inc()
		obsConnsTotal.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle runs one agent connection to completion.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.stats.Connections--
		s.mu.Unlock()
		obsConnections.Dec()
	}()
	agent := conn.RemoteAddr().String()
	for {
		if s.readIdle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readIdle))
		}
		f, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.countError()
				obsReadErrors.Inc()
				s.log.Error("read failed", "agent", agent, "err", err)
			}
			return
		}
		obsFrames.Inc()
		s.touch(conn, "", 0)
		switch f.Type {
		case MsgHello:
			agent = string(f.Payload)
			s.touch(conn, agent, 0)
			s.log.Info("hello", "agent", agent)
		case MsgHeartbeat:
			if _, err := DecodeHeartbeat(f.Payload); err != nil {
				s.countError()
				obsDecodeErrors.Inc()
				s.log.Error("bad heartbeat", "agent", agent, "err", err)
				return
			}
			s.mu.Lock()
			s.stats.Heartbeats++
			s.mu.Unlock()
			obsHeartbeats.Inc()
		case MsgSamples:
			batch, err := DecodeSamples(f.Payload)
			if err != nil {
				s.countError()
				obsDecodeErrors.Inc()
				s.log.Error("bad samples", "agent", agent, "err", err)
				return
			}
			appendStart := time.Now()
			err = s.sink.AppendBatch(batch)
			obsAppendSeconds.Observe(time.Since(appendStart).Seconds())
			stored := len(batch)
			if err != nil {
				// Sink errors (e.g. stale samples) are reported but do not
				// kill the connection. The ack carries the stored prefix —
				// 0 for an opaque failure, PartialAppendError.Stored when
				// the sink applied the leading samples — so the agent can
				// resume from the right offset instead of re-sending data
				// the store has already accepted (and WAL-logged).
				stored = 0
				var pe *tsdb.PartialAppendError
				if errors.As(err, &pe) {
					stored = pe.Stored
				}
				s.countError()
				obsSinkErrors.Inc()
				s.log.Error("sink append failed", "agent", agent, "batch", len(batch), "stored", stored, "err", err)
			}
			if stored > 0 {
				s.mu.Lock()
				s.stats.Samples += stored
				s.mu.Unlock()
				obsSamples.Add(uint64(stored))
				s.touch(conn, "", stored)
			}
			if err := WriteFrame(conn, Frame{Type: MsgAck, Payload: EncodeAck(stored)}); err != nil {
				s.countError()
				return
			}
		case MsgBye:
			s.log.Info("bye", "agent", agent)
			return
		default:
			s.countError()
			s.log.Warn("unexpected frame", "agent", agent, "type", f.Type.String())
			return
		}
	}
}

// touch updates a connection's liveness record.
func (s *Server) touch(conn net.Conn, name string, samples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.conns[conn]
	if !ok {
		return
	}
	st.LastFrame = time.Now()
	if name != "" {
		st.Name = name
	}
	st.Samples += samples
	if st.Name != "" {
		obsAgentLastSeen.With(st.Name).Set(float64(st.LastFrame.UnixNano()) / 1e9)
	}
}

// AgentStatuses snapshots the currently connected agents, sorted by name
// then remote address.
func (s *Server) AgentStatuses() []AgentStatus {
	s.mu.Lock()
	out := make([]AgentStatus, 0, len(s.conns))
	for _, st := range s.conns {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

func (s *Server) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
