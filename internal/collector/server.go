package collector

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"mcorr/internal/obs"
	"mcorr/internal/tsdb"
)

// Sink receives decoded sample batches. tsdb.Store satisfies it.
type Sink interface {
	AppendBatch([]tsdb.Sample) error
}

var _ Sink = (*tsdb.Store)(nil)

// ServerStats is a snapshot of server counters.
type ServerStats struct {
	Connections int // currently open
	TotalConns  int
	Samples     int
	Heartbeats  int
	Errors      int
	Shed        int // batches dropped or rejected by the admission queue
	Throttled   int // batches refused by the per-agent rate limit
}

// AgentStatus is the server's view of one connected agent — the ops
// surface for "which machines are reporting, and how recently".
type AgentStatus struct {
	Name   string
	Remote string
	// Tenant is the resolved tenant owning this connection's batches
	// ("" on a single-sink server, or before the hello resolves one).
	Tenant      string
	ConnectedAt time.Time
	LastFrame   time.Time
	Samples     int
}

// Server accepts agent connections and feeds their samples into a sink.
// Construct with NewServer, configure flow control with SetFlow, start
// with Serve, stop with Close.
type Server struct {
	sink Sink
	log  *obs.Logger

	router   TenantRouter   // nil = single-sink server
	tlimiter *tenantLimiter // nil unless a router is installed

	flow    FlowConfig
	limiter *limiter   // nil when rate limiting is off
	meter   *rateMeter // nil when flow control is fully off
	queue   chan *appendJob
	drained chan struct{} // closed when the drainer has exited

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]*AgentStatus
	closed   bool
	stats    ServerStats
	wg       sync.WaitGroup
	readIdle time.Duration
}

// NewServer returns a server delivering to sink. logger may be nil to
// discard diagnostics; a non-nil logger keeps its destination and flags
// but records are rendered through the structured key=value logger (see
// NewServerWithLogger for full control over levels and bound fields).
func NewServer(sink Sink, logger *log.Logger) (*Server, error) {
	var ol *obs.Logger
	if logger != nil {
		ol = obs.FromStd(logger)
	}
	return NewServerWithLogger(sink, ol)
}

// NewServerWithLogger returns a server delivering to sink, logging through
// the given structured logger (nil discards diagnostics). Every record
// carries component=collector.
func NewServerWithLogger(sink Sink, logger *obs.Logger) (*Server, error) {
	if sink == nil {
		return nil, errors.New("collector: nil sink")
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	return &Server{
		sink:     sink,
		log:      logger.With("component", "collector"),
		conns:    make(map[net.Conn]*AgentStatus),
		readIdle: 2 * time.Minute,
	}, nil
}

// SetIdleTimeout changes the per-read idle timeout (default 2 minutes).
// Must be called before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.readIdle = d }

// SetFlow installs the flow-control layer: a bounded admission queue in
// front of the sink with the configured shed policy, per-agent
// token-bucket rate limits, ack write deadlines, and throttle hints on
// overloaded acks. Must be called before Serve. The zero FlowConfig
// restores the inline, unprotected path.
func (s *Server) SetFlow(cfg FlowConfig) {
	s.flow = cfg.withDefaults()
	if s.flow.AgentRate > 0 {
		s.limiter = newLimiter(s.flow.AgentRate, s.flow.AgentBurst)
	} else {
		s.limiter = nil
	}
	s.meter = newRateMeter()
	if s.flow.QueueDepth > 0 {
		s.queue = make(chan *appendJob, s.flow.QueueDepth)
		obsFlowQueueLimit.Set(float64(s.flow.QueueDepth))
	} else {
		s.queue = nil
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts serving in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector listen %s: %w", addr, err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close is called. It returns the
// first accept error after shutdown begins (nil for a clean close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("collector: server closed")
	}
	s.ln = ln
	if s.queue != nil && s.drained == nil {
		s.drained = make(chan struct{})
		go s.drain()
	}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("collector accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		now := time.Now()
		s.conns[conn] = &AgentStatus{
			Remote:      conn.RemoteAddr().String(),
			ConnectedAt: now,
			LastFrame:   now,
		}
		s.stats.Connections++
		s.stats.TotalConns++
		s.mu.Unlock()
		obsConnections.Inc()
		obsConnsTotal.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// drain is the admission-queue consumer: a single goroutine applying
// queued batches to the sink in FIFO order and replying to the handler
// waiting on each job. It exits when the queue is closed (after every
// handler has returned), having answered every queued job.
func (s *Server) drain() {
	defer close(s.drained)
	for job := range s.queue {
		obsFlowQueueDepth.Set(float64(len(s.queue)))
		appendStart := time.Now()
		err := job.sink.AppendBatch(job.batch)
		obsAppendSeconds.Observe(time.Since(appendStart).Seconds())
		job.reply <- appendResult{stored: storedOf(len(job.batch), err), err: err}
	}
	obsFlowQueueDepth.Set(0)
}

// storedOf converts a sink verdict into the acked sample count: the whole
// batch on success, the applied prefix on a partial append, zero on an
// opaque failure.
func storedOf(batchLen int, err error) int {
	if err == nil {
		return batchLen
	}
	var pe *tsdb.PartialAppendError
	if errors.As(err, &pe) {
		return pe.Stored
	}
	return 0
}

// admit routes one decoded batch to the sink, through the admission queue
// when one is configured, applying the shed policy when it is full. The
// job (with its reply channel) is owned by the calling handler and reused
// across batches.
func (s *Server) admit(job *appendJob) appendResult {
	if s.queue == nil {
		appendStart := time.Now()
		err := job.sink.AppendBatch(job.batch)
		obsAppendSeconds.Observe(time.Since(appendStart).Seconds())
		return appendResult{stored: storedOf(len(job.batch), err), err: err}
	}
	switch s.flow.Shed {
	case ShedBlock:
		s.queue <- job
	case ShedReject:
		select {
		case s.queue <- job:
		default:
			s.countShed(len(job.batch), "reject")
			return appendResult{dropped: true}
		}
	case ShedDropOldest:
		for {
			select {
			case s.queue <- job:
			default:
				// Full: evict the oldest queued job (racing the drainer
				// and other producers for it is fine — whoever receives
				// it owns the verdict) and retry the enqueue.
				select {
				case old := <-s.queue:
					s.countShed(len(old.batch), "drop_oldest")
					old.reply <- appendResult{dropped: true}
				default:
				}
				continue
			}
			break
		}
	}
	obsFlowQueueDepth.Set(float64(len(s.queue)))
	return <-job.reply
}

// countShed records one shed batch on the stats and metrics surfaces.
func (s *Server) countShed(samples int, reason string) {
	s.mu.Lock()
	s.stats.Shed++
	s.mu.Unlock()
	obsFlowShed.With(reason).Inc()
	obsFlowShedSamples.Add(uint64(samples))
}

// writeAck sends an ack frame under the configured write deadline, so a
// stalled agent that never reads cannot pin the handler goroutine. The
// deadline is symmetric to the read-idle timeout unless FlowConfig
// overrides it.
func (s *Server) writeAck(conn net.Conn, info AckInfo) error {
	timeout := s.flow.WriteTimeout
	if timeout <= 0 {
		timeout = s.readIdle
	}
	if timeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	if info.Throttled() {
		obsFlowHints.Inc()
	}
	err := WriteFrame(conn, Frame{Type: MsgAck, Payload: EncodeAckInfo(info)})
	if timeout > 0 {
		_ = conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// throttleDelay returns the configured throttle-hint delay, defaulting
// to 100ms when flow control was never configured (the tenant limiter
// is active whenever a router is installed, SetFlow or not).
func (s *Server) throttleDelay() time.Duration {
	if s.flow.ThrottleDelay > 0 {
		return s.flow.ThrottleDelay
	}
	return 100 * time.Millisecond
}

// queueHint returns the advisory delay to attach to an ack given the
// admission queue's occupancy: zero below 3/4 full, the configured
// throttle delay at or above it. A shed or rate-limited ack always
// carries a delay regardless of occupancy.
func (s *Server) queueHint() time.Duration {
	if s.queue == nil {
		return 0
	}
	if 4*len(s.queue) >= 3*cap(s.queue) {
		return s.flow.ThrottleDelay
	}
	return 0
}

// handle runs one agent connection to completion.
func (s *Server) handle(conn net.Conn) {
	agent := conn.RemoteAddr().String()
	named := false
	// With a tenant router the connection's sink is resolved from its
	// hello (or lazily, for legacy agents that send samples before —
	// or without — a hello); otherwise it is the server's fixed sink.
	tenant := ""
	sink := s.sink
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.stats.Connections--
		last := named && !s.agentStillConnectedLocked(agent)
		s.mu.Unlock()
		obsConnections.Dec()
		if last {
			// Last connection for this agent name: drop its labeled
			// series and limiter state so cardinality tracks the live
			// fleet.
			obsAgentLastSeen.Delete(agent)
			obsFlowAgentRate.Delete(agent)
			if s.limiter != nil {
				s.limiter.forget(agent)
			}
			if s.meter != nil {
				s.meter.forget(agent)
			}
		}
	}()
	// job and its reply channel are reused for every batch on this
	// connection, keeping the admission path allocation-free.
	job := &appendJob{reply: make(chan appendResult, 1)}
	for {
		if s.readIdle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readIdle))
		}
		f, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.countError()
				obsReadErrors.Inc()
				s.log.Error("read failed", "agent", agent, "err", err)
			}
			return
		}
		obsFrames.Inc()
		s.touch(conn, "", 0)
		switch f.Type {
		case MsgHello:
			var wireTenant string
			agent, wireTenant = DecodeHello(f.Payload)
			named = agent != ""
			s.touch(conn, agent, 0)
			if s.router != nil {
				name, tsink, rerr := s.router.SinkFor(wireTenant)
				if rerr != nil {
					s.countError()
					s.log.Error("tenant refused", "agent", agent, "tenant", wireTenant, "err", rerr)
					return
				}
				tenant, sink = name, tsink
				s.setConnTenant(conn, tenant)
			}
			s.log.Info("hello", "agent", agent, "tenant", tenant)
		case MsgHeartbeat:
			if _, err := DecodeHeartbeat(f.Payload); err != nil {
				s.countError()
				obsDecodeErrors.Inc()
				s.log.Error("bad heartbeat", "agent", agent, "err", err)
				return
			}
			s.mu.Lock()
			s.stats.Heartbeats++
			s.mu.Unlock()
			obsHeartbeats.Inc()
		case MsgSamples:
			batch, err := DecodeSamples(f.Payload)
			if err != nil {
				s.countError()
				obsDecodeErrors.Inc()
				s.log.Error("bad samples", "agent", agent, "err", err)
				return
			}
			if sink == nil {
				// Router installed, no hello yet: the legacy wire form
				// maps to the router's default tenant.
				name, tsink, rerr := s.router.SinkFor("")
				if rerr != nil {
					s.countError()
					s.log.Error("tenant refused", "agent", agent, "tenant", "", "err", rerr)
					return
				}
				tenant, sink = name, tsink
				s.setConnTenant(conn, tenant)
			}
			if !s.handleSamples(conn, agent, tenant, sink, job, batch) {
				return
			}
		case MsgBye:
			s.log.Info("bye", "agent", agent)
			return
		default:
			s.countError()
			s.log.Warn("unexpected frame", "agent", agent, "type", f.Type.String())
			return
		}
	}
}

// handleSamples admits one decoded batch into the connection's sink and
// acks it, applying the tenant and per-agent rate limits, the admission
// queue's shed policy, and throttle hints. It reports whether the
// connection should stay up.
func (s *Server) handleSamples(conn net.Conn, agent, tenant string, sink Sink, job *appendJob, batch []tsdb.Sample) bool {
	// Tenant rate limit first: one tenant's firehose is refused before it
	// can contend with other tenants for the shared admission queue.
	if s.router != nil {
		rate, burst := s.router.TenantLimit(tenant)
		if rate > 0 {
			ok, wait, credit := s.tlimiter.take(tenant, rate, float64(burst), len(batch), time.Now())
			if !ok {
				s.mu.Lock()
				s.stats.Throttled++
				s.mu.Unlock()
				obsFlowTenantThrottled.With(tenant).Inc()
				if wait < s.throttleDelay() {
					wait = s.throttleDelay()
				}
				if err := s.writeAck(conn, AckInfo{Stored: 0, Delay: wait, Credit: credit}); err != nil {
					s.countError()
					return false
				}
				return true
			}
		}
	}

	// Per-agent rate limit: an over-budget batch is refused whole with a
	// hint saying when to retry and how much the bucket can take now.
	if s.limiter != nil {
		ok, wait, credit := s.limiter.take(agent, len(batch), time.Now())
		if !ok {
			s.mu.Lock()
			s.stats.Throttled++
			s.mu.Unlock()
			obsFlowThrottled.Inc()
			if wait < s.flow.ThrottleDelay {
				wait = s.flow.ThrottleDelay
			}
			if err := s.writeAck(conn, AckInfo{Stored: 0, Delay: wait, Credit: credit}); err != nil {
				s.countError()
				return false
			}
			return true
		}
	}

	job.batch = batch
	job.sink = sink
	res := s.admit(job)
	job.batch = nil
	if res.dropped {
		// Shed by the admission queue: acked as stored-0 so the agent
		// keeps the samples buffered and backs off per the hint.
		if err := s.writeAck(conn, AckInfo{Stored: 0, Delay: s.flow.ThrottleDelay}); err != nil {
			s.countError()
			return false
		}
		return true
	}
	stored := res.stored
	if res.err != nil {
		// Sink errors (e.g. stale samples) are reported but do not kill
		// the connection. The ack carries the stored prefix — 0 for an
		// opaque failure, PartialAppendError.Stored when the sink
		// applied the leading samples — so the agent can resume from
		// the right offset instead of re-sending data the store has
		// already accepted (and WAL-logged).
		s.countError()
		obsSinkErrors.Inc()
		s.log.Error("sink append failed", "agent", agent, "batch", len(batch), "stored", stored, "err", res.err)
	}
	if stored > 0 {
		s.mu.Lock()
		s.stats.Samples += stored
		s.mu.Unlock()
		obsSamples.Add(uint64(stored))
		if s.router != nil {
			obsFlowTenantSamples.With(tenant).Add(uint64(stored))
		}
		s.touch(conn, "", stored)
		if s.meter != nil {
			obsFlowAgentRate.With(agent).Set(s.meter.observe(agent, stored, time.Now()))
		}
	}
	if err := s.writeAck(conn, AckInfo{Stored: stored, Delay: s.queueHint()}); err != nil {
		s.countError()
		return false
	}
	return true
}

// agentStillConnectedLocked reports whether any other live connection
// claims the given agent name. Caller holds s.mu.
func (s *Server) agentStillConnectedLocked(name string) bool {
	for _, st := range s.conns {
		if st.Name == name {
			return true
		}
	}
	return false
}

// setConnTenant records the tenant a connection's hello resolved to, so
// tenant teardown (ForgetTenant) can find the agents it owns.
func (s *Server) setConnTenant(conn net.Conn, tenant string) {
	s.mu.Lock()
	if st, ok := s.conns[conn]; ok {
		st.Tenant = tenant
	}
	s.mu.Unlock()
}

// touch updates a connection's liveness record.
func (s *Server) touch(conn net.Conn, name string, samples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.conns[conn]
	if !ok {
		return
	}
	st.LastFrame = time.Now()
	if name != "" {
		st.Name = name
	}
	st.Samples += samples
	if st.Name != "" {
		obsAgentLastSeen.With(st.Name).Set(float64(st.LastFrame.UnixNano()) / 1e9)
	}
}

// AgentStatuses snapshots the currently connected agents, sorted by name
// then remote address.
func (s *Server) AgentStatuses() []AgentStatus {
	s.mu.Lock()
	out := make([]AgentStatus, 0, len(s.conns))
	for _, st := range s.conns {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Remote < out[j].Remote
	})
	return out
}

func (s *Server) countError() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting, closes every live connection, and waits for the
// handlers (and the admission-queue drainer, if any) to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	drained := s.drained
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	if drained != nil {
		// Every handler has returned, so no more jobs can be enqueued;
		// closing the queue lets the drainer answer what is left and exit.
		close(s.queue)
		<-drained
	}
	return err
}
