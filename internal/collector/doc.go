// Package collector implements the monitoring-data pipeline between
// machines and the analysis side: a compact length-prefixed binary protocol
// over TCP, an Agent that batches and ships samples from a machine, and a
// Server that receives them into a sink (normally a tsdb.Store).
//
// The paper's infrastructure streamed measurements from ~50 servers per
// company at a 6-minute sampling rate; this package is the stand-in that
// exercises the same online code path with real sockets.
//
// ReliableAgent layers reconnection with exponential backoff and a bounded
// resend buffer over the plain Agent, so a collector restart never loses
// acknowledged samples. The server publishes per-connection and per-agent
// health to the obs registry (mcorr_collector_*), including a last-seen
// gauge per agent that a scraper can alert on.
package collector
