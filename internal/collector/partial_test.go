package collector

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// TestServerAcksStoredPrefixOnStaleBatch drives the full wire path: a batch
// whose middle sample is stale must come back as a clean partial ack — the
// server stores and acks exactly the leading prefix, the agent surfaces a
// *PartialSendError with Err == nil (connection healthy), and nothing after
// the stale sample reaches the store.
func TestServerAcksStoredPrefixOnStaleBatch(t *testing.T) {
	_, store, addr := newTestServer(t)
	idCPU := timeseries.MeasurementID{Machine: "srv-01", Metric: "cpu"}
	idNet := timeseries.MeasurementID{Machine: "srv-01", Metric: "net"}
	t0 := timeseries.MonitoringStart
	// Pre-seed cpu at t0+step so a later append at t0 is stale.
	if err := store.Append(tsdb.Sample{ID: idCPU, Time: t0.Add(timeseries.SampleStep), Value: 1}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	agent, err := Dial(addr, "srv-01")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()

	batch := []tsdb.Sample{
		{ID: idNet, Time: t0, Value: 10},
		{ID: idCPU, Time: t0, Value: 20}, // stale: predates the seeded slot
		{ID: idNet, Time: t0.Add(timeseries.SampleStep), Value: 30},
	}
	err = agent.Send(batch)
	if err == nil {
		t.Fatal("stale mid-batch sample: want error")
	}
	var pe *PartialSendError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T (%v) is not *PartialSendError", err, err)
	}
	if pe.Sent != 1 {
		t.Errorf("Sent = %d, want 1 (the prefix before the stale sample)", pe.Sent)
	}
	if pe.Err != nil {
		t.Errorf("Err = %v, want nil (clean partial ack over a live connection)", pe.Err)
	}
	if got := store.Len(idNet); got != 1 {
		t.Errorf("store has %d net samples, want exactly the acked prefix (1)", got)
	}
	if agent.Sent() != 1 {
		t.Errorf("agent.Sent() = %d, want 1", agent.Sent())
	}
	// The connection survived the partial ack: a clean follow-up works.
	if err := agent.Send([]tsdb.Sample{{ID: idNet, Time: t0.Add(2 * timeseries.SampleStep), Value: 40}}); err != nil {
		t.Fatalf("Send after partial ack: %v", err)
	}
}

// flakySink stores a prefix of the first batch and reports the rest via a
// *tsdb.PartialAppendError, then behaves normally — the shape of a store
// hitting a transient per-sample failure.
type flakySink struct {
	mu      sync.Mutex
	storeAt int // samples of the first batch to apply before failing
	failed  bool
	got     []tsdb.Sample
}

func (f *flakySink) AppendBatch(b []tsdb.Sample) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.failed {
		f.failed = true
		k := f.storeAt
		if k > len(b) {
			k = len(b)
		}
		f.got = append(f.got, b[:k]...)
		return &tsdb.PartialAppendError{Stored: k, Err: tsdb.ErrStale}
	}
	f.got = append(f.got, b...)
	return nil
}

func (f *flakySink) samples() []tsdb.Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]tsdb.Sample(nil), f.got...)
}

// TestReliableAgentResumesFromAckedPrefix checks the end-to-end resume
// contract: when the server acks only a prefix, the reliable agent trims
// exactly that prefix and redelivers the remainder over the same
// connection — every sample arrives once, in order, with no duplicates.
func TestReliableAgentResumesFromAckedPrefix(t *testing.T) {
	sink := &flakySink{storeAt: 4}
	srv, err := NewServer(sink, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	ra := NewReliableAgent(addr.String(), "rel-07", ReliableConfig{Sleep: noSleep})
	defer ra.Close()

	batch := sampleBatch(10)
	if err := ra.Send(batch); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if ra.Pending() != 0 {
		t.Errorf("Pending = %d after successful Send, want 0", ra.Pending())
	}
	got := sink.samples()
	if len(got) != len(batch) {
		t.Fatalf("sink holds %d samples, want %d (no loss, no duplicates)", len(got), len(batch))
	}
	for i := range batch {
		if got[i].ID != batch[i].ID || !got[i].Time.Equal(batch[i].Time) || got[i].Value != batch[i].Value {
			t.Fatalf("sample %d = %+v, want %+v (order preserved across resume)", i, got[i], batch[i])
		}
	}
	// The resume happened over the live connection: no reconnect occurred.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().TotalConns == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.Stats().TotalConns; n != 1 {
		t.Errorf("TotalConns = %d, want 1 (partial ack must not drop the connection)", n)
	}
}
