package collector

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

func sampleBatch(n int) []tsdb.Sample {
	out := make([]tsdb.Sample, n)
	for i := range out {
		out[i] = tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: "srv-01", Metric: "cpu"},
			Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
			Value: float64(i) * 1.5,
		}
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: MsgHello, Payload: []byte("agent-7")}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgBye}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if got.Type != MsgBye || len(got.Payload) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	raw := make([]byte, 10)
	copy(raw, "XXXX")
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgBye}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestReadFrameOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgSamples, Payload: []byte("x")}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[6], raw[7], raw[8], raw[9] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameSize) {
		t.Errorf("err = %v, want ErrFrameSize", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: MsgHello, Payload: []byte("abcdef")}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()[:12] // header + 2 of 6 payload bytes
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated payload: want error")
	}
}

func TestWriteFrameOversize(t *testing.T) {
	big := Frame{Type: MsgSamples, Payload: make([]byte, MaxFrameSize+1)}
	if err := WriteFrame(&bytes.Buffer{}, big); !errors.Is(err, ErrFrameSize) {
		t.Errorf("err = %v, want ErrFrameSize", err)
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	want := sampleBatch(10)
	want[3].Value = math.Inf(1)
	want[4].Value = -12345.678
	payload, err := EncodeSamples(want)
	if err != nil {
		t.Fatalf("EncodeSamples: %v", err)
	}
	got, err := DecodeSamples(payload)
	if err != nil {
		t.Fatalf("DecodeSamples: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples", len(got))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !got[i].Time.Equal(want[i].Time) || got[i].Value != want[i].Value {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSamplesRoundTripNaN(t *testing.T) {
	batch := sampleBatch(1)
	batch[0].Value = math.NaN()
	payload, _ := EncodeSamples(batch)
	got, err := DecodeSamples(payload)
	if err != nil {
		t.Fatalf("DecodeSamples: %v", err)
	}
	if !math.IsNaN(got[0].Value) {
		t.Error("NaN should survive the wire")
	}
}

func TestEncodeSamplesTooMany(t *testing.T) {
	if _, err := EncodeSamples(sampleBatch(MaxBatch + 1)); err == nil {
		t.Error("oversized batch: want error")
	}
}

func TestEncodeSamplesLongString(t *testing.T) {
	batch := sampleBatch(1)
	batch[0].ID.Machine = strings.Repeat("m", math.MaxUint16+1)
	if _, err := EncodeSamples(batch); err == nil {
		t.Error("oversized string: want error")
	}
}

func TestDecodeSamplesMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0},                   // short count
		{0, 0, 0, 1},             // count 1 with no body
		{0, 0, 0, 1, 0, 3, 'a'},  // string longer than payload
		{0xff, 0xff, 0xff, 0xff}, // absurd count
	}
	for i, c := range cases {
		if _, err := DecodeSamples(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Trailing garbage after a valid batch.
	payload, _ := EncodeSamples(sampleBatch(1))
	payload = append(payload, 0xde, 0xad)
	if _, err := DecodeSamples(payload); err == nil {
		t.Error("trailing bytes: want error")
	}
}

// Property: encode/decode is the identity on arbitrary batches.
func TestSamplesRoundTripProperty(t *testing.T) {
	f := func(machines []string, values []float64) bool {
		n := len(values)
		if n > 50 {
			n = 50
		}
		batch := make([]tsdb.Sample, n)
		for i := 0; i < n; i++ {
			m := "m"
			if len(machines) > 0 {
				m = machines[i%len(machines)]
				if len(m) > 100 {
					m = m[:100]
				}
			}
			batch[i] = tsdb.Sample{
				ID:    timeseries.MeasurementID{Machine: m, Metric: "x"},
				Time:  timeseries.MonitoringStart.Add(time.Duration(i) * time.Second),
				Value: values[i],
			}
		}
		payload, err := EncodeSamples(batch)
		if err != nil {
			return false
		}
		got, err := DecodeSamples(payload)
		if err != nil || len(got) != len(batch) {
			return false
		}
		for i := range batch {
			same := got[i].Value == batch[i].Value ||
				(math.IsNaN(got[i].Value) && math.IsNaN(batch[i].Value))
			if got[i].ID != batch[i].ID || !got[i].Time.Equal(batch[i].Time) || !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	now := time.Unix(1214300000, 123456789).UTC()
	got, err := DecodeHeartbeat(EncodeHeartbeat(now))
	if err != nil {
		t.Fatalf("DecodeHeartbeat: %v", err)
	}
	if !got.Equal(now) {
		t.Errorf("heartbeat = %v, want %v", got, now)
	}
	if _, err := DecodeHeartbeat([]byte{1, 2}); err == nil {
		t.Error("short heartbeat: want error")
	}
}

func TestAckRoundTrip(t *testing.T) {
	n, err := DecodeAck(EncodeAck(512))
	if err != nil || n != 512 {
		t.Errorf("ack = %d, %v", n, err)
	}
	if _, err := DecodeAck(nil); err == nil {
		t.Error("short ack: want error")
	}
}

func TestMsgTypeString(t *testing.T) {
	for m, want := range map[MsgType]string{
		MsgHello: "hello", MsgSamples: "samples", MsgHeartbeat: "heartbeat",
		MsgBye: "bye", MsgAck: "ack",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", byte(m), m.String())
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type should render")
	}
}

// Property: arbitrary bytes never panic the decoders; they either parse or
// return an error.
func TestDecodersNeverPanicProperty(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeSamples(raw)
		_, _ = DecodeHeartbeat(raw)
		_, _ = DecodeAck(raw)
		_, _ = ReadFrame(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a valid frame with arbitrary payload round-trips bit-exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(kind byte, payload []byte) bool {
		if len(payload) > MaxFrameSize {
			payload = payload[:MaxFrameSize]
		}
		var buf bytes.Buffer
		want := Frame{Type: MsgType(kind), Payload: payload}
		if err := WriteFrame(&buf, want); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return got.Type == want.Type && bytes.Equal(got.Payload, want.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
