package collector

import (
	"bytes"
	"math"
	"testing"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader. The decoder
// must never panic, must bound its allocations (MaxFrameSize), and any
// frame it accepts must survive a write/read round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	// A well-formed hello and an empty samples frame as live seeds, next
	// to the checked-in corpus under testdata/fuzz.
	var hello bytes.Buffer
	if err := WriteFrame(&hello, Frame{Type: MsgHello, Payload: []byte("agent-1")}); err != nil {
		f.Fatal(err)
	}
	f.Add(hello.Bytes())
	var empty bytes.Buffer
	if err := WriteFrame(&empty, Frame{Type: MsgSamples, Payload: EncodeAck(0)}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxFrameSize {
			t.Fatalf("accepted %d-byte payload beyond MaxFrameSize", len(fr.Payload))
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode accepted frame: %v", err)
		}
		again, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-read re-encoded frame: %v", err)
		}
		if again.Type != fr.Type || !bytes.Equal(again.Payload, fr.Payload) {
			t.Fatalf("round trip changed frame: %+v vs %+v", again, fr)
		}
	})
}

// FuzzDecodeSamples feeds arbitrary payloads to the sample-batch decoder.
// The decoder must never panic and must bound the batch size; any batch it
// accepts must survive an encode/decode round trip field for field.
func FuzzDecodeSamples(f *testing.F) {
	valid, err := EncodeSamples([]tsdb.Sample{
		{ID: timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}, Time: time.Unix(0, 1_200_000_000).UTC(), Value: 0.5},
		{ID: timeseries.MeasurementID{Machine: "m2", Metric: "net"}, Time: time.Unix(42, 0).UTC(), Value: math.NaN()},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(EncodeAck(0)) // count-0 batch

	f.Fuzz(func(t *testing.T, payload []byte) {
		batch, err := DecodeSamples(payload)
		if err != nil {
			return
		}
		if len(batch) > MaxBatch {
			t.Fatalf("accepted batch of %d samples beyond MaxBatch", len(batch))
		}
		enc, err := EncodeSamples(batch)
		if err != nil {
			t.Fatalf("re-encode accepted batch: %v", err)
		}
		again, err := DecodeSamples(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(again) != len(batch) {
			t.Fatalf("round trip changed batch length: %d vs %d", len(again), len(batch))
		}
		for i := range batch {
			if again[i].ID != batch[i].ID || !again[i].Time.Equal(batch[i].Time) ||
				math.Float64bits(again[i].Value) != math.Float64bits(batch[i].Value) {
				t.Fatalf("sample %d changed in round trip: %+v vs %+v", i, again[i], batch[i])
			}
		}
	})
}
