package collector

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mcorr/internal/tsdb"
)

// ReliableConfig tunes a ReliableAgent.
type ReliableConfig struct {
	// MaxAttempts bounds connection attempts per Send (0 = 5).
	MaxAttempts int
	// Backoff is the initial delay between attempts, doubling each retry
	// (0 = 100ms).
	Backoff time.Duration
	// MaxBackoff caps the delay (0 = 5s).
	MaxBackoff time.Duration
	// BufferLimit bounds the number of samples queued while the server
	// is unreachable; beyond it the oldest samples are dropped (0 = 65536).
	BufferLimit int
	// Sleep is the delay function, replaceable in tests (nil = time.Sleep).
	Sleep func(time.Duration)
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BufferLimit <= 0 {
		c.BufferLimit = 65536
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// ReliableAgent wraps the plain Agent with reconnection, exponential
// backoff, and a bounded resend buffer: samples accepted by Send are
// delivered once a connection can be (re-)established, in order, with the
// oldest dropped first under prolonged outages. Safe for concurrent use.
type ReliableAgent struct {
	addr string
	name string
	cfg  ReliableConfig

	mu      sync.Mutex
	agent   *Agent
	pending []tsdb.Sample
	dropped int
	closed  bool
}

// NewReliableAgent returns a reliable agent for the given server address.
// No connection is attempted until the first Send.
func NewReliableAgent(addr, name string, cfg ReliableConfig) *ReliableAgent {
	return &ReliableAgent{addr: addr, name: name, cfg: cfg.withDefaults()}
}

// Dropped reports how many samples were discarded due to the buffer limit.
func (r *ReliableAgent) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Pending reports how many samples await delivery.
func (r *ReliableAgent) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Send queues the batch and attempts delivery of everything pending. It
// returns nil when the queue is fully drained; otherwise the samples stay
// buffered for the next Send and the last connection error is returned.
func (r *ReliableAgent) Send(batch []tsdb.Sample) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("reliable agent: closed")
	}
	r.pending = append(r.pending, batch...)
	if over := len(r.pending) - r.cfg.BufferLimit; over > 0 {
		r.pending = append(r.pending[:0], r.pending[over:]...)
		r.dropped += over
	}
	r.mu.Unlock()
	return r.flush()
}

// Flush attempts delivery of everything pending without queueing new data.
func (r *ReliableAgent) Flush() error { return r.flush() }

func (r *ReliableAgent) flush() error {
	backoff := r.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return nil
		}
		if r.agent == nil {
			agent, err := Dial(r.addr, r.name)
			if err != nil {
				r.mu.Unlock()
				lastErr = err
				r.cfg.Sleep(backoff)
				backoff *= 2
				if backoff > r.cfg.MaxBackoff {
					backoff = r.cfg.MaxBackoff
				}
				continue
			}
			r.agent = agent
		}
		agent := r.agent
		toSend := append([]tsdb.Sample(nil), r.pending...)
		r.mu.Unlock()

		if err := agent.Send(toSend); err != nil {
			lastErr = err
			// A partial delivery acked a leading prefix: drop exactly
			// those samples and resume from the right offset instead of
			// re-sending data the server has already stored.
			acked, healthy := 0, false
			var pe *PartialSendError
			if errors.As(err, &pe) {
				acked, healthy = pe.Sent, pe.Err == nil
			}
			r.mu.Lock()
			r.trimLocked(acked)
			if !healthy {
				// The connection is suspect: drop it and retry from scratch.
				_ = agent.Close()
				if r.agent == agent {
					r.agent = nil
				}
			}
			r.mu.Unlock()
			if healthy && acked > 0 {
				continue // progress over a live connection; no backoff
			}
			r.cfg.Sleep(backoff)
			backoff *= 2
			if backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
			continue
		}
		r.mu.Lock()
		// Remove exactly what was sent; new samples may have arrived.
		r.trimLocked(len(toSend))
		r.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = errors.New("reliable agent: delivery incomplete")
	}
	return fmt.Errorf("reliable agent: %w", lastErr)
}

// trimLocked drops the first n pending samples (the delivered prefix).
// Caller holds r.mu.
func (r *ReliableAgent) trimLocked(n int) {
	if n <= 0 {
		return
	}
	if n >= len(r.pending) {
		r.pending = r.pending[:0]
		return
	}
	r.pending = append(r.pending[:0], r.pending[n:]...)
}

// Close stops the agent; pending samples are discarded.
func (r *ReliableAgent) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.pending = nil
	if r.agent != nil {
		err := r.agent.Close()
		r.agent = nil
		return err
	}
	return nil
}
