package collector

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mcorr/internal/tsdb"
)

// ReliableConfig tunes a ReliableAgent.
type ReliableConfig struct {
	// MaxAttempts bounds connection attempts per flush (0 = 5).
	MaxAttempts int
	// Backoff is the base delay between attempts, doubling each retry
	// with equal jitter applied (0 = 100ms).
	Backoff time.Duration
	// MaxBackoff caps the delay before jitter (0 = 5s).
	MaxBackoff time.Duration
	// BufferLimit bounds the number of samples queued while the server
	// is unreachable; beyond it the oldest samples not currently being
	// delivered are dropped (0 = 65536).
	BufferLimit int
	// Sleep replaces the delay function in tests. When nil, backoff and
	// throttle waits use a timer that Close interrupts; a custom Sleep
	// is called as-is and is not interruptible.
	Sleep func(time.Duration)
	// Tenant is the tenant named in each (re)connection's hello frame.
	// Empty emits the legacy hello, which a multi-tenant server routes
	// to its default tenant. Ignored when Dial is set.
	Tenant string
	// Dial replaces the connection factory in tests (nil = DialTenant
	// with the configured Tenant).
	Dial func(addr, name string) (*Agent, error)
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.BufferLimit <= 0 {
		c.BufferLimit = 65536
	}
	if c.Dial == nil {
		tenant := c.Tenant
		c.Dial = func(addr, name string) (*Agent, error) {
			return DialTenant(addr, name, tenant)
		}
	}
	return c
}

var errReliableClosed = errors.New("reliable agent: closed")

// ReliableAgent wraps the plain Agent with reconnection, jittered
// exponential backoff, and a bounded resend buffer: samples accepted by
// Send are delivered exactly once when a connection can be
// (re-)established, in order, with the oldest dropped first under
// prolonged outages. Delivery is single-flight — concurrent Send/Flush
// calls coalesce onto one flusher instead of racing over the pending
// buffer — and server throttle hints (ack delay/credit) are honored.
// Safe for concurrent use.
type ReliableAgent struct {
	addr string
	name string
	cfg  ReliableConfig

	mu        sync.Mutex
	cond      sync.Cond // signaled when the active flusher finishes
	agent     *Agent
	pending   []tsdb.Sample
	inflight  int           // leading samples of pending owned by the active flusher
	credit    int           // batch-size cap from the last throttle hint (0 = none)
	hintDelay time.Duration // delay hint left over from a flush's final ack
	dropped   int
	flushing  bool
	closed    bool
	closeCh   chan struct{}
}

// NewReliableAgent returns a reliable agent for the given server address.
// No connection is attempted until the first Send.
func NewReliableAgent(addr, name string, cfg ReliableConfig) *ReliableAgent {
	r := &ReliableAgent{addr: addr, name: name, cfg: cfg.withDefaults(), closeCh: make(chan struct{})}
	r.cond.L = &r.mu
	return r
}

// Dropped reports how many samples were discarded due to the buffer limit.
func (r *ReliableAgent) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Pending reports how many samples await delivery.
func (r *ReliableAgent) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Send queues the batch and attempts delivery of everything pending. It
// returns nil once the queue is drained (possibly by a concurrent flusher
// that picked the samples up); otherwise the samples stay buffered for
// the next Send and the last connection error is returned.
func (r *ReliableAgent) Send(batch []tsdb.Sample) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errReliableClosed
	}
	r.pending = append(r.pending, batch...)
	if over := len(r.pending) - r.cfg.BufferLimit; over > 0 {
		// Drop the oldest samples the active flusher does not hold: the
		// in-flight prefix is possibly already on the wire, so evicting
		// it would corrupt the trim accounting when the ack lands.
		keep := r.inflight
		if over > len(r.pending)-keep {
			over = len(r.pending) - keep
		}
		if over > 0 {
			r.pending = append(r.pending[:keep], r.pending[keep+over:]...)
			r.dropped += over
		}
	}
	return r.flushLocked()
}

// Flush attempts delivery of everything pending without queueing new data.
func (r *ReliableAgent) Flush() error {
	r.mu.Lock()
	return r.flushLocked()
}

// flushLocked drains the pending buffer, coalescing concurrent callers
// onto a single flusher. Callers hold r.mu; it is released on return.
func (r *ReliableAgent) flushLocked() error {
	for {
		if r.closed {
			r.mu.Unlock()
			return errReliableClosed
		}
		if len(r.pending) == 0 {
			// Nothing left — either there was nothing to do, or the
			// active flusher delivered our samples along with its own.
			r.mu.Unlock()
			return nil
		}
		if !r.flushing {
			break
		}
		r.cond.Wait()
	}
	r.flushing = true
	r.mu.Unlock()

	err := r.deliver()

	r.mu.Lock()
	r.flushing = false
	r.inflight = 0
	r.cond.Broadcast()
	r.mu.Unlock()
	return err
}

// deliver is the single-flight flush loop: dial if needed, send the
// pending prefix, trim what the server acked, back off with jitter on
// failure, and honor server throttle hints. Only one goroutine runs it
// at a time.
func (r *ReliableAgent) deliver() error {
	// Honor a delay hint that arrived with the final ack of the previous
	// flush: there was no in-loop wait left to serve it then, so it is
	// carried here and served before the first send — through sleep, so a
	// concurrent Close interrupts it instead of waiting out the hint.
	r.mu.Lock()
	carried := r.hintDelay
	r.hintDelay = 0
	r.mu.Unlock()
	if carried > 0 {
		if !r.sleep(carried) {
			return errReliableClosed
		}
	}
	backoff := r.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return errReliableClosed
		}
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return nil
		}
		if r.agent == nil {
			r.mu.Unlock()
			agent, err := r.cfg.Dial(r.addr, r.name)
			r.mu.Lock()
			if r.closed {
				// Close ran while we were dialing: do not resurrect the
				// connection it can no longer see.
				r.mu.Unlock()
				if err == nil {
					_ = agent.Close()
				}
				return errReliableClosed
			}
			if err != nil {
				r.mu.Unlock()
				lastErr = err
				if !r.sleep(jittered(backoff)) {
					return errReliableClosed
				}
				backoff = nextBackoff(backoff, r.cfg.MaxBackoff)
				continue
			}
			r.agent = agent
		}
		agent := r.agent
		n := len(r.pending)
		if r.credit > 0 && n > r.credit {
			n = r.credit
		}
		toSend := append([]tsdb.Sample(nil), r.pending[:n]...)
		r.inflight = n
		r.mu.Unlock()

		sendErr := agent.Send(toSend)
		hint := agent.LastHint()

		if sendErr != nil {
			lastErr = sendErr
			// A partial delivery acked a leading prefix: drop exactly
			// those samples and resume from the right offset instead of
			// re-sending data the server has already stored. A healthy
			// ack-0 means the server shed or rate-limited the batch —
			// the samples stay pending and the hint says when to retry.
			acked, healthy := 0, false
			var pe *PartialSendError
			if errors.As(sendErr, &pe) {
				acked, healthy = pe.Sent, pe.Err == nil
			}
			r.mu.Lock()
			r.trimLocked(acked)
			r.inflight = 0
			r.credit = hint.Credit
			if !healthy {
				// The connection is suspect: drop it and retry from scratch.
				_ = agent.Close()
				if r.agent == agent {
					r.agent = nil
				}
			}
			r.mu.Unlock()
			if healthy && acked > 0 {
				continue // progress over a live connection; no backoff
			}
			wait := jittered(backoff)
			if healthy && hint.Delay > 0 {
				wait = hint.Delay // the server said exactly how long
			}
			if !r.sleep(wait) {
				return errReliableClosed
			}
			backoff = nextBackoff(backoff, r.cfg.MaxBackoff)
			continue
		}
		r.mu.Lock()
		// Remove exactly what was sent; new samples may have arrived
		// behind the in-flight prefix.
		r.trimLocked(len(toSend))
		r.inflight = 0
		r.credit = hint.Credit
		done := len(r.pending) == 0
		if done {
			// Nothing left to pace in this flush; stash the delay for the
			// next one so the server's throttle survives the flush boundary
			// the same way credit does.
			r.hintDelay = hint.Delay
		}
		r.mu.Unlock()
		if done {
			return nil
		}
		if hint.Delay > 0 {
			if !r.sleep(hint.Delay) {
				return errReliableClosed
			}
		}
	}
	if lastErr == nil {
		lastErr = errors.New("delivery incomplete")
	}
	return fmt.Errorf("reliable agent: %w", lastErr)
}

// sleep waits for d, or until Close. It reports false when the agent
// closed during the wait. A test-injected Sleep is called as-is.
func (r *ReliableAgent) sleep(d time.Duration) bool {
	if d <= 0 {
		return !r.isClosed()
	}
	if r.cfg.Sleep != nil {
		r.cfg.Sleep(d)
		return !r.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.closeCh:
		return false
	}
}

func (r *ReliableAgent) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// jittered applies equal jitter: a uniform draw from [d/2, d), so
// synchronized agents spread their retries instead of stampeding.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// nextBackoff doubles the delay up to the cap.
func nextBackoff(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		d = max
	}
	return d
}

// trimLocked drops the first n pending samples (the delivered prefix).
// Caller holds r.mu.
func (r *ReliableAgent) trimLocked(n int) {
	if n <= 0 {
		return
	}
	if n >= len(r.pending) {
		r.pending = r.pending[:0]
		return
	}
	r.pending = append(r.pending[:0], r.pending[n:]...)
}

// Close stops the agent: pending samples are discarded, a flusher blocked
// in a backoff or throttle sleep is woken, and any connection a flusher
// establishes concurrently is closed rather than leaked.
func (r *ReliableAgent) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.pending = nil
	agent := r.agent
	r.agent = nil
	close(r.closeCh)
	r.cond.Broadcast()
	r.mu.Unlock()
	if agent != nil {
		return agent.Close()
	}
	return nil
}
