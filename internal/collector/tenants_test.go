package collector

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// fakeRouter is a minimal TenantRouter over named stores.
type fakeRouter struct {
	def    string
	sinks  map[string]Sink
	rates  map[string]float64
	bursts map[string]int
}

func (r *fakeRouter) SinkFor(tenant string) (string, Sink, error) {
	if tenant == "" {
		tenant = r.def
	}
	s, ok := r.sinks[tenant]
	if !ok {
		return "", nil, fmt.Errorf("unknown tenant %q", tenant)
	}
	return tenant, s, nil
}

func (r *fakeRouter) TenantLimit(name string) (float64, int) {
	return r.rates[name], r.bursts[name]
}

func newTenantStore(t *testing.T) *tsdb.Store {
	t.Helper()
	store, err := tsdb.NewStore(timeseries.SampleStep, 0)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return store
}

func newTenantTestServer(t *testing.T, router TenantRouter) string {
	t.Helper()
	srv, err := NewTenantServer(router, nil)
	if err != nil {
		t.Fatalf("NewTenantServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func TestHelloEncoding(t *testing.T) {
	if got := EncodeHello("srv-01", ""); !bytes.Equal(got, []byte("srv-01")) {
		t.Errorf("legacy hello = %q, want bare agent name", got)
	}
	agent, tenant := DecodeHello([]byte("srv-01"))
	if agent != "srv-01" || tenant != "" {
		t.Errorf("legacy decode = (%q, %q)", agent, tenant)
	}
	agent, tenant = DecodeHello(EncodeHello("srv-01", "alpha"))
	if agent != "srv-01" || tenant != "alpha" {
		t.Errorf("tenant decode = (%q, %q)", agent, tenant)
	}
}

func TestTenantRoutingIsolation(t *testing.T) {
	alpha, beta := newTenantStore(t), newTenantStore(t)
	addr := newTenantTestServer(t, &fakeRouter{
		def:   "alpha",
		sinks: map[string]Sink{"alpha": alpha, "beta": beta},
	})

	a, err := DialTenant(addr, "srv-01", "alpha")
	if err != nil {
		t.Fatalf("DialTenant alpha: %v", err)
	}
	defer a.Close()
	b, err := DialTenant(addr, "srv-01", "beta")
	if err != nil {
		t.Fatalf("DialTenant beta: %v", err)
	}
	defer b.Close()
	legacy, err := Dial(addr, "srv-02")
	if err != nil {
		t.Fatalf("Dial legacy: %v", err)
	}
	defer legacy.Close()

	batch := sampleBatch(10)
	if err := a.Send(batch); err != nil {
		t.Fatalf("alpha send: %v", err)
	}
	if err := b.Send(batch[:4]); err != nil {
		t.Fatalf("beta send: %v", err)
	}
	// The legacy hello has no tenant field; the router maps it to the
	// default tenant, so pre-tenancy agents keep working unchanged.
	legacyBatch := make([]tsdb.Sample, 6)
	for i := range legacyBatch {
		legacyBatch[i] = tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: "srv-02", Metric: "mem"},
			Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
			Value: float64(i),
		}
	}
	if err := legacy.Send(legacyBatch); err != nil {
		t.Fatalf("legacy send: %v", err)
	}

	if got := alpha.Len(batch[0].ID); got != 10 {
		t.Errorf("alpha store has %d samples, want 10", got)
	}
	if got := alpha.Len(legacyBatch[0].ID); got != 6 {
		t.Errorf("alpha store has %d legacy samples, want 6 (legacy hello must land on the default tenant)", got)
	}
	if got := beta.Len(batch[0].ID); got != 4 {
		t.Errorf("beta store has %d samples, want 4", got)
	}
}

func TestTenantUnknownRefused(t *testing.T) {
	alpha := newTenantStore(t)
	addr := newTenantTestServer(t, &fakeRouter{
		def:   "alpha",
		sinks: map[string]Sink{"alpha": alpha},
	})
	ghost, err := DialTenant(addr, "srv-01", "ghost")
	if err != nil {
		// The server may close the connection before the dial completes.
		return
	}
	defer ghost.Close()
	if err := ghost.Send(sampleBatch(5)); err == nil {
		t.Error("send as unknown tenant succeeded; want refused connection")
	}
	if got := alpha.Len(sampleBatch(1)[0].ID); got != 0 {
		t.Errorf("unknown tenant's samples reached the default store (%d)", got)
	}
}

func TestTenantRateLimitThrottles(t *testing.T) {
	alpha := newTenantStore(t)
	addr := newTenantTestServer(t, &fakeRouter{
		def:    "alpha",
		sinks:  map[string]Sink{"alpha": alpha},
		rates:  map[string]float64{"alpha": 10},
		bursts: map[string]int{"alpha": 20},
	})
	a, err := DialTenant(addr, "srv-01", "alpha")
	if err != nil {
		t.Fatalf("DialTenant: %v", err)
	}
	defer a.Close()

	// 30 samples exceed the 20-token bucket: the whole batch is refused
	// with a throttle hint, and no tokens are consumed.
	err = a.Send(sampleBatch(30))
	var pe *PartialSendError
	if !errors.As(err, &pe) || pe.Sent != 0 || pe.Err != nil {
		t.Fatalf("oversized send: got %v, want healthy ack-0 PartialSendError", err)
	}
	if hint := a.LastHint(); hint.Delay <= 0 {
		t.Errorf("throttled ack carried no delay hint: %+v", hint)
	}
	// A batch within the burst passes immediately.
	if err := a.Send(sampleBatch(15)); err != nil {
		t.Fatalf("within-burst send: %v", err)
	}
	if got := alpha.Len(sampleBatch(1)[0].ID); got != 15 {
		t.Errorf("store has %d samples, want 15", got)
	}
}

// promSeries counts non-comment series lines in the process registry's
// Prometheus exposition that contain substr (e.g. a label match like
// `tenant="gamma"`). Tests use unique label values so counts are
// unaffected by series other tests created.
func promSeries(t *testing.T, substr string) int {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	n := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, substr) {
			n++
		}
	}
	return n
}

func TestForgetTenantDeletesSeriesWhileAgentsConnected(t *testing.T) {
	gamma, delta := newTenantStore(t), newTenantStore(t)
	srv, err := NewTenantServer(&fakeRouter{
		def:   "gamma",
		sinks: map[string]Sink{"gamma": gamma, "delta": delta},
	}, nil)
	if err != nil {
		t.Fatalf("NewTenantServer: %v", err)
	}
	// The zero flow config still installs the rate meter, so per-agent
	// mcorr_flow_agent_rate series exist and can leak.
	srv.SetFlow(FlowConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	dial := func(agent, tenant string) *Agent {
		t.Helper()
		a, err := DialTenant(addr.String(), agent, tenant)
		if err != nil {
			t.Fatalf("DialTenant(%s, %s): %v", agent, tenant, err)
		}
		t.Cleanup(func() { a.Close() })
		return a
	}
	g1 := dial("ft-gamma-1", "gamma")
	gShared := dial("ft-shared", "gamma")
	dShared := dial("ft-shared", "delta") // same agent name serving another tenant
	d1 := dial("ft-delta-1", "delta")

	// Send waits for the ack, so after each call the server has metered
	// the batch and every label child exists. Each agent writes its own
	// measurement so batches landing in the same store never look stale.
	batch := func(machine string) []tsdb.Sample {
		out := make([]tsdb.Sample, 5)
		for i := range out {
			out[i] = tsdb.Sample{
				ID:    timeseries.MeasurementID{Machine: machine, Metric: "cpu"},
				Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
				Value: float64(i),
			}
		}
		return out
	}
	for name, a := range map[string]*Agent{
		"ft-gamma-1": g1, "ft-shared-g": gShared, "ft-shared-d": dShared, "ft-delta-1": d1,
	} {
		if err := a.Send(batch(name)); err != nil {
			t.Fatalf("send as %s: %v", name, err)
		}
	}

	before := map[string]int{
		`tenant="ft-t-gamma"`: 0, // guard against accidental matches
		`tenant="gamma"`:      1, // mcorr_flow_tenant_samples_total
		`agent="ft-gamma-1"`:  2, // last_seen + agent_rate
		`agent="ft-shared"`:   2,
		`agent="ft-delta-1"`:  2,
		`tenant="delta"`:      1,
	}
	for substr, want := range before {
		if got := promSeries(t, substr); got != want {
			t.Fatalf("before ForgetTenant: %d series matching %s, want %d", got, substr, want)
		}
	}

	// The bug under test: none of the agents disconnect, so the per-agent
	// cleanup on last disconnect never runs. ForgetTenant must delete the
	// closed tenant's label children anyway.
	srv.ForgetTenant("gamma")

	after := map[string]int{
		`tenant="gamma"`:     0,
		`agent="ft-gamma-1"`: 0,
		// ft-shared also serves delta; its series must survive.
		`agent="ft-shared"`:  2,
		`agent="ft-delta-1"`: 2,
		`tenant="delta"`:     1,
	}
	for substr, want := range after {
		if got := promSeries(t, substr); got != want {
			t.Errorf("after ForgetTenant: %d series matching %s, want %d", got, substr, want)
		}
	}

	// Deleting label children must not unregister the families themselves.
	names := obs.Default().MetricNames()
	for _, fam := range []string{"mcorr_flow_tenant_samples_total", "mcorr_collector_agent_last_seen_seconds", "mcorr_flow_agent_rate"} {
		found := false
		for _, n := range names {
			if n == fam {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %s missing from MetricNames after ForgetTenant", fam)
		}
	}

	// The surviving tenant's agents are still live connections.
	if err := d1.Send(sampleBatch(3)); err != nil {
		t.Fatalf("delta send after ForgetTenant: %v", err)
	}
}

func TestTenantLimiterRefill(t *testing.T) {
	l := &tenantLimiter{buckets: make(map[string]*tokenBucket)}
	now := time.Unix(1000, 0)

	ok, _, _ := l.take("a", 10, 5, 5, now)
	if !ok {
		t.Fatal("first take within burst refused")
	}
	ok, wait, credit := l.take("a", 10, 5, 5, now)
	if ok || wait <= 0 {
		t.Fatalf("empty bucket: ok=%v wait=%v", ok, wait)
	}
	if credit != 0 {
		t.Errorf("credit = %d, want 0", credit)
	}
	// Half a second at 10/s refills 5 tokens.
	if ok, _, _ = l.take("a", 10, 5, 5, now.Add(500*time.Millisecond)); !ok {
		t.Error("refilled bucket refused")
	}
	// Buckets are independent per tenant.
	if ok, _, _ = l.take("b", 10, 5, 5, now); !ok {
		t.Error("fresh tenant bucket refused")
	}
	// burst <= 0 defaults to max(rate, MaxBatch): a full MaxBatch passes.
	if ok, _, _ = l.take("c", 1, 0, MaxBatch, now); !ok {
		t.Error("default burst refused a MaxBatch batch")
	}
}
