package collector

import (
	"errors"
	"net"
	"testing"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// noSleep replaces the backoff delay so retry tests run instantly.
func noSleep(time.Duration) {}

func TestReliableAgentHappyPath(t *testing.T) {
	_, store, addr := newTestServer(t)
	ra := NewReliableAgent(addr, "rel-01", ReliableConfig{Sleep: noSleep})
	defer ra.Close()
	if err := ra.Send(sampleBatch(10)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if ra.Pending() != 0 || ra.Dropped() != 0 {
		t.Errorf("pending=%d dropped=%d", ra.Pending(), ra.Dropped())
	}
	if got := store.Len(sampleBatch(1)[0].ID); got != 10 {
		t.Errorf("store has %d samples", got)
	}
}

func TestReliableAgentBuffersWhileServerDown(t *testing.T) {
	// No server yet: sends fail but buffer.
	ra := NewReliableAgent("127.0.0.1:1", "rel-02", ReliableConfig{
		MaxAttempts: 2, Sleep: noSleep,
	})
	defer ra.Close()
	if err := ra.Send(sampleBatch(5)); err == nil {
		t.Fatal("send to dead server: want error")
	}
	if ra.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", ra.Pending())
	}
	// Bring a server up and point a new reliable agent at it... the
	// address was fixed, so instead start a real server and retry against
	// it via a fresh agent sharing the buffer semantics:
	_, store, addr := newTestServer(t)
	ra2 := NewReliableAgent(addr, "rel-02", ReliableConfig{Sleep: noSleep})
	defer ra2.Close()
	if err := ra2.Send(sampleBatch(5)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if store.Len(sampleBatch(1)[0].ID) != 5 {
		t.Error("samples not delivered after server came up")
	}
}

func TestReliableAgentReconnectsAfterServerRestart(t *testing.T) {
	srv, _, addr := newTestServer(t)
	ra := NewReliableAgent(addr, "rel-03", ReliableConfig{
		MaxAttempts: 3, Sleep: noSleep,
	})
	defer ra.Close()
	if err := ra.Send(sampleBatch(3)); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	// Kill the server: the established connection dies.
	srv.Close()
	batch := []tsdb.Sample{{
		ID:    timeseries.MeasurementID{Machine: "rel-03", Metric: "cpu"},
		Time:  timeseries.MonitoringStart.Add(time.Hour),
		Value: 42,
	}}
	if err := ra.Send(batch); err == nil {
		t.Fatal("send after server death: want error")
	}
	if ra.Pending() == 0 {
		t.Fatal("failed samples should stay pending")
	}
	// Restart a server on a new port; re-point by building a new reliable
	// agent is the normal path, but the pending data belongs to ra, so we
	// verify Flush retries and eventually reports failure against the
	// dead address without losing the buffer.
	if err := ra.Flush(); err == nil {
		t.Fatal("flush against dead server: want error")
	}
	if ra.Pending() == 0 {
		t.Error("buffer must survive failed flushes")
	}
}

func TestReliableAgentBufferLimitDropsOldest(t *testing.T) {
	ra := NewReliableAgent("127.0.0.1:1", "rel-04", ReliableConfig{
		MaxAttempts: 1, BufferLimit: 8, Sleep: noSleep,
	})
	defer ra.Close()
	_ = ra.Send(sampleBatch(6))
	_ = ra.Send(sampleBatch(6))
	if ra.Pending() != 8 {
		t.Errorf("pending = %d, want 8", ra.Pending())
	}
	if ra.Dropped() != 4 {
		t.Errorf("dropped = %d, want 4", ra.Dropped())
	}
}

func TestReliableAgentClose(t *testing.T) {
	ra := NewReliableAgent("127.0.0.1:1", "rel-05", ReliableConfig{MaxAttempts: 1, Sleep: noSleep})
	_ = ra.Send(sampleBatch(2))
	if err := ra.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ra.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := ra.Send(sampleBatch(1)); err == nil {
		t.Error("send after close: want error")
	}
	if ra.Pending() != 0 {
		t.Error("close should clear the buffer")
	}
}

func TestReliableAgentInterleavedDelivery(t *testing.T) {
	_, store, addr := newTestServer(t)
	ra := NewReliableAgent(addr, "rel-06", ReliableConfig{Sleep: noSleep})
	defer ra.Close()
	id := timeseries.MeasurementID{Machine: "rel-06", Metric: "cpu"}
	for i := 0; i < 20; i++ {
		batch := []tsdb.Sample{{
			ID: id, Time: timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
			Value: float64(i),
		}}
		if err := ra.Send(batch); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	got, err := store.Query(id, timeseries.MonitoringStart, timeseries.MonitoringStart.Add(time.Hour*3))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got.Len() != 20 {
		t.Fatalf("delivered %d of 20", got.Len())
	}
	for i := 0; i < 20; i++ {
		if got.Values[i] != float64(i) {
			t.Fatalf("out-of-order delivery at %d", i)
		}
	}
}

// hintServer is a minimal hand-rolled frame server that acks every
// samples batch with a caller-chosen AckInfo — the deterministic way to
// hand a reliable agent an exact throttle hint without racing a real
// admission queue.
func hintServer(t *testing.T, info func(batch int) AckInfo) (addr string, acked <-chan int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	ackCh := make(chan int, 16)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					f, err := ReadFrame(conn)
					if err != nil {
						return
					}
					switch f.Type {
					case MsgSamples:
						batch, err := DecodeSamples(f.Payload)
						if err != nil {
							return
						}
						ack := Frame{Type: MsgAck, Payload: EncodeAckInfo(info(len(batch)))}
						if err := WriteFrame(conn, ack); err != nil {
							return
						}
						select {
						case ackCh <- len(batch):
						default:
						}
					case MsgBye:
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), ackCh
}

// TestReliableAgentCloseInterruptsHintDelaySleep pins the shutdown
// contract for throttle hints: when the server sheds a batch with a long
// delay hint, the flusher parks in the hint wait — and a concurrent
// Close must interrupt that wait immediately (the wait selects on
// closeCh), not block shutdown for up to the hinted delay.
func TestReliableAgentCloseInterruptsHintDelaySleep(t *testing.T) {
	addr, acked := hintServer(t, func(int) AckInfo {
		return AckInfo{Stored: 0, Delay: 10 * time.Second} // healthy shed: retry in 10s
	})
	// No test Sleep injected: the wait must go through the real
	// closeCh-interruptible timer, which is exactly what is under test.
	ra := NewReliableAgent(addr, "rel-hint-close", ReliableConfig{MaxAttempts: 3})
	done := make(chan error, 1)
	go func() { done <- ra.Send(sampleBatch(3)) }()
	<-acked // the shed ack (with the 10s hint) reached the server side
	start := time.Now()
	if err := ra.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, errReliableClosed) {
			t.Errorf("Send = %v, want closed error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked 5s after Close; hint-delay wait ignores closeCh")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("Close took %v to unblock the hint wait", waited)
	}
}

// TestReliableAgentFinalAckDelayCarriesToNextFlush covers the flush
// boundary: a delay hint that arrives with the final ack of a flush has
// no in-loop wait left to serve it, so it must be carried — like credit
// already is — and honored at the start of the next flush.
func TestReliableAgentFinalAckDelayCarriesToNextFlush(t *testing.T) {
	const hinted = 150 * time.Millisecond
	addr, _ := hintServer(t, func(n int) AckInfo {
		return AckInfo{Stored: n, Delay: hinted} // store everything, ask for pacing
	})
	slept := make(chan time.Duration, 8)
	ra := NewReliableAgent(addr, "rel-hint-carry", ReliableConfig{
		Sleep: func(d time.Duration) { slept <- d },
	})
	defer ra.Close()
	if err := ra.Send(sampleBatch(3)); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	select {
	case d := <-slept:
		t.Fatalf("first flush slept %v before any hint existed", d)
	default:
	}
	if err := ra.Send(sampleBatch(2)); err != nil {
		t.Fatalf("second Send: %v", err)
	}
	select {
	case d := <-slept:
		if d != hinted {
			t.Errorf("second flush honored delay %v, want the carried hint %v", d, hinted)
		}
	default:
		t.Error("second flush ignored the delay hint from the previous flush's final ack")
	}
}
