package collector

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// Agent ships samples from one machine to a collector server over a single
// TCP connection. Methods are safe for concurrent use.
type Agent struct {
	mu     sync.Mutex
	conn   net.Conn
	name   string
	tenant string
	closed bool
	sent   int
	hint   AckInfo // throttle hint from the most recent ack
}

// Dial connects to the server at addr and introduces the agent by name,
// with no tenant field (a multi-tenant server routes it to the default
// tenant).
func Dial(addr, name string) (*Agent, error) {
	return DialTenant(addr, name, "")
}

// DialTenant connects to the server at addr and introduces the agent by
// name under the given tenant. An empty tenant emits the legacy hello.
func DialTenant(addr, name, tenant string) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("agent dial %s: %w", addr, err)
	}
	a, err := NewAgentConnTenant(conn, name, tenant)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgentConn wraps an existing connection (e.g. one end of net.Pipe in
// tests) as an agent, sending the hello frame.
func NewAgentConn(conn net.Conn, name string) (*Agent, error) {
	return NewAgentConnTenant(conn, name, "")
}

// NewAgentConnTenant wraps an existing connection as an agent for the
// given tenant, sending the hello frame.
func NewAgentConnTenant(conn net.Conn, name, tenant string) (*Agent, error) {
	a := &Agent{conn: conn, name: name, tenant: tenant}
	if err := WriteFrame(conn, Frame{Type: MsgHello, Payload: EncodeHello(name, tenant)}); err != nil {
		return nil, fmt.Errorf("agent hello: %w", err)
	}
	return a, nil
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.name }

// Tenant returns the tenant named in the agent's hello ("" = default).
func (a *Agent) Tenant() string { return a.tenant }

// Sent returns the number of samples successfully acknowledged.
func (a *Agent) Sent() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sent
}

// LastHint returns the throttle hint carried on the most recent ack —
// the server's advisory request to back off (Delay) and/or cap the next
// batch (Credit). The zero AckInfo means the server is not throttling.
func (a *Agent) LastHint() AckInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AckInfo{Delay: a.hint.Delay, Credit: a.hint.Credit}
}

// PartialSendError reports a Send that delivered only a leading prefix of
// the batch: the first Sent samples were acknowledged by the server, the
// rest were not. Err is the underlying cause — nil when the connection is
// healthy and the server simply acked fewer samples (its sink rejected the
// tail), non-nil when the transport failed partway. Callers can drop the
// acked prefix and resend only the remainder.
type PartialSendError struct {
	// Sent is how many leading samples of the batch the server acked.
	Sent int
	// Err is the underlying failure, nil for a clean partial ack.
	Err error
}

// Error describes the partial delivery.
func (e *PartialSendError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("collector: server acked %d samples, rest rejected", e.Sent)
	}
	return fmt.Sprintf("collector: delivery stopped after %d acked samples: %v", e.Sent, e.Err)
}

// Unwrap returns the underlying cause (nil for a clean partial ack).
func (e *PartialSendError) Unwrap() error { return e.Err }

// Send ships one batch of samples and waits for the server's ack. Batches
// larger than MaxBatch are split transparently. A failure after the server
// acked some samples is returned as a *PartialSendError carrying the acked
// count, so the caller can resume from that offset.
func (a *Agent) Send(batch []tsdb.Sample) error {
	sent := 0
	for len(batch) > 0 {
		n := len(batch)
		if n > MaxBatch {
			n = MaxBatch
		}
		acked, err := a.sendOne(batch[:n])
		if err != nil {
			if sent+acked > 0 {
				var pe *PartialSendError
				if errors.As(err, &pe) {
					err = pe.Err
				}
				return &PartialSendError{Sent: sent + acked, Err: err}
			}
			return err
		}
		sent += n
		batch = batch[n:]
	}
	return nil
}

// sendOne ships one wire-sized batch and returns how many samples the
// server acked. acked < len(batch) always comes with an error.
func (a *Agent) sendOne(batch []tsdb.Sample) (acked int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, errors.New("agent: closed")
	}
	payload, err := EncodeSamples(batch)
	if err != nil {
		return 0, fmt.Errorf("agent encode: %w", err)
	}
	if err := WriteFrame(a.conn, Frame{Type: MsgSamples, Payload: payload}); err != nil {
		return 0, fmt.Errorf("agent send: %w", err)
	}
	f, err := ReadFrame(a.conn)
	if err != nil {
		return 0, fmt.Errorf("agent await ack: %w", err)
	}
	if f.Type != MsgAck {
		return 0, fmt.Errorf("agent: expected ack, got %s", f.Type)
	}
	info, err := DecodeAckInfo(f.Payload)
	if err != nil {
		return 0, fmt.Errorf("agent decode ack: %w", err)
	}
	a.hint = info
	n := info.Stored
	if n > len(batch) {
		return 0, fmt.Errorf("agent: server acked %d of %d samples", n, len(batch))
	}
	a.sent += n
	if n != len(batch) {
		return n, &PartialSendError{Sent: n}
	}
	return n, nil
}

// Heartbeat sends a keepalive stamped with t.
func (a *Agent) Heartbeat(t time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("agent: closed")
	}
	return WriteFrame(a.conn, Frame{Type: MsgHeartbeat, Payload: EncodeHeartbeat(t)})
}

// StartHeartbeats sends a heartbeat every interval from a background
// goroutine until the returned stop function is called or a send fails.
// The stop function blocks until the loop has exited and is safe to call
// more than once. Interval ≤ 0 selects 30 seconds.
func (a *Agent) StartHeartbeats(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				if err := a.Heartbeat(now); err != nil {
					return // connection gone; the loop must not spin
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-stopped
	}
}

// Close sends a bye frame and closes the connection.
func (a *Agent) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	a.closed = true
	_ = WriteFrame(a.conn, Frame{Type: MsgBye})
	return a.conn.Close()
}

// Replay streams every sample of a machine's slice of a dataset to the
// server in time order, batching samplesPerBatch at a time — used to
// simulate a live agent from generated history.
func (a *Agent) Replay(ds *timeseries.Dataset, machine string, samplesPerBatch int) error {
	if samplesPerBatch <= 0 {
		samplesPerBatch = 256
	}
	var batch []tsdb.Sample
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := a.Send(batch)
		batch = batch[:0]
		return err
	}
	// Collect the machine's series.
	var series []*timeseries.Series
	for _, id := range ds.IDs() {
		if id.Machine == machine {
			series = append(series, ds.Get(id))
		}
	}
	if len(series) == 0 {
		return fmt.Errorf("agent replay: no measurements for machine %q", machine)
	}
	// Interleave by time so the store sees in-order appends per series.
	maxLen := 0
	for _, s := range series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, s := range series {
			if i >= s.Len() {
				continue
			}
			batch = append(batch, tsdb.Sample{ID: s.ID, Time: s.TimeAt(i), Value: s.Values[i]})
			if len(batch) >= samplesPerBatch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}
