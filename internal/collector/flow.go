package collector

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"mcorr/internal/tsdb"
)

// ShedPolicy selects what the server does with an incoming sample batch
// when the admission queue in front of the sink is full.
type ShedPolicy int

const (
	// ShedBlock applies backpressure: the handler waits for queue space,
	// which in turn stalls the agent's connection (it is waiting for the
	// ack). Nothing is dropped; a persistently slow sink slows every
	// agent down to its pace.
	ShedBlock ShedPolicy = iota
	// ShedDropOldest evicts the oldest queued batch to make room for the
	// new one. The evicted batch is acked with stored=0 plus a throttle
	// hint, so its agent keeps the samples buffered and retries later.
	ShedDropOldest
	// ShedReject refuses the new batch outright: it is acked with
	// stored=0 plus a throttle hint and never enqueued. Queued batches
	// are unaffected.
	ShedReject
)

// String returns the policy's flag spelling.
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDropOldest:
		return "drop-oldest"
	case ShedReject:
		return "reject"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy parses the -shed flag values "block", "drop-oldest",
// "reject".
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch strings.ToLower(s) {
	case "block":
		return ShedBlock, nil
	case "drop-oldest", "drop_oldest", "dropoldest":
		return ShedDropOldest, nil
	case "reject":
		return ShedReject, nil
	default:
		return 0, fmt.Errorf("collector: unknown shed policy %q (want block, drop-oldest or reject)", s)
	}
}

// FlowConfig tunes the server's flow-control and overload-protection
// layer. The zero value disables all of it: batches are appended to the
// sink inline from the handler, with no admission queue, no rate limits
// and no write deadline — the pre-flow-control behavior.
type FlowConfig struct {
	// QueueDepth bounds the admission queue between the connection
	// handlers and the sink (in batches). Zero disables the queue and
	// appends inline from each handler.
	QueueDepth int
	// Shed picks what happens to a batch when the queue is full
	// (default ShedBlock).
	Shed ShedPolicy
	// AgentRate is a per-agent token-bucket rate limit in samples per
	// second, keyed by agent name. Zero disables rate limiting.
	AgentRate float64
	// AgentBurst is the token-bucket capacity in samples
	// (0 = max(AgentRate, MaxBatch)).
	AgentBurst int
	// WriteTimeout bounds each ack write so a stalled agent that never
	// reads cannot pin a handler goroutine. Zero selects the server's
	// read-idle timeout (symmetric deadlines).
	WriteTimeout time.Duration
	// ThrottleDelay is the delay hint attached to shed or rate-limited
	// acks, and to successful acks once the queue passes 3/4 occupancy
	// (default 100ms).
	ThrottleDelay time.Duration
}

func (c FlowConfig) withDefaults() FlowConfig {
	if c.ThrottleDelay <= 0 {
		c.ThrottleDelay = 100 * time.Millisecond
	}
	if c.AgentRate > 0 && c.AgentBurst <= 0 {
		c.AgentBurst = int(c.AgentRate)
		if c.AgentBurst < MaxBatch {
			c.AgentBurst = MaxBatch
		}
	}
	return c
}

// appendJob is one queued sink append: the decoded batch, the sink it
// goes to (the connection's tenant sink, or the server's fixed sink),
// plus the reply channel its handler is waiting on. Each connection owns
// one job and one reply channel and reuses them for every batch, keeping
// the admission path allocation-free in steady state.
type appendJob struct {
	batch []tsdb.Sample
	sink  Sink
	reply chan appendResult
}

// appendResult is the sink's verdict on one queued batch.
type appendResult struct {
	stored  int
	err     error
	dropped bool // evicted by ShedDropOldest before reaching the sink
}

// tokenBucket is one agent's rate-limit state. Guarded by limiter.mu.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// limiter applies a per-agent token-bucket rate limit keyed by agent
// name. Cardinality is bounded by fleet size (one bucket per agent name,
// like the per-agent last-seen gauge).
type limiter struct {
	rate  float64 // tokens (samples) per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newLimiter(rate float64, burst int) *limiter {
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*tokenBucket)}
}

// take attempts to withdraw n tokens for the named agent at time now. On
// success it reports ok and the remaining whole tokens (the credit to
// advertise). On refusal it reports how long the agent should wait for
// the bucket to refill enough, and the currently available whole tokens.
func (l *limiter) take(agent string, n int, now time.Time) (ok bool, wait time.Duration, credit int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[agent]
	if !found {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[agent] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
	}
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		return true, 0, int(b.tokens)
	}
	wait = time.Duration((need - b.tokens) / l.rate * float64(time.Second))
	return false, wait, int(b.tokens)
}

// forget drops an agent's bucket (called when its last connection goes
// away, so the map tracks the live fleet, not its history).
func (l *limiter) forget(agent string) {
	l.mu.Lock()
	delete(l.buckets, agent)
	l.mu.Unlock()
}

// rateMeter keeps an exponentially weighted moving average of accepted
// samples per second for each agent, mirrored onto the per-agent rate
// gauge. Guarded by its own mutex; updates are per accepted batch, not
// per sample.
type rateMeter struct {
	mu    sync.Mutex
	rates map[string]*ewmaRate
}

type ewmaRate struct {
	rate float64
	last time.Time
}

// ewmaHalfLife is the decay half-life of the per-agent rate estimate.
const ewmaHalfLife = 10 * time.Second

func newRateMeter() *rateMeter {
	return &rateMeter{rates: make(map[string]*ewmaRate)}
}

// observe records n accepted samples for the agent at time now and
// returns the updated rate estimate in samples per second.
func (m *rateMeter) observe(agent string, n int, now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.rates[agent]
	if !ok {
		e = &ewmaRate{last: now}
		m.rates[agent] = e
	}
	dt := now.Sub(e.last).Seconds()
	e.last = now
	if dt <= 0 {
		// Same-instant batches accumulate; the next spaced batch decays.
		e.rate += float64(n)
		return e.rate
	}
	inst := float64(n) / dt
	alpha := 1 - halfLifeDecay(dt)
	e.rate += alpha * (inst - e.rate)
	return e.rate
}

// forget drops an agent's rate state.
func (m *rateMeter) forget(agent string) {
	m.mu.Lock()
	delete(m.rates, agent)
	m.mu.Unlock()
}

// halfLifeDecay returns the EWMA retention factor for a gap of dt
// seconds under ewmaHalfLife: 0.5 at exactly one half-life.
func halfLifeDecay(dt float64) float64 {
	return math.Exp2(-dt / ewmaHalfLife.Seconds())
}
