package collector

import "mcorr/internal/obs"

// Process-global collector metrics (mcorr_collector_*). These mirror the
// per-server ServerStats snapshot onto the ops surface; ServerStats stays
// per-instance for programmatic use, the registry aggregates across every
// server in the process. The per-agent last-seen gauge is labeled by agent
// name — cardinality is bounded by fleet size, never by sample values.
var (
	obsConnections = obs.Default().Gauge("mcorr_collector_connections",
		"Currently open agent connections.")
	obsConnsTotal = obs.Default().Counter("mcorr_collector_connections_total",
		"Agent connections accepted since process start.")
	obsFrames = obs.Default().Counter("mcorr_collector_frames_total",
		"Protocol frames read from agents.")
	obsDecodeErrors = obs.Default().Counter("mcorr_collector_decode_errors_total",
		"Frames that failed to decode (bad heartbeat/samples payloads).")
	obsReadErrors = obs.Default().Counter("mcorr_collector_read_errors_total",
		"Connection read failures (timeouts, resets, protocol errors).")
	obsSamples = obs.Default().Counter("mcorr_collector_samples_total",
		"Samples accepted into the sink.")
	obsHeartbeats = obs.Default().Counter("mcorr_collector_heartbeats_total",
		"Heartbeat frames received.")
	obsSinkErrors = obs.Default().Counter("mcorr_collector_sink_errors_total",
		"Batches rejected by the sink (e.g. stale samples).")
	obsAppendSeconds = obs.Default().Histogram("mcorr_collector_batch_append_seconds",
		"Latency of appending one decoded sample batch into the sink.",
		obs.TimeBuckets())
	obsAgentLastSeen = obs.Default().GaugeVec("mcorr_collector_agent_last_seen_seconds",
		"Unix time of the last frame received from each named agent.",
		"agent")
)
