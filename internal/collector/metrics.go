package collector

import "mcorr/internal/obs"

// Process-global collector metrics (mcorr_collector_*). These mirror the
// per-server ServerStats snapshot onto the ops surface; ServerStats stays
// per-instance for programmatic use, the registry aggregates across every
// server in the process. The per-agent last-seen gauge is labeled by agent
// name — cardinality is bounded by fleet size, never by sample values.
var (
	obsConnections = obs.Default().Gauge("mcorr_collector_connections",
		"Currently open agent connections.")
	obsConnsTotal = obs.Default().Counter("mcorr_collector_connections_total",
		"Agent connections accepted since process start.")
	obsFrames = obs.Default().Counter("mcorr_collector_frames_total",
		"Protocol frames read from agents.")
	obsDecodeErrors = obs.Default().Counter("mcorr_collector_decode_errors_total",
		"Frames that failed to decode (bad heartbeat/samples payloads).")
	obsReadErrors = obs.Default().Counter("mcorr_collector_read_errors_total",
		"Connection read failures (timeouts, resets, protocol errors).")
	obsSamples = obs.Default().Counter("mcorr_collector_samples_total",
		"Samples accepted into the sink.")
	obsHeartbeats = obs.Default().Counter("mcorr_collector_heartbeats_total",
		"Heartbeat frames received.")
	obsSinkErrors = obs.Default().Counter("mcorr_collector_sink_errors_total",
		"Batches rejected by the sink (e.g. stale samples).")
	obsAppendSeconds = obs.Default().Histogram("mcorr_collector_batch_append_seconds",
		"Latency of appending one decoded sample batch into the sink.",
		obs.TimeBuckets())
	obsAgentLastSeen = obs.Default().GaugeVec("mcorr_collector_agent_last_seen_seconds",
		"Unix time of the last frame received from each named agent.",
		"agent")
)

// Flow-control metrics (mcorr_flow_*). These cover the overload-protection
// layer across the ingest path: the admission queue in front of the sink,
// the shed policies, the per-agent token-bucket rate limits, and the
// throttle hints carried on acks. The per-agent rate gauge is labeled by
// agent name and deleted when the agent's last connection closes.
var (
	obsFlowQueueDepth = obs.Default().Gauge("mcorr_flow_queue_depth",
		"Batches currently waiting in the admission queue.")
	obsFlowQueueLimit = obs.Default().Gauge("mcorr_flow_queue_limit",
		"Configured admission queue capacity in batches (0 = no queue).")
	obsFlowShed = obs.Default().CounterVec("mcorr_flow_shed_total",
		"Batches shed by the admission queue, by reason (drop_oldest, reject).",
		"reason")
	obsFlowShedSamples = obs.Default().Counter("mcorr_flow_shed_samples_total",
		"Samples contained in shed batches.")
	obsFlowThrottled = obs.Default().Counter("mcorr_flow_throttled_total",
		"Batches refused whole by the per-agent rate limit.")
	obsFlowHints = obs.Default().Counter("mcorr_flow_throttle_hints_total",
		"Acks sent carrying a non-zero throttle hint (delay and/or credit).")
	obsFlowAgentRate = obs.Default().GaugeVec("mcorr_flow_agent_rate",
		"EWMA accepted-sample rate per agent, in samples per second.",
		"agent")
)

// Tenant-labeled flow metrics. Only servers with a tenant router emit
// these; cardinality is bounded by tenant count.
var (
	obsFlowTenantSamples = obs.Default().CounterVec("mcorr_flow_tenant_samples_total",
		"Samples accepted into each tenant's sink.",
		"tenant")
	obsFlowTenantThrottled = obs.Default().CounterVec("mcorr_flow_tenant_throttled_total",
		"Batches refused whole by a tenant's ingest rate limit.",
		"tenant")
)
