package collector

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// Protocol constants.
const (
	// Magic opens every frame.
	Magic uint32 = 0x4d434f52 // "MCOR"
	// Version is the protocol version byte.
	Version byte = 1
	// MaxFrameSize bounds a frame payload; larger frames are rejected to
	// protect the server from malformed or hostile peers.
	MaxFrameSize = 1 << 20
	// MaxBatch bounds samples per data frame.
	MaxBatch = 4096
)

// MsgType identifies a frame's payload.
type MsgType byte

const (
	// MsgHello introduces an agent (payload: agent name, optionally
	// followed by a NUL byte and a tenant name — see EncodeHello).
	MsgHello MsgType = iota + 1
	// MsgSamples carries a batch of samples.
	MsgSamples
	// MsgHeartbeat is a keepalive (payload: unix-nano timestamp).
	MsgHeartbeat
	// MsgBye announces a graceful disconnect (no payload).
	MsgBye
	// MsgAck confirms receipt of a samples frame (payload: count).
	MsgAck
)

// String returns the message type's name.
func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "hello"
	case MsgSamples:
		return "samples"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgBye:
		return "bye"
	case MsgAck:
		return "ack"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// Protocol errors.
var (
	ErrBadMagic   = errors.New("collector: bad frame magic")
	ErrBadVersion = errors.New("collector: unsupported protocol version")
	ErrFrameSize  = errors.New("collector: frame exceeds size limit")
	ErrTruncated  = errors.New("collector: truncated payload")
)

// Frame is one protocol message.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// WriteFrame serializes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return fmt.Errorf("write %s frame of %d bytes: %w", f.Type, len(f.Payload), ErrFrameSize)
	}
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame from r, enforcing the size limit.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF propagates untouched for clean close
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, fmt.Errorf("version %d: %w", hdr[4], ErrBadVersion)
	}
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("payload of %d bytes: %w", n, ErrFrameSize)
	}
	f := Frame{Type: MsgType(hdr[5])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("read %d-byte payload: %w", n, ErrTruncated)
		}
	}
	return f, nil
}

// EncodeSamples serializes a batch of samples into a MsgSamples payload.
// Layout: uint32 count, then per sample: string machine, string metric,
// int64 unix-nano, float64 value; strings are uint16 length + bytes.
func EncodeSamples(batch []tsdb.Sample) ([]byte, error) {
	if len(batch) > MaxBatch {
		return nil, fmt.Errorf("encode %d samples: exceeds batch limit %d", len(batch), MaxBatch)
	}
	buf := make([]byte, 4, 4+len(batch)*40)
	binary.BigEndian.PutUint32(buf, uint32(len(batch)))
	for _, s := range batch {
		var err error
		if buf, err = appendString(buf, s.ID.Machine); err != nil {
			return nil, err
		}
		if buf, err = appendString(buf, s.ID.Metric); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Time.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Value))
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("encoded batch of %d bytes: %w", len(buf), ErrFrameSize)
	}
	return buf, nil
}

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("string of %d bytes exceeds limit", len(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// DecodeSamples parses a MsgSamples payload.
func DecodeSamples(payload []byte) ([]tsdb.Sample, error) {
	if len(payload) < 4 {
		return nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(payload[:4])
	if count > MaxBatch {
		return nil, fmt.Errorf("batch of %d samples exceeds limit %d", count, MaxBatch)
	}
	p := payload[4:]
	out := make([]tsdb.Sample, 0, count)
	for i := uint32(0); i < count; i++ {
		machine, rest, err := readString(p)
		if err != nil {
			return nil, fmt.Errorf("sample %d machine: %w", i, err)
		}
		metric, rest, err := readString(rest)
		if err != nil {
			return nil, fmt.Errorf("sample %d metric: %w", i, err)
		}
		if len(rest) < 16 {
			return nil, fmt.Errorf("sample %d body: %w", i, ErrTruncated)
		}
		ns := int64(binary.BigEndian.Uint64(rest[:8]))
		val := math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
		out = append(out, tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: machine, Metric: metric},
			Time:  time.Unix(0, ns).UTC(),
			Value: val,
		})
		p = rest[16:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(p), ErrTruncated)
	}
	return out, nil
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) < 2+n {
		return "", nil, ErrTruncated
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// helloSep separates the agent name from the tenant name in a MsgHello
// payload. NUL cannot occur in either name, so the legacy payload (the
// bare agent name) stays unambiguous.
const helloSep = 0x00

// EncodeHello serializes a hello payload. With an empty tenant the
// payload is the bare agent name — byte-identical to the pre-tenant
// wire format, so old servers keep accepting new agents that don't opt
// into tenancy.
func EncodeHello(agent, tenant string) []byte {
	if tenant == "" {
		return []byte(agent)
	}
	buf := make([]byte, 0, len(agent)+1+len(tenant))
	buf = append(buf, agent...)
	buf = append(buf, helloSep)
	return append(buf, tenant...)
}

// DecodeHello parses a hello payload into the agent name and the tenant
// name. A payload with no separator is a legacy hello: the whole
// payload is the agent name and the tenant is "" (which servers map to
// the default tenant).
func DecodeHello(payload []byte) (agent, tenant string) {
	if i := bytes.IndexByte(payload, helloSep); i >= 0 {
		return string(payload[:i]), string(payload[i+1:])
	}
	return string(payload), ""
}

// EncodeHeartbeat serializes a heartbeat payload.
func EncodeHeartbeat(t time.Time) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(t.UnixNano()))
}

// DecodeHeartbeat parses a heartbeat payload.
func DecodeHeartbeat(payload []byte) (time.Time, error) {
	if len(payload) != 8 {
		return time.Time{}, ErrTruncated
	}
	return time.Unix(0, int64(binary.BigEndian.Uint64(payload))).UTC(), nil
}

// EncodeAck serializes a sample-count acknowledgment (the legacy 4-byte
// form, no throttle hint).
func EncodeAck(n int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(n))
}

// DecodeAck parses an acknowledgment payload, returning only the stored
// count. Both the legacy 4-byte form and the extended form carrying a
// throttle hint (see AckInfo) are accepted.
func DecodeAck(payload []byte) (int, error) {
	info, err := DecodeAckInfo(payload)
	return info.Stored, err
}

// AckInfo is the full content of an ack frame: the count of samples the
// server stored, plus an optional server-advertised throttle hint. The
// hint is advisory flow control — a saturated server asks the agent to
// back off (Delay) and/or cap its next batch (Credit) instead of being
// hammered with immediate retries.
type AckInfo struct {
	// Stored is how many leading samples of the batch the server stored.
	Stored int
	// Delay asks the agent to wait this long before its next send.
	// Zero means no throttling requested.
	Delay time.Duration
	// Credit caps the number of samples the server is willing to accept
	// in the agent's next batch. Zero means no cap.
	Credit int
}

// Throttled reports whether the ack carries a non-zero throttle hint.
func (a AckInfo) Throttled() bool { return a.Delay > 0 || a.Credit > 0 }

// ackHintSize is the wire size of the extended ack payload: 4-byte stored
// count + 4-byte delay (milliseconds) + 4-byte credit.
const ackHintSize = 12

// maxAckDelayMillis caps the encodable delay hint (~49 days is absurd;
// this keeps the uint32 wire field well-defined for any Duration input).
const maxAckDelayMillis = 1<<32 - 1

// EncodeAckInfo serializes an acknowledgment. When the hint is zero the
// legacy 4-byte form is emitted, so agents that predate throttle hints
// interoperate with a server that never needs to throttle; the extended
// 12-byte form is used only when a hint is present.
func EncodeAckInfo(info AckInfo) []byte {
	if !info.Throttled() {
		return EncodeAck(info.Stored)
	}
	buf := make([]byte, ackHintSize)
	binary.BigEndian.PutUint32(buf[0:4], uint32(info.Stored))
	millis := info.Delay.Milliseconds()
	if millis > maxAckDelayMillis {
		millis = maxAckDelayMillis
	}
	if millis == 0 && info.Delay > 0 {
		millis = 1 // sub-millisecond hints round up, never down to "none"
	}
	binary.BigEndian.PutUint32(buf[4:8], uint32(millis))
	binary.BigEndian.PutUint32(buf[8:12], uint32(info.Credit))
	return buf
}

// DecodeAckInfo parses an acknowledgment payload in either form: the
// legacy 4-byte stored count, or the extended count + throttle hint.
func DecodeAckInfo(payload []byte) (AckInfo, error) {
	switch len(payload) {
	case 4:
		return AckInfo{Stored: int(binary.BigEndian.Uint32(payload))}, nil
	case ackHintSize:
		return AckInfo{
			Stored: int(binary.BigEndian.Uint32(payload[0:4])),
			Delay:  time.Duration(binary.BigEndian.Uint32(payload[4:8])) * time.Millisecond,
			Credit: int(binary.BigEndian.Uint32(payload[8:12])),
		}, nil
	default:
		return AckInfo{}, ErrTruncated
	}
}
