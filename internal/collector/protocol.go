package collector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// Protocol constants.
const (
	// Magic opens every frame.
	Magic uint32 = 0x4d434f52 // "MCOR"
	// Version is the protocol version byte.
	Version byte = 1
	// MaxFrameSize bounds a frame payload; larger frames are rejected to
	// protect the server from malformed or hostile peers.
	MaxFrameSize = 1 << 20
	// MaxBatch bounds samples per data frame.
	MaxBatch = 4096
)

// MsgType identifies a frame's payload.
type MsgType byte

const (
	// MsgHello introduces an agent (payload: agent name).
	MsgHello MsgType = iota + 1
	// MsgSamples carries a batch of samples.
	MsgSamples
	// MsgHeartbeat is a keepalive (payload: unix-nano timestamp).
	MsgHeartbeat
	// MsgBye announces a graceful disconnect (no payload).
	MsgBye
	// MsgAck confirms receipt of a samples frame (payload: count).
	MsgAck
)

// String returns the message type's name.
func (m MsgType) String() string {
	switch m {
	case MsgHello:
		return "hello"
	case MsgSamples:
		return "samples"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgBye:
		return "bye"
	case MsgAck:
		return "ack"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// Protocol errors.
var (
	ErrBadMagic   = errors.New("collector: bad frame magic")
	ErrBadVersion = errors.New("collector: unsupported protocol version")
	ErrFrameSize  = errors.New("collector: frame exceeds size limit")
	ErrTruncated  = errors.New("collector: truncated payload")
)

// Frame is one protocol message.
type Frame struct {
	Type    MsgType
	Payload []byte
}

// WriteFrame serializes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return fmt.Errorf("write %s frame of %d bytes: %w", f.Type, len(f.Payload), ErrFrameSize)
	}
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = byte(f.Type)
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame from r, enforcing the size limit.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF propagates untouched for clean close
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if hdr[4] != Version {
		return Frame{}, fmt.Errorf("version %d: %w", hdr[4], ErrBadVersion)
	}
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("payload of %d bytes: %w", n, ErrFrameSize)
	}
	f := Frame{Type: MsgType(hdr[5])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("read %d-byte payload: %w", n, ErrTruncated)
		}
	}
	return f, nil
}

// EncodeSamples serializes a batch of samples into a MsgSamples payload.
// Layout: uint32 count, then per sample: string machine, string metric,
// int64 unix-nano, float64 value; strings are uint16 length + bytes.
func EncodeSamples(batch []tsdb.Sample) ([]byte, error) {
	if len(batch) > MaxBatch {
		return nil, fmt.Errorf("encode %d samples: exceeds batch limit %d", len(batch), MaxBatch)
	}
	buf := make([]byte, 4, 4+len(batch)*40)
	binary.BigEndian.PutUint32(buf, uint32(len(batch)))
	for _, s := range batch {
		var err error
		if buf, err = appendString(buf, s.ID.Machine); err != nil {
			return nil, err
		}
		if buf, err = appendString(buf, s.ID.Metric); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Time.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Value))
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("encoded batch of %d bytes: %w", len(buf), ErrFrameSize)
	}
	return buf, nil
}

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("string of %d bytes exceeds limit", len(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// DecodeSamples parses a MsgSamples payload.
func DecodeSamples(payload []byte) ([]tsdb.Sample, error) {
	if len(payload) < 4 {
		return nil, ErrTruncated
	}
	count := binary.BigEndian.Uint32(payload[:4])
	if count > MaxBatch {
		return nil, fmt.Errorf("batch of %d samples exceeds limit %d", count, MaxBatch)
	}
	p := payload[4:]
	out := make([]tsdb.Sample, 0, count)
	for i := uint32(0); i < count; i++ {
		machine, rest, err := readString(p)
		if err != nil {
			return nil, fmt.Errorf("sample %d machine: %w", i, err)
		}
		metric, rest, err := readString(rest)
		if err != nil {
			return nil, fmt.Errorf("sample %d metric: %w", i, err)
		}
		if len(rest) < 16 {
			return nil, fmt.Errorf("sample %d body: %w", i, ErrTruncated)
		}
		ns := int64(binary.BigEndian.Uint64(rest[:8]))
		val := math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
		out = append(out, tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: machine, Metric: metric},
			Time:  time.Unix(0, ns).UTC(),
			Value: val,
		})
		p = rest[16:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(p), ErrTruncated)
	}
	return out, nil
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) < 2+n {
		return "", nil, ErrTruncated
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// EncodeHeartbeat serializes a heartbeat payload.
func EncodeHeartbeat(t time.Time) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(t.UnixNano()))
}

// DecodeHeartbeat parses a heartbeat payload.
func DecodeHeartbeat(payload []byte) (time.Time, error) {
	if len(payload) != 8 {
		return time.Time{}, ErrTruncated
	}
	return time.Unix(0, int64(binary.BigEndian.Uint64(payload))).UTC(), nil
}

// EncodeAck serializes a sample-count acknowledgment.
func EncodeAck(n int) []byte {
	return binary.BigEndian.AppendUint32(nil, uint32(n))
}

// DecodeAck parses an acknowledgment payload.
func DecodeAck(payload []byte) (int, error) {
	if len(payload) != 4 {
		return 0, ErrTruncated
	}
	return int(binary.BigEndian.Uint32(payload)), nil
}
