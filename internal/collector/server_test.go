package collector

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

func newTestServer(t *testing.T) (*Server, *tsdb.Store, string) {
	t.Helper()
	store, err := tsdb.NewStore(timeseries.SampleStep, 0)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store, addr.String()
}

func TestNewServerNilSink(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil sink: want error")
	}
}

func TestAgentSendsSamples(t *testing.T) {
	srv, store, addr := newTestServer(t)
	agent, err := Dial(addr, "srv-01")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()
	batch := sampleBatch(20)
	if err := agent.Send(batch); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if agent.Sent() != 20 {
		t.Errorf("Sent = %d", agent.Sent())
	}
	if got := store.Len(batch[0].ID); got != 20 {
		t.Errorf("store has %d samples, want 20", got)
	}
	if err := agent.Heartbeat(time.Now()); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	agent.Close()
	// The server processes bye and tears down; stats settle.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Connections == 0 && st.Samples == 20 && st.Heartbeats == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("stats never settled: %+v", srv.Stats())
}

func TestAgentLargeBatchSplits(t *testing.T) {
	_, store, addr := newTestServer(t)
	agent, err := Dial(addr, "srv-02")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()
	big := sampleBatch(MaxBatch + 100)
	if err := agent.Send(big); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got := store.Len(big[0].ID); got != MaxBatch+100 {
		t.Errorf("store has %d samples", got)
	}
}

func TestConcurrentAgents(t *testing.T) {
	_, store, addr := newTestServer(t)
	const agents = 8
	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ag, err := Dial(addr, fmt.Sprintf("srv-%02d", a))
			if err != nil {
				errs <- err
				return
			}
			defer ag.Close()
			batch := make([]tsdb.Sample, 100)
			for i := range batch {
				batch[i] = tsdb.Sample{
					ID:    timeseries.MeasurementID{Machine: fmt.Sprintf("srv-%02d", a), Metric: "cpu"},
					Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
					Value: float64(i),
				}
			}
			errs <- ag.Send(batch)
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("agent: %v", err)
		}
	}
	if got := len(store.IDs()); got != agents {
		t.Errorf("store has %d measurements, want %d", got, agents)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv, _, addr := newTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n garbage garbage")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The server should close the connection on the bad magic.
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server should close a garbage connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Errors > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("server never counted the protocol error")
}

func TestServerStaleSamplesAckZeroAndKeepConnection(t *testing.T) {
	_, store, addr := newTestServer(t)
	agent, err := Dial(addr, "srv-03")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()
	id := timeseries.MeasurementID{Machine: "srv-03", Metric: "cpu"}
	fresh := []tsdb.Sample{{ID: id, Time: timeseries.MonitoringStart.Add(time.Hour), Value: 1}}
	if err := agent.Send(fresh); err != nil {
		t.Fatalf("Send fresh: %v", err)
	}
	stale := []tsdb.Sample{{ID: id, Time: timeseries.MonitoringStart, Value: 2}}
	if err := agent.Send(stale); err == nil {
		t.Error("stale batch should be reported to the agent")
	}
	// The connection survives; a further fresh send works.
	fresh2 := []tsdb.Sample{{ID: id, Time: timeseries.MonitoringStart.Add(2 * time.Hour), Value: 3}}
	if err := agent.Send(fresh2); err != nil {
		t.Fatalf("Send after stale: %v", err)
	}
	// The store anchors at the first accepted sample (+1h), so +2h is
	// 10 steps later: 11 slots including the NaN-filled gap.
	if store.Len(id) != int(time.Hour/timeseries.SampleStep)+1 {
		t.Errorf("store length = %d", store.Len(id))
	}
}

func TestServerCloseIdempotentAndStopsAccept(t *testing.T) {
	srv, _, addr := newTestServer(t)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := Dial(addr, "late"); err == nil {
		t.Error("dial after close should fail")
	}
}

func TestAgentAfterCloseErrors(t *testing.T) {
	_, _, addr := newTestServer(t)
	agent, err := Dial(addr, "srv-04")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	agent.Close()
	if err := agent.Send(sampleBatch(1)); err == nil {
		t.Error("send after close: want error")
	}
	if err := agent.Heartbeat(time.Now()); err == nil {
		t.Error("heartbeat after close: want error")
	}
	if agent.Name() != "srv-04" {
		t.Errorf("Name = %q", agent.Name())
	}
}

func TestAgentReplayDataset(t *testing.T) {
	_, store, addr := newTestServer(t)
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "R", Machines: 2, Days: 1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	machine := simulator.MachineName("R", 0)
	agent, err := Dial(addr, machine)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()
	if err := agent.Replay(ds, machine, 500); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	id := timeseries.MeasurementID{Machine: machine, Metric: simulator.MetricCPU}
	if got := store.Len(id); got != timeseries.SamplesPerDay {
		t.Errorf("replayed %d samples, want %d", got, timeseries.SamplesPerDay)
	}
	// Replayed values match the source exactly.
	src := ds.Get(id)
	got, err := store.Query(id, src.Start, src.End())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := range src.Values {
		if got.Values[i] != src.Values[i] {
			t.Fatalf("value %d differs", i)
		}
	}
	// Replay of an unknown machine errors.
	if err := agent.Replay(ds, "nope", 10); err == nil {
		t.Error("unknown machine: want error")
	}
}

func TestServeOnClosedServer(t *testing.T) {
	store, _ := tsdb.NewStore(time.Minute, 0)
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve on closed server: want error")
	}
}

func TestServerIdleTimeout(t *testing.T) {
	store, _ := tsdb.NewStore(time.Minute, 0)
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetIdleTimeout(50 * time.Millisecond)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Send nothing; the server should drop us on idle timeout well before
	// our own 3-second read deadline fires.
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Error("idle connection should be dropped")
	} else if time.Since(start) > 2*time.Second {
		t.Error("server idle timeout never fired; the test hit its own deadline")
	}
}

func TestAgentHeartbeatLoop(t *testing.T) {
	srv, _, addr := newTestServer(t)
	agent, err := Dial(addr, "hb")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer agent.Close()
	stop := agent.StartHeartbeats(10 * time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Heartbeats >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	got := srv.Stats().Heartbeats
	if got < 3 {
		t.Fatalf("heartbeats = %d, want >= 3", got)
	}
	// After stop, no more heartbeats arrive.
	time.Sleep(50 * time.Millisecond)
	base := srv.Stats().Heartbeats
	time.Sleep(50 * time.Millisecond)
	if srv.Stats().Heartbeats != base {
		t.Error("heartbeats continued after stop")
	}
	// Sends still interleave safely with the (stopped) loop.
	if err := agent.Send(sampleBatch(5)); err != nil {
		t.Fatalf("Send after heartbeats: %v", err)
	}
}

func TestAgentHeartbeatLoopExitsOnClose(t *testing.T) {
	_, _, addr := newTestServer(t)
	agent, err := Dial(addr, "hb2")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	stop := agent.StartHeartbeats(5 * time.Millisecond)
	agent.Close()
	// The loop must terminate on its own once sends fail; stop must not
	// hang.
	doneCh := make(chan struct{})
	go func() { stop(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("stop hung after Close")
	}
}

func TestAgentStatuses(t *testing.T) {
	srv, _, addr := newTestServer(t)
	a1, err := Dial(addr, "status-a")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer a1.Close()
	a2, err := Dial(addr, "status-b")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer a2.Close()
	if err := a1.Send(sampleBatch(7)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sts := srv.AgentStatuses()
		if len(sts) == 2 && sts[0].Name == "status-a" && sts[0].Samples == 7 && sts[1].Name == "status-b" {
			if sts[0].Remote == "" || sts[0].LastFrame.Before(sts[0].ConnectedAt) {
				t.Fatalf("status fields wrong: %+v", sts[0])
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("statuses never settled: %+v", srv.AgentStatuses())
}
