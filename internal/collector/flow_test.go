package collector

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// countingSink records every sample it receives, keyed by identity, so
// tests can assert exactly-once delivery: a duplicate shows up as a key
// with count > 1 (a tsdb.Store would mask duplicates by rejecting them
// as stale).
type countingSink struct {
	mu    sync.Mutex
	seen  map[string]int
	total int
}

func newCountingSink() *countingSink { return &countingSink{seen: make(map[string]int)} }

func (c *countingSink) AppendBatch(batch []tsdb.Sample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range batch {
		key := fmt.Sprintf("%s|%s|%d", s.ID.Machine, s.ID.Metric, s.Time.UnixNano())
		c.seen[key]++
		c.total++
	}
	return nil
}

func (c *countingSink) duplicates() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dups []string
	for k, n := range c.seen {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s x%d", k, n))
		}
	}
	return dups
}

func (c *countingSink) counts() (unique, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen), c.total
}

// gatedSink blocks every AppendBatch until the test releases it, to
// simulate a slow sink: entered receives a token when a batch reaches the
// sink, release lets it through.
type gatedSink struct {
	next    Sink
	entered chan struct{}
	release chan struct{}
}

func (g *gatedSink) AppendBatch(batch []tsdb.Sample) error {
	g.entered <- struct{}{}
	<-g.release
	return g.next.AppendBatch(batch)
}

// newSinkServer starts a server over an arbitrary sink with the given
// flow config.
func newSinkServer(t *testing.T, sink Sink, flow FlowConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(sink, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetFlow(flow)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// batchFor builds n samples for one named machine with distinct times.
func batchFor(machine string, n int) []tsdb.Sample {
	out := make([]tsdb.Sample, n)
	for i := range out {
		out[i] = tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: machine, Metric: "cpu"},
			Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
			Value: float64(i),
		}
	}
	return out
}

// TestReliableAgentConcurrentSendExactlyOnce is the regression test for
// the duplicate-delivery race: concurrent Send calls used to each copy
// the full pending buffer, deliver overlapping prefixes, and both trim.
// With the single-flight flusher every accepted sample must reach the
// sink exactly once.
func TestReliableAgentConcurrentSendExactlyOnce(t *testing.T) {
	sink := newCountingSink()
	_, addr := newSinkServer(t, sink, FlowConfig{})
	ra := NewReliableAgent(addr, "rel-conc", ReliableConfig{Sleep: noSleep})
	defer ra.Close()

	const goroutines = 8
	const batches = 20
	const perBatch = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*batches)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]tsdb.Sample, perBatch)
				for i := range batch {
					batch[i] = tsdb.Sample{
						ID:    timeseries.MeasurementID{Machine: fmt.Sprintf("m%d", g), Metric: fmt.Sprintf("metric%d", b)},
						Time:  timeseries.MonitoringStart.Add(time.Duration(i) * timeseries.SampleStep),
						Value: float64(i),
					}
				}
				if err := ra.Send(batch); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Send: %v", err)
	}
	if err := ra.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if p := ra.Pending(); p != 0 {
		t.Errorf("Pending = %d after drain, want 0", p)
	}
	if d := ra.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0", d)
	}
	want := goroutines * batches * perBatch
	unique, total := sink.counts()
	if dups := sink.duplicates(); len(dups) != 0 {
		t.Errorf("duplicate deliveries: %v", dups)
	}
	if unique != want || total != want {
		t.Errorf("sink saw %d samples (%d unique), want exactly %d", total, unique, want)
	}
}

// TestReliableAgentCloseInterruptsBackoff: Close must wake a flusher
// sleeping in backoff instead of letting it run out its (long) delay.
func TestReliableAgentCloseInterruptsBackoff(t *testing.T) {
	// Unreachable address, 30s backoff, default (interruptible) sleep.
	ra := NewReliableAgent("127.0.0.1:1", "rel-int", ReliableConfig{
		MaxAttempts: 100, Backoff: 30 * time.Second, MaxBackoff: 30 * time.Second,
	})
	done := make(chan error, 1)
	go func() { done <- ra.Send(batchFor("m1", 1)) }()
	time.Sleep(50 * time.Millisecond) // let the flusher reach the backoff sleep
	if err := ra.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, errReliableClosed) {
			t.Errorf("Send after Close = %v, want closed error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked 5s after Close — backoff sleep not interrupted")
	}
}

// TestReliableAgentDialRacingCloseDoesNotLeak: a flusher mid-Dial when
// Close runs must close the freshly dialed connection instead of
// assigning it to the closed agent.
func TestReliableAgentDialRacingCloseDoesNotLeak(t *testing.T) {
	srv, _, addr := newTestServer(t)
	dialing := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	ra := NewReliableAgent(addr, "rel-leak", ReliableConfig{
		MaxAttempts: 1, Sleep: noSleep,
		Dial: func(addr, name string) (*Agent, error) {
			once.Do(func() { close(dialing) })
			<-release
			return Dial(addr, name)
		},
	})
	done := make(chan error, 1)
	go func() { done <- ra.Send(batchFor("m1", 1)) }()
	<-dialing
	if err := ra.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(release)
	if err := <-done; !errors.Is(err, errReliableClosed) {
		t.Errorf("Send = %v, want closed error", err)
	}
	// The dialed connection must be torn down, not left live.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Stats().Connections == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("connection leaked after Close raced Dial: %+v", srv.Stats())
}

// TestServerShedReject: with a full admission queue and the reject
// policy, a new batch is acked stored-0 with a throttle hint immediately
// — the handler never stalls on the slow sink.
func TestServerShedReject(t *testing.T) {
	gs := &gatedSink{next: newCountingSink(), entered: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	srv, addr := newSinkServer(t, gs, FlowConfig{QueueDepth: 1, Shed: ShedReject, ThrottleDelay: 80 * time.Millisecond})

	a1 := dialT(t, addr, "m1")
	a2 := dialT(t, addr, "m2")
	a3 := dialT(t, addr, "m3")

	r1 := make(chan error, 1)
	go func() { r1 <- a1.Send(batchFor("m1", 4)) }()
	<-gs.entered // batch 1 is inside the sink; the drainer is busy

	r2 := make(chan error, 1)
	go func() { r2 <- a2.Send(batchFor("m2", 4)) }()
	waitQueueLen(t, srv, 1) // batch 2 fills the queue

	// Batch 3 must be rejected promptly, while the sink is still stuck.
	err := a3.Send(batchFor("m3", 4))
	var pe *PartialSendError
	if !errors.As(err, &pe) || pe.Sent != 0 || pe.Err != nil {
		t.Fatalf("rejected Send = %v, want clean partial ack with Sent=0", err)
	}
	if hint := a3.LastHint(); hint.Delay != 80*time.Millisecond {
		t.Errorf("reject hint delay = %v, want 80ms", hint.Delay)
	}

	gs.release <- struct{}{}
	<-gs.entered
	gs.release <- struct{}{}
	if err := <-r1; err != nil {
		t.Errorf("queued batch 1: %v", err)
	}
	if err := <-r2; err != nil {
		t.Errorf("queued batch 2: %v", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
}

// TestServerShedDropOldest: the oldest queued batch is evicted (acked
// stored-0 with a hint) to make room for the newest.
func TestServerShedDropOldest(t *testing.T) {
	sink := newCountingSink()
	gs := &gatedSink{next: sink, entered: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	srv, addr := newSinkServer(t, gs, FlowConfig{QueueDepth: 1, Shed: ShedDropOldest, ThrottleDelay: 80 * time.Millisecond})

	a1 := dialT(t, addr, "m1")
	a2 := dialT(t, addr, "m2")
	a3 := dialT(t, addr, "m3")

	r1 := make(chan error, 1)
	go func() { r1 <- a1.Send(batchFor("m1", 4)) }()
	<-gs.entered

	r2 := make(chan error, 1)
	go func() { r2 <- a2.Send(batchFor("m2", 4)) }()
	waitQueueLen(t, srv, 1)

	r3 := make(chan error, 1)
	go func() { r3 <- a3.Send(batchFor("m3", 4)) }()

	// Batch 2 (the oldest queued) is evicted in favor of batch 3.
	var pe *PartialSendError
	if err := <-r2; !errors.As(err, &pe) || pe.Sent != 0 || pe.Err != nil {
		t.Fatalf("evicted Send = %v, want clean partial ack with Sent=0", err)
	}
	if hint := a2.LastHint(); hint.Delay == 0 {
		t.Error("evicted batch got no throttle hint")
	}

	gs.release <- struct{}{}
	<-gs.entered
	gs.release <- struct{}{}
	if err := <-r1; err != nil {
		t.Errorf("batch 1: %v", err)
	}
	if err := <-r3; err != nil {
		t.Errorf("batch 3: %v", err)
	}
	if st := srv.Stats(); st.Shed != 1 {
		t.Errorf("Shed = %d, want 1", st.Shed)
	}
	if _, total := sink.counts(); total != 8 {
		t.Errorf("sink saw %d samples, want 8 (batches 1 and 3)", total)
	}
}

// TestServerShedBlock: the block policy applies pure backpressure — every
// batch is delivered, nothing is shed, senders just wait.
func TestServerShedBlock(t *testing.T) {
	sink := newCountingSink()
	gs := &gatedSink{next: sink, entered: make(chan struct{}, 8), release: make(chan struct{}, 8)}
	srv, addr := newSinkServer(t, gs, FlowConfig{QueueDepth: 1, Shed: ShedBlock})

	const senders = 3
	errs := make(chan error, senders)
	for i := 0; i < senders; i++ {
		a := dialT(t, addr, fmt.Sprintf("m%d", i))
		go func(a *Agent, i int) { errs <- a.Send(batchFor(fmt.Sprintf("m%d", i), 4)) }(a, i)
	}
	for i := 0; i < senders; i++ {
		<-gs.entered
		gs.release <- struct{}{}
	}
	for i := 0; i < senders; i++ {
		if err := <-errs; err != nil {
			t.Errorf("Send: %v", err)
		}
	}
	if st := srv.Stats(); st.Shed != 0 {
		t.Errorf("Shed = %d, want 0", st.Shed)
	}
	if _, total := sink.counts(); total != senders*4 {
		t.Errorf("sink saw %d samples, want %d", total, senders*4)
	}
}

// TestServerAgentRateLimit: a batch over the per-agent token budget is
// refused whole with a retry-after hint, and counted as throttled.
func TestServerAgentRateLimit(t *testing.T) {
	sink := newCountingSink()
	srv, addr := newSinkServer(t, sink, FlowConfig{AgentRate: 1, AgentBurst: 30})
	a := dialT(t, addr, "m1")

	if err := a.Send(batchFor("m1", 30)); err != nil {
		t.Fatalf("within-budget Send: %v", err)
	}
	err := a.Send(batchFor("m1", 30))
	var pe *PartialSendError
	if !errors.As(err, &pe) || pe.Sent != 0 || pe.Err != nil {
		t.Fatalf("over-budget Send = %v, want clean partial ack with Sent=0", err)
	}
	if hint := a.LastHint(); hint.Delay <= 0 {
		t.Errorf("throttled ack carries no delay hint: %+v", hint)
	}
	if st := srv.Stats(); st.Throttled != 1 {
		t.Errorf("Throttled = %d, want 1", st.Throttled)
	}
	if _, total := sink.counts(); total != 30 {
		t.Errorf("sink saw %d samples, want 30", total)
	}
}

// TestServerAckWriteDeadline is the regression test for the unbounded
// ack write: a peer that sends samples but never reads its acks must not
// pin the handler goroutine forever.
func TestServerAckWriteDeadline(t *testing.T) {
	store, err := tsdb.NewStore(timeseries.SampleStep, 0)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	srv, err := NewServer(store, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetFlow(FlowConfig{WriteTimeout: 50 * time.Millisecond})

	client, server := net.Pipe() // synchronous: writes block until read
	defer client.Close()
	srv.mu.Lock()
	srv.conns[server] = &AgentStatus{Remote: "pipe", ConnectedAt: time.Now(), LastFrame: time.Now()}
	srv.stats.Connections++
	srv.mu.Unlock()
	done := make(chan struct{})
	go func() { srv.handle(server); close(done) }()

	if err := WriteFrame(client, Frame{Type: MsgHello, Payload: []byte("stall")}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	payload, err := EncodeSamples(batchFor("stall", 3))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := WriteFrame(client, Frame{Type: MsgSamples, Payload: payload}); err != nil {
		t.Fatalf("samples: %v", err)
	}
	// Never read the ack: the handler's write must hit its deadline.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked writing the ack after 5s — no write deadline")
	}
}

// dialT dials a plain agent and registers cleanup.
func dialT(t *testing.T, addr, name string) *Agent {
	t.Helper()
	a, err := Dial(addr, name)
	if err != nil {
		t.Fatalf("Dial %s: %v", name, err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// waitQueueLen polls the admission queue until it holds n batches.
func waitQueueLen(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.queue) == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue length never reached %d (have %d)", n, len(srv.queue))
}

func TestAckInfoRoundTrip(t *testing.T) {
	// No hint: the legacy 4-byte form, readable by DecodeAck.
	plain := EncodeAckInfo(AckInfo{Stored: 42})
	if len(plain) != 4 {
		t.Fatalf("hintless ack is %d bytes, want legacy 4", len(plain))
	}
	if n, err := DecodeAck(plain); err != nil || n != 42 {
		t.Fatalf("DecodeAck(legacy) = %d, %v", n, err)
	}

	// With a hint: the extended form round-trips both fields.
	want := AckInfo{Stored: 7, Delay: 250 * time.Millisecond, Credit: 1024}
	ext := EncodeAckInfo(want)
	if len(ext) != ackHintSize {
		t.Fatalf("hinted ack is %d bytes, want %d", len(ext), ackHintSize)
	}
	got, err := DecodeAckInfo(ext)
	if err != nil {
		t.Fatalf("DecodeAckInfo: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if n, err := DecodeAck(ext); err != nil || n != 7 {
		t.Errorf("DecodeAck(extended) = %d, %v; want 7", n, err)
	}

	// Sub-millisecond delays round up to 1ms rather than vanishing.
	subMS, err := DecodeAckInfo(EncodeAckInfo(AckInfo{Delay: 100 * time.Microsecond}))
	if err != nil || subMS.Delay != time.Millisecond {
		t.Errorf("sub-ms delay = %v, %v; want 1ms", subMS.Delay, err)
	}

	if _, err := DecodeAckInfo(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Errorf("7-byte ack: got %v, want ErrTruncated", err)
	}
}

func TestParseShedPolicy(t *testing.T) {
	for in, want := range map[string]ShedPolicy{
		"block": ShedBlock, "drop-oldest": ShedDropOldest, "Reject": ShedReject,
	} {
		got, err := ParseShedPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseShedPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if back, err := ParseShedPolicy(got.String()); err != nil || back != want {
			t.Errorf("String round trip of %v failed: %v, %v", want, back, err)
		}
	}
	if _, err := ParseShedPolicy("yolo"); err == nil {
		t.Error("unknown policy: want error")
	}
}

func TestLimiterRefillAndCredit(t *testing.T) {
	l := newLimiter(10, 20) // 10 samples/s, burst 20
	base := time.Unix(1000, 0)

	ok, _, credit := l.take("a", 15, base)
	if !ok || credit != 5 {
		t.Fatalf("first take: ok=%v credit=%d, want ok credit=5", ok, credit)
	}
	ok, wait, credit := l.take("a", 10, base)
	if ok {
		t.Fatal("over-budget take succeeded")
	}
	if wait != 500*time.Millisecond || credit != 5 {
		t.Errorf("refusal: wait=%v credit=%d, want 500ms credit=5", wait, credit)
	}
	// One second refills 10 tokens (5 + 10 = 15 >= 10).
	if ok, _, _ := l.take("a", 10, base.Add(time.Second)); !ok {
		t.Error("take after refill should succeed")
	}
	// The bucket caps at burst, and agents are independent.
	if ok, _, credit := l.take("b", 20, base); !ok || credit != 0 {
		t.Errorf("fresh agent: ok=%v credit=%d, want full burst available", ok, credit)
	}
	l.forget("a")
	if ok, _, _ := l.take("a", 20, base); !ok {
		t.Error("forgotten agent should restart with a full bucket")
	}
}

func TestRateMeterEWMA(t *testing.T) {
	if d := halfLifeDecay(ewmaHalfLife.Seconds()); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("decay at one half-life = %v, want 0.5", d)
	}
	m := newRateMeter()
	base := time.Unix(1000, 0)
	if r := m.observe("a", 10, base); r != 10 {
		t.Errorf("first observation rate = %v, want 10 (same-instant accumulate)", r)
	}
	// One half-life later at 1 sample/s instantaneous: halfway between.
	r := m.observe("a", 10, base.Add(ewmaHalfLife))
	if want := 10 + 0.5*(1-10.0); math.Abs(r-want) > 1e-9 {
		t.Errorf("rate after one half-life = %v, want %v", r, want)
	}
	m.forget("a")
	if r := m.observe("a", 4, base.Add(2*ewmaHalfLife)); r != 4 {
		t.Errorf("rate after forget = %v, want fresh 4", r)
	}
}

// BenchmarkFlowBookkeeping measures the per-batch flow-control overhead
// on the accept path — one token-bucket take plus one EWMA observation —
// which must stay allocation-free: it runs inside every handleSamples
// call when flow control is on.
func BenchmarkFlowBookkeeping(b *testing.B) {
	l := newLimiter(1e9, 1<<30)
	m := newRateMeter()
	now := time.Unix(1000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Millisecond)
		if ok, _, _ := l.take("agent", 64, now); !ok {
			b.Fatal("unexpected refusal on the happy path")
		}
		m.observe("agent", 64, now)
	}
}

// BenchmarkAckEncode covers the other per-batch cost flow control adds:
// encoding the ack in its legacy (un-throttled) and extended forms.
func BenchmarkAckEncode(b *testing.B) {
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncodeAckInfo(AckInfo{Stored: 64})
		}
	})
	b.Run("hint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			EncodeAckInfo(AckInfo{Stored: 64, Delay: time.Millisecond, Credit: 32})
		}
	})
}
