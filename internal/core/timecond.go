package core

import (
	"fmt"
	"sync"
	"time"

	"mcorr/internal/mathx"
)

// TimeConditioned is an extension of the paper's model addressing its own
// Figure-15/16 observation that peak hours are less predictable: instead
// of one transition matrix, it keeps one matrix per time-of-day bucket
// (all sharing a single grid), so "busy-hour dynamics" and "quiet-hour
// dynamics" no longer compete for the same rows. The Markov chain position
// is shared across buckets; only the matrix being read/updated switches.
type TimeConditioned struct {
	mu      sync.Mutex
	cfg     Config
	buckets int
	grid    *Grid
	mats    []*TransitionMatrix
	prev    int
	armed   bool
}

// TrainTimeConditioned builds a time-conditioned model from a regularly
// sampled history starting at start with the given step. buckets divides
// the day (e.g. 4 = six-hour quarters); it must divide evenly into 24
// hours of steps is not required — bucketing is by wall-clock hour.
func TrainTimeConditioned(history []mathx.Point2, start time.Time, step time.Duration, buckets int, cfg Config) (*TimeConditioned, error) {
	if buckets < 1 || buckets > 24 {
		return nil, fmt.Errorf("time-conditioned model with %d buckets: want 1..24", buckets)
	}
	if step <= 0 {
		return nil, fmt.Errorf("time-conditioned model with step %v", step)
	}
	cfg = cfg.withDefaults()
	if len(history) == 0 {
		return nil, fmt.Errorf("train time-conditioned: %w", ErrNoData)
	}
	grid, err := BuildGrid(history, cfg.Grid)
	if err != nil {
		return nil, fmt.Errorf("train time-conditioned: %w", err)
	}
	nx, ny := grid.Dims()
	tc := &TimeConditioned{cfg: cfg, buckets: buckets, grid: grid}
	for b := 0; b < buckets; b++ {
		kernel, err := NewKernel(cfg.Kernel, cfg.DecayW, nx, ny)
		if err != nil {
			return nil, fmt.Errorf("train time-conditioned: %w", err)
		}
		tm, err := NewTransitionMatrix(grid, kernel, cfg.UpdateRule, cfg.DirichletStrength)
		if err != nil {
			return nil, fmt.Errorf("train time-conditioned: %w", err)
		}
		tc.mats = append(tc.mats, tm)
	}
	// Replay the history, routing each transition to the bucket of its
	// destination time.
	prev, armed := -1, false
	for i, p := range history {
		cell, ok := grid.Locate(p)
		if !ok {
			armed = false
			continue
		}
		if armed {
			b := tc.bucketOf(start.Add(time.Duration(i) * step))
			if err := tc.mats[b].Observe(prev, cell); err != nil {
				return nil, fmt.Errorf("train time-conditioned: %w", err)
			}
		}
		prev, armed = cell, true
	}
	return tc, nil
}

// Buckets returns the number of time-of-day buckets.
func (tc *TimeConditioned) Buckets() int { return tc.buckets }

// NumCells returns the shared grid's cell count.
func (tc *TimeConditioned) NumCells() int { return tc.grid.NumCells() }

func (tc *TimeConditioned) bucketOf(t time.Time) int {
	return t.UTC().Hour() * tc.buckets / 24
}

// StepAt scores the observation p at wall-clock time t against the bucket
// t falls into, and (when the model is adaptive) updates that bucket's
// matrix. Grid growth is not performed by the time-conditioned variant;
// out-of-grid points are outliers.
func (tc *TimeConditioned) StepAt(t time.Time, p mathx.Point2) StepResult {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	cell, ok := tc.grid.Locate(p)
	if !ok {
		res := StepResult{Scored: tc.armed, OutOfGrid: true, Cell: -1}
		tc.armed = false
		return res
	}
	res := StepResult{Cell: cell}
	if tc.armed {
		tm := tc.mats[tc.bucketOf(t)]
		prob, fitness, err := tm.ScoreTransition(tc.prev, cell)
		if err == nil {
			res.Scored = true
			res.Prob = prob
			res.Fitness = fitness
		}
		if tc.cfg.Adaptive {
			_ = tm.Observe(tc.prev, cell)
		}
	}
	tc.prev, tc.armed = cell, true
	return res
}

// Reset clears the shared chain position.
func (tc *TimeConditioned) Reset() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.armed = false
}
