package core

import (
	"fmt"
	"math"
	"sync"

	"mcorr/internal/mathx"
)

// Config controls model construction and online behaviour. The zero value
// selects the documented defaults (which reproduce the paper's setup).
type Config struct {
	// Grid configures the adaptive discretization.
	Grid GridConfig
	// Kernel selects the spatial-closeness kernel; default KernelHarmonic
	// (the paper's, recovered from Figure 5).
	Kernel KernelKind
	// DecayW is the kernel decay rate w; default 2.
	DecayW float64
	// Lambda bounds online grid growth to Lambda average interval widths
	// beyond the current boundary (the paper's λ); default 3. A negative
	// value disables growth entirely (every out-of-grid point is an
	// outlier).
	Lambda float64
	// Adaptive enables online updating (grid growth + matrix updates) as
	// points are observed. Offline models only score.
	Adaptive bool
	// UpdateRule selects the matrix update rule; default UpdateKernelBayes.
	UpdateRule UpdateRule
	// DirichletStrength is the prior pseudo-count mass per row when
	// UpdateRule is UpdateDirichlet; default 10.
	DirichletStrength float64
	// OmitProbs skips computing the transition probability in Step:
	// StepResult.Prob reports zero and the scoring hot path touches no
	// normalizer (and thus no exponentials). Fitness is unaffected — it
	// ranks the raw row either way. The manager layer enables this
	// automatically when nothing consumes the probability (ProbDelta == 0).
	// Explicit reads (Score, TransitionProbability, Explain, RowInto) still
	// compute probabilities normally.
	OmitProbs bool
}

func (c Config) withDefaults() Config {
	if c.Kernel == 0 {
		c.Kernel = KernelHarmonic
	}
	if c.DecayW == 0 {
		c.DecayW = 2
	}
	if c.Lambda == 0 {
		c.Lambda = 3
	}
	if c.UpdateRule == 0 {
		c.UpdateRule = UpdateKernelBayes
	}
	if c.DirichletStrength == 0 {
		c.DirichletStrength = 10
	}
	return c
}

// StepResult reports what the model concluded about one new observation.
type StepResult struct {
	// Scored is false when no transition could be evaluated: the very
	// first observation, or the observation following an out-of-grid
	// outlier (the Markov chain restarts).
	Scored bool
	// Prob is P(x_t → x_{t+1}), the transition probability the paper
	// thresholds against δ. Zero for out-of-grid outliers.
	Prob float64
	// Fitness is the rank-based score Q ∈ [0, 1]; zero for outliers.
	Fitness float64
	// OutOfGrid reports that the observation fell outside the grid and
	// was rejected as an outlier (too far to grow the boundary).
	OutOfGrid bool
	// Cell is the grid cell the observation landed in, −1 when OutOfGrid.
	Cell int
	// Grown reports that the grid was extended to accommodate the
	// observation (adaptive models only).
	Grown bool
	// Steady reports that this observation entered or continued a frozen
	// self-transition run: as long as subsequent observations land in the
	// same cell, Step returns this exact result again (matrix updates are
	// deferred and coalesced until the run breaks). The manager's
	// incremental scheduler uses Steady plus SteadyBounds to skip
	// re-scoring pairs whose inputs provably repeat.
	Steady bool
}

// Stats summarizes a model's online history.
type Stats struct {
	Observations int // points seen by Step
	Scored       int // transitions scored
	Outliers     int // out-of-grid rejections
	Growths      int // grid extensions
	Updates      int // matrix updates applied
}

// Model is the paper's pairwise correlation model M = (G, V): a grid over
// the 2-D measurement space plus a transition probability matrix over its
// cells. Build one with Train, then feed the online stream through Step.
//
// Self-transition runs — consecutive observations in the same cell, the
// dominant steady-state pattern — are frozen: the first self-transition is
// scored fresh and its result cached (runRes); every continuation returns
// the cached result and defers its matrix update (runLen), and the deferred
// updates apply in one coalesced ObserveRun when the run breaks (cell
// change, outlier, gap, growth, Reset, SetAdaptive). Deferral is part of
// the model's defined update semantics, not an approximation: every scoring
// path — full, incremental, recovered from a checkpoint — defers the same
// way, so trajectories are bit-identical across them. One observable
// consequence: read-only views of the matrix (Score, TransitionProbability,
// Matrix, Explain) do not see a live run's deferred updates until the run
// breaks.
//
// Model is safe for concurrent use.
type Model struct {
	mu    sync.Mutex
	cfg   Config
	grid  *Grid
	tm    *TransitionMatrix
	prev  int
	armed bool // prev is valid
	stats Stats
	row   []float64 // scratch row buffer for Explain/Diagnose row reads

	// Frozen self-run state: runValid marks runRes as the cached result of
	// the live run in cell prev; runLen counts deferred adaptive updates
	// not yet applied to the matrix. runLen > 0 implies a live run.
	runValid bool
	runLen   int
	runRes   StepResult
}

// Train initializes the model from history data (the paper's snapshot of
// past monitoring data): it builds the grid, fills the matrix with the
// spatial-closeness prior, and replays every consecutive history
// transition through the Bayesian update.
func Train(history []mathx.Point2, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(history) == 0 {
		return nil, fmt.Errorf("train: %w", ErrNoData)
	}
	grid, err := BuildGrid(history, cfg.Grid)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	nx, ny := grid.Dims()
	kernel, err := NewKernel(cfg.Kernel, cfg.DecayW, nx, ny)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	tm, err := NewTransitionMatrix(grid, kernel, cfg.UpdateRule, cfg.DirichletStrength)
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	m := &Model{cfg: cfg, grid: grid, tm: tm, prev: -1}
	// Replay the history transitions (§4.2: "the updating procedure starts
	// from x_1 ... and is repeatedly executed").
	prev, armed := -1, false
	for _, p := range history {
		cell, ok := grid.Locate(p)
		if !ok {
			// NaN or boundary artifacts: restart the chain.
			armed = false
			continue
		}
		if armed {
			if err := tm.Observe(prev, cell); err != nil {
				return nil, fmt.Errorf("train replay: %w", err)
			}
			m.stats.Updates++
		}
		prev, armed = cell, true
	}
	return m, nil
}

// NewModelFromGrid builds a model over a caller-supplied grid with only the
// prior in its matrix — used by tests and by the paper's worked examples.
func NewModelFromGrid(grid *Grid, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	nx, ny := grid.Dims()
	kernel, err := NewKernel(cfg.Kernel, cfg.DecayW, nx, ny)
	if err != nil {
		return nil, err
	}
	tm, err := NewTransitionMatrix(grid, kernel, cfg.UpdateRule, cfg.DirichletStrength)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, grid: grid, tm: tm, prev: -1}, nil
}

// flushRunLocked applies any deferred self-run updates (one coalesced
// ObserveRun on the run's cell) and invalidates the frozen result. Callers
// hold m.mu. Every run break routes through here BEFORE the breaking event
// mutates geometry (growth) or scores a new transition, so deferred updates
// always land under the dims they were observed in.
func (m *Model) flushRunLocked() {
	if m.runLen > 0 {
		// Cannot fail: prev is a valid cell of the current dims.
		_ = m.tm.ObserveRun(m.prev, m.runLen)
		m.runLen = 0
	}
	m.runValid = false
}

// Step feeds one online observation through the model. It returns the
// transition probability and fitness score for the implied transition, and
// — when the model is adaptive — updates the matrix (and grows the grid if
// the point lies just beyond it).
func (m *Model) Step(p mathx.Point2) StepResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Observations++

	cell, ok := m.grid.Locate(p)
	var grown bool
	if !ok && m.cfg.Adaptive {
		if gr, grew := m.grid.GrowToInclude(p, m.cfg.Lambda); grew {
			// Deferred self-run updates belong to the old geometry; apply
			// them before the matrix is remapped.
			m.flushRunLocked()
			oldNy := m.tm.ny
			// Growth cannot fail here: the matrix dims track the grid.
			if err := m.tm.Grow(m.grid, gr); err != nil {
				// Inconsistent internal state would be a bug; surface it
				// loudly in the result rather than panicking.
				m.armed = false
				return StepResult{OutOfGrid: true, Cell: -1}
			}
			// Prepended intervals shift every pre-existing cell index (and
			// any Y growth changes the row stride); remap the chain
			// position so the next transition scores out of the right row.
			if m.armed {
				oxi, oyi := m.prev/oldNy, m.prev%oldNy
				m.prev = (oxi+gr.XLow)*m.tm.ny + (oyi + gr.YLow)
			}
			grown = true
			m.stats.Growths++
			cell, ok = m.grid.Locate(p)
		}
	}
	if !ok {
		// Outlier: zero probability and fitness, no update (paper §4.2),
		// and the chain restarts at the next in-grid point.
		m.flushRunLocked()
		m.stats.Outliers++
		res := StepResult{Scored: m.armed, OutOfGrid: true, Cell: -1}
		m.armed = false
		return res
	}

	if m.armed && m.runValid && cell == m.prev {
		// Frozen self-run continuation: the row cannot have changed since
		// runRes was scored (the run's own updates are deferred), so the
		// cached result repeats bit-for-bit. grown is never true here —
		// growth targets a cell outside the old grid, never the remapped
		// previous cell — and flushRunLocked above cleared runValid on
		// every growth path regardless.
		if m.cfg.Adaptive {
			m.runLen++
			m.stats.Updates++
		}
		m.stats.Scored++
		return m.runRes
	}
	// Any live run just broke: apply its deferred updates before scoring
	// the new transition out of the (now up-to-date) row.
	m.flushRunLocked()

	res := StepResult{Cell: cell, Grown: grown}
	if m.armed {
		// Softmax-free hot path: the rank comes straight from the raw row
		// and the probability (when wanted at all) from the cached
		// normalizer, so no probability row is materialized here.
		var prob, fitness float64
		var err error
		if m.cfg.OmitProbs {
			fitness, err = m.tm.FitnessAt(m.prev, cell)
		} else {
			prob, fitness, err = m.tm.ScoreTransition(m.prev, cell)
		}
		if err == nil {
			res.Scored = true
			res.Prob = prob
			res.Fitness = fitness
			m.stats.Scored++
		}
		if m.cfg.Adaptive {
			if cell == m.prev {
				// Entering a self-run: defer this update (and the run's
				// continuations) so the frozen result stays exact.
				m.runLen = 1
				m.stats.Updates++
			} else if err := m.tm.Observe(m.prev, cell); err == nil {
				m.stats.Updates++
			}
		}
		if res.Scored && cell == m.prev {
			res.Steady = true
			m.runRes = res
			m.runValid = true
		}
	}
	m.prev, m.armed = cell, true
	return res
}

// NoteSkipped records that the caller skipped re-scoring this model for an
// observation that provably repeats the live frozen self-run (both values
// stayed inside SteadyBounds). It mirrors the frozen-run branch of Step
// exactly: counters advance and, for adaptive models, the matrix update is
// deferred onto the run — a later flush is bit-identical to having called
// Step. It returns false, and records nothing, when no frozen run is live
// (the model was reset, re-armed or mutated since the caller cached its
// outcome); the caller must then re-score via Step.
func (m *Model) NoteSkipped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed || !m.runValid {
		return false
	}
	m.stats.Observations++
	m.stats.Scored++
	if m.cfg.Adaptive {
		m.runLen++
		m.stats.Updates++
	}
	return true
}

// SteadyBounds returns the half-open value bounds [xlo,xhi) × [ylo,yhi) of
// the cell the model's live frozen self-run occupies. While both series
// stay inside these bounds the next observation is guaranteed to land in
// the same cell and Step would return the frozen result — the contract the
// manager's incremental skip test is built on (a plain half-open comparison
// replicates Axis.Locate exactly, including NaN rejection). ok is false
// when no frozen run is live.
func (m *Model) SteadyBounds() (xlo, xhi, ylo, yhi float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed || !m.runValid {
		return 0, 0, 0, 0, false
	}
	xlo, xhi, ylo, yhi = m.grid.CellBounds(m.prev)
	return xlo, xhi, ylo, yhi, true
}

// Score evaluates the transition from the model's current position to p
// without mutating anything — the pure "offline" read used when comparing
// models. It returns ok=false when no transition can be scored.
func (m *Model) Score(p mathx.Point2) (prob, fitness float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed {
		return 0, 0, false
	}
	cell, in := m.grid.Locate(p)
	if !in {
		return 0, 0, true // a scoreable observation with zero probability
	}
	prob, fitness, err := m.tm.ScoreTransition(m.prev, cell)
	if err != nil {
		return 0, 0, false
	}
	return prob, fitness, true
}

// Reset clears the Markov chain position (e.g. across a data gap) without
// touching the learned matrix. A live self-run breaks: its deferred
// updates apply first.
func (m *Model) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushRunLocked()
	m.armed = false
}

// SetAdaptive switches online updating on or off. A live self-run breaks:
// updates deferred under the old regime apply before the flip.
func (m *Model) SetAdaptive(adaptive bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushRunLocked()
	m.cfg.Adaptive = adaptive
}

// Adaptive reports whether online updating is enabled.
func (m *Model) Adaptive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Adaptive
}

// Grid returns the model's grid. The returned value is shared; callers
// must not mutate it.
func (m *Model) Grid() *Grid {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grid
}

// Matrix returns the model's transition matrix. The returned value is
// shared; callers must not mutate it concurrently with Step.
func (m *Model) Matrix() *TransitionMatrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tm
}

// NumCells returns s, the current number of grid cells.
func (m *Model) NumCells() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tm.NumCells()
}

// Stats returns a snapshot of the model's online counters.
func (m *Model) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// TransitionProbability returns P(c_i → c_j) for explicit cells.
func (m *Model) TransitionProbability(i, j int) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tm.Prob(i, j)
}

// MeanFitness replays pts through a read-only scoring pass (no updates)
// and returns the average fitness — a quick offline quality measure.
func (m *Model) MeanFitness(pts []mathx.Point2) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, armed := -1, false
	var sum float64
	var n int
	for _, p := range pts {
		cell, ok := m.grid.Locate(p)
		if !ok {
			if armed {
				n++ // scored as 0
			}
			armed = false
			continue
		}
		if armed {
			// Rank-only read: no probability is needed, so the softmax-free
			// path performs no exponentials at all.
			fitness, err := m.tm.FitnessAt(prev, cell)
			if err == nil {
				sum += fitness
				n++
			}
		}
		prev, armed = cell, true
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
