package core

import (
	"math"
	"math/rand"
	"testing"

	"mcorr/internal/mathx"
)

// checkRowsStochastic asserts the core invariant of the transition matrix:
// every row is a probability distribution — non-negative entries summing
// to 1 within 1e-9 — no matter what sequence of updates produced it.
func checkRowsStochastic(t *testing.T, tm *TransitionMatrix, context string) {
	t.Helper()
	n := tm.NumCells()
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		row, err := tm.RowInto(row, i)
		if err != nil {
			t.Fatalf("%s: RowInto(%d): %v", context, i, err)
		}
		var sum float64
		for j, p := range row {
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("%s: V[%d][%d] = %v, not a probability", context, i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: row %d sums to %.15f, want 1±1e-9", context, i, sum)
		}
	}
}

// TestTransitionRowsSumToOneUnderRandomObserve drives matrices of random
// shapes and both update rules through random Observe sequences; rows must
// stay stochastic throughout.
func TestTransitionRowsSumToOneUnderRandomObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		nx, ny := 2+rng.Intn(5), 2+rng.Intn(5)
		rule := UpdateKernelBayes
		if trial%2 == 1 {
			rule = UpdateDirichlet
		}
		grid, err := UniformGrid(0, float64(nx), nx, 0, float64(ny), ny)
		if err != nil {
			t.Fatal(err)
		}
		kernel, err := NewKernel(KernelHarmonic, 2, nx, ny)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := NewTransitionMatrix(grid, kernel, rule, 25)
		if err != nil {
			t.Fatal(err)
		}
		n := tm.NumCells()
		for step := 0; step < 300; step++ {
			if err := tm.Observe(rng.Intn(n), rng.Intn(n)); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		checkRowsStochastic(t, tm, rule.String())
	}
}

// TestAdaptiveModelInvariantsUnderRandomWalk drives a full adaptive model
// (online updates + grid growth) with a random walk that repeatedly
// escapes the trained range, forcing Grow. After every step: the matrix
// rows stay stochastic, and every produced fitness lies in [1/s, 1] — the
// extrema of the paper's rank-based score Q = 1 − (π(c_h) − 1)/s.
func TestAdaptiveModelInvariantsUnderRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	history := make([]mathx.Point2, 400)
	for i := range history {
		history[i] = mathx.Point2{X: 40 + rng.Float64()*20, Y: 40 + rng.Float64()*20}
	}
	m, err := Train(history, Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	x, y := 50.0, 50.0
	grew := 0
	for step := 0; step < 500; step++ {
		// Heavy-tailed steps so the walk regularly leaves the grid.
		x += rng.NormFloat64() * 15
		y += rng.NormFloat64() * 15
		res := m.Step(mathx.Point2{X: x, Y: y})
		if res.Grown {
			grew++
		}
		switch {
		case res.Scored && res.OutOfGrid:
			// Outliers score exactly 0 by definition (paper §4.2).
			if res.Fitness != 0 {
				t.Fatalf("step %d: outlier fitness %v, want 0", step, res.Fitness)
			}
		case res.Scored:
			s := float64(m.NumCells())
			lo := 1 / s
			if res.Fitness < lo-1e-12 || res.Fitness > 1+1e-12 {
				t.Fatalf("step %d: fitness %v outside [1/%v, 1]", step, res.Fitness, s)
			}
		}
		if step%50 == 0 {
			checkRowsStochastic(t, m.Matrix(), "adaptive walk")
		}
	}
	if grew == 0 {
		t.Fatal("walk never grew the grid; invariant not exercised under Grow")
	}
	checkRowsStochastic(t, m.Matrix(), "final")
}

// TestFitnessBoundsTableDriven pins the fitness extrema and the Figure 11
// anchor values: for a row of s cells, the best-ranked cell scores exactly
// 1 and the worst exactly 1/s, with the published intermediate scores.
func TestFitnessBoundsTableDriven(t *testing.T) {
	cases := []struct {
		name string
		row  []float64
		want []float64 // fitness per destination cell, paper precision
	}{
		{
			// Figure 11's worked example (s = 6).
			name: "figure-11",
			row:  []float64{0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094},
			want: []float64{0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667},
		},
		{
			// Uniform ties broken by index: ranks are 1..4 in order.
			name: "uniform-ties",
			row:  []float64{0.25, 0.25, 0.25, 0.25},
			want: []float64{1.0000, 0.7500, 0.5000, 0.2500},
		},
		{
			// Two cells: fitness can only be 1 or 1/2.
			name: "binary",
			row:  []float64{0.9, 0.1},
			want: []float64{1.0000, 0.5000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := float64(len(tc.row))
			for h, want := range tc.want {
				got := FitnessFromRow(tc.row, h)
				if math.Abs(got-want) > 5e-5 {
					t.Errorf("fitness(c%d) = %.4f, want %.4f", h+1, got, want)
				}
				if got < 1/s-1e-12 || got > 1+1e-12 {
					t.Errorf("fitness(c%d) = %v outside [1/s, 1]", h+1, got)
				}
			}
		})
	}
}
