package core

import (
	"math"
	"testing"

	"mcorr/internal/mathx"
)

func TestKernelKindString(t *testing.T) {
	if KernelHarmonic.String() != "harmonic" || KernelProduct.String() != "product" || KernelUniform.String() != "uniform" {
		t.Error("kernel names wrong")
	}
	if KernelKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(KernelKind(42), 2, 3, 3); err == nil {
		t.Error("unknown kind: want error")
	}
	if _, err := NewKernel(KernelHarmonic, 1, 3, 3); err == nil {
		t.Error("w <= 1: want error")
	}
	if _, err := NewKernel(KernelHarmonic, 2, 0, 3); err == nil {
		t.Error("empty grid: want error")
	}
	// Uniform kernel ignores w entirely.
	if _, err := NewKernel(KernelUniform, 0, 2, 2); err != nil {
		t.Errorf("uniform kernel with w=0: %v", err)
	}
}

func TestHarmonicKernelWeights(t *testing.T) {
	k, err := NewKernel(KernelHarmonic, 2, 3, 3)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	cases := []struct {
		dx, dy int
		want   float64
	}{
		{0, 0, 1},
		{1, 0, 2.0 / 3},
		{0, 1, 2.0 / 3},
		{1, 1, 0.5},
		{2, 0, 0.4},
		{2, 1, 1.0 / 3},
		{2, 2, 0.25},
		{-1, -1, 0.5}, // distances are absolute
	}
	for _, c := range cases {
		if got := k.Weight(c.dx, c.dy); !mathx.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Weight(%d,%d) = %g, want %g", c.dx, c.dy, got, c.want)
		}
		if got := k.LogWeight(c.dx, c.dy); !mathx.AlmostEqual(got, math.Log(c.want), 1e-12) {
			t.Errorf("LogWeight(%d,%d) = %g", c.dx, c.dy, got)
		}
	}
	if k.W() != 2 || k.Kind() != KernelHarmonic {
		t.Error("accessors wrong")
	}
	if k.StepPenalty() != math.Log(2) {
		t.Errorf("StepPenalty = %g", k.StepPenalty())
	}
}

func TestProductKernel(t *testing.T) {
	k, err := NewKernel(KernelProduct, 2, 4, 4)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	if got := k.Weight(1, 2); !mathx.AlmostEqual(got, 0.125, 1e-12) {
		t.Errorf("product Weight(1,2) = %g, want 1/8", got)
	}
	if got := k.LogWeight(3, 0); !mathx.AlmostEqual(got, -3*math.Log(2), 1e-12) {
		t.Errorf("product LogWeight(3,0) = %g", got)
	}
}

func TestUniformKernel(t *testing.T) {
	k, err := NewKernel(KernelUniform, 2, 3, 3)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	if k.Weight(0, 0) != 1 || k.Weight(2, 2) != 1 {
		t.Error("uniform kernel should always weight 1")
	}
	if k.LogWeight(2, 1) != 0 || k.StepPenalty() != 0 {
		t.Error("uniform log weights should be 0")
	}
}

func TestKernelResizeGrowsTables(t *testing.T) {
	k, err := NewKernel(KernelHarmonic, 2, 2, 2)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	k.resize(5, 6)
	// Distance 4 on x needs powX[4] = 16.
	if got := k.Weight(4, 0); !mathx.AlmostEqual(got, 2.0/17, 1e-12) {
		t.Errorf("after resize Weight(4,0) = %g, want 2/17", got)
	}
}
