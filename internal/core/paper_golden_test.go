package core

import (
	"math"
	"testing"
)

// fig5Want is the transition probability matrix published in Figure 5 of
// the paper (percentages over a 3×3 grid, cells c1..c9 row-major).
var fig5Want = [9][9]float64{
	{21.98, 14.65, 8.79, 14.65, 10.99, 7.33, 8.79, 7.33, 5.49},
	{13.16, 19.74, 13.16, 9.87, 13.16, 9.87, 6.58, 7.89, 6.58},
	{8.79, 14.65, 21.98, 7.33, 10.99, 14.65, 5.49, 7.33, 8.79},
	{13.16, 9.87, 6.58, 19.74, 13.16, 7.89, 13.16, 9.87, 6.58},
	{8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82},
	{6.58, 9.87, 13.16, 7.89, 13.16, 19.74, 6.58, 9.87, 13.16},
	{8.79, 7.33, 5.49, 14.65, 10.99, 7.33, 21.98, 14.65, 8.79},
	{6.58, 7.89, 6.58, 9.87, 13.16, 9.87, 13.16, 19.74, 13.16},
	{5.49, 7.33, 8.79, 7.33, 10.99, 14.65, 8.79, 14.65, 21.98},
}

// TestFig5ExactPriorMatrix checks that the harmonic kernel with w=2
// reproduces the paper's published 9×9 prior transition matrix to the
// two decimal places printed in Figure 5.
func TestFig5ExactPriorMatrix(t *testing.T) {
	grid, err := UniformGrid(0, 3, 3, 0, 3, 3)
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	kernel, err := NewKernel(KernelHarmonic, 2, 3, 3)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	tm, err := NewTransitionMatrix(grid, kernel, UpdateKernelBayes, 0)
	if err != nil {
		t.Fatalf("NewTransitionMatrix: %v", err)
	}
	for i := 0; i < 9; i++ {
		row, err := tm.RowInto(nil, i)
		if err != nil {
			t.Fatalf("RowInto(%d): %v", i, err)
		}
		for j := 0; j < 9; j++ {
			gotPct := math.Round(row[j]*10000) / 100
			if math.Abs(gotPct-fig5Want[i][j]) > 0.011 {
				t.Errorf("V[%d][%d] = %.2f%%, paper says %.2f%%", i+1, j+1, gotPct, fig5Want[i][j])
			}
		}
	}
}

// TestFig5DirichletPriorMatchesToo: the Dirichlet variant shares the same
// prior shape before any observations.
func TestFig5DirichletPriorMatchesToo(t *testing.T) {
	grid, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	kernel, _ := NewKernel(KernelHarmonic, 2, 3, 3)
	tm, err := NewTransitionMatrix(grid, kernel, UpdateDirichlet, 25)
	if err != nil {
		t.Fatalf("NewTransitionMatrix: %v", err)
	}
	row, err := tm.RowInto(nil, 4) // center cell c5
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	want := []float64{8.82, 11.76, 8.82, 11.76, 17.65, 11.76, 8.82, 11.76, 8.82}
	for j, w := range want {
		if math.Abs(row[j]*100-w) > 0.011 {
			t.Errorf("Dirichlet prior V[5][%d] = %.2f%%, want %.2f%%", j+1, row[j]*100, w)
		}
	}
}

// TestFig11ExactFitness reproduces the worked fitness-score example of
// Figure 11: a 6-cell row with the published probabilities must yield the
// published scores for every possible destination cell.
func TestFig11ExactFitness(t *testing.T) {
	row := []float64{0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094}
	wantRank := []int{5, 2, 3, 1, 4, 6}
	wantFitness := []float64{0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667}
	for h := range row {
		if got := RankInRow(row, h); got != wantRank[h] {
			t.Errorf("rank(c%d) = %d, paper says %d", h+1, got, wantRank[h])
		}
		if got := FitnessFromRow(row, h); math.Abs(got-wantFitness[h]) > 5e-5 {
			t.Errorf("fitness(c%d) = %.4f, paper says %.4f", h+1, got, wantFitness[h])
		}
	}
}

// TestFig4TransitionDistribution: row c5 of the 3×3 prior is a valid
// discrete distribution peaked at c5 with its four edge-neighbors next —
// the shape sketched in Figure 4.
func TestFig4TransitionDistribution(t *testing.T) {
	grid, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	kernel, _ := NewKernel(KernelHarmonic, 2, 3, 3)
	tm, _ := NewTransitionMatrix(grid, kernel, UpdateKernelBayes, 0)
	row, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	var sum float64
	for _, p := range row {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("row sums to %g", sum)
	}
	if RankInRow(row, 4) != 1 {
		t.Error("self-transition should rank first")
	}
	for _, edge := range []int{1, 3, 5, 7} {
		for _, corner := range []int{0, 2, 6, 8} {
			if row[edge] <= row[corner] {
				t.Errorf("edge neighbor %d (%.4f) should outrank corner %d (%.4f)", edge, row[edge], corner, row[corner])
			}
		}
	}
}
