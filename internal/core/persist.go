package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelSnapshot is the gob wire form of a Model. All learned state is
// captured: the grid edges, the matrix weights, the update rule, and the
// Markov chain position, so a restored model continues exactly where the
// saved one stopped.
type modelSnapshot struct {
	Version int
	Config  Config

	XEdges, YEdges       []float64
	XAvgWidth, YAvgWidth float64
	NX, NY               int
	Weights              []float64
	Observed             int
	Strength             float64
	Prev                 int
	Armed                bool
	ModelStats           Stats

	// Frozen self-run state (since version 2). Persisted verbatim — a run
	// live at checkpoint time must NOT be flushed by Save, or the matrix
	// trajectory would depend on checkpoint cadence and recovery would
	// fork from an uninterrupted run.
	RunValid bool
	RunLen   int
	RunRes   StepResult
}

// snapshotVersion guards against loading snapshots from incompatible
// releases. Version 2 added the frozen self-run state; version-1 snapshots
// (no live run, by construction) still load.
const snapshotVersion = 2

// Save serializes the model (gob). The model may keep being used
// concurrently; Save takes a consistent snapshot under the model lock.
func (m *Model) Save(w io.Writer) error {
	m.mu.Lock()
	snap := modelSnapshot{
		Version:    snapshotVersion,
		Config:     m.cfg,
		XEdges:     append([]float64(nil), m.grid.X.Edges...),
		YEdges:     append([]float64(nil), m.grid.Y.Edges...),
		XAvgWidth:  m.grid.X.AvgWidth,
		YAvgWidth:  m.grid.Y.AvgWidth,
		NX:         m.tm.nx,
		NY:         m.tm.ny,
		Weights:    append([]float64(nil), m.tm.weights...),
		Observed:   m.tm.observed,
		Strength:   m.tm.strength,
		Prev:       m.prev,
		Armed:      m.armed,
		ModelStats: m.stats,
		RunValid:   m.runValid,
		RunLen:     m.runLen,
		RunRes:     m.runRes,
	}
	m.mu.Unlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("model save: %w", err)
	}
	return nil
}

// LoadModel restores a model saved by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model load: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("model load: snapshot version %d, want 1..%d", snap.Version, snapshotVersion)
	}
	if len(snap.XEdges) < 2 || len(snap.YEdges) < 2 {
		return nil, fmt.Errorf("model load: degenerate grid (%d x %d edges)", len(snap.XEdges), len(snap.YEdges))
	}
	if snap.NX != len(snap.XEdges)-1 || snap.NY != len(snap.YEdges)-1 {
		return nil, fmt.Errorf("model load: matrix dims %dx%d do not match grid %dx%d",
			snap.NX, snap.NY, len(snap.XEdges)-1, len(snap.YEdges)-1)
	}
	n := snap.NX * snap.NY
	if len(snap.Weights) != n*n {
		return nil, fmt.Errorf("model load: %d weights for %d cells", len(snap.Weights), n)
	}
	cfg := snap.Config.withDefaults()
	grid := &Grid{
		X: Axis{Edges: snap.XEdges, AvgWidth: snap.XAvgWidth},
		Y: Axis{Edges: snap.YEdges, AvgWidth: snap.YAvgWidth},
	}
	kernel, err := NewKernel(cfg.Kernel, cfg.DecayW, snap.NX, snap.NY)
	if err != nil {
		return nil, fmt.Errorf("model load: %w", err)
	}
	// The row-normalization cache (probs/norm/clean) is derived state and
	// deliberately absent from the snapshot; the restored matrix rebuilds
	// it lazily on first read.
	tm := &TransitionMatrix{
		nx: snap.NX, ny: snap.NY, n: n,
		kernel: kernel, rule: cfg.UpdateRule,
		weights: snap.Weights, strength: snap.Strength, observed: snap.Observed,
	}
	return &Model{
		cfg:      cfg,
		grid:     grid,
		tm:       tm,
		prev:     snap.Prev,
		armed:    snap.Armed,
		stats:    snap.ModelStats,
		runValid: snap.RunValid,
		runLen:   snap.RunLen,
		runRes:   snap.RunRes,
	}, nil
}
