package core

import (
	"math"
	"math/rand"
	"testing"

	"mcorr/internal/mathx"
)

// referenceRow normalizes row i of tm exactly the way the pre-cache
// implementation did: copy the raw weights, then softmax (kernel-Bayes) or
// sum-normalize (Dirichlet).
func referenceRow(t *testing.T, tm *TransitionMatrix, i int) []float64 {
	t.Helper()
	ref := make([]float64, tm.n)
	copy(ref, tm.row(i))
	if tm.rule == UpdateKernelBayes {
		if _, err := mathx.SoftmaxInto(ref, ref); err != nil {
			t.Fatalf("reference softmax: %v", err)
		}
		return ref
	}
	mathx.Normalize(ref)
	return ref
}

// requireRowsMatch asserts RowInto and Prob agree bit-for-bit with the
// reference normalization of every row, and that ScoreTransition/FitnessAt
// rank the raw row (the defined scoring semantics — see ScoreTransition;
// TestSoftmaxFreeRankMatchesMaterialized pins down when the raw rank equals
// the materialized rank).
func requireRowsMatch(t *testing.T, tm *TransitionMatrix, context string) {
	t.Helper()
	for i := 0; i < tm.NumCells(); i++ {
		ref := referenceRow(t, tm, i)
		raw := append([]float64(nil), tm.row(i)...)
		got, err := tm.RowInto(nil, i)
		if err != nil {
			t.Fatalf("%s: RowInto(%d): %v", context, i, err)
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("%s: row %d col %d: cached %v != reference %v", context, i, j, got[j], ref[j])
			}
			p, err := tm.Prob(i, j)
			if err != nil {
				t.Fatalf("%s: Prob(%d,%d): %v", context, i, j, err)
			}
			if p != ref[j] {
				t.Fatalf("%s: Prob(%d,%d) = %v, reference %v", context, i, j, p, ref[j])
			}
		}
		for h := 0; h < tm.NumCells(); h++ {
			prob, fitness, err := tm.ScoreTransition(i, h)
			if err != nil {
				t.Fatalf("%s: ScoreTransition(%d,%d): %v", context, i, h, err)
			}
			if prob != ref[h] {
				t.Fatalf("%s: ScoreTransition(%d,%d) prob %v != %v", context, i, h, prob, ref[h])
			}
			if want := FitnessFromRow(raw, h); fitness != want {
				t.Fatalf("%s: ScoreTransition(%d,%d) fitness %v != %v", context, i, h, fitness, want)
			}
			fit, err := tm.FitnessAt(i, h)
			if err != nil {
				t.Fatalf("%s: FitnessAt(%d,%d): %v", context, i, h, err)
			}
			if want := FitnessFromRow(raw, h); fit != want {
				t.Fatalf("%s: FitnessAt(%d,%d) = %v, want %v", context, i, h, fit, want)
			}
		}
	}
}

// TestRowCacheStaysCorrectAcrossObserveAndGrow interleaves reads with the
// two mutation paths and asserts the cached normalizers never go stale for
// either update rule.
func TestRowCacheStaysCorrectAcrossObserveAndGrow(t *testing.T) {
	for _, rule := range []UpdateRule{UpdateKernelBayes, UpdateDirichlet} {
		t.Run(rule.String(), func(t *testing.T) {
			grid, err := UniformGrid(0, 4, 4, 0, 4, 4)
			if err != nil {
				t.Fatalf("UniformGrid: %v", err)
			}
			kernel, err := NewKernel(KernelHarmonic, 2, 4, 4)
			if err != nil {
				t.Fatalf("NewKernel: %v", err)
			}
			tm, err := NewTransitionMatrix(grid, kernel, rule, 10)
			if err != nil {
				t.Fatalf("NewTransitionMatrix: %v", err)
			}
			requireRowsMatch(t, tm, "prior")

			rng := rand.New(rand.NewSource(11))
			for round := 0; round < 5; round++ {
				// Warm the cache, then dirty a few rows behind its back.
				for k := 0; k < 8; k++ {
					i := rng.Intn(tm.NumCells())
					h := rng.Intn(tm.NumCells())
					if _, _, err := tm.ScoreTransition(i, h); err != nil {
						t.Fatalf("warm read: %v", err)
					}
					if err := tm.Observe(i, h); err != nil {
						t.Fatalf("Observe: %v", err)
					}
				}
				requireRowsMatch(t, tm, "after observes")
			}

			// Grow drops all cached normalizers; re-verify every row on
			// the new geometry.
			gr, grew := grid.GrowToInclude(mathx.Point2{X: 4.8, Y: 2}, 3)
			if !grew {
				t.Fatal("grid should grow for an in-lambda point")
			}
			if err := tm.Grow(grid, gr); err != nil {
				t.Fatalf("Grow: %v", err)
			}
			requireRowsMatch(t, tm, "after grow")

			if err := tm.Observe(0, tm.NumCells()-1); err != nil {
				t.Fatalf("Observe after grow: %v", err)
			}
			requireRowsMatch(t, tm, "after grow+observe")
		})
	}
}

// TestSoftmaxFreeRankMatchesMaterialized is the property test for the
// rank/softmax monotonicity that the scoring path rests on: for log-weight
// rows whose distinct entries are well separated — exp only collapses
// distinct floats into ties when they differ in their final ulps — the
// rank computed on the raw row equals the rank computed on the
// materialized softmax row, for every destination cell, including exact
// tie cases (exact raw ties map to exact probability ties and both sides
// break them by index).
func TestSoftmaxFreeRankMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := 2 + rng.Intn(30)
		raw := make([]float64, s)
		for j := range raw {
			// Lattice of multiples of 1/8 in [-32, 0]: distinct entries
			// differ by ≥ 0.125, far beyond exp's rounding collisions.
			raw[j] = -float64(rng.Intn(257)) / 8
		}
		// Inject exact ties: copy some entries over others.
		for k := 0; k < s/3; k++ {
			raw[rng.Intn(s)] = raw[rng.Intn(s)]
		}
		probs := make([]float64, s)
		if _, err := mathx.SoftmaxInto(probs, raw); err != nil {
			t.Fatalf("softmax: %v", err)
		}
		for h := 0; h < s; h++ {
			rawRank := RankInRow(raw, h)
			probRank := RankInRow(probs, h)
			if rawRank != probRank {
				t.Fatalf("trial %d: rank(c%d) raw %d != softmax %d (raw=%v)", trial, h, rawRank, probRank, raw)
			}
			if FitnessFromRank(rawRank, s) != FitnessFromRow(probs, h) {
				t.Fatalf("trial %d: fitness mismatch at h=%d", trial, h)
			}
		}
	}
}

// TestSoftmaxFreeRankAllTied covers the fully degenerate tie case: every
// cell equal means rank(h) = h+1 under the deterministic index tie-break.
func TestSoftmaxFreeRankAllTied(t *testing.T) {
	raw := []float64{-2.5, -2.5, -2.5, -2.5}
	probs := make([]float64, len(raw))
	if _, err := mathx.SoftmaxInto(probs, raw); err != nil {
		t.Fatal(err)
	}
	for h := range raw {
		if got, want := RankInRow(raw, h), h+1; got != want {
			t.Errorf("raw rank(%d) = %d, want %d", h, got, want)
		}
		if RankInRow(raw, h) != RankInRow(probs, h) {
			t.Errorf("rank(%d) differs between raw and softmax", h)
		}
	}
}

// TestProbColumnRangeChecked: the cached Prob validates the column index
// instead of panicking.
func TestProbColumnRangeChecked(t *testing.T) {
	grid, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	kernel, _ := NewKernel(KernelHarmonic, 2, 3, 3)
	tm, _ := NewTransitionMatrix(grid, kernel, UpdateKernelBayes, 0)
	if _, err := tm.Prob(0, 9); err == nil {
		t.Error("Prob(0, 9) on a 9-cell matrix: want error")
	}
	if _, err := tm.Prob(0, -1); err == nil {
		t.Error("Prob(0, -1): want error")
	}
}

// TestRowIntoCleanPathReusesCache: two consecutive reads of an untouched
// row return identical values and the second read must not renormalize
// (observable as the clean bit staying set).
func TestRowIntoCleanPathReusesCache(t *testing.T) {
	grid, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	kernel, _ := NewKernel(KernelHarmonic, 2, 3, 3)
	tm, _ := NewTransitionMatrix(grid, kernel, UpdateKernelBayes, 0)
	first, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.rowClean(4) {
		t.Fatal("row 4 should be clean after a read")
	}
	if _, err := tm.RowInto(nil, 5); err != nil {
		t.Fatal(err)
	}
	second, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("clean re-read diverged at %d", j)
		}
	}
	if err := tm.Observe(4, 1); err != nil {
		t.Fatal(err)
	}
	if tm.rowClean(4) {
		t.Fatal("Observe(4, ...) must dirty row 4")
	}
	if !tm.rowClean(5) {
		t.Fatal("Observe(4, ...) must not dirty row 5")
	}
	after, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range after {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("post-observe row sums to %g", sum)
	}
}
