package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestDiagnosticsPriorOnly(t *testing.T) {
	g, err := UniformGrid(0, 3, 3, 0, 3, 3)
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	m, err := NewModelFromGrid(g, Config{})
	if err != nil {
		t.Fatalf("NewModelFromGrid: %v", err)
	}
	d := m.Diagnostics()
	if d.Cells != 9 || d.GridX != 3 || d.GridY != 3 {
		t.Errorf("dims = %+v", d)
	}
	if d.Observed != 0 {
		t.Errorf("Observed = %d", d.Observed)
	}
	// The closeness prior is broad: entropy near (but below) uniform.
	if d.MeanRowEntropy <= 0 || d.MeanRowEntropy >= d.MaxRowEntropy {
		t.Errorf("prior entropy %.3f vs max %.3f", d.MeanRowEntropy, d.MaxRowEntropy)
	}
	// Self transition is the modal prior entry but under 50%.
	if d.SelfMass < 0.17 || d.SelfMass > 0.25 {
		t.Errorf("prior self-mass = %.3f", d.SelfMass)
	}
	if d.PeakedRows != 0 {
		t.Errorf("prior should have no peaked rows, got %.2f", d.PeakedRows)
	}
	if !strings.Contains(d.String(), "grid 3x3 (9 cells)") {
		t.Errorf("String = %q", d.String())
	}
}

func TestDiagnosticsSharpenWithTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	history := corrStream(rng, 3000)
	m, err := Train(history, Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	d := m.Diagnostics()
	if d.Observed == 0 {
		t.Fatal("training should have observed transitions")
	}
	// Compare with an untrained model on the same grid: training must
	// reduce entropy and raise confidence.
	fresh, err := NewModelFromGrid(m.Grid().Clone(), Config{})
	if err != nil {
		t.Fatalf("NewModelFromGrid: %v", err)
	}
	f := fresh.Diagnostics()
	if !(d.MeanRowEntropy < f.MeanRowEntropy) {
		t.Errorf("trained entropy %.3f should be below prior %.3f", d.MeanRowEntropy, f.MeanRowEntropy)
	}
	if !(d.PeakedRows > f.PeakedRows) {
		t.Errorf("trained peaked rows %.3f should exceed prior %.3f", d.PeakedRows, f.PeakedRows)
	}
	if math.IsNaN(d.SelfMass) || d.SelfMass <= 0 {
		t.Errorf("self-mass = %.3f", d.SelfMass)
	}
}
