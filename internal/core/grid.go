package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"mcorr/internal/mathx"
)

// ErrNoData is returned when a grid or model is built from an empty sample.
var ErrNoData = errors.New("core: no data")

// GridConfig controls the MAFIA-style adaptive discretization of one
// dimension. The zero value selects the documented defaults.
type GridConfig struct {
	// Units is the number of fine-grained equal-width units each dimension
	// is split into before merging (the paper's unit length z, "much
	// smaller than the actual interval size"). Default 100.
	Units int
	// SimilarityTau merges adjacent units whose counts differ by at most
	// this fraction of the larger count. Default 0.4.
	SimilarityTau float64
	// DensityFraction: units whose count is below this fraction of the
	// mean unit count are considered sparse, and adjacent sparse units are
	// merged regardless of similarity. Default 0.25.
	DensityFraction float64
	// MaxIntervals caps the intervals per dimension; beyond it the most
	// similar adjacent intervals are merged. Default 20.
	MaxIntervals int
	// MinIntervals is the resolution floor: when the similarity merge
	// collapses a smooth marginal into fewer intervals, the axis is
	// rebuilt with equal-frequency (quantile) intervals instead, keeping
	// dense regions finely resolved. Default 6.
	MinIntervals int
	// EqualSplit is the number of equal-width intervals used when the data
	// looks uniformly distributed (the paper's fallback). Default 10.
	EqualSplit int
	// UniformCV is the coefficient-of-variation threshold below which the
	// unit counts are declared equal-distributed. Default 0.2.
	UniformCV float64
}

func (c GridConfig) withDefaults() GridConfig {
	if c.Units <= 0 {
		c.Units = 100
	}
	if c.SimilarityTau <= 0 {
		c.SimilarityTau = 0.4
	}
	if c.DensityFraction <= 0 {
		c.DensityFraction = 0.25
	}
	if c.MaxIntervals <= 0 {
		c.MaxIntervals = 20
	}
	if c.MinIntervals <= 0 {
		c.MinIntervals = 6
	}
	if c.MinIntervals > c.MaxIntervals {
		c.MinIntervals = c.MaxIntervals
	}
	if c.EqualSplit <= 0 {
		c.EqualSplit = 10
	}
	if c.UniformCV <= 0 {
		c.UniformCV = 0.2
	}
	return c
}

// Axis is the discretization of one dimension into contiguous half-open
// intervals [Edges[i], Edges[i+1]).
type Axis struct {
	// Edges holds the interval boundaries in ascending order;
	// len(Edges) == intervals + 1.
	Edges []float64
	// AvgWidth is the average interval width computed at initialization
	// (the paper's r_avg, used to bound online growth).
	AvgWidth float64
}

// Intervals returns the number of intervals on the axis.
func (a *Axis) Intervals() int { return len(a.Edges) - 1 }

// Lo returns the inclusive lower bound of the axis.
func (a *Axis) Lo() float64 { return a.Edges[0] }

// Hi returns the exclusive upper bound of the axis.
func (a *Axis) Hi() float64 { return a.Edges[len(a.Edges)-1] }

// Locate returns the interval index containing v and whether v lies within
// the axis bounds.
func (a *Axis) Locate(v float64) (int, bool) {
	if math.IsNaN(v) || v < a.Lo() || v >= a.Hi() {
		return 0, false
	}
	// Find the first edge greater than v; v's interval precedes it.
	i := sort.SearchFloat64s(a.Edges, v)
	if i < len(a.Edges) && a.Edges[i] == v {
		return i, true // v sits exactly on edge i: interval i = [v, next)
	}
	return i - 1, true
}

// Interval returns the bounds [lo, hi) of interval i.
func (a *Axis) Interval(i int) (lo, hi float64) { return a.Edges[i], a.Edges[i+1] }

// clone returns a deep copy of the axis.
func (a *Axis) clone() Axis {
	edges := make([]float64, len(a.Edges))
	copy(edges, a.Edges)
	return Axis{Edges: edges, AvgWidth: a.AvgWidth}
}

// buildAxis discretizes one dimension of the history data. Non-finite
// samples (monitoring gaps) are ignored.
func buildAxis(values []float64, cfg GridConfig) (Axis, error) {
	finite := values[:0:0]
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			finite = append(finite, v)
		}
	}
	values = finite
	if len(values) == 0 {
		return Axis{}, ErrNoData
	}
	lo, hi := mathx.MinMax(values)
	if math.IsNaN(lo) {
		return Axis{}, fmt.Errorf("axis bounds: %w", ErrNoData)
	}
	if hi <= lo {
		// Constant dimension: a single unit-wide interval around the value.
		w := math.Max(1e-9, math.Abs(lo)*1e-6)
		return Axis{Edges: []float64{lo, lo + w}, AvgWidth: w}, nil
	}
	// Pad the upper bound so the maximum observation is strictly inside.
	span := hi - lo
	hi += span * 1e-9
	if hi == lo+span { // padding vanished in rounding
		hi = math.Nextafter(hi, math.Inf(1))
	}

	// Count points per fine unit.
	counts := make([]float64, cfg.Units)
	for _, v := range values {
		u := int(float64(cfg.Units) * (v - lo) / (hi - lo))
		if u >= cfg.Units {
			u = cfg.Units - 1
		}
		counts[u]++
	}

	// Equal-distributed data: plain equal-width split.
	if cv := countCV(counts); cv < cfg.UniformCV {
		edges := mathx.Linspace(lo, hi, cfg.EqualSplit+1)
		return Axis{Edges: edges, AvgWidth: (hi - lo) / float64(cfg.EqualSplit)}, nil
	}

	meanCount := mathx.Mean(counts)
	sparse := cfg.DensityFraction * meanCount

	// Merge adjacent units into intervals (MAFIA): extend the current
	// interval while the next unit's count is similar to the current
	// unit's, or both are sparse.
	unitW := (hi - lo) / float64(cfg.Units)
	type iv struct {
		lo, hi float64
		count  float64
	}
	// massBreak bounds how much probability mass one interval may absorb:
	// without it a smooth unimodal histogram (adjacent counts always
	// similar) would chain-merge into a single interval.
	massBreak := 2 * float64(len(values)) / float64(cfg.EqualSplit)
	var ivs []iv
	cur := iv{lo: lo, hi: lo + unitW, count: counts[0]}
	prev := counts[0]
	for u := 1; u < cfg.Units; u++ {
		c := counts[u]
		bigger := math.Max(c, prev)
		similar := bigger == 0 || math.Abs(c-prev) <= cfg.SimilarityTau*bigger
		bothSparse := c <= sparse && prev <= sparse
		if (similar || bothSparse) && cur.count+c <= massBreak {
			cur.hi = lo + float64(u+1)*unitW
			cur.count += c
		} else {
			ivs = append(ivs, cur)
			cur = iv{lo: cur.hi, hi: lo + float64(u+1)*unitW, count: c}
		}
		prev = c
	}
	cur.hi = hi // absorb any float drift at the top edge
	ivs = append(ivs, cur)

	// Cap the interval count by merging the most similar adjacent pair
	// (by density) until within budget.
	for len(ivs) > cfg.MaxIntervals {
		best, bestDiff := 0, math.Inf(1)
		for i := 0; i+1 < len(ivs); i++ {
			d1 := ivs[i].count / (ivs[i].hi - ivs[i].lo)
			d2 := ivs[i+1].count / (ivs[i+1].hi - ivs[i+1].lo)
			if diff := math.Abs(d1 - d2); diff < bestDiff {
				bestDiff, best = diff, i
			}
		}
		ivs[best].hi = ivs[best+1].hi
		ivs[best].count += ivs[best+1].count
		ivs = append(ivs[:best+1], ivs[best+2:]...)
	}

	// Too coarse an axis cannot rank transitions usefully; rebuild with
	// equal-frequency intervals (dense regions get more cells, the
	// paper's stated goal of the adaptive partitioning).
	if len(ivs) < cfg.MinIntervals {
		if ax, ok := quantileAxis(values, cfg.EqualSplit, lo, hi); ok {
			return ax, nil
		}
		edges := mathx.Linspace(lo, hi, cfg.EqualSplit+1)
		return Axis{Edges: edges, AvgWidth: (hi - lo) / float64(cfg.EqualSplit)}, nil
	}

	edges := make([]float64, 0, len(ivs)+1)
	edges = append(edges, ivs[0].lo)
	for _, v := range ivs {
		edges = append(edges, v.hi)
	}
	return Axis{Edges: edges, AvgWidth: (hi - lo) / float64(len(ivs))}, nil
}

// quantileAxis splits the axis at the k/n-quantiles of the data (duplicate
// quantiles collapse), reporting ok=false when fewer than two distinct
// intervals result.
func quantileAxis(values []float64, n int, lo, hi float64) (Axis, bool) {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	edges := []float64{lo}
	for k := 1; k < n; k++ {
		q := sorted[k*len(sorted)/n]
		if q > edges[len(edges)-1] && q < hi {
			edges = append(edges, q)
		}
	}
	edges = append(edges, hi)
	if len(edges) < 3 {
		return Axis{}, false
	}
	return Axis{Edges: edges, AvgWidth: (hi - lo) / float64(len(edges)-1)}, true
}

// countCV returns the coefficient of variation of the unit counts.
func countCV(counts []float64) float64 {
	m := mathx.Mean(counts)
	if m == 0 {
		return 0
	}
	sd := mathx.StdDev(counts)
	if math.IsNaN(sd) {
		return 0
	}
	return sd / m
}

// Grid is the two-dimensional grid structure G = {c_1, ..., c_s}: the cross
// product of the two axes' intervals. Cells are numbered row-major:
// cell(i, j) = i·ny + j where i indexes the X axis and j the Y axis.
type Grid struct {
	X, Y Axis
}

// BuildGrid discretizes the history data into a grid, one axis per
// dimension.
func BuildGrid(pts []mathx.Point2, cfg GridConfig) (*Grid, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("build grid: %w", ErrNoData)
	}
	cfg = cfg.withDefaults()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	ax, err := buildAxis(xs, cfg)
	if err != nil {
		return nil, fmt.Errorf("x axis: %w", err)
	}
	ay, err := buildAxis(ys, cfg)
	if err != nil {
		return nil, fmt.Errorf("y axis: %w", err)
	}
	return &Grid{X: ax, Y: ay}, nil
}

// UniformGrid returns a grid with nx×ny equal cells over the given bounds —
// used by tests and for reproducing the paper's worked examples.
func UniformGrid(xlo, xhi float64, nx int, ylo, yhi float64, ny int) (*Grid, error) {
	if nx < 1 || ny < 1 || xhi <= xlo || yhi <= ylo {
		return nil, fmt.Errorf("uniform grid %dx%d over [%g,%g)x[%g,%g): invalid", nx, ny, xlo, xhi, ylo, yhi)
	}
	return &Grid{
		X: Axis{Edges: mathx.Linspace(xlo, xhi, nx+1), AvgWidth: (xhi - xlo) / float64(nx)},
		Y: Axis{Edges: mathx.Linspace(ylo, yhi, ny+1), AvgWidth: (yhi - ylo) / float64(ny)},
	}, nil
}

// NumCells returns s, the total number of grid cells.
func (g *Grid) NumCells() int { return g.X.Intervals() * g.Y.Intervals() }

// Dims returns the number of intervals along each axis.
func (g *Grid) Dims() (nx, ny int) { return g.X.Intervals(), g.Y.Intervals() }

// CellIndex converts (xi, yi) interval coordinates to a cell index.
func (g *Grid) CellIndex(xi, yi int) int { return xi*g.Y.Intervals() + yi }

// CellCoords converts a cell index back to (xi, yi) interval coordinates.
func (g *Grid) CellCoords(cell int) (xi, yi int) {
	ny := g.Y.Intervals()
	return cell / ny, cell % ny
}

// Locate returns the cell containing p and whether p lies inside the grid.
func (g *Grid) Locate(p mathx.Point2) (int, bool) {
	xi, ok := g.X.Locate(p.X)
	if !ok {
		return 0, false
	}
	yi, ok := g.Y.Locate(p.Y)
	if !ok {
		return 0, false
	}
	return g.CellIndex(xi, yi), true
}

// CellBounds returns the rectangle of cell index c as ([xlo,xhi), [ylo,yhi)).
func (g *Grid) CellBounds(c int) (xlo, xhi, ylo, yhi float64) {
	xi, yi := g.CellCoords(c)
	xlo, xhi = g.X.Interval(xi)
	ylo, yhi = g.Y.Interval(yi)
	return xlo, xhi, ylo, yhi
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	return &Grid{X: g.X.clone(), Y: g.Y.clone()}
}

// Growth describes how a grid was extended by GrowToInclude: how many
// intervals were prepended/appended on each axis. It is what a
// TransitionMatrix needs to remap its state.
type Growth struct {
	XLow, XHigh int
	YLow, YHigh int
}

// Grew reports whether any interval was added.
func (gr Growth) Grew() bool { return gr.XLow+gr.XHigh+gr.YLow+gr.YHigh > 0 }

// GrowToInclude extends the grid so p becomes an interior point, but only
// when p is within lambda·AvgWidth of the existing boundary on every
// violated axis (the paper's distribution-evolution rule; anything farther
// is an outlier and the grid is left unchanged). New intervals have width
// AvgWidth. It returns the applied growth; a zero Growth with ok=false
// means p was rejected as an outlier.
func (g *Grid) GrowToInclude(p mathx.Point2, lambda float64) (Growth, bool) {
	needX, okX := axisGrowth(&g.X, p.X, lambda)
	if !okX {
		return Growth{}, false
	}
	needY, okY := axisGrowth(&g.Y, p.Y, lambda)
	if !okY {
		return Growth{}, false
	}
	var gr Growth
	gr.XLow, gr.XHigh = applyAxisGrowth(&g.X, needX)
	gr.YLow, gr.YHigh = applyAxisGrowth(&g.Y, needY)
	return gr, gr.Grew()
}

// axisGrowth computes how many intervals (negative = prepend) axis a needs
// to contain v, and whether v is close enough to the boundary to allow it.
func axisGrowth(a *Axis, v float64, lambda float64) (int, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	switch {
	case v >= a.Hi():
		if v > a.Hi()+lambda*a.AvgWidth {
			return 0, false
		}
		k := int(math.Floor((v-a.Hi())/a.AvgWidth)) + 1
		return k, true
	case v < a.Lo():
		if v < a.Lo()-lambda*a.AvgWidth {
			return 0, false
		}
		k := int(math.Floor((a.Lo()-v)/a.AvgWidth)) + 1
		return -k, true
	default:
		return 0, true
	}
}

// applyAxisGrowth appends (k > 0) or prepends (k < 0) |k| intervals of
// width AvgWidth and returns (prepended, appended).
func applyAxisGrowth(a *Axis, k int) (low, high int) {
	switch {
	case k > 0:
		for i := 0; i < k; i++ {
			a.Edges = append(a.Edges, a.Hi()+a.AvgWidth)
		}
		return 0, k
	case k < 0:
		n := -k
		pre := make([]float64, n, n+len(a.Edges))
		for i := 0; i < n; i++ {
			pre[i] = a.Lo() - float64(n-i)*a.AvgWidth
		}
		a.Edges = append(pre, a.Edges...)
		return n, 0
	default:
		return 0, 0
	}
}

// String renders the grid's interval boundaries, e.g. for the paper's
// Figure 7/8 style output.
func (g *Grid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid %dx%d (%d cells)\n", g.X.Intervals(), g.Y.Intervals(), g.NumCells())
	b.WriteString("x:")
	for _, e := range g.X.Edges {
		fmt.Fprintf(&b, " %.6g", e)
	}
	b.WriteString("\ny:")
	for _, e := range g.Y.Edges {
		fmt.Fprintf(&b, " %.6g", e)
	}
	b.WriteByte('\n')
	return b.String()
}
