package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mcorr/internal/mathx"
)

// diurnalStream emits a pair whose dynamics differ by time of day: calm
// small-step motion at night, violent-but-regular swings at peak hours.
// A single matrix must average the two regimes; per-bucket matrices can
// learn each.
func diurnalStream(rng *rand.Rand, start time.Time, step time.Duration, n int) []mathx.Point2 {
	pts := make([]mathx.Point2, n)
	x := 50.0
	for i := range pts {
		h := start.Add(time.Duration(i) * step).UTC().Hour()
		sigma := 1.0
		if h >= 12 && h < 18 {
			sigma = 12 // peak hours: big regular jumps
		}
		x = mathx.Clamp(x+rng.NormFloat64()*sigma, 0, 100)
		pts[i] = mathx.Point2{X: x, Y: 2*x + rng.NormFloat64()*2}
	}
	return pts
}

func TestTrainTimeConditionedValidation(t *testing.T) {
	start := time.Date(2008, 5, 29, 0, 0, 0, 0, time.UTC)
	if _, err := TrainTimeConditioned(nil, start, time.Minute, 4, Config{}); err == nil {
		t.Error("empty history: want error")
	}
	pts := []mathx.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, err := TrainTimeConditioned(pts, start, 0, 4, Config{}); err == nil {
		t.Error("zero step: want error")
	}
	if _, err := TrainTimeConditioned(pts, start, time.Minute, 0, Config{}); err == nil {
		t.Error("0 buckets: want error")
	}
	if _, err := TrainTimeConditioned(pts, start, time.Minute, 25, Config{}); err == nil {
		t.Error("25 buckets: want error")
	}
}

func TestTimeConditionedBucketsRouting(t *testing.T) {
	start := time.Date(2008, 5, 29, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(81))
	history := diurnalStream(rng, start, 6*time.Minute, 8*240)
	tc, err := TrainTimeConditioned(history, start, 6*time.Minute, 4, Config{})
	if err != nil {
		t.Fatalf("TrainTimeConditioned: %v", err)
	}
	if tc.Buckets() != 4 || tc.NumCells() == 0 {
		t.Fatalf("buckets=%d cells=%d", tc.Buckets(), tc.NumCells())
	}
	// Quarter boundaries route as expected.
	cases := map[int]int{0: 0, 5: 0, 6: 1, 11: 1, 12: 2, 17: 2, 18: 3, 23: 3}
	for h, want := range cases {
		if got := tc.bucketOf(start.Add(time.Duration(h) * time.Hour)); got != want {
			t.Errorf("bucketOf(%dh) = %d, want %d", h, got, want)
		}
	}
}

// TestTimeConditionedBeatsPlainAtPeak is the extension's claim: with
// regime-switching dynamics by time of day, conditioning the matrix on the
// time bucket raises peak-hour fitness versus the paper's single matrix.
func TestTimeConditionedBeatsPlainAtPeak(t *testing.T) {
	start := time.Date(2008, 5, 29, 0, 0, 0, 0, time.UTC)
	step := 6 * time.Minute
	rng := rand.New(rand.NewSource(82))
	history := diurnalStream(rng, start, step, 8*240)

	plain, err := Train(history, Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	cond, err := TrainTimeConditioned(history, start, step, 4, Config{})
	if err != nil {
		t.Fatalf("TrainTimeConditioned: %v", err)
	}

	testStart := start.AddDate(0, 0, 8)
	stream := diurnalStream(rand.New(rand.NewSource(83)), testStart, step, 2*240)
	var plainSum, condSum float64
	var n int
	for i, p := range stream {
		tm := testStart.Add(time.Duration(i) * step)
		if h := tm.UTC().Hour(); h < 12 || h >= 18 {
			plain.Step(p)
			cond.StepAt(tm, p)
			continue // compare only the peak quarter
		}
		a := plain.Step(p)
		b := cond.StepAt(tm, p)
		if a.Scored && b.Scored {
			plainSum += a.Fitness
			condSum += b.Fitness
			n++
		}
	}
	if n == 0 {
		t.Fatal("no scored peak samples")
	}
	plainMean, condMean := plainSum/float64(n), condSum/float64(n)
	if condMean <= plainMean {
		t.Errorf("time-conditioned peak fitness %.4f should beat plain %.4f", condMean, plainMean)
	}
}

func TestTimeConditionedOutlierAndReset(t *testing.T) {
	start := time.Date(2008, 5, 29, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(84))
	history := diurnalStream(rng, start, 6*time.Minute, 1000)
	tc, err := TrainTimeConditioned(history, start, 6*time.Minute, 2, Config{})
	if err != nil {
		t.Fatalf("TrainTimeConditioned: %v", err)
	}
	tm := start.AddDate(0, 0, 5)
	tc.StepAt(tm, mathx.Point2{X: 50, Y: 100})
	out := tc.StepAt(tm.Add(6*time.Minute), mathx.Point2{X: 1e9, Y: 1e9})
	if !out.OutOfGrid || !out.Scored || out.Fitness != 0 {
		t.Errorf("outlier = %+v", out)
	}
	next := tc.StepAt(tm.Add(12*time.Minute), mathx.Point2{X: 50, Y: 100})
	if next.Scored {
		t.Error("chain should restart after an outlier")
	}
	tc.Reset()
	again := tc.StepAt(tm.Add(18*time.Minute), mathx.Point2{X: 50, Y: 100})
	if again.Scored {
		t.Error("Reset should clear the chain")
	}
	if math.IsNaN(again.Fitness) {
		t.Error("unscored fitness should be zero, not NaN")
	}
}
