package core

import (
	"math/rand"
	"strings"
	"testing"

	"mcorr/internal/mathx"
)

func TestExplainBeforeAnyStep(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m, err := Train(corrStream(rng, 500), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, ok := m.Explain(mathx.Point2{X: 50, Y: 100}, 3); ok {
		t.Error("Explain with no position should report ok=false")
	}
}

func TestExplainNormalObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m, err := Train(corrStream(rng, 2000), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	m.Step(mathx.Point2{X: 50, Y: 100})
	before := m.Stats()
	ex, ok := m.Explain(mathx.Point2{X: 51, Y: 102}, 4)
	if !ok {
		t.Fatal("Explain failed")
	}
	if m.Stats() != before {
		t.Error("Explain must not mutate the model")
	}
	// The source cell contains the previous observation.
	if !(ex.From.XLo <= 50 && 50 < ex.From.XHi && ex.From.YLo <= 100 && 100 < ex.From.YHi) {
		t.Errorf("From cell %s does not contain (50, 100)", ex.From)
	}
	// The observed cell contains the new observation and has a valid rank.
	if !(ex.Observed.XLo <= 51 && 51 < ex.Observed.XHi) {
		t.Errorf("Observed cell %s does not contain x=51", ex.Observed)
	}
	if ex.Observed.Rank < 1 || ex.Observed.Rank > m.NumCells() {
		t.Errorf("rank = %d", ex.Observed.Rank)
	}
	if ex.Fitness <= 0 || ex.Fitness > 1 {
		t.Errorf("fitness = %g", ex.Fitness)
	}
	// Expected list: k entries, sorted by decreasing probability, ranks
	// 1..k.
	if len(ex.Expected) != 4 {
		t.Fatalf("expected list = %d", len(ex.Expected))
	}
	for i, c := range ex.Expected {
		if c.Rank != i+1 {
			t.Errorf("expected[%d].Rank = %d", i, c.Rank)
		}
		if i > 0 && c.Prob > ex.Expected[i-1].Prob {
			t.Error("expected list not sorted by probability")
		}
	}
	if ex.OutOfGrid {
		t.Error("normal observation should be in grid")
	}
}

func TestExplainOutOfGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m, err := Train(corrStream(rng, 1000), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	m.Step(mathx.Point2{X: 50, Y: 100})
	ex, ok := m.Explain(mathx.Point2{X: 1e9, Y: 1e9}, 2)
	if !ok || !ex.OutOfGrid {
		t.Fatalf("Explain = %+v, %v", ex, ok)
	}
	if len(ex.Expected) != 2 {
		t.Errorf("expected list = %d", len(ex.Expected))
	}
}

func TestExplainDefaultK(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	m, err := Train(corrStream(rng, 1000), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	m.Step(mathx.Point2{X: 50, Y: 100})
	ex, ok := m.Explain(mathx.Point2{X: 50, Y: 100}, 0)
	if !ok || len(ex.Expected) != 3 {
		t.Errorf("default k: %d entries, %v", len(ex.Expected), ok)
	}
}

func TestCellInfoString(t *testing.T) {
	c := CellInfo{XLo: 22588, XHi: 45128, YLo: 102940, YHi: 137220}
	s := c.String()
	// The paper's §6 narrative format: "[22588,45128] & [102940,137220]".
	if !strings.Contains(s, "[22588,45128]") || !strings.Contains(s, "[102940,137220]") {
		t.Errorf("String = %q", s)
	}
}
