package core

import (
	"fmt"
	"math"
)

// Diagnostics summarizes a model's internal state for operators: how fine
// the grid is, how concentrated the learned transition structure has
// become, and how much of the probability mass stays put — the
// interpretability hooks behind the paper's "easy to interpret and can
// assist later human debugging" claim.
type Diagnostics struct {
	// GridX, GridY are the per-axis interval counts; Cells = GridX·GridY.
	GridX, GridY, Cells int
	// Observed is the number of transitions incorporated so far.
	Observed int
	// MeanRowEntropy is the average Shannon entropy (bits) of the
	// transition rows; log2(Cells) for a uniform matrix, 0 for point
	// masses.
	MeanRowEntropy float64
	// MaxRowEntropy is the entropy of a uniform row, for reference.
	MaxRowEntropy float64
	// SelfMass is the average P(c→c) across rows — the spatial-closeness
	// "stay put" tendency the paper measured (412 of 701 transitions).
	SelfMass float64
	// PeakedRows is the fraction of rows whose modal probability exceeds
	// one half (rows the model is very sure about).
	PeakedRows float64
}

// String renders the diagnostics compactly.
func (d Diagnostics) String() string {
	return fmt.Sprintf("grid %dx%d (%d cells), %d transitions observed, entropy %.2f/%.2f bits, self-mass %.3f, peaked rows %.0f%%",
		d.GridX, d.GridY, d.Cells, d.Observed, d.MeanRowEntropy, d.MaxRowEntropy, d.SelfMass, d.PeakedRows*100)
}

// Diagnostics computes the model's current internal summary. Cost is
// O(cells²).
func (m *Model) Diagnostics() Diagnostics {
	m.mu.Lock()
	defer m.mu.Unlock()
	nx, ny := m.grid.Dims()
	n := m.tm.NumCells()
	d := Diagnostics{
		GridX: nx, GridY: ny, Cells: n,
		Observed:      m.tm.Observed(),
		MaxRowEntropy: math.Log2(float64(n)),
	}
	var entropy, self float64
	peaked := 0
	for i := 0; i < n; i++ {
		row, err := m.tm.RowInto(m.row, i)
		if err != nil {
			continue
		}
		m.row = row
		var h, mx float64
		for _, p := range row {
			if p > 0 {
				h -= p * math.Log2(p)
			}
			if p > mx {
				mx = p
			}
		}
		entropy += h
		self += row[i]
		if mx > 0.5 {
			peaked++
		}
	}
	d.MeanRowEntropy = entropy / float64(n)
	d.SelfMass = self / float64(n)
	d.PeakedRows = float64(peaked) / float64(n)
	return d
}
