package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"mcorr/internal/mathx"
)

// corrStream generates a correlated 2-D random walk confined to a box —
// a stand-in for two correlated measurements in their normal regime.
func corrStream(rng *rand.Rand, n int) []mathx.Point2 {
	pts := make([]mathx.Point2, n)
	x := 50.0
	for i := range pts {
		x += rng.NormFloat64() * 2
		x = mathx.Clamp(x, 0, 100)
		y := 2*x + rng.NormFloat64()*3 // near-linear correlation
		pts[i] = mathx.Point2{X: x, Y: y}
	}
	return pts
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty history: want error")
	}
}

func TestTrainAndScoreNormalData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	history := corrStream(rng, 2000)
	m, err := Train(history, Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.NumCells() < 4 {
		t.Fatalf("degenerate grid: %d cells", m.NumCells())
	}
	// Normal continuation scores high fitness on average.
	test := corrStream(rng, 1000)
	mf := m.MeanFitness(test)
	if mf < 0.8 {
		t.Errorf("mean fitness on normal data = %.3f, want ≥ 0.8 (paper reports 0.8–0.98)", mf)
	}
}

func TestStepSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, err := Train(corrStream(rng, 1500), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	first := m.Step(mathx.Point2{X: 50, Y: 100})
	if first.Scored {
		t.Error("first observation cannot be scored")
	}
	if first.OutOfGrid {
		t.Error("central point should be in grid")
	}
	second := m.Step(mathx.Point2{X: 51, Y: 102})
	if !second.Scored {
		t.Fatal("second observation should be scored")
	}
	if second.Prob <= 0 || second.Fitness <= 0 || second.Fitness > 1 {
		t.Errorf("second = %+v", second)
	}
	st := m.Stats()
	if st.Observations != 2 || st.Scored != 1 || st.Updates == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStepAnomalousTransitionScoresLow(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, err := Train(corrStream(rng, 3000), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Establish a normal position, then jump to a corner of the space
	// that breaks the correlation (x low, y high).
	m.Step(mathx.Point2{X: 50, Y: 100})
	normal := m.Step(mathx.Point2{X: 52, Y: 104})
	m.Reset()
	m.Step(mathx.Point2{X: 50, Y: 100})
	anomalous := m.Step(mathx.Point2{X: 5, Y: 195})
	if !anomalous.Scored {
		t.Skip("anomalous corner fell outside the training grid; covered by outlier tests")
	}
	if anomalous.Fitness >= normal.Fitness {
		t.Errorf("correlation-breaking jump fitness %.3f should be below normal %.3f",
			anomalous.Fitness, normal.Fitness)
	}
}

func TestStepOutlierBreaksChain(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m, err := Train(corrStream(rng, 1000), Config{}) // offline: no growth
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	m.Step(mathx.Point2{X: 50, Y: 100})
	out := m.Step(mathx.Point2{X: 1e9, Y: 1e9})
	if !out.OutOfGrid || out.Cell != -1 {
		t.Fatalf("far point = %+v, want out of grid", out)
	}
	if !out.Scored || out.Prob != 0 || out.Fitness != 0 {
		t.Errorf("outlier after a valid position should score 0: %+v", out)
	}
	// The chain restarts: the next in-grid point is unscored.
	next := m.Step(mathx.Point2{X: 50, Y: 100})
	if next.Scored {
		t.Error("observation after an outlier should not be scored")
	}
	if st := m.Stats(); st.Outliers != 1 {
		t.Errorf("outliers = %d", st.Outliers)
	}
}

func TestStepFirstPointOutlierUnscored(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m, err := Train(corrStream(rng, 1000), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	out := m.Step(mathx.Point2{X: 1e9, Y: 1e9})
	if out.Scored {
		t.Error("outlier with no prior position cannot be scored")
	}
}

func TestAdaptiveGrowsGridOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m, err := Train(corrStream(rng, 2000), Config{Adaptive: true, Lambda: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	g := m.Grid()
	hi := g.X.Hi()
	drift := mathx.Point2{X: hi + 0.4*g.X.AvgWidth, Y: 100}
	res := m.Step(drift)
	if res.OutOfGrid {
		t.Fatal("gradual drift should grow the grid, not be rejected")
	}
	if !res.Grown {
		t.Error("Grown flag should be set")
	}
	if st := m.Stats(); st.Growths != 1 {
		t.Errorf("growths = %d", st.Growths)
	}
	// Offline models never grow.
	m2, err := Train(corrStream(rng, 2000), Config{Adaptive: false})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	g2 := m2.Grid()
	res2 := m2.Step(mathx.Point2{X: g2.X.Hi() + 0.4*g2.X.AvgWidth, Y: 100})
	if !res2.OutOfGrid {
		t.Error("offline model must not grow its grid")
	}
}

func TestAdaptiveImprovesOnDriftingStream(t *testing.T) {
	// The paper's offline-vs-adaptive claim (Fig. 13a): when the test
	// distribution drifts, the adaptive model fits it better.
	rng := rand.New(rand.NewSource(27))
	history := corrStream(rng, 800)
	mkStream := func() []mathx.Point2 {
		s := rand.New(rand.NewSource(99))
		pts := make([]mathx.Point2, 2500)
		x := 50.0
		for i := range pts {
			x += s.NormFloat64() * 2
			x = mathx.Clamp(x, 0, 100)
			// The relationship slowly drifts away from training.
			shift := 40 * float64(i) / float64(len(pts))
			pts[i] = mathx.Point2{X: x, Y: 2*x + shift + s.NormFloat64()*3}
		}
		return pts
	}
	offline, err := Train(history, Config{Adaptive: false})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	adaptive, err := Train(history, Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var offSum, adSum float64
	var offN, adN int
	for _, p := range mkStream() {
		if r := offline.Step(p); r.Scored {
			offSum += r.Fitness
			offN++
		}
	}
	for _, p := range mkStream() {
		if r := adaptive.Step(p); r.Scored {
			adSum += r.Fitness
			adN++
		}
	}
	offMean, adMean := offSum/float64(offN), adSum/float64(adN)
	if adMean <= offMean {
		t.Errorf("adaptive fitness %.3f should beat offline %.3f on drifting data", adMean, offMean)
	}
}

func TestScoreDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	m, err := Train(corrStream(rng, 1000), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, _, ok := m.Score(mathx.Point2{X: 50, Y: 100}); ok {
		t.Error("Score before any Step should not be scoreable")
	}
	m.Step(mathx.Point2{X: 50, Y: 100})
	before := m.Stats()
	prob, fit, ok := m.Score(mathx.Point2{X: 51, Y: 102})
	if !ok || prob <= 0 || fit <= 0 {
		t.Errorf("Score = %g, %g, %v", prob, fit, ok)
	}
	if m.Stats() != before {
		t.Error("Score must not change model state")
	}
	// Out-of-grid scores zero but is still a scoreable observation.
	prob, fit, ok = m.Score(mathx.Point2{X: 1e9, Y: 1e9})
	if !ok || prob != 0 || fit != 0 {
		t.Errorf("out-of-grid Score = %g, %g, %v", prob, fit, ok)
	}
}

func TestSetAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m, err := Train(corrStream(rng, 500), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.Adaptive() {
		t.Error("default should be offline")
	}
	m.SetAdaptive(true)
	if !m.Adaptive() {
		t.Error("SetAdaptive(true) failed")
	}
}

func TestModelConcurrentSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	m, err := Train(corrStream(rng, 1000), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for _, p := range corrStream(r, 200) {
				m.Step(p)
			}
		}(int64(g))
	}
	wg.Wait()
	if st := m.Stats(); st.Observations != 1600 {
		t.Errorf("observations = %d, want 1600", st.Observations)
	}
}

func TestNewModelFromGridPriorOnly(t *testing.T) {
	g, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	m, err := NewModelFromGrid(g, Config{})
	if err != nil {
		t.Fatalf("NewModelFromGrid: %v", err)
	}
	p, err := m.TransitionProbability(4, 4)
	if err != nil {
		t.Fatalf("TransitionProbability: %v", err)
	}
	if math.Abs(p-0.1765) > 0.001 {
		t.Errorf("prior P(c5→c5) = %.4f, want 0.1765 (Figure 5)", p)
	}
}

func TestMeanFitnessEmpty(t *testing.T) {
	g, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	m, err := NewModelFromGrid(g, Config{})
	if err != nil {
		t.Fatalf("NewModelFromGrid: %v", err)
	}
	if !math.IsNaN(m.MeanFitness(nil)) {
		t.Error("MeanFitness of empty stream should be NaN")
	}
}

func TestTrainSkipsNaNs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	history := corrStream(rng, 500)
	// NaNs cannot be located; the replay must survive them.
	history[100] = mathx.Point2{X: math.NaN(), Y: math.NaN()}
	if _, err := Train(history, Config{}); err != nil {
		t.Fatalf("Train with NaN point: %v", err)
	}
}

func TestFitnessBounds(t *testing.T) {
	row := []float64{0.25, 0.25, 0.25, 0.25}
	// Ties: rank determined by index; all fitness in (0, 1].
	for h := range row {
		f := FitnessFromRow(row, h)
		if f <= 0 || f > 1 {
			t.Errorf("fitness(%d) = %g out of range", h, f)
		}
	}
	if FitnessFromRow(nil, 0) != 0 {
		t.Error("empty row fitness should be 0")
	}
	// Tie-break is deterministic: earlier index ranks higher.
	if RankInRow(row, 0) != 1 || RankInRow(row, 3) != 4 {
		t.Error("tie-break by index failed")
	}
}

func TestNegativeLambdaDisablesGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m, err := Train(corrStream(rng, 1000), Config{Adaptive: true, Lambda: -1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	g := m.Grid()
	res := m.Step(mathx.Point2{X: g.X.Hi() + 0.1*g.X.AvgWidth, Y: 100})
	if !res.OutOfGrid || res.Grown {
		t.Errorf("negative lambda must disable growth: %+v", res)
	}
	if st := m.Stats(); st.Growths != 0 {
		t.Errorf("growths = %d", st.Growths)
	}
}
