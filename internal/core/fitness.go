package core

// RankInRow returns the paper's ranking function π(c_h): the 1-based rank
// of cell h when the row's cells are ordered by decreasing transition
// probability. Ties are broken deterministically by cell index, so equal
// probabilities at lower indices rank ahead of h.
//
// Because ranking only compares entries, row may equally be a vector of
// unnormalized scores under any strictly increasing transform of the
// probabilities — raw kernel-Bayes log weights or Dirichlet counts rank
// identically to the softmax/sum-normalized row in exact arithmetic. In
// floats the two can differ only where exp collapses log weights that
// differ in their final ulps into exact probability ties; the scoring hot
// path ranks the raw row (see TransitionMatrix.ScoreTransition), which
// keeps such cells distinct and costs no exponentials.
func RankInRow(row []float64, h int) int {
	rank := 1
	ph := row[h]
	for j, p := range row {
		if p > ph || (p == ph && j < h) {
			rank++
		}
	}
	return rank
}

// FitnessFromRank converts a 1-based rank π(c_h) over s cells into the
// paper's fitness score Q = 1 − (π(c_h) − 1) / s.
func FitnessFromRank(rank, s int) float64 {
	if s == 0 {
		return 0
	}
	return 1 - float64(rank-1)/float64(s)
}

// FitnessFromRow computes the paper's pairwise fitness score
//
//	Q = 1 − (π(c_h) − 1) / s
//
// where row is the transition distribution out of the previous cell (or
// any monotone score vector for it — see RankInRow), h is the cell the new
// observation actually landed in, and s = len(row). The best-predicted
// cell scores 1; the worst scores 1/s; callers assign 0 to observations
// that fall outside the grid entirely.
func FitnessFromRow(row []float64, h int) float64 {
	if len(row) == 0 {
		return 0
	}
	return FitnessFromRank(RankInRow(row, h), len(row))
}
