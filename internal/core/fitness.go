package core

// RankInRow returns the paper's ranking function π(c_h): the 1-based rank
// of cell h when the row's cells are ordered by decreasing transition
// probability. Ties are broken deterministically by cell index, so equal
// probabilities at lower indices rank ahead of h.
func RankInRow(row []float64, h int) int {
	rank := 1
	ph := row[h]
	for j, p := range row {
		if p > ph || (p == ph && j < h) {
			rank++
		}
	}
	return rank
}

// FitnessFromRow computes the paper's pairwise fitness score
//
//	Q = 1 − (π(c_h) − 1) / s
//
// where row is the transition distribution out of the previous cell, h is
// the cell the new observation actually landed in, and s = len(row). The
// best-predicted cell scores 1; the worst scores 1/s; callers assign 0 to
// observations that fall outside the grid entirely.
func FitnessFromRow(row []float64, h int) float64 {
	s := len(row)
	if s == 0 {
		return 0
	}
	return 1 - float64(RankInRow(row, h)-1)/float64(s)
}
