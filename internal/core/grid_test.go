package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mcorr/internal/mathx"
)

func TestAxisLocate(t *testing.T) {
	a := Axis{Edges: []float64{0, 1, 3, 7}, AvgWidth: 7.0 / 3}
	cases := []struct {
		v    float64
		want int
		ok   bool
	}{
		{0, 0, true}, {0.5, 0, true}, {1, 1, true}, {2.9, 1, true},
		{3, 2, true}, {6.999, 2, true}, {7, 0, false}, {-0.1, 0, false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		got, ok := a.Locate(c.v)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Locate(%g) = %d, %v; want %d, %v", c.v, got, ok, c.want, c.ok)
		}
	}
	if a.Intervals() != 3 || a.Lo() != 0 || a.Hi() != 7 {
		t.Error("axis accessors wrong")
	}
	lo, hi := a.Interval(1)
	if lo != 1 || hi != 3 {
		t.Errorf("Interval(1) = [%g, %g)", lo, hi)
	}
}

func TestBuildGridEmpty(t *testing.T) {
	if _, err := BuildGrid(nil, GridConfig{}); err == nil {
		t.Error("empty data: want error")
	}
}

func TestBuildGridBimodalSplitsDenseRegions(t *testing.T) {
	// Two tight clusters far apart: the axis must separate them, giving
	// more resolution to dense areas than one equal-width bin would.
	rng := rand.New(rand.NewSource(1))
	var pts []mathx.Point2
	for i := 0; i < 500; i++ {
		pts = append(pts, mathx.Point2{X: rng.NormFloat64() * 0.5, Y: rng.NormFloat64() * 0.5})
		pts = append(pts, mathx.Point2{X: 100 + rng.NormFloat64()*0.5, Y: 100 + rng.NormFloat64()*0.5})
	}
	g, err := BuildGrid(pts, GridConfig{})
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if g.X.Intervals() < 2 || g.Y.Intervals() < 2 {
		t.Fatalf("bimodal data produced %dx%d grid", g.X.Intervals(), g.Y.Intervals())
	}
	// Every training point must be inside the grid.
	for _, p := range pts {
		if _, ok := g.Locate(p); !ok {
			t.Fatalf("training point %+v outside grid", p)
		}
	}
}

func TestBuildGridUniformFallsBackToEqualSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]mathx.Point2, 20000)
	for i := range pts {
		pts[i] = mathx.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	g, err := BuildGrid(pts, GridConfig{EqualSplit: 7})
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if g.X.Intervals() != 7 || g.Y.Intervals() != 7 {
		t.Fatalf("uniform data should equal-split into 7x7, got %dx%d", g.X.Intervals(), g.Y.Intervals())
	}
	// Equal widths.
	w0 := g.X.Edges[1] - g.X.Edges[0]
	for i := 1; i < g.X.Intervals(); i++ {
		if !mathx.AlmostEqual(g.X.Edges[i+1]-g.X.Edges[i], w0, 1e-9) {
			t.Error("equal split should have equal widths")
		}
	}
}

func TestBuildGridRespectsMaxIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]mathx.Point2, 5000)
	for i := range pts {
		// Highly multi-modal data tempting many intervals.
		m := float64(i % 10 * 10)
		pts[i] = mathx.Point2{X: m + rng.NormFloat64(), Y: m + rng.NormFloat64()}
	}
	g, err := BuildGrid(pts, GridConfig{MaxIntervals: 6})
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if g.X.Intervals() > 6 || g.Y.Intervals() > 6 {
		t.Errorf("grid %dx%d exceeds MaxIntervals 6", g.X.Intervals(), g.Y.Intervals())
	}
}

func TestBuildGridConstantDimension(t *testing.T) {
	pts := []mathx.Point2{{X: 5, Y: 1}, {X: 5, Y: 2}, {X: 5, Y: 3}}
	g, err := BuildGrid(pts, GridConfig{})
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if _, ok := g.Locate(mathx.Point2{X: 5, Y: 2}); !ok {
		t.Error("constant dimension should still contain its value")
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	g, err := UniformGrid(0, 4, 4, 0, 5, 5)
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	if g.NumCells() != 20 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	for c := 0; c < g.NumCells(); c++ {
		xi, yi := g.CellCoords(c)
		if g.CellIndex(xi, yi) != c {
			t.Fatalf("coords round trip failed at %d", c)
		}
	}
	xlo, xhi, ylo, yhi := g.CellBounds(g.CellIndex(2, 3))
	if xlo != 2 || xhi != 3 || ylo != 3 || yhi != 4 {
		t.Errorf("CellBounds = [%g,%g)x[%g,%g)", xlo, xhi, ylo, yhi)
	}
}

func TestUniformGridValidation(t *testing.T) {
	if _, err := UniformGrid(0, 0, 3, 0, 1, 3); err == nil {
		t.Error("empty x range: want error")
	}
	if _, err := UniformGrid(0, 1, 0, 0, 1, 3); err == nil {
		t.Error("zero intervals: want error")
	}
}

// Property: every point inside the bounds lands in exactly one cell whose
// bounds contain it.
func TestGridLocatePartitionProperty(t *testing.T) {
	g, err := UniformGrid(0, 10, 7, -5, 5, 9)
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	f := func(xr, yr uint16) bool {
		p := mathx.Point2{
			X: float64(xr) / 65535 * 9.999,
			Y: float64(yr)/65535*9.999 - 5,
		}
		c, ok := g.Locate(p)
		if !ok {
			return false
		}
		xlo, xhi, ylo, yhi := g.CellBounds(c)
		return p.X >= xlo && p.X < xhi && p.Y >= ylo && p.Y < yhi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrowToInclude(t *testing.T) {
	g, err := UniformGrid(0, 10, 5, 0, 10, 5) // AvgWidth 2 on both axes
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	// A point just above the X bound: one interval appended.
	gr, grew := g.GrowToInclude(mathx.Point2{X: 11, Y: 5}, 3)
	if !grew || gr.XHigh != 1 || gr.XLow+gr.YLow+gr.YHigh != 0 {
		t.Fatalf("growth = %+v, grew=%v", gr, grew)
	}
	if g.X.Intervals() != 6 || g.X.Hi() != 12 {
		t.Errorf("x axis after growth: %d intervals, hi %g", g.X.Intervals(), g.X.Hi())
	}
	if _, ok := g.Locate(mathx.Point2{X: 11, Y: 5}); !ok {
		t.Error("grown grid should contain the point")
	}
	// A point below both bounds: prepends shift indices.
	gr, grew = g.GrowToInclude(mathx.Point2{X: -3, Y: -1}, 3)
	if !grew || gr.XLow != 2 || gr.YLow != 1 {
		t.Fatalf("low growth = %+v, grew=%v", gr, grew)
	}
	if _, ok := g.Locate(mathx.Point2{X: -3, Y: -1}); !ok {
		t.Error("grown grid should contain the low point")
	}
	// A point far outside is rejected as an outlier and nothing changes.
	before := g.NumCells()
	gr, grew = g.GrowToInclude(mathx.Point2{X: 1e6, Y: 5}, 3)
	if grew || gr.Grew() {
		t.Error("far point should be rejected")
	}
	if g.NumCells() != before {
		t.Error("rejected growth must not mutate the grid")
	}
	// NaN and Inf are rejected.
	if _, grew := g.GrowToInclude(mathx.Point2{X: math.NaN(), Y: 5}, 3); grew {
		t.Error("NaN should be rejected")
	}
	if _, grew := g.GrowToInclude(mathx.Point2{X: math.Inf(1), Y: 5}, 3); grew {
		t.Error("Inf should be rejected")
	}
}

func TestGrowToIncludeBoundaryExactlyAtLambda(t *testing.T) {
	g, _ := UniformGrid(0, 10, 5, 0, 10, 5) // AvgWidth 2
	// lambda=3 allows up to 10 + 3*2 = 16.
	if _, grew := g.GrowToInclude(mathx.Point2{X: 16, Y: 5}, 3); !grew {
		t.Error("point at the lambda boundary should be accepted")
	}
	g2, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	if _, grew := g2.GrowToInclude(mathx.Point2{X: 16.01, Y: 5}, 3); grew {
		t.Error("point past the lambda boundary should be rejected")
	}
}

func TestGrowToIncludeEdgeCases(t *testing.T) {
	// Value exactly on Hi(): outside for Locate (hi-exclusive bound) and
	// grown by exactly one interval, which then contains it as the first
	// value of the new interval.
	g, _ := UniformGrid(0, 10, 5, 0, 10, 5) // AvgWidth 2 on both axes
	if _, ok := g.X.Locate(10); ok {
		t.Error("Locate(Hi) must report outside (hi-exclusive)")
	}
	gr, grew := g.GrowToInclude(mathx.Point2{X: 10, Y: 5}, 3)
	if !grew || gr.XHigh != 1 || gr.XLow+gr.YLow+gr.YHigh != 0 {
		t.Fatalf("growth at Hi = %+v, grew=%v; want exactly one appended X interval", gr, grew)
	}
	if i, ok := g.X.Locate(10); !ok || i != 5 {
		t.Errorf("Locate(10) after growth = %d, %v; want interval 5", i, ok)
	}

	// Exactly lambda·AvgWidth below Lo() is accepted, mirroring the high
	// side; a hair past it is an outlier.
	g2, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	if _, grew := g2.GrowToInclude(mathx.Point2{X: -6, Y: 5}, 3); !grew {
		t.Error("point exactly lambda*AvgWidth below Lo should be accepted")
	}
	g3, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	if _, grew := g3.GrowToInclude(mathx.Point2{X: -6.01, Y: 5}, 3); grew {
		t.Error("point past the low lambda boundary should be rejected")
	}

	// Growth on both axes at once, in opposite directions: X appends two
	// intervals, Y prepends two.
	g4, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	gr, grew = g4.GrowToInclude(mathx.Point2{X: 13, Y: -3}, 3)
	if !grew || gr.XHigh != 2 || gr.YLow != 2 || gr.XLow != 0 || gr.YHigh != 0 {
		t.Fatalf("both-axes growth = %+v, grew=%v; want XHigh=2 YLow=2", gr, grew)
	}
	if _, ok := g4.Locate(mathx.Point2{X: 13, Y: -3}); !ok {
		t.Error("grown grid should contain the point")
	}

	// One in-range axis plus one outlier axis rejects the whole point
	// without mutating either axis.
	g5, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	before := g5.NumCells()
	if _, grew := g5.GrowToInclude(mathx.Point2{X: 11, Y: 1e6}, 3); grew {
		t.Error("outlier on one axis must reject the whole point")
	}
	if g5.NumCells() != before {
		t.Error("rejected point must not mutate the grid")
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g, _ := UniformGrid(0, 10, 5, 0, 10, 5)
	c := g.Clone()
	if _, grew := c.GrowToInclude(mathx.Point2{X: 11, Y: 5}, 3); !grew {
		t.Fatal("clone growth failed")
	}
	if g.X.Intervals() != 5 {
		t.Error("growing the clone mutated the original")
	}
}

func TestGridString(t *testing.T) {
	g, _ := UniformGrid(0, 2, 2, 0, 2, 2)
	s := g.String()
	if !strings.Contains(s, "grid 2x2 (4 cells)") || !strings.Contains(s, "x: 0 1 2") {
		t.Errorf("String = %q", s)
	}
}

// Property: growth never loses points — anything locatable before growth
// is locatable after, in a cell with identical bounds.
func TestGrowthPreservesExistingCellsProperty(t *testing.T) {
	f := func(px, py uint8, gx, gy uint8) bool {
		g, err := UniformGrid(0, 10, 5, 0, 10, 5)
		if err != nil {
			return false
		}
		p := mathx.Point2{X: float64(px) / 255 * 9.99, Y: float64(py) / 255 * 9.99}
		before, ok := g.Locate(p)
		if !ok {
			return false
		}
		bx1, bx2, by1, by2 := g.CellBounds(before)
		grow := mathx.Point2{X: 10 + float64(gx%30)/10, Y: -float64(gy%30) / 10}
		g.GrowToInclude(grow, 3)
		after, ok := g.Locate(p)
		if !ok {
			return false
		}
		ax1, ax2, ay1, ay2 := g.CellBounds(after)
		return bx1 == ax1 && bx2 == ax2 && by1 == ay1 && by2 == ay2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildGridQuantileFallbackOnSmoothData(t *testing.T) {
	// A smooth unimodal marginal: adjacent histogram units are always
	// "similar", so the MAFIA merge alone would collapse the axis; the
	// MinIntervals floor must kick in with quantile intervals.
	rng := rand.New(rand.NewSource(6))
	pts := make([]mathx.Point2, 8000)
	for i := range pts {
		pts[i] = mathx.Point2{X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	g, err := BuildGrid(pts, GridConfig{MinIntervals: 8, EqualSplit: 10})
	if err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	if g.X.Intervals() < 8 || g.Y.Intervals() < 8 {
		t.Fatalf("smooth data grid = %dx%d, want >= 8 per axis", g.X.Intervals(), g.Y.Intervals())
	}
	// Quantile intervals: the middle intervals (dense region) are
	// narrower than the outermost ones.
	edges := g.X.Edges
	n := len(edges) - 1
	inner := edges[n/2+1] - edges[n/2]
	outer := edges[1] - edges[0]
	if inner >= outer {
		t.Errorf("dense-region interval (%g) should be narrower than tail interval (%g)", inner, outer)
	}
}

func TestQuantileAxisDedupOnDiscreteData(t *testing.T) {
	// Heavily repeated values: duplicate quantiles must collapse rather
	// than produce empty or inverted intervals.
	var vals []float64
	for i := 0; i < 1000; i++ {
		vals = append(vals, 5) // 50% mass at one value
		if i%2 == 0 {
			vals = append(vals, float64(i%10))
		}
	}
	ax, ok := quantileAxis(vals, 10, 0, 10)
	if !ok {
		t.Fatal("quantileAxis should succeed")
	}
	for i := 0; i+1 < len(ax.Edges); i++ {
		if !(ax.Edges[i] < ax.Edges[i+1]) {
			t.Fatalf("edges not strictly increasing: %v", ax.Edges)
		}
	}
}

func TestQuantileAxisAllEqualFails(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 7
	}
	if _, ok := quantileAxis(vals, 10, 7, 7.1); ok {
		t.Error("constant data should not produce a quantile axis")
	}
}

// Property: every axis BuildGrid produces has strictly increasing edges
// and the advertised average width.
func TestBuildGridEdgesMonotoneProperty(t *testing.T) {
	f := func(seed int64, uniform bool) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]mathx.Point2, 500)
		for i := range pts {
			if uniform {
				pts[i] = mathx.Point2{X: rng.Float64(), Y: rng.Float64()}
			} else {
				pts[i] = mathx.Point2{X: rng.NormFloat64(), Y: rng.ExpFloat64()}
			}
		}
		g, err := BuildGrid(pts, GridConfig{})
		if err != nil {
			return false
		}
		for _, ax := range []Axis{g.X, g.Y} {
			for i := 0; i+1 < len(ax.Edges); i++ {
				if !(ax.Edges[i] < ax.Edges[i+1]) {
					return false
				}
			}
			if ax.AvgWidth <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
