package core

import (
	"bytes"
	"math/rand"
	"testing"

	"mcorr/internal/mathx"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m, err := Train(corrStream(rng, 2000), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Advance the chain so Prev/Armed state is non-trivial.
	m.Step(mathx.Point2{X: 50, Y: 100})
	m.Step(mathx.Point2{X: 52, Y: 104})

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if r.NumCells() != m.NumCells() {
		t.Fatalf("cells %d != %d", r.NumCells(), m.NumCells())
	}
	if r.Stats() != m.Stats() {
		t.Errorf("stats %+v != %+v", r.Stats(), m.Stats())
	}
	// Both models must behave identically from here: same deterministic
	// stream produces identical results.
	rng2 := rand.New(rand.NewSource(52))
	for _, p := range corrStream(rng2, 300) {
		a := m.Step(p)
		b := r.Step(p)
		if a != b {
			t.Fatalf("diverged: %+v vs %+v at %+v", a, b, p)
		}
	}
}

func TestModelSaveLoadOfflineAndDirichlet(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m, err := Train(corrStream(rng, 800), Config{UpdateRule: UpdateDirichlet})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if r.Matrix().Rule() != UpdateDirichlet {
		t.Error("rule not preserved")
	}
	if r.Adaptive() {
		t.Error("offline flag not preserved")
	}
	// Probabilities identical.
	pa, err := m.TransitionProbability(0, 1)
	if err != nil {
		t.Fatalf("prob: %v", err)
	}
	pb, err := r.TransitionProbability(0, 1)
	if err != nil {
		t.Fatalf("prob: %v", err)
	}
	if pa != pb {
		t.Errorf("P(0→1) %g != %g", pa, pb)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("junk")); err == nil {
		t.Error("garbage: want error")
	}
}

func TestLoadModelRejectsCorruptSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m, err := Train(corrStream(rng, 500), Config{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Corrupt by truncation: gob decode fails cleanly.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := LoadModel(trunc); err == nil {
		t.Error("truncated snapshot: want error")
	}
}

func TestModelSaveGrownGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	m, err := Train(corrStream(rng, 1000), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Grow the grid online, then round-trip.
	g := m.Grid()
	m.Step(mathx.Point2{X: g.X.Hi() + 0.2*g.X.AvgWidth, Y: 100})
	cellsBefore := m.NumCells()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if r.NumCells() != cellsBefore {
		t.Errorf("grown cells %d != %d", r.NumCells(), cellsBefore)
	}
}
