package core

import (
	"fmt"
	"sort"

	"mcorr/internal/mathx"
)

// CellInfo describes one grid cell in measurement units — the
// "problematic measurement ranges" the paper highlights as the model's
// debugging output (§6 walks through exactly such ranges for Group B).
type CellInfo struct {
	Index    int
	XLo, XHi float64
	YLo, YHi float64
	// Prob is the transition probability into this cell from the
	// explanation's source cell.
	Prob float64
	// Rank is the paper's π(c): 1 = most likely destination.
	Rank int
}

// String renders the cell as its value ranges, like the paper's
// "[22588,45128] & [102940,137220]".
func (c CellInfo) String() string {
	return fmt.Sprintf("[%.6g,%.6g] & [%.6g,%.6g]", c.XLo, c.XHi, c.YLo, c.YHi)
}

// Explanation is the model's human-readable account of one observation.
type Explanation struct {
	// From is the cell the model believed the pair was in (the previous
	// observation's cell).
	From CellInfo
	// Observed is the cell the new observation actually landed in, with
	// its transition probability and rank. Zero-valued (and OutOfGrid
	// set) when the point fell outside the grid.
	Observed CellInfo
	// Fitness is the rank-based score of the observed transition.
	Fitness float64
	// Expected lists the k most probable destination cells — what the
	// model thought should happen next.
	Expected []CellInfo
	// OutOfGrid reports that the observation left the learned region
	// entirely.
	OutOfGrid bool
}

// Explain describes what the model expects next and how the observation p
// compares, WITHOUT advancing or mutating the model. It returns ok=false
// when the model has no current position (nothing to explain). k bounds
// the Expected list.
func (m *Model) Explain(p mathx.Point2, k int) (Explanation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.armed {
		return Explanation{}, false
	}
	if k <= 0 {
		k = 3
	}
	row, err := m.tm.RowInto(m.row, m.prev)
	if err != nil {
		return Explanation{}, false
	}
	m.row = row

	var ex Explanation
	ex.From = m.cellInfoLocked(m.prev, row)

	// Top-k destinations by probability (ties by index, like the rank).
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	for _, j := range idx[:k] {
		ex.Expected = append(ex.Expected, m.cellInfoLocked(j, row))
	}

	cell, ok := m.grid.Locate(p)
	if !ok {
		ex.OutOfGrid = true
		return ex, true
	}
	ex.Observed = m.cellInfoLocked(cell, row)
	ex.Fitness = FitnessFromRow(row, cell)
	return ex, true
}

// cellInfoLocked builds a CellInfo under the model lock.
func (m *Model) cellInfoLocked(cell int, row []float64) CellInfo {
	xlo, xhi, ylo, yhi := m.grid.CellBounds(cell)
	return CellInfo{
		Index: cell,
		XLo:   xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		Prob: row[cell],
		Rank: RankInRow(row, cell),
	}
}
