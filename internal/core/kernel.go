package core

import (
	"fmt"
	"math"
)

// KernelKind selects the spatial-closeness kernel used for the prior
// distribution and the per-observation likelihood (paper §4.2: transition
// probability decreases exponentially with cell distance).
type KernelKind int

const (
	// KernelHarmonic is the paper's kernel, recovered exactly from the
	// published Figure 5 matrix: weight(Δx, Δy) = 2 / (w^Δx + w^Δy),
	// i.e. the reciprocal of the mean per-axis decay.
	KernelHarmonic KernelKind = iota + 1
	// KernelProduct decays with the Manhattan distance:
	// weight(Δx, Δy) = w^−(Δx+Δy). Ablation alternative.
	KernelProduct
	// KernelUniform gives every cell equal weight — it removes the
	// spatial-closeness assumption entirely (ablation control).
	KernelUniform
)

// String returns the kernel's name.
func (k KernelKind) String() string {
	switch k {
	case KernelHarmonic:
		return "harmonic"
	case KernelProduct:
		return "product"
	case KernelUniform:
		return "uniform"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Kernel evaluates spatial-closeness weights between cells of an nx×ny
// grid. It precomputes the per-axis decay powers so evaluation is two table
// lookups.
type Kernel struct {
	kind KernelKind
	w    float64
	powX []float64 // w^d for d = 0..nx-1
	powY []float64
	// logTab caches log(Weight(dx, dy)) as logTab[dx*ny + dy]; it is the
	// hot path of every matrix update.
	logTab []float64
	tabNX  int
	tabNY  int
	logW   float64
}

// NewKernel returns a kernel over an nx×ny grid with decay rate w > 1
// (the paper's w; 2 reproduces Figure 5 exactly).
func NewKernel(kind KernelKind, w float64, nx, ny int) (*Kernel, error) {
	switch kind {
	case KernelHarmonic, KernelProduct, KernelUniform:
	default:
		return nil, fmt.Errorf("unknown kernel kind %d", int(kind))
	}
	if w <= 1 && kind != KernelUniform {
		return nil, fmt.Errorf("kernel decay w = %g: must be > 1", w)
	}
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("kernel over %dx%d grid: empty", nx, ny)
	}
	k := &Kernel{kind: kind, w: w, logW: math.Log(w)}
	k.resize(nx, ny)
	return k, nil
}

// resize extends the power and log tables to cover an nx×ny grid.
func (k *Kernel) resize(nx, ny int) {
	k.powX = powTable(k.w, nx, k.powX)
	k.powY = powTable(k.w, ny, k.powY)
	if k.tabNX >= nx && k.tabNY >= ny {
		return
	}
	if nx < k.tabNX {
		nx = k.tabNX
	}
	if ny < k.tabNY {
		ny = k.tabNY
	}
	k.tabNX, k.tabNY = nx, ny
	k.logTab = make([]float64, nx*ny)
	for dx := 0; dx < nx; dx++ {
		for dy := 0; dy < ny; dy++ {
			k.logTab[dx*ny+dy] = k.logWeightSlow(dx, dy)
		}
	}
}

func powTable(w float64, n int, old []float64) []float64 {
	if len(old) >= n {
		return old
	}
	t := make([]float64, n)
	t[0] = 1
	for i := 1; i < n; i++ {
		t[i] = t[i-1] * w
	}
	return t
}

// Kind returns the kernel kind.
func (k *Kernel) Kind() KernelKind { return k.kind }

// W returns the decay rate.
func (k *Kernel) W() float64 { return k.w }

// Weight returns the unnormalized closeness weight for per-axis cell
// distances (dx, dy); the weight is 1 at distance zero and decays with
// distance for the non-uniform kernels.
func (k *Kernel) Weight(dx, dy int) float64 {
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	switch k.kind {
	case KernelUniform:
		return 1
	case KernelProduct:
		return 1 / (k.powX[dx] * k.powY[dy])
	default: // KernelHarmonic
		return 2 / (k.powX[dx] + k.powY[dy])
	}
}

// LogWeight returns log(Weight(dx, dy)) via the cached table.
func (k *Kernel) LogWeight(dx, dy int) float64 {
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return k.logTab[dx*k.tabNY+dy]
}

// AddLogRow adds log(Weight(xh−x, yh−y)) for every cell (x, y) of an
// nx×ny grid, row-major, into dst, and returns the maximum entry of dst
// after the addition. It is the bulk form of LogWeight used by the matrix
// update hot path: the nested loop walks the cached log table directly and
// avoids the per-cell index→coordinate division of the scalar path.
func (k *Kernel) AddLogRow(dst []float64, xh, yh, nx, ny int) float64 {
	mx := math.Inf(-1)
	j := 0
	for x := 0; x < nx; x++ {
		dx := x - xh
		if dx < 0 {
			dx = -dx
		}
		trow := k.logTab[dx*k.tabNY:]
		for y := 0; y < ny; y++ {
			dy := y - yh
			if dy < 0 {
				dy = -dy
			}
			v := dst[j] + trow[dy]
			dst[j] = v
			if v > mx {
				mx = v
			}
			j++
		}
	}
	return mx
}

// AddLogRowScaled adds m·log(Weight(xh−x, yh−y)) for every cell (x, y) of
// an nx×ny grid, row-major, into dst, and returns the maximum entry of dst
// after the addition. It coalesces m repeated identical observations of the
// same destination cell into a single pass: in exact arithmetic the result
// equals m sequential AddLogRow calls (the per-call re-centering the caller
// performs is a row-constant shift that cancels under softmax), and the
// float rounding is deterministic, so every caller that defers updates this
// way lands on the same bits.
func (k *Kernel) AddLogRowScaled(dst []float64, xh, yh, nx, ny int, m float64) float64 {
	mx := math.Inf(-1)
	j := 0
	for x := 0; x < nx; x++ {
		dx := x - xh
		if dx < 0 {
			dx = -dx
		}
		trow := k.logTab[dx*k.tabNY:]
		for y := 0; y < ny; y++ {
			dy := y - yh
			if dy < 0 {
				dy = -dy
			}
			v := dst[j] + m*trow[dy]
			dst[j] = v
			if v > mx {
				mx = v
			}
			j++
		}
	}
	return mx
}

// FillLogRow writes log(Weight(xi−x, yi−y)) for every cell (x, y) of an
// nx×ny grid, row-major, into dst — the bulk form used to seed prior rows.
func (k *Kernel) FillLogRow(dst []float64, xi, yi, nx, ny int) {
	j := 0
	for x := 0; x < nx; x++ {
		dx := x - xi
		if dx < 0 {
			dx = -dx
		}
		trow := k.logTab[dx*k.tabNY:]
		for y := 0; y < ny; y++ {
			dy := y - yi
			if dy < 0 {
				dy = -dy
			}
			dst[j] = trow[dy]
			j++
		}
	}
}

func (k *Kernel) logWeightSlow(dx, dy int) float64 {
	switch k.kind {
	case KernelUniform:
		return 0
	case KernelProduct:
		return -float64(dx+dy) * k.logW
	default:
		return math.Log(2 / (k.powX[dx] + k.powY[dy]))
	}
}

// StepPenalty returns the log-weight drop per one-cell step away, used to
// extrapolate posterior mass onto freshly grown cells.
func (k *Kernel) StepPenalty() float64 {
	if k.kind == KernelUniform {
		return 0
	}
	return k.logW
}
