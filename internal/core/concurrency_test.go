package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mcorr/internal/mathx"
)

// hammerPoints returns a deterministic correlated stream for concurrency
// tests.
func hammerPoints(seed int64, n int) []mathx.Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]mathx.Point2, n)
	x := 50.0
	for i := range pts {
		x = mathx.Clamp(x+rng.NormFloat64()*2, 0, 100)
		pts[i] = mathx.Point2{X: x, Y: 2*x + rng.NormFloat64()*3}
	}
	return pts
}

// TestModelConcurrentStepScoreStats hammers one adaptive model from
// writers (Step), readers (Score, TransitionProbability, MeanFitness) and
// stat readers concurrently. Run under -race (make check) it verifies the
// row cache is only ever touched under the model lock.
func TestModelConcurrentStepScoreStats(t *testing.T) {
	model, err := Train(hammerPoints(1, 2048), Config{Adaptive: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	stream := hammerPoints(2, 512)
	replay := hammerPoints(3, 64)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < len(stream); i++ {
				model.Step(stream[(i+seed*37)%len(stream)])
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < len(stream); i++ {
				p := stream[(i+seed*53)%len(stream)]
				if prob, fitness, ok := model.Score(p); ok {
					if prob < 0 || prob > 1 || fitness < 0 || fitness > 1 {
						t.Errorf("Score out of range: prob=%g fitness=%g", prob, fitness)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			_ = model.Stats()
			_ = model.NumCells()
			_ = model.Adaptive()
			if _, err := model.TransitionProbability(0, 0); err != nil {
				t.Errorf("TransitionProbability: %v", err)
				return
			}
			_ = model.MeanFitness(replay)
		}
	}()
	wg.Wait()

	stats := model.Stats()
	if stats.Observations != 4*len(stream) {
		t.Errorf("observations %d, want %d", stats.Observations, 4*len(stream))
	}
}

// TestTimeConditionedConcurrentStep gives the time-conditioned variant the
// same -race treatment on its shared-grid, per-bucket-matrix path.
func TestTimeConditionedConcurrentStep(t *testing.T) {
	start := time.Date(2008, 5, 29, 0, 0, 0, 0, time.UTC)
	step := 5 * time.Minute
	tc, err := TrainTimeConditioned(hammerPoints(4, 1024), start, step, 4, Config{Adaptive: true})
	if err != nil {
		t.Fatalf("TrainTimeConditioned: %v", err)
	}
	stream := hammerPoints(5, 256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i, p := range stream {
				tc.StepAt(start.Add(time.Duration(i+seed)*step), p)
			}
		}(w)
	}
	wg.Wait()
}
