// Package core implements the paper's contribution: a grid-based transition
// probability model for the pairwise correlation of two system measurements.
//
// The two-dimensional measurement space is partitioned into a Grid of
// rectangular cells adapted to the data density (a MAFIA-style merge of
// fine-grained units, §4.1 of the paper). A TransitionMatrix over the cells
// models P(c_i → c_j) with a spatial-closeness prior updated by Bayesian
// multiplicative (log-additive) updates on every observed transition
// (§4.2). A Model ties the two together and produces, for every new
// observation, the transition probability and the rank-based fitness score
// Q = 1 − (π(c_h) − 1)/s used for problem determination (§5).
//
// Model.Step is deterministic: the same training history and observation
// sequence always produces bit-identical fitness values, which is what the
// crash-recovery and sharding layers build their exactness guarantees on.
// TimeConditioned extends the model with one transition matrix per
// time-of-day bucket over a shared grid.
package core
