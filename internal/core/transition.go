package core

import (
	"fmt"
	"math"

	"mcorr/internal/mathx"
)

// UpdateRule selects how observed transitions update the matrix.
type UpdateRule int

const (
	// UpdateKernelBayes is the paper's rule (Eq. 1–2): the posterior of a
	// row is the prior multiplied, per observation, by a likelihood that
	// peaks at the observed destination cell and decays with cell distance
	// — implemented additively in log space.
	UpdateKernelBayes UpdateRule = iota + 1
	// UpdateDirichlet is the classical add-count smoothing ablation: the
	// prior contributes pseudo-counts and each observation adds one count
	// to the observed destination only.
	UpdateDirichlet
)

// String returns the rule's name.
func (r UpdateRule) String() string {
	switch r {
	case UpdateKernelBayes:
		return "kernel-bayes"
	case UpdateDirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("UpdateRule(%d)", int(r))
	}
}

// TransitionMatrix is the paper's s×s matrix V with V[i][j] = P(c_i → c_j),
// stored row-wise as unnormalized log weights (kernel-Bayes) or counts
// (Dirichlet). Rows are normalized on read, with the normalization cached
// per row behind dirty bits: Observe and Grow invalidate, the first read of
// a dirty row recomputes its normalizer (log-sum-exp for kernel-Bayes, the
// count sum for Dirichlet) and materialized probability row, and every
// subsequent read is a lookup. Repeated reads of an unchanged row — the
// offline scoring pattern — are therefore amortized O(1) per entry.
//
// TransitionMatrix is not safe for concurrent use; the Model guards it.
type TransitionMatrix struct {
	nx, ny int
	n      int
	kernel *Kernel
	rule   UpdateRule
	// weights holds n rows of n entries. For UpdateKernelBayes the
	// entries are log weights (softmax-normalized on read); for
	// UpdateDirichlet they are nonnegative pseudo-counts (sum-normalized
	// on read).
	weights []float64
	// Two caches, both invalidated per row by Observe/ObserveRun/Grow and
	// allocated lazily so freshly built or deserialized matrices pay
	// nothing until they are actually read:
	//
	//   norm/normOK — each row's normalizer (log-sum-exp for kernel-Bayes,
	//   the count sum for Dirichlet). This is all the scoring hot path
	//   needs: fitness ranks the raw row directly and a single probability
	//   is one exp against the cached normalizer.
	//
	//   probs/clean — fully materialized probability rows, kept only for
	//   bulk readers (RowInto) that want the whole distribution.
	probs  []float64
	norm   []float64
	normOK []bool
	clean  []bool
	// strength is the prior pseudo-count mass per row for UpdateDirichlet.
	strength float64
	observed int
}

// NewTransitionMatrix builds the prior matrix over the grid's cells using
// the kernel's spatial-closeness weights. For the Dirichlet rule, strength
// is the prior's total pseudo-count mass per row (≤ 0 selects 10).
func NewTransitionMatrix(g *Grid, kernel *Kernel, rule UpdateRule, strength float64) (*TransitionMatrix, error) {
	if kernel == nil {
		return nil, fmt.Errorf("new transition matrix: nil kernel")
	}
	switch rule {
	case UpdateKernelBayes, UpdateDirichlet:
	default:
		return nil, fmt.Errorf("new transition matrix: unknown update rule %d", int(rule))
	}
	if strength <= 0 {
		strength = 10
	}
	nx, ny := g.Dims()
	kernel.resize(nx, ny)
	tm := &TransitionMatrix{nx: nx, ny: ny, n: nx * ny, kernel: kernel, rule: rule, strength: strength}
	tm.weights = make([]float64, tm.n*tm.n)
	for i := 0; i < tm.n; i++ {
		tm.initPriorRow(tm.row(i), i)
	}
	return tm, nil
}

// row returns the backing slice of row i.
func (tm *TransitionMatrix) row(i int) []float64 { return tm.weights[i*tm.n : (i+1)*tm.n] }

// coords converts a cell index to (xi, yi) under the matrix's current dims.
func (tm *TransitionMatrix) coords(c int) (int, int) { return c / tm.ny, c % tm.ny }

// initPriorRow fills dst with the prior for transitions out of cell i.
func (tm *TransitionMatrix) initPriorRow(dst []float64, i int) {
	xi, yi := tm.coords(i)
	if tm.rule == UpdateKernelBayes {
		tm.kernel.FillLogRow(dst, xi, yi, tm.nx, tm.ny)
		return
	}
	// Dirichlet: normalized prior scaled to the pseudo-count mass.
	var sum float64
	for j := range dst {
		xj, yj := tm.coords(j)
		dst[j] = tm.kernel.Weight(xi-xj, yi-yj)
		sum += dst[j]
	}
	for j := range dst {
		dst[j] *= tm.strength / sum
	}
}

// NumCells returns s, the matrix dimension.
func (tm *TransitionMatrix) NumCells() int { return tm.n }

// Observed returns how many transitions have been incorporated.
func (tm *TransitionMatrix) Observed() int { return tm.observed }

// Rule returns the matrix's update rule.
func (tm *TransitionMatrix) Rule() UpdateRule { return tm.rule }

// Observe incorporates one observed transition from cell i to cell h.
func (tm *TransitionMatrix) Observe(i, h int) error {
	if i < 0 || i >= tm.n || h < 0 || h >= tm.n {
		return fmt.Errorf("observe transition %d→%d in %d-cell matrix: out of range", i, h, tm.n)
	}
	tm.observed++
	tm.invalidateRow(i)
	row := tm.row(i)
	if tm.rule == UpdateDirichlet {
		row[h]++
		return nil
	}
	// Kernel-Bayes: add the log likelihood, which peaks at h and decays
	// with distance (paper Eq. 2), then re-center the row at zero so the
	// log weights stay bounded over long streams.
	xh, yh := tm.coords(h)
	mx := tm.kernel.AddLogRow(row, xh, yh, tm.nx, tm.ny)
	for j := range row {
		row[j] -= mx
	}
	return nil
}

// ObserveRun incorporates count repeated observations of the self-transition
// c→c in one coalesced pass. In exact arithmetic it equals count sequential
// Observe(c, c) calls — for kernel-Bayes the per-call re-centering is a
// row-constant shift that cancels under normalization, so adding count·L and
// re-centering once is the same posterior; for Dirichlet the count simply
// lands on one entry. The float rounding differs from the sequential path
// but is deterministic, and every scoring path defers self-runs through this
// method (see Model.Step), so trajectories stay bit-identical across full
// and incremental scoring, checkpoints, and reshards.
func (tm *TransitionMatrix) ObserveRun(c, count int) error {
	if c < 0 || c >= tm.n {
		return fmt.Errorf("observe run at cell %d in %d-cell matrix: out of range", c, tm.n)
	}
	if count <= 0 {
		return nil
	}
	tm.observed += count
	tm.invalidateRow(c)
	row := tm.row(c)
	if tm.rule == UpdateDirichlet {
		row[c] += float64(count)
		return nil
	}
	xc, yc := tm.coords(c)
	mx := tm.kernel.AddLogRowScaled(row, xc, yc, tm.nx, tm.ny, float64(count))
	for j := range row {
		row[j] -= mx
	}
	return nil
}

// invalidateRow marks row i's cached normalizer stale.
func (tm *TransitionMatrix) invalidateRow(i int) {
	if tm.clean != nil {
		tm.clean[i] = false
	}
	if tm.normOK != nil {
		tm.normOK[i] = false
	}
}

// rowClean reports whether row i's cache entries are valid.
func (tm *TransitionMatrix) rowClean(i int) bool { return tm.clean != nil && tm.clean[i] }

// probRow returns the cached normalized row i, refreshing it first if a
// mutation dirtied it. The returned slice aliases the cache; callers must
// not retain or mutate it.
func (tm *TransitionMatrix) probRow(i int) []float64 {
	if !tm.rowClean(i) {
		tm.refreshRow(i)
	}
	return tm.probs[i*tm.n : (i+1)*tm.n]
}

// ensureNorm computes and caches row i's normalizer if it is stale, and
// returns it: the log-sum-exp of the raw row for kernel-Bayes, the count
// sum for Dirichlet.
func (tm *TransitionMatrix) ensureNorm(i int) float64 {
	if tm.normOK == nil {
		tm.norm = make([]float64, tm.n)
		tm.normOK = make([]bool, tm.n)
	}
	if !tm.normOK[i] {
		raw := tm.row(i)
		if tm.rule == UpdateKernelBayes {
			tm.norm[i] = mathx.LogSumExp(raw)
		} else {
			tm.norm[i] = mathx.Sum(raw)
		}
		tm.normOK[i] = true
	}
	return tm.norm[i]
}

// probAt returns the single normalized probability P(c_i → c_h) from the
// cached normalizer — one exp (kernel-Bayes) or one multiply (Dirichlet)
// per read. The arithmetic is the per-entry expression of refreshRow, so
// the value is bit-for-bit what the materialized row holds, including the
// uniform fallback for degenerate rows.
func (tm *TransitionMatrix) probAt(i, h int) float64 {
	norm := tm.ensureNorm(i)
	raw := tm.row(i)
	if tm.rule == UpdateKernelBayes {
		if math.IsInf(norm, -1) {
			return 1 / float64(tm.n)
		}
		return math.Exp(raw[h] - norm)
	}
	if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
		return 1 / float64(tm.n)
	}
	inv := 1 / norm
	return raw[h] * inv
}

// refreshRow materializes row i's probability cache from the cached
// normalizer. The arithmetic mirrors mathx.SoftmaxInto / mathx.Normalize
// exactly (including their uniform fallback for degenerate rows) so cached
// reads are bit-for-bit identical to the uncached normalize-on-read path.
func (tm *TransitionMatrix) refreshRow(i int) {
	if tm.clean == nil {
		tm.probs = make([]float64, tm.n*tm.n)
		tm.clean = make([]bool, tm.n)
	}
	raw := tm.row(i)
	dst := tm.probs[i*tm.n : (i+1)*tm.n]
	norm := tm.ensureNorm(i)
	if tm.rule == UpdateKernelBayes {
		if math.IsInf(norm, -1) {
			uniformFill(dst)
		} else {
			for j, x := range raw {
				dst[j] = math.Exp(x - norm)
			}
		}
	} else {
		if norm <= 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
			uniformFill(dst)
		} else {
			inv := 1 / norm
			for j, x := range raw {
				dst[j] = x * inv
			}
		}
	}
	tm.clean[i] = true
}

func uniformFill(dst []float64) {
	u := 1 / float64(len(dst))
	for j := range dst {
		dst[j] = u
	}
}

// RowInto writes the normalized transition distribution out of cell i into
// dst (allocating when dst is too small) and returns it. A clean row is a
// straight copy of the cached normalization; a dirty row pays one
// recomputation and leaves the cache clean.
func (tm *TransitionMatrix) RowInto(dst []float64, i int) ([]float64, error) {
	if i < 0 || i >= tm.n {
		return nil, fmt.Errorf("row %d of %d-cell matrix: out of range", i, tm.n)
	}
	if cap(dst) < tm.n {
		dst = make([]float64, tm.n)
	}
	dst = dst[:tm.n]
	copy(dst, tm.probRow(i))
	return dst, nil
}

// Prob returns P(c_i → c_j) from the cached row normalizer — amortized
// O(1): only the first read after a mutation of row i renormalizes, and a
// single probability never materializes the full row.
func (tm *TransitionMatrix) Prob(i, j int) (float64, error) {
	if i < 0 || i >= tm.n {
		return 0, fmt.Errorf("row %d of %d-cell matrix: out of range", i, tm.n)
	}
	if j < 0 || j >= tm.n {
		return 0, fmt.Errorf("column %d of %d-cell matrix: out of range", j, tm.n)
	}
	return tm.probAt(i, j), nil
}

// ScoreTransition returns P(c_i → c_h) and the rank-based fitness score Q
// for the observed transition i→h. The fitness ranks the raw row directly —
// softmax (kernel-Bayes) and count normalization (Dirichlet) are strictly
// monotonic per row, so the raw rank is the normalized rank without
// computing a single exponential; ties, including raw-weight ties, break by
// lower index exactly as RankInRow does on a materialized row. The
// probability comes from the cached normalizer (one exp), bit-identical to
// the materialized entry.
//
// Note the one deliberate divergence from ranking a materialized row:
// softmax can collapse raw weights that differ only in their last ulps into
// exact probability ties. Ranking the raw row keeps such cells distinct.
// Every scoring path ranks the same way, so trajectories remain
// bit-identical across full and incremental scoring.
func (tm *TransitionMatrix) ScoreTransition(i, h int) (prob, fitness float64, err error) {
	if i < 0 || i >= tm.n || h < 0 || h >= tm.n {
		return 0, 0, fmt.Errorf("score transition %d→%d in %d-cell matrix: out of range", i, h, tm.n)
	}
	return tm.probAt(i, h), FitnessFromRow(tm.row(i), h), nil
}

// FitnessAt returns only the fitness score for the transition i→h — the
// read used when the caller does not need the probability, e.g. offline
// mean-fitness replays and scoring with the probability gate disabled. It
// is a pure comparison scan over the raw row: no normalizer, no
// exponentials (see ScoreTransition for why the raw rank is the normalized
// rank).
func (tm *TransitionMatrix) FitnessAt(i, h int) (float64, error) {
	if i < 0 || i >= tm.n || h < 0 || h >= tm.n {
		return 0, fmt.Errorf("fitness of transition %d→%d in %d-cell matrix: out of range", i, h, tm.n)
	}
	return FitnessFromRow(tm.row(i), h), nil
}

// Grow remaps the matrix after the grid grew from oldGrid dims to the
// current dims of g, as described by gr. Existing transition mass is
// preserved; new rows start at the prior; new columns of existing rows are
// extrapolated from their nearest pre-existing cell with one kernel step
// penalty per extra cell of distance (for the Dirichlet rule the clamped
// cell's count is copied with geometric decay).
func (tm *TransitionMatrix) Grow(g *Grid, gr Growth) error {
	nx := tm.nx + gr.XLow + gr.XHigh
	ny := tm.ny + gr.YLow + gr.YHigh
	if gnx, gny := g.Dims(); gnx != nx || gny != ny {
		return fmt.Errorf("grow to %dx%d but grid is %dx%d", nx, ny, gnx, gny)
	}
	if nx == tm.nx && ny == tm.ny {
		return nil
	}
	tm.kernel.resize(nx, ny)
	old := tm.weights
	oldNx, oldNy, oldN := tm.nx, tm.ny, tm.n
	tm.nx, tm.ny, tm.n = nx, ny, nx*ny
	tm.weights = make([]float64, tm.n*tm.n)
	// Every cached normalizer is sized for the old dims; drop them all and
	// let the next read rebuild lazily.
	tm.probs, tm.clean = nil, nil
	tm.norm, tm.normOK = nil, nil

	penalty := tm.kernel.StepPenalty()
	for i := 0; i < tm.n; i++ {
		xi, yi := tm.coords(i)
		oxi, oyi := xi-gr.XLow, yi-gr.YLow
		dst := tm.row(i)
		if oxi < 0 || oxi >= oldNx || oyi < 0 || oyi >= oldNy {
			// Transitions out of a brand-new cell: fresh prior.
			tm.initPriorRow(dst, i)
			continue
		}
		src := old[(oxi*oldNy+oyi)*oldN : (oxi*oldNy+oyi+1)*oldN]
		for j := 0; j < tm.n; j++ {
			xj, yj := tm.coords(j)
			oxj, oyj := xj-gr.XLow, yj-gr.YLow
			cxj := clampInt(oxj, 0, oldNx-1)
			cyj := clampInt(oyj, 0, oldNy-1)
			extra := absInt(oxj-cxj) + absInt(oyj-cyj)
			v := src[cxj*oldNy+cyj]
			if tm.rule == UpdateKernelBayes {
				dst[j] = v - float64(extra)*penalty
			} else {
				dst[j] = v * math.Exp(-float64(extra)*penalty)
			}
		}
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
