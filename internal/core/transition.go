package core

import (
	"fmt"
	"math"

	"mcorr/internal/mathx"
)

// UpdateRule selects how observed transitions update the matrix.
type UpdateRule int

const (
	// UpdateKernelBayes is the paper's rule (Eq. 1–2): the posterior of a
	// row is the prior multiplied, per observation, by a likelihood that
	// peaks at the observed destination cell and decays with cell distance
	// — implemented additively in log space.
	UpdateKernelBayes UpdateRule = iota + 1
	// UpdateDirichlet is the classical add-count smoothing ablation: the
	// prior contributes pseudo-counts and each observation adds one count
	// to the observed destination only.
	UpdateDirichlet
)

// String returns the rule's name.
func (r UpdateRule) String() string {
	switch r {
	case UpdateKernelBayes:
		return "kernel-bayes"
	case UpdateDirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("UpdateRule(%d)", int(r))
	}
}

// TransitionMatrix is the paper's s×s matrix V with V[i][j] = P(c_i → c_j),
// stored row-wise as unnormalized log weights (kernel-Bayes) or counts
// (Dirichlet). Rows are normalized on read.
//
// TransitionMatrix is not safe for concurrent use; the Model guards it.
type TransitionMatrix struct {
	nx, ny int
	n      int
	kernel *Kernel
	rule   UpdateRule
	// weights holds n rows of n entries. For UpdateKernelBayes the
	// entries are log weights (softmax-normalized on read); for
	// UpdateDirichlet they are nonnegative pseudo-counts (sum-normalized
	// on read).
	weights []float64
	// strength is the prior pseudo-count mass per row for UpdateDirichlet.
	strength float64
	observed int
}

// NewTransitionMatrix builds the prior matrix over the grid's cells using
// the kernel's spatial-closeness weights. For the Dirichlet rule, strength
// is the prior's total pseudo-count mass per row (≤ 0 selects 10).
func NewTransitionMatrix(g *Grid, kernel *Kernel, rule UpdateRule, strength float64) (*TransitionMatrix, error) {
	if kernel == nil {
		return nil, fmt.Errorf("new transition matrix: nil kernel")
	}
	switch rule {
	case UpdateKernelBayes, UpdateDirichlet:
	default:
		return nil, fmt.Errorf("new transition matrix: unknown update rule %d", int(rule))
	}
	if strength <= 0 {
		strength = 10
	}
	nx, ny := g.Dims()
	kernel.resize(nx, ny)
	tm := &TransitionMatrix{nx: nx, ny: ny, n: nx * ny, kernel: kernel, rule: rule, strength: strength}
	tm.weights = make([]float64, tm.n*tm.n)
	for i := 0; i < tm.n; i++ {
		tm.initPriorRow(tm.row(i), i)
	}
	return tm, nil
}

// row returns the backing slice of row i.
func (tm *TransitionMatrix) row(i int) []float64 { return tm.weights[i*tm.n : (i+1)*tm.n] }

// coords converts a cell index to (xi, yi) under the matrix's current dims.
func (tm *TransitionMatrix) coords(c int) (int, int) { return c / tm.ny, c % tm.ny }

// initPriorRow fills dst with the prior for transitions out of cell i.
func (tm *TransitionMatrix) initPriorRow(dst []float64, i int) {
	xi, yi := tm.coords(i)
	if tm.rule == UpdateKernelBayes {
		for j := range dst {
			xj, yj := tm.coords(j)
			dst[j] = tm.kernel.LogWeight(xi-xj, yi-yj)
		}
		return
	}
	// Dirichlet: normalized prior scaled to the pseudo-count mass.
	var sum float64
	for j := range dst {
		xj, yj := tm.coords(j)
		dst[j] = tm.kernel.Weight(xi-xj, yi-yj)
		sum += dst[j]
	}
	for j := range dst {
		dst[j] *= tm.strength / sum
	}
}

// NumCells returns s, the matrix dimension.
func (tm *TransitionMatrix) NumCells() int { return tm.n }

// Observed returns how many transitions have been incorporated.
func (tm *TransitionMatrix) Observed() int { return tm.observed }

// Rule returns the matrix's update rule.
func (tm *TransitionMatrix) Rule() UpdateRule { return tm.rule }

// Observe incorporates one observed transition from cell i to cell h.
func (tm *TransitionMatrix) Observe(i, h int) error {
	if i < 0 || i >= tm.n || h < 0 || h >= tm.n {
		return fmt.Errorf("observe transition %d→%d in %d-cell matrix: out of range", i, h, tm.n)
	}
	tm.observed++
	row := tm.row(i)
	if tm.rule == UpdateDirichlet {
		row[h]++
		return nil
	}
	// Kernel-Bayes: add the log likelihood, which peaks at h and decays
	// with distance (paper Eq. 2), then re-center the row at zero so the
	// log weights stay bounded over long streams.
	xh, yh := tm.coords(h)
	mx := math.Inf(-1)
	for j := range row {
		xj, yj := tm.coords(j)
		row[j] += tm.kernel.LogWeight(xh-xj, yh-yj)
		if row[j] > mx {
			mx = row[j]
		}
	}
	for j := range row {
		row[j] -= mx
	}
	return nil
}

// RowInto writes the normalized transition distribution out of cell i into
// dst (allocating when dst is too small) and returns it.
func (tm *TransitionMatrix) RowInto(dst []float64, i int) ([]float64, error) {
	if i < 0 || i >= tm.n {
		return nil, fmt.Errorf("row %d of %d-cell matrix: out of range", i, tm.n)
	}
	if cap(dst) < tm.n {
		dst = make([]float64, tm.n)
	}
	dst = dst[:tm.n]
	copy(dst, tm.row(i))
	if tm.rule == UpdateKernelBayes {
		if _, err := mathx.SoftmaxInto(dst, dst); err != nil {
			return nil, err
		}
		return dst, nil
	}
	mathx.Normalize(dst)
	return dst, nil
}

// Prob returns P(c_i → c_j). It normalizes row i on the fly; use RowInto
// when several entries of one row are needed.
func (tm *TransitionMatrix) Prob(i, j int) (float64, error) {
	row, err := tm.RowInto(nil, i)
	if err != nil {
		return 0, err
	}
	return row[j], nil
}

// Grow remaps the matrix after the grid grew from oldGrid dims to the
// current dims of g, as described by gr. Existing transition mass is
// preserved; new rows start at the prior; new columns of existing rows are
// extrapolated from their nearest pre-existing cell with one kernel step
// penalty per extra cell of distance (for the Dirichlet rule the clamped
// cell's count is copied with geometric decay).
func (tm *TransitionMatrix) Grow(g *Grid, gr Growth) error {
	nx := tm.nx + gr.XLow + gr.XHigh
	ny := tm.ny + gr.YLow + gr.YHigh
	if gnx, gny := g.Dims(); gnx != nx || gny != ny {
		return fmt.Errorf("grow to %dx%d but grid is %dx%d", nx, ny, gnx, gny)
	}
	if nx == tm.nx && ny == tm.ny {
		return nil
	}
	tm.kernel.resize(nx, ny)
	old := tm.weights
	oldNx, oldNy, oldN := tm.nx, tm.ny, tm.n
	tm.nx, tm.ny, tm.n = nx, ny, nx*ny
	tm.weights = make([]float64, tm.n*tm.n)

	penalty := tm.kernel.StepPenalty()
	for i := 0; i < tm.n; i++ {
		xi, yi := tm.coords(i)
		oxi, oyi := xi-gr.XLow, yi-gr.YLow
		dst := tm.row(i)
		if oxi < 0 || oxi >= oldNx || oyi < 0 || oyi >= oldNy {
			// Transitions out of a brand-new cell: fresh prior.
			tm.initPriorRow(dst, i)
			continue
		}
		src := old[(oxi*oldNy+oyi)*oldN : (oxi*oldNy+oyi+1)*oldN]
		for j := 0; j < tm.n; j++ {
			xj, yj := tm.coords(j)
			oxj, oyj := xj-gr.XLow, yj-gr.YLow
			cxj := clampInt(oxj, 0, oldNx-1)
			cyj := clampInt(oyj, 0, oldNy-1)
			extra := absInt(oxj-cxj) + absInt(oyj-cyj)
			v := src[cxj*oldNy+cyj]
			if tm.rule == UpdateKernelBayes {
				dst[j] = v - float64(extra)*penalty
			} else {
				dst[j] = v * math.Exp(-float64(extra)*penalty)
			}
		}
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
