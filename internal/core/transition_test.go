package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mcorr/internal/mathx"
)

func newTM(t *testing.T, nx, ny int, rule UpdateRule) (*Grid, *TransitionMatrix) {
	t.Helper()
	g, err := UniformGrid(0, float64(nx), nx, 0, float64(ny), ny)
	if err != nil {
		t.Fatalf("UniformGrid: %v", err)
	}
	k, err := NewKernel(KernelHarmonic, 2, nx, ny)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	tm, err := NewTransitionMatrix(g, k, rule, 0)
	if err != nil {
		t.Fatalf("NewTransitionMatrix: %v", err)
	}
	return g, tm
}

func TestNewTransitionMatrixValidation(t *testing.T) {
	g, _ := UniformGrid(0, 2, 2, 0, 2, 2)
	if _, err := NewTransitionMatrix(g, nil, UpdateKernelBayes, 0); err == nil {
		t.Error("nil kernel: want error")
	}
	k, _ := NewKernel(KernelHarmonic, 2, 2, 2)
	if _, err := NewTransitionMatrix(g, k, UpdateRule(9), 0); err == nil {
		t.Error("bad rule: want error")
	}
}

func TestUpdateRuleString(t *testing.T) {
	if UpdateKernelBayes.String() != "kernel-bayes" || UpdateDirichlet.String() != "dirichlet" {
		t.Error("rule names wrong")
	}
	if UpdateRule(7).String() == "" {
		t.Error("unknown rule should render")
	}
}

func TestRowsAreDistributions(t *testing.T) {
	for _, rule := range []UpdateRule{UpdateKernelBayes, UpdateDirichlet} {
		_, tm := newTM(t, 4, 3, rule)
		for i := 0; i < tm.NumCells(); i++ {
			row, err := tm.RowInto(nil, i)
			if err != nil {
				t.Fatalf("RowInto: %v", err)
			}
			var sum float64
			for _, p := range row {
				if p < 0 {
					t.Fatalf("rule %v: negative probability", rule)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("rule %v row %d sums to %g", rule, i, sum)
			}
		}
	}
}

func TestObserveShiftsMassTowardDestination(t *testing.T) {
	for _, rule := range []UpdateRule{UpdateKernelBayes, UpdateDirichlet} {
		_, tm := newTM(t, 3, 3, rule)
		before, err := tm.Prob(4, 1)
		if err != nil {
			t.Fatalf("Prob: %v", err)
		}
		for n := 0; n < 20; n++ {
			if err := tm.Observe(4, 1); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		after, err := tm.Prob(4, 1)
		if err != nil {
			t.Fatalf("Prob: %v", err)
		}
		if after <= before {
			t.Errorf("rule %v: P(c5→c2) did not grow (%.4f → %.4f)", rule, before, after)
		}
		// The observed destination should now be the mode of the row.
		row, _ := tm.RowInto(nil, 4)
		if RankInRow(row, 1) != 1 {
			t.Errorf("rule %v: destination should rank first after 20 observations", rule)
		}
		if tm.Observed() != 20 {
			t.Errorf("Observed = %d", tm.Observed())
		}
	}
}

// TestFig9Fig10PriorVsPosterior mirrors the paper's Figures 9/10: the prior
// peaks at the source cell; after repeatedly observing a transition to a
// different cell, the posterior peak moves there.
func TestFig9Fig10PriorVsPosterior(t *testing.T) {
	_, tm := newTM(t, 4, 4, UpdateKernelBayes)
	src := 9 // an interior cell (the paper's c12 analog)
	row, _ := tm.RowInto(nil, src)
	if RankInRow(row, src) != 1 {
		t.Fatal("prior should peak at the source cell")
	}
	dst := 5 // a neighbor (the paper's c10 analog)
	for n := 0; n < 50; n++ {
		if err := tm.Observe(src, dst); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	row, _ = tm.RowInto(nil, src)
	if RankInRow(row, dst) != 1 {
		t.Error("posterior should peak at the frequently observed destination")
	}
}

func TestObserveOtherRowsUntouched(t *testing.T) {
	_, tm := newTM(t, 3, 3, UpdateKernelBayes)
	before, _ := tm.RowInto(nil, 2)
	beforeCopy := append([]float64(nil), before...)
	for n := 0; n < 10; n++ {
		tm.Observe(4, 1)
	}
	after, _ := tm.RowInto(nil, 2)
	for j := range after {
		if after[j] != beforeCopy[j] {
			t.Fatal("observing row 4 mutated row 2")
		}
	}
}

func TestObserveAndRowErrors(t *testing.T) {
	_, tm := newTM(t, 2, 2, UpdateKernelBayes)
	if err := tm.Observe(-1, 0); err == nil {
		t.Error("negative source: want error")
	}
	if err := tm.Observe(0, 4); err == nil {
		t.Error("destination out of range: want error")
	}
	if _, err := tm.RowInto(nil, 4); err == nil {
		t.Error("row out of range: want error")
	}
	if _, err := tm.Prob(9, 0); err == nil {
		t.Error("prob out of range: want error")
	}
}

func TestRowIntoReusesBuffer(t *testing.T) {
	_, tm := newTM(t, 3, 3, UpdateKernelBayes)
	buf := make([]float64, 9)
	row, err := tm.RowInto(buf, 0)
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	if &row[0] != &buf[0] {
		t.Error("RowInto should reuse a large-enough buffer")
	}
}

func TestLongStreamStaysFinite(t *testing.T) {
	// Thousands of updates must not underflow or produce NaNs thanks to
	// the log-space re-centering.
	_, tm := newTM(t, 5, 5, UpdateKernelBayes)
	rng := rand.New(rand.NewSource(8))
	cur := 0
	for n := 0; n < 20000; n++ {
		next := rng.Intn(25)
		if err := tm.Observe(cur, next); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		cur = next
	}
	for i := 0; i < 25; i++ {
		row, err := tm.RowInto(nil, i)
		if err != nil {
			t.Fatalf("RowInto: %v", err)
		}
		var sum float64
		for _, p := range row {
			if math.IsNaN(p) || p < 0 {
				t.Fatal("invalid probability after long stream")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g after long stream", i, sum)
		}
	}
}

func TestGrowPreservesLearnedMass(t *testing.T) {
	g, tm := newTM(t, 3, 3, UpdateKernelBayes)
	// Teach a strong 4→1 transition.
	for n := 0; n < 30; n++ {
		tm.Observe(4, 1)
	}
	// Grow one interval on the high X side: indices are unchanged
	// (row-major with appended X rows), matrix becomes 12 cells.
	gr, grew := g.GrowToInclude(mathx.Point2{X: 3.5, Y: 1}, 3)
	if !grew {
		t.Fatal("growth rejected")
	}
	if err := tm.Grow(g, gr); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if tm.NumCells() != 12 {
		t.Fatalf("NumCells = %d, want 12", tm.NumCells())
	}
	row, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	if RankInRow(row, 1) != 1 {
		t.Error("learned transition should survive growth")
	}
	// New cells exist with sane probabilities.
	var sum float64
	for _, p := range row {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("grown row sums to %g", sum)
	}
}

func TestGrowWithLowSidePrependRemapsIndices(t *testing.T) {
	g, tm := newTM(t, 3, 3, UpdateKernelBayes)
	for n := 0; n < 30; n++ {
		tm.Observe(4, 1) // (1,1) → (0,1) in old coords
	}
	gr, grew := g.GrowToInclude(mathx.Point2{X: -0.5, Y: -0.5}, 3)
	if !grew || gr.XLow != 1 || gr.YLow != 1 {
		t.Fatalf("growth = %+v", gr)
	}
	if err := tm.Grow(g, gr); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	// Old (1,1) is now (2,2) = 2*4+2 = 10; old (0,1) is now (1,2) = 6.
	row, err := tm.RowInto(nil, 10)
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	if RankInRow(row, 6) != 1 {
		t.Error("learned transition should follow the index remap")
	}
}

func TestGrowDimensionMismatch(t *testing.T) {
	g, tm := newTM(t, 3, 3, UpdateKernelBayes)
	if err := tm.Grow(g, Growth{XHigh: 1}); err == nil {
		t.Error("growth not applied to grid: want error")
	}
	// A no-op growth with matching grid succeeds.
	if err := tm.Grow(g, Growth{}); err != nil {
		t.Errorf("no-op grow: %v", err)
	}
}

func TestGrowDirichlet(t *testing.T) {
	g, _ := UniformGrid(0, 3, 3, 0, 3, 3)
	k, _ := NewKernel(KernelHarmonic, 2, 3, 3)
	tm, err := NewTransitionMatrix(g, k, UpdateDirichlet, 5)
	if err != nil {
		t.Fatalf("NewTransitionMatrix: %v", err)
	}
	for n := 0; n < 30; n++ {
		tm.Observe(4, 1)
	}
	gr, grew := g.GrowToInclude(mathx.Point2{X: 3.5, Y: 1}, 3)
	if !grew {
		t.Fatal("growth rejected")
	}
	if err := tm.Grow(g, gr); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	row, err := tm.RowInto(nil, 4)
	if err != nil {
		t.Fatalf("RowInto: %v", err)
	}
	if RankInRow(row, 1) != 1 {
		t.Error("Dirichlet counts should survive growth")
	}
}

// Property: after arbitrary observation sequences, every row remains a
// probability distribution.
func TestRowsRemainDistributionsProperty(t *testing.T) {
	f := func(seq []uint8, dirichlet bool) bool {
		rule := UpdateKernelBayes
		if dirichlet {
			rule = UpdateDirichlet
		}
		g, err := UniformGrid(0, 3, 3, 0, 3, 3)
		if err != nil {
			return false
		}
		k, err := NewKernel(KernelHarmonic, 2, 3, 3)
		if err != nil {
			return false
		}
		tm, err := NewTransitionMatrix(g, k, rule, 0)
		if err != nil {
			return false
		}
		cur := 0
		for _, b := range seq {
			next := int(b) % 9
			if err := tm.Observe(cur, next); err != nil {
				return false
			}
			cur = next
		}
		for i := 0; i < 9; i++ {
			row, err := tm.RowInto(nil, i)
			if err != nil {
				return false
			}
			var sum float64
			for _, p := range row {
				if p < 0 || math.IsNaN(p) {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
