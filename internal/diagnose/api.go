package diagnose

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
)

// FleetView is the slice of a scoring fleet the topology endpoint
// reads. Both *manager.Manager and the sharded *shard.Coordinator
// satisfy it.
type FleetView interface {
	// IDs returns the watched measurements.
	IDs() []timeseries.MeasurementID
	// PairStates returns every link's live scheduler state in canonical
	// pair order.
	PairStates() []manager.PairState
	// PairMeans returns the accumulated mean fitness per link (nil
	// unless pair-mean tracking is on).
	PairMeans() map[manager.Pair]float64
}

// DiscoveryView is the slice of the discovery tier the topology endpoint
// reads when a bounded pair graph is active (see internal/discover).
type DiscoveryView interface {
	// AdmissionScores returns each admitted pair's last best-lag
	// correlation estimate.
	AdmissionScores() map[manager.Pair]float64
	// BudgetInfo returns the admitted pair count, the configured budget
	// (0 = unlimited) and the full candidate count l(l−1)/2.
	BudgetInfo() (admitted, budget, candidates int)
}

// API serves the diagnosis engine over HTTP as versioned JSON:
//
//	/api/v1/incidents        all retained incidents, open first
//	/api/v1/incidents/{id}   one incident digest
//	/api/v1/fitness          ?measurement=metric@machine&window=N
//	                         fitness history (system when measurement
//	                         is omitted)
//	/api/v1/topology         the pair graph with per-pair fitness and
//	                         dirty/steady state
//
// Mount it at /api/ (it routes on the full path). fleet may be nil, in
// which case /api/v1/topology answers 404. eng may also be nil (a
// tenant without a diagnosis engine still serves topology); the
// incident and fitness endpoints then answer 404.
//
// Errors use the shared obs.APIError envelope.
type API struct {
	eng   *Engine
	fleet FleetView
	disc  DiscoveryView
}

// NewAPI builds the HTTP surface over an engine and an optional fleet.
func NewAPI(eng *Engine, fleet FleetView) *API {
	obs.RegisterRoute("GET", "/api/v1/incidents")
	obs.RegisterRoute("GET", "/api/v1/incidents/{id}")
	obs.RegisterRoute("GET", "/api/v1/fitness")
	obs.RegisterRoute("GET", "/api/v1/topology")
	return &API{eng: eng, fleet: fleet}
}

// SetDiscovery attaches the discovery tier so /api/v1/topology reports
// per-pair admission scores and the budget occupancy. Nil detaches.
func (a *API) SetDiscovery(d DiscoveryView) { a.disc = d }

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/api/v1/")
	switch {
	case path == "incidents":
		a.serveIncidents(w)
	case strings.HasPrefix(path, "incidents/"):
		a.serveIncident(w, strings.TrimPrefix(path, "incidents/"))
	case path == "fitness":
		a.serveFitness(w, r)
	case path == "topology":
		a.serveTopology(w)
	default:
		obs.WriteJSONError(w, http.StatusNotFound, "not_found",
			"unknown endpoint; see /api/v1/incidents /api/v1/fitness /api/v1/topology")
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// incidentsResponse is the /api/v1/incidents payload.
type incidentsResponse struct {
	Open      int      `json:"open"`
	Total     int      `json:"total"`
	Incidents []Digest `json:"incidents"`
}

func (a *API) serveIncidents(w http.ResponseWriter) {
	if a.eng == nil {
		obs.WriteJSONError(w, http.StatusNotFound, "not_found", "no diagnosis engine attached")
		return
	}
	incidents := a.eng.Incidents()
	if incidents == nil {
		incidents = []Digest{}
	}
	writeJSON(w, incidentsResponse{
		Open:      a.eng.OpenCount(),
		Total:     len(incidents),
		Incidents: incidents,
	})
}

func (a *API) serveIncident(w http.ResponseWriter, id string) {
	if a.eng == nil {
		obs.WriteJSONError(w, http.StatusNotFound, "not_found", "no diagnosis engine attached")
		return
	}
	d, ok := a.eng.Incident(id)
	if !ok {
		obs.WriteJSONError(w, http.StatusNotFound, "unknown_incident", "no incident "+id)
		return
	}
	writeJSON(w, d)
}

// fitnessResponse is the /api/v1/fitness payload.
type fitnessResponse struct {
	// Measurement is "metric@machine", or "system" for the system
	// aggregate.
	Measurement string         `json:"measurement"`
	Points      []FitnessPoint `json:"points"`
}

func (a *API) serveFitness(w http.ResponseWriter, r *http.Request) {
	if a.eng == nil {
		obs.WriteJSONError(w, http.StatusNotFound, "not_found", "no diagnosis engine attached")
		return
	}
	q := r.URL.Query()
	window := 0
	if ws := q.Get("window"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			obs.WriteJSONError(w, http.StatusBadRequest, "bad_request", "window must be a non-negative integer")
			return
		}
		window = n
	}
	name := q.Get("measurement")
	if name == "" || name == "system" {
		pts := a.eng.SystemHistory(window)
		if pts == nil {
			pts = []FitnessPoint{}
		}
		writeJSON(w, fitnessResponse{Measurement: "system", Points: pts})
		return
	}
	pts, ok := a.eng.HistoryByName(name, window)
	if !ok {
		obs.WriteJSONError(w, http.StatusNotFound, "unknown_measurement", "unknown measurement "+name)
		return
	}
	if pts == nil {
		pts = []FitnessPoint{}
	}
	writeJSON(w, fitnessResponse{Measurement: name, Points: pts})
}

// topologyPair is one edge of the pair graph in /api/v1/topology.
type topologyPair struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Shard int    `json:"shard"`
	// Steady reports the incremental scheduler's dirty/steady state:
	// steady pairs carry a cached outcome forward instead of re-scoring.
	Steady bool `json:"steady"`
	Scored bool `json:"scored"`
	// Fitness is the link's last Q^{a,b}.
	Fitness float64 `json:"fitness"`
	// Mean is the link's accumulated mean fitness (omitted unless the
	// fleet tracks pair means).
	Mean *float64 `json:"mean,omitempty"`
	// Admission is the discovery tier's last correlation estimate for
	// this link (omitted when no discovery tier is attached).
	Admission *float64 `json:"admission,omitempty"`
}

// topologyDiscovery summarizes the discovery tier's budget state in
// /api/v1/topology (present only when a bounded pair graph is active).
type topologyDiscovery struct {
	Admitted   int `json:"admitted"`
	Budget     int `json:"budget"` // 0 = unlimited
	Candidates int `json:"candidates"`
	// Occupancy is admitted/budget (admitted/candidates when unlimited).
	Occupancy float64 `json:"occupancy"`
}

// topologyResponse is the /api/v1/topology payload.
type topologyResponse struct {
	Measurements []string           `json:"measurements"`
	Pairs        []topologyPair     `json:"pairs"`
	Discovery    *topologyDiscovery `json:"discovery,omitempty"`
}

func (a *API) serveTopology(w http.ResponseWriter) {
	if a.fleet == nil {
		obs.WriteJSONError(w, http.StatusNotFound, "not_found", "no fleet attached")
		return
	}
	ids := a.fleet.IDs()
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.String()
	}
	means := a.fleet.PairMeans()
	var scores map[manager.Pair]float64
	var disc *topologyDiscovery
	if a.disc != nil {
		scores = a.disc.AdmissionScores()
		admitted, budget, candidates := a.disc.BudgetInfo()
		den := budget
		if den == 0 {
			den = candidates
		}
		occ := 0.0
		if den > 0 {
			occ = float64(admitted) / float64(den)
		}
		disc = &topologyDiscovery{Admitted: admitted, Budget: budget, Candidates: candidates, Occupancy: occ}
	}
	states := a.fleet.PairStates()
	pairs := make([]topologyPair, len(states))
	for i, st := range states {
		tp := topologyPair{
			A:       st.Pair.A.String(),
			B:       st.Pair.B.String(),
			Shard:   st.Shard,
			Steady:  st.Steady,
			Scored:  st.Scored,
			Fitness: st.Fitness,
		}
		if m, ok := means[st.Pair]; ok {
			mv := m
			tp.Mean = &mv
		}
		if r, ok := scores[st.Pair]; ok {
			rv := r
			tp.Admission = &rv
		}
		pairs[i] = tp
	}
	writeJSON(w, topologyResponse{Measurements: names, Pairs: pairs, Discovery: disc})
}
