package diagnose

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

var (
	t0    = timeseries.TestStart
	step  = timeseries.SampleStep
	mCPU1 = timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}
	mNET1 = timeseries.MeasurementID{Machine: "m1", Metric: "net"}
	mCPU2 = timeseries.MeasurementID{Machine: "m2", Metric: "cpu"}
	mNET2 = timeseries.MeasurementID{Machine: "m2", Metric: "net"}
	all   = []timeseries.MeasurementID{mCPU1, mNET1, mCPU2, mNET2}
)

// rep builds one step report at row i. Every measurement scores q except
// the overrides.
func rep(i int, sys, q float64, override map[timeseries.MeasurementID]float64) manager.StepReport {
	meas := make(map[timeseries.MeasurementID]float64, len(all))
	for _, id := range all {
		meas[id] = q
	}
	for id, v := range override {
		meas[id] = v
	}
	return manager.StepReport{Time: t0.Add(time.Duration(i) * step), System: sys, Measurements: meas}
}

// faultStream drives an engine through a canonical incident: healthy rows,
// a fault window where cpu@m1 collapses, then recovery. Returns the row
// index after the stream.
func faultStream(e *Engine, healthy, faulty, recovery int) int {
	i := 0
	for ; i < healthy; i++ {
		e.Observe(rep(i, 0.9, 0.9, nil))
	}
	for j := 0; j < faulty; j++ {
		e.Observe(rep(i, 0.55, 0.65, map[timeseries.MeasurementID]float64{mCPU1: 0.1}))
		i++
	}
	for j := 0; j < recovery; j++ {
		e.Observe(rep(i, 0.9, 0.9, nil))
		i++
	}
	return i
}

func TestIncidentOpensRanksAndCloses(t *testing.T) {
	e := NewEngine(Config{})
	cfg := e.Config()

	faultStream(e, 10, cfg.OpenAfter, 0)
	if e.OpenCount() != 1 {
		t.Fatalf("OpenCount after %d low rows = %d, want 1", cfg.OpenAfter, e.OpenCount())
	}
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("Incidents = %d, want 1", len(incs))
	}
	d := incs[0]
	impact := t0.Add(10 * step)
	if !d.ImpactTime.Equal(impact) {
		t.Errorf("ImpactTime = %v, want first low row %v", d.ImpactTime, impact)
	}
	wantID := fmt.Sprintf("inc-1-%s", impact.UTC().Format("20060102T150405Z"))
	if d.ID != wantID {
		t.Errorf("ID = %q, want %q", d.ID, wantID)
	}
	if d.State != StateOpen {
		t.Errorf("State = %q, want open", d.State)
	}
	if len(d.Candidates) != 1 || d.Candidates[0].Measurement != mCPU1.String() {
		t.Fatalf("Candidates = %+v, want exactly cpu@m1", d.Candidates)
	}
	c := d.Candidates[0]
	if c.Ring != 0 {
		t.Errorf("Ring = %d, want 0 (broke on the impact row)", c.Ring)
	}
	if got, want := c.Drop, 0.8; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Drop = %v, want baseline 0.9 - lowest 0.1 = %v", got, want)
	}
	if d.Suspect != "m1" {
		t.Errorf("Suspect = %q, want m1", d.Suspect)
	}
	if d.Broken != 1 {
		t.Errorf("Broken = %d, want 1", d.Broken)
	}
	if len(d.Chain) != 1 || d.Chain[0].Measurement != mCPU1.String() || d.Chain[0].Q != 0.1 {
		t.Errorf("Chain = %+v", d.Chain)
	}
	if d.SystemLow != 0.55 {
		t.Errorf("SystemLow = %v, want 0.55", d.SystemLow)
	}
	// One broken measurement out of four, Q well below threshold*0.95:
	// warning, not critical (0.55 > 0.8*0.75 = 0.6 is false — 0.55 < 0.6,
	// so critical).
	if d.Severity != "critical" {
		t.Errorf("Severity = %q, want critical (SystemLow 0.55 < 0.6)", d.Severity)
	}

	// Recovery closes the incident after CloseAfter healthy rows.
	e2 := NewEngine(Config{})
	faultStream(e2, 10, 6, e2.Config().CloseAfter)
	if e2.OpenCount() != 0 {
		t.Fatalf("incident still open after %d healthy rows", e2.Config().CloseAfter)
	}
	incs = e2.Incidents()
	if len(incs) != 1 || incs[0].State != StateClosed {
		t.Fatalf("Incidents after close = %+v", incs)
	}
	if incs[0].ClosedAt.IsZero() || incs[0].ClosedAt.Before(incs[0].OpenedAt) {
		t.Errorf("ClosedAt = %v not after OpenedAt %v", incs[0].ClosedAt, incs[0].OpenedAt)
	}
	if got, ok := e2.Incident(incs[0].ID); !ok || got.ID != incs[0].ID {
		t.Errorf("Incident(%q) lookup failed", incs[0].ID)
	}
	if _, ok := e2.Incident("inc-404-nope"); ok {
		t.Error("Incident on unknown id reported ok")
	}
}

func TestOpenAfterDebouncesBlips(t *testing.T) {
	e := NewEngine(Config{OpenAfter: 3})
	// Two low rows, then recovery: no incident.
	e.Observe(rep(0, 0.9, 0.9, nil))
	e.Observe(rep(1, 0.5, 0.6, nil))
	e.Observe(rep(2, 0.5, 0.6, nil))
	e.Observe(rep(3, 0.9, 0.9, nil))
	if e.OpenCount() != 0 {
		t.Fatal("blip below OpenAfter opened an incident")
	}
	// Three consecutive low rows open one.
	for i := 4; i < 7; i++ {
		e.Observe(rep(i, 0.5, 0.6, nil))
	}
	if e.OpenCount() != 1 {
		t.Fatal("sustained low run did not open an incident")
	}
}

func TestFanOutFromPairScoresAndAlarms(t *testing.T) {
	e := NewEngine(Config{})
	for i := 0; i < 8; i++ {
		e.Observe(rep(i, 0.9, 0.9, nil))
	}
	// Pair scores below PairBreak stamp both endpoints.
	r := rep(8, 0.5, 0.65, map[timeseries.MeasurementID]float64{mCPU1: 0.1})
	r.Pairs = map[manager.Pair]float64{
		{A: mCPU1, B: mNET1}: 0.2,
		{A: mCPU1, B: mCPU2}: 0.3,
		{A: mNET2, B: mCPU2}: 0.9, // healthy link: no stamp
	}
	e.Observe(r)
	// A pair alarm also stamps its endpoints.
	sink := e.WrapSink(nil)
	sink.Publish(alarm.Alarm{
		Time: r.Time, Scope: alarm.ScopePair, Severity: alarm.SeverityWarning,
		Measurement: mCPU1, Peer: mNET2, Score: 0.1, Threshold: 0.5,
	})
	e.Observe(rep(9, 0.5, 0.65, map[timeseries.MeasurementID]float64{mCPU1: 0.1}))

	incs := e.Incidents()
	if len(incs) != 1 || len(incs[0].Candidates) == 0 {
		t.Fatalf("Incidents = %+v", incs)
	}
	c := incs[0].Candidates[0]
	if c.Measurement != mCPU1.String() {
		t.Fatalf("top candidate = %q", c.Measurement)
	}
	if c.FanOut != 3 {
		t.Errorf("FanOut = %d, want 3 (two broken pair scores + one pair alarm)", c.FanOut)
	}
	if incs[0].PairAlarms != 1 {
		t.Errorf("PairAlarms = %d, want 1", incs[0].PairAlarms)
	}
}

func TestAlarmCountsArePerIncidentDeltas(t *testing.T) {
	e := NewEngine(Config{})
	sink := e.WrapSink(nil)
	// Alarms before the incident land in the baseline snapshot.
	for i := 0; i < 3; i++ {
		sink.Publish(alarm.Alarm{Time: t0, Scope: alarm.ScopeMeasurement, Severity: alarm.SeverityInfo, Measurement: mCPU2})
	}
	i := faultStream(e, 6, 1, 0)
	sink.Publish(alarm.Alarm{Time: t0.Add(time.Duration(i) * step), Scope: alarm.ScopeSystem, Severity: alarm.SeverityWarning})
	faultStreamAt(e, i, 3)
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("Incidents = %d", len(incs))
	}
	if incs[0].MeasurementAlarms != 0 {
		t.Errorf("MeasurementAlarms = %d, want 0 (all pre-incident)", incs[0].MeasurementAlarms)
	}
	if incs[0].SystemAlarms != 1 {
		t.Errorf("SystemAlarms = %d, want 1", incs[0].SystemAlarms)
	}
}

// faultStreamAt continues the canonical fault rows from row index i.
func faultStreamAt(e *Engine, i, faulty int) {
	for j := 0; j < faulty; j++ {
		e.Observe(rep(i+j, 0.55, 0.65, map[timeseries.MeasurementID]float64{mCPU1: 0.1}))
	}
}

func TestHistoryRingsAndWindows(t *testing.T) {
	e := NewEngine(Config{History: 4})
	for i := 0; i < 6; i++ {
		e.Observe(rep(i, 0.9, 0.9, nil))
	}
	sys := e.SystemHistory(0)
	if len(sys) != 4 {
		t.Fatalf("SystemHistory retained %d, want ring capacity 4", len(sys))
	}
	if !sys[0].T.Equal(t0.Add(2*step)) || !sys[3].T.Equal(t0.Add(5*step)) {
		t.Errorf("SystemHistory window = [%v .. %v], want rows 2..5", sys[0].T, sys[3].T)
	}
	for i := 1; i < len(sys); i++ {
		if !sys[i].T.After(sys[i-1].T) {
			t.Fatalf("SystemHistory not in time order at %d", i)
		}
	}
	pts, ok := e.History(mCPU1, 2)
	if !ok || len(pts) != 2 || !pts[1].T.Equal(t0.Add(5*step)) {
		t.Errorf("History(cpu@m1, 2) = %v ok=%v", pts, ok)
	}
	if _, ok := e.History(timeseries.MeasurementID{Machine: "nope", Metric: "x"}, 0); ok {
		t.Error("History on unknown measurement reported ok")
	}
	byName, ok := e.HistoryByName("cpu@m1", 0)
	if !ok || len(byName) != 4 {
		t.Errorf("HistoryByName = %d points ok=%v", len(byName), ok)
	}
	if _, ok := e.HistoryByName("ghost@m9", 0); ok {
		t.Error("HistoryByName on unknown name reported ok")
	}
	ids := e.Measurements()
	if len(ids) != 4 {
		t.Fatalf("Measurements = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			t.Fatalf("Measurements not sorted: %v", ids)
		}
	}
}

func TestFamiliesGroupByMachineAndMetric(t *testing.T) {
	e := NewEngine(Config{})
	for i := 0; i < 8; i++ {
		e.Observe(rep(i, 0.9, 0.9, nil))
	}
	// Both m1 measurements break: the machine family dominates.
	low := map[timeseries.MeasurementID]float64{mCPU1: 0.1, mNET1: 0.2}
	for j := 8; j < 10; j++ {
		e.Observe(rep(j, 0.5, 0.7, low))
	}
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("Incidents = %d", len(incs))
	}
	d := incs[0]
	if d.Broken != 2 {
		t.Fatalf("Broken = %d, want 2", d.Broken)
	}
	if len(d.Families) == 0 || d.Families[0].Kind != "machine" || d.Families[0].Key != "m1" || d.Families[0].Size != 2 {
		t.Errorf("top family = %+v, want machine m1 size 2", d.Families)
	}
	if len(d.Rings) != len(e.Config().Rings)+1 {
		t.Fatalf("Rings = %d buckets, want %d", len(d.Rings), len(e.Config().Rings)+1)
	}
	if d.Rings[0].Broken != 2 {
		t.Errorf("innermost ring Broken = %d, want 2", d.Rings[0].Broken)
	}
	if d.Rings[len(d.Rings)-1].Radius != -1 {
		t.Errorf("outer ring radius = %d, want -1", d.Rings[len(d.Rings)-1].Radius)
	}
}

func TestLocalizeRollupAttachesOutsideLock(t *testing.T) {
	e := NewEngine(Config{})
	e.SetLocalizeFn(func() manager.Localization {
		return manager.Localization{Machines: []manager.MachineScore{
			{Machine: "m1", Score: 0.2, Measurements: 2},
			{Machine: "m2", Score: 0.8, Measurements: 2},
		}}
	})
	faultStream(e, 6, 2, 0)
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("Incidents = %d", len(incs))
	}
	if len(incs[0].Machines) != 2 || incs[0].Machines[0].Machine != "m1" {
		t.Errorf("Machines rollup = %+v", incs[0].Machines)
	}
}

func TestClosedIncidentRetentionCap(t *testing.T) {
	e := NewEngine(Config{MaxIncidents: 2, OpenAfter: 1, CloseAfter: 1})
	i := 0
	for k := 0; k < 4; k++ {
		for j := 0; j < 3; j++ {
			e.Observe(rep(i, 0.9, 0.9, nil))
			i++
		}
		e.Observe(rep(i, 0.5, 0.6, nil))
		i++
		e.Observe(rep(i, 0.9, 0.9, nil))
		i++
	}
	incs := e.Incidents()
	if len(incs) != 2 {
		t.Fatalf("retained %d closed incidents, want cap 2", len(incs))
	}
	// Newest first, and the oldest two evicted.
	if !strings.HasPrefix(incs[0].ID, "inc-4-") || !strings.HasPrefix(incs[1].ID, "inc-3-") {
		t.Errorf("retained = %q, %q; want inc-4-*, inc-3-*", incs[0].ID, incs[1].ID)
	}
}

func TestPersistRoundTripMidIncident(t *testing.T) {
	cfg := Config{}
	full := NewEngine(cfg)
	faultStream(full, 10, 4, 3)

	// Same stream, interrupted mid-incident by a save/restore cycle.
	a := NewEngine(cfg)
	i := 0
	for ; i < 10; i++ {
		a.Observe(rep(i, 0.9, 0.9, nil))
	}
	faultStreamAt(a, i, 2)
	i += 2

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	b := NewEngine(cfg)
	if err := b.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	faultStreamAt(b, i, 2)
	i += 2
	for j := 0; j < 3; j++ {
		b.Observe(rep(i, 0.9, 0.9, nil))
		i++
	}

	want, got := full.Incidents(), b.Incidents()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("incidents diverge across save/restore:\nwant %+v\ngot  %+v", want, got)
	}
	if !reflect.DeepEqual(full.SystemHistory(0), b.SystemHistory(0)) {
		t.Error("system history diverges across save/restore")
	}
	wp, _ := full.History(mCPU1, 0)
	gp, _ := b.History(mCPU1, 0)
	if !reflect.DeepEqual(wp, gp) {
		t.Error("measurement history diverges across save/restore")
	}
}

func TestMarshalStateRejectsBadBlob(t *testing.T) {
	e := NewEngine(Config{})
	if err := e.UnmarshalState([]byte("not a gob blob")); err == nil {
		t.Fatal("UnmarshalState accepted garbage")
	}
	blob, err := e.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState: %v", err)
	}
	if err := NewEngine(Config{}).UnmarshalState(blob); err != nil {
		t.Fatalf("round trip of empty engine: %v", err)
	}
}

func TestDigestClonesAreIndependent(t *testing.T) {
	e := NewEngine(Config{})
	faultStream(e, 6, 2, 0)
	a := e.Incidents()[0]
	if len(a.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	a.Candidates[0].Measurement = "mutated"
	b := e.Incidents()[0]
	if b.Candidates[0].Measurement == "mutated" {
		t.Error("Incidents returned a shared slice; digests must be deep copies")
	}
}
