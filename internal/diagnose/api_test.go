package diagnose

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

// fakeFleet is a minimal FleetView for the topology endpoint.
type fakeFleet struct {
	means map[manager.Pair]float64
}

func (f fakeFleet) IDs() []timeseries.MeasurementID {
	return []timeseries.MeasurementID{mCPU1, mNET1}
}

func (f fakeFleet) PairStates() []manager.PairState {
	return []manager.PairState{
		{Pair: manager.Pair{A: mCPU1, B: mNET1}, Shard: 2, Steady: true, Scored: false, Fitness: 0.83},
	}
}

func (f fakeFleet) PairMeans() map[manager.Pair]float64 { return f.means }

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

func TestAPIIncidentsAndFitness(t *testing.T) {
	e := NewEngine(Config{})
	faultStream(e, 8, 3, 0)
	srv := httptest.NewServer(NewAPI(e, nil))
	defer srv.Close()

	var list incidentsResponse
	if code := getJSON(t, srv, "/api/v1/incidents", &list); code != 200 {
		t.Fatalf("/incidents = %d", code)
	}
	if list.Open != 1 || list.Total != 1 || len(list.Incidents) != 1 {
		t.Fatalf("incidents payload = %+v", list)
	}
	d := list.Incidents[0]
	if d.State != StateOpen || d.Suspect != "m1" {
		t.Errorf("digest = state %q suspect %q", d.State, d.Suspect)
	}

	var one Digest
	if code := getJSON(t, srv, "/api/v1/incidents/"+d.ID, &one); code != 200 {
		t.Fatalf("/incidents/%s = %d", d.ID, code)
	}
	if one.ID != d.ID || len(one.Candidates) != len(d.Candidates) {
		t.Errorf("single-incident payload diverges from list: %+v vs %+v", one, d)
	}
	if code := getJSON(t, srv, "/api/v1/incidents/inc-999-nope", nil); code != 404 {
		t.Errorf("unknown incident = %d, want 404", code)
	}

	var fit fitnessResponse
	if code := getJSON(t, srv, "/api/v1/fitness", &fit); code != 200 {
		t.Fatalf("/fitness = %d", code)
	}
	if fit.Measurement != "system" || len(fit.Points) != 11 {
		t.Errorf("system fitness = %q with %d points, want 11", fit.Measurement, len(fit.Points))
	}
	if code := getJSON(t, srv, "/api/v1/fitness?measurement=cpu@m1&window=4", &fit); code != 200 {
		t.Fatalf("/fitness?measurement = %d", code)
	}
	if fit.Measurement != "cpu@m1" || len(fit.Points) != 4 {
		t.Errorf("measurement fitness = %q with %d points, want 4", fit.Measurement, len(fit.Points))
	}
	if code := getJSON(t, srv, "/api/v1/fitness?measurement=ghost@m9", nil); code != 404 {
		t.Errorf("unknown measurement = %d, want 404", code)
	}
	if code := getJSON(t, srv, "/api/v1/fitness?window=-1", nil); code != 400 {
		t.Errorf("negative window = %d, want 400", code)
	}
	if code := getJSON(t, srv, "/api/v1/bogus", nil); code != 404 {
		t.Errorf("unknown endpoint = %d, want 404", code)
	}
}

func TestAPITopology(t *testing.T) {
	e := NewEngine(Config{})
	mean := 0.91
	srv := httptest.NewServer(NewAPI(e, fakeFleet{
		means: map[manager.Pair]float64{{A: mCPU1, B: mNET1}: mean},
	}))
	defer srv.Close()

	var topo topologyResponse
	if code := getJSON(t, srv, "/api/v1/topology", &topo); code != 200 {
		t.Fatalf("/topology = %d", code)
	}
	if len(topo.Measurements) != 2 || topo.Measurements[0] != "cpu@m1" {
		t.Errorf("measurements = %v", topo.Measurements)
	}
	if len(topo.Pairs) != 1 {
		t.Fatalf("pairs = %+v", topo.Pairs)
	}
	p := topo.Pairs[0]
	if p.A != "cpu@m1" || p.B != "net@m1" || p.Shard != 2 || !p.Steady || p.Scored || p.Fitness != 0.83 {
		t.Errorf("pair = %+v", p)
	}
	if p.Mean == nil || *p.Mean != mean {
		t.Errorf("pair mean = %v, want %v", p.Mean, mean)
	}

	// Without a fleet the endpoint answers 404, not a panic.
	bare := httptest.NewServer(NewAPI(e, nil))
	defer bare.Close()
	if code := getJSON(t, bare, "/api/v1/topology", nil); code != 404 {
		t.Errorf("no-fleet topology = %d, want 404", code)
	}
}
