package diagnose

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"mcorr/internal/timeseries"
)

// stateVersion guards the serialized engine layout.
const stateVersion = 1

// engineState is the gob image of an Engine's dynamic state. The
// configuration is not persisted: it belongs to the constructor, so a
// restart may retune thresholds while keeping history and incidents.
type engineState struct {
	Version      int
	Step         time.Duration
	Sys          []FitnessPoint
	Meas         []measurementState
	BelowRun     int
	AboveRun     int
	RunStart     time.Time
	CntPair      int
	CntMeas      int
	CntSys       int
	BasePair     int
	BaseMeas     int
	BaseSys      int
	Open         *Digest
	Closed       []*Digest
	Seq          uint64
	SinceRefresh int
}

// measurementState is one measurement's persisted memory.
type measurementState struct {
	ID       timeseries.MeasurementID
	Points   []FitnessPoint
	BaseN    int
	BaseMean float64
	BaseM2   float64
	Peers    []peerStamp
}

// peerStamp is one broken-pair attribution stamp.
type peerStamp struct {
	ID timeseries.MeasurementID
	T  time.Time
}

// SaveState serializes the engine's dynamic state (histories,
// baselines, incidents, state-machine position) with encoding/gob. The
// encoding is deterministic: measurements and peer stamps are written
// in sorted order.
func (e *Engine) SaveState(w io.Writer) error {
	e.mu.Lock()
	st := engineState{
		Version:      stateVersion,
		Step:         e.step,
		Sys:          e.sys.tail(0),
		BelowRun:     e.belowRun,
		AboveRun:     e.aboveRun,
		RunStart:     e.runStart,
		CntPair:      e.cntPair,
		CntMeas:      e.cntMeas,
		CntSys:       e.cntSys,
		BasePair:     e.basePair,
		BaseMeas:     e.baseMeas,
		BaseSys:      e.baseSys,
		Open:         e.open,
		Closed:       e.closed,
		Seq:          e.seq,
		SinceRefresh: e.sinceRefresh,
	}
	st.Meas = make([]measurementState, 0, len(e.order))
	for _, id := range e.order {
		ms := e.meas[id]
		n, mean, m2 := ms.base.State()
		rec := measurementState{
			ID:       id,
			Points:   ms.ring.tail(0),
			BaseN:    n,
			BaseMean: mean,
			BaseM2:   m2,
		}
		for peer, t := range ms.peers {
			rec.Peers = append(rec.Peers, peerStamp{ID: peer, T: t})
		}
		sort.Slice(rec.Peers, func(i, j int) bool { return rec.Peers[i].ID.Less(rec.Peers[j].ID) })
		st.Meas = append(st.Meas, rec)
	}
	e.mu.Unlock()
	return gob.NewEncoder(w).Encode(st)
}

// MarshalState returns SaveState's output as a byte slice (the form the
// durable checkpoint embeds).
func (e *Engine) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := e.SaveState(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadState restores the dynamic state saved by SaveState into this
// engine, replacing whatever it held. The engine's own Config stays in
// force (ring capacities come from it, truncating restored histories if
// it shrank).
func (e *Engine) LoadState(r io.Reader) error {
	var st engineState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("diagnose: decode state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("diagnose: state version %d, want %d", st.Version, stateVersion)
	}
	e.mu.Lock()
	e.step = st.Step
	e.sys = newRing(e.cfg.History)
	for _, p := range tailPoints(st.Sys, e.cfg.History) {
		e.sys.push(p)
	}
	e.meas = make(map[timeseries.MeasurementID]*measState, len(st.Meas))
	e.order = e.order[:0]
	for _, rec := range st.Meas {
		ms := e.measStateLocked(rec.ID)
		for _, p := range tailPoints(rec.Points, e.cfg.History) {
			ms.ring.push(p)
		}
		ms.base.Restore(rec.BaseN, rec.BaseMean, rec.BaseM2)
		if len(rec.Peers) > 0 {
			ms.peers = make(map[timeseries.MeasurementID]time.Time, len(rec.Peers))
			for _, ps := range rec.Peers {
				ms.peers[ps.ID] = ps.T
			}
		}
	}
	e.belowRun, e.aboveRun = st.BelowRun, st.AboveRun
	e.runStart = st.RunStart
	e.cntPair, e.cntMeas, e.cntSys = st.CntPair, st.CntMeas, st.CntSys
	e.basePair, e.baseMeas, e.baseSys = st.BasePair, st.BaseMeas, st.BaseSys
	e.open = st.Open
	e.closed = st.Closed
	e.seq = st.Seq
	e.sinceRefresh = st.SinceRefresh
	if e.open != nil {
		obsOpenIncidents.Set(1)
	} else {
		obsOpenIncidents.Set(0)
	}
	e.mu.Unlock()
	return nil
}

// UnmarshalState is LoadState from a byte slice.
func (e *Engine) UnmarshalState(data []byte) error {
	return e.LoadState(bytes.NewReader(data))
}

// tailPoints keeps the newest n points of an oldest-first slice.
func tailPoints(pts []FitnessPoint, n int) []FitnessPoint {
	if len(pts) > n {
		return pts[len(pts)-n:]
	}
	return pts
}
