package diagnose

import "mcorr/internal/obs"

// Process-global incident metrics (mcorr_incident_*). The gauge tracks
// the engine's currently open incident; the counters accumulate over the
// process lifetime (a crash-recovered engine re-publishes the gauge from
// its restored state but never replays counter increments).
var (
	obsOpenIncidents = obs.Default().Gauge("mcorr_incident_open",
		"Currently open incidents (0 or 1: the engine tracks one system-level incident at a time).")
	obsOpened = obs.Default().Counter("mcorr_incident_opened_total",
		"Incidents opened by the diagnosis engine.")
	obsClosed = obs.Default().Counter("mcorr_incident_closed_total",
		"Incidents closed after the system fitness recovered.")
	obsRefreshSeconds = obs.Default().Histogram("mcorr_incident_refresh_seconds",
		"Latency of recomputing an open incident's digest (candidate ranking, families, temporal chain).",
		obs.TimeBuckets())
)
