// Package diagnose turns the scoring fabric's raw output — per-pair
// Q^{a,b}, per-measurement Q^a and system Q fitness plus the alarm
// stream — into ranked root-cause explanations.
//
// The paper stops at "the measurement with the lowest Q^a localizes the
// problem"; at thousands of measurements the per-pair alarm stream that
// backs that statement is unreadable. The Engine watches every
// StepReport, keeps a bounded ring-buffer fitness history per
// measurement (and for the system aggregate), and opens an incident
// when the system fitness stays below a threshold. While an incident is
// open it walks temporal rings around the impact time T, ranks
// root-cause candidates by who broke first, how many of their pair
// models broke (fan-out) and how far they fell below their healthy
// baseline, groups the broken measurements into machine and metric
// families, and maintains a compact Digest — key sources, family
// counts, temporal chain, severity — that is cheap to serialize and
// ship.
//
// The engine sits strictly off the scoring hot path: Manager.Step and
// the sharded coordinator never call into it; the Monitor layer feeds
// finished StepReports to Observe after scoring completes. Digests and
// histories are served over the ops HTTP server by API
// (/api/v1/incidents, /api/v1/fitness, /api/v1/topology) and the whole
// engine state round-trips through SaveState/LoadState so incidents
// survive crash recovery bit-for-bit alongside the model fleet.
package diagnose
