package diagnose

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/manager"
	"mcorr/internal/mathx"
	"mcorr/internal/timeseries"
)

// Config tunes the diagnosis engine. The zero value is usable: every
// field has a default applied by withDefaults.
type Config struct {
	// OpenBelow is the system-fitness threshold: an incident opens when Q
	// stays below it. Default 0.8.
	OpenBelow float64
	// OpenAfter is how many consecutive rows Q must stay below OpenBelow
	// before an incident opens (debounces single-row blips). Default 2.
	OpenAfter int
	// CloseAfter is how many consecutive rows Q must stay at or above
	// OpenBelow before the open incident closes. Default 5.
	CloseAfter int
	// MeasurementBreak is the Q^a level below which a measurement counts
	// as broken when the digest walks the history. Default 0.5.
	MeasurementBreak float64
	// PairBreak is the Q^{a,b} level below which a pair model counts as
	// broken for fan-out attribution. Default 0.5.
	PairBreak float64
	// History is the per-measurement (and system) fitness ring capacity
	// in rows. Default 512.
	History int
	// Lookback is how many rows before the impact time the digest
	// searches for the first break. Default 48.
	Lookback int
	// Rings are the temporal ring radii, in rows around the impact time,
	// used to bucket break times (|break − T| ≤ radius). Breaks beyond
	// the last radius land in an unbounded outer ring. Default {2, 8, 32}.
	Rings []int
	// RefreshEvery re-ranks an open incident's digest every N observed
	// rows (it always refreshes on open and close). Default 4.
	RefreshEvery int
	// MaxCandidates caps the ranked candidate list in the digest.
	// Default 8.
	MaxCandidates int
	// MaxChain caps the temporal chain in the digest. Default 16.
	MaxChain int
	// MaxIncidents caps how many closed incidents the engine retains
	// (oldest evicted first). Default 64.
	MaxIncidents int
}

func (c Config) withDefaults() Config {
	if c.OpenBelow <= 0 {
		c.OpenBelow = 0.8
	}
	if c.OpenAfter <= 0 {
		c.OpenAfter = 2
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 5
	}
	if c.MeasurementBreak <= 0 {
		c.MeasurementBreak = 0.5
	}
	if c.PairBreak <= 0 {
		c.PairBreak = 0.5
	}
	if c.History <= 0 {
		c.History = 512
	}
	if c.Lookback <= 0 {
		c.Lookback = 48
	}
	if len(c.Rings) == 0 {
		c.Rings = []int{2, 8, 32}
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 4
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	if c.MaxChain <= 0 {
		c.MaxChain = 16
	}
	if c.MaxIncidents <= 0 {
		c.MaxIncidents = 64
	}
	return c
}

// FitnessPoint is one sample of a fitness history: the score Q observed
// at time T.
type FitnessPoint struct {
	T time.Time `json:"t"`
	Q float64   `json:"q"`
}

// ring is a fixed-capacity fitness history. Points arrive in time order;
// the oldest is evicted when full.
type ring struct {
	buf  []FitnessPoint
	next int
	n    int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]FitnessPoint, capacity)}
}

func (r *ring) push(p FitnessPoint) {
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// each visits the retained points oldest-first.
func (r *ring) each(fn func(FitnessPoint)) {
	start := (r.next - r.n + 2*len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		fn(r.buf[(start+i)%len(r.buf)])
	}
}

// tail returns the newest min(n, retained) points oldest-first as a copy
// (all retained points when n <= 0).
func (r *ring) tail(n int) []FitnessPoint {
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]FitnessPoint, 0, n)
	start := (r.next - n + 2*len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Candidate is one ranked root-cause candidate in a Digest.
type Candidate struct {
	// Measurement is the candidate's ID rendered as "metric@machine".
	Measurement string `json:"measurement"`
	// Machine and Metric split the ID for family grouping.
	Machine string `json:"machine"`
	Metric  string `json:"metric"`
	// BreakTime is when the measurement's Q^a first crossed below the
	// break threshold inside the lookback window.
	BreakTime time.Time `json:"break_time"`
	// Ring indexes Config.Rings: the smallest ring radius containing
	// |BreakTime − ImpactTime| (len(Rings) for the unbounded outer ring).
	Ring int `json:"ring"`
	// Lowest is the measurement's minimum Q^a inside the window.
	Lowest float64 `json:"lowest"`
	// QAtBreak is Q^a on the break row.
	QAtBreak float64 `json:"q_at_break"`
	// Drop is the healthy-baseline mean minus Lowest (clamped at 0).
	Drop float64 `json:"drop"`
	// FanOut counts the measurement's pair models that broke inside the
	// window — the paper's "all the links leading to a measurement have
	// problems" signal.
	FanOut int `json:"fan_out"`
	// Score is the ranking score (higher = more likely root cause).
	Score float64 `json:"score"`
}

// Family is a group of broken measurements sharing a machine or metric.
type Family struct {
	// Kind is "machine" or "metric".
	Kind string `json:"kind"`
	// Key is the shared machine or metric name.
	Key string `json:"key"`
	// Size is how many broken measurements the family holds.
	Size int `json:"size"`
	// Measurements lists the members as "metric@machine".
	Measurements []string `json:"measurements"`
}

// ChainEntry is one link of the temporal chain: a measurement breaking
// at a point in time.
type ChainEntry struct {
	T           time.Time `json:"t"`
	Measurement string    `json:"measurement"`
	// Q is the measurement's fitness at the moment it broke.
	Q float64 `json:"q"`
}

// MachineRank is one machine in the Localize rollup attached to a
// digest, worst fitness first.
type MachineRank struct {
	Machine string  `json:"machine"`
	Score   float64 `json:"score"`
	// Measurements is how many measurements contributed to the score.
	Measurements int `json:"measurements"`
}

// RingCount reports how many measurements first broke inside one
// temporal ring around the impact time.
type RingCount struct {
	// Radius is the ring radius in rows (-1 for the unbounded outer ring).
	Radius int `json:"radius"`
	// Broken is how many measurements first broke within this ring and
	// not within a smaller one.
	Broken int `json:"broken"`
}

// Incident states.
const (
	// StateOpen marks an incident still in progress.
	StateOpen = "open"
	// StateClosed marks an incident whose system fitness recovered.
	StateClosed = "closed"
)

// Digest is the compact, serializable explanation of one incident.
type Digest struct {
	// ID is stable across crash recovery: it derives from the incident
	// sequence number and impact time, both replayed deterministically.
	ID string `json:"id"`
	// State is StateOpen or StateClosed.
	State string `json:"state"`
	// Severity is "info", "warning" or "critical".
	Severity string `json:"severity"`
	// ImpactTime is T: the first row of the below-threshold run.
	ImpactTime time.Time `json:"impact_time"`
	// OpenedAt is the row that confirmed the incident (OpenAfter rows
	// after ImpactTime).
	OpenedAt time.Time `json:"opened_at"`
	// ClosedAt is when the incident closed (zero while open).
	ClosedAt time.Time `json:"closed_at"`
	// UpdatedAt is the row of the last digest refresh.
	UpdatedAt time.Time `json:"updated_at"`
	// SystemAtOpen is Q on the row the incident opened.
	SystemAtOpen float64 `json:"system_at_open"`
	// SystemLow is the lowest Q observed during the incident.
	SystemLow float64 `json:"system_low"`
	// Broken is how many measurements broke inside the lookback window
	// (the candidate list is capped; this count is not).
	Broken int `json:"broken_measurements"`
	// Candidates are the ranked root-cause candidates, best first.
	Candidates []Candidate `json:"candidates"`
	// Suspect is the top candidate's machine ("" when no candidate).
	Suspect string `json:"suspect"`
	// Machines is the Localize rollup at the last refresh, worst first.
	Machines []MachineRank `json:"machines,omitempty"`
	// Families group the broken measurements by machine and by metric.
	Families []Family `json:"families"`
	// Chain is the temporal chain of breaks, earliest first.
	Chain []ChainEntry `json:"chain"`
	// Rings bucket the break times around ImpactTime.
	Rings []RingCount `json:"rings"`
	// PairAlarms / MeasurementAlarms / SystemAlarms count alarms
	// published during the incident by scope.
	PairAlarms        int `json:"pair_alarms"`
	MeasurementAlarms int `json:"measurement_alarms"`
	SystemAlarms      int `json:"system_alarms"`
}

// clone deep-copies a digest so callers can hold it without racing
// future refreshes.
func (d *Digest) clone() Digest {
	out := *d
	out.Candidates = append([]Candidate(nil), d.Candidates...)
	out.Machines = append([]MachineRank(nil), d.Machines...)
	out.Chain = append([]ChainEntry(nil), d.Chain...)
	out.Rings = append([]RingCount(nil), d.Rings...)
	out.Families = make([]Family, len(d.Families))
	for i, f := range d.Families {
		f.Measurements = append([]string(nil), f.Measurements...)
		out.Families[i] = f
	}
	return out
}

// measState is the engine's per-measurement memory: the fitness ring,
// the healthy baseline, and the broken-peer stamps feeding fan-out.
type measState struct {
	ring *ring
	base mathx.Online
	// peers maps a peer measurement to the last time the pair model
	// between the two broke (fitness below PairBreak or a pair alarm).
	peers map[timeseries.MeasurementID]time.Time
}

// Engine is the anomaly-triggered root-cause engine. Feed it every
// StepReport through Observe; read incidents and histories through the
// accessors (all safe for concurrent use).
type Engine struct {
	mu  sync.Mutex
	cfg Config

	// step is the row cadence inferred from consecutive system points;
	// it converts ring radii (rows) to durations.
	step time.Duration

	sys   *ring
	meas  map[timeseries.MeasurementID]*measState
	order []timeseries.MeasurementID // sorted keys of meas

	// Incident state machine.
	belowRun, aboveRun int
	runStart           time.Time
	open               *Digest
	closed             []*Digest // newest last
	seq                uint64
	sinceRefresh       int

	// Cumulative alarm counts by scope, with the snapshot taken when the
	// current below-run started (so a digest reports per-incident deltas).
	cntPair, cntMeas, cntSys    int
	basePair, baseMeas, baseSys int

	localize func() manager.Localization
}

// NewEngine builds an engine. The measurement universe is discovered
// from the observed reports, so no dataset is needed up front.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:  cfg,
		sys:  newRing(cfg.History),
		meas: make(map[timeseries.MeasurementID]*measState),
	}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetLocalizeFn attaches the fleet's machine-level localization so each
// digest refresh can include the Localize rollup. The function is called
// outside the engine lock, right after the refresh that needs it.
func (e *Engine) SetLocalizeFn(fn func() manager.Localization) {
	e.mu.Lock()
	e.localize = fn
	e.mu.Unlock()
}

// WrapSink returns a sink that records pair-scope alarms for fan-out
// attribution and per-incident alarm counts, then forwards every alarm
// to next (nil next just records). Wrap the fleet's sink with this
// before constructing the fleet so the engine sees the full stream.
func (e *Engine) WrapSink(next alarm.Sink) alarm.Sink {
	return &sinkWrapper{e: e, next: next}
}

type sinkWrapper struct {
	e    *Engine
	next alarm.Sink
}

func (s *sinkWrapper) Publish(a alarm.Alarm) {
	s.e.noteAlarm(a)
	if s.next != nil {
		s.next.Publish(a)
	}
}

func (e *Engine) noteAlarm(a alarm.Alarm) {
	e.mu.Lock()
	switch a.Scope {
	case alarm.ScopePair:
		e.cntPair++
		e.notePeerLocked(a.Measurement, a.Peer, a.Time)
		e.notePeerLocked(a.Peer, a.Measurement, a.Time)
	case alarm.ScopeMeasurement:
		e.cntMeas++
	case alarm.ScopeSystem:
		e.cntSys++
	}
	e.mu.Unlock()
}

// notePeerLocked stamps "the pair model between id and peer broke at t".
// Only the latest stamp is kept, so feeding order never matters.
func (e *Engine) notePeerLocked(id, peer timeseries.MeasurementID, t time.Time) {
	st := e.measStateLocked(id)
	if st.peers == nil {
		st.peers = make(map[timeseries.MeasurementID]time.Time)
	}
	if cur, ok := st.peers[peer]; !ok || t.After(cur) {
		st.peers[peer] = t
	}
}

func (e *Engine) measStateLocked(id timeseries.MeasurementID) *measState {
	st := e.meas[id]
	if st == nil {
		st = &measState{ring: newRing(e.cfg.History)}
		e.meas[id] = st
		i := sort.Search(len(e.order), func(i int) bool { return !e.order[i].Less(id) })
		e.order = append(e.order, timeseries.MeasurementID{})
		copy(e.order[i+1:], e.order[i:])
		e.order[i] = id
	}
	return st
}

// Observe feeds one finished step report into the engine: fitness
// histories, baselines, fan-out stamps, and the incident state machine.
// It must be called from a single goroutine in row order (the Monitor's
// scoring funnel), after the fleet scored the row.
func (e *Engine) Observe(r manager.StepReport) {
	e.mu.Lock()
	needLoc := e.observeLocked(r)
	locFn := e.localize
	e.mu.Unlock()

	// The Localize rollup locks the aggregator, which also publishes
	// alarms into this engine while holding its own lock — so the call
	// happens outside e.mu and the result is attached afterwards.
	if needLoc != "" && locFn != nil {
		loc := locFn()
		ranks := make([]MachineRank, 0, len(loc.Machines))
		for _, m := range loc.Machines {
			ranks = append(ranks, MachineRank{Machine: m.Machine, Score: m.Score, Measurements: m.Measurements})
		}
		e.mu.Lock()
		if d := e.findLocked(needLoc); d != nil {
			d.Machines = ranks
			if d.Suspect == "" && len(ranks) > 0 {
				d.Suspect = ranks[0].Machine
			}
		}
		e.mu.Unlock()
	}
}

// observeLocked runs the per-row bookkeeping and state machine; it
// returns the ID of a digest that was just refreshed (and therefore
// wants a fresh Localize rollup), or "".
func (e *Engine) observeLocked(r manager.StepReport) string {
	t := r.Time
	// A row only feeds the baselines when the system is healthy — no open
	// incident, no below-threshold run in progress, and this row itself
	// above the open threshold (otherwise the first row of an outage would
	// drag the reference point down before belowRun catches up).
	healthy := e.open == nil && e.belowRun == 0 && !(r.System < e.cfg.OpenBelow)
	for id, q := range r.Measurements {
		st := e.measStateLocked(id)
		st.ring.push(FitnessPoint{T: t, Q: q})
		if healthy {
			// Baselines learn only from healthy rows so an incident
			// cannot drag its own reference point down.
			st.base.Add(q)
		}
	}
	for p, q := range r.Pairs {
		if q < e.cfg.PairBreak {
			e.notePeerLocked(p.A, p.B, t)
			e.notePeerLocked(p.B, p.A, t)
		}
	}
	if math.IsNaN(r.System) {
		return ""
	}
	e.inferStepLocked(t)
	e.sys.push(FitnessPoint{T: t, Q: r.System})
	if r.System < e.cfg.OpenBelow {
		if e.belowRun == 0 {
			e.runStart = t
			if e.open == nil {
				e.basePair, e.baseMeas, e.baseSys = e.cntPair, e.cntMeas, e.cntSys
			}
		}
		e.belowRun++
		e.aboveRun = 0
	} else {
		e.belowRun = 0
		e.aboveRun++
	}

	switch {
	case e.open == nil:
		if e.belowRun >= e.cfg.OpenAfter {
			e.openLocked(t, r.System)
			e.refreshLocked(t)
			return e.open.ID
		}
	default:
		if r.System < e.open.SystemLow {
			e.open.SystemLow = r.System
		}
		e.sinceRefresh++
		if e.aboveRun >= e.cfg.CloseAfter {
			e.refreshLocked(t)
			return e.closeLocked(t)
		}
		if e.sinceRefresh >= e.cfg.RefreshEvery {
			e.refreshLocked(t)
			return e.open.ID
		}
	}
	return ""
}

// inferStepLocked learns the row cadence from the newest system point.
func (e *Engine) inferStepLocked(t time.Time) {
	if e.step > 0 || e.sys.n == 0 {
		return
	}
	last := e.sys.buf[(e.sys.next-1+len(e.sys.buf))%len(e.sys.buf)]
	if d := t.Sub(last.T); d > 0 {
		e.step = d
	}
}

// stepLocked returns the inferred row cadence, defaulting to the
// paper's sampling interval until two system points have been seen.
func (e *Engine) stepLocked() time.Duration {
	if e.step > 0 {
		return e.step
	}
	return timeseries.SampleStep
}

func (e *Engine) openLocked(t time.Time, sys float64) {
	e.seq++
	impact := e.runStart
	d := &Digest{
		ID:           fmt.Sprintf("inc-%d-%s", e.seq, impact.UTC().Format("20060102T150405Z")),
		State:        StateOpen,
		ImpactTime:   impact,
		OpenedAt:     t,
		UpdatedAt:    t,
		SystemAtOpen: sys,
		SystemLow:    sys,
	}
	// The run may already hold rows lower than the opening one.
	e.sys.each(func(p FitnessPoint) {
		if !p.T.Before(impact) && p.Q < d.SystemLow {
			d.SystemLow = p.Q
		}
	})
	e.open = d
	e.sinceRefresh = 0
	obsOpenIncidents.Set(1)
	obsOpened.Inc()
}

// closeLocked retires the open incident and returns its ID.
func (e *Engine) closeLocked(t time.Time) string {
	d := e.open
	d.State = StateClosed
	d.ClosedAt = t
	d.UpdatedAt = t
	e.open = nil
	e.closed = append(e.closed, d)
	if len(e.closed) > e.cfg.MaxIncidents {
		e.closed = e.closed[len(e.closed)-e.cfg.MaxIncidents:]
	}
	obsOpenIncidents.Set(0)
	obsClosed.Inc()
	return d.ID
}

// refreshLocked recomputes the open incident's digest: candidates,
// families, chain, rings, severity.
func (e *Engine) refreshLocked(now time.Time) {
	start := time.Now()
	d := e.open
	step := e.stepLocked()
	from := d.ImpactTime.Add(-time.Duration(e.cfg.Lookback) * step)

	rings := make([]RingCount, len(e.cfg.Rings)+1)
	for i, radius := range e.cfg.Rings {
		rings[i].Radius = radius
	}
	rings[len(e.cfg.Rings)].Radius = -1

	var cands []Candidate
	for _, id := range e.order {
		st := e.meas[id]
		var (
			brokeAt  time.Time
			qAtBreak float64
			lowest   = math.Inf(1)
			found    bool
		)
		st.ring.each(func(p FitnessPoint) {
			if p.T.Before(from) || p.T.After(now) {
				return
			}
			if p.Q < lowest {
				lowest = p.Q
			}
			if !found && p.Q < e.cfg.MeasurementBreak {
				brokeAt, qAtBreak, found = p.T, p.Q, true
			}
		})
		if !found {
			continue
		}
		fan := 0
		for _, pt := range st.peers {
			if !pt.Before(from) && !pt.After(now) {
				fan++
			}
		}
		drop := 0.0
		if st.base.N() > 0 {
			if delta := st.base.Mean() - lowest; delta > 0 {
				drop = delta
			}
		}
		ringIdx := e.ringOf(brokeAt, d.ImpactTime, step)
		rings[ringIdx].Broken++
		cands = append(cands, Candidate{
			Measurement: id.String(),
			Machine:     id.Machine,
			Metric:      id.Metric,
			BreakTime:   brokeAt,
			Ring:        ringIdx,
			Lowest:      lowest,
			QAtBreak:    qAtBreak,
			Drop:        drop,
			FanOut:      fan,
		})
	}

	// Rank: depth of the drop dominates (the faulty measurement's Q^a
	// collapses across all its links while a healthy peer only loses
	// one), fan-out second, break order third. Ties resolve on break
	// time then ID so the ranking is deterministic.
	var earliest, latest time.Time
	maxFan := 0
	for i := range cands {
		if i == 0 || cands[i].BreakTime.Before(earliest) {
			earliest = cands[i].BreakTime
		}
		if i == 0 || cands[i].BreakTime.After(latest) {
			latest = cands[i].BreakTime
		}
		if cands[i].FanOut > maxFan {
			maxFan = cands[i].FanOut
		}
	}
	span := latest.Sub(earliest)
	for i := range cands {
		lead := 0.0
		if span > 0 {
			lead = float64(latest.Sub(cands[i].BreakTime)) / float64(span)
		}
		fanFrac := 0.0
		if maxFan > 0 {
			fanFrac = float64(cands[i].FanOut) / float64(maxFan)
		}
		cands[i].Score = 2*cands[i].Drop + fanFrac + 0.5*lead
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if !cands[i].BreakTime.Equal(cands[j].BreakTime) {
			return cands[i].BreakTime.Before(cands[j].BreakTime)
		}
		return cands[i].Measurement < cands[j].Measurement
	})

	d.Broken = len(cands)
	d.Rings = rings
	d.Families = buildFamilies(cands)
	d.Chain = buildChain(cands, e.cfg.MaxChain)
	if len(cands) > e.cfg.MaxCandidates {
		cands = cands[:e.cfg.MaxCandidates]
	}
	d.Candidates = cands
	if len(cands) > 0 {
		d.Suspect = cands[0].Machine
	}
	d.PairAlarms = e.cntPair - e.basePair
	d.MeasurementAlarms = e.cntMeas - e.baseMeas
	d.SystemAlarms = e.cntSys - e.baseSys
	d.Severity = e.severityLocked(d)
	d.UpdatedAt = now
	e.sinceRefresh = 0
	obsRefreshSeconds.Observe(time.Since(start).Seconds())
}

// ringOf buckets a break time into the smallest configured ring radius
// covering its distance (in rows) from the impact time.
func (e *Engine) ringOf(brokeAt, impact time.Time, step time.Duration) int {
	delta := brokeAt.Sub(impact)
	if delta < 0 {
		delta = -delta
	}
	rows := int(delta / step)
	for i, radius := range e.cfg.Rings {
		if rows <= radius {
			return i
		}
	}
	return len(e.cfg.Rings)
}

// severityLocked grades an incident by how deep the system fitness fell
// and how broadly the breakage spread.
func (e *Engine) severityLocked(d *Digest) string {
	breadth := 0.0
	if len(e.meas) > 0 {
		breadth = float64(d.Broken) / float64(len(e.meas))
	}
	switch {
	case d.SystemLow < e.cfg.OpenBelow*0.75 || breadth >= 0.5:
		return "critical"
	case d.SystemLow < e.cfg.OpenBelow*0.95 || breadth >= 0.1:
		return "warning"
	default:
		return "info"
	}
}

// buildFamilies groups broken measurements by machine and by metric,
// largest families first (key order breaks ties).
func buildFamilies(cands []Candidate) []Family {
	byMachine := map[string][]string{}
	byMetric := map[string][]string{}
	for _, c := range cands {
		byMachine[c.Machine] = append(byMachine[c.Machine], c.Measurement)
		byMetric[c.Metric] = append(byMetric[c.Metric], c.Measurement)
	}
	out := make([]Family, 0, len(byMachine)+len(byMetric))
	for _, g := range []struct {
		kind string
		m    map[string][]string
	}{{"machine", byMachine}, {"metric", byMetric}} {
		for key, members := range g.m {
			sort.Strings(members)
			out = append(out, Family{Kind: g.kind, Key: key, Size: len(members), Measurements: members})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// buildChain orders the breaks earliest-first and caps the list.
func buildChain(cands []Candidate, max int) []ChainEntry {
	chain := make([]ChainEntry, 0, len(cands))
	for _, c := range cands {
		chain = append(chain, ChainEntry{T: c.BreakTime, Measurement: c.Measurement, Q: c.QAtBreak})
	}
	sort.Slice(chain, func(i, j int) bool {
		if !chain[i].T.Equal(chain[j].T) {
			return chain[i].T.Before(chain[j].T)
		}
		return chain[i].Measurement < chain[j].Measurement
	})
	if len(chain) > max {
		chain = chain[:max]
	}
	return chain
}

// findLocked locates a digest by ID among the open incident and the
// retained closed ones.
func (e *Engine) findLocked(id string) *Digest {
	if e.open != nil && e.open.ID == id {
		return e.open
	}
	for i := len(e.closed) - 1; i >= 0; i-- {
		if e.closed[i].ID == id {
			return e.closed[i]
		}
	}
	return nil
}

// Incidents returns every retained incident, open first, then closed
// newest-first. The digests are deep copies.
func (e *Engine) Incidents() []Digest {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Digest, 0, len(e.closed)+1)
	if e.open != nil {
		out = append(out, e.open.clone())
	}
	for i := len(e.closed) - 1; i >= 0; i-- {
		out = append(out, e.closed[i].clone())
	}
	return out
}

// Incident returns the digest with the given ID.
func (e *Engine) Incident(id string) (Digest, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d := e.findLocked(id); d != nil {
		return d.clone(), true
	}
	return Digest{}, false
}

// OpenCount returns 1 while an incident is open, else 0 (the value of
// the mcorr_incident_open gauge).
func (e *Engine) OpenCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.open != nil {
		return 1
	}
	return 0
}

// SystemHistory returns the newest window system-fitness points,
// oldest first (the full ring when window <= 0).
func (e *Engine) SystemHistory(window int) []FitnessPoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sys.tail(window)
}

// History returns the newest window fitness points for one measurement,
// oldest first, and whether the measurement is known.
func (e *Engine) History(id timeseries.MeasurementID, window int) ([]FitnessPoint, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.meas[id]
	if st == nil {
		return nil, false
	}
	return st.ring.tail(window), true
}

// HistoryByName is History keyed by the rendered "metric@machine" form.
func (e *Engine) HistoryByName(name string, window int) ([]FitnessPoint, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.order {
		if id.String() == name {
			return e.meas[id].ring.tail(window), true
		}
	}
	return nil, false
}

// Measurements returns the known measurement IDs in sorted order.
func (e *Engine) Measurements() []timeseries.MeasurementID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]timeseries.MeasurementID(nil), e.order...)
}
