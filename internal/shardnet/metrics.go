package shardnet

import "mcorr/internal/obs"

// Process-global networked-fabric metrics (mcorr_shardnet_*). The
// coordinator side labels per-shard children by shard index; cardinality
// is bounded by the worker count. Worker processes publish the
// mcorr_shardnet_worker_* families on their own ops surface.
var (
	obsStepSeconds = obs.Default().Histogram("mcorr_shardnet_step_seconds",
		"Latency of one networked Step: broadcast, remote scoring on every worker, and central merge.",
		obs.TimeBuckets())
	obsRows = obs.Default().Counter("mcorr_shardnet_rows_total",
		"Rows fanned out to networked shard workers.")
	obsWorkerCount = obs.Default().Gauge("mcorr_shardnet_workers",
		"Networked shard workers in the fabric.")
	obsConnected = obs.Default().Gauge("mcorr_shardnet_workers_connected",
		"Workers with a live control connection.")
	obsReconnects = obs.Default().Counter("mcorr_shardnet_reconnects_total",
		"Control-connection re-establishments after a worker or link failure.")
	obsReplayedRows = obs.Default().Counter("mcorr_shardnet_replayed_rows_total",
		"Rows re-sent from the coordinator's replay ring during recovery.")
	obsDupOutcomes = obs.Default().Counter("mcorr_shardnet_duplicate_outcomes_total",
		"Outcome sets dropped by the coordinator's exactly-once filter (retries of already-merged rows).")
	obsStaleOutcomes = obs.Default().Counter("mcorr_shardnet_stale_outcomes_total",
		"Outcome sets dropped for carrying an outdated rebalance plan version.")
	obsRebalances = obs.Default().Counter("mcorr_shardnet_rebalances_total",
		"Completed work-stealing rebalances between workers.")
	obsPairsStolen = obs.Default().Counter("mcorr_shardnet_pairs_stolen_total",
		"Pair models migrated between workers across all rebalances.")
	obsShardLatency = obs.Default().GaugeVec("mcorr_shardnet_shard_latency_seconds",
		"Exponentially weighted round-trip per shard: row broadcast to outcome arrival (label: shard index).",
		"shard")

	obsWorkerRows = obs.Default().Counter("mcorr_shardnet_worker_rows_total",
		"Rows scored by this worker process.")
	obsWorkerCheckpoints = obs.Default().Counter("mcorr_shardnet_worker_checkpoints_total",
		"Checkpoints persisted by this worker process.")
	obsWorkerSessions = obs.Default().Counter("mcorr_shardnet_worker_sessions_total",
		"Control sessions accepted by this worker process.")
)
