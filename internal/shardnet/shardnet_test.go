package shardnet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// fixtures builds a small group trace, a training slice, and a bounded
// monitoring window shared by the bit-identity tests.
func fixtures(t *testing.T, machines int, hours int) (*timeseries.Dataset, []manager.Row) {
	t.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "N", Machines: machines, Days: 2, Seed: 43,
		Faults: []simulator.Fault{{
			ID: "f1", Machine: simulator.MachineName("N", 1), Kind: simulator.FaultLevelShift,
			Start: timeseries.MonitoringStart.AddDate(0, 0, 1).Add(1 * time.Hour),
			End:   timeseries.MonitoringStart.AddDate(0, 0, 1).Add(3 * time.Hour),
		}},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trainEnd := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, trainEnd)
	rows, err := manager.BuildRows(ds, trainEnd, trainEnd.Add(time.Duration(hours)*time.Hour))
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}
	return history, rows
}

// tinyModel keeps test models small: grid size drives the transition
// matrix (and therefore every checkpoint and state-transfer blob)
// quadratically, so tests pin it down the same way mcdetect does.
func tinyModel(adaptive bool) core.Config {
	return core.Config{Adaptive: adaptive, Grid: core.GridConfig{MaxIntervals: 8}}
}

func sameBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: networked %v (%x) != reference %v (%x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func compareReports(t *testing.T, step int, got, want manager.StepReport) {
	t.Helper()
	sameBits(t, fmt.Sprintf("step %d system", step), got.System, want.System)
	if got.ScoredPairs != want.ScoredPairs {
		t.Fatalf("step %d scored pairs = %d, want %d", step, got.ScoredPairs, want.ScoredPairs)
	}
	if got.GrownPairs != want.GrownPairs {
		t.Fatalf("step %d grown pairs = %d, want %d", step, got.GrownPairs, want.GrownPairs)
	}
	for id, q := range want.Measurements {
		sameBits(t, fmt.Sprintf("step %d %s", step, id), got.Measurements[id], q)
	}
}

// fabric is an in-test worker fleet: real processes in production, real
// TCP listeners with in-process goroutines here.
type fabric struct {
	t       *testing.T
	dirs    []string
	addrs   []string
	workers []*Worker
}

func startFabric(t *testing.T, n int) *fabric {
	t.Helper()
	f := &fabric{t: t, dirs: make([]string, n), addrs: make([]string, n), workers: make([]*Worker, n)}
	for k := 0; k < n; k++ {
		f.dirs[k] = t.TempDir()
		f.start(k, "127.0.0.1:0")
	}
	t.Cleanup(func() {
		for _, w := range f.workers {
			if w != nil {
				w.Close()
			}
		}
	})
	return f
}

// start launches (or relaunches) worker k on addr, reusing its data dir.
func (f *fabric) start(k int, addr string) {
	f.t.Helper()
	w, err := ListenWorker(addr, WorkerConfig{DataDir: f.dirs[k]})
	if err != nil {
		f.t.Fatalf("ListenWorker %d: %v", k, err)
	}
	go w.Serve()
	f.workers[k] = w
	f.addrs[k] = w.Addr().String()
}

// kill abruptly stops worker k, keeping its checkpoint directory.
func (f *fabric) kill(k int) {
	f.t.Helper()
	f.workers[k].Close()
	f.workers[k] = nil
}

// refRun holds the in-process reference trajectory and its end-of-run
// accumulator values.
type refRun struct {
	reports []manager.StepReport
	steps   int
	mean    float64
}

func referenceRun(t *testing.T, history *timeseries.Dataset, cfg manager.Config, rows []manager.Row) refRun {
	t.Helper()
	ref, err := manager.New(history, cfg)
	if err != nil {
		t.Fatalf("manager.New: %v", err)
	}
	defer ref.Close()
	reports := make([]manager.StepReport, len(rows))
	for i, row := range rows {
		reports[i] = ref.Step(row)
	}
	return refRun{reports: reports, steps: ref.Steps(), mean: ref.SystemMean()}
}

// TestShardNetBitIdenticalToManager is the tentpole property for the
// networked fabric: for any worker count, fanning rows over TCP to
// worker processes and merging their returned outcomes centrally yields
// the exact Q^a/Q bit patterns of a single in-process Manager —
// including in adaptive mode, where grid growth happens remotely.
func TestShardNetBitIdenticalToManager(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := map[bool]string{false: "offline", true: "adaptive"}[adaptive]
		t.Run(name, func(t *testing.T) {
			mcfg := manager.Config{Model: tinyModel(adaptive)}
			history, rows := fixtures(t, 3, 6)
			want := referenceRun(t, history, mcfg, rows)
			for _, n := range []int{1, 3} {
				t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
					f := startFabric(t, n)
					c, err := New(history, Config{Workers: f.addrs, Manager: mcfg})
					if err != nil {
						t.Fatalf("shardnet.New: %v", err)
					}
					defer c.Close()
					for i, row := range rows {
						compareReports(t, i, c.Step(row), want.reports[i])
					}
					sameBits(t, "system mean", c.SystemMean(), want.mean)
					if c.Steps() != want.steps {
						t.Fatalf("Steps = %d, want %d", c.Steps(), want.steps)
					}
				})
			}
		})
	}
}

// TestShardNetWorkerRestartMidStream kills one worker between steps and
// restarts it from its on-disk checkpoint on the same address: the
// coordinator replays the missed rows from its ring and the merged
// trajectory stays bit-identical to an uninterrupted in-process run.
func TestShardNetWorkerRestartMidStream(t *testing.T) {
	mcfg := manager.Config{Model: tinyModel(true)}
	history, rows := fixtures(t, 3, 5)
	want := referenceRun(t, history, mcfg, rows).reports

	f := startFabric(t, 2)
	c, err := New(history, Config{Workers: f.addrs, Manager: mcfg, CheckpointEvery: 7})
	if err != nil {
		t.Fatalf("shardnet.New: %v", err)
	}
	defer c.Close()

	crashAt := len(rows) / 2
	for i, row := range rows {
		if i == crashAt {
			addr := f.addrs[1]
			f.kill(1)
			f.start(1, addr)
		}
		compareReports(t, i, c.Step(row), want[i])
	}
}

// TestShardNetRebalancePreservesBits migrates pairs between live workers
// mid-stream and checks the trajectory is unchanged: moved models keep
// their full state, and stale-plan outcomes never corrupt a merge.
func TestShardNetRebalancePreservesBits(t *testing.T) {
	mcfg := manager.Config{Model: tinyModel(true)}
	history, rows := fixtures(t, 3, 4)
	want := referenceRun(t, history, mcfg, rows).reports

	f := startFabric(t, 2)
	c, err := New(history, Config{Workers: f.addrs, Manager: mcfg})
	if err != nil {
		t.Fatalf("shardnet.New: %v", err)
	}
	defer c.Close()

	pv0 := c.PlanVersion()
	before := len(c.ShardPairs(0))
	for i, row := range rows {
		if i == len(rows)/3 {
			moved, err := c.Rebalance(0, 1, 2)
			if err != nil {
				t.Fatalf("Rebalance: %v", err)
			}
			if moved != 2 {
				t.Fatalf("moved = %d, want 2", moved)
			}
			if c.PlanVersion() != pv0+1 {
				t.Fatalf("plan version = %d, want %d", c.PlanVersion(), pv0+1)
			}
			if got := len(c.ShardPairs(0)); got != before-2 {
				t.Fatalf("shard 0 pairs = %d, want %d", got, before-2)
			}
		}
		compareReports(t, i, c.Step(row), want[i])
	}
}

// TestShardNetAutoRebalance seeds a skewed latency picture and checks
// the work-stealing policy fires, migrates pairs toward the fast worker,
// and leaves the trajectory bit-identical.
func TestShardNetAutoRebalance(t *testing.T) {
	mcfg := manager.Config{Model: tinyModel(false)}
	history, rows := fixtures(t, 3, 3)
	want := referenceRun(t, history, mcfg, rows).reports

	f := startFabric(t, 2)
	c, err := New(history, Config{
		Workers: f.addrs, Manager: mcfg,
		RebalanceEvery: 5, RebalanceFactor: 2,
	})
	if err != nil {
		t.Fatalf("shardnet.New: %v", err)
	}
	defer c.Close()

	slow := 0
	if len(c.ShardPairs(1)) > len(c.ShardPairs(0)) {
		slow = 1
	}
	before := len(c.ShardPairs(slow))
	c.SetLatencyHint(slow, 1.0)
	c.SetLatencyHint(1-slow, 0.01)
	// Keep the seeded skew in place despite organic EWMA updates.
	for i, row := range rows {
		c.SetLatencyHint(slow, 1.0)
		c.SetLatencyHint(1-slow, 0.01)
		compareReports(t, i, c.Step(row), want[i])
	}
	if got := len(c.ShardPairs(slow)); got >= before {
		t.Fatalf("work stealing never fired: slow shard still holds %d of %d pairs", got, before)
	}
	if c.PlanVersion() == 0 {
		t.Fatal("plan version never advanced")
	}
}

// TestShardNetFleetSurface sanity-checks the fleet methods the serving
// and diagnosis layers rely on.
func TestShardNetFleetSurface(t *testing.T) {
	mcfg := manager.Config{Model: tinyModel(false), TrackPairMeans: true}
	history, rows := fixtures(t, 3, 2)

	f := startFabric(t, 2)
	c, err := New(history, Config{Workers: f.addrs, Manager: mcfg})
	if err != nil {
		t.Fatalf("shardnet.New: %v", err)
	}
	defer c.Close()

	if got := c.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2", got)
	}
	if len(c.IDs()) == 0 || len(c.Pairs()) == 0 {
		t.Fatal("empty IDs or Pairs")
	}
	if got := len(c.ShardPairs(0)) + len(c.ShardPairs(1)); got != len(c.Pairs()) {
		t.Fatalf("shard pair split %d != total %d", got, len(c.Pairs()))
	}
	c.SetAdaptive(false)
	c.ResetChains()
	for _, row := range rows {
		c.Step(row)
	}
	if c.Steps() == 0 || c.Steps() > len(rows) {
		t.Fatalf("Steps = %d, want 1..%d", c.Steps(), len(rows))
	}
	if len(c.MeasurementMeans()) != len(c.IDs()) {
		t.Fatal("MeasurementMeans size mismatch")
	}
	if len(c.PairMeans()) != len(c.Pairs()) {
		t.Fatal("PairMeans size mismatch")
	}
	if loc := c.Localize(); len(loc.Machines) == 0 {
		t.Fatal("empty localization")
	}
	lats := c.Latencies()
	if len(lats) != 2 || lats[0] <= 0 || lats[1] <= 0 {
		t.Fatalf("latencies not populated: %v", lats)
	}
	c.ResetAccumulators()
	if c.Steps() != 0 {
		t.Fatal("ResetAccumulators did not clear steps")
	}
}
