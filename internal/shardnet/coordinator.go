package shardnet

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/shard"
	"mcorr/internal/timeseries"
)

// Tunables for the coordinator's control plane.
const (
	defaultCheckpointEvery = 240
	dialTimeout            = 500 * time.Millisecond
	handshakeTimeout       = 30 * time.Second
	redialInterval         = 150 * time.Millisecond
	awaitTick              = 100 * time.Millisecond
	latencyAlpha           = 0.2
)

// Config configures a networked shard coordinator.
type Config struct {
	// Workers lists the control addresses of the shard worker processes;
	// position is the shard index. Required, at least one.
	Workers []string
	// Listen is the outcome-return listen address (default
	// "127.0.0.1:0"). Workers dial the resolved address back, so it must
	// be reachable from every worker host; see Advertise.
	Listen string
	// Advertise overrides the outcome-return address announced to
	// workers when the listen address is not directly dialable (e.g.
	// an unspecified host).
	Advertise string
	// Manager is the shared fleet configuration, exactly as for the
	// in-process fabric.
	Manager manager.Config
	// Keep optionally restricts the trained pair graph, as in
	// shard.Config.
	Keep func(manager.Pair) bool
	// CheckpointEvery is the worker checkpoint cadence in rows
	// (default 240). The replay ring retains 4×CheckpointEvery+64 rows,
	// so any worker whose checkpoint is at most that far behind recovers
	// without retraining.
	CheckpointEvery int
	// RebalanceEvery enables latency-driven work stealing: every
	// RebalanceEvery rows the coordinator compares per-shard round-trip
	// EWMAs and migrates pairs from the slowest to the fastest worker
	// when the gap exceeds RebalanceFactor. Zero disables.
	RebalanceEvery int
	// RebalanceFactor is the slow/fast EWMA ratio that triggers a steal
	// (default 1.5).
	RebalanceFactor float64
	// Logger receives diagnostics; nil discards them.
	Logger *obs.Logger
}

// Coordinator drives shard workers over the network while keeping the
// authoritative Aggregator — and therefore the merged Q^a/Q trajectory —
// in this process. It satisfies the same fleet surface as the in-process
// Manager and shard Coordinator and produces bit-identical reports.
type Coordinator struct {
	cfg     Config
	log     *obs.Logger
	runID   string
	ids     []timeseries.MeasurementID
	agg     *manager.Aggregator
	srv     *collector.Server
	retAddr string

	// mu is the step/control lock: Step, rebalance, reconnection and
	// Close serialize on it.
	mu          sync.Mutex
	closed      bool
	seq         uint64
	planVersion uint64
	pairs       []manager.Pair
	pairIdx     [][2]int
	outcomes    []manager.Outcome
	owner       map[manager.Pair]int
	localPairs  [][]manager.Pair
	localIdx    [][]int
	conns       []*workerConn
	lastDial    []time.Time
	baseState   [][]byte
	pendInstall map[manager.Pair]pendingModel
	latGauges   []*obs.Gauge
	ring        ringState

	// pmu guards the outcome-collection state shared with the collector
	// sink goroutines.
	pmu     sync.Mutex
	notify  chan struct{}
	applied []uint64
	collect collectState
	lat     []float64
	latSet  []bool
}

// pendingModel is a model mid-migration: extracted from its donor and
// retained until its recipient confirms a checkpoint that contains it.
type pendingModel struct {
	owner int
	blob  []byte
}

// collectState tracks the in-flight row's outcome assembly.
type collectState struct {
	seq      uint64
	pv       uint64
	t0       time.Time
	got      []bool
	received []int
	seen     []map[int]bool
	complete bool
}

// workerConn is one live control connection; a background reader routes
// worker replies and flags death.
type workerConn struct {
	k        int
	conn     net.Conn
	replies  chan collector.Frame
	dead     chan struct{}
	deadOnce sync.Once
	err      error
}

func (wc *workerConn) markDead(err error) {
	wc.deadOnce.Do(func() {
		wc.err = err
		close(wc.dead)
		wc.conn.Close()
	})
}

func (wc *workerConn) isDead() bool {
	select {
	case <-wc.dead:
		return true
	default:
		return false
	}
}

// await returns the next routed reply of the wanted type.
func (wc *workerConn) await(want collector.MsgType, timeout time.Duration) (collector.Frame, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case f := <-wc.replies:
		if f.Type != want {
			err := fmt.Errorf("shardnet: shard %d answered type %d, want %d", wc.k, byte(f.Type), byte(want))
			wc.markDead(err)
			return collector.Frame{}, err
		}
		return f, nil
	case <-wc.dead:
		return collector.Frame{}, fmt.Errorf("shardnet: shard %d connection lost: %w", wc.k, wc.err)
	case <-deadline.C:
		err := fmt.Errorf("shardnet: shard %d reply timeout", wc.k)
		wc.markDead(err)
		return collector.Frame{}, err
	}
}

// awaitDone reads a command acknowledgement and surfaces worker-side
// failures.
func (wc *workerConn) awaitDone(timeout time.Duration) error {
	f, err := wc.await(MsgShardDone, timeout)
	if err != nil {
		return err
	}
	var d doneMsg
	if err := decodeGob(f.Payload, &d); err != nil {
		wc.markDead(err)
		return err
	}
	if d.Err != "" {
		err := fmt.Errorf("shardnet: shard %d: %s", wc.k, d.Err)
		wc.markDead(err)
		return err
	}
	return nil
}

// awaitBlob assembles a chunked reply of the wanted type.
func (wc *workerConn) awaitBlob(want collector.MsgType, timeout time.Duration) ([]byte, error) {
	var acc bytes.Buffer
	for {
		f, err := wc.await(want, timeout)
		if err != nil {
			return nil, err
		}
		last, err := appendBlobChunk(&acc, f.Payload)
		if err != nil {
			wc.markDead(err)
			return nil, err
		}
		if last {
			return acc.Bytes(), nil
		}
	}
}

// New trains the pair graph, partitions it across the configured workers
// by rendezvous hashing, ships each worker its shard's models, and
// starts the outcome-return collector. It blocks until every worker has
// installed its state and persisted the epoch-zero checkpoint.
func New(history *timeseries.Dataset, cfg Config) (*Coordinator, error) {
	n := len(cfg.Workers)
	if n < 1 {
		return nil, errors.New("shardnet: at least one worker address required")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = defaultCheckpointEvery
	}
	if cfg.RebalanceFactor <= 1 {
		cfg.RebalanceFactor = 1.5
	}

	// Train every shard's subset locally — the same keepFor partition the
	// in-process fabric uses — then serialize and release the local
	// copies; from here on the workers own the live models.
	mgrs := make([]*manager.Manager, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			keep := func(p manager.Pair) bool {
				if shard.Assign(p.String(), n) != k {
					return false
				}
				return cfg.Keep == nil || cfg.Keep(p)
			}
			mgrs[k], errs[k] = manager.NewSubset(history, cfg.Manager, keep)
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			for _, m := range mgrs {
				if m != nil {
					m.Close()
				}
			}
			return nil, fmt.Errorf("shardnet: train shard %d: %w", k, err)
		}
	}

	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		log:         cfg.Logger.With("component", "shardnet"),
		runID:       hex.EncodeToString(idb[:]),
		ids:         mgrs[0].IDs(),
		agg:         manager.NewAggregator(mgrs[0].IDs(), cfg.Manager),
		owner:       make(map[manager.Pair]int),
		conns:       make([]*workerConn, n),
		lastDial:    make([]time.Time, n),
		baseState:   make([][]byte, n),
		pendInstall: make(map[manager.Pair]pendingModel),
		notify:      make(chan struct{}, 1),
		applied:     make([]uint64, n),
		lat:         make([]float64, n),
		latSet:      make([]bool, n),
		latGauges:   make([]*obs.Gauge, n),
	}
	for k, m := range mgrs {
		for _, p := range m.Pairs() {
			c.owner[p] = k
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, fmt.Errorf("shardnet: serialize shard %d: %w", k, err)
		}
		c.baseState[k] = buf.Bytes()
		m.Close()
	}
	for k := range c.latGauges {
		c.latGauges[k] = obsShardLatency.With(strconv.Itoa(k))
	}
	c.rebuild()

	srv, err := collector.NewServerWithLogger(&outcomeSink{c: c}, cfg.Logger)
	if err != nil {
		return nil, err
	}
	srv.SetFlow(collector.FlowConfig{})
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	addr, err := srv.Listen(listen)
	if err != nil {
		return nil, fmt.Errorf("shardnet: outcome listener: %w", err)
	}
	c.srv = srv
	c.retAddr = advertiseAddr(addr, cfg.Advertise)

	// Connect every worker; allow a grace window for processes still
	// starting up.
	deadline := time.Now().Add(handshakeTimeout)
	for k := 0; k < n; k++ {
		for {
			if err := c.connectLocked(k); err == nil {
				break
			} else if time.Now().After(deadline) {
				c.Close()
				return nil, fmt.Errorf("shardnet: worker %d (%s): %w", k, cfg.Workers[k], err)
			}
			time.Sleep(redialInterval)
		}
	}
	// Every worker holds an epoch-zero checkpoint now; the trained blobs
	// are no longer needed.
	c.baseState = nil
	obsWorkerCount.Set(float64(n))
	return c, nil
}

// advertiseAddr resolves the outcome address announced to workers: an
// explicit override wins; an unspecified listen host is rewritten to
// loopback, which is correct for same-host workers.
func advertiseAddr(addr net.Addr, override string) string {
	if override != "" {
		return override
	}
	s := addr.String()
	if host, port, err := net.SplitHostPort(s); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			return net.JoinHostPort("127.0.0.1", port)
		}
	}
	return s
}

// rebuild recomputes the canonical global pair order and the per-shard
// scatter tables from the current ownership plan. Callers hold c.mu (or
// are constructing the coordinator).
func (c *Coordinator) rebuild() {
	n := len(c.cfg.Workers)
	pairs := make([]manager.Pair, 0, len(c.owner))
	for p := range c.owner {
		pairs = append(pairs, p)
	}
	manager.SortPairs(pairs)
	pairIdx := manager.BuildPairIndex(c.ids, pairs)
	localPairs := make([][]manager.Pair, n)
	localIdx := make([][]int, n)
	for i, p := range pairs {
		k := c.owner[p]
		localPairs[k] = append(localPairs[k], p)
		localIdx[k] = append(localIdx[k], i)
	}
	c.pmu.Lock()
	c.pairs = pairs
	c.pairIdx = pairIdx
	c.outcomes = make([]manager.Outcome, len(pairs))
	c.localPairs = localPairs
	c.localIdx = localIdx
	c.pmu.Unlock()
}

// ringCap bounds the replay ring: enough rows to re-feed any worker
// whose last checkpoint is at most one cadence old, plus slack.
func (c *Coordinator) ringCap() int { return 4*c.cfg.CheckpointEvery + 64 }

// ringState is the bounded replay buffer; ringBase is the sequence of
// frames[0].
type ringState struct {
	frames   [][]byte
	ringBase uint64
}

// push appends a row frame, evicting the oldest past cap.
func (r *ringState) push(seq uint64, frame []byte, capRows int) {
	if len(r.frames) == 0 {
		r.ringBase = seq
	}
	r.frames = append(r.frames, frame)
	if len(r.frames) > capRows {
		drop := len(r.frames) - capRows
		r.frames = append(r.frames[:0], r.frames[drop:]...)
		r.ringBase += uint64(drop)
	}
}

// connectLocked dials worker k, reconciles its recovered state against
// the current plan, and replays any rows it missed. Callers hold c.mu.
func (c *Coordinator) connectLocked(k int) error {
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.Dial("tcp", c.cfg.Workers[k])
	if err != nil {
		return err
	}
	wc := &workerConn{k: k, conn: conn, replies: make(chan collector.Frame, 8), dead: make(chan struct{})}
	go c.readLoop(wc)

	fail := func(err error) error {
		wc.markDead(err)
		return err
	}
	assign := assignMsg{
		RunID:           c.runID,
		K:               k,
		N:               len(c.cfg.Workers),
		PlanVersion:     c.planVersion,
		ReturnAddr:      c.retAddr,
		CheckpointEvery: c.cfg.CheckpointEvery,
		IDs:             c.ids,
		Pairs:           c.localPairs[k],
	}
	if err := writeGob(conn, MsgShardAssign, assign); err != nil {
		return fail(err)
	}
	ready, err := c.awaitReady(wc)
	if err != nil {
		return err
	}
	if !ready.HaveState {
		if c.baseState == nil || c.baseState[k] == nil {
			return fail(fmt.Errorf("shardnet: shard %d lost all state after streaming began", k))
		}
		if err := writeBlob(conn, MsgShardState, c.baseState[k]); err != nil {
			return fail(err)
		}
		if ready, err = c.awaitReady(wc); err != nil {
			return err
		}
		if !ready.HaveState {
			return fail(fmt.Errorf("shardnet: shard %d rejected state transfer", k))
		}
	}

	// Reconcile ownership: a crash mid-migration can leave a worker with
	// models it no longer owns (pruned here) or without models the plan
	// says it holds (re-installed from the migration buffer).
	extras, missing := diffPairs(ready.Pairs, c.localPairs[k])
	if len(extras) > 0 {
		if err := writeGob(conn, MsgShardPrune, pruneMsg{PlanVersion: c.planVersion, Pairs: extras}); err != nil {
			return fail(err)
		}
		if err := wc.awaitDone(handshakeTimeout); err != nil {
			return err
		}
	}
	if len(missing) > 0 {
		models := make([]pairModel, 0, len(missing))
		for _, p := range missing {
			pend, ok := c.pendInstall[p]
			if !ok || pend.owner != k {
				return fail(fmt.Errorf("shardnet: shard %d is missing pair %s with no migration copy", k, p))
			}
			models = append(models, pairModel{Pair: p, Blob: pend.blob})
		}
		if err := sendInstall(conn, installMsg{PlanVersion: c.planVersion, Models: models}); err != nil {
			return fail(err)
		}
		if err := wc.awaitDone(handshakeTimeout); err != nil {
			return err
		}
	}

	// Replay the rows the worker has not acked yet.
	if ready.AppliedSeq > c.seq {
		return fail(fmt.Errorf("shardnet: shard %d is ahead of the coordinator (%d > %d)", k, ready.AppliedSeq, c.seq))
	}
	if replay := c.seq - ready.AppliedSeq; replay > 0 {
		first := ready.AppliedSeq + 1
		if first < c.ring.ringBase {
			return fail(fmt.Errorf("shardnet: shard %d checkpoint too old to replay (needs row %d, ring starts at %d)", k, first, c.ring.ringBase))
		}
		for s := first; s <= c.seq; s++ {
			frame := c.ring.frames[s-c.ring.ringBase]
			if err := collector.WriteFrame(conn, collector.Frame{Type: MsgShardRow, Payload: frame}); err != nil {
				return fail(err)
			}
		}
		obsReplayedRows.Add(uint64(replay))
	}

	if old := c.conns[k]; old != nil {
		old.markDead(errors.New("superseded"))
		obsReconnects.Add(1)
	}
	c.conns[k] = wc
	c.pmu.Lock()
	// A restarted worker reverts to its checkpoint; rows between the
	// checkpoint and the merge floor will be re-delivered and must pass
	// the exactly-once filter again from the worker's applied position.
	if ready.AppliedSeq < c.applied[k] {
		c.applied[k] = ready.AppliedSeq
	}
	c.pmu.Unlock()
	c.updateConnected()
	return nil
}

// awaitReady reads a readyMsg reply.
func (c *Coordinator) awaitReady(wc *workerConn) (readyMsg, error) {
	f, err := wc.await(MsgShardReady, handshakeTimeout)
	if err != nil {
		return readyMsg{}, err
	}
	var ready readyMsg
	if err := decodeGob(f.Payload, &ready); err != nil {
		wc.markDead(err)
		return readyMsg{}, err
	}
	return ready, nil
}

// readLoop routes worker replies until the connection dies.
func (c *Coordinator) readLoop(wc *workerConn) {
	for {
		f, err := collector.ReadFrame(wc.conn)
		if err != nil {
			wc.markDead(err)
			c.wake()
			return
		}
		select {
		case wc.replies <- f:
		case <-wc.dead:
			return
		}
	}
}

// wake nudges a Step blocked in awaitOutcomes.
func (c *Coordinator) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// sendInstall ships a chunked install command.
func sendInstall(conn net.Conn, m installMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return err
	}
	return writeBlob(conn, MsgShardInstall, buf.Bytes())
}

// diffPairs splits have into (extras not in want, missing from have).
// Both inputs are canonically sorted.
func diffPairs(have, want []manager.Pair) (extras, missing []manager.Pair) {
	i, j := 0, 0
	for i < len(have) && j < len(want) {
		switch {
		case have[i] == want[j]:
			i++
			j++
		case have[i].Less(want[j]):
			extras = append(extras, have[i])
			i++
		default:
			missing = append(missing, want[j])
			j++
		}
	}
	extras = append(extras, have[i:]...)
	missing = append(missing, want[j:]...)
	return extras, missing
}
