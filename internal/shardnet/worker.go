package shardnet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// checkpointVersion guards the worker checkpoint blob layout.
const checkpointVersion = 1

// workerCheckpoint is the durable state a worker persists under
// data-dir/shard-<k>/: enough to rejoin the fabric after a SIGKILL with
// the merged trajectory unchanged. AppliedSeq only ever names rows whose
// outcomes the coordinator has acknowledged, so recovery re-scores
// exactly the replayed suffix and never skips or double-advances a model.
type workerCheckpoint struct {
	Version     int
	RunID       string
	K, N        int
	PlanVersion uint64
	AppliedSeq  uint64
	Manager     []byte
}

// WorkerConfig configures a shard worker process.
type WorkerConfig struct {
	// DataDir is the checkpoint root; the worker writes under
	// DataDir/shard-<k>/. Required.
	DataDir string
	// CheckpointEvery overrides the coordinator-announced checkpoint
	// cadence when > 0 (rows between checkpoints).
	CheckpointEvery int
	// Logger receives diagnostics; nil discards them.
	Logger *obs.Logger
}

// Worker is a networked shard scorer: it owns one shard's trained models,
// scores rows the coordinator streams over the control connection, and
// returns outcome sets through a ReliableAgent to the coordinator's
// collector. Model state survives control-session churn in memory and
// SIGKILL through per-epoch checkpoints.
type Worker struct {
	cfg WorkerConfig
	log *obs.Logger
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	sess   *session

	// smu serializes all shard-state access across control sessions: a
	// superseded session may still be draining a send when its
	// replacement starts handling rows.
	smu sync.Mutex
	st  *shardState
}

// session is one accepted control connection.
type session struct {
	conn net.Conn
	gone atomic.Bool // set when a newer session supersedes this one
}

// shardState is the worker's live shard: it persists across control
// sessions within the process so a reconnect never retrains or reloads.
type shardState struct {
	runID       string
	k, n        int
	planVersion uint64
	ids         []timeseries.MeasurementID
	mgr         *manager.Manager
	agent       *collector.ReliableAgent
	returnAddr  string
	machine     string // outcome sample machine label, "shard-<k>"

	// ackedSeq is the last row whose outcome the coordinator acked;
	// scoredSeq is the last row scored. They differ by at most one row
	// (the one whose send a session swap may have interrupted), whose
	// packed payload is kept for resend so the model is never re-stepped.
	ackedSeq   uint64
	scoredSeq  uint64
	lastPacked []string
	lastTime   time.Time

	dst           []manager.Outcome
	values        map[timeseries.MeasurementID]float64
	frame         rowFrame
	packBuf       []byte        // reusable packOutcomes build buffer
	sampleBuf     []tsdb.Sample // reusable outcome sample slice
	ckptEvery     int
	rowsSinceCkpt int
}

// ListenWorker binds a shard worker to addr (":0" picks a free port).
// Call Serve to accept coordinator sessions.
func ListenWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("shardnet: worker requires a data dir")
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shardnet: listen %s: %w", addr, err)
	}
	return &Worker{cfg: cfg, log: cfg.Logger.With("component", "shardnet-worker"), ln: ln}, nil
}

// Addr returns the worker's control listen address.
func (w *Worker) Addr() net.Addr { return w.ln.Addr() }

// Serve accepts coordinator control sessions until Close. A new session
// supersedes the previous one (the coordinator redials after any
// connection failure it observes).
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		if w.sess != nil {
			w.sess.gone.Store(true)
			w.sess.conn.Close()
		}
		sess := &session{conn: conn}
		w.sess = sess
		w.mu.Unlock()
		obsWorkerSessions.Add(1)
		go func() {
			if err := w.handle(sess); err != nil && !sess.gone.Load() {
				w.log.Info("session ended", "err", err)
			}
			sess.conn.Close()
		}()
	}
}

// Close stops the worker: the listener, the active session and the
// outcome agent.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	sess := w.sess
	w.mu.Unlock()
	err := w.ln.Close()
	if sess != nil {
		sess.gone.Store(true)
		sess.conn.Close()
	}
	w.smu.Lock()
	if w.st != nil {
		if w.st.agent != nil {
			w.st.agent.Close()
		}
		w.st.mgr.Close()
		w.st = nil
	}
	w.smu.Unlock()
	return err
}

// shardDir is the checkpoint directory for shard k.
func (w *Worker) shardDir(k int) string {
	return filepath.Join(w.cfg.DataDir, fmt.Sprintf("shard-%d", k))
}

func (w *Worker) checkpointPath(k int) string {
	return filepath.Join(w.shardDir(k), "checkpoint.gob")
}

// handle runs one control session. All shard-state mutation happens under
// w.smu so a superseded session draining its last send cannot race its
// replacement.
func (w *Worker) handle(sess *session) error {
	f, err := collector.ReadFrame(sess.conn)
	if err != nil {
		return err
	}
	if f.Type != MsgShardAssign {
		return fmt.Errorf("shardnet: expected assign, got type %d", byte(f.Type))
	}
	var a assignMsg
	if err := decodeGob(f.Payload, &a); err != nil {
		return err
	}

	w.smu.Lock()
	st, err := w.adoptState(sess, a)
	w.smu.Unlock()
	if err != nil {
		return err
	}

	for {
		f, err := collector.ReadFrame(sess.conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		w.smu.Lock()
		err = w.dispatch(sess, st, f)
		w.smu.Unlock()
		if err != nil {
			return err
		}
	}
}

// adoptState resolves the session's shard state — in-memory, checkpoint,
// or a fresh state transfer — and completes the ready handshake. Callers
// hold w.smu.
func (w *Worker) adoptState(sess *session, a assignMsg) (*shardState, error) {
	st := w.st
	if st != nil && (st.runID != a.RunID || st.k != a.K) {
		// A different run (or role) retires the old shard entirely.
		if st.agent != nil {
			st.agent.Close()
		}
		st.mgr.Close()
		st, w.st = nil, nil
	}
	if st == nil {
		if ck, mgr, err := w.loadCheckpoint(a); err == nil {
			st = &shardState{
				runID:     a.RunID,
				k:         a.K,
				n:         a.N,
				mgr:       mgr,
				ackedSeq:  ck.AppliedSeq,
				scoredSeq: ck.AppliedSeq,
			}
			w.st = st
			w.log.Info("recovered from checkpoint", "shard", a.K, "seq", ck.AppliedSeq)
		} else if !errors.Is(err, os.ErrNotExist) {
			w.log.Info("checkpoint unusable", "shard", a.K, "err", err)
		}
	}
	if st == nil {
		// No usable state: ask for a transfer, install it, and persist the
		// epoch-zero checkpoint before reporting ready — from here on a
		// SIGKILL always has a checkpoint to recover from.
		if err := writeGob(sess.conn, MsgShardReady, readyMsg{HaveState: false}); err != nil {
			return nil, err
		}
		blob, err := w.readBlob(sess.conn, MsgShardState)
		if err != nil {
			return nil, err
		}
		mgr, err := manager.LoadManager(bytes.NewReader(blob), nil)
		if err != nil {
			return nil, fmt.Errorf("shardnet: load shard state: %w", err)
		}
		st = &shardState{runID: a.RunID, k: a.K, n: a.N, mgr: mgr}
		w.st = st
	}
	st.planVersion = a.PlanVersion
	st.ids = a.IDs
	st.machine = fmt.Sprintf("shard-%d", st.k)
	st.ckptEvery = a.CheckpointEvery
	if w.cfg.CheckpointEvery > 0 {
		st.ckptEvery = w.cfg.CheckpointEvery
	}
	if st.ckptEvery <= 0 {
		st.ckptEvery = 240
	}
	if st.values == nil {
		st.values = make(map[timeseries.MeasurementID]float64, len(st.ids))
	}
	if st.agent == nil || st.returnAddr != a.ReturnAddr {
		if st.agent != nil {
			st.agent.Close()
		}
		st.returnAddr = a.ReturnAddr
		st.agent = collector.NewReliableAgent(a.ReturnAddr, st.machine, collector.ReliableConfig{
			MaxAttempts: 4,
			Backoff:     25 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		})
	}
	if err := w.checkpoint(st); err != nil {
		return nil, err
	}
	return st, writeGob(sess.conn, MsgShardReady, readyMsg{
		HaveState:   true,
		AppliedSeq:  st.ackedSeq,
		PlanVersion: st.planVersion,
		Pairs:       st.mgr.Pairs(),
	})
}

// loadCheckpoint reads and validates the shard-k checkpoint for this run.
func (w *Worker) loadCheckpoint(a assignMsg) (*workerCheckpoint, *manager.Manager, error) {
	f, err := os.Open(w.checkpointPath(a.K))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var ck workerCheckpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, nil, fmt.Errorf("decode: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, nil, fmt.Errorf("checkpoint version %d", ck.Version)
	}
	if ck.RunID != a.RunID || ck.K != a.K {
		return nil, nil, fmt.Errorf("checkpoint is for run %q shard %d", ck.RunID, ck.K)
	}
	mgr, err := manager.LoadManager(bytes.NewReader(ck.Manager), nil)
	if err != nil {
		return nil, nil, fmt.Errorf("load manager: %w", err)
	}
	return &ck, mgr, nil
}

// checkpoint atomically persists the shard's models and applied sequence.
func (w *Worker) checkpoint(st *shardState) error {
	if err := os.MkdirAll(w.shardDir(st.k), 0o755); err != nil {
		return err
	}
	var mblob bytes.Buffer
	if err := st.mgr.Save(&mblob); err != nil {
		return err
	}
	ck := workerCheckpoint{
		Version:     checkpointVersion,
		RunID:       st.runID,
		K:           st.k,
		N:           st.n,
		PlanVersion: st.planVersion,
		AppliedSeq:  st.ackedSeq,
		Manager:     mblob.Bytes(),
	}
	err := manager.AtomicWrite(w.checkpointPath(st.k), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(&ck)
	})
	if err != nil {
		return err
	}
	st.rowsSinceCkpt = 0
	obsWorkerCheckpoints.Add(1)
	return nil
}

// readBlob collects a chunked transfer of the given frame type.
func (w *Worker) readBlob(conn net.Conn, msgType collector.MsgType) ([]byte, error) {
	var acc bytes.Buffer
	for {
		f, err := collector.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		if f.Type != msgType {
			return nil, fmt.Errorf("shardnet: expected type %d chunk, got %d", byte(msgType), byte(f.Type))
		}
		last, err := appendBlobChunk(&acc, f.Payload)
		if err != nil {
			return nil, err
		}
		if last {
			return acc.Bytes(), nil
		}
	}
}

// dispatch handles one post-handshake control frame. Callers hold w.smu.
func (w *Worker) dispatch(sess *session, st *shardState, f collector.Frame) error {
	switch f.Type {
	case MsgShardRow:
		return w.handleRow(sess, st, f.Payload)
	case MsgShardExtract:
		var m extractMsg
		if err := decodeGob(f.Payload, &m); err != nil {
			return err
		}
		set := modelSet{Models: make([]pairModel, 0, len(m.Pairs))}
		for _, p := range m.Pairs {
			model := st.mgr.Model(p.A, p.B)
			if model == nil {
				return w.done(sess, st, fmt.Sprintf("extract: pair %s not owned", p))
			}
			var buf bytes.Buffer
			if err := model.Save(&buf); err != nil {
				return err
			}
			set.Models = append(set.Models, pairModel{Pair: p, Blob: buf.Bytes()})
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&set); err != nil {
			return err
		}
		return writeBlob(sess.conn, MsgShardModels, buf.Bytes())
	case MsgShardInstall:
		blob, err := w.readBlobFirst(sess.conn, MsgShardInstall, f)
		if err != nil {
			return err
		}
		var m installMsg
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&m); err != nil {
			return err
		}
		for _, pm := range m.Models {
			model, err := core.LoadModel(bytes.NewReader(pm.Blob))
			if err != nil {
				return w.done(sess, st, fmt.Sprintf("install %s: %v", pm.Pair, err))
			}
			if err := st.mgr.AddModel(pm.Pair, model); err != nil {
				return w.done(sess, st, fmt.Sprintf("install %s: %v", pm.Pair, err))
			}
		}
		st.planVersion = m.PlanVersion
		if err := w.checkpoint(st); err != nil {
			return err
		}
		return w.done(sess, st, "")
	case MsgShardPrune:
		var m pruneMsg
		if err := decodeGob(f.Payload, &m); err != nil {
			return err
		}
		for _, p := range m.Pairs {
			st.mgr.RemovePair(p)
		}
		st.planVersion = m.PlanVersion
		if err := w.checkpoint(st); err != nil {
			return err
		}
		return w.done(sess, st, "")
	case MsgShardPlan:
		var m planMsg
		if err := decodeGob(f.Payload, &m); err != nil {
			return err
		}
		st.planVersion = m.PlanVersion
		if err := w.checkpoint(st); err != nil {
			return err
		}
		return w.done(sess, st, "")
	case MsgShardAdaptive:
		var adaptive bool
		if err := decodeGob(f.Payload, &adaptive); err != nil {
			return err
		}
		st.mgr.SetAdaptive(adaptive)
		return w.done(sess, st, "")
	case MsgShardResetChains:
		st.mgr.ResetChains()
		return w.done(sess, st, "")
	case collector.MsgBye:
		return io.EOF
	default:
		return fmt.Errorf("shardnet: unexpected control frame type %d", byte(f.Type))
	}
}

// readBlobFirst collects a chunked transfer whose first frame was already
// read.
func (w *Worker) readBlobFirst(conn net.Conn, msgType collector.MsgType, first collector.Frame) ([]byte, error) {
	var acc bytes.Buffer
	last, err := appendBlobChunk(&acc, first.Payload)
	if err != nil {
		return nil, err
	}
	for !last {
		f, err := collector.ReadFrame(conn)
		if err != nil {
			return nil, err
		}
		if f.Type != msgType {
			return nil, fmt.Errorf("shardnet: expected type %d chunk, got %d", byte(msgType), byte(f.Type))
		}
		if last, err = appendBlobChunk(&acc, f.Payload); err != nil {
			return nil, err
		}
	}
	return acc.Bytes(), nil
}

func (w *Worker) done(sess *session, st *shardState, errMsg string) error {
	return writeGob(sess.conn, MsgShardDone, doneMsg{PlanVersion: st.planVersion, Err: errMsg})
}

// handleRow scores one streamed row and returns its packed outcome set
// through the reliable agent. Rows arrive in sequence; a replay of the
// single possibly-unacked row re-sends its cached payload instead of
// re-stepping the models, which is what keeps the merged trajectory
// bit-identical across reconnects.
func (w *Worker) handleRow(sess *session, st *shardState, payload []byte) error {
	if err := decodeRowFrame(payload, &st.frame); err != nil {
		return err
	}
	seq := st.frame.Seq
	switch {
	case seq <= st.ackedSeq:
		// Already merged by the coordinator; nothing to do.
		return nil
	case seq == st.scoredSeq && st.lastPacked != nil:
		// Scored but possibly unacked: resend the cached payload.
		return w.sendOutcome(sess, st, seq, st.lastTime, st.lastPacked)
	case seq != st.scoredSeq+1:
		return fmt.Errorf("shardnet: row gap: got seq %d, applied %d", seq, st.scoredSeq)
	}

	clear(st.values)
	for i, idx := range st.frame.Idx {
		if int(idx) >= len(st.ids) {
			return fmt.Errorf("shardnet: row measurement index %d out of range", idx)
		}
		st.values[st.ids[idx]] = math.Float64frombits(st.frame.Bits[i])
	}
	row := manager.Row{Time: st.frame.Time, Values: st.values}
	n := st.mgr.PairCount()
	if cap(st.dst) < n {
		st.dst = make([]manager.Outcome, n)
	}
	st.dst = st.dst[:n]
	st.mgr.ScoreInto(row, nil, st.dst)
	obsWorkerRows.Add(1)

	var packed []string
	packed, st.packBuf = packOutcomes(st.packBuf, st.planVersion, st.dst)
	st.scoredSeq = seq
	st.lastPacked = packed
	st.lastTime = st.frame.Time
	return w.sendOutcome(sess, st, seq, st.frame.Time, packed)
}

// sendOutcome delivers one row's packed outcome chunks, retrying until
// the coordinator acks or the session is superseded. A nil return means
// the row is acked and safe to checkpoint past.
func (w *Worker) sendOutcome(sess *session, st *shardState, seq uint64, t time.Time, packed []string) error {
	if cap(st.sampleBuf) < len(packed) {
		st.sampleBuf = make([]tsdb.Sample, len(packed))
	}
	samples := st.sampleBuf[:len(packed)]
	for i, chunk := range packed {
		samples[i] = tsdb.Sample{
			ID:    timeseries.MeasurementID{Machine: st.machine, Metric: chunk},
			Time:  t,
			Value: float64(seq),
		}
	}
	err := st.agent.Send(samples)
	for err != nil || st.agent.Pending() > 0 {
		if sess.gone.Load() {
			return fmt.Errorf("shardnet: session superseded with row %d in flight", seq)
		}
		if err != nil {
			w.log.Info("outcome delivery retrying", "seq", seq, "err", err)
		}
		time.Sleep(50 * time.Millisecond)
		err = st.agent.Flush()
	}
	st.ackedSeq = seq
	st.lastPacked = nil
	st.rowsSinceCkpt++
	if st.rowsSinceCkpt >= st.ckptEvery {
		return w.checkpoint(st)
	}
	return nil
}
