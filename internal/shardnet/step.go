package shardnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// Step fans one synchronized row out to every worker, waits for all
// shards' outcome sets through the exactly-once return path, and merges
// them through the authoritative Aggregator — the same Aggregate call,
// in the same canonical pair order, as the in-process fabric, which is
// what keeps the trajectory bit-identical. A worker that dies mid-row is
// redialed and replayed from the ring; Step blocks until every shard's
// outcome for this row has arrived.
func (c *Coordinator) Step(row manager.Row) manager.StepReport {
	start := time.Now()
	sp := obs.StartSpan("shardnet.step")
	c.mu.Lock()
	defer c.mu.Unlock()

	sp.Phase("broadcast")
	c.seq++
	frame := encodeRowFrame(c.seq, row, c.ids)
	c.ring.push(c.seq, frame, c.ringCap())
	c.pmu.Lock()
	c.resetCollectLocked(c.seq)
	c.pmu.Unlock()
	for _, wc := range c.conns {
		if wc == nil || wc.isDead() {
			continue
		}
		if err := collector.WriteFrame(wc.conn, collector.Frame{Type: MsgShardRow, Payload: frame}); err != nil {
			wc.markDead(err)
		}
	}

	sp.Phase("score")
	c.awaitOutcomesLocked()

	sp.Phase("aggregate")
	report := c.agg.Aggregate(row.Time, c.pairs, c.pairIdx, c.outcomes, sp)
	sp.End()
	obsRows.Add(1)
	obsStepSeconds.Observe(time.Since(start).Seconds())

	if c.cfg.RebalanceEvery > 0 && c.seq%uint64(c.cfg.RebalanceEvery) == 0 {
		c.autoRebalanceLocked()
	}
	return report
}

// resetCollectLocked arms outcome collection for seq. Callers hold both
// c.mu and c.pmu.
func (c *Coordinator) resetCollectLocked(seq uint64) {
	n := len(c.cfg.Workers)
	if c.collect.got == nil {
		c.collect.got = make([]bool, n)
		c.collect.received = make([]int, n)
		c.collect.seen = make([]map[int]bool, n)
	}
	c.collect.seq = seq
	c.collect.pv = c.planVersion
	c.collect.t0 = time.Now()
	c.collect.complete = false
	for k := 0; k < n; k++ {
		c.collect.got[k] = false
		c.collect.received[k] = 0
		c.collect.seen[k] = nil
	}
}

// awaitOutcomesLocked blocks until every shard's outcome set for the
// current row has been scattered, redialing dead workers as needed.
// Callers hold c.mu.
func (c *Coordinator) awaitOutcomesLocked() {
	for {
		c.pmu.Lock()
		done := c.collect.complete
		c.pmu.Unlock()
		if done {
			return
		}
		c.reviveLocked()
		select {
		case <-c.notify:
		case <-time.After(awaitTick):
		}
	}
}

// reviveLocked redials any dead worker connection, rate-limited per
// shard. Callers hold c.mu.
func (c *Coordinator) reviveLocked() {
	for k, wc := range c.conns {
		if wc != nil && !wc.isDead() {
			continue
		}
		if time.Since(c.lastDial[k]) < redialInterval {
			continue
		}
		c.lastDial[k] = time.Now()
		if err := c.connectLocked(k); err != nil {
			c.log.Info("worker redial failed", "shard", k, "err", err)
			continue
		}
		obsReconnects.Add(1)
		c.log.Info("worker reconnected", "shard", k, "seq", c.seq)
	}
	c.updateConnected()
}

// updateConnected refreshes the live-connection gauge.
func (c *Coordinator) updateConnected() {
	live := 0
	for _, wc := range c.conns {
		if wc != nil && !wc.isDead() {
			live++
		}
	}
	obsConnected.Set(float64(live))
}

// outcomeSink receives worker outcome batches from the collector server.
// Each sample carries one packed chunk; the sink deduplicates retries by
// (shard, sequence), discards stale plan versions, scatters outcomes
// into the coordinator's global buffer at the shard's plan indices, and
// wakes the blocked Step when the row is complete. Returning nil acks
// the batch, which is what lets the workers' ReliableAgents retire their
// buffers — the exactly-once contract lives here.
type outcomeSink struct {
	c *Coordinator
}

// AppendBatch implements collector.Sink.
func (s *outcomeSink) AppendBatch(batch []tsdb.Sample) error {
	c := s.c
	var ch outcomeChunk
	for _, sample := range batch {
		k, ok := shardOf(sample.ID.Machine)
		if !ok || k >= len(c.applied) {
			obsStaleOutcomes.Add(1)
			continue
		}
		seq := uint64(sample.Value)
		c.pmu.Lock()
		switch {
		case seq <= c.applied[k]:
			// A retry of an already-merged row: ack and drop.
			obsDupOutcomes.Add(1)
		case c.collect.complete || seq != c.collect.seq:
			// Not the row being collected; only retries can land here.
			obsDupOutcomes.Add(1)
		default:
			if err := unpackOutcomes(sample.ID.Metric, &ch); err != nil {
				// Ack malformed chunks anyway: returning an error would make
				// the worker's ReliableAgent retry the same poison payload
				// forever, wedging the fabric.
				obsStaleOutcomes.Add(1)
				c.log.Info("dropping malformed outcome chunk", "shard", k, "err", err)
			} else {
				s.mergeLocked(k, seq, &ch)
			}
		}
		c.pmu.Unlock()
	}
	return nil
}

// mergeLocked folds one validated chunk into the collection state.
// Callers hold c.pmu.
func (s *outcomeSink) mergeLocked(k int, seq uint64, ch *outcomeChunk) {
	c := s.c
	if ch.PlanVersion != c.collect.pv {
		obsStaleOutcomes.Add(1)
		return
	}
	if ch.Total != len(c.localIdx[k]) {
		obsStaleOutcomes.Add(1)
		return
	}
	if c.collect.seen[k] == nil {
		c.collect.seen[k] = make(map[int]bool, 1)
	}
	if c.collect.seen[k][ch.Offset] {
		obsDupOutcomes.Add(1)
		return
	}
	c.collect.seen[k][ch.Offset] = true
	idx := c.localIdx[k]
	for i, o := range ch.Outcomes {
		c.outcomes[idx[ch.Offset+i]] = o
	}
	c.collect.received[k] += len(ch.Outcomes)
	if !c.collect.got[k] && c.collect.received[k] >= ch.Total {
		c.collect.got[k] = true
		c.applied[k] = seq
		dt := time.Since(c.collect.t0).Seconds()
		if c.latSet[k] {
			c.lat[k] += latencyAlpha * (dt - c.lat[k])
		} else {
			c.lat[k] = dt
			c.latSet[k] = true
		}
		c.latGauges[k].Set(c.lat[k])
		all := true
		for _, g := range c.collect.got {
			if !g {
				all = false
				break
			}
		}
		if all {
			c.collect.complete = true
			c.wake()
		}
	}
}

// shardOf parses a worker outcome machine label ("shard-<k>").
func shardOf(machine string) (int, bool) {
	rest, ok := strings.CutPrefix(machine, "shard-")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// Rebalance migrates n pairs from one worker to another without
// retraining: the donor's models are extracted over the control channel,
// installed (and checkpointed) on the recipient, and only then does the
// plan flip and the donor prune — a crash at any point leaves every
// model owned by exactly one shard after the next handshake
// reconciliation. The step lock guarantees no row is in flight.
func (c *Coordinator) Rebalance(from, to, n int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebalanceLocked(from, to, n)
}

func (c *Coordinator) rebalanceLocked(from, to, n int) (int, error) {
	w := len(c.cfg.Workers)
	if from < 0 || from >= w || to < 0 || to >= w || from == to {
		return 0, fmt.Errorf("shardnet: invalid rebalance %d -> %d", from, to)
	}
	avail := c.localPairs[from]
	if n > len(avail)-1 {
		n = len(avail) - 1
	}
	if n <= 0 {
		return 0, nil
	}
	donor, recip := c.conns[from], c.conns[to]
	if donor == nil || donor.isDead() || recip == nil || recip.isDead() {
		return 0, fmt.Errorf("shardnet: rebalance %d -> %d: worker unavailable", from, to)
	}
	moving := avail[len(avail)-n:]
	newPV := c.planVersion + 1

	// Phase 1 — copy: extract without removing, install on the recipient.
	if err := writeGob(donor.conn, MsgShardExtract, extractMsg{Pairs: moving}); err != nil {
		donor.markDead(err)
		return 0, err
	}
	blob, err := donor.awaitBlob(MsgShardModels, handshakeTimeout)
	if err != nil {
		return 0, err
	}
	var set modelSet
	if err := decodeGob(blob, &set); err != nil {
		donor.markDead(err)
		return 0, err
	}
	if len(set.Models) != n {
		err := fmt.Errorf("shardnet: extract returned %d models, want %d", len(set.Models), n)
		donor.markDead(err)
		return 0, err
	}
	for _, pm := range set.Models {
		c.pendInstall[pm.Pair] = pendingModel{owner: to, blob: pm.Blob}
	}
	if err := sendInstall(recip.conn, installMsg{PlanVersion: newPV, Models: set.Models}); err != nil {
		recip.markDead(err)
		c.clearPending(set.Models)
		return 0, err
	}
	if err := recip.awaitDone(handshakeTimeout); err != nil {
		// The recipient may still have installed and checkpointed; keep
		// the pending copies so its handshake can reconcile either way.
		return 0, err
	}

	// Phase 2 — commit: the recipient has checkpointed the models, so
	// flip ownership, prune the donor and fan the new plan out.
	for _, p := range moving {
		c.owner[p] = to
	}
	c.planVersion = newPV
	c.rebuild()
	c.clearPending(set.Models)
	if err := writeGob(donor.conn, MsgShardPrune, pruneMsg{PlanVersion: newPV, Pairs: moving}); err == nil {
		if err := donor.awaitDone(handshakeTimeout); err != nil {
			c.log.Info("donor prune unacknowledged; handshake will reconcile", "shard", from, "err", err)
		}
	} else {
		donor.markDead(err)
	}
	for k, wc := range c.conns {
		if k == from || k == to || wc == nil || wc.isDead() {
			continue
		}
		if err := writeGob(wc.conn, MsgShardPlan, planMsg{PlanVersion: newPV}); err != nil {
			wc.markDead(err)
			continue
		}
		if err := wc.awaitDone(handshakeTimeout); err != nil {
			c.log.Info("plan fan-out unacknowledged; handshake will reconcile", "shard", k, "err", err)
		}
	}
	obsRebalances.Add(1)
	obsPairsStolen.Add(uint64(n))
	c.log.Info("rebalanced", "moved", n, "from", from, "to", to, "plan", newPV)
	return n, nil
}

// clearPending drops migration copies once their recipient has durably
// confirmed them (or the migration was abandoned before install).
func (c *Coordinator) clearPending(models []pairModel) {
	for _, pm := range models {
		delete(c.pendInstall, pm.Pair)
	}
}

// autoRebalanceLocked is the work-stealing policy: when the slowest
// shard's round-trip EWMA exceeds the fastest's by the configured
// factor, a quarter of the slow shard's pairs migrate to the fast one.
// Callers hold c.mu.
func (c *Coordinator) autoRebalanceLocked() {
	slow, fast := -1, -1
	for k := range c.lat {
		if !c.latSet[k] {
			return // not enough signal yet
		}
		if slow == -1 || c.lat[k] > c.lat[slow] {
			slow = k
		}
		if fast == -1 || c.lat[k] < c.lat[fast] {
			fast = k
		}
	}
	if slow == fast || c.lat[slow] < c.cfg.RebalanceFactor*c.lat[fast] {
		return
	}
	n := len(c.localPairs[slow]) / 4
	if n == 0 {
		return
	}
	if _, err := c.rebalanceLocked(slow, fast, n); err != nil {
		c.log.Info("auto-rebalance failed", "err", err)
	}
}

// Latencies returns the per-shard round-trip EWMAs in seconds (zero for
// shards that have not reported yet).
func (c *Coordinator) Latencies() []float64 {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	out := make([]float64, len(c.lat))
	copy(out, c.lat)
	return out
}

// SetLatencyHint seeds a shard's round-trip EWMA, letting operators (and
// tests) steer the work-stealing policy before organic signal builds up.
func (c *Coordinator) SetLatencyHint(k int, seconds float64) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if k < 0 || k >= len(c.lat) {
		return
	}
	c.lat[k] = seconds
	c.latSet[k] = true
}

// Run replays a dataset through Step in time order, exactly like the
// in-process fleets.
func (c *Coordinator) Run(ds *timeseries.Dataset, from, to time.Time) ([]manager.StepReport, error) {
	rows, err := manager.BuildRows(ds, from, to)
	if err != nil {
		return nil, err
	}
	reports := make([]manager.StepReport, 0, len(rows))
	for _, row := range rows {
		reports = append(reports, c.Step(row))
	}
	return reports, nil
}

// IDs returns the monitored measurements.
func (c *Coordinator) IDs() []timeseries.MeasurementID { return c.agg.IDs() }

// Pairs returns every trained link in canonical order.
func (c *Coordinator) Pairs() []manager.Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]manager.Pair, len(c.pairs))
	copy(out, c.pairs)
	return out
}

// NumShards returns the worker count.
func (c *Coordinator) NumShards() int { return len(c.cfg.Workers) }

// ShardPairs returns the pairs the current plan assigns to shard k.
func (c *Coordinator) ShardPairs(k int) []manager.Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < 0 || k >= len(c.localPairs) {
		return nil
	}
	out := make([]manager.Pair, len(c.localPairs[k]))
	copy(out, c.localPairs[k])
	return out
}

// PlanVersion returns the current ownership-plan epoch.
func (c *Coordinator) PlanVersion() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planVersion
}

// Steps counts rows that produced a system score.
func (c *Coordinator) Steps() int { return c.agg.Steps() }

// SystemMean is the running mean system fitness Q.
func (c *Coordinator) SystemMean() float64 { return c.agg.SystemMean() }

// MeasurementMeans is the running mean Q^a per measurement.
func (c *Coordinator) MeasurementMeans() map[timeseries.MeasurementID]float64 {
	return c.agg.MeasurementMeans()
}

// PairMeans returns the running mean fitness per link (requires
// Manager.TrackPairMeans).
func (c *Coordinator) PairMeans() map[manager.Pair]float64 { return c.agg.PairMeans() }

// WorstPairs returns the k weakest links by mean fitness.
func (c *Coordinator) WorstPairs(k int) []manager.PairScore { return c.agg.WorstPairs(k) }

// WorstPairDrops ranks links by drop against a healthy baseline.
func (c *Coordinator) WorstPairDrops(baseline map[manager.Pair]float64, k int) []manager.PairScore {
	return c.agg.WorstPairDrops(baseline, k)
}

// Localize ranks machines by mean fitness, worst first.
func (c *Coordinator) Localize() manager.Localization { return c.agg.Localize() }

// Aggregator exposes the authoritative aggregator (shared with the
// serving tier).
func (c *Coordinator) Aggregator() *manager.Aggregator { return c.agg }

// ResetAccumulators clears the running means.
func (c *Coordinator) ResetAccumulators() { c.agg.Reset() }

// SetAdaptive toggles online model updating on every connected worker.
// Workers that are down miss the toggle until their next restart with a
// fresh assign; toggle only while the fabric is healthy.
func (c *Coordinator) SetAdaptive(adaptive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broadcastLocked(MsgShardAdaptive, adaptive)
}

// ResetChains clears every model's Markov position on every connected
// worker.
func (c *Coordinator) ResetChains() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broadcastLocked(MsgShardResetChains, struct{}{})
}

// broadcastLocked sends one acknowledged control command to every live
// worker. Callers hold c.mu.
func (c *Coordinator) broadcastLocked(msgType collector.MsgType, v any) {
	for _, wc := range c.conns {
		if wc == nil || wc.isDead() {
			continue
		}
		if err := writeGob(wc.conn, msgType, v); err != nil {
			wc.markDead(err)
			continue
		}
		if err := wc.awaitDone(handshakeTimeout); err != nil {
			c.log.Info("broadcast unacknowledged", "type", byte(msgType), "shard", wc.k, "err", err)
		}
	}
}

// Close tears the fabric down: control connections, the outcome
// collector, and the latency gauges. Workers keep their checkpoints.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conns := c.conns
	c.mu.Unlock()
	for _, wc := range conns {
		if wc == nil {
			continue
		}
		_ = collector.WriteFrame(wc.conn, collector.Frame{Type: collector.MsgBye})
		wc.markDead(fmt.Errorf("shardnet: coordinator closed"))
	}
	if c.srv != nil {
		c.srv.Close()
	}
	obsConnected.Set(0)
}
