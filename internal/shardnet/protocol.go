// Package shardnet runs the sharded scoring fabric across processes: a
// coordinator owning the authoritative Aggregator fans synchronized rows
// out to shard workers over the collector wire protocol, and the workers
// return their per-pair outcomes through the collector's ReliableAgent
// exactly-once delivery machinery. The merged Q^a/Q trajectory is
// bit-identical (Float64bits) to the in-process fabric for any worker
// count: scoring advances the same models in the same canonical pair
// order, and aggregation happens once, centrally, through the exact
// Aggregate call the in-process Manager and shard Coordinator use.
package shardnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

// Control-channel message types, layered on the collector frame format.
// The collector reserves types below 16 for agent traffic; ReadFrame
// passes unknown types through untouched, so both protocols share one
// header, magic and size limit.
const (
	// MsgShardAssign (coordinator → worker) opens a control session: gob
	// assignMsg naming the worker's shard, the fabric run, the outcome
	// return address and the expected pair set.
	MsgShardAssign collector.MsgType = 16
	// MsgShardReady (worker → coordinator) answers an assign or a state
	// transfer: gob readyMsg reporting the worker's recovered state.
	MsgShardReady collector.MsgType = 17
	// MsgShardState (coordinator → worker) carries one chunk of a trained
	// manager blob (manager.Save bytes); the first payload byte flags the
	// last chunk.
	MsgShardState collector.MsgType = 18
	// MsgShardRow (coordinator → worker) is one synchronized row in the
	// compact binary layout of appendRowFrame.
	MsgShardRow collector.MsgType = 19
	// MsgShardPrune (coordinator → worker) orders the worker to drop pairs
	// it no longer owns (gob pruneMsg); the worker checkpoints and
	// answers MsgShardDone.
	MsgShardPrune collector.MsgType = 20
	// MsgShardExtract (coordinator → worker) asks for serialized models of
	// the named pairs (gob extractMsg) without removing them; the worker
	// answers with MsgShardModels chunks.
	MsgShardExtract collector.MsgType = 21
	// MsgShardModels (worker → coordinator) carries chunked gob modelSet
	// bytes answering an extract.
	MsgShardModels collector.MsgType = 22
	// MsgShardInstall (coordinator → worker) carries chunked gob
	// installMsg bytes: models migrating onto this worker. The worker
	// installs, checkpoints and answers MsgShardDone.
	MsgShardInstall collector.MsgType = 23
	// MsgShardPlan (coordinator → worker) announces a new plan version
	// after a rebalance (gob planMsg); the worker adopts it for subsequent
	// outcomes and answers MsgShardDone.
	MsgShardPlan collector.MsgType = 24
	// MsgShardDone (worker → coordinator) acknowledges prune, install,
	// plan, adaptive and reset-chains commands (gob doneMsg).
	MsgShardDone collector.MsgType = 25
	// MsgShardAdaptive (coordinator → worker) toggles online model
	// updating (gob bool); answered with MsgShardDone.
	MsgShardAdaptive collector.MsgType = 26
	// MsgShardResetChains (coordinator → worker) clears every model's
	// Markov position; answered with MsgShardDone.
	MsgShardResetChains collector.MsgType = 27
)

// blobChunk bounds one state/model transfer chunk, comfortably under the
// collector's MaxFrameSize.
const blobChunk = 256 << 10

// assignMsg opens (or re-opens) a worker's control session.
type assignMsg struct {
	// RunID identifies one coordinator lifetime. Workers ignore
	// checkpoints from other runs, so a stale data-dir never resurrects
	// models from a previous experiment.
	RunID string
	// K and N are the worker's shard index and the total shard count.
	K, N int
	// PlanVersion is the coordinator's current ownership-plan epoch.
	PlanVersion uint64
	// ReturnAddr is the coordinator's outcome collector address the
	// worker's ReliableAgent dials back to.
	ReturnAddr string
	// CheckpointEvery is the worker checkpoint cadence in rows.
	CheckpointEvery int
	// IDs is the fleet's canonical measurement order; row frames index
	// into it.
	IDs []timeseries.MeasurementID
	// Pairs is the pair set the plan assigns to shard K, canonical order.
	Pairs []manager.Pair
}

// readyMsg reports a worker's state after an assign or state transfer.
type readyMsg struct {
	// HaveState is false when the worker holds no usable model state for
	// this run and needs a MsgShardState transfer.
	HaveState bool
	// AppliedSeq is the last row sequence whose outcome the coordinator
	// has acknowledged; replay must resume at AppliedSeq+1.
	AppliedSeq uint64
	// PlanVersion is the plan epoch the worker recovered with.
	PlanVersion uint64
	// Pairs is the worker's actual pair set, for ownership reconciliation.
	Pairs []manager.Pair
}

type pruneMsg struct {
	PlanVersion uint64
	Pairs       []manager.Pair
}

type extractMsg struct {
	Pairs []manager.Pair
}

// pairModel is one serialized model in flight between workers.
type pairModel struct {
	Pair manager.Pair
	Blob []byte
}

type modelSet struct {
	Models []pairModel
}

type installMsg struct {
	PlanVersion uint64
	Models      []pairModel
}

type planMsg struct {
	PlanVersion uint64
}

// doneMsg acknowledges a control command; Err is a worker-side failure
// description ("" on success).
type doneMsg struct {
	PlanVersion uint64
	Err         string
}

// writeGob frames one gob-encoded control message.
func writeGob(conn net.Conn, msgType collector.MsgType, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("shardnet: encode %d: %w", byte(msgType), err)
	}
	return collector.WriteFrame(conn, collector.Frame{Type: msgType, Payload: buf.Bytes()})
}

// decodeGob decodes a control payload into v.
func decodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// writeBlob streams data as MsgShardState/MsgShardModels/MsgShardInstall
// chunks: each frame's first payload byte flags the final chunk.
func writeBlob(conn net.Conn, msgType collector.MsgType, data []byte) error {
	for {
		n := len(data)
		last := byte(0)
		if n <= blobChunk {
			last = 1
		} else {
			n = blobChunk
		}
		chunk := make([]byte, 1+n)
		chunk[0] = last
		copy(chunk[1:], data[:n])
		if err := collector.WriteFrame(conn, collector.Frame{Type: msgType, Payload: chunk}); err != nil {
			return err
		}
		data = data[n:]
		if last == 1 {
			return nil
		}
	}
}

// appendBlobChunk accumulates one received chunk; it reports whether the
// chunk was the blob's last.
func appendBlobChunk(acc *bytes.Buffer, payload []byte) (last bool, err error) {
	if len(payload) < 1 {
		return false, fmt.Errorf("shardnet: empty blob chunk")
	}
	acc.Write(payload[1:])
	return payload[0] == 1, nil
}

// Row frame layout: u64 seq, i64 unix-nanos, u32 count, then count ×
// {u16 measurement index, u64 value bits}. Only present measurements are
// encoded; absent ones are monitoring gaps.
type rowFrame struct {
	Seq  uint64
	Time time.Time
	// Idx/Bits are parallel: Idx[i] indexes assignMsg.IDs.
	Idx  []uint16
	Bits []uint64
}

// encodeRowFrame packs one row against the fleet's canonical measurement
// order. The same bytes are broadcast to every worker and retained for
// replay.
func encodeRowFrame(seq uint64, row manager.Row, ids []timeseries.MeasurementID) []byte {
	buf := make([]byte, 20, 20+10*len(row.Values))
	binary.BigEndian.PutUint64(buf[0:], seq)
	binary.BigEndian.PutUint64(buf[8:], uint64(row.Time.UnixNano()))
	n := 0
	for i, id := range ids {
		v, ok := row.Values[id]
		if !ok {
			continue
		}
		var cell [10]byte
		binary.BigEndian.PutUint16(cell[0:], uint16(i))
		binary.BigEndian.PutUint64(cell[2:], math.Float64bits(v))
		buf = append(buf, cell[:]...)
		n++
	}
	binary.BigEndian.PutUint32(buf[16:], uint32(n))
	return buf
}

// decodeRowFrame unpacks a row frame. Slices are reused across calls via
// the caller-owned frame.
func decodeRowFrame(payload []byte, f *rowFrame) error {
	if len(payload) < 20 {
		return fmt.Errorf("shardnet: row frame too short (%d bytes)", len(payload))
	}
	f.Seq = binary.BigEndian.Uint64(payload[0:])
	f.Time = time.Unix(0, int64(binary.BigEndian.Uint64(payload[8:]))).UTC()
	n := int(binary.BigEndian.Uint32(payload[16:]))
	if len(payload) != 20+10*n {
		return fmt.Errorf("shardnet: row frame length %d does not match count %d", len(payload), n)
	}
	f.Idx = f.Idx[:0]
	f.Bits = f.Bits[:0]
	for i := 0; i < n; i++ {
		cell := payload[20+10*i:]
		f.Idx = append(f.Idx, binary.BigEndian.Uint16(cell[0:]))
		f.Bits = append(f.Bits, binary.BigEndian.Uint64(cell[2:]))
	}
	return nil
}

// Outcome payloads travel inside tsdb samples through the collector: one
// sample per (row, chunk), Machine "shard-<k>", Value the row sequence,
// Metric the packed bytes below. Layout: u64 plan version, u32 total
// outcome count, u32 chunk offset, u32 chunk count, then count × 17
// bytes {u64 fitness bits, u64 prob bits, flags}.
const (
	outcomeHeader = 20
	outcomeSize   = 17
	// maxOutcomesPerChunk keeps each packed payload under the wire
	// format's 64 KiB string limit.
	maxOutcomesPerChunk = 3500

	flagScored byte = 1 << 0
	flagGap    byte = 1 << 1
	flagGrown  byte = 1 << 2
	flagSteady byte = 1 << 3
)

// packOutcomes encodes a worker's local outcome slice (canonical local
// pair order) into one or more sample payload strings. scratch is an
// optional reusable build buffer (each chunk still becomes its own
// immutable string); the grown buffer is returned for the next call.
func packOutcomes(scratch []byte, planVersion uint64, outs []manager.Outcome) ([]string, []byte) {
	total := len(outs)
	chunks := make([]string, 0, 1+total/maxOutcomesPerChunk)
	for off := 0; off < total || off == 0; off += maxOutcomesPerChunk {
		n := total - off
		if n > maxOutcomesPerChunk {
			n = maxOutcomesPerChunk
		}
		need := outcomeHeader + outcomeSize*n
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		binary.BigEndian.PutUint64(buf[0:], planVersion)
		binary.BigEndian.PutUint32(buf[8:], uint32(total))
		binary.BigEndian.PutUint32(buf[12:], uint32(off))
		binary.BigEndian.PutUint32(buf[16:], uint32(n))
		for i := 0; i < n; i++ {
			o := outs[off+i]
			cell := buf[outcomeHeader+outcomeSize*i:]
			binary.BigEndian.PutUint64(cell[0:], math.Float64bits(o.Fitness))
			binary.BigEndian.PutUint64(cell[8:], math.Float64bits(o.Prob))
			var flags byte
			if o.Scored {
				flags |= flagScored
			}
			if o.Gap {
				flags |= flagGap
			}
			if o.Grown {
				flags |= flagGrown
			}
			if o.Steady {
				flags |= flagSteady
			}
			cell[16] = flags
		}
		chunks = append(chunks, string(buf))
		if total == 0 {
			break
		}
	}
	return chunks, scratch
}

// outcomeChunk is one decoded packed payload.
type outcomeChunk struct {
	PlanVersion uint64
	Total       int
	Offset      int
	Outcomes    []manager.Outcome
}

// unpackOutcomes decodes one packed payload string.
func unpackOutcomes(payload string, ch *outcomeChunk) error {
	if len(payload) < outcomeHeader {
		return fmt.Errorf("shardnet: outcome payload too short (%d bytes)", len(payload))
	}
	b := []byte(payload)
	ch.PlanVersion = binary.BigEndian.Uint64(b[0:])
	ch.Total = int(binary.BigEndian.Uint32(b[8:]))
	ch.Offset = int(binary.BigEndian.Uint32(b[12:]))
	n := int(binary.BigEndian.Uint32(b[16:]))
	if len(b) != outcomeHeader+outcomeSize*n {
		return fmt.Errorf("shardnet: outcome payload length %d does not match count %d", len(b), n)
	}
	if ch.Offset < 0 || ch.Total < 0 || ch.Offset+n > ch.Total {
		return fmt.Errorf("shardnet: outcome chunk [%d, %d) exceeds total %d", ch.Offset, ch.Offset+n, ch.Total)
	}
	ch.Outcomes = ch.Outcomes[:0]
	for i := 0; i < n; i++ {
		cell := b[outcomeHeader+outcomeSize*i:]
		flags := cell[16]
		ch.Outcomes = append(ch.Outcomes, manager.Outcome{
			Fitness: math.Float64frombits(binary.BigEndian.Uint64(cell[0:])),
			Prob:    math.Float64frombits(binary.BigEndian.Uint64(cell[8:])),
			Scored:  flags&flagScored != 0,
			Gap:     flags&flagGap != 0,
			Grown:   flags&flagGrown != 0,
			Steady:  flags&flagSteady != 0,
		})
	}
	return nil
}
