package shardnet

import (
	"math"
	"testing"
	"time"

	"mcorr/internal/manager"
	"mcorr/internal/timeseries"
)

func mid(machine, metric string) timeseries.MeasurementID {
	return timeseries.MeasurementID{Machine: machine, Metric: metric}
}

func TestRowFrameRoundTrip(t *testing.T) {
	ids := []timeseries.MeasurementID{
		mid("m0", "cpu"), mid("m0", "mem"), mid("m1", "cpu"), mid("m1", "mem"),
	}
	row := manager.Row{
		Time: time.Date(2008, time.May, 30, 12, 6, 0, 0, time.UTC),
		Values: map[timeseries.MeasurementID]float64{
			ids[0]: 0.25,
			ids[2]: math.NaN(),
			ids[3]: -1e300,
		},
	}
	frame := encodeRowFrame(77, row, ids)
	var f rowFrame
	if err := decodeRowFrame(frame, &f); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Seq != 77 {
		t.Fatalf("seq = %d", f.Seq)
	}
	if !f.Time.Equal(row.Time) {
		t.Fatalf("time = %v", f.Time)
	}
	if len(f.Idx) != 3 || len(f.Bits) != 3 {
		t.Fatalf("got %d idx, %d bits", len(f.Idx), len(f.Bits))
	}
	got := make(map[timeseries.MeasurementID]float64, len(f.Idx))
	for i, ix := range f.Idx {
		got[ids[ix]] = math.Float64frombits(f.Bits[i])
	}
	for id, v := range row.Values {
		g, ok := got[id]
		if !ok {
			t.Fatalf("missing %v", id)
		}
		if math.Float64bits(g) != math.Float64bits(v) {
			t.Fatalf("%v: %x != %x", id, math.Float64bits(g), math.Float64bits(v))
		}
	}
	if err := decodeRowFrame(frame[:10], &f); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestOutcomePackingRoundTrip(t *testing.T) {
	outs := make([]manager.Outcome, 2*maxOutcomesPerChunk+17)
	for i := range outs {
		outs[i] = manager.Outcome{
			Fitness: float64(i) * 0.001,
			Prob:    1 / float64(i+1),
			Scored:  i%2 == 0,
			Gap:     i%3 == 0,
			Grown:   i%5 == 0,
			Steady:  i%7 == 0,
		}
	}
	chunks, scratch := packOutcomes(nil, 42, outs)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	merged := make([]manager.Outcome, len(outs))
	seen := 0
	var ch outcomeChunk
	for _, c := range chunks {
		if err := unpackOutcomes(c, &ch); err != nil {
			t.Fatalf("unpack: %v", err)
		}
		if ch.PlanVersion != 42 {
			t.Fatalf("plan version = %d", ch.PlanVersion)
		}
		if ch.Total != len(outs) {
			t.Fatalf("total = %d, want %d", ch.Total, len(outs))
		}
		copy(merged[ch.Offset:], ch.Outcomes)
		seen += len(ch.Outcomes)
	}
	if seen != len(outs) {
		t.Fatalf("merged %d outcomes, want %d", seen, len(outs))
	}
	for i, o := range outs {
		if merged[i] != o {
			t.Fatalf("outcome %d: %+v != %+v", i, merged[i], o)
		}
	}

	empty, _ := packOutcomes(scratch, 7, nil)
	if len(empty) != 1 {
		t.Fatalf("empty shard must still emit one chunk, got %d", len(empty))
	}
	if err := unpackOutcomes(empty[0], &ch); err != nil || ch.Total != 0 || ch.PlanVersion != 7 {
		t.Fatalf("empty chunk: %+v err %v", ch, err)
	}
	if err := unpackOutcomes("bogus", &ch); err == nil {
		t.Fatal("malformed chunk unpacked")
	}
}

func TestDiffPairs(t *testing.T) {
	p := func(a, b string) manager.Pair {
		return manager.Pair{A: mid(a, "x"), B: mid(b, "x")}
	}
	have := []manager.Pair{p("a", "b"), p("a", "c"), p("c", "d")}
	want := []manager.Pair{p("a", "c"), p("b", "c"), p("c", "d"), p("d", "e")}
	manager.SortPairs(have)
	manager.SortPairs(want)
	extras, missing := diffPairs(have, want)
	if len(extras) != 1 || extras[0] != p("a", "b") {
		t.Fatalf("extras = %v", extras)
	}
	if len(missing) != 2 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestShardOf(t *testing.T) {
	if k, ok := shardOf("shard-3"); !ok || k != 3 {
		t.Fatalf("shard-3 -> %d %v", k, ok)
	}
	for _, bad := range []string{"shard-", "shard--1", "worker-3", "3"} {
		if _, ok := shardOf(bad); ok {
			t.Fatalf("%q parsed", bad)
		}
	}
}
