package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates the three metric families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// child is one labeled instance of a family.
type child struct {
	values []string
	metric any // *Counter, *Gauge or *Histogram
}

// family is one registered metric name: either a single unlabeled metric
// or a vector of children keyed by label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // nil for a single metric
	bounds []float64

	single  any            // set when labels == nil
	gaugeFn func() float64 // read-only gauge callback (kindGauge)

	mu       sync.Mutex
	children map[string]*child
	order    []string // insertion order of child keys
}

// newMetric allocates the right metric type for the family.
func (f *family) newMetric() any {
	switch f.kind {
	case kindCounter:
		return &Counter{}
	case kindGauge:
		return &Gauge{}
	case kindHistogram:
		return newHistogram(f.bounds)
	}
	panic("obs: unknown metric kind")
}

// childFor returns (creating on first use) the child for the label values.
func (f *family) childFor(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...), metric: f.newMetric()}
		if f.children == nil {
			f.children = make(map[string]*child)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c.metric
}

// deleteChild removes a labeled child (e.g. a disconnected agent).
func (f *family) deleteChild(values []string) {
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[key]; !ok {
		return
	}
	delete(f.children, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// snapshotChildren copies the child list in insertion order.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.children[key])
	}
	return out
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Hot paths must cache the result.
func (v *CounterVec) With(values ...string) *Counter { return v.f.childFor(values).(*Counter) }

// Delete drops the child with the given label values (no-op when absent)
// — cardinality hygiene for per-entity series, e.g. a departed agent.
func (v *CounterVec) Delete(values ...string) { v.f.deleteChild(values) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.childFor(values).(*Gauge) }

// Delete drops the child with the given label values (no-op when absent).
func (v *GaugeVec) Delete(values ...string) { v.f.deleteChild(values) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.childFor(values).(*Histogram) }

// Delete drops the child with the given label values (no-op when absent).
func (v *HistogramVec) Delete(values ...string) { v.f.deleteChild(values) }

// Registry holds metric families and renders them. Registration is
// idempotent: re-registering an existing name with the same kind and
// labels returns the existing family; a conflicting re-registration
// panics (a programming error, like a duplicate flag).
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register looks up or creates a family.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different label names", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...), bounds: append([]float64(nil), bounds...)}
	if labels == nil {
		f.single = f.newMetric()
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).single.(*Counter)
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).single.(*Gauge)
}

// GaugeFunc registers a read-only gauge computed at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.gaugeFn = fn
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or returns) an unlabeled histogram over the given
// upper bounds (see TimeBuckets, FitnessBuckets, LinearBuckets,
// ExpBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, bounds).single.(*Histogram)
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// Value returns the current value of an unlabeled counter or gauge by
// name (GaugeFunc-aware). The second result is false for unknown names,
// labeled families and histograms — callers like the /statusz fabric
// block read whatever subsystems happen to be linked in and skip the
// rest.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.byName[name]
	r.mu.Unlock()
	if !ok || f.labels != nil {
		return 0, false
	}
	switch f.kind {
	case kindCounter:
		return float64(f.single.(*Counter).Value()), true
	case kindGauge:
		if f.gaugeFn != nil {
			return f.gaugeFn(), true
		}
		return f.single.(*Gauge).Value(), true
	}
	return 0, false
}

// MetricNames returns every registered metric family name, sorted — the
// documentation-coverage test walks this to cross-check the metrics
// reference in OPERATIONS.md against what the code actually registers.
func (r *Registry) MetricNames() []string {
	fams := r.snapshotFamilies()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.name
	}
	return out
}

// snapshotFamilies copies the family list sorted by name.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the Prometheus way.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...}; empty labels render as "".
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if f.labels == nil {
			if err := writePromMetric(w, f, nil, f.single); err != nil {
				return err
			}
			continue
		}
		for _, c := range f.snapshotChildren() {
			if err := writePromMetric(w, f, c.values, c.metric); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromMetric renders one (possibly labeled) metric instance.
func writePromMetric(w io.Writer, f *family, values []string, m any) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelPairs(f.labels, values, "", ""), m.(*Counter).Value())
		return err
	case kindGauge:
		v := m.(*Gauge).Value()
		if f.gaugeFn != nil {
			v = f.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labels, values, "", ""), formatFloat(v))
		return err
	case kindHistogram:
		h := m.(*Histogram)
		buckets, count, sum := h.snapshot()
		var cum uint64
		for i, c := range buckets {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairs(f.labels, values, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPairs(f.labels, values, "", ""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPairs(f.labels, values, "", ""), count)
		return err
	}
	return nil
}

// jsonMetric converts one metric instance to its JSON value.
func jsonMetric(f *family, m any) any {
	switch f.kind {
	case kindCounter:
		return m.(*Counter).Value()
	case kindGauge:
		if f.gaugeFn != nil {
			return f.gaugeFn()
		}
		return m.(*Gauge).Value()
	case kindHistogram:
		h := m.(*Histogram)
		buckets, count, sum := h.snapshot()
		type bucket struct {
			LE    string `json:"le"`
			Count uint64 `json:"count"`
		}
		bs := make([]bucket, len(buckets))
		var cum uint64
		for i, c := range buckets {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			bs[i] = bucket{LE: le, Count: cum}
		}
		quant := map[string]float64{}
		if count > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				quant[formatFloat(q)] = h.Quantile(q)
			}
		}
		return map[string]any{"count": count, "sum": sum, "quantiles": quant, "buckets": bs}
	}
	return nil
}

// WriteJSON renders the registry as expvar-style JSON: one top-level key
// per family; labeled families become arrays of {labels, value} objects.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, f := range r.snapshotFamilies() {
		if f.labels == nil {
			out[f.name] = jsonMetric(f, f.single)
			continue
		}
		var arr []any
		for _, c := range f.snapshotChildren() {
			labels := make(map[string]string, len(f.labels))
			for i, n := range f.labels {
				labels[n] = c.values[i]
			}
			arr = append(arr, map[string]any{"labels": labels, "value": jsonMetric(f, c.metric)})
		}
		out[f.name] = arr
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
