package obs

import (
	"runtime"
	"strconv"
	"sync"
)

// RegisterBuildInfo publishes the mcorr_build_info identity gauge on the
// process-wide registry: a constant 1 labeled with the binary's version,
// the Go runtime version, and the configured shard count. Both binaries
// call it once at startup; calling it again (e.g. after a reshard)
// replaces the previous child so exactly one series is exposed.
func RegisterBuildInfo(version string, shards int) {
	if version == "" {
		version = "dev"
	}
	vec := Default().GaugeVec("mcorr_build_info",
		"Build identity: constant 1 with version, Go runtime and shard count labels.",
		"version", "goversion", "shards")
	buildInfoMu.Lock()
	defer buildInfoMu.Unlock()
	if buildInfoLabels != nil {
		vec.Delete(buildInfoLabels...)
	}
	buildInfoLabels = []string{version, runtime.Version(), strconv.Itoa(shards)}
	vec.With(buildInfoLabels...).Set(1)
}

var (
	buildInfoMu     sync.Mutex
	buildInfoLabels []string
)
