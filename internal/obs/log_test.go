package obs

import (
	"log"
	"strings"
	"testing"
)

func TestLoggerKeyValueOutput(t *testing.T) {
	var b strings.Builder
	l := FromStd(log.New(&b, "", 0)).With("component", "collector")
	l.Info("hello", "agent", "web-01")
	l.Error("read failed", "err", "broken pipe: reset")
	got := b.String()
	if !strings.Contains(got, `level=info component=collector msg=hello agent=web-01`) {
		t.Errorf("info line malformed:\n%s", got)
	}
	if !strings.Contains(got, `level=error component=collector msg="read failed" err="broken pipe: reset"`) {
		t.Errorf("error line malformed:\n%s", got)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var b strings.Builder
	l := FromStd(log.New(&b, "", 0))
	l.Debug("hidden")
	if b.Len() != 0 {
		t.Errorf("debug emitted at default level: %q", b.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug("visible")
	if !strings.Contains(b.String(), "level=debug msg=visible") {
		t.Errorf("debug missing after SetLevel: %q", b.String())
	}
	l.SetLevel(LevelError)
	before := b.Len()
	l.Warn("suppressed")
	if b.Len() != before {
		t.Errorf("warn emitted above min level")
	}
}

func TestLoggerOddKVAndNil(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.Info("odd", "key")
	if !strings.Contains(b.String(), "key=(MISSING)") {
		t.Errorf("dangling key not marked: %q", b.String())
	}
	var nilLogger *Logger
	nilLogger.Info("must not panic")
	NopLogger().Error("discarded")
}

func TestLoggerCountsMessages(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	before := logCounters[LevelWarn].Value()
	l.Warn("counted")
	if got := logCounters[LevelWarn].Value(); got != before+1 {
		t.Errorf("warn counter = %d, want %d", got, before+1)
	}
}
