// Package obs is the repo's unified observability layer: a dependency-free
// metrics core (atomic counters, gauges, bucketed histograms with quantile
// summaries, labeled families), a Registry that renders both Prometheus
// text exposition format and expvar-style JSON, a lightweight span/trace
// facility with a fixed ring of recent spans, a structured key=value
// logger whose volume is itself a metric, and an embeddable HTTP ops
// server exposing /metrics, /vars, /healthz, /statusz and net/http/pprof.
//
// The paper's thesis is "monitor the monitors": fitness scores Q^{a,b},
// Q^a, Q tell operators which *measurement* is sick. This package applies
// the same discipline to the monitoring pipeline itself — every hot layer
// (manager fleet, shard coordinator, collector server, tsdb) publishes its
// health here.
//
// # Naming
//
// All metrics follow the scheme mcorr_<pkg>_<name>, with Prometheus
// conventions for units and suffixes: `_total` for counters,
// `_seconds` for durations, plain names for gauges. Label cardinality must
// stay bounded by configuration (severity, scope, level, frame type, shard
// count) or by fleet size (agent name); never derive a label from sample
// values. The full reference for every metric, with units and cardinality,
// lives in OPERATIONS.md at the repo root; Registry.MetricNames lets a
// test cross-check that document against the code.
//
// # Hot-path cost
//
// Counter.Inc/Add and Histogram.Observe are single atomic operations (plus
// a short linear bucket scan) — allocation-free and well under 50ns — so
// they are safe inside the manager's per-sample scoring path. Labeled
// lookups (Vec.With) take a lock and build a key; hot paths must resolve
// their children once and cache them.
package obs
