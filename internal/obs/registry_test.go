package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden locks the text exposition format: HELP/TYPE
// comments, sorted families, label rendering, histogram buckets with
// cumulative counts, sum and count lines.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(3)
	g := r.Gauge("test_queue_depth", "Items queued.")
	g.Set(2.5)
	cv := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	cv.With("decode").Add(2)
	cv.With("io").Inc()
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_errors_total Errors by kind.
# TYPE test_errors_total counter
test_errors_total{kind="decode"} 2
test_errors_total{kind="io"} 1
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.55
test_latency_seconds_count 3
# HELP test_queue_depth Items queued.
# TYPE test_queue_depth gauge
test_queue_depth 2.5
# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_weird_total", "Weird labels.", "path")
	cv.With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_weird_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label line %q not found in:\n%s", want, b.String())
	}
	// Help strings escape backslash and newline.
	r2 := NewRegistry()
	r2.Counter("test_h", "line1\nline2 \\ tail")
	b.Reset()
	if err := r2.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP test_h line1\nline2 \\ tail`) {
		t.Errorf("help not escaped: %s", b.String())
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 8} {
		h.Observe(v)
	}
	buckets, count, sum := h.snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if math.Abs(sum-16) > 1e-12 {
		t.Fatalf("sum = %v, want 16", sum)
	}
	// Upper bounds are inclusive (Prometheus le semantics).
	wantBuckets := []uint64{2, 2, 1, 1}
	for i, w := range wantBuckets {
		if buckets[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, buckets[i], w)
		}
	}
	// Quantiles interpolate within a bucket and clamp at the top bound.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("median %v outside (1, 2]", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Errorf("q1 = %v, want clamp to 4", q)
	}
	if !math.IsNaN(newHistogram([]float64{1}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramQuantileExact(t *testing.T) {
	// 100 uniform observations over (0, 10]; with 10 linear buckets the
	// interpolated quantiles should land close to the true ones.
	h := newHistogram(LinearBuckets(1, 1, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 5, 0.2},
		{0.9, 9, 0.2},
		{0.1, 1, 0.2},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_once_total", "help")
	b := r.Counter("test_once_total", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.Gauge("test_once_total", "now a gauge")
}

func TestGaugeFuncAndVecDelete(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_fn", "computed", func() float64 { return 42 })
	gv := r.GaugeVec("test_agents", "per agent", "agent")
	gv.With("a1").Set(1)
	gv.With("a2").Set(2)
	gv.Delete("a1")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test_fn 42") {
		t.Errorf("gauge func not rendered: %s", out)
	}
	if strings.Contains(out, `agent="a1"`) || !strings.Contains(out, `agent="a2"`) {
		t.Errorf("vec delete not honored: %s", out)
	}
}

func TestCounterAndHistogramVecDelete(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_ops_total", "per agent ops", "agent")
	cv.With("a1").Inc()
	cv.With("a2").Inc()
	cv.Delete("a1")
	cv.Delete("never-existed") // no-op, must not panic
	hv := r.HistogramVec("test_lat_seconds", "per agent latency", []float64{1}, "agent")
	hv.With("a1").Observe(0.5)
	hv.With("a2").Observe(0.5)
	hv.Delete("a1")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `agent="a1"`) || !strings.Contains(out, `agent="a2"`) {
		t.Errorf("counter/histogram vec delete not honored: %s", out)
	}
	// A deleted child re-created by With starts from zero.
	if v := cv.With("a1").Value(); v != 0 {
		t.Errorf("recreated counter = %d, want 0", v)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_n_total", "n").Add(7)
	r.HistogramVec("test_lat_seconds", "lat", []float64{1}, "op").With("read").Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if out["test_n_total"].(float64) != 7 {
		t.Errorf("counter value = %v", out["test_n_total"])
	}
	arr := out["test_lat_seconds"].([]any)
	child := arr[0].(map[string]any)
	if child["labels"].(map[string]any)["op"] != "read" {
		t.Errorf("labels = %v", child["labels"])
	}
	if child["value"].(map[string]any)["count"].(float64) != 1 {
		t.Errorf("histogram count = %v", child["value"])
	}
}

// TestConcurrentUpdates exercises counters, gauges and histograms from
// many goroutines; run under -race this is the data-race gate for the
// atomic metric core.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "c")
	g := r.Gauge("test_conc_gauge", "g")
	h := r.Histogram("test_conc_seconds", "h", TimeBuckets())
	cv := r.CounterVec("test_conc_vec_total", "cv", "worker")

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			child := cv.With(name)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-5)
				child.Inc()
				// Interleave renders to race the readers too.
				if i%1000 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if n := cv.With(string(rune('a' + w))).Value(); n != perWorker {
			t.Errorf("vec child %d = %d, want %d", w, n, perWorker)
		}
	}
}
