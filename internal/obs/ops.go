package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"
)

// processStart anchors the uptime gauge; set when the first ops server (or
// mux) is built so replayed tests stay deterministic until then.
var (
	processOnce  sync.Once
	processStart time.Time
)

// registerProcessMetrics adds process-level gauges to the default registry.
func registerProcessMetrics() {
	processOnce.Do(func() {
		processStart = time.Now()
		defaultRegistry.GaugeFunc("mcorr_process_uptime_seconds",
			"Seconds since the ops surface was initialized.",
			func() float64 { return time.Since(processStart).Seconds() })
		defaultRegistry.GaugeFunc("mcorr_process_goroutines",
			"Live goroutines in the process.",
			func() float64 { return float64(runtime.NumGoroutine()) })
	})
}

// NewOpsMux builds the ops HTTP handler for a registry and tracer:
//
//	/metrics       Prometheus text exposition format
//	/vars          the same registry as expvar-style JSON
//	/healthz       liveness probe ("ok")
//	/statusz       human-readable status: process info, metric summary,
//	               recent spans with per-phase timings
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Nil registry/tracer default to the process-wide ones.
func NewOpsMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	if reg == nil {
		reg = defaultRegistry
	}
	if tracer == nil {
		tracer = defaultTracer
	}
	if reg == defaultRegistry {
		registerProcessMetrics()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatusz(w, reg, tracer)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "mcorr ops server — endpoints: /metrics /vars /healthz /statusz /debug/pprof/")
	})
	return mux
}

// writeStatusz renders the human-readable status page.
func writeStatusz(w http.ResponseWriter, reg *Registry, tracer *Tracer) {
	fmt.Fprintf(w, "mcorr status\n============\n")
	if !processStart.IsZero() {
		fmt.Fprintf(w, "uptime:      %v\n", time.Since(processStart).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "go:          %s\n", runtime.Version())
	fmt.Fprintf(w, "goroutines:  %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "gomaxprocs:  %d\n", runtime.GOMAXPROCS(0))

	fmt.Fprintf(w, "\nrecent spans (%d total recorded)\n--------------------------------\n", tracer.Total())
	recent := tracer.Recent(32)
	if len(recent) == 0 {
		fmt.Fprintln(w, "(none)")
	}
	for _, rec := range recent {
		fmt.Fprintf(w, "%s  %-20s %10v", rec.Start.Format("15:04:05.000"), rec.Name, rec.Duration.Round(time.Microsecond))
		for _, ph := range rec.Phases {
			fmt.Fprintf(w, "  %s=%v", ph.Name, ph.Duration.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}

	// Aggregate per-span-name phase means: the pipeline-shaped summary
	// (ingest → score → aggregate → alarm) operators actually read.
	type agg struct {
		n      int
		total  time.Duration
		phases map[string]time.Duration
	}
	byName := map[string]*agg{}
	for _, rec := range tracer.Recent(0) {
		a := byName[rec.Name]
		if a == nil {
			a = &agg{phases: map[string]time.Duration{}}
			byName[rec.Name] = a
		}
		a.n++
		a.total += rec.Duration
		for _, ph := range rec.Phases {
			a.phases[ph.Name] += ph.Duration
		}
	}
	if len(byName) > 0 {
		fmt.Fprintf(w, "\nspan means over the ring\n------------------------\n")
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			a := byName[n]
			fmt.Fprintf(w, "%-20s n=%-4d mean=%v", n, a.n, (a.total / time.Duration(a.n)).Round(time.Microsecond))
			phNames := make([]string, 0, len(a.phases))
			for p := range a.phases {
				phNames = append(phNames, p)
			}
			sort.Strings(phNames)
			for _, p := range phNames {
				fmt.Fprintf(w, "  %s=%v", p, (a.phases[p] / time.Duration(a.n)).Round(time.Microsecond))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nmetrics: see /metrics (Prometheus) and /vars (JSON)\n")
}

// OpsServer is a running ops HTTP server. Stop it with Close.
type OpsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeOps binds addr (e.g. ":6060" or "127.0.0.1:0") and serves the ops
// endpoints for the process-wide registry and tracer in the background.
func ServeOps(addr string) (*OpsServer, error) {
	return ServeOpsFor(addr, nil, nil)
}

// ServeOpsFor is ServeOps with explicit registry and tracer (nil for the
// process-wide defaults).
func ServeOpsFor(addr string, reg *Registry, tracer *Tracer) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewOpsMux(reg, tracer), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &OpsServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address.
func (o *OpsServer) Addr() net.Addr { return o.ln.Addr() }

// Close shuts the server down immediately.
func (o *OpsServer) Close() error { return o.srv.Close() }
