package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// processStart anchors the uptime gauge; set when the first ops server (or
// mux) is built so replayed tests stay deterministic until then.
var (
	processOnce  sync.Once
	processStart time.Time
)

// registerProcessMetrics adds process-level gauges to the default registry.
func registerProcessMetrics() {
	processOnce.Do(func() {
		processStart = time.Now()
		defaultRegistry.GaugeFunc("mcorr_process_uptime_seconds",
			"Seconds since the ops surface was initialized.",
			func() float64 { return time.Since(processStart).Seconds() })
		defaultRegistry.GaugeFunc("mcorr_process_goroutines",
			"Live goroutines in the process.",
			func() float64 { return float64(runtime.NumGoroutine()) })
	})
}

// opsHandlers is the process-wide table of dynamically registered /api/
// handlers. The ops mux dispatches /api/ requests through it at request
// time, so handlers registered after a server boots (the monitor wires
// its diagnosis API in only once the fleet exists) are still reachable.
var (
	opsHandlersMu sync.RWMutex
	opsHandlers   []opsHandler
)

type opsHandler struct {
	pattern string
	h       http.Handler
}

// RegisterOpsHandler mounts a handler on every ops server (current and
// future) under the given pattern, which must start with "/api/". A
// request dispatches to the registered pattern that is the longest
// prefix of its path (a pattern ending in "/" matches a subtree; other
// patterns match exactly). Re-registering a pattern replaces the
// previous handler, so a restarted pipeline can rebind its API.
func RegisterOpsHandler(pattern string, h http.Handler) {
	if !strings.HasPrefix(pattern, "/api/") {
		panic("obs: RegisterOpsHandler pattern must start with /api/")
	}
	opsHandlersMu.Lock()
	defer opsHandlersMu.Unlock()
	for i := range opsHandlers {
		if opsHandlers[i].pattern == pattern {
			opsHandlers[i].h = h
			return
		}
	}
	opsHandlers = append(opsHandlers, opsHandler{pattern: pattern, h: h})
}

// opsRoutesOnce guards the route-table registration of the fixed ops
// endpoints; NewOpsMux calls it so every ops server's static surface is
// visible to Routes() (and therefore to the API.md coverage gate).
var opsRoutesOnce sync.Once

func registerOpsRoutes() {
	opsRoutesOnce.Do(func() {
		RegisterRoute("GET", "/")
		RegisterRoute("GET", "/metrics")
		RegisterRoute("GET", "/vars")
		RegisterRoute("GET", "/healthz")
		RegisterRoute("GET", "/statusz")
		RegisterRoute("GET", "/debug/spans")
		RegisterRoute("GET", "/debug/pprof/")
	})
}

// lookupOpsHandler finds the longest registered pattern matching path.
func lookupOpsHandler(path string) http.Handler {
	opsHandlersMu.RLock()
	defer opsHandlersMu.RUnlock()
	var best http.Handler
	bestLen := -1
	for _, oh := range opsHandlers {
		match := oh.pattern == path ||
			(strings.HasSuffix(oh.pattern, "/") && strings.HasPrefix(path, oh.pattern))
		if match && len(oh.pattern) > bestLen {
			best, bestLen = oh.h, len(oh.pattern)
		}
	}
	return best
}

// NewOpsMux builds the ops HTTP handler for a registry and tracer:
//
//	/metrics       Prometheus text exposition format
//	/vars          the same registry as expvar-style JSON
//	/healthz       liveness probe ("ok")
//	/statusz       human-readable status: process info, fabric summary,
//	               recent spans with per-phase timings
//	/debug/spans   the span ring as JSON (?n= caps the span count)
//	/api/          handlers mounted with RegisterOpsHandler (e.g. the
//	               diagnosis API), resolved at request time
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Nil registry/tracer default to the process-wide ones.
func NewOpsMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	if reg == nil {
		reg = defaultRegistry
	}
	if tracer == nil {
		tracer = defaultTracer
	}
	if reg == defaultRegistry {
		registerProcessMetrics()
	}
	registerOpsRoutes()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatusz(w, reg, tracer)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		writeSpansJSON(w, r, tracer)
	})
	mux.HandleFunc("/api/", func(w http.ResponseWriter, r *http.Request) {
		if h := lookupOpsHandler(r.URL.Path); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		WriteJSONError(w, http.StatusNotFound, "not_found", "no handler registered for "+r.URL.Path)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "mcorr ops server — endpoints: /metrics /vars /healthz /statusz /debug/spans /api/v1/... /debug/pprof/")
	})
	return mux
}

// spanJSON is one completed span in the /debug/spans payload.
type spanJSON struct {
	Name       string      `json:"name"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"duration_ns"`
	Phases     []phaseJSON `json:"phases,omitempty"`
}

// phaseJSON is one named phase inside a span.
type phaseJSON struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
}

// writeSpansJSON renders the span ring as JSON, newest first. ?n= caps
// the span count (default 64, 0 for the whole ring).
func writeSpansJSON(w http.ResponseWriter, r *http.Request, tracer *Tracer) {
	n := 64
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 0 {
			WriteJSONError(w, http.StatusBadRequest, "bad_request", "n must be a non-negative integer")
			return
		}
		n = v
	}
	recent := tracer.Recent(n)
	spans := make([]spanJSON, len(recent))
	for i, rec := range recent {
		s := spanJSON{Name: rec.Name, Start: rec.Start, DurationNS: rec.Duration.Nanoseconds()}
		for _, ph := range rec.Phases {
			s.Phases = append(s.Phases, phaseJSON{Name: ph.Name, DurationNS: ph.Duration.Nanoseconds()})
		}
		spans[i] = s
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"total": tracer.Total(), "spans": spans})
}

// fabricRows lists the registry metrics the /statusz fabric summary
// shows. Each subsystem registers its metric only when linked in and
// used, so absent rows are simply skipped.
var fabricRows = []struct{ label, metric string }{
	{"shards", "mcorr_shard_count"},
	{"dirty pairs (last row)", "mcorr_manager_dirty_pairs"},
	{"checkpoint epoch", "mcorr_checkpoint_epoch"},
	{"open incidents", "mcorr_incident_open"},
}

// writeStatusz renders the human-readable status page.
func writeStatusz(w http.ResponseWriter, reg *Registry, tracer *Tracer) {
	fmt.Fprintf(w, "mcorr status\n============\n")
	if !processStart.IsZero() {
		fmt.Fprintf(w, "uptime:      %v\n", time.Since(processStart).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "go:          %s\n", runtime.Version())
	fmt.Fprintf(w, "goroutines:  %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "gomaxprocs:  %d\n", runtime.GOMAXPROCS(0))

	// Fabric summary: the handful of gauges that say what the scoring
	// fabric is doing right now, pulled straight from the registry.
	fmt.Fprintf(w, "\nfabric\n------\n")
	shown := 0
	for _, row := range fabricRows {
		v, ok := reg.Value(row.metric)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-24s %s\n", row.label+":", formatFloat(v))
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(w, "(no fabric metrics registered)")
	}

	fmt.Fprintf(w, "\nrecent spans (%d total recorded)\n--------------------------------\n", tracer.Total())
	recent := tracer.Recent(32)
	if len(recent) == 0 {
		fmt.Fprintln(w, "(none)")
	}
	for _, rec := range recent {
		fmt.Fprintf(w, "%s  %-20s %10v", rec.Start.Format("15:04:05.000"), rec.Name, rec.Duration.Round(time.Microsecond))
		for _, ph := range rec.Phases {
			fmt.Fprintf(w, "  %s=%v", ph.Name, ph.Duration.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}

	// Aggregate per-span-name phase means: the pipeline-shaped summary
	// (ingest → score → aggregate → alarm) operators actually read.
	type agg struct {
		n      int
		total  time.Duration
		phases map[string]time.Duration
	}
	byName := map[string]*agg{}
	for _, rec := range tracer.Recent(0) {
		a := byName[rec.Name]
		if a == nil {
			a = &agg{phases: map[string]time.Duration{}}
			byName[rec.Name] = a
		}
		a.n++
		a.total += rec.Duration
		for _, ph := range rec.Phases {
			a.phases[ph.Name] += ph.Duration
		}
	}
	if len(byName) > 0 {
		fmt.Fprintf(w, "\nspan means over the ring\n------------------------\n")
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			a := byName[n]
			fmt.Fprintf(w, "%-20s n=%-4d mean=%v", n, a.n, (a.total / time.Duration(a.n)).Round(time.Microsecond))
			phNames := make([]string, 0, len(a.phases))
			for p := range a.phases {
				phNames = append(phNames, p)
			}
			sort.Strings(phNames)
			for _, p := range phNames {
				fmt.Fprintf(w, "  %s=%v", p, (a.phases[p] / time.Duration(a.n)).Round(time.Microsecond))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nmetrics: see /metrics (Prometheus) and /vars (JSON)\n")
}

// OpsServer is a running ops HTTP server. Stop it with Close.
type OpsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeOps binds addr (e.g. ":6060" or "127.0.0.1:0") and serves the ops
// endpoints for the process-wide registry and tracer in the background.
func ServeOps(addr string) (*OpsServer, error) {
	return ServeOpsFor(addr, nil, nil)
}

// ServeOpsFor is ServeOps with explicit registry and tracer (nil for the
// process-wide defaults).
func ServeOpsFor(addr string, reg *Registry, tracer *Tracer) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewOpsMux(reg, tracer), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &OpsServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address.
func (o *OpsServer) Addr() net.Addr { return o.ln.Addr() }

// Close shuts the server down immediately.
func (o *OpsServer) Close() error { return o.srv.Close() }
