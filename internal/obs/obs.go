package obs

import "sync"

// defaultRegistry is the process-wide registry package-level metric
// families register into; the ops server serves it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// defaultTracer holds the most recent spans for /statusz.
var defaultTracer = NewTracer(256)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan opens a span on the process-wide tracer.
func StartSpan(name string) *Span { return defaultTracer.StartSpan(name) }

// nopOnce guards construction of the shared no-op logger.
var (
	nopOnce   sync.Once
	nopLogger *Logger
)
