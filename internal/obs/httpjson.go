package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// APIError is the one JSON error envelope every HTTP surface of the
// pipeline returns — the ops endpoints, the diagnosis API and the
// multi-tenant serving tier all share it, so a client needs exactly one
// error decoder. Wire form:
//
//	{"error": {"code": "bad_request", "message": "window.start must precede window.end"}}
//
// Code is a stable machine-readable slug (bad_request, not_found,
// unknown_tenant, unknown_measurement, unknown_incident,
// method_not_allowed, too_large); Message is human-readable detail.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiErrorBody is the envelope wrapper around APIError.
type apiErrorBody struct {
	Error APIError `json:"error"`
}

// WriteJSONError writes the shared error envelope with the given HTTP
// status, machine-readable code and human-readable message.
func WriteJSONError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiErrorBody{Error: APIError{Code: code, Message: msg}})
}

// RouteInfo describes one registered HTTP endpoint: the method it
// serves and its path pattern ("{id}" marks a path parameter, a
// trailing "/" marks a subtree).
type RouteInfo struct {
	Method  string
	Pattern string
}

// routeTable is the process-wide table of every HTTP endpoint the ops
// surface and the serving tier expose. The API reference gate
// (TestAPIDocCoverage) walks it the way TestOperationsDocCoverage walks
// flag declarations and metric families, so an endpoint cannot ship
// undocumented.
var (
	routesMu   sync.Mutex
	routeTable = map[RouteInfo]bool{}
)

// RegisterRoute records an endpoint in the process-wide route table.
// Registration is idempotent; every handler constructor declares its
// routes here so the table mirrors what a running server actually
// answers.
func RegisterRoute(method, pattern string) {
	routesMu.Lock()
	routeTable[RouteInfo{Method: method, Pattern: pattern}] = true
	routesMu.Unlock()
}

// Routes snapshots the registered route table sorted by pattern then
// method.
func Routes() []RouteInfo {
	routesMu.Lock()
	out := make([]RouteInfo, 0, len(routeTable))
	for r := range routeTable {
		out = append(out, r)
	}
	routesMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}
