package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerRecordsSpansWithPhases(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSpan("step")
	sp.Phase("score")
	time.Sleep(time.Millisecond)
	sp.Phase("aggregate")
	sp.End()

	recent := tr.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Name != "step" {
		t.Errorf("name = %q", rec.Name)
	}
	if rec.Duration <= 0 {
		t.Errorf("duration = %v", rec.Duration)
	}
	if len(rec.Phases) != 2 || rec.Phases[0].Name != "score" || rec.Phases[1].Name != "aggregate" {
		t.Errorf("phases = %+v", rec.Phases)
	}
	if rec.Phases[0].Duration < time.Millisecond {
		t.Errorf("score phase %v, want ≥ 1ms", rec.Phases[0].Duration)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.StartSpan(string(rune('a' + i))).End()
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5", tr.Total())
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %q, want %q", i, recent[i].Name, want)
		}
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.Phase("y") // must not panic
	sp.End()
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.StartSpan("work")
				sp.Phase("p")
				sp.End()
				if i%100 == 0 {
					tr.Recent(8)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Errorf("total = %d, want %d", tr.Total(), 8*500)
	}
}
