package obs

import (
	"fmt"
	"io"
	"log"
	"strings"
	"sync/atomic"
)

// Level grades log records.
type Level int32

const (
	// LevelDebug is development chatter.
	LevelDebug Level = iota
	// LevelInfo is normal operation.
	LevelInfo
	// LevelWarn is something off but survivable.
	LevelWarn
	// LevelError is a failed operation.
	LevelError
	// levelOff is above every level: nothing is emitted.
	levelOff
)

// String returns the level's name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// logMessages counts emitted log records by level on the default registry,
// which is what makes the logger "registry-aware": log volume is itself a
// health signal, scrapeable as mcorr_log_messages_total.
var logMessages = Default().CounterVec("mcorr_log_messages_total",
	"Structured log records emitted, by level.", "level")

var logCounters = [4]*Counter{
	LevelDebug: logMessages.With("debug"),
	LevelInfo:  logMessages.With("info"),
	LevelWarn:  logMessages.With("warn"),
	LevelError: logMessages.With("error"),
}

// Logger is a small structured key=value logger. Records render as
//
//	level=info component=collector msg="hello" agent=web-01
//
// on a single line through the underlying sink (a *log.Logger, which owns
// timestamps and destination). With derives child loggers carrying bound
// fields; levels below the minimum are dropped. All methods are safe for
// concurrent use; a nil *Logger discards everything.
type Logger struct {
	sink *log.Logger
	min  *atomic.Int32 // shared across With-derived children
	base string        // pre-rendered bound fields, "" or " k=v ..."
}

// NewLogger returns a logger writing timestamped lines to w at LevelInfo.
func NewLogger(w io.Writer) *Logger {
	return FromStd(log.New(w, "", log.LstdFlags))
}

// FromStd wraps an existing standard logger (its prefix, flags and
// destination are preserved). A nil std returns the no-op logger.
func FromStd(std *log.Logger) *Logger {
	if std == nil {
		return NopLogger()
	}
	min := &atomic.Int32{}
	min.Store(int32(LevelInfo))
	return &Logger{sink: std, min: min}
}

// NopLogger returns the shared logger that discards everything.
func NopLogger() *Logger {
	nopOnce.Do(func() {
		min := &atomic.Int32{}
		min.Store(int32(levelOff))
		nopLogger = &Logger{sink: log.New(io.Discard, "", 0), min: min}
	})
	return nopLogger
}

// SetLevel sets the minimum emitted level (shared with derived loggers).
func (l *Logger) SetLevel(min Level) {
	if l == nil || l == nopLogger {
		return
	}
	l.min.Store(int32(min))
}

// Enabled reports whether records at the level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.min.Load()
}

// With returns a child logger with extra bound fields appended to every
// record.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || l == nopLogger || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	b.WriteString(l.base)
	appendKV(&b, kv)
	return &Logger{sink: l.sink, min: l.min, base: b.String()}
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info emits an info record.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error emits an error record.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

func (l *Logger) emit(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("level=")
	b.WriteString(level.String())
	b.WriteString(l.base)
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	appendKV(&b, kv)
	l.sink.Print(b.String())
	if level >= LevelDebug && level <= LevelError {
		logCounters[level].Inc()
	}
}

// appendKV renders alternating key/value pairs; a dangling key gets the
// value "(MISSING)".
func appendKV(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
		} else {
			b.WriteString("(MISSING)")
		}
	}
}

// quoteValue quotes a value only when it needs it (spaces, quotes, '=' or
// control characters), keeping the common case grep-friendly.
func quoteValue(v string) string {
	if v == "" {
		return `""`
	}
	for _, r := range v {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return fmt.Sprintf("%q", v)
		}
	}
	return v
}
