package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches a path from the test server and returns status and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Ops test counter.").Add(5)
	tr := NewTracer(8)
	sp := tr.StartSpan("pipeline.step")
	sp.Phase("score")
	sp.End()

	srv := httptest.NewServer(NewOpsMux(reg, tr))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"# TYPE test_ops_total counter", "test_ops_total 5"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/vars")
	if code != 200 || !strings.Contains(body, `"test_ops_total": 5`) {
		t.Errorf("/vars = %d %q", code, body)
	}

	code, body = get(t, srv, "/statusz")
	if code != 200 || !strings.Contains(body, "pipeline.step") || !strings.Contains(body, "score=") {
		t.Errorf("/statusz = %d missing span dump:\n%s", code, body)
	}

	// pprof index must be wired (the profile endpoints themselves block).
	code, body = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	if code, _ = get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServeOpsLifecycle(t *testing.T) {
	ops, err := ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + ops.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	// The default registry carries the process gauges once ops is up.
	resp, err = http.Get("http://" + ops.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "mcorr_process_goroutines") {
		t.Errorf("process metrics missing from default registry scrape")
	}
	if err := ops.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + ops.Addr().String() + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}
