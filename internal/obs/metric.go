package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but counters should normally be obtained from a Registry so they
// render on the ops surface.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as atomic float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (negative d decreases).
func (g *Gauge) Add(d float64) { addFloatBits(&g.bits, d) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits atomically adds d to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets and tracks count and
// sum, Prometheus-style. Observe is allocation-free: a short linear scan
// over the upper bounds plus two atomic adds. Quantiles are estimated from
// the bucket counts by linear interpolation — a windowless summary good
// enough for dashboards and /statusz.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram over the given upper bounds. Bounds must
// be strictly increasing; an empty set gets a single +Inf bucket.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns the per-bucket counts (non-cumulative, including the
// +Inf overflow bucket), total count and sum, read without a lock; under
// concurrent writes the values are each individually consistent.
func (h *Histogram) snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, h.count.Load(), h.Sum()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the bucket the quantile falls into. Values
// in the +Inf overflow bucket clamp to the highest finite bound. NaN is
// returned for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	buckets, count, _ := h.snapshot()
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	var cum float64
	for i, c := range buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := histBucketLow(h.bounds, i)
			frac := (target - cum) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum = next
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// histBucketLow returns the lower edge of bucket i.
func histBucketLow(bounds []float64, i int) float64 {
	if i > 0 {
		return bounds[i-1]
	}
	if bounds[0] > 0 {
		return 0
	}
	// All-negative or zero first bound: extend symmetrically.
	if len(bounds) > 1 {
		return bounds[0] - (bounds[1] - bounds[0])
	}
	return bounds[0]
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets is the default latency bucket set: 1µs to ~4.2s in ×4 steps,
// wide enough for both sub-millisecond scoring steps and slow I/O.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 4, 12) }

// FitnessBuckets covers the paper's fitness scores Q ∈ [0, 1] in tenths.
func FitnessBuckets() []float64 { return LinearBuckets(0.1, 0.1, 10) }
