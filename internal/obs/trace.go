package obs

import (
	"sync"
	"time"
)

// PhaseTiming is one named phase inside a span (e.g. ingest → score →
// aggregate → alarm in the scoring pipeline).
type PhaseTiming struct {
	Name     string
	Duration time.Duration
}

// SpanRecord is a completed span as stored in the tracer's ring.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Phases   []PhaseTiming
}

// Tracer keeps the most recent completed spans in a fixed ring buffer so
// /statusz can show what the pipeline has been doing lately without
// unbounded memory. Span objects are pooled; recording a span copies its
// phases into the ring slot's reused backing array, so steady-state
// tracing does not allocate.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	n     int // valid entries in ring
	total uint64
	pool  sync.Pool
}

// NewTracer returns a tracer retaining the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]SpanRecord, capacity)}
	t.pool.New = func() any { return &Span{} }
	return t
}

// Span is an in-flight timed operation. A nil *Span is a valid no-op, so
// instrumentation can be unconditional.
type Span struct {
	t          *Tracer
	rec        SpanRecord
	phaseName  string
	phaseStart time.Time
}

// StartSpan opens a span; close it with End. A nil tracer returns a nil
// (no-op) span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*Span)
	s.t = t
	s.rec.Name = name
	s.rec.Start = time.Now()
	s.rec.Phases = s.rec.Phases[:0]
	s.phaseName = ""
	return s
}

// Phase closes the current phase (if any) and starts a new one. Phase
// durations are measured from the previous Phase call (or span start).
func (s *Span) Phase(name string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.phaseName, s.phaseStart = name, now
}

func (s *Span) closePhase(now time.Time) {
	if s.phaseName == "" {
		return
	}
	s.rec.Phases = append(s.rec.Phases, PhaseTiming{Name: s.phaseName, Duration: now.Sub(s.phaseStart)})
	s.phaseName = ""
}

// End closes the span and records it in the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.closePhase(now)
	s.rec.Duration = now.Sub(s.rec.Start)
	t := s.t
	t.mu.Lock()
	slot := &t.ring[t.next]
	slot.Name = s.rec.Name
	slot.Start = s.rec.Start
	slot.Duration = s.rec.Duration
	slot.Phases = append(slot.Phases[:0], s.rec.Phases...)
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
	s.t = nil
	t.pool.Put(s)
}

// Total returns how many spans have completed since the tracer was made.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n completed spans, newest first (deep copies).
func (t *Tracer) Recent(n int) []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)*2) % len(t.ring)
		rec := t.ring[idx]
		rec.Phases = append([]PhaseTiming(nil), rec.Phases...)
		out = append(out, rec)
	}
	return out
}
