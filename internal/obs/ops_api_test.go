package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugSpansJSON(t *testing.T) {
	tr := NewTracer(8)
	for _, name := range []string{"first", "second"} {
		sp := tr.StartSpan(name)
		sp.Phase("work")
		sp.End()
	}
	srv := httptest.NewServer(NewOpsMux(NewRegistry(), tr))
	defer srv.Close()

	var payload struct {
		Total uint64 `json:"total"`
		Spans []struct {
			Name   string `json:"name"`
			Phases []struct {
				Name string `json:"name"`
			} `json:"phases"`
		} `json:"spans"`
	}
	code, body := get(t, srv, "/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if payload.Total != 2 || len(payload.Spans) != 2 {
		t.Fatalf("payload = %+v, want 2 spans", payload)
	}
	// Newest first.
	if payload.Spans[0].Name != "second" || payload.Spans[1].Name != "first" {
		t.Errorf("span order = %s, %s; want newest first", payload.Spans[0].Name, payload.Spans[1].Name)
	}
	if len(payload.Spans[0].Phases) != 1 || payload.Spans[0].Phases[0].Name != "work" {
		t.Errorf("phases = %+v", payload.Spans[0].Phases)
	}

	code, body = get(t, srv, "/debug/spans?n=1")
	if code != 200 {
		t.Fatalf("?n=1 = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != "second" {
		t.Errorf("?n=1 spans = %+v", payload.Spans)
	}

	if code, _ = get(t, srv, "/debug/spans?n=-3"); code != 400 {
		t.Errorf("negative n = %d, want 400", code)
	}
	if code, _ = get(t, srv, "/debug/spans?n=zebra"); code != 400 {
		t.Errorf("non-numeric n = %d, want 400", code)
	}
}

func TestStatuszFabricBlock(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(NewOpsMux(reg, NewTracer(4)))
	defer srv.Close()

	// With none of the fabric gauges registered the block says so.
	code, body := get(t, srv, "/statusz")
	if code != 200 || !strings.Contains(body, "(no fabric metrics registered)") {
		t.Fatalf("/statusz without fabric gauges = %d:\n%s", code, body)
	}

	reg.Gauge("mcorr_shard_count", "Shards.").Set(4)
	reg.Gauge("mcorr_manager_dirty_pairs", "Dirty pairs last row.").Set(17)
	reg.Gauge("mcorr_checkpoint_epoch", "Committed checkpoint epoch.").Set(9)
	reg.Gauge("mcorr_incident_open", "Open incidents.").Set(1)

	_, body = get(t, srv, "/statusz")
	for _, want := range []string{
		"fabric", "shards:", "dirty pairs (last row):", "checkpoint epoch:", "open incidents:",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "4") || !strings.Contains(body, "17") || !strings.Contains(body, "9") {
		t.Errorf("/statusz missing fabric gauge values:\n%s", body)
	}
	if strings.Contains(body, "(no fabric metrics registered)") {
		t.Error("/statusz still shows the empty-fabric placeholder")
	}
}

func TestRegisterOpsHandlerDispatch(t *testing.T) {
	echo := func(tag string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(tag + " " + r.URL.Path))
		})
	}
	RegisterOpsHandler("/api/opstest/", echo("subtree"))
	RegisterOpsHandler("/api/opstest/exact", echo("exact"))

	srv := httptest.NewServer(NewOpsMux(NewRegistry(), NewTracer(4)))
	defer srv.Close()

	code, body := get(t, srv, "/api/opstest/anything/nested")
	if code != 200 || !strings.HasPrefix(body, "subtree ") {
		t.Errorf("subtree dispatch = %d %q", code, body)
	}
	// Longest matching pattern wins.
	code, body = get(t, srv, "/api/opstest/exact")
	if code != 200 || !strings.HasPrefix(body, "exact ") {
		t.Errorf("exact dispatch = %d %q", code, body)
	}
	// Re-registering replaces the handler.
	RegisterOpsHandler("/api/opstest/exact", echo("rebound"))
	code, body = get(t, srv, "/api/opstest/exact")
	if code != 200 || !strings.HasPrefix(body, "rebound ") {
		t.Errorf("rebound dispatch = %d %q", code, body)
	}
	// Unregistered /api/ paths answer a JSON 404.
	code, body = get(t, srv, "/api/opstest-nothing-here")
	if code != 404 || !strings.Contains(body, "no handler registered") {
		t.Errorf("unregistered = %d %q", code, body)
	}

	defer func() {
		if recover() == nil {
			t.Error("RegisterOpsHandler accepted a pattern outside /api/")
		}
	}()
	RegisterOpsHandler("/metrics", echo("nope"))
}

func TestRegistryValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("val_counter", "c").Add(7)
	reg.Gauge("val_gauge", "g").Set(2.5)
	reg.GaugeFunc("val_fn", "f", func() float64 { return 42 })
	reg.CounterVec("val_labeled", "l", "k").With("x").Inc()
	reg.Histogram("val_hist", "h", []float64{1, 2})

	if v, ok := reg.Value("val_counter"); !ok || v != 7 {
		t.Errorf("counter = %v %v", v, ok)
	}
	if v, ok := reg.Value("val_gauge"); !ok || v != 2.5 {
		t.Errorf("gauge = %v %v", v, ok)
	}
	if v, ok := reg.Value("val_fn"); !ok || v != 42 {
		t.Errorf("gaugeFn = %v %v", v, ok)
	}
	for _, name := range []string{"val_labeled", "val_hist", "val_unknown"} {
		if _, ok := reg.Value(name); ok {
			t.Errorf("Value(%q) reported ok; labeled/histogram/unknown must not", name)
		}
	}
}

func TestRegisterBuildInfoReplacesSeries(t *testing.T) {
	RegisterBuildInfo("", 4)
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `mcorr_build_info{version="dev",`) || !strings.Contains(out, `shards="4"`) {
		t.Fatalf("build info series missing after first register:\n%s", grepLines(out, "mcorr_build_info"))
	}

	RegisterBuildInfo("v9.9", 8)
	sb.Reset()
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if strings.Contains(out, `version="dev"`) {
		t.Errorf("stale build info series survived re-register:\n%s", grepLines(out, "mcorr_build_info"))
	}
	if !strings.Contains(out, `mcorr_build_info{version="v9.9",`) || !strings.Contains(out, `shards="8"`) {
		t.Errorf("replacement series missing:\n%s", grepLines(out, "mcorr_build_info"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
