package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendT(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

func replayAll(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var out []Record
	n, err := Replay(dir, after, func(rec Record) error {
		cp := append([]byte(nil), rec.Data...)
		out = append(out, Record{Seq: rec.Seq, Data: cp})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("Replay count = %d, delivered %d", n, len(out))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 100; i++ {
		seq := appendT(t, l, fmt.Sprintf("record-%03d", i))
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs := replayAll(t, dir, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || string(rec.Data) != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("record %d = {%d %q}", i, rec.Seq, rec.Data)
		}
	}
}

func TestReplayAfterSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		appendT(t, l, fmt.Sprintf("r%d", i))
	}
	recs := replayAll(t, dir, 7)
	if len(recs) != 3 || recs[0].Seq != 8 {
		t.Fatalf("replay after 7 = %+v", recs)
	}
}

func TestReopenResumesSequence(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	appendT(t, l, "one")
	appendT(t, l, "two")
	l.Close()

	l2 := openT(t, dir, Options{})
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after reopen = %d, want 2", l2.LastSeq())
	}
	if seq := appendT(t, l2, "three"); seq != 3 {
		t.Fatalf("resumed seq = %d, want 3", seq)
	}
	l2.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 3 || string(recs[2].Data) != "three" {
		t.Fatalf("replay = %+v", recs)
	}
}

func TestSegmentRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than 64 bytes triggers rotation.
	l := openT(t, dir, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Segments() < 5 {
		t.Fatalf("Segments = %d, want several after rotation", l.Segments())
	}
	// A checkpoint covering seq ≤ 8 lets the old segments go.
	if err := l.TruncateBefore(8); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	recs := replayAll(t, dir, 8)
	if len(recs) != 2 || recs[0].Seq != 9 || recs[1].Seq != 10 {
		t.Fatalf("post-truncation replay = %+v", recs)
	}
	// The tail past the truncation point must be fully intact.
	files, _ := os.ReadDir(dir)
	if len(files) >= 10 {
		t.Fatalf("%d segment files survived truncation", len(files))
	}
}

func TestTornTailIsTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	appendT(t, l, "intact-1")
	appendT(t, l, "intact-2")
	appendT(t, l, "doomed")
	l.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	l2 := openT(t, dir, Options{})
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", l2.LastSeq())
	}
	// Appending after recovery reuses the torn record's sequence number.
	if seq := appendT(t, l2, "replacement"); seq != 3 {
		t.Fatalf("seq after recovery = %d, want 3", seq)
	}
	l2.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 3 || string(recs[2].Data) != "replacement" {
		t.Fatalf("replay = %+v", recs)
	}
}

func TestCorruptedMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	appendT(t, l, "aaaa")
	appendT(t, l, "bbbb")
	appendT(t, l, "cccc")
	l.Close()

	// Flip a payload byte of the middle record.
	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, []byte("bbbb"))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	data[idx] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The single (final) segment: corruption reads as a torn tail — the
	// intact prefix is delivered, the rest dropped, no error.
	recs := replayAll(t, dir, 0)
	if len(recs) != 1 || string(recs[0].Data) != "aaaa" {
		t.Fatalf("replay past corruption = %+v", recs)
	}
}

func TestCorruptEarlierSegmentIsAnError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("y"), 80)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want ≥ 2 segments, got %d", len(segs))
	}
	data, _ := os.ReadFile(segs[0].path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(segs[0].path, data, 0o644)
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("corruption in a non-final segment: want replay error")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{Sync: policy})
			appendT(t, l, "data")
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			l.Close()
			if got := replayAll(t, dir, 0); len(got) != 1 {
				t.Fatalf("replay = %+v", got)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{"always": SyncAlways, "batch": SyncBatch, "none": SyncNone, "": SyncBatch, " Batch ": SyncBatch}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("yolo"); err == nil {
		t.Error("ParseSyncPolicy(yolo): want error")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if _, err := l.Append(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized append = %v, want ErrTooBig", err)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	appendT(t, l, "")
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 1 || len(recs[0].Data) != 0 {
		t.Fatalf("replay = %+v", recs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 1 << 12})
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.LastSeq() != writers*per {
		t.Fatalf("LastSeq = %d, want %d", l.LastSeq(), writers*per)
	}
	l.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != writers*per {
		t.Fatalf("replayed %d, want %d", len(recs), writers*per)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d → %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestReadRecordNeverPanicsOnGarbage(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0xff}, 64),
		append([]byte(Magic), bytes.Repeat([]byte{0x01}, 32)...),
	}
	for _, in := range inputs {
		if _, err := ReadRecord(bytes.NewReader(in)); err == nil && len(in) > 0 {
			t.Errorf("ReadRecord(%x): want error", in)
		}
		_ = ReadSegment(bytes.NewReader(in), nil) // must not panic
	}
}

func TestReplayEmptyDir(t *testing.T) {
	n, err := Replay(t.TempDir(), 0, func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay(empty) = %d, %v", n, err)
	}
}

func TestReplayFnErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	appendT(t, l, "x")
	l.Close()
	boom := errors.New("boom")
	if _, err := Replay(dir, 0, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Replay error = %v, want boom", err)
	}
}

func TestScanHeaderOnlySegment(t *testing.T) {
	// A crash immediately after rotation leaves a header-only segment; the
	// log must reopen with the previous segment's last seq.
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 64})
	payload := bytes.Repeat([]byte("z"), 80)
	l.Append(payload) // seq 1
	l.Append(payload) // seq 2, rotates first
	l.Close()
	// Manufacture a header-only segment after the last one.
	var hdrBuf bytes.Buffer
	hdrBuf.WriteString(Magic)
	var seqb [8]byte
	seqb[7] = 3
	hdrBuf.Write(seqb[:])
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016x%s", 3, segmentSuffix)), hdrBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l2.LastSeq())
	}
	if seq := appendT(t, l2, "after"); seq != 3 {
		t.Fatalf("next seq = %d, want 3", seq)
	}
}

func TestReadSegmentHeaderRejectsBadMagic(t *testing.T) {
	if _, err := ReadSegmentHeader(bytes.NewReader([]byte("NOTMAGIC12345678"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic = %v, want ErrCorrupt", err)
	}
	if _, err := ReadSegmentHeader(io.LimitReader(bytes.NewReader([]byte(Magic)), 4)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header = %v, want ErrCorrupt", err)
	}
}
