package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// segmentBytes builds a real segment on disk with the given payloads and
// returns its raw bytes — a live valid seed next to the checked-in corpus.
func segmentBytes(f *testing.F, payloads ...[]byte) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) == 0 {
		f.Fatalf("no segment written: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzReadSegment throws arbitrary bytes at the segment reader: it must
// never panic, must bound every allocation (MaxRecordSize), and must fail
// with ErrCorrupt — never silently misparse — on anything but a clean
// stream.
func FuzzReadSegment(f *testing.F) {
	f.Add(segmentBytes(f, []byte("alpha"), []byte("beta"), nil))
	whole := segmentBytes(f, []byte("gamma"))
	f.Add(whole)
	f.Add(whole[:len(whole)-3]) // torn tail
	flipped := bytes.Clone(whole)
	flipped[len(flipped)-1] ^= 0xff // corrupt payload byte
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		err := ReadSegment(bytes.NewReader(data), func(rec Record) error {
			if len(rec.Data) > MaxRecordSize {
				t.Fatalf("delivered %d-byte record beyond MaxRecordSize", len(rec.Data))
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadSegment error %v is not ErrCorrupt", err)
		}
	})
}

// FuzzReadRecord exercises the single-record frame decoder on raw bytes:
// no panics, bounded allocations, and either a clean EOF boundary or an
// ErrCorrupt-wrapped failure — nothing else.
func FuzzReadRecord(f *testing.F) {
	whole := segmentBytes(f, []byte("delta"))
	f.Add(whole[headerSize:]) // just the record frames, no segment header
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5})
	f.Add(bytes.Repeat([]byte{0xff}, recordHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			rec, err := ReadRecord(r)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("ReadRecord error %v is not ErrCorrupt", err)
				}
				return
			}
			if len(rec.Data) > MaxRecordSize {
				t.Fatalf("accepted %d-byte record beyond MaxRecordSize", len(rec.Data))
			}
		}
	})
}
