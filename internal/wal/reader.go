package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record is one replayed log entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// ReadSegmentHeader consumes and validates a segment header, returning the
// segment's first sequence number.
func ReadSegmentHeader(r io.Reader) (uint64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("segment header: %w", ErrCorrupt)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("segment magic: %w", ErrCorrupt)
	}
	return binary.BigEndian.Uint64(hdr[len(Magic):]), nil
}

// ReadRecord reads one CRC-framed record from r. It returns io.EOF at a
// clean record boundary and ErrCorrupt (possibly wrapped) for a torn or
// damaged frame; it never panics and never allocates more than
// MaxRecordSize for hostile input.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF // clean boundary
		}
		return Record{}, fmt.Errorf("record header: %w", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxRecordSize {
		return Record{}, fmt.Errorf("record of %d bytes: %w", n, ErrCorrupt)
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	seq := binary.BigEndian.Uint64(hdr[8:16])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("record payload: %w", ErrCorrupt)
	}
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return Record{}, fmt.Errorf("record crc: %w", ErrCorrupt)
	}
	return Record{Seq: seq, Data: payload}, nil
}

// ReadSegment replays every intact record of one segment stream into fn,
// header included. It stops without error at a clean end and returns
// ErrCorrupt (wrapped) at the first damaged frame; records before the
// damage are still delivered. fn errors abort the scan.
func ReadSegment(r io.Reader, fn func(Record) error) error {
	if _, err := ReadSegmentHeader(r); err != nil {
		return err
	}
	for {
		rec, err := ReadRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
}

// scanSegment reads a segment file and returns the sequence number of its
// last intact record (0 if none) and the byte offset where intact data
// ends — the resume point for appends. A torn tail is not an error; a
// missing or damaged header is.
func scanSegment(path string) (lastSeq uint64, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if _, err := ReadSegmentHeader(br); err != nil {
		return 0, 0, err
	}
	validBytes = int64(headerSize)
	for {
		rec, err := ReadRecord(br)
		if err != nil {
			// Clean EOF and a torn/corrupt tail both end the scan; the
			// caller truncates to validBytes either way.
			return lastSeq, validBytes, nil
		}
		lastSeq = rec.Seq
		validBytes += int64(recordHeaderSize + len(rec.Data))
	}
}

// Replay streams every record with Seq > after through fn, in sequence
// order across all segments of dir. Corruption in the final segment is
// treated as the torn tail of a crash and ends the replay cleanly;
// corruption in an earlier segment is a real error. It returns the number
// of records delivered.
func Replay(dir string, after uint64, fn func(Record) error) (int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	delivered := 0
	for i, s := range segs {
		// Skip segments wholly covered by `after`.
		if i+1 < len(segs) && segs[i+1].firstSeq-1 <= after {
			continue
		}
		f, err := os.Open(s.path)
		if err != nil {
			return delivered, fmt.Errorf("wal replay: %w", err)
		}
		err = ReadSegment(bufio.NewReader(f), func(rec Record) error {
			if rec.Seq <= after {
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
			delivered++
			return nil
		})
		f.Close()
		if err != nil {
			if errors.Is(err, ErrCorrupt) && i == len(segs)-1 {
				return delivered, nil // torn tail of the active segment
			}
			return delivered, fmt.Errorf("wal replay %s: %w", filepath.Base(s.path), err)
		}
	}
	return delivered, nil
}
