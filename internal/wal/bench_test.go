package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the per-record append cost under each fsync
// policy — the price every durable tsdb batch pays before its ack. The
// payload size matches a typical one-row sample batch on the wire.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, policy := range []SyncPolicy{SyncNone, SyncBatch, SyncAlways} {
		b.Run(fmt.Sprintf("sync=%s", policy), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: policy})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatalf("Append: %v", err)
				}
			}
		})
	}
}
