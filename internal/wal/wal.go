package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Framing constants.
const (
	// Magic opens every segment file.
	Magic = "MCORWAL1"
	// headerSize is the segment header: magic + uint64 first seq.
	headerSize = len(Magic) + 8
	// recordHeaderSize frames every record: length + crc + seq.
	recordHeaderSize = 4 + 4 + 8
	// MaxRecordSize bounds a record payload; larger lengths are treated as
	// corruption (and bound allocation when reading hostile input).
	MaxRecordSize = 1 << 24
	// segmentSuffix names segment files.
	segmentSuffix = ".wal"
)

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log errors.
var (
	ErrClosed  = errors.New("wal: log closed")
	ErrCorrupt = errors.New("wal: corrupt record")
	ErrTooBig  = errors.New("wal: record exceeds size limit")
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncBatch fsyncs at most once per batch window (group commit): an
	// append syncs only when the window since the last sync has elapsed.
	// Rotation and Close always sync. The default.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append.
	SyncAlways
	// SyncNone never fsyncs explicitly (the OS page cache decides); data
	// still survives process crashes, only power loss can lose the tail.
	SyncNone
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values "batch", "always", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, batch or none)", s)
	}
}

// Options tunes a Log. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// BatchWindow is the group-commit window for SyncBatch (default 50ms).
	BatchWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 50 * time.Millisecond
	}
	return o
}

// segmentInfo is one on-disk segment.
type segmentInfo struct {
	path     string
	firstSeq uint64
}

// Log is a segmented append-only record log. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	segs     []segmentInfo // sorted by firstSeq; last is active
	f        *os.File      // active segment
	size     int64         // active segment size
	seq      uint64        // last assigned sequence number
	lastSync time.Time
	dirty    bool // unsynced bytes outstanding
	closed   bool
	hdr      [recordHeaderSize]byte // reused append scratch
}

// Open opens (or creates) the log in dir. A torn record at the tail of the
// last segment — the signature of a crash mid-append — is truncated away
// and appending resumes after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segs: segs}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		obsSegments.Set(float64(len(l.segs)))
		return l, nil
	}
	// Scan the last segment to find its intact end; everything beyond is a
	// torn tail from a crash and is cut off.
	last := segs[len(segs)-1]
	lastSeq, validBytes, err := scanSegment(last.path)
	if err != nil {
		return nil, fmt.Errorf("wal open %s: %w", filepath.Base(last.path), err)
	}
	if lastSeq == 0 {
		// Header-only (or torn-header) segment: its first record was never
		// completed, so the last durable seq comes from the prior segment.
		lastSeq = last.firstSeq - 1
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal open: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validBytes {
		if err := f.Truncate(validBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal open: %w", err)
	}
	l.f = f
	l.size = validBytes
	l.seq = lastSeq
	obsSegments.Set(float64(len(l.segs)))
	return l, nil
}

// listSegments returns the directory's segments sorted by first sequence.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal list: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// segmentPath names the segment starting at firstSeq.
func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", firstSeq, segmentSuffix))
}

// openSegment creates and activates a fresh segment whose first record
// will carry firstSeq. Caller holds the lock (or is the constructor).
func (l *Log) openSegment(firstSeq uint64) error {
	path := segmentPath(l.dir, firstSeq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:], Magic)
	binary.BigEndian.PutUint64(hdr[len(Magic):], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal segment header: %w", err)
	}
	l.f = f
	l.size = int64(headerSize)
	l.segs = append(l.segs, segmentInfo{path: path, firstSeq: firstSeq})
	obsSegments.Set(float64(len(l.segs)))
	return nil
}

// Append writes one record and returns its sequence number. Under
// SyncAlways the record is on stable storage when Append returns; under
// SyncBatch it is once the batch window elapses (or Sync/Close is called).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal append %d bytes: %w", len(payload), ErrTooBig)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.seq + 1
	binary.BigEndian.PutUint32(l.hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(l.hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, l.hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(l.hdr[4:8], crc)
	if _, err := l.f.Write(l.hdr[:]); err != nil {
		return 0, fmt.Errorf("wal append: %w", err)
	}
	if len(payload) > 0 {
		if _, err := l.f.Write(payload); err != nil {
			return 0, fmt.Errorf("wal append: %w", err)
		}
	}
	l.seq = seq
	l.size += int64(recordHeaderSize + len(payload))
	l.dirty = true
	obsAppended.Inc()
	obsBytes.Add(uint64(recordHeaderSize + len(payload)))
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if time.Since(l.lastSync) >= l.opts.BatchWindow {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal rotate: %w", err)
	}
	return l.openSegment(l.seq + 1)
}

// syncLocked flushes the active segment to stable storage.
func (l *Log) syncLocked() error {
	if !l.dirty || l.opts.Sync == SyncNone {
		l.dirty = false
		return nil
	}
	start := time.Now()
	err := l.f.Sync()
	obsFsyncSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Sync forces outstanding appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// LastSeq returns the sequence number of the last appended record (0 when
// the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// TruncateBefore removes whole segments whose records all have sequence
// numbers ≤ seq — the retention step after a checkpoint covers them. The
// active segment is never removed. Removal is best-effort: the first
// filesystem error is returned but the log stays usable.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var firstErr error
	kept := l.segs[:0]
	for i, s := range l.segs {
		// Segment i holds records [firstSeq, next.firstSeq-1]; it is
		// disposable iff the whole range is ≤ seq and it is not active.
		disposable := false
		if i+1 < len(l.segs) && l.segs[i+1].firstSeq-1 <= seq {
			disposable = true
		}
		if disposable {
			if err := os.Remove(s.path); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("wal truncate: %w", err)
				kept = append(kept, s)
				continue
			}
			obsTruncated.Inc()
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	obsSegments.Set(float64(len(l.segs)))
	return firstErr
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
