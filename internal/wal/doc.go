// Package wal is a segmented append-only write-ahead log: the durability
// layer under the monitoring pipeline. Every record is CRC-framed and
// carries a monotone sequence number; segments rotate at a size threshold
// and old segments are dropped once a checkpoint covers them. A log opened
// after a crash truncates the torn tail of its last segment and resumes
// appending where the last intact record ended, so "logged before ack"
// appends are never lost.
//
// Record frame (all integers big-endian):
//
//	uint32 length   // payload bytes
//	uint32 crc      // CRC-32C (Castagnoli) over seq + payload
//	uint64 seq      // record sequence number, strictly increasing
//	[]byte payload
//
// Segment files are named <firstSeq as %016x>.wal and begin with an
// 8-byte magic plus the first sequence number, so a directory listing
// alone orders the log.
//
// Three sync policies trade durability for throughput: SyncAlways fsyncs
// every record, SyncBatch fsyncs once per appended batch, SyncNone leaves
// flushing to the OS. OPERATIONS.md carries the tuning table.
package wal
