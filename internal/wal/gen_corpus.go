//go:build ignore

// gen_corpus regenerates the checked-in fuzz seed corpus under
// testdata/fuzz: real segment bytes (valid CRCs) plus torn and corrupted
// variants. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mcorr/internal/wal"
)

func main() {
	dir, err := os.MkdirTemp("", "walcorpus")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma-longer-payload")} {
		if _, err := l.Append(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(names) != 1 {
		log.Fatalf("expected one segment, got %v (%v)", names, err)
	}
	seg, err := os.ReadFile(names[0])
	if err != nil {
		log.Fatal(err)
	}

	torn := seg[:len(seg)-3]
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)-1] ^= 0xff
	const headerSize = 16

	write := func(fuzzName, seedName string, data []byte) {
		d := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(d, seedName), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	write("FuzzReadSegment", "seed_valid_segment", seg)
	write("FuzzReadSegment", "seed_torn_tail", torn)
	write("FuzzReadSegment", "seed_flipped_byte", flipped)
	write("FuzzReadSegment", "seed_header_only", seg[:headerSize])
	write("FuzzReadRecord", "seed_valid_records", seg[headerSize:])
	write("FuzzReadRecord", "seed_torn_record", torn[headerSize:])
	write("FuzzReadRecord", "seed_huge_length", []byte("\xff\xff\xff\xff\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	fmt.Println("wrote fuzz corpus to testdata/fuzz/")
}
