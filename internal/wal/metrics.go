package wal

import "mcorr/internal/obs"

// Process-global WAL metrics (mcorr_wal_*), aggregated across every Log in
// the process (production runs one).
var (
	obsAppended = obs.Default().Counter("mcorr_wal_appended_total",
		"Records appended to write-ahead logs.")
	obsBytes = obs.Default().Counter("mcorr_wal_bytes_total",
		"Bytes written to write-ahead logs (framing included).")
	obsFsyncSeconds = obs.Default().Histogram("mcorr_wal_fsync_seconds",
		"Latency of one WAL fsync.",
		obs.TimeBuckets())
	obsSegments = obs.Default().Gauge("mcorr_wal_segments",
		"Segment files currently retained.")
	obsTruncated = obs.Default().Counter("mcorr_wal_segments_truncated_total",
		"Segments removed by retention truncation after checkpoints.")
)
