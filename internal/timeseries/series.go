package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mcorr/internal/mathx"
)

// ErrStepMismatch is returned when two series with different sampling steps
// are combined.
var ErrStepMismatch = errors.New("timeseries: sampling step mismatch")

// ErrNoOverlap is returned when two series share no common time range.
var ErrNoOverlap = errors.New("timeseries: series do not overlap")

// MeasurementID uniquely identifies a measurement: a metric observed on a
// machine, as in the paper ("CPU utilization on machine x.x.x.x is one
// measurement").
type MeasurementID struct {
	Machine string
	Metric  string
}

// String renders the ID as "metric@machine".
func (id MeasurementID) String() string { return id.Metric + "@" + id.Machine }

// Less orders IDs lexicographically by machine then metric, giving datasets
// a stable iteration order.
func (id MeasurementID) Less(other MeasurementID) bool {
	if id.Machine != other.Machine {
		return id.Machine < other.Machine
	}
	return id.Metric < other.Metric
}

// Series is a regularly sampled time series: Values[i] was observed at
// Start + i·Step.
type Series struct {
	ID     MeasurementID
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// NewSeries allocates an empty series with the given identity and sampling
// grid. It returns an error for a non-positive step.
func NewSeries(id MeasurementID, start time.Time, step time.Duration) (*Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("series %s with step %v: must be positive", id, step)
	}
	return &Series{ID: id, Start: start, Step: step}, nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) time.Time { return s.Start.Add(time.Duration(i) * s.Step) }

// End returns the timestamp just past the last sample (Start for an empty
// series).
func (s *Series) End() time.Time { return s.Start.Add(time.Duration(len(s.Values)) * s.Step) }

// IndexOf returns the sample index holding time t and whether t falls on or
// after Start and before End. Times inside a sampling interval map to the
// sample opening that interval.
func (s *Series) IndexOf(t time.Time) (int, bool) {
	if t.Before(s.Start) {
		return 0, false
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= len(s.Values) {
		return 0, false
	}
	return i, true
}

// Append adds a sample at the next grid position.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Clone returns a deep copy of s.
func (s *Series) Clone() *Series {
	c := *s
	c.Values = make([]float64, len(s.Values))
	copy(c.Values, s.Values)
	return &c
}

// Slice returns a view of the samples in [from, to). The returned series
// shares storage with s. An empty window yields an empty series anchored at
// the clipped start.
func (s *Series) Slice(from, to time.Time) *Series {
	if from.Before(s.Start) {
		from = s.Start
	}
	if to.After(s.End()) {
		to = s.End()
	}
	out := &Series{ID: s.ID, Step: s.Step, Start: from}
	if !to.After(from) {
		out.Start = from
		return out
	}
	lo := int(from.Sub(s.Start) / s.Step)
	if s.TimeAt(lo).Before(from) {
		lo++ // from fell inside an interval; start at the next grid point
	}
	hi := int(to.Sub(s.Start) / s.Step)
	if s.TimeAt(hi).Before(to) {
		hi++
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if lo >= hi {
		out.Start = s.TimeAt(lo)
		return out
	}
	out.Start = s.TimeAt(lo)
	out.Values = s.Values[lo:hi]
	return out
}

// Stats returns the mean and sample standard deviation of the series,
// ignoring NaNs. Both are NaN when no finite samples exist.
func (s *Series) Stats() (mean, std float64) {
	var o mathx.Online
	for _, v := range s.Values {
		if !math.IsNaN(v) {
			o.Add(v)
		}
	}
	std = o.StdDev()
	if o.N() == 1 {
		std = 0
	}
	return o.Mean(), std
}

// Resample returns a new series on a coarser grid whose step is an integer
// multiple of s.Step; each output sample is the mean of the covered input
// samples (NaNs skipped; an all-NaN bucket yields NaN).
func (s *Series) Resample(step time.Duration) (*Series, error) {
	if step <= 0 || step%s.Step != 0 {
		return nil, fmt.Errorf("resample %v to %v: %w", s.Step, step, ErrStepMismatch)
	}
	k := int(step / s.Step)
	out, err := NewSeries(s.ID, s.Start, step)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(s.Values); i += k {
		end := i + k
		if end > len(s.Values) {
			end = len(s.Values)
		}
		var sum float64
		var n int
		for _, v := range s.Values[i:end] {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			out.Append(math.NaN())
		} else {
			out.Append(sum / float64(n))
		}
	}
	return out, nil
}

// AlignPair maps two series onto their common time range and returns one
// 2-D point per shared grid position, along with the timestamp of the first
// point. Samples where either side is NaN are dropped (their grid slots are
// skipped, matching how monitoring gaps are treated). The two series must
// share the same step and their starts must be in phase on that step.
func AlignPair(a, b *Series) (pts []mathx.Point2, start time.Time, err error) {
	if a.Step != b.Step {
		return nil, time.Time{}, fmt.Errorf("align %s (%v) with %s (%v): %w", a.ID, a.Step, b.ID, b.Step, ErrStepMismatch)
	}
	if a.Start.Sub(b.Start)%a.Step != 0 {
		return nil, time.Time{}, fmt.Errorf("align %s with %s: starts out of phase: %w", a.ID, b.ID, ErrStepMismatch)
	}
	from := a.Start
	if b.Start.After(from) {
		from = b.Start
	}
	to := a.End()
	if b.End().Before(to) {
		to = b.End()
	}
	if !to.After(from) {
		return nil, time.Time{}, fmt.Errorf("align %s with %s: %w", a.ID, b.ID, ErrNoOverlap)
	}
	ai := int(from.Sub(a.Start) / a.Step)
	bi := int(from.Sub(b.Start) / b.Step)
	n := int(to.Sub(from) / a.Step)
	pts = make([]mathx.Point2, 0, n)
	for i := 0; i < n; i++ {
		x, y := a.Values[ai+i], b.Values[bi+i]
		if math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		pts = append(pts, mathx.Point2{X: x, Y: y})
	}
	return pts, from, nil
}

// Dataset is a collection of measurements sharing a sampling grid.
type Dataset struct {
	series map[MeasurementID]*Series
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{series: make(map[MeasurementID]*Series)}
}

// Add inserts or replaces a series.
func (d *Dataset) Add(s *Series) { d.series[s.ID] = s }

// Get returns the series for id, or nil when absent.
func (d *Dataset) Get(id MeasurementID) *Series { return d.series[id] }

// Len returns the number of measurements.
func (d *Dataset) Len() int { return len(d.series) }

// IDs returns all measurement IDs in stable (machine, metric) order.
func (d *Dataset) IDs() []MeasurementID {
	ids := make([]MeasurementID, 0, len(d.series))
	for id := range d.series {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// Machines returns the distinct machine names in sorted order.
func (d *Dataset) Machines() []string {
	seen := make(map[string]bool)
	for id := range d.series {
		seen[id.Machine] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Slice returns a dataset of views restricted to [from, to).
func (d *Dataset) Slice(from, to time.Time) *Dataset {
	out := NewDataset()
	for _, s := range d.series {
		out.Add(s.Slice(from, to))
	}
	return out
}

// Pairs returns every unordered pair of measurement IDs, in stable order —
// the l(l−1)/2 links of the paper's correlation graph.
func (d *Dataset) Pairs() [][2]MeasurementID {
	ids := d.IDs()
	out := make([][2]MeasurementID, 0, len(ids)*(len(ids)-1)/2)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			out = append(out, [2]MeasurementID{ids[i], ids[j]})
		}
	}
	return out
}
