package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteCSV writes the dataset in wide form: a "time" column followed by
// one column per measurement (named "metric@machine"), one row per sample
// time across the union of all series' grids. Missing samples are empty
// cells. All series must share the same step.
func WriteCSV(w io.Writer, ds *Dataset) error {
	ids := ds.IDs()
	if len(ids) == 0 {
		return fmt.Errorf("write csv: empty dataset")
	}
	step := ds.Get(ids[0]).Step
	var start, end time.Time
	for i, id := range ids {
		s := ds.Get(id)
		if s.Step != step {
			return fmt.Errorf("write csv: %s has step %v, want %v: %w", id, s.Step, step, ErrStepMismatch)
		}
		if i == 0 || s.Start.Before(start) {
			start = s.Start
		}
		if i == 0 || s.End().After(end) {
			end = s.End()
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(ids)+1)
	header = append(header, "time")
	for _, id := range ids {
		header = append(header, id.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	row := make([]string, len(ids)+1)
	for t := start; t.Before(end); t = t.Add(step) {
		row[0] = t.UTC().Format(time.RFC3339)
		for i, id := range ids {
			row[i+1] = ""
			s := ds.Get(id)
			if idx, ok := s.IndexOf(t); ok && !math.IsNaN(s.Values[idx]) {
				row[i+1] = strconv.FormatFloat(s.Values[idx], 'g', -1, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("write csv: %w", err)
	}
	return nil
}

// ReadCSV reads a dataset written by WriteCSV. The sampling step is
// inferred from the first two rows (a single-row file needs step > 0 via
// the fallback of one minute... it is an error instead: at least two rows
// are required). Empty cells become NaN.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	if len(records) < 3 {
		return nil, fmt.Errorf("read csv: need a header and at least two rows, got %d records", len(records))
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time" {
		return nil, fmt.Errorf("read csv: bad header %v", header)
	}
	ids := make([]MeasurementID, len(header)-1)
	for i, col := range header[1:] {
		at := strings.LastIndex(col, "@")
		if at <= 0 || at == len(col)-1 {
			return nil, fmt.Errorf("read csv: column %q is not metric@machine", col)
		}
		ids[i] = MeasurementID{Metric: col[:at], Machine: col[at+1:]}
	}
	t0, err := time.Parse(time.RFC3339, records[1][0])
	if err != nil {
		return nil, fmt.Errorf("read csv: row 1 time: %w", err)
	}
	t1, err := time.Parse(time.RFC3339, records[2][0])
	if err != nil {
		return nil, fmt.Errorf("read csv: row 2 time: %w", err)
	}
	step := t1.Sub(t0)
	if step <= 0 {
		return nil, fmt.Errorf("read csv: non-increasing times %v, %v", t0, t1)
	}
	ds := NewDataset()
	series := make([]*Series, len(ids))
	for i, id := range ids {
		s, err := NewSeries(id, t0, step)
		if err != nil {
			return nil, fmt.Errorf("read csv: %w", err)
		}
		series[i] = s
		ds.Add(s)
	}
	for rowIdx, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("read csv: row %d has %d fields, want %d", rowIdx+1, len(rec), len(header))
		}
		want := t0.Add(time.Duration(rowIdx) * step)
		got, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("read csv: row %d time: %w", rowIdx+1, err)
		}
		if !got.Equal(want) {
			return nil, fmt.Errorf("read csv: row %d time %v off the %v grid", rowIdx+1, got, step)
		}
		for i, cell := range rec[1:] {
			if cell == "" {
				series[i].Append(math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("read csv: row %d column %s: %w", rowIdx+1, ids[i], err)
			}
			series[i].Append(v)
		}
	}
	// Keep deterministic ordering guarantees.
	sort.SliceStable(series, func(i, j int) bool { return series[i].ID.Less(series[j].ID) })
	return ds, nil
}
