package timeseries

import (
	"math"
	"testing"
	"time"
)

func nan() float64 { return math.NaN() }

func TestFillForward(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute,
		nan(), 1, nan(), nan(), 4, nan())
	if got := s.FillForward(); got != 3 {
		t.Fatalf("filled = %d, want 3", got)
	}
	want := []float64{math.NaN(), 1, 1, 1, 4, 4}
	for i, w := range want {
		if math.IsNaN(w) != math.IsNaN(s.Values[i]) || (!math.IsNaN(w) && s.Values[i] != w) {
			t.Errorf("Values[%d] = %g, want %g", i, s.Values[i], w)
		}
	}
	if s.Gaps() != 1 {
		t.Errorf("Gaps = %d", s.Gaps())
	}
}

func TestFillForwardAllNaN(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute, nan(), nan())
	if got := s.FillForward(); got != 0 {
		t.Errorf("filled = %d", got)
	}
	if s.Gaps() != 2 {
		t.Errorf("Gaps = %d", s.Gaps())
	}
}

func TestInterpolate(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute,
		nan(), 2, nan(), nan(), 8, nan())
	if got := s.Interpolate(); got != 2 {
		t.Fatalf("filled = %d, want 2", got)
	}
	// The run between 2 and 8 interpolates to 4, 6; edges stay NaN.
	if s.Values[2] != 4 || s.Values[3] != 6 {
		t.Errorf("interpolated = %v", s.Values)
	}
	if !math.IsNaN(s.Values[0]) || !math.IsNaN(s.Values[5]) {
		t.Error("edge NaNs must be left alone")
	}
}

func TestInterpolateNoGaps(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute, 1, 2, 3)
	if got := s.Interpolate(); got != 0 {
		t.Errorf("filled = %d", got)
	}
	if s.Gaps() != 0 {
		t.Errorf("Gaps = %d", s.Gaps())
	}
}

func TestInterpolateSingleGap(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute, 10, nan(), 20)
	if got := s.Interpolate(); got != 1 {
		t.Fatalf("filled = %d", got)
	}
	if s.Values[1] != 15 {
		t.Errorf("midpoint = %g, want 15", s.Values[1])
	}
}
