package timeseries

import "time"

// SampleStep is the paper's sampling interval: one sample every 6 minutes
// (240 samples per day).
const SampleStep = 6 * time.Minute

// SamplesPerDay is the number of samples in one day at SampleStep.
const SamplesPerDay = int(24 * time.Hour / SampleStep)

// The paper's evaluation calendar (all times UTC).
var (
	// MonitoringStart is the first day of the one-month trace.
	MonitoringStart = Date(2008, time.May, 29)
	// MonitoringEnd is just past the last day (June 27, 2008).
	MonitoringEnd = Date(2008, time.June, 28)
	// TestStart is the first day of every test split (June 13).
	TestStart = Date(2008, time.June, 13)
)

// Date returns midnight UTC of the given calendar day.
func Date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Days returns a window of n whole days starting at day.
func Days(day time.Time, n int) (from, to time.Time) {
	return day, day.AddDate(0, 0, n)
}

// TrainingSplit returns the paper's training windows: 1 day (May 29),
// 8 days (May 29 – June 5), or 15 days (May 29 – June 12). Any other day
// count is measured from MonitoringStart.
func TrainingSplit(days int) (from, to time.Time) {
	return Days(MonitoringStart, days)
}

// TestSplit returns the paper's test windows measured from June 13:
// 1, 5, 9 or 13 days.
func TestSplit(days int) (from, to time.Time) {
	return Days(TestStart, days)
}

// QuarterLabels are the x-axis labels of the paper's one-day fitness plots.
var QuarterLabels = [4]string{"12am-6am", "6am-12pm", "12pm-6pm", "6pm-12am"}

// QuarterOfDay returns which six-hour quarter of its day t falls into
// (0 = 12am–6am ... 3 = 6pm–12am).
func QuarterOfDay(t time.Time) int {
	return t.UTC().Hour() / 6
}

// IsWeekend reports whether t falls on Saturday or Sunday.
func IsWeekend(t time.Time) bool {
	wd := t.UTC().Weekday()
	return wd == time.Saturday || wd == time.Sunday
}
