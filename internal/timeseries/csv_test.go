package timeseries

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := NewDataset()
	start := Date(2008, time.May, 29)
	a := mustSeries(t, idA, start, SampleStep, 1.5, 2.25, math.NaN(), 4)
	b := mustSeries(t, idB, start.Add(SampleStep), SampleStep, 10, 20, 30)
	ds.Add(a)
	ds.Add(b)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("round-trip measurements = %d", got.Len())
	}
	ra := got.Get(idA)
	if ra.Len() != 4 {
		t.Fatalf("series a len = %d", ra.Len())
	}
	if ra.Values[0] != 1.5 || !math.IsNaN(ra.Values[2]) || ra.Values[3] != 4 {
		t.Errorf("series a = %v", ra.Values)
	}
	rb := got.Get(idB)
	// b starts one step late: its first slot in the union grid is NaN.
	if !math.IsNaN(rb.Values[0]) || rb.Values[1] != 10 {
		t.Errorf("series b = %v", rb.Values)
	}
	if ra.Step != SampleStep || !ra.Start.Equal(start) {
		t.Errorf("series a grid = %v @ %v", ra.Step, ra.Start)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, NewDataset()); err == nil {
		t.Error("empty dataset: want error")
	}
	ds := NewDataset()
	start := Date(2008, time.May, 29)
	ds.Add(mustSeries(t, idA, start, time.Minute, 1))
	ds.Add(mustSeries(t, idB, start, time.Hour, 2))
	if err := WriteCSV(&bytes.Buffer{}, ds); err == nil {
		t.Error("mixed steps: want error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "time,cpu@m\n",
		"one row":      "time,cpu@m\n2008-05-29T00:00:00Z,1\n",
		"bad header":   "when,cpu@m\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,2\n",
		"bad column":   "time,cpu\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,2\n",
		"bad time":     "time,cpu@m\nnope,1\n2008-05-29T00:06:00Z,2\n",
		"same times":   "time,cpu@m\n2008-05-29T00:00:00Z,1\n2008-05-29T00:00:00Z,2\n",
		"off grid":     "time,cpu@m\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,2\n2008-05-29T00:13:00Z,3\n",
		"bad value":    "time,cpu@m\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,x\n",
		"empty metric": "time,@m\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestReadCSVMetricWithAtSign(t *testing.T) {
	// Metric names may themselves contain '@'; the machine is after the
	// LAST '@'.
	in := "time,disk@0@m1\n2008-05-29T00:00:00Z,1\n2008-05-29T00:06:00Z,2\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	id := MeasurementID{Machine: "m1", Metric: "disk@0"}
	if ds.Get(id) == nil {
		t.Errorf("IDs = %v", ds.IDs())
	}
}
