package timeseries

import (
	"testing"
	"time"
)

func TestSamplesPerDay(t *testing.T) {
	if SamplesPerDay != 240 {
		t.Errorf("SamplesPerDay = %d, want 240 (the paper's 6-minute sampling)", SamplesPerDay)
	}
}

func TestPaperCalendar(t *testing.T) {
	if MonitoringStart.Weekday() != time.Thursday {
		t.Errorf("May 29 2008 was a Thursday, got %v", MonitoringStart.Weekday())
	}
	if got := MonitoringEnd.Sub(MonitoringStart); got != 30*24*time.Hour {
		t.Errorf("monitoring window = %v, want 30 days", got)
	}
	from, to := TrainingSplit(15)
	if !from.Equal(MonitoringStart) || !to.Equal(Date(2008, time.June, 13)) {
		t.Errorf("15-day training = %v .. %v", from, to)
	}
	// The paper's 15-day training (May 29–June 12) abuts the test start.
	if !to.Equal(TestStart) {
		t.Error("15-day training should end exactly at TestStart")
	}
	from, to = TestSplit(9)
	if !from.Equal(Date(2008, time.June, 13)) || !to.Equal(Date(2008, time.June, 22)) {
		t.Errorf("9-day test = %v .. %v", from, to)
	}
}

func TestQuarterOfDay(t *testing.T) {
	day := Date(2008, time.June, 13)
	cases := []struct {
		h    int
		want int
	}{{0, 0}, {5, 0}, {6, 1}, {11, 1}, {12, 2}, {17, 2}, {18, 3}, {23, 3}}
	for _, c := range cases {
		if got := QuarterOfDay(day.Add(time.Duration(c.h) * time.Hour)); got != c.want {
			t.Errorf("QuarterOfDay(%dh) = %d, want %d", c.h, got, c.want)
		}
	}
}

func TestIsWeekend(t *testing.T) {
	// June 14, 2008 was a Saturday; June 16 a Monday.
	if !IsWeekend(Date(2008, time.June, 14)) || !IsWeekend(Date(2008, time.June, 15)) {
		t.Error("June 14/15 2008 should be weekend")
	}
	if IsWeekend(Date(2008, time.June, 16)) {
		t.Error("June 16 2008 should be a weekday")
	}
}

func TestDaysWindow(t *testing.T) {
	from, to := Days(Date(2008, time.June, 13), 5)
	if !to.Equal(Date(2008, time.June, 18)) || !from.Equal(Date(2008, time.June, 13)) {
		t.Errorf("Days = %v .. %v", from, to)
	}
}
