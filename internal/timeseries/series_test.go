package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mcorr/internal/mathx"
)

var (
	idA = MeasurementID{Machine: "host1", Metric: "cpu"}
	idB = MeasurementID{Machine: "host2", Metric: "net_in"}
)

func mustSeries(t *testing.T, id MeasurementID, start time.Time, step time.Duration, vals ...float64) *Series {
	t.Helper()
	s, err := NewSeries(id, start, step)
	if err != nil {
		t.Fatalf("NewSeries: %v", err)
	}
	s.Values = append(s.Values, vals...)
	return s
}

func TestNewSeriesRejectsBadStep(t *testing.T) {
	if _, err := NewSeries(idA, time.Now(), 0); err == nil {
		t.Error("zero step: want error")
	}
	if _, err := NewSeries(idA, time.Now(), -time.Second); err == nil {
		t.Error("negative step: want error")
	}
}

func TestMeasurementID(t *testing.T) {
	if idA.String() != "cpu@host1" {
		t.Errorf("String = %q", idA.String())
	}
	if !idA.Less(idB) || idB.Less(idA) {
		t.Error("Less should order host1 before host2")
	}
	same := MeasurementID{Machine: "host1", Metric: "mem"}
	if !idA.Less(same) {
		t.Error("Less should fall back to metric within a machine")
	}
}

func TestSeriesIndexing(t *testing.T) {
	start := Date(2008, time.May, 29)
	s := mustSeries(t, idA, start, SampleStep, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.TimeAt(2).Equal(start.Add(12 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", s.TimeAt(2))
	}
	if !s.End().Equal(start.Add(18 * time.Minute)) {
		t.Errorf("End = %v", s.End())
	}
	if i, ok := s.IndexOf(start.Add(7 * time.Minute)); !ok || i != 1 {
		t.Errorf("IndexOf mid-interval = %d, %v", i, ok)
	}
	if _, ok := s.IndexOf(start.Add(-time.Minute)); ok {
		t.Error("IndexOf before start should be false")
	}
	if _, ok := s.IndexOf(s.End()); ok {
		t.Error("IndexOf at End should be false")
	}
}

func TestSeriesCloneIndependent(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), SampleStep, 1, 2)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestSeriesSlice(t *testing.T) {
	start := Date(2008, time.May, 29)
	s := mustSeries(t, idA, start, time.Minute, 0, 1, 2, 3, 4, 5)
	// Window covering samples 2..4.
	w := s.Slice(start.Add(2*time.Minute), start.Add(5*time.Minute))
	if w.Len() != 3 || w.Values[0] != 2 || w.Values[2] != 4 {
		t.Errorf("Slice = %v", w.Values)
	}
	if !w.Start.Equal(start.Add(2 * time.Minute)) {
		t.Errorf("Slice start = %v", w.Start)
	}
	// Window larger than the series is clipped.
	all := s.Slice(start.Add(-time.Hour), start.Add(time.Hour))
	if all.Len() != 6 {
		t.Errorf("clipped Slice len = %d", all.Len())
	}
	// Empty window.
	e := s.Slice(start.Add(3*time.Minute), start.Add(3*time.Minute))
	if e.Len() != 0 {
		t.Errorf("empty Slice len = %d", e.Len())
	}
	// Mid-interval from rounds up to the next grid point.
	m := s.Slice(start.Add(90*time.Second), start.Add(4*time.Minute))
	if m.Len() != 2 || m.Values[0] != 2 {
		t.Errorf("mid-interval Slice = %v", m.Values)
	}
}

func TestSeriesStats(t *testing.T) {
	s := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute, 1, math.NaN(), 3)
	mean, std := s.Stats()
	if mean != 2 {
		t.Errorf("mean = %g", mean)
	}
	if !mathx.AlmostEqual(std, math.Sqrt(2), 1e-12) {
		t.Errorf("std = %g", std)
	}
	one := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute, 5)
	_, std = one.Stats()
	if std != 0 {
		t.Errorf("single-sample std = %g, want 0", std)
	}
	empty := mustSeries(t, idA, Date(2008, time.May, 29), time.Minute)
	mean, _ = empty.Stats()
	if !math.IsNaN(mean) {
		t.Error("empty Stats mean should be NaN")
	}
}

func TestResample(t *testing.T) {
	start := Date(2008, time.May, 29)
	s := mustSeries(t, idA, start, time.Minute, 1, 3, 5, 7, 9)
	r, err := s.Resample(2 * time.Minute)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	want := []float64{2, 6, 9} // last bucket is partial
	if r.Len() != 3 {
		t.Fatalf("Resample len = %d", r.Len())
	}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Errorf("Resample[%d] = %g, want %g", i, r.Values[i], want[i])
		}
	}
	if _, err := s.Resample(90 * time.Second); err == nil {
		t.Error("non-multiple step: want error")
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("zero step: want error")
	}
	// NaNs are skipped; an all-NaN bucket stays NaN.
	n := mustSeries(t, idA, start, time.Minute, math.NaN(), 4, math.NaN(), math.NaN())
	r, err = n.Resample(2 * time.Minute)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	if r.Values[0] != 4 || !math.IsNaN(r.Values[1]) {
		t.Errorf("NaN resample = %v", r.Values)
	}
}

func TestAlignPair(t *testing.T) {
	start := Date(2008, time.May, 29)
	a := mustSeries(t, idA, start, time.Minute, 1, 2, 3, 4)
	b := mustSeries(t, idB, start.Add(time.Minute), time.Minute, 20, 30, 40, 50)
	pts, from, err := AlignPair(a, b)
	if err != nil {
		t.Fatalf("AlignPair: %v", err)
	}
	if !from.Equal(start.Add(time.Minute)) {
		t.Errorf("aligned start = %v", from)
	}
	want := []mathx.Point2{{X: 2, Y: 20}, {X: 3, Y: 30}, {X: 4, Y: 40}}
	if len(pts) != len(want) {
		t.Fatalf("aligned %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("pts[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

func TestAlignPairNaNsDropped(t *testing.T) {
	start := Date(2008, time.May, 29)
	a := mustSeries(t, idA, start, time.Minute, 1, math.NaN(), 3)
	b := mustSeries(t, idB, start, time.Minute, 10, 20, 30)
	pts, _, err := AlignPair(a, b)
	if err != nil {
		t.Fatalf("AlignPair: %v", err)
	}
	if len(pts) != 2 || pts[1] != (mathx.Point2{X: 3, Y: 30}) {
		t.Errorf("pts = %+v", pts)
	}
}

func TestAlignPairErrors(t *testing.T) {
	start := Date(2008, time.May, 29)
	a := mustSeries(t, idA, start, time.Minute, 1, 2)
	b := mustSeries(t, idB, start, 2*time.Minute, 1, 2)
	if _, _, err := AlignPair(a, b); err == nil {
		t.Error("step mismatch: want error")
	}
	c := mustSeries(t, idB, start.Add(30*time.Second), time.Minute, 1, 2)
	if _, _, err := AlignPair(a, c); err == nil {
		t.Error("out-of-phase starts: want error")
	}
	d := mustSeries(t, idB, start.Add(time.Hour), time.Minute, 1, 2)
	if _, _, err := AlignPair(a, d); err == nil {
		t.Error("no overlap: want error")
	}
}

// Property: aligned points never exceed the shorter overlap and every point
// is drawn from the respective series values.
func TestAlignPairProperty(t *testing.T) {
	start := Date(2008, time.June, 1)
	f := func(la, lb uint8, offset uint8) bool {
		a := &Series{ID: idA, Start: start, Step: time.Minute}
		b := &Series{ID: idB, Start: start.Add(time.Duration(offset%10) * time.Minute), Step: time.Minute}
		for i := 0; i < int(la)%50; i++ {
			a.Values = append(a.Values, float64(i))
		}
		for i := 0; i < int(lb)%50; i++ {
			b.Values = append(b.Values, float64(100+i))
		}
		pts, _, err := AlignPair(a, b)
		if err != nil {
			return true // disjoint or empty: fine
		}
		if len(pts) > a.Len() || len(pts) > b.Len() {
			return false
		}
		for _, p := range pts {
			if p.X < 0 || p.X >= 50 || p.Y < 100 || p.Y >= 150 {
				return false
			}
			// The alignment preserves the lag: y = x + 100 + lag.
			if p.Y-p.X != pts[0].Y-pts[0].X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataset(t *testing.T) {
	d := NewDataset()
	start := Date(2008, time.May, 29)
	d.Add(mustSeries(t, idB, start, time.Minute, 1))
	d.Add(mustSeries(t, idA, start, time.Minute, 2))
	id3 := MeasurementID{Machine: "host1", Metric: "mem"}
	d.Add(mustSeries(t, id3, start, time.Minute, 3))
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	ids := d.IDs()
	if ids[0] != idA || ids[1] != id3 || ids[2] != idB {
		t.Errorf("IDs order = %v", ids)
	}
	if d.Get(idA).Values[0] != 2 {
		t.Error("Get returned wrong series")
	}
	if d.Get(MeasurementID{Machine: "nope"}) != nil {
		t.Error("Get of absent ID should be nil")
	}
	machines := d.Machines()
	if len(machines) != 2 || machines[0] != "host1" || machines[1] != "host2" {
		t.Errorf("Machines = %v", machines)
	}
	pairs := d.Pairs()
	if len(pairs) != 3 {
		t.Errorf("Pairs = %d, want l(l-1)/2 = 3", len(pairs))
	}
	sliced := d.Slice(start, start.Add(time.Minute))
	if sliced.Get(idA).Len() != 1 {
		t.Error("Slice should keep one sample")
	}
}
