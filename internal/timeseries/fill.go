package timeseries

import "math"

// FillForward replaces NaN samples that follow at least one finite sample
// with the most recent finite value (leading NaNs are left as-is). It
// returns the number of samples filled. Useful before AlignPair when short
// collection gaps should not break the Markov chain.
func (s *Series) FillForward() int {
	filled := 0
	last := math.NaN()
	for i, v := range s.Values {
		if math.IsNaN(v) {
			if !math.IsNaN(last) {
				s.Values[i] = last
				filled++
			}
			continue
		}
		last = v
	}
	return filled
}

// Interpolate linearly fills interior NaN runs bounded by finite samples
// on both sides; leading and trailing NaNs are left untouched. It returns
// the number of samples filled.
func (s *Series) Interpolate() int {
	filled := 0
	n := len(s.Values)
	i := 0
	for i < n {
		if !math.IsNaN(s.Values[i]) {
			i++
			continue
		}
		// A NaN run [i, j).
		j := i
		for j < n && math.IsNaN(s.Values[j]) {
			j++
		}
		if i > 0 && j < n {
			lo := s.Values[i-1]
			hi := s.Values[j]
			span := float64(j - (i - 1))
			for k := i; k < j; k++ {
				frac := float64(k-(i-1)) / span
				s.Values[k] = lo + (hi-lo)*frac
				filled++
			}
		}
		i = j
	}
	return filled
}

// Gaps returns the number of NaN samples in the series.
func (s *Series) Gaps() int {
	n := 0
	for _, v := range s.Values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}
