// Package timeseries provides the regular-interval time-series types the
// monitoring pipeline works with: single measurements as Series, collections
// of measurements as Dataset, pairwise alignment into 2-D points for the
// correlation models, and calendar helpers matching the paper's evaluation
// dates (May 29 – June 27, 2008, sampled every 6 minutes).
//
// A MeasurementID names a metric on a machine; the canonical string form
// "machine/metric" (and the pair form "a/x|b/y") is what rendezvous
// hashing in the shard layer keys on, so it must stay stable across
// releases.
package timeseries
