package alarm

import (
	"sync"
	"time"
)

// Escalator is a sink wrapper implementing a simple escalation policy:
// alarms pass through unchanged, and when the same condition (Alarm.Key)
// fires Count times within Window, one escalated copy at SeverityCritical
// is published as well. A condition escalates at most once per Window.
//
// Place the Escalator *before* any Deduper so it sees every raw alarm.
type Escalator struct {
	Next   Sink
	Count  int
	Window time.Duration

	mu    sync.Mutex
	seen  map[string][]time.Time
	fired map[string]time.Time
}

// NewEscalator wraps next: count alarms with one key within window
// escalate. count < 2 disables escalation (pure pass-through).
func NewEscalator(next Sink, count int, window time.Duration) *Escalator {
	return &Escalator{
		Next:  next,
		Count: count, Window: window,
		seen:  make(map[string][]time.Time),
		fired: make(map[string]time.Time),
	}
}

var _ Sink = (*Escalator)(nil)

// Publish implements Sink.
func (e *Escalator) Publish(a Alarm) {
	e.Next.Publish(a)
	if e.Count < 2 || a.Severity >= SeverityCritical {
		return
	}
	key := a.Key()
	e.mu.Lock()
	times := append(e.seen[key], a.Time)
	// Drop entries older than the window (alarm streams are in time
	// order per condition).
	cut := 0
	for cut < len(times) && a.Time.Sub(times[cut]) >= e.Window {
		cut++
	}
	times = times[cut:]
	e.seen[key] = times
	escalate := len(times) >= e.Count
	if escalate {
		if last, ok := e.fired[key]; ok && a.Time.Sub(last) < e.Window {
			escalate = false
		}
	}
	if escalate {
		e.fired[key] = a.Time
		e.seen[key] = nil
	}
	e.mu.Unlock()
	if escalate {
		esc := a
		esc.Severity = SeverityCritical
		esc.Message = "escalated: repeated condition — " + a.Message
		obsEscalations.Inc()
		countRaised(esc)
		e.Next.Publish(esc)
	}
}
