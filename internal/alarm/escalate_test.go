package alarm

import (
	"testing"
	"time"

	"mcorr/internal/obs"
)

// Boundary semantics under test: an alarm ages out of the window when it
// is exactly Window old (>=), while re-escalation of a condition is
// allowed again exactly Window after the last escalation (<).

func TestEscalatorThresholdExactlyMet(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 2, 30*time.Minute)
	// Second alarm exactly Window after the first: the first has aged out
	// at the comparison instant, so the pair never coexists in the window.
	e.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	e.Publish(mkAlarm(t0.Add(30*time.Minute), ScopePair, SeverityWarning))
	if m.Len() != 2 {
		t.Fatalf("published = %d, want 2 (no escalation at exact window age)", m.Len())
	}
	// One nanosecond tighter and both fall inside the window: escalate.
	var m2 MemorySink
	e2 := NewEscalator(&m2, 2, 30*time.Minute)
	e2.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	e2.Publish(mkAlarm(t0.Add(30*time.Minute-time.Nanosecond), ScopePair, SeverityWarning))
	alarms := m2.Alarms()
	if len(alarms) != 3 {
		t.Fatalf("published = %d, want 3 (2 originals + escalation)", len(alarms))
	}
	if alarms[2].Severity != SeverityCritical {
		t.Errorf("escalated severity = %v", alarms[2].Severity)
	}
}

func TestEscalatorReescalationAtExactWindow(t *testing.T) {
	var m MemorySink
	w := time.Hour
	e := NewEscalator(&m, 2, w)
	// First escalation fires at te = t0+1m.
	e.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	e.Publish(mkAlarm(t0.Add(time.Minute), ScopePair, SeverityWarning))
	te := t0.Add(time.Minute)
	if crit := criticalCount(m.Alarms()); crit != 1 {
		t.Fatalf("criticals after first burst = %d, want 1", crit)
	}
	// A second burst within the suppression window repeats the condition
	// but must not re-escalate.
	e.Publish(mkAlarm(te.Add(29*time.Minute), ScopePair, SeverityWarning))
	e.Publish(mkAlarm(te.Add(30*time.Minute), ScopePair, SeverityWarning))
	if crit := criticalCount(m.Alarms()); crit != 1 {
		t.Fatalf("criticals inside suppression window = %d, want 1", crit)
	}
	// Exactly Window after the escalation the suppression lapses: the next
	// qualifying alarm escalates again (the burst above is still recent
	// enough to count toward the threshold).
	e.Publish(mkAlarm(te.Add(w), ScopePair, SeverityWarning))
	if crit := criticalCount(m.Alarms()); crit != 2 {
		t.Fatalf("criticals at exactly te+window = %d, want 2", crit)
	}
}

func criticalCount(alarms []Alarm) int {
	n := 0
	for _, a := range alarms {
		if a.Severity == SeverityCritical {
			n++
		}
	}
	return n
}

// TestEscalatedAlarmCountedExactlyOnce pins the metric contract of the
// manager's sink chain (CountingSink → Escalator → downstream): original
// alarms are counted by the CountingSink they pass through, escalated
// copies are counted inside the Escalator — each alarm lands in
// mcorr_alarm_raised_total exactly once.
func TestEscalatedAlarmCountedExactlyOnce(t *testing.T) {
	raised := obs.Default().CounterVec("mcorr_alarm_raised_total",
		"Alarms published through a CountingSink, by severity and scope.",
		"severity", "scope")
	warnBefore := raised.With("warning", "pair").Value()
	critBefore := raised.With("critical", "pair").Value()

	var m MemorySink
	sink := CountingSink{Next: NewEscalator(&m, 2, time.Hour)}
	sink.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	sink.Publish(mkAlarm(t0.Add(time.Minute), ScopePair, SeverityWarning))

	if m.Len() != 3 {
		t.Fatalf("downstream saw %d alarms, want 3", m.Len())
	}
	if got := raised.With("warning", "pair").Value() - warnBefore; got != 2 {
		t.Errorf("warning/pair counted %d times, want 2", got)
	}
	if got := raised.With("critical", "pair").Value() - critBefore; got != 1 {
		t.Errorf("critical/pair (escalated) counted %d times, want exactly 1", got)
	}
}

// TestCountingSinkDoubleWrapGuard: wrapping an already-counting sink in a
// second CountingSink double-counts by construction — the manager guards
// against it by type assertion. Verify both halves of that contract.
func TestCountingSinkDoubleWrapGuard(t *testing.T) {
	raised := obs.Default().CounterVec("mcorr_alarm_raised_total",
		"Alarms published through a CountingSink, by severity and scope.",
		"severity", "scope")
	before := raised.With("info", "system").Value()

	var m MemorySink
	inner := Sink(CountingSink{Next: &m})
	// The guard the manager applies in Config.withDefaults:
	if _, counted := inner.(CountingSink); !counted {
		t.Fatal("type assertion failed to detect an existing CountingSink")
	}
	inner.Publish(mkAlarm(t0, ScopeSystem, SeverityInfo))
	if got := raised.With("info", "system").Value() - before; got != 1 {
		t.Fatalf("single wrap counted %d times, want 1", got)
	}

	// Without the guard, the naive double wrap counts twice — the behavior
	// the assertion exists to prevent.
	outer := CountingSink{Next: inner}
	outer.Publish(mkAlarm(t0.Add(time.Minute), ScopeSystem, SeverityInfo))
	if got := raised.With("info", "system").Value() - before; got != 3 {
		t.Fatalf("double wrap counted %d total, want 3 (1 + 2)", got)
	}
}
