package alarm

import (
	"bytes"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"mcorr/internal/timeseries"
)

var (
	idA = timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}
	idB = timeseries.MeasurementID{Machine: "m2", Metric: "net"}
	t0  = timeseries.TestStart
)

func mkAlarm(tm time.Time, scope Scope, sev Severity) Alarm {
	return Alarm{
		Time: tm, Severity: sev, Scope: scope,
		Measurement: idA, Peer: idB, Score: 0.12, Threshold: 0.5,
		Message: "fitness collapsed",
	}
}

func TestEnumStrings(t *testing.T) {
	if SeverityInfo.String() != "info" || SeverityWarning.String() != "warning" || SeverityCritical.String() != "critical" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() == "" {
		t.Error("unknown severity should render")
	}
	if ScopePair.String() != "pair" || ScopeMeasurement.String() != "measurement" || ScopeSystem.String() != "system" {
		t.Error("scope names wrong")
	}
	if Scope(9).String() == "" {
		t.Error("unknown scope should render")
	}
}

func TestAlarmString(t *testing.T) {
	s := mkAlarm(t0, ScopePair, SeverityCritical).String()
	for _, want := range []string{"critical", "pair", "cpu@m1", "net@m2", "0.1200", "fitness collapsed"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	sys := mkAlarm(t0, ScopeSystem, SeverityInfo).String()
	if strings.Contains(sys, "cpu@m1") {
		t.Error("system alarm should not name a measurement")
	}
}

func TestAlarmKeyStableAcrossTimeAndScore(t *testing.T) {
	a := mkAlarm(t0, ScopePair, SeverityWarning)
	b := mkAlarm(t0.Add(time.Hour), ScopePair, SeverityWarning)
	b.Score = 0.01
	if a.Key() != b.Key() {
		t.Error("same condition should share a key")
	}
	c := mkAlarm(t0, ScopeMeasurement, SeverityWarning)
	if a.Key() == c.Key() {
		t.Error("different scopes should differ")
	}
}

func TestMemorySink(t *testing.T) {
	var m MemorySink
	m.Publish(mkAlarm(t0, ScopeSystem, SeverityInfo))
	m.Publish(mkAlarm(t0, ScopeMeasurement, SeverityWarning))
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	got := m.Alarms()
	got[0].Score = 99 // must not affect the sink's copy
	if m.Alarms()[0].Score == 99 {
		t.Error("Alarms should return a copy")
	}
	m.Clear()
	if m.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestMemorySinkByMachine(t *testing.T) {
	var m MemorySink
	a := mkAlarm(t0, ScopeMeasurement, SeverityWarning) // machine m1
	m.Publish(a)
	m.Publish(a)
	b := mkAlarm(t0, ScopePair, SeverityWarning)
	b.Measurement = idB // machine m2
	m.Publish(b)
	m.Publish(mkAlarm(t0, ScopeSystem, SeverityInfo)) // no machine
	got := m.ByMachine()
	if len(got) != 2 || got[0].Machine != "m1" || got[0].Count != 2 || got[1].Machine != "m2" || got[1].Count != 1 {
		t.Errorf("ByMachine = %+v", got)
	}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	s := &LogSink{Logger: log.New(&buf, "", 0)}
	s.Publish(mkAlarm(t0, ScopePair, SeverityCritical))
	if !strings.Contains(buf.String(), "critical") {
		t.Errorf("log output = %q", buf.String())
	}
	// Nil logger must not panic.
	(&LogSink{}).Publish(mkAlarm(t0, ScopePair, SeverityInfo))
}

func TestChannelSinkDropsWhenFull(t *testing.T) {
	c := NewChannelSink(2)
	for i := 0; i < 5; i++ {
		c.Publish(mkAlarm(t0, ScopeSystem, SeverityInfo))
	}
	if len(c.C) != 2 {
		t.Errorf("buffered = %d", len(c.C))
	}
	if c.Dropped() != 3 {
		t.Errorf("Dropped = %d", c.Dropped())
	}
	// Zero capacity is clamped to 1.
	if cap(NewChannelSink(0).C) != 1 {
		t.Error("capacity clamp failed")
	}
}

func TestMulti(t *testing.T) {
	var a, b MemorySink
	Multi{&a, &b}.Publish(mkAlarm(t0, ScopeSystem, SeverityInfo))
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("Multi should fan out")
	}
}

func TestDeduperSuppressesWithinHoldoff(t *testing.T) {
	var m MemorySink
	d := NewDeduper(&m, time.Hour)
	base := mkAlarm(t0, ScopePair, SeverityWarning)
	d.Publish(base)
	repeat := base
	repeat.Time = t0.Add(10 * time.Minute)
	d.Publish(repeat) // suppressed
	later := base
	later.Time = t0.Add(2 * time.Hour)
	d.Publish(later) // past holdoff
	other := base
	other.Severity = SeverityCritical // different key
	other.Time = t0.Add(time.Minute)
	d.Publish(other)
	if m.Len() != 3 {
		t.Errorf("published = %d, want 3", m.Len())
	}
}

func TestDeduperConcurrent(t *testing.T) {
	var m MemorySink
	d := NewDeduper(&m, time.Hour)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
		}()
	}
	wg.Wait()
	if m.Len() != 1 {
		t.Errorf("published = %d, want exactly 1", m.Len())
	}
}

func TestEscalatorPassThrough(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 0, time.Hour) // disabled
	e.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	if m.Len() != 1 {
		t.Errorf("published = %d", m.Len())
	}
}

func TestEscalatorEscalatesRepeats(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 3, time.Hour)
	for i := 0; i < 3; i++ {
		a := mkAlarm(t0.Add(time.Duration(i)*10*time.Minute), ScopePair, SeverityWarning)
		e.Publish(a)
	}
	// 3 originals + 1 escalated critical.
	alarms := m.Alarms()
	if len(alarms) != 4 {
		t.Fatalf("published = %d, want 4", len(alarms))
	}
	last := alarms[3]
	if last.Severity != SeverityCritical || !strings.Contains(last.Message, "escalated") {
		t.Errorf("escalated alarm = %+v", last)
	}
	// Further repeats within the window do not re-escalate.
	e.Publish(mkAlarm(t0.Add(35*time.Minute), ScopePair, SeverityWarning))
	if m.Len() != 5 {
		t.Errorf("published = %d, want 5 (no second escalation)", m.Len())
	}
	// After the window passes, the condition can escalate again.
	for i := 0; i < 3; i++ {
		e.Publish(mkAlarm(t0.Add(2*time.Hour+time.Duration(i)*5*time.Minute), ScopePair, SeverityWarning))
	}
	alarms = m.Alarms()
	crit := 0
	for _, a := range alarms {
		if a.Severity == SeverityCritical {
			crit++
		}
	}
	if crit != 2 {
		t.Errorf("critical alarms = %d, want 2", crit)
	}
}

func TestEscalatorSeparateKeys(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 2, time.Hour)
	a := mkAlarm(t0, ScopePair, SeverityWarning)
	b := mkAlarm(t0, ScopeMeasurement, SeverityWarning) // different key
	e.Publish(a)
	e.Publish(b)
	if m.Len() != 2 {
		t.Errorf("different keys should not escalate: %d", m.Len())
	}
}

func TestEscalatorOldAlarmsExpire(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 2, 30*time.Minute)
	e.Publish(mkAlarm(t0, ScopePair, SeverityWarning))
	e.Publish(mkAlarm(t0.Add(time.Hour), ScopePair, SeverityWarning)) // outside window
	if m.Len() != 2 {
		t.Errorf("expired repeats should not escalate: %d", m.Len())
	}
}

func TestEscalatorIgnoresCritical(t *testing.T) {
	var m MemorySink
	e := NewEscalator(&m, 2, time.Hour)
	e.Publish(mkAlarm(t0, ScopeSystem, SeverityCritical))
	e.Publish(mkAlarm(t0.Add(time.Minute), ScopeSystem, SeverityCritical))
	if m.Len() != 2 {
		t.Errorf("critical alarms must not re-escalate: %d", m.Len())
	}
}
