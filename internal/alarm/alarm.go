package alarm

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"mcorr/internal/timeseries"
)

// Severity grades an alarm.
type Severity int

const (
	// SeverityInfo is advisory (mild score dip).
	SeverityInfo Severity = iota + 1
	// SeverityWarning needs operator attention.
	SeverityWarning
	// SeverityCritical indicates a likely ongoing problem.
	SeverityCritical
)

// String returns the severity's name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Scope says which level of the paper's three-level fitness hierarchy the
// alarm came from.
type Scope int

const (
	// ScopePair is one measurement pair (Q^{a,b}).
	ScopePair Scope = iota + 1
	// ScopeMeasurement is one measurement (Q^a).
	ScopeMeasurement
	// ScopeSystem is the whole system (Q).
	ScopeSystem
)

// String returns the scope's name.
func (s Scope) String() string {
	switch s {
	case ScopePair:
		return "pair"
	case ScopeMeasurement:
		return "measurement"
	case ScopeSystem:
		return "system"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Alarm is one problem notification.
type Alarm struct {
	Time     time.Time
	Severity Severity
	Scope    Scope
	// Measurement is set for ScopeMeasurement and ScopePair.
	Measurement timeseries.MeasurementID
	// Peer is the second measurement for ScopePair.
	Peer timeseries.MeasurementID
	// Score is the fitness (or probability) that breached the threshold.
	Score float64
	// Threshold is the configured limit that was breached.
	Threshold float64
	// Message is a human-readable summary.
	Message string
}

// Key returns a deduplication key: alarms with equal keys describe the
// same ongoing condition.
func (a Alarm) Key() string {
	return fmt.Sprintf("%s|%s|%s|%s", a.Scope, a.Severity, a.Measurement, a.Peer)
}

// String renders the alarm for logs.
func (a Alarm) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s %s score=%.4f thr=%.4f", a.Severity, a.Time.Format(time.RFC3339), a.Scope, a.Score, a.Threshold)
	if a.Scope != ScopeSystem {
		fmt.Fprintf(&b, " %s", a.Measurement)
	}
	if a.Scope == ScopePair {
		fmt.Fprintf(&b, "~%s", a.Peer)
	}
	if a.Message != "" {
		fmt.Fprintf(&b, ": %s", a.Message)
	}
	return b.String()
}

// Sink consumes alarms. Implementations must be safe for concurrent use.
type Sink interface {
	Publish(Alarm)
}

// MemorySink records alarms for inspection (tests, reports).
type MemorySink struct {
	mu     sync.Mutex
	alarms []Alarm
}

var _ Sink = (*MemorySink)(nil)

// Publish implements Sink.
func (m *MemorySink) Publish(a Alarm) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alarms = append(m.alarms, a)
}

// Alarms returns a copy of the recorded alarms in publish order.
func (m *MemorySink) Alarms() []Alarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alarm(nil), m.alarms...)
}

// Len returns the number of recorded alarms.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.alarms)
}

// Clear discards recorded alarms.
func (m *MemorySink) Clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alarms = nil
}

// ByMachine groups the recorded alarms by the machine of their primary
// measurement and returns counts sorted by machine name.
func (m *MemorySink) ByMachine() []MachineCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[string]int)
	for _, a := range m.alarms {
		if a.Scope != ScopeSystem {
			counts[a.Measurement.Machine]++
		}
	}
	out := make([]MachineCount, 0, len(counts))
	for machine, n := range counts {
		out = append(out, MachineCount{Machine: machine, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// MachineCount is an alarm tally for one machine.
type MachineCount struct {
	Machine string
	Count   int
}

// LogSink writes alarms to a standard logger.
type LogSink struct {
	Logger *log.Logger
}

var _ Sink = (*LogSink)(nil)

// Publish implements Sink.
func (l *LogSink) Publish(a Alarm) {
	if l.Logger != nil {
		l.Logger.Print(a.String())
	}
}

// ChannelSink forwards alarms to a channel, dropping when full so a slow
// consumer can never stall detection.
type ChannelSink struct {
	C chan Alarm
	// Dropped counts alarms discarded because C was full.
	mu      sync.Mutex
	dropped int
}

// NewChannelSink returns a sink with the given buffer capacity.
func NewChannelSink(capacity int) *ChannelSink {
	if capacity < 1 {
		capacity = 1
	}
	return &ChannelSink{C: make(chan Alarm, capacity)}
}

var _ Sink = (*ChannelSink)(nil)

// Publish implements Sink.
func (c *ChannelSink) Publish(a Alarm) {
	select {
	case c.C <- a:
	default:
		c.mu.Lock()
		c.dropped++
		c.mu.Unlock()
	}
}

// Dropped returns how many alarms were discarded.
func (c *ChannelSink) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Multi fans an alarm out to several sinks.
type Multi []Sink

var _ Sink = (Multi)(nil)

// Publish implements Sink.
func (m Multi) Publish(a Alarm) {
	for _, s := range m {
		s.Publish(a)
	}
}

// Deduper suppresses alarms whose Key repeats within Holdoff of the last
// published instance — one ongoing problem produces one alarm per holdoff
// window rather than one per sample.
type Deduper struct {
	Next    Sink
	Holdoff time.Duration

	mu   sync.Mutex
	last map[string]time.Time
}

// NewDeduper wraps next with a holdoff window.
func NewDeduper(next Sink, holdoff time.Duration) *Deduper {
	return &Deduper{Next: next, Holdoff: holdoff, last: make(map[string]time.Time)}
}

var _ Sink = (*Deduper)(nil)

// Publish implements Sink. Suppression is keyed on Alarm.Key and uses the
// alarm's own timestamp, so it works for replayed historical streams too.
func (d *Deduper) Publish(a Alarm) {
	d.mu.Lock()
	last, seen := d.last[a.Key()]
	if seen && a.Time.Sub(last) < d.Holdoff {
		d.mu.Unlock()
		obsSuppressed.Inc()
		return
	}
	d.last[a.Key()] = a.Time
	d.mu.Unlock()
	d.Next.Publish(a)
}
