// Package alarm carries problem notifications from the detection layer to
// operators: typed alarms with severities and scopes, pluggable sinks, and
// a deduplicating wrapper that suppresses repeats of the same alarm within
// a holdoff window (one real problem spans many consecutive samples).
//
// # Scopes
//
// Alarms mirror the paper's three aggregation levels: ScopePair for a
// broken link (Q^{a,b} or the transition probability below δ),
// ScopeMeasurement for a sick measurement (Q^a below threshold), and
// ScopeSystem for a system-wide drop (Q below threshold).
//
// # Sinks
//
// Sink is the single consumer interface. MemorySink records for tests and
// reports, LogSink prints, ChannelSink feeds a channel, Multi fans out,
// Deduper suppresses repeats within a holdoff, Escalator promotes repeated
// conditions to critical, and CountingSink — wrapped around every sink a
// manager.Config supplies — publishes alarm volume by severity and scope
// to the obs registry (mcorr_alarm_raised_total).
package alarm
