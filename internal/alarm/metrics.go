package alarm

import "mcorr/internal/obs"

// Process-global alarm metrics (mcorr_alarm_*). Severity × scope is a
// small fixed label space, so the children are resolved eagerly and
// Publish never touches the vec.
var (
	obsRaised = obs.Default().CounterVec("mcorr_alarm_raised_total",
		"Alarms published through a CountingSink, by severity and scope.",
		"severity", "scope")
	obsEscalations = obs.Default().Counter("mcorr_alarm_escalations_total",
		"Escalated critical alarms emitted by Escalator.")
	obsSuppressed = obs.Default().Counter("mcorr_alarm_suppressed_total",
		"Alarms suppressed by a Deduper holdoff window.")
)

// raisedCounters caches the severity × scope children.
var raisedCounters = func() map[Severity]map[Scope]*obs.Counter {
	out := make(map[Severity]map[Scope]*obs.Counter)
	for _, sev := range []Severity{SeverityInfo, SeverityWarning, SeverityCritical} {
		out[sev] = make(map[Scope]*obs.Counter)
		for _, sc := range []Scope{ScopePair, ScopeMeasurement, ScopeSystem} {
			out[sev][sc] = obsRaised.With(sev.String(), sc.String())
		}
	}
	return out
}()

// countRaised increments the raised counter for an alarm; unusual
// severity/scope values fall back to the (slower) vec lookup so nothing
// is dropped.
func countRaised(a Alarm) {
	if byScope, ok := raisedCounters[a.Severity]; ok {
		if c, ok := byScope[a.Scope]; ok {
			c.Inc()
			return
		}
	}
	obsRaised.With(a.Severity.String(), a.Scope.String()).Inc()
}

// CountingSink counts every alarm into mcorr_alarm_raised_total (by
// severity and scope) and forwards it to Next (nil Next just counts) —
// alarm volume becomes visible on the ops surface without a custom sink.
// The manager wraps its configured sink in one automatically.
type CountingSink struct {
	Next Sink
}

var _ Sink = CountingSink{}

// Publish implements Sink.
func (c CountingSink) Publish(a Alarm) {
	countRaised(a)
	if c.Next != nil {
		c.Next.Publish(a)
	}
}
