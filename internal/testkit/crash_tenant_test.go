package testkit_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
)

// tenantSteps extracts the STEP lines carrying " tenant=<name>" and
// strips the suffix, so the result is comparable with a single-tenant
// run's StepMap keyed the same way.
func tenantSteps(lines []string, name string) []string {
	suffix := " tenant=" + name
	var out []string
	for _, l := range lines {
		if strings.HasPrefix(l, "STEP ") && strings.HasSuffix(l, suffix) {
			out = append(out, strings.TrimSuffix(l, suffix))
		}
	}
	return out
}

// TestCrashRecoveryTenantsSharded is the multi-tenant durability
// acceptance test: run two tenants with disjoint workloads in ONE
// sharded durable process, SIGKILL it mid-stream past a checkpoint,
// restart against the same -data-dir, and require each tenant's union
// STEP trajectory to be bit-identical to (a) the same two-tenant
// process run uninterrupted and (b) a dedicated single-tenant process
// fed only that tenant's workload. Tenancy, sharding and crash
// recovery must all be invisible in the %.17g trajectories.
func TestCrashRecoveryTenantsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csvs := map[string]string{
		"alpha": filepath.Join(dir, "alpha.csv"),
		"beta":  filepath.Join(dir, "beta.csv"),
	}
	testkit.WriteGroupCSV(t, csvs["alpha"], simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 7,
	})
	testkit.WriteGroupCSV(t, csvs["beta"], simulator.GroupConfig{
		Name: "B", Machines: 3, Days: 2, Seed: 13,
	})
	args := func(tenantArg, dataDir, pace string) []string {
		return []string{
			"-tenant", tenantArg,
			"-train-days", "1",
			"-max-measurements", "8",
			"-data-dir", dataDir,
			"-checkpoint-every", "40",
			"-fsync", "batch",
			"-shards", "2",
			"-pace", pace,
		}
	}
	both := "alpha=" + csvs["alpha"] + ",beta=" + csvs["beta"]

	// Uninterrupted two-tenant baseline.
	baseline := testkit.Run(t, mcdetect, args(both, filepath.Join(dir, "base"), "0")...)
	want := map[string]map[string]string{}
	for name := range csvs {
		steps := tenantSteps(baseline, name)
		if len(steps) == 0 {
			t.Fatalf("baseline produced no STEP lines for tenant %s", name)
		}
		want[name] = testkit.StepMap(steps)
	}

	// Process-layout equivalence: a dedicated single-tenant process per
	// workload must produce the same trajectory as the co-tenant run.
	for name, csv := range csvs {
		solo := testkit.Run(t, mcdetect, args(name+"="+csv, filepath.Join(dir, "solo-"+name), "0")...)
		got := testkit.StepMap(tenantSteps(solo, name))
		if diffs := testkit.DiffStepMaps(want[name], got); len(diffs) > 0 {
			sort.Strings(diffs)
			t.Fatalf("tenant %s: dedicated process diverges from co-tenant run at %d steps:\n%s",
				name, len(diffs), strings.Join(diffs[:min(10, len(diffs))], "\n"))
		}
	}

	// Crash the two-tenant run mid-stream, past checkpoints for both
	// tenants (the merged clock interleaves them row by row), recover,
	// and stitch each tenant's trajectory back together.
	crashDir := filepath.Join(dir, "crash")
	killed := testkit.RunKillAfterSteps(t, mcdetect, 120, args(both, crashDir, "2ms")...)
	resumed := testkit.Run(t, mcdetect, args(both, crashDir, "0")...)
	for name := range csvs {
		if !tenantRecoveryBanner(resumed, name) {
			t.Fatalf("restart did not report recovery for tenant %s; first lines:\n%s",
				name, strings.Join(resumed[:min(8, len(resumed))], "\n"))
		}
		union := append(tenantSteps(killed, name), tenantSteps(resumed, name)...)
		got := testkit.StepMap(union)
		if diffs := testkit.DiffStepMaps(want[name], got); len(diffs) > 0 {
			sort.Strings(diffs)
			t.Fatalf("tenant %s: crash recovery diverges at %d of %d steps:\n%s",
				name, len(diffs), len(want[name]), strings.Join(diffs[:min(10, len(diffs))], "\n"))
		}
	}
}

func tenantRecoveryBanner(lines []string, name string) bool {
	for _, l := range lines {
		if strings.Contains(l, "recovered from") && strings.Contains(l, "tenant="+name) {
			return true
		}
	}
	return false
}
