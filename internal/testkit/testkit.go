package testkit

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

var (
	buildMu   sync.Mutex
	buildDir  string
	buildMemo = map[string]string{}
)

// BuildBinary compiles the named command package (e.g. "mcorr/cmd/mcdetect")
// and returns the binary path. Builds are memoized per test process, so a
// suite that launches the same binary many times compiles it once.
func BuildBinary(t testing.TB, pkg string) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if bin, ok := buildMemo[pkg]; ok {
		return bin
	}
	if buildDir == "" {
		dir, err := os.MkdirTemp("", "mcorr-testkit-")
		if err != nil {
			t.Fatalf("testkit: temp dir: %v", err)
		}
		buildDir = dir
	}
	bin := filepath.Join(buildDir, path.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("testkit: go build %s: %v\n%s", pkg, err, out)
	}
	buildMemo[pkg] = bin
	return bin
}

// repoRoot walks up from the working directory to the module root so
// BuildBinary resolves package paths regardless of which package's test
// invoked it.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("testkit: getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("testkit: go.mod not found above working directory")
		}
		dir = parent
	}
}

// WriteGroupCSV generates a deterministic synthetic monitoring dataset and
// writes it as CSV — the same data a `mcgen` invocation with these
// parameters would produce.
func WriteGroupCSV(t testing.TB, csvPath string, cfg simulator.GroupConfig) {
	t.Helper()
	ds, _, err := simulator.Generate(cfg)
	if err != nil {
		t.Fatalf("testkit: generate: %v", err)
	}
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatalf("testkit: create %s: %v", csvPath, err)
	}
	defer f.Close()
	if err := timeseries.WriteCSV(f, ds); err != nil {
		t.Fatalf("testkit: write csv: %v", err)
	}
}

// Run executes the binary to completion and returns its stdout split into
// lines. A non-zero exit fails the test with both output streams attached.
func Run(t testing.TB, bin string, args ...string) []string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("testkit: %s %s: %v\nstdout:\n%s\nstderr:\n%s",
			path.Base(bin), strings.Join(args, " "), err, stdout.String(), stderr.String())
	}
	return splitLines(stdout.String())
}

// RunKillAfterSteps starts the binary, watches its stdout, and delivers
// SIGKILL as soon as n "STEP " lines have been observed — an unclean crash
// mid-stream, with no chance for the process to flush or checkpoint. It
// returns every stdout line captured (a few buffered lines may trail the
// kill). The test fails if the process finishes before reaching n steps.
func RunKillAfterSteps(t testing.TB, bin string, n int, args ...string) []string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("testkit: stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("testkit: start %s: %v", path.Base(bin), err)
	}
	var lines []string
	steps := 0
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if strings.HasPrefix(line, "STEP ") {
			steps++
			if steps == n {
				if err := cmd.Process.Kill(); err != nil {
					t.Fatalf("testkit: kill: %v", err)
				}
			}
		}
	}
	_ = cmd.Wait() // the kill makes a non-nil exit the expected outcome
	if steps < n {
		t.Fatalf("testkit: %s finished after %d steps, wanted to kill at %d\nstderr:\n%s",
			path.Base(bin), steps, n, stderr.String())
	}
	return lines
}

// StepMap extracts the per-step fitness lines ("STEP <time> Q=... scored=...")
// keyed by timestamp, later occurrences replacing earlier ones. Feeding it
// the concatenation of a killed run and its recovery run yields the
// trajectory the pair claims to have produced, directly comparable with an
// uninterrupted baseline.
func StepMap(lines []string) map[string]string {
	out := make(map[string]string)
	for _, line := range lines {
		if !strings.HasPrefix(line, "STEP ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		out[fields[1]] = line
	}
	return out
}

// DiffStepMaps compares two step trajectories and returns a description of
// every divergence: timestamps present on one side only, and lines that
// differ byte-for-byte. Empty result means bit-identical trajectories.
func DiffStepMaps(want, got map[string]string) []string {
	var diffs []string
	for ts, w := range want {
		g, ok := got[ts]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("missing step %s", ts))
		case g != w:
			diffs = append(diffs, fmt.Sprintf("step %s:\n  want %q\n  got  %q", ts, w, g))
		}
	}
	for ts := range got {
		if _, ok := want[ts]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra step %s", ts))
		}
	}
	return diffs
}

// SlowSink is fault injection for flow-control tests: it delays every
// AppendBatch by Delay before forwarding to Next, simulating a sink that
// cannot keep up with ingest (the condition the collector's admission
// queue and shed policies exist for). The Next field is typed
// structurally so testkit stays import-cycle-free with the packages
// under test; any store or sink with AppendBatch satisfies it.
type SlowSink struct {
	Next  interface{ AppendBatch([]tsdb.Sample) error }
	Delay time.Duration
}

// AppendBatch sleeps for the configured delay, then forwards the batch.
func (s *SlowSink) AppendBatch(batch []tsdb.Sample) error {
	time.Sleep(s.Delay)
	return s.Next.AppendBatch(batch)
}

func splitLines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
