// Package testkit holds helpers for end-to-end tests that exercise the
// real command binaries: building them once per test process, generating
// deterministic datasets, and running (or killing) them while capturing
// their step-by-step output.
//
// The crash harness (RunKillAfterSteps) SIGKILLs a binary after a given
// number of STEP lines; StepMap and DiffStepMaps then compare the %.17g
// fitness trajectories of crashed-and-recovered runs against uninterrupted
// baselines bit for bit — the acceptance check for both the durable
// pipeline and the sharded scoring fabric.
package testkit
