package testkit_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
)

// shardWorker is one running mcshard process.
type shardWorker struct {
	t      *testing.T
	cmd    *exec.Cmd
	addr   string
	dir    string
	stderr *bytes.Buffer
}

// startShardWorker launches mcshard and parses the LISTEN line. addr ""
// lets the worker pick a free port; a concrete addr restarts a crashed
// worker in place.
func startShardWorker(t *testing.T, bin, dir, addr string) *shardWorker {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	cmd := exec.Command(bin, "-data-dir", dir, "-listen", addr)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("mcshard stdout: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start mcshard: %v", err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("mcshard produced no LISTEN line: %v\nstderr:\n%s", err, stderr.String())
	}
	listen, ok := strings.CutPrefix(strings.TrimSpace(line), "LISTEN ")
	if !ok {
		t.Fatalf("unexpected first mcshard line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	w := &shardWorker{t: t, cmd: cmd, addr: listen, dir: dir, stderr: &stderr}
	t.Cleanup(func() { w.kill() })
	return w
}

// kill delivers SIGKILL — no flush, no checkpoint, no goodbye.
func (w *shardWorker) kill() {
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
		_, _ = w.cmd.Process.Wait()
		w.cmd.Process = nil
	}
}

// runTriggerAfterSteps runs bin to completion, firing trigger once as soon
// as n "STEP " lines have appeared on stdout, and returns all stdout lines.
func runTriggerAfterSteps(t *testing.T, bin string, n int, trigger func(), args ...string) []string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	var lines []string
	steps, fired := 0, false
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if strings.HasPrefix(line, "STEP ") {
			steps++
			if steps >= n && !fired {
				fired = true
				trigger()
			}
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("%s exited: %v\nstderr:\n%s", bin, err, stderr.String())
	}
	if !fired {
		t.Fatalf("run finished after %d steps, before the %d-step trigger", steps, n)
	}
	return lines
}

// TestCrashRecoveryShardWorker is the networked-fabric durability
// acceptance test: SIGKILL one mcshard worker process mid-stream, restart
// it from its on-disk checkpoint on the same address, and require the
// coordinator's merged %.17g STEP trajectory to be bit-identical to both
// an uninterrupted networked run and the in-process shards=4 baseline
// over the same data. Exactly-once outcome return is what makes this
// hold: the replayed rows' outcomes must neither skip nor double-merge.
func TestCrashRecoveryShardWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	mcshard := testkit.BuildBinary(t, "mcorr/cmd/mcshard")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 23,
	})
	const workers = 4
	baseArgs := []string{
		"-data", csv,
		"-train-days", "1",
		"-max-measurements", "12",
		"-checkpoint-every", "40",
		"-print-steps",
	}

	// (A) Uninterrupted in-process baseline at the same shard count.
	baseline := testkit.StepMap(testkit.Run(t, mcdetect,
		append(append([]string(nil), baseArgs...), "-shards", fmt.Sprint(workers))...))
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no STEP lines")
	}

	startFleet := func(sub string) (addrs []string, fleet []*shardWorker) {
		for k := 0; k < workers; k++ {
			w := startShardWorker(t, mcshard, filepath.Join(dir, sub, fmt.Sprint(k)), "")
			fleet = append(fleet, w)
			addrs = append(addrs, w.addr)
		}
		return addrs, fleet
	}
	netArgs := func(addrs []string) []string {
		return append(append([]string(nil), baseArgs...), "-shard-workers", strings.Join(addrs, ","))
	}

	t.Run("uninterrupted", func(t *testing.T) {
		addrs, _ := startFleet("flat")
		got := testkit.StepMap(testkit.Run(t, mcdetect, netArgs(addrs)...))
		requireSameTrajectory(t, baseline, got, "uninterrupted networked run")
	})

	t.Run("worker-crash", func(t *testing.T) {
		addrs, fleet := startFleet("crash")
		victim := 2
		args := append(netArgs(addrs), "-pace", "2ms")
		lines := runTriggerAfterSteps(t, mcdetect, 60, func() {
			fleet[victim].kill()
			// Restart in place: same control address, same checkpoint dir.
			// A brief delay leaves the coordinator mid-stream against a
			// dead worker, exercising the redial + ring-replay path.
			time.Sleep(100 * time.Millisecond)
			fleet[victim] = startShardWorker(t, mcshard, fleet[victim].dir, fleet[victim].addr)
		}, args...)
		requireSameTrajectory(t, baseline, testkit.StepMap(lines), "crash-recovery networked run")
	})
}

// requireSameTrajectory fails unless got covers baseline bit for bit.
func requireSameTrajectory(t *testing.T, baseline, got map[string]string, what string) {
	t.Helper()
	if diffs := testkit.DiffStepMaps(baseline, got); len(diffs) > 0 {
		sort.Strings(diffs)
		show := len(diffs)
		if show > 10 {
			show = 10
		}
		t.Fatalf("%s diverges from in-process baseline at %d of %d steps:\n%s",
			what, len(diffs), len(baseline), strings.Join(diffs[:show], "\n"))
	}
}
