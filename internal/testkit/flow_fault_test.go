package testkit_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mcorr/internal/collector"
	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
	"mcorr/internal/timeseries"
	"mcorr/internal/tsdb"
)

// TestSlowSinkShedsWithoutStalling injects a sink that needs 20ms per
// batch and hammers the server from several agents at once. With a small
// admission queue and the reject policy, overflowing batches must be
// acked stored-0 promptly (no handler ever stalls on the sink), the shed
// counter must move, and the store must hold exactly the samples the
// server acked — the ack stream stays truthful under overload.
func TestSlowSinkShedsWithoutStalling(t *testing.T) {
	store, err := tsdb.NewStore(timeseries.SampleStep, 0)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	slow := &testkit.SlowSink{Next: store, Delay: 20 * time.Millisecond}
	srv, err := collector.NewServer(slow, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.SetFlow(collector.FlowConfig{
		QueueDepth:    2,
		Shed:          collector.ShedReject,
		ThrottleDelay: 10 * time.Millisecond,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	const agents = 4
	const batches = 3
	const perBatch = 8
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	ackedByAgents := 0
	ids := make([]timeseries.MeasurementID, agents)
	for g := 0; g < agents; g++ {
		machine := fmt.Sprintf("flow-%d", g)
		ids[g] = timeseries.MeasurementID{Machine: machine, Metric: "cpu"}
		a, err := collector.Dial(addr.String(), machine)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer a.Close()
		wg.Add(1)
		go func(a *collector.Agent, id timeseries.MeasurementID) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]tsdb.Sample, perBatch)
				for i := range batch {
					batch[i] = tsdb.Sample{
						ID:    id,
						Time:  timeseries.MonitoringStart.Add(time.Duration(b*perBatch+i) * timeseries.SampleStep),
						Value: float64(i),
					}
				}
				err := a.Send(batch)
				var pe *collector.PartialSendError
				switch {
				case err == nil:
				case errors.As(err, &pe) && pe.Err == nil:
					// Shed: acked stored-0 (or a stored prefix), samples
					// stay with the sender. Expected under overload.
				default:
					t.Errorf("Send: %v", err)
					return
				}
			}
			mu.Lock()
			ackedByAgents += a.Sent()
			mu.Unlock()
		}(a, ids[g])
	}
	wg.Wait()
	// Every batch takes at most ~queue*delay to ack even when accepted;
	// anything near this bound means no handler sat stalled on the sink.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sends took %v with a slow sink — handlers stalled", elapsed)
	}
	if st := srv.Stats(); st.Shed == 0 {
		t.Errorf("slow sink never shed: %+v", st)
	}
	stored := 0
	for _, id := range ids {
		stored += store.Len(id)
	}
	if stored != ackedByAgents {
		t.Errorf("store holds %d samples but agents were acked %d — acks must stay truthful under shedding", stored, ackedByAgents)
	}
}

// TestCrashRecoveryWithFlowControl reruns the durability acceptance test
// with the monitor's bounded row queue enabled: SIGKILL mid-stream,
// recover, and require the trajectory to be bit-identical to an
// uninterrupted baseline that scored inline — proving the flow-control
// layer never reorders or sheds between WAL and scorer.
func TestCrashRecoveryWithFlowControl(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 11,
	})
	args := func(dataDir, pace string, extra ...string) []string {
		base := []string{
			"-data", csv,
			"-train-days", "1",
			"-max-measurements", "12",
			"-data-dir", dataDir,
			"-checkpoint-every", "40",
			"-fsync", "batch",
			"-pace", pace,
		}
		return append(base, extra...)
	}

	// Baseline scores inline; the crash run uses a row queue of 8.
	baseline := testkit.StepMap(testkit.Run(t, mcdetect, args(filepath.Join(dir, "base"), "0")...))
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no STEP lines")
	}
	crashDir := filepath.Join(dir, "crash")
	killed := testkit.RunKillAfterSteps(t, mcdetect, 60, args(crashDir, "2ms", "-score-queue", "8")...)
	resumed := testkit.Run(t, mcdetect, args(crashDir, "0", "-score-queue", "8")...)

	got := testkit.StepMap(append(append([]string(nil), killed...), resumed...))
	if diffs := testkit.DiffStepMaps(baseline, got); len(diffs) > 0 {
		sort.Strings(diffs)
		max := len(diffs)
		if max > 10 {
			max = 10
		}
		t.Fatalf("flow-controlled trajectory diverges from inline baseline at %d of %d steps:\n%s",
			len(diffs), len(baseline), strings.Join(diffs[:max], "\n"))
	}
}
