package testkit_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
	"mcorr/internal/timeseries"
)

// TestCrashRecoveryReproducesIncidents extends the durability contract to
// the diagnosis layer: a run that is SIGKILLed mid-incident and restarted
// from the same -data-dir must print the same INCIDENT digest lines —
// same deterministic ids, same suspect, same top candidate, same low-water
// mark at full float64 precision — as an uninterrupted run over the data.
func TestCrashRecoveryReproducesIncidents(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	day3 := timeseries.MonitoringStart.AddDate(0, 0, 2)
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 3, Seed: 7,
		Faults: []simulator.Fault{{
			ID: "crash-inc", Machine: simulator.MachineName("A", 1),
			Kind:  simulator.FaultFlapping,
			Start: day3.Add(6 * time.Hour), End: day3.Add(9 * time.Hour),
		}},
	})
	args := func(dataDir, pace string) []string {
		return []string{
			"-data", csv,
			"-train-days", "2",
			"-max-measurements", "12",
			"-incident",
			"-incident-open-after", "1",
			"-data-dir", dataDir,
			"-checkpoint-every", "40",
			"-fsync", "batch",
			"-pace", pace,
		}
	}

	baseline := incidentLines(testkit.Run(t, mcdetect, args(filepath.Join(dir, "base"), "0")...))
	if len(baseline) == 0 {
		t.Fatal("baseline run reported no INCIDENT lines; fault did not open an incident")
	}

	// The fault spans streamed rows 60..90; kill at row 70 so the engine
	// dies with the incident open and its state split between the row-40
	// checkpoint and the WAL tail replayed on recovery.
	crashDir := filepath.Join(dir, "crash")
	testkit.RunKillAfterSteps(t, mcdetect, 70, args(crashDir, "2ms")...)
	resumed := incidentLines(testkit.Run(t, mcdetect, args(crashDir, "0")...))

	if len(resumed) != len(baseline) {
		t.Fatalf("resumed run printed %d INCIDENT lines, baseline %d:\nresumed:\n%s\nbaseline:\n%s",
			len(resumed), len(baseline),
			strings.Join(resumed, "\n"), strings.Join(baseline, "\n"))
	}
	for i := range baseline {
		if resumed[i] != baseline[i] {
			t.Errorf("INCIDENT line %d diverges after crash recovery:\nbaseline: %s\nresumed:  %s",
				i, baseline[i], resumed[i])
		}
	}
}

func incidentLines(lines []string) []string {
	var out []string
	for _, l := range lines {
		if strings.HasPrefix(l, "INCIDENT ") {
			out = append(out, l)
		}
	}
	return out
}
