package testkit_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
)

// TestCrashRecoveryDiscovery kills mcdetect mid-discovery — after round
// boundaries have already admitted and evicted pairs, before the next
// checkpoint — and requires the recovered run to reproduce both the
// scoring trajectory and the pair graph itself: the union of STEP lines
// must be bit-identical to an uninterrupted baseline, and the final
// PAIRGRAPH fingerprint (FNV-64a over the sorted pair list) must match.
// This is the proof that discovery decisions are deterministic functions
// of the row stream plus checkpointed sketch state, never of wall-clock
// or restart history.
func TestCrashRecoveryDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 7,
	})
	// Short rounds and an aggressive eviction floor force graph churn
	// every few rounds; the 120-row checkpoint cadence leaves admissions
	// in the WAL tail when the kill lands at step 100.
	args := func(dataDir, pace string) []string {
		return []string{
			"-data", csv,
			"-train-days", "1",
			"-max-measurements", "12",
			"-data-dir", dataDir,
			"-checkpoint-every", "120",
			"-fsync", "batch",
			"-pace", pace,
			"-pair-budget", "25%",
			"-discover-round", "30",
			"-discover-evict-below", "0.999",
		}
	}

	baselineLines := testkit.Run(t, mcdetect, args(filepath.Join(dir, "base"), "0")...)
	baseline := testkit.StepMap(baselineLines)
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no STEP lines")
	}
	// The scenario must actually exercise discovery: without observed
	// churn the test would pass vacuously.
	adm, evi := discoverChurn(baselineLines)
	if adm == 0 || evi == 0 {
		t.Fatalf("baseline shows no discovery churn (admitted=%d evicted=%d); tighten the policy flags", adm, evi)
	}
	basePG := pairGraphLine(baselineLines)
	if basePG == "" {
		t.Fatal("baseline printed no PAIRGRAPH line")
	}

	// Kill at step 100: past three 30-row discovery rounds (so the graph
	// has churned) and before the 120-row checkpoint covers them.
	crashDir := filepath.Join(dir, "crash")
	killed := testkit.RunKillAfterSteps(t, mcdetect, 100, args(crashDir, "2ms")...)
	resumed := testkit.Run(t, mcdetect, args(crashDir, "0")...)

	recovered := false
	for _, l := range resumed {
		if strings.Contains(l, "recovered from") {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("restart did not report recovery; first lines:\n%s",
			strings.Join(resumed[:min(5, len(resumed))], "\n"))
	}

	got := testkit.StepMap(append(append([]string(nil), killed...), resumed...))
	if diffs := testkit.DiffStepMaps(baseline, got); len(diffs) > 0 {
		sort.Strings(diffs)
		max := len(diffs)
		if max > 10 {
			max = 10
		}
		t.Fatalf("recovered trajectory diverges from baseline at %d of %d steps:\n%s",
			len(diffs), len(baseline), strings.Join(diffs[:max], "\n"))
	}
	gotPG := pairGraphLine(resumed)
	if gotPG == "" {
		t.Fatal("recovered run printed no PAIRGRAPH line")
	}
	if gotPG != basePG {
		t.Fatalf("pair graph diverged after crash recovery:\n  baseline  %s\n  recovered %s", basePG, gotPG)
	}
}

// discoverChurn totals admissions and evictions across DISCOVER lines.
func discoverChurn(lines []string) (admitted, evicted int) {
	for _, l := range lines {
		if !strings.HasPrefix(l, "DISCOVER ") {
			continue
		}
		for _, f := range strings.Fields(l) {
			var n int
			if _, err := fmt.Sscanf(f, "admitted=%d", &n); err == nil {
				admitted += n
			}
			if _, err := fmt.Sscanf(f, "evicted=%d", &n); err == nil {
				evicted += n
			}
		}
	}
	return admitted, evicted
}

// pairGraphLine returns the last PAIRGRAPH line (the final graph state).
func pairGraphLine(lines []string) string {
	last := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "PAIRGRAPH ") {
			last = l
		}
	}
	return last
}
