package testkit_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
)

// TestCrashRecoveryShardedTrajectory is the sharded-durability acceptance
// test: for each shard count, SIGKILL mcdetect mid-stream past a
// checkpoint, restart it against the same -data-dir (recovering the
// per-shard epoch files plus the WAL tail), and require the union of the
// two runs' %.17g STEP lines to be bit-identical to an uninterrupted
// UNSHARDED baseline over the same data — crash recovery and sharding
// must both preserve the exact trajectory.
func TestCrashRecoveryShardedTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 11,
	})
	args := func(dataDir, pace string, shards int) []string {
		return []string{
			"-data", csv,
			"-train-days", "1",
			"-max-measurements", "12",
			"-data-dir", dataDir,
			"-checkpoint-every", "40",
			"-fsync", "batch",
			"-pace", pace,
			"-shards", fmt.Sprint(shards),
		}
	}

	// Uninterrupted unsharded baseline trajectory.
	baseline := testkit.StepMap(testkit.Run(t, mcdetect, args(filepath.Join(dir, "base"), "0", 1)...))
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no STEP lines")
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			crashDir := filepath.Join(dir, fmt.Sprintf("crash-%d", shards))
			killed := testkit.RunKillAfterSteps(t, mcdetect, 60, args(crashDir, "2ms", shards)...)
			// The per-shard checkpoint layout must exist before recovery
			// (shards=1 runs the plain unsharded layout: no shard dirs).
			for k := 0; shards > 1 && k < shards; k++ {
				if _, err := os.Stat(filepath.Join(crashDir, fmt.Sprintf("shard-%d", k))); err != nil {
					t.Fatalf("missing shard checkpoint dir: %v", err)
				}
			}
			resumed := testkit.Run(t, mcdetect, args(crashDir, "0", shards)...)
			if !shardRecoveryBanner(resumed, shards) {
				t.Fatalf("restart did not report sharded recovery; first lines:\n%s",
					strings.Join(resumed[:min(5, len(resumed))], "\n"))
			}
			got := testkit.StepMap(append(append([]string(nil), killed...), resumed...))
			if diffs := testkit.DiffStepMaps(baseline, got); len(diffs) > 0 {
				sort.Strings(diffs)
				show := len(diffs)
				if show > 10 {
					show = 10
				}
				t.Fatalf("sharded recovery diverges from unsharded baseline at %d of %d steps:\n%s",
					len(diffs), len(baseline), strings.Join(diffs[:show], "\n"))
			}
		})
	}
}

func shardRecoveryBanner(lines []string, shards int) bool {
	want := fmt.Sprintf("%d shards", shards)
	for _, l := range lines {
		if strings.Contains(l, "recovered from") && strings.Contains(l, want) {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
