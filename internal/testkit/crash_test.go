package testkit_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mcorr/internal/simulator"
	"mcorr/internal/testkit"
)

// TestCrashRecoveryReproducesTrajectory is the durability acceptance test:
// SIGKILL mcdetect mid-stream, restart it against the same -data-dir, and
// require the union of the two runs' per-step fitness lines to be
// bit-identical (Q printed at %.17g — full float64 precision) to an
// uninterrupted baseline over the same data.
func TestCrashRecoveryReproducesTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real binaries; skipped in -short")
	}
	mcdetect := testkit.BuildBinary(t, "mcorr/cmd/mcdetect")
	dir := t.TempDir()
	csv := filepath.Join(dir, "group.csv")
	testkit.WriteGroupCSV(t, csv, simulator.GroupConfig{
		Name: "A", Machines: 3, Days: 2, Seed: 7,
	})
	args := func(dataDir, pace string) []string {
		return []string{
			"-data", csv,
			"-train-days", "1",
			"-max-measurements", "12",
			"-data-dir", dataDir,
			"-checkpoint-every", "40",
			"-fsync", "batch",
			"-pace", pace,
		}
	}

	// Uninterrupted baseline trajectory.
	baseline := testkit.StepMap(testkit.Run(t, mcdetect, args(filepath.Join(dir, "base"), "0")...))
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no STEP lines")
	}

	// Crash run: pace the stream so the kill lands mid-flight, SIGKILL
	// after 60 scored steps (past the 40-row checkpoint, with WAL tail),
	// then restart from the same data-dir and let it run to completion.
	crashDir := filepath.Join(dir, "crash")
	killed := testkit.RunKillAfterSteps(t, mcdetect, 60, args(crashDir, "2ms")...)
	resumed := testkit.Run(t, mcdetect, args(crashDir, "0")...)

	if !containsRecoveryBanner(resumed) {
		t.Fatalf("restart did not report recovery; first lines:\n%s",
			strings.Join(head(resumed, 5), "\n"))
	}
	got := testkit.StepMap(append(append([]string(nil), killed...), resumed...))
	if diffs := testkit.DiffStepMaps(baseline, got); len(diffs) > 0 {
		sort.Strings(diffs)
		max := len(diffs)
		if max > 10 {
			max = 10
		}
		t.Fatalf("recovered trajectory diverges from baseline at %d of %d steps:\n%s",
			len(diffs), len(baseline), strings.Join(diffs[:max], "\n"))
	}
}

func containsRecoveryBanner(lines []string) bool {
	for _, l := range lines {
		if strings.Contains(l, "recovered from") {
			return true
		}
	}
	return false
}

func head(lines []string, n int) []string {
	if len(lines) < n {
		return lines
	}
	return lines[:n]
}
