package shard

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m-%d/cpu|m-%d/mem", i, (i*7+3)%n)
	}
	return out
}

// TestAssignDeterministicAndInRange: Assign is a pure function into
// [0, shards).
func TestAssignDeterministicAndInRange(t *testing.T) {
	for _, k := range keys(500) {
		for n := 1; n <= 9; n++ {
			got := Assign(k, n)
			if got < 0 || got >= n {
				t.Fatalf("Assign(%q, %d) = %d out of range", k, n, got)
			}
			if again := Assign(k, n); again != got {
				t.Fatalf("Assign(%q, %d) not deterministic: %d then %d", k, n, got, again)
			}
		}
	}
	if Assign("anything", 0) != 0 || Assign("anything", -3) != 0 {
		t.Error("shards < 1 must map to shard 0")
	}
}

// TestAssignBalance: with many keys the rendezvous partition is roughly
// even — no shard holds more than twice or less than half its fair share.
func TestAssignBalance(t *testing.T) {
	const n = 8
	ks := keys(8000)
	counts := make([]int, n)
	for _, k := range ks {
		counts[Assign(k, n)]++
	}
	fair := len(ks) / n
	for k, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("shard %d holds %d keys, fair share %d", k, c, fair)
		}
	}
}

// TestAssignMinimalMovement is the property resharding relies on: growing
// from n to n+1 shards only moves keys that land on the NEW shard — no
// key ever migrates between two surviving shards — and the moved fraction
// is near 1/(n+1).
func TestAssignMinimalMovement(t *testing.T) {
	ks := keys(6000)
	for n := 1; n <= 7; n++ {
		moved := 0
		for _, k := range ks {
			oldS, newS := Assign(k, n), Assign(k, n+1)
			if oldS != newS {
				moved++
				if newS != n {
					t.Fatalf("grow %d→%d: key %q moved %d→%d, not to the new shard", n, n+1, k, oldS, newS)
				}
			}
		}
		frac := float64(moved) / float64(len(ks))
		want := 1.0 / float64(n+1)
		if frac < want/2 || frac > want*2 {
			t.Errorf("grow %d→%d moved %.1f%% of keys, expected ≈%.1f%%", n, n+1, 100*frac, 100*want)
		}
	}
}

// TestAssignPinnedAssignments freezes the rendezvous placement of a
// representative key set across every shard count 1–8. These values are
// load-bearing beyond balance: epoch checkpoints and the networked shard
// fabric both key worker state by Assign, so a hash change that silently
// re-homes pairs would orphan every persisted shard directory. Any edit
// to weight/Assign that alters placement must fail here loudly and be
// shipped with a checkpoint-migration story, not slipped in.
func TestAssignPinnedAssignments(t *testing.T) {
	pinned := []struct {
		key  string
		want [8]int // want[n-1] = Assign(key, n)
	}{
		{"m-0/cpu|m-0/mem", [8]int{0, 1, 2, 2, 2, 2, 2, 7}},
		{"m-0/cpu|m-1/cpu", [8]int{0, 0, 0, 0, 0, 0, 0, 0}},
		{"m-0/mem|m-2/net", [8]int{0, 0, 0, 0, 0, 0, 6, 6}},
		{"m-1/disk|m-3/cpu", [8]int{0, 0, 0, 3, 3, 3, 3, 3}},
		{"m-2/cpu|m-2/mem", [8]int{0, 1, 1, 1, 1, 1, 1, 1}},
		{"m-3/net|m-4/net", [8]int{0, 1, 1, 1, 1, 1, 1, 1}},
		{"m-4/cpu|m-5/mem", [8]int{0, 0, 0, 0, 4, 4, 4, 4}},
		{"m-5/disk|m-6/disk", [8]int{0, 0, 2, 3, 4, 4, 4, 4}},
		{"m-6/cpu|m-7/net", [8]int{0, 0, 0, 3, 3, 3, 3, 3}},
		{"m-7/mem|m-7/net", [8]int{0, 0, 0, 0, 0, 0, 6, 7}},
		{"L-srv-00/cpuUtil|L-srv-01/cpuUtil", [8]int{0, 0, 0, 0, 0, 0, 0, 0}},
		{"L-srv-02/memUsed|L-srv-03/netTx", [8]int{0, 0, 2, 3, 4, 4, 4, 4}},
	}
	for _, tc := range pinned {
		for n := 1; n <= 8; n++ {
			if got := Assign(tc.key, n); got != tc.want[n-1] {
				t.Errorf("Assign(%q, %d) = %d, want pinned %d — the rendezvous hash changed; existing shard checkpoints would be orphaned",
					tc.key, n, got, tc.want[n-1])
			}
		}
	}
}
