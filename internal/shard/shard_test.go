package shard

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// fixtures builds a small group trace, a training slice, and the
// monitoring rows shared by the bit-identity tests.
func fixtures(t *testing.T, machines, days int, faults ...simulator.Fault) (*timeseries.Dataset, *timeseries.Dataset, []manager.Row) {
	t.Helper()
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "S", Machines: machines, Days: days, Seed: 41, Faults: faults,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	trainEnd := timeseries.MonitoringStart.AddDate(0, 0, 1)
	history := ds.Slice(timeseries.MonitoringStart, trainEnd)
	rows, err := manager.BuildRows(ds, trainEnd, timeseries.MonitoringStart.AddDate(0, 0, days))
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}
	return ds, history, rows
}

// sameBits fails the test unless a and b are the same float64 bit
// pattern (NaN == NaN).
func sameBits(t *testing.T, what string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s: sharded %v (%x) != unsharded %v (%x)",
			what, a, math.Float64bits(a), b, math.Float64bits(b))
	}
}

func compareReports(t *testing.T, step int, got, want manager.StepReport) {
	t.Helper()
	sameBits(t, fmt.Sprintf("step %d system", step), got.System, want.System)
	if got.ScoredPairs != want.ScoredPairs {
		t.Fatalf("step %d scored pairs = %d, want %d", step, got.ScoredPairs, want.ScoredPairs)
	}
	if len(got.Measurements) != len(want.Measurements) {
		t.Fatalf("step %d measurements = %d, want %d", step, len(got.Measurements), len(want.Measurements))
	}
	for id, q := range want.Measurements {
		sameBits(t, fmt.Sprintf("step %d %s", step, id), got.Measurements[id], q)
	}
}

// TestShardedBitIdenticalToUnsharded is the tentpole property: for any
// shard count the coordinator's Q^a and Q trajectories are bit-identical
// to a single unsharded Manager over the same rows — including under
// adaptive mode, where mid-stream grid growth must land on the same
// models in the same order.
func TestShardedBitIdenticalToUnsharded(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		name := "offline"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			mcfg := manager.Config{Model: core.Config{Adaptive: adaptive}, Workers: 2}
			day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
			_, history, rows := fixtures(t, 3, 2, simulator.Fault{
				ID: "f1", Machine: simulator.MachineName("S", 2), Kind: simulator.FaultLevelShift,
				Start: day1.Add(7 * time.Hour), End: day1.Add(9 * time.Hour),
			})
			ref, err := manager.New(history, mcfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer ref.Close()
			var want []manager.StepReport
			for _, row := range rows {
				want = append(want, ref.Step(row))
			}
			for _, n := range []int{1, 2, 3, 4, 5, 8} {
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					coord, err := New(history, Config{Shards: n, Manager: mcfg})
					if err != nil {
						t.Fatalf("New coordinator: %v", err)
					}
					defer coord.Close()
					if got := coord.NumShards(); got != n {
						t.Fatalf("NumShards = %d, want %d", got, n)
					}
					if got := len(coord.Pairs()); got != len(ref.Pairs()) {
						t.Fatalf("pairs = %d, want %d", got, len(ref.Pairs()))
					}
					for i, row := range rows {
						compareReports(t, i, coord.Step(row), want[i])
					}
					sameBits(t, "system mean", coord.SystemMean(), ref.SystemMean())
					gotMeans, wantMeans := coord.MeasurementMeans(), ref.MeasurementMeans()
					for id, q := range wantMeans {
						sameBits(t, fmt.Sprintf("mean %s", id), gotMeans[id], q)
					}
					gotLoc, wantLoc := coord.Localize(), ref.Localize()
					if len(gotLoc.Machines) != len(wantLoc.Machines) {
						t.Fatalf("localization machines = %d, want %d", len(gotLoc.Machines), len(wantLoc.Machines))
					}
					for i := range wantLoc.Machines {
						if gotLoc.Machines[i].Machine != wantLoc.Machines[i].Machine {
							t.Fatalf("localization rank %d = %s, want %s",
								i, gotLoc.Machines[i].Machine, wantLoc.Machines[i].Machine)
						}
						sameBits(t, "localization score", gotLoc.Machines[i].Score, wantLoc.Machines[i].Score)
					}
				})
			}
		})
	}
}

// TestShardPartitionCoversAllPairs checks the rendezvous partition is a
// true partition: every pair lands on exactly one shard.
func TestShardPartitionCoversAllPairs(t *testing.T) {
	_, history, _ := fixtures(t, 3, 2)
	coord, err := New(history, Config{Shards: 4, Manager: manager.Config{Workers: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	seen := make(map[manager.Pair]int)
	total := 0
	for k := 0; k < coord.NumShards(); k++ {
		for _, p := range coord.ShardPairs(k) {
			seen[p]++
			total++
			if Assign(p.String(), 4) != k {
				t.Errorf("pair %s on shard %d, Assign says %d", p, k, Assign(p.String(), 4))
			}
		}
	}
	if total != len(coord.Pairs()) {
		t.Errorf("shards hold %d pairs, coordinator has %d", total, len(coord.Pairs()))
	}
	for p, n := range seen {
		if n != 1 {
			t.Errorf("pair %s owned by %d shards", p, n)
		}
	}
	// Model routing finds every pair's model via the owning shard.
	ids := coord.IDs()
	if coord.Model(ids[0], ids[1]) == nil {
		t.Error("Model accessor returned nil for a trained pair")
	}
}

// TestReshardPreservesTrajectory grows and shrinks the shard count
// mid-stream and requires the trajectory to continue bit-identically to
// an unsharded run that never resharded.
func TestReshardPreservesTrajectory(t *testing.T) {
	mcfg := manager.Config{Model: core.Config{Adaptive: true}, Workers: 2}
	_, history, rows := fixtures(t, 3, 2)
	ref, err := manager.New(history, mcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ref.Close()
	coord, err := New(history, Config{Shards: 2, Manager: mcfg})
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	defer coord.Close()
	third := len(rows) / 3
	steps := []struct {
		rows []manager.Row
		newN int // reshard to this count afterwards (0 = stop)
	}{
		{rows[:third], 5},
		{rows[third : 2*third], 1},
		{rows[2*third:], 0},
	}
	i := 0
	for _, st := range steps {
		for _, row := range st.rows {
			compareReports(t, i, coord.Step(row), ref.Step(row))
			i++
		}
		if st.newN > 0 {
			before := len(coord.Pairs())
			moved, err := coord.Reshard(st.newN)
			if err != nil {
				t.Fatalf("Reshard(%d): %v", st.newN, err)
			}
			if got := coord.NumShards(); got != st.newN {
				t.Fatalf("NumShards after reshard = %d, want %d", got, st.newN)
			}
			if after := len(coord.Pairs()); after != before {
				t.Fatalf("reshard changed pair count %d → %d", before, after)
			}
			if moved < 0 || moved > before {
				t.Fatalf("moved = %d out of range [0,%d]", moved, before)
			}
		}
	}
	sameBits(t, "system mean after reshards", coord.SystemMean(), ref.SystemMean())
}

// TestPersistRoundTrip checkpoints a mid-stream coordinator, restores it,
// and requires the restored fleet to finish the stream bit-identically.
func TestPersistRoundTrip(t *testing.T) {
	mcfg := manager.Config{Model: core.Config{Adaptive: true}, Workers: 1}
	_, history, rows := fixtures(t, 2, 2)
	ref, err := manager.New(history, mcfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer ref.Close()
	coord, err := New(history, Config{Shards: 3, Manager: mcfg})
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	half := len(rows) / 2
	for i, row := range rows[:half] {
		compareReports(t, i, coord.Step(row), ref.Step(row))
	}
	var state bytes.Buffer
	if err := coord.SaveState(&state); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	blobs := make([]io.Reader, coord.NumShards())
	for k := range blobs {
		var buf bytes.Buffer
		if err := coord.SaveShard(k, &buf); err != nil {
			t.Fatalf("SaveShard(%d): %v", k, err)
		}
		blobs[k] = &buf
	}
	coord.Close()
	restored, err := Load(&state, blobs, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer restored.Close()
	if got := restored.Steps(); got != ref.Steps() {
		t.Fatalf("restored steps = %d, want %d", got, ref.Steps())
	}
	for i, row := range rows[half:] {
		compareReports(t, half+i, restored.Step(row), ref.Step(row))
	}
	sameBits(t, "restored system mean", restored.SystemMean(), ref.SystemMean())
}

// TestLoadValidation exercises the snapshot error paths.
func TestLoadValidation(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil), nil, nil); err == nil {
		t.Error("empty state: want error")
	}
	_, history, _ := fixtures(t, 2, 1)
	coord, err := New(history, Config{Shards: 2, Manager: manager.Config{Workers: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	var state bytes.Buffer
	if err := coord.SaveState(&state); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if _, err := Load(&state, []io.Reader{bytes.NewReader(nil)}, nil); err == nil {
		t.Error("wrong blob count: want error")
	}
	if err := coord.SaveShard(9, io.Discard); err == nil {
		t.Error("SaveShard out of range: want error")
	}
	if _, err := coord.Reshard(0); err == nil {
		t.Error("Reshard(0): want error")
	}
}

// TestNewValidation exercises the constructor error paths.
func TestNewValidation(t *testing.T) {
	if _, err := New(timeseries.NewDataset(), Config{Shards: 2}); err == nil {
		t.Error("empty dataset: want error")
	}
}
