package shard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mcorr/internal/alarm"
	"mcorr/internal/manager"
)

// coordSnapshot is the gob wire form of the coordinator's own state: the
// shard topology and the central aggregator (the single float-addition
// path all shard outcomes fold through). Shard managers are saved
// separately — one blob per shard via SaveShard — so checkpointing can
// write them in parallel and recovery can stream them one at a time.
type coordSnapshot struct {
	Version int
	Shards  int
	Agg     []byte
}

const coordSnapshotVersion = 1

// SaveState serializes the coordinator's topology and aggregation state
// (not the shard models; pair ownership is a pure function of the shard
// count, so no pair→shard map is stored).
func (c *Coordinator) SaveState(w io.Writer) error {
	c.mu.Lock()
	n := len(c.shards)
	c.mu.Unlock()
	var buf bytes.Buffer
	if err := c.agg.Save(&buf); err != nil {
		return fmt.Errorf("shard state save: %w", err)
	}
	snap := coordSnapshot{Version: coordSnapshotVersion, Shards: n, Agg: buf.Bytes()}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("shard state save: %w", err)
	}
	return nil
}

// SaveShard serializes shard k's manager (its pair models and config).
func (c *Coordinator) SaveShard(k int, w io.Writer) error {
	c.mu.Lock()
	if k < 0 || k >= len(c.shards) {
		c.mu.Unlock()
		return fmt.Errorf("shard save: index %d out of range [0,%d)", k, len(c.shards))
	}
	s := c.shards[k]
	c.mu.Unlock()
	return s.Save(w)
}

// Load restores a coordinator from a state snapshot written by SaveState
// plus the per-shard blobs written by SaveShard, in shard order. The
// given alarm sink is attached to the central aggregator (nil discards
// alarms); the shard managers never see alarms — they only score.
func Load(state io.Reader, shardBlobs []io.Reader, sink alarm.Sink) (*Coordinator, error) {
	var snap coordSnapshot
	if err := gob.NewDecoder(state).Decode(&snap); err != nil {
		return nil, fmt.Errorf("shard state load: %w", err)
	}
	if snap.Version != coordSnapshotVersion {
		return nil, fmt.Errorf("shard state load: snapshot version %d, want %d", snap.Version, coordSnapshotVersion)
	}
	if snap.Shards < 1 {
		return nil, fmt.Errorf("shard state load: invalid shard count %d", snap.Shards)
	}
	if len(shardBlobs) != snap.Shards {
		return nil, fmt.Errorf("shard state load: %d shard blobs for %d shards", len(shardBlobs), snap.Shards)
	}
	agg, err := manager.LoadAggregator(bytes.NewReader(snap.Agg), sink)
	if err != nil {
		return nil, fmt.Errorf("shard state load: %w", err)
	}
	shards := make([]*manager.Manager, snap.Shards)
	for k, r := range shardBlobs {
		// Shard managers carry no alarm sink: the central aggregator is
		// the only alarm source in a sharded fleet.
		m, err := manager.LoadManager(r, nil)
		if err != nil {
			for _, s := range shards {
				if s != nil {
					s.Close()
				}
			}
			return nil, fmt.Errorf("shard %d load: %w", k, err)
		}
		shards[k] = m
	}
	c := &Coordinator{
		cfg: agg.Config(),
		ids: agg.IDs(),
		agg: agg,
	}
	c.rebuild(shards)
	return c, nil
}
