//go:build !race

package shard

// chaosSteps bounds TestIncrementalBitIdenticalUnderChaos. The plain test
// binary runs the full ≥10k-step property (the acceptance bar for the
// incremental scheduler); the race-instrumented build (see the _race
// variant) trims it, since every step costs ~10× under the detector and
// the interleaving coverage it adds doesn't need the full trace length.
func chaosSteps() int { return 10_100 }
