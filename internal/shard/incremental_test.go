package shard

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"mcorr/internal/alarm"
	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// sameAlarms fails the test unless the two alarm streams are identical —
// same order, same fields, same score bits.
func sameAlarms(t *testing.T, got, want []alarm.Alarm) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("alarm stream length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if !g.Time.Equal(w.Time) || g.Severity != w.Severity || g.Scope != w.Scope ||
			g.Measurement != w.Measurement || g.Peer != w.Peer || g.Message != w.Message {
			t.Fatalf("alarm %d = %v, want %v", i, g, w)
		}
		sameBits(t, fmt.Sprintf("alarm %d score", i), g.Score, w.Score)
		sameBits(t, fmt.Sprintf("alarm %d threshold", i), g.Threshold, w.Threshold)
	}
}

// copyRow returns a deep copy of row so chaos mutations never alias the
// original.
func copyRow(row manager.Row) manager.Row {
	vals := make(map[timeseries.MeasurementID]float64, len(row.Values))
	for id, v := range row.Values {
		vals[id] = v
	}
	return manager.Row{Time: row.Time, Values: vals}
}

// TestIncrementalBitIdenticalUnderChaos is the incremental scheduler's
// property test: a sharded coordinator on the default incremental path is
// driven through ≥10k rows of a fault-injected trace interleaved with
// random gaps (dropped series → model resets), random value spikes
// (outliers and adaptive grid growth), reshards to random shard counts,
// and full save/load recovery round-trips — while a shadow unsharded
// manager with Config.FullRescore re-scores every pair through its model
// on every row. Every per-step Q^a and Q must match the shadow bit for
// bit, and so must the complete alarm streams (δ > 0 keeps the
// probability path live, so cached Outcome.Prob carry-forward is covered
// too). This is the executable form of the carry-forward invariant: a
// skipped pair's cached outcome is indistinguishable from re-scoring it.
func TestIncrementalBitIdenticalUnderChaos(t *testing.T) {
	day1 := timeseries.MonitoringStart.AddDate(0, 0, 1)
	ds, _, err := simulator.Generate(simulator.GroupConfig{
		Name: "S", Machines: 2, Days: 45, Seed: 41,
		Faults: []simulator.Fault{
			{ID: "f1", Machine: simulator.MachineName("S", 1), Kind: simulator.FaultLevelShift,
				Start: day1.AddDate(0, 0, 4), End: day1.AddDate(0, 0, 4).Add(9 * time.Hour)},
			{ID: "f2", Machine: simulator.MachineName("S", 2), Kind: simulator.FaultCorrelationBreak,
				Start: day1.AddDate(0, 0, 15), End: day1.AddDate(0, 0, 15).Add(12 * time.Hour)},
			{ID: "f3", Machine: simulator.MachineName("S", 1), Kind: simulator.FaultFlapping,
				Start: day1.AddDate(0, 0, 30), End: day1.AddDate(0, 0, 30).Add(6 * time.Hour)},
		},
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	history := ds.Slice(timeseries.MonitoringStart, day1)
	rows, err := manager.BuildRows(ds, day1, timeseries.MonitoringStart.AddDate(0, 0, 45))
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}
	if steps := chaosSteps(); len(rows) > steps {
		rows = rows[:steps]
	}

	// δ, thresholds and adaptive mode all on: the shadow manager scores
	// probabilities every step, the incremental side must carry them
	// forward bit-exactly.
	// A small grid cap keeps the adaptive growth that spikes provoke
	// cheap (growth rebuilds are O(s²) and the property doesn't depend on
	// grid resolution), so the 10k-step run stays fast.
	mcfg := manager.Config{
		Model:                core.Config{Adaptive: true, Grid: core.GridConfig{MaxIntervals: 8}},
		Workers:              2,
		MeasurementThreshold: 0.45,
		SystemThreshold:      0.5,
		ProbDelta:            0.01,
	}
	refSink := &alarm.MemorySink{}
	refCfg := mcfg
	refCfg.FullRescore = true
	refCfg.Sink = refSink
	ref, err := manager.New(history, refCfg)
	if err != nil {
		t.Fatalf("New shadow manager: %v", err)
	}
	defer ref.Close()

	sink := &alarm.MemorySink{}
	subCfg := mcfg
	subCfg.Sink = sink
	coord, err := New(history, Config{Shards: 2, Manager: subCfg})
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	defer func() { coord.Close() }()

	ids := ds.IDs()
	rng := rand.New(rand.NewSource(7))
	minDirty := len(coord.Pairs())
	for i, row := range rows {
		// Chaos mutations hit both sides identically — they are part of
		// the stream, not of either scoring fabric.
		if rng.Float64() < 0.02 { // monitoring gap: drop 1–3 series
			row = copyRow(row)
			for k := rng.Intn(3) + 1; k > 0; k-- {
				delete(row.Values, ids[rng.Intn(len(ids))])
			}
		}
		if rng.Float64() < 0.01 { // spike: outlier or grid growth
			row = copyRow(row)
			id := ids[rng.Intn(len(ids))]
			if v, ok := row.Values[id]; ok {
				row.Values[id] = v*6 + 1
			}
		}
		compareReports(t, i, coord.Step(row), ref.Step(row))
		if d := lastDirtySum(coord); d < minDirty {
			minDirty = d
		}

		// Fabric-only chaos: the shadow never reshards or recovers; the
		// subject must come back bit-identical anyway.
		if i%997 == 996 {
			if _, err := coord.Reshard(rng.Intn(4) + 1); err != nil {
				t.Fatalf("step %d: Reshard: %v", i, err)
			}
		}
		if i%1499 == 1498 {
			var state bytes.Buffer
			if err := coord.SaveState(&state); err != nil {
				t.Fatalf("step %d: SaveState: %v", i, err)
			}
			blobs := make([]io.Reader, coord.NumShards())
			for k := range blobs {
				var buf bytes.Buffer
				if err := coord.SaveShard(k, &buf); err != nil {
					t.Fatalf("step %d: SaveShard(%d): %v", i, k, err)
				}
				blobs[k] = &buf
			}
			coord.Close()
			if coord, err = Load(&state, blobs, sink); err != nil {
				t.Fatalf("step %d: Load: %v", i, err)
			}
		}
	}

	sameBits(t, "system mean", coord.SystemMean(), ref.SystemMean())
	gotMeans, wantMeans := coord.MeasurementMeans(), ref.MeasurementMeans()
	for id, q := range wantMeans {
		sameBits(t, fmt.Sprintf("mean %s", id), gotMeans[id], q)
	}
	sameAlarms(t, sink.Alarms(), refSink.Alarms())

	// The property only has teeth if the incremental side actually
	// skipped work somewhere along the run.
	if coord.Steps() == 0 {
		t.Fatal("no steps scored")
	}
	if minDirty == len(coord.Pairs()) {
		t.Fatalf("every row re-scored all %d pairs — incremental path never engaged", minDirty)
	}
}

// lastDirtySum sums LastDirtyPairs across the coordinator's shards.
func lastDirtySum(c *Coordinator) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.shards {
		n += s.LastDirtyPairs()
	}
	return n
}
