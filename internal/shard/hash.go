package shard

// Rendezvous (highest-random-weight) hashing assigns each canonical pair
// key to one of n shards. Every (key, shard) combination gets a
// deterministic pseudo-random weight; the key lives on the shard with the
// highest weight. The property that matters for resharding: when a shard
// is added, the only keys that move are the ones whose new shard wins —
// no key ever moves between two pre-existing shards; when a shard is
// removed, only its own keys move. That keeps checkpoint-splitting
// proportional to the data that actually changes owner.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// weight computes the HRW weight of key on shard k: an FNV-1a hash of the
// key folded with the shard index, finished with a SplitMix64-style
// avalanche so shard indices that differ in one bit still produce
// uncorrelated weights.
func weight(key string, k int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	h ^= uint64(k)
	h *= fnvPrime64
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Assign returns the shard in [0, shards) owning key under rendezvous
// hashing. It is a pure function of (key, shards): the pair→shard
// topology needs no persisted map — recovery and resharding recompute it.
// shards < 2 always yields 0.
func Assign(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	best := 0
	bestW := weight(key, 0)
	for k := 1; k < shards; k++ {
		if w := weight(key, k); w > bestW {
			best, bestW = k, w
		}
	}
	return best
}
