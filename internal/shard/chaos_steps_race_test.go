//go:build race

package shard

// chaosSteps under the race detector: a shorter run that still crosses
// several reshard and recovery events. See chaos_steps_test.go.
func chaosSteps() int { return 2_400 }
