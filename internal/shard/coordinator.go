package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/manager"
	"mcorr/internal/obs"
	"mcorr/internal/timeseries"
)

// Config controls a Coordinator.
type Config struct {
	// Shards is the number of manager shards the pair graph is
	// partitioned across (default 1). Each shard owns the models of the
	// pairs rendezvous hashing assigns it, plus its own worker pool.
	Shards int
	// Manager is the shared fleet configuration: model settings,
	// thresholds, alarm sink and reporting flags. Workers is interpreted
	// as the total worker budget and divided across shards (default
	// GOMAXPROCS).
	Manager manager.Config
	// Keep optionally restricts the trained pair graph: a pair is
	// trained only when Keep accepts it (on top of its rendezvous shard
	// assignment). Nil keeps every pair — the paper's full graph. The
	// discovery tier passes its bootstrap admission set here.
	Keep func(manager.Pair) bool
}

// Coordinator is the sharded scoring fabric: it partitions the l(l−1)/2
// measurement pairs across N independent manager shards by rendezvous
// hashing of the canonical pair key, fans each scored row out to all
// shards in parallel, scatters their per-pair outcomes into one global
// slice in canonical pair order, and aggregates Q^{a,b} → Q^a → Q through
// the same manager.Aggregator code the single-manager path uses — so its
// fitness trajectories are bit-identical to an unsharded Manager over the
// same data, for any shard count.
//
// All methods are safe for concurrent use; rows must be fed in time
// order. The zero value is not usable — construct with New or Load.
type Coordinator struct {
	mu     sync.Mutex
	cfg    manager.Config // as supplied (Workers = total budget)
	ids    []timeseries.MeasurementID
	shards []*manager.Manager
	agg    *manager.Aggregator
	closed bool

	// Derived fan-out state, rebuilt by rebuild() after construction and
	// after every reshard.
	pairs     []manager.Pair    // global canonical pair order
	pairIdx   [][2]int          // pairs[i] → indices into ids
	outcomes  []manager.Outcome // global scatter buffer, reused every step
	localIdx  [][]int           // per shard: local pair position → global index
	scoreHist []*obs.Histogram  // per-shard scoring latency, children cached
}

// perShardWorkers divides a total worker budget across n shards, at
// least one worker each. budget <= 0 means GOMAXPROCS.
func perShardWorkers(budget, n int) int {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	per := budget / n
	if per < 1 {
		per = 1
	}
	return per
}

// keepFor returns the pair filter selecting shard k of n.
func keepFor(k, n int) func(manager.Pair) bool {
	return func(p manager.Pair) bool { return Assign(p.String(), n) == k }
}

// New trains a sharded fleet from the history dataset: shard k trains
// (concurrently with the others, on its own pool) exactly the pairs
// rendezvous hashing assigns it. At least two measurements and one
// trainable pair are required.
func New(history *timeseries.Dataset, cfg Config) (*Coordinator, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	ids := history.IDs()
	if len(ids) < 2 {
		return nil, fmt.Errorf("shard coordinator needs at least 2 measurements, got %d", len(ids))
	}
	mcfg := cfg.Manager
	mcfg.Workers = perShardWorkers(cfg.Manager.Workers, n)
	shards := make([]*manager.Manager, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := range shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			keep := keepFor(k, n)
			if extra := cfg.Keep; extra != nil {
				inner := keep
				keep = func(p manager.Pair) bool { return inner(p) && extra(p) }
			}
			shards[k], errs[k] = manager.NewSubset(history, mcfg, keep)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, s := range shards {
				if s != nil {
					s.Close()
				}
			}
			return nil, err
		}
	}
	c := &Coordinator{
		cfg: cfg.Manager,
		ids: ids,
		agg: manager.NewAggregator(ids, cfg.Manager),
	}
	c.rebuild(shards)
	// A non-nil Keep tolerates an empty initial graph (mirroring
	// NewSubset): discovery may admit pairs later.
	if len(c.pairs) == 0 && cfg.Keep == nil {
		c.Close()
		return nil, fmt.Errorf("shard coordinator: no trainable pairs: %w", core.ErrNoData)
	}
	return c, nil
}

// AddModel grafts a trained model into whichever shard rendezvous hashing
// assigns the pair, then rebuilds the fan-out state — the sharded mirror
// of Manager.AddModel. Surviving pairs are untouched (model pointers are
// shared; shard managers rebuild all-dirty).
func (c *Coordinator) AddModel(p manager.Pair, model *core.Model) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p = manager.MakePair(p.A, p.B)
	k := Assign(p.String(), len(c.shards))
	if err := c.shards[k].AddModel(p, model); err != nil {
		return err
	}
	c.rebuild(c.shards)
	return nil
}

// RemovePair drops a pair's model from its owning shard and rebuilds the
// fan-out state. Reports whether the pair was present.
func (c *Coordinator) RemovePair(p manager.Pair) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p = manager.MakePair(p.A, p.B)
	k := Assign(p.String(), len(c.shards))
	if !c.shards[k].RemovePair(p) {
		return false
	}
	c.rebuild(c.shards)
	return true
}

// rebuild installs a shard set and recomputes the derived fan-out state:
// the global canonical pair order, each shard's local→global index map,
// the aggregation index and the reusable scatter buffer. Callers hold
// c.mu (or are constructing c).
func (c *Coordinator) rebuild(shards []*manager.Manager) {
	c.shards = shards
	var all []manager.Pair
	for _, s := range shards {
		all = append(all, s.Pairs()...)
	}
	manager.SortPairs(all)
	c.pairs = all
	global := make(map[manager.Pair]int, len(all))
	for i, p := range all {
		global[p] = i
	}
	c.localIdx = make([][]int, len(shards))
	c.scoreHist = make([]*obs.Histogram, len(shards))
	for k, s := range shards {
		local := s.Pairs()
		idx := make([]int, len(local))
		for i, p := range local {
			idx[i] = global[p]
		}
		c.localIdx[k] = idx
		c.scoreHist[k] = obsScoreSeconds.With(strconv.Itoa(k))
		obsShardPairs.With(strconv.Itoa(k)).Set(float64(len(local)))
	}
	c.pairIdx = manager.BuildPairIndex(c.ids, all)
	c.outcomes = make([]manager.Outcome, len(all))
	obsShardCount.Set(float64(len(shards)))
}

// scoreShard runs shard k's scoring fan-out for row, scattering outcomes
// into the global buffer, and records the shard's scoring latency.
func (c *Coordinator) scoreShard(k int, row manager.Row) {
	start := time.Now()
	c.shards[k].ScoreInto(row, c.localIdx[k], c.outcomes)
	c.scoreHist[k].Observe(time.Since(start).Seconds())
}

// Step scores one synchronized row: every shard scores its pair subset in
// parallel (shard 0 on the calling goroutine), the outcomes land in one
// global buffer in canonical pair order, and the shared Aggregator folds
// them into Q^{a,b} → Q^a → Q and publishes alarms — the same code, in
// the same order, as the single-manager path. The phases (score →
// aggregate → alarm) are traced as span "shard.step".
func (c *Coordinator) Step(row manager.Row) manager.StepReport {
	start := time.Now()
	sp := obs.StartSpan("shard.step")
	c.mu.Lock()
	defer c.mu.Unlock()
	sp.Phase("score")
	if len(c.shards) == 1 {
		c.scoreShard(0, row)
	} else {
		var wg sync.WaitGroup
		for k := 1; k < len(c.shards); k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				c.scoreShard(k, row)
			}(k)
		}
		c.scoreShard(0, row)
		wg.Wait()
	}
	// Publish the fleet-wide dirty-pair count: each shard tracks its own
	// incremental scheduler, the coordinator owns the process gauge.
	dirty := 0
	for _, s := range c.shards {
		dirty += s.LastDirtyPairs()
	}
	manager.RecordDirtyPairs(dirty)
	sp.Phase("aggregate")
	report := c.agg.Aggregate(row.Time, c.pairs, c.pairIdx, c.outcomes, sp)
	sp.End()
	obsStepSeconds.Observe(time.Since(start).Seconds())
	return report
}

// Run replays a dataset through Step row by row over [from, to) and
// returns the per-step reports (the sharded mirror of Manager.Run).
func (c *Coordinator) Run(ds *timeseries.Dataset, from, to time.Time) ([]manager.StepReport, error) {
	rows, err := manager.BuildRows(ds, from, to)
	if err != nil {
		return nil, err
	}
	reports := make([]manager.StepReport, 0, len(rows))
	for _, row := range rows {
		reports = append(reports, c.Step(row))
	}
	return reports, nil
}

// IDs returns the measurements the coordinator watches.
func (c *Coordinator) IDs() []timeseries.MeasurementID {
	return append([]timeseries.MeasurementID(nil), c.ids...)
}

// Pairs returns every trained link across all shards in the global
// canonical order.
func (c *Coordinator) Pairs() []manager.Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]manager.Pair(nil), c.pairs...)
}

// PairStates returns every link's live scheduler state across all
// shards, merged into the global canonical pair order with each state's
// Shard field set to its owner.
func (c *Coordinator) PairStates() []manager.PairState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]manager.PairState, len(c.pairs))
	for k, s := range c.shards {
		for i, st := range s.PairStates() {
			st.Shard = k
			out[c.localIdx[k][i]] = st
		}
	}
	return out
}

// NumShards returns the current shard count.
func (c *Coordinator) NumShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// ShardPairs returns the links owned by shard k (in that shard's sorted
// order), or nil when k is out of range.
func (c *Coordinator) ShardPairs(k int) []manager.Pair {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < 0 || k >= len(c.shards) {
		return nil
	}
	return c.shards[k].Pairs()
}

// Model returns the trained model for a pair from whichever shard owns it
// (nil when absent).
func (c *Coordinator) Model(a, b timeseries.MeasurementID) *core.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := manager.MakePair(a, b)
	k := Assign(p.String(), len(c.shards))
	return c.shards[k].Model(a, b)
}

// Aggregator exposes the coordinator's central aggregation layer.
func (c *Coordinator) Aggregator() *manager.Aggregator { return c.agg }

// Steps returns how many rows produced a system score.
func (c *Coordinator) Steps() int { return c.agg.Steps() }

// SystemMean returns the running mean system fitness Q.
func (c *Coordinator) SystemMean() float64 { return c.agg.SystemMean() }

// MeasurementMeans returns the running mean Q^a per measurement since the
// last ResetAccumulators.
func (c *Coordinator) MeasurementMeans() map[timeseries.MeasurementID]float64 {
	return c.agg.MeasurementMeans()
}

// PairMeans returns the accumulated mean fitness per link (nil unless
// Config.TrackPairMeans).
func (c *Coordinator) PairMeans() map[manager.Pair]float64 { return c.agg.PairMeans() }

// WorstPairs returns the k links with the lowest mean fitness — the
// paper's Q^{a,b} drill-down (requires Config.TrackPairMeans).
func (c *Coordinator) WorstPairs(k int) []manager.PairScore { return c.agg.WorstPairs(k) }

// WorstPairDrops ranks links by fitness drop against a PairMeans baseline
// (see Aggregator.WorstPairDrops).
func (c *Coordinator) WorstPairDrops(baseline map[manager.Pair]float64, k int) []manager.PairScore {
	return c.agg.WorstPairDrops(baseline, k)
}

// Localize rolls the accumulated per-measurement means up to machines and
// ranks them worst-first.
func (c *Coordinator) Localize() manager.Localization { return c.agg.Localize() }

// ResetAccumulators clears the running means without touching any model.
func (c *Coordinator) ResetAccumulators() { c.agg.Reset() }

// SetAdaptive flips online updating on every model of every shard.
func (c *Coordinator) SetAdaptive(adaptive bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		s.SetAdaptive(adaptive)
	}
}

// ResetChains clears every model's Markov position on every shard.
func (c *Coordinator) ResetChains() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.shards {
		s.ResetChains()
	}
}

// Close stops every shard's worker pool. Safe to call more than once;
// the coordinator must not be stepped afterwards.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.shards {
		s.Close()
	}
}
