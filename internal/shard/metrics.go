package shard

import "mcorr/internal/obs"

// Process-global sharding metrics (mcorr_shard_*). Per-shard children are
// labeled by the shard index ("0".."n-1"): cardinality is bounded by the
// configured shard count, and the Coordinator caches the children it needs
// at rebuild time so the step hot path never touches a vec lookup.
var (
	obsStepSeconds = obs.Default().Histogram("mcorr_shard_step_seconds",
		"Latency of Coordinator.Step: fan-out, scoring on every shard, and merge.",
		obs.TimeBuckets())
	obsScoreSeconds = obs.Default().HistogramVec("mcorr_shard_score_seconds",
		"Per-shard scoring latency for one row (label: shard index).",
		obs.TimeBuckets(), "shard")
	obsShardCount = obs.Default().Gauge("mcorr_shard_count",
		"Current number of manager shards in the scoring fabric.")
	obsShardPairs = obs.Default().GaugeVec("mcorr_shard_pairs",
		"Measurement pairs owned by each shard (label: shard index).", "shard")
	obsReshards = obs.Default().Counter("mcorr_shard_reshards_total",
		"Live resharding operations completed.")
	obsPairsMoved = obs.Default().Counter("mcorr_shard_pairs_moved_total",
		"Pair models that changed owner across all resharding operations.")
)
