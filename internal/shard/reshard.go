package shard

import (
	"errors"
	"fmt"

	"mcorr/internal/core"
	"mcorr/internal/manager"
)

// ErrInvalidShardCount is returned by Reshard when the requested shard
// count is not positive. Callers retuning topology from config or an
// ops endpoint can match it with errors.Is instead of string-parsing.
var ErrInvalidShardCount = errors.New("shard count must be >= 1")

// Reshard repartitions the live pair graph across n shards without
// retraining: the coordinator drains in-flight scoring (it holds the step
// lock for the duration), collects every trained model, re-keys each pair
// under the new shard count, builds the new shard managers around the
// moved model pointers, and only then closes the old ones. The central
// aggregator — and with it every running Q accumulator — is untouched, so
// fitness trajectories continue bit-identically across the topology
// change. Returns the number of pair models that changed owner.
//
// Thanks to rendezvous hashing the movement is minimal: growing from n to
// n+1 shards moves only the pairs the new shard wins (≈1/(n+1) of the
// graph); no pair ever moves between two surviving shards.
func (c *Coordinator) Reshard(n int) (moved int, err error) {
	if n < 1 {
		return 0, fmt.Errorf("reshard: %w (got %d)", ErrInvalidShardCount, n)
	}
	// Taking the step lock is the drain: Step holds c.mu across the full
	// score→aggregate round, so once the lock is acquired no scoreShard
	// call is outstanding and every outcome of the previous row has been
	// folded. Re-keying before that drain would hand a shard manager to
	// Close mid-score.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("reshard: coordinator is closed")
	}
	// Partition the union of live models under the new topology, counting
	// owner changes against the old assignment.
	parts := make([]map[manager.Pair]*core.Model, n)
	for k := range parts {
		parts[k] = make(map[manager.Pair]*core.Model)
	}
	for oldK, s := range c.shards {
		for p, model := range s.Models() {
			newK := Assign(p.String(), n)
			parts[newK][p] = model
			if newK != oldK {
				moved++
			}
		}
	}
	mcfg := c.cfg
	mcfg.Workers = perShardWorkers(c.cfg.Workers, n)
	next := make([]*manager.Manager, n)
	for k := range next {
		m, err := manager.FromModels(c.ids, parts[k], mcfg)
		if err != nil {
			for _, s := range next {
				if s != nil {
					s.Close()
				}
			}
			return 0, fmt.Errorf("reshard to %d: %w", n, err)
		}
		next[k] = m
	}
	prev := c.shards
	c.rebuild(next)
	for _, s := range prev {
		s.Close()
	}
	obsReshards.Inc()
	obsPairsMoved.Add(uint64(moved))
	return moved, nil
}
