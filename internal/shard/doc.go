// Package shard is the sharded scoring fabric: it partitions the
// l(l−1)/2 measurement-pair graph across N independent manager shards so
// the per-row scoring fan-out, the model memory and the checkpoint I/O
// scale horizontally — while the fitness trajectory stays bit-identical
// to a single unsharded manager.
//
// # Partitioning
//
// Assign maps a canonical pair key ("a/x|b/y") to a shard by rendezvous
// (highest-random-weight) hashing. The assignment is a pure function of
// (key, shard count): no ownership table is persisted, recovery and
// resharding simply recompute it. Growing the fleet from n to n+1 shards
// moves only the ≈1/(n+1) of pairs the new shard wins; no pair ever moves
// between two surviving shards.
//
// # Exactness
//
// Floating-point addition is not associative, so per-shard partial sums
// would change Q in the last ulp. The Coordinator therefore never sums on
// shards: each shard only *scores* its pairs (manager.Manager.ScoreInto),
// scattering per-pair Outcomes into one global slice laid out in the
// canonical sorted pair order, and a single central manager.Aggregator —
// the same code the unsharded Manager.Step uses — folds that slice in the
// identical order. Bit-identity for any shard count is structural, not
// incidental; the property tests in this package and the SIGKILL crash
// tests in internal/testkit enforce it at %.17g precision.
//
// # Resharding
//
// Coordinator.Reshard repartitions live: it drains in-flight scoring,
// re-keys every trained model under the new shard count, rebuilds the
// shard managers around the moved model pointers (no retraining), and
// leaves the central aggregator untouched, so running Q accumulators
// continue seamlessly across the topology change.
//
// # Persistence
//
// SaveState captures the coordinator's topology and aggregation state;
// SaveShard captures one shard's models. The durable pipeline writes the
// per-shard blobs first (one epoch-versioned file per shard) and flips
// the root checkpoint last, making multi-file checkpoints crash-atomic;
// Load reassembles the fleet from the blob set.
//
// Per-shard health is published as mcorr_shard_* metrics (step and
// per-shard score latency, pair counts, reshard activity).
package shard
