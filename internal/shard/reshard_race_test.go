package shard

import (
	"errors"
	"sync"
	"testing"

	"mcorr/internal/manager"
)

// TestReshardInvalidCountTypedError pins the typed error contract: a
// non-positive shard count must come back as ErrInvalidShardCount (never
// a panic), matchable with errors.Is through the wrapped chain.
func TestReshardInvalidCountTypedError(t *testing.T) {
	_, history, _ := fixtures(t, 2, 1)
	coord, err := New(history, Config{Shards: 2, Manager: manager.Config{Workers: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	for _, n := range []int{0, -1, -100} {
		_, err := coord.Reshard(n)
		if err == nil {
			t.Fatalf("Reshard(%d): want error, got nil", n)
		}
		if !errors.Is(err, ErrInvalidShardCount) {
			t.Errorf("Reshard(%d) error %v is not ErrInvalidShardCount", n, err)
		}
	}
	if got := coord.NumShards(); got != 2 {
		t.Fatalf("NumShards after rejected reshards = %d, want 2", got)
	}
}

// TestReshardStepPairStatesInterleaved is the -race regression for the
// reshard/in-flight-step race: one goroutine streams rows, one retunes
// the topology through every count 1–4 (plus rejected counts), and one
// reads PairStates/Pairs concurrently. Reshard must drain the in-flight
// Step before re-keying, so no Step ever scores against a shard manager
// that Reshard already closed. The race detector is the assertion; the
// test also checks the pair graph survives intact.
func TestReshardStepPairStatesInterleaved(t *testing.T) {
	_, history, rows := fixtures(t, 3, 2)
	coord, err := New(history, Config{Shards: 2, Manager: manager.Config{Workers: 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	wantPairs := len(coord.Pairs())

	if len(rows) > 80 {
		rows = rows[:80]
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, row := range rows {
			coord.Step(row)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			n := 1 + i%4
			if _, err := coord.Reshard(n); err != nil {
				t.Errorf("Reshard(%d): %v", n, err)
			}
			if _, err := coord.Reshard(-1); !errors.Is(err, ErrInvalidShardCount) {
				t.Errorf("Reshard(-1) mid-stream: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			states := coord.PairStates()
			if len(states) != wantPairs {
				t.Errorf("PairStates len = %d, want %d", len(states), wantPairs)
			}
			if got := len(coord.Pairs()); got != wantPairs {
				t.Errorf("Pairs len = %d, want %d", got, wantPairs)
			}
			coord.NumShards()
		}
	}()
	wg.Wait()

	if got := len(coord.Pairs()); got != wantPairs {
		t.Fatalf("pair count after interleaving = %d, want %d", got, wantPairs)
	}
}
