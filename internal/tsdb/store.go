package tsdb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/wal"
)

// ErrUnknownMeasurement is returned when querying an ID never appended.
var ErrUnknownMeasurement = errors.New("tsdb: unknown measurement")

// ErrStale is returned when a sample predates data already stored.
var ErrStale = errors.New("tsdb: sample older than stored data")

// PartialAppendError reports a batch append that stopped partway: the
// first Stored samples were applied (and, on a durable store, logged);
// the rest were not. A sender can resume from offset Stored instead of
// re-sending the whole batch. It unwraps to the underlying cause, so
// errors.Is(err, ErrStale) still works.
type PartialAppendError struct {
	// Stored is how many leading samples of the batch were applied.
	Stored int
	// Err is the error that stopped the batch.
	Err error
}

// Error describes the partial append.
func (e *PartialAppendError) Error() string {
	return fmt.Sprintf("tsdb: batch stopped after %d samples: %v", e.Stored, e.Err)
}

// Unwrap returns the underlying cause.
func (e *PartialAppendError) Unwrap() error { return e.Err }

// Sample is one observation of one measurement.
type Sample struct {
	ID    timeseries.MeasurementID
	Time  time.Time
	Value float64
}

// Store is an in-memory time-series database. All methods are safe for
// concurrent use.
type Store struct {
	mu        sync.RWMutex
	step      time.Duration
	retention int // max samples kept per measurement; 0 = unbounded
	series    map[timeseries.MeasurementID]*entry
	wal       *wal.Log // nil = in-memory only; see AttachWAL
}

type entry struct {
	start  time.Time
	values []float64
}

// NewStore returns a store that aligns samples onto a step-sized grid and
// keeps at most retention samples per measurement (0 keeps everything).
func NewStore(step time.Duration, retention int) (*Store, error) {
	if step <= 0 {
		return nil, fmt.Errorf("tsdb step %v: must be positive", step)
	}
	if retention < 0 {
		return nil, fmt.Errorf("tsdb retention %d: must be non-negative", retention)
	}
	return &Store{step: step, retention: retention, series: make(map[timeseries.MeasurementID]*entry)}, nil
}

// Step returns the store's sampling grid.
func (s *Store) Step() time.Duration { return s.step }

// Append stores one sample. Sample times are truncated onto the grid; gaps
// between the previous sample and this one are filled with NaN; a sample
// older than stored data is rejected with ErrStale; a sample for an
// already-filled slot overwrites it only if the slot is the latest. On a
// durable store the sample is in the WAL before Append returns.
func (s *Store) Append(sm Sample) error {
	start := time.Now()
	s.mu.Lock()
	err := s.appendLocked(sm)
	if err == nil && s.wal != nil {
		err = s.walAppendLocked((&[1]Sample{sm})[:])
	}
	s.mu.Unlock()
	obsAppendSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		obsAppendErrors.Inc()
		return err
	}
	obsAppended.Inc()
	return nil
}

// AppendBatch stores samples in order, stopping at the first error. A
// failure partway through returns a *PartialAppendError carrying how many
// leading samples were applied, so the sender can resume from that offset.
// On a durable store exactly the applied prefix is logged to the WAL
// before AppendBatch returns. The collector server acks exactly this
// Stored count back to agents (whether batches reach the store inline or
// through the flow-control admission queue), which is what lets a
// ReliableAgent resume mid-batch without duplicating WAL-logged samples.
func (s *Store) AppendBatch(batch []Sample) error {
	start := time.Now()
	s.mu.Lock()
	var cause error
	stored := 0
	for i, sm := range batch {
		if err := s.appendLocked(sm); err != nil {
			cause = fmt.Errorf("sample %d (%s): %w", i, sm.ID, err)
			break
		}
		stored++
	}
	if s.wal != nil && stored > 0 {
		if werr := s.walAppendLocked(batch[:stored]); werr != nil && cause == nil {
			// Applied in memory but not durably logged: surface it. The
			// samples are in the store, so Stored still counts them and a
			// resume will not re-send (a re-send would be rejected stale).
			cause = werr
		}
	}
	s.mu.Unlock()
	obsAppendSeconds.Observe(time.Since(start).Seconds())
	obsAppended.Add(uint64(stored))
	if cause != nil {
		obsAppendErrors.Inc()
		return &PartialAppendError{Stored: stored, Err: cause}
	}
	return nil
}

func (s *Store) appendLocked(sm Sample) error {
	t := sm.Time.Truncate(s.step)
	e, ok := s.series[sm.ID]
	if !ok {
		e = &entry{start: t}
		s.series[sm.ID] = e
		obsSeries.Inc()
	}
	idx := int(t.Sub(e.start) / s.step)
	switch {
	case len(e.values) == 0:
		e.start = t
		e.values = append(e.values, sm.Value)
	case idx < len(e.values)-1:
		return fmt.Errorf("%s at %v: %w", sm.ID, sm.Time, ErrStale)
	case idx == len(e.values)-1:
		e.values[idx] = sm.Value // overwrite the most recent slot
	default:
		for len(e.values) < idx {
			e.values = append(e.values, math.NaN())
		}
		e.values = append(e.values, sm.Value)
	}
	if s.retention > 0 && len(e.values) > s.retention {
		drop := len(e.values) - s.retention
		e.start = e.start.Add(time.Duration(drop) * s.step)
		e.values = append(e.values[:0], e.values[drop:]...)
	}
	return nil
}

// Query returns a copy of the stored samples for id within [from, to).
func (s *Store) Query(id timeseries.MeasurementID, from, to time.Time) (*timeseries.Series, error) {
	start := time.Now()
	defer func() { obsQuerySeconds.Observe(time.Since(start).Seconds()) }()
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.series[id]
	if !ok {
		return nil, fmt.Errorf("%s: %w", id, ErrUnknownMeasurement)
	}
	full := &timeseries.Series{ID: id, Start: e.start, Step: s.step, Values: e.values}
	return full.Slice(from, to).Clone(), nil
}

// QueryResampled returns the stored samples for id within [from, to)
// downsampled onto a coarser grid (step must be a multiple of the store's
// step); each output sample is the mean of the covered inputs.
func (s *Store) QueryResampled(id timeseries.MeasurementID, from, to time.Time, step time.Duration) (*timeseries.Series, error) {
	raw, err := s.Query(id, from, to)
	if err != nil {
		return nil, err
	}
	return raw.Resample(step)
}

// QueryAll returns a dataset of copies of every measurement restricted to
// [from, to).
func (s *Store) QueryAll(from, to time.Time) *timeseries.Dataset {
	start := time.Now()
	defer func() { obsQuerySeconds.Observe(time.Since(start).Seconds()) }()
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds := timeseries.NewDataset()
	for id, e := range s.series {
		full := &timeseries.Series{ID: id, Start: e.start, Step: s.step, Values: e.values}
		ds.Add(full.Slice(from, to).Clone())
	}
	return ds
}

// IDs returns the stored measurement IDs in stable order.
func (s *Store) IDs() []timeseries.MeasurementID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds := timeseries.NewDataset()
	for id, e := range s.series {
		ds.Add(&timeseries.Series{ID: id, Start: e.start, Step: s.step})
	}
	return ds.IDs()
}

// Len returns the number of stored samples for id (0 when unknown).
func (s *Store) Len(id timeseries.MeasurementID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.series[id]; ok {
		return len(e.values)
	}
	return 0
}

// LastTime returns the timestamp of the most recent sample for id.
func (s *Store) LastTime(id timeseries.MeasurementID) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.series[id]
	if !ok || len(e.values) == 0 {
		return time.Time{}, false
	}
	return e.start.Add(time.Duration(len(e.values)-1) * s.step), true
}

// LoadDataset bulk-inserts a dataset (e.g. generated history) whose series
// must share the store's step.
func (s *Store) LoadDataset(ds *timeseries.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ds.IDs() {
		src := ds.Get(id)
		if src.Step != s.step {
			return fmt.Errorf("load %s with step %v into %v store: %w", id, src.Step, s.step, timeseries.ErrStepMismatch)
		}
		vals := make([]float64, len(src.Values))
		copy(vals, src.Values)
		if _, exists := s.series[id]; !exists {
			obsSeries.Inc()
		}
		obsAppended.Add(uint64(len(vals)))
		s.series[id] = &entry{start: src.Start, values: vals}
		if s.retention > 0 && len(vals) > s.retention {
			e := s.series[id]
			drop := len(vals) - s.retention
			e.start = e.start.Add(time.Duration(drop) * s.step)
			e.values = vals[drop:]
		}
	}
	return nil
}

// snapshot is the gob wire form of the store.
type snapshot struct {
	Step      time.Duration
	Retention int
	Entries   []snapshotEntry
}

type snapshotEntry struct {
	ID     timeseries.MeasurementID
	Start  time.Time
	Values []float64
}

// Snapshot serializes the store to w (gob).
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Step: s.step, Retention: s.retention}
	for id, e := range s.series {
		snap.Entries = append(snap.Entries, snapshotEntry{ID: id, Start: e.start, Values: append([]float64(nil), e.values...)})
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("tsdb snapshot: %w", err)
	}
	return nil
}

// Restore reads a snapshot written by Snapshot and returns the store it
// describes.
func Restore(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("tsdb restore: %w", err)
	}
	s, err := NewStore(snap.Step, snap.Retention)
	if err != nil {
		return nil, fmt.Errorf("tsdb restore: %w", err)
	}
	for _, e := range snap.Entries {
		s.series[e.ID] = &entry{start: e.Start, values: e.Values}
		obsSeries.Inc()
	}
	return s, nil
}
