// Package tsdb is a small concurrency-safe in-memory time-series store: the
// landing zone for samples streamed by the collector and the source the
// models read from. Samples are kept on a fixed sampling grid per
// measurement, with optional ring retention and gob snapshot/restore.
//
// A store can be made durable by attaching a wal.Log (AttachWAL): every
// appended batch is then logged before the append is acknowledged, and
// ReplayWAL reconstructs post-checkpoint state after a crash. Appends,
// queries and snapshot latency are published to the obs registry
// (mcorr_tsdb_*).
package tsdb
