package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/wal"
)

// ErrBadWALRecord is returned when a WAL payload does not decode as a
// sample batch.
var ErrBadWALRecord = errors.New("tsdb: malformed WAL sample record")

// maxWALBatch bounds samples per WAL record, so hostile or damaged
// payloads cannot force a huge allocation during replay.
const maxWALBatch = 1 << 16

// EncodeWALBatch serializes a sample batch into a WAL record payload.
// Layout: uint32 count, then per sample: string machine, string metric
// (uint16 length + bytes each), int64 unix-nano, float64 bits — the same
// shape as the collector wire format, kept separate so the store does not
// depend on the network layer.
func EncodeWALBatch(batch []Sample) ([]byte, error) {
	if len(batch) > maxWALBatch {
		return nil, fmt.Errorf("tsdb: WAL batch of %d samples exceeds limit %d", len(batch), maxWALBatch)
	}
	buf := make([]byte, 4, 4+len(batch)*40)
	binary.BigEndian.PutUint32(buf, uint32(len(batch)))
	for _, s := range batch {
		if len(s.ID.Machine) > math.MaxUint16 || len(s.ID.Metric) > math.MaxUint16 {
			return nil, fmt.Errorf("tsdb: WAL sample id too long (%s)", s.ID)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.ID.Machine)))
		buf = append(buf, s.ID.Machine...)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.ID.Metric)))
		buf = append(buf, s.ID.Metric...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Time.UnixNano()))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Value))
	}
	return buf, nil
}

// DecodeWALBatch parses a payload written by EncodeWALBatch. It never
// panics on damaged input and bounds its allocations.
func DecodeWALBatch(payload []byte) ([]Sample, error) {
	if len(payload) < 4 {
		return nil, ErrBadWALRecord
	}
	count := binary.BigEndian.Uint32(payload[:4])
	if count > maxWALBatch {
		return nil, fmt.Errorf("batch of %d samples: %w", count, ErrBadWALRecord)
	}
	p := payload[4:]
	out := make([]Sample, 0, count)
	for i := uint32(0); i < count; i++ {
		machine, rest, err := cutString(p)
		if err != nil {
			return nil, fmt.Errorf("sample %d machine: %w", i, err)
		}
		metric, rest, err := cutString(rest)
		if err != nil {
			return nil, fmt.Errorf("sample %d metric: %w", i, err)
		}
		if len(rest) < 16 {
			return nil, fmt.Errorf("sample %d body: %w", i, ErrBadWALRecord)
		}
		ns := int64(binary.BigEndian.Uint64(rest[:8]))
		val := math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
		out = append(out, Sample{
			ID:    timeseries.MeasurementID{Machine: machine, Metric: metric},
			Time:  time.Unix(0, ns).UTC(),
			Value: val,
		})
		p = rest[16:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%d trailing bytes: %w", len(p), ErrBadWALRecord)
	}
	return out, nil
}

func cutString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, ErrBadWALRecord
	}
	n := int(binary.BigEndian.Uint16(p[:2]))
	if len(p) < 2+n {
		return "", nil, ErrBadWALRecord
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// AttachWAL makes the store durable: from now on every successfully
// applied sample is appended to l before Append/AppendBatch return (and
// therefore before any collector ack is sent). Appends and log writes are
// serialized under the store lock, so replay order matches apply order.
// Bulk history loads (LoadDataset) and snapshot restores are deliberately
// not logged — they re-create state that is already durable elsewhere.
func (s *Store) AttachWAL(l *wal.Log) {
	s.mu.Lock()
	s.wal = l
	s.mu.Unlock()
}

// WAL returns the attached write-ahead log (nil when the store is purely
// in-memory).
func (s *Store) WAL() *wal.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal
}

// walAppendLocked logs the applied prefix of a batch. Caller holds s.mu.
func (s *Store) walAppendLocked(applied []Sample) error {
	payload, err := EncodeWALBatch(applied)
	if err != nil {
		return err
	}
	if _, err := s.wal.Append(payload); err != nil {
		return fmt.Errorf("tsdb wal append: %w", err)
	}
	return nil
}

// ReplayWAL replays the sample records of the log directory dir with
// sequence numbers > after into the store — the recovery step that brings
// a checkpointed store back to the moment of the crash. Replay is
// idempotent: samples the store already holds (duplicates, or anything
// older than the retained window) are skipped, not errors. It returns the
// samples applied and skipped.
func (s *Store) ReplayWAL(dir string, after uint64) (applied, skipped int, err error) {
	_, err = wal.Replay(dir, after, func(rec wal.Record) error {
		batch, derr := DecodeWALBatch(rec.Data)
		if derr != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, derr)
		}
		s.mu.Lock()
		for _, sm := range batch {
			if aerr := s.appendLocked(sm); aerr != nil {
				skipped++
			} else {
				applied++
			}
		}
		s.mu.Unlock()
		return nil
	})
	if applied > 0 {
		obsReplayed.Add(uint64(applied))
	}
	if err != nil {
		return applied, skipped, fmt.Errorf("tsdb replay: %w", err)
	}
	return applied, skipped, nil
}
