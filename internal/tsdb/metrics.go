package tsdb

import "mcorr/internal/obs"

// Process-global tsdb metrics (mcorr_tsdb_*), aggregated across every
// Store in the process (stores are cheap and short-lived in tests; in
// production there is one).
var (
	obsAppended = obs.Default().Counter("mcorr_tsdb_samples_appended_total",
		"Samples accepted into stores (including gap-filling appends).")
	obsAppendErrors = obs.Default().Counter("mcorr_tsdb_append_errors_total",
		"Samples rejected on append (stale or malformed).")
	obsSeries = obs.Default().Gauge("mcorr_tsdb_series",
		"Distinct measurement series resident across stores.")
	obsAppendSeconds = obs.Default().Histogram("mcorr_tsdb_append_seconds",
		"Latency of one append call (single sample or whole batch).",
		obs.TimeBuckets())
	obsQuerySeconds = obs.Default().Histogram("mcorr_tsdb_query_seconds",
		"Latency of one query call (Query/QueryAll).",
		obs.TimeBuckets())
	obsReplayed = obs.Default().Counter("mcorr_recovery_replayed_total",
		"Samples re-applied from the WAL during startup recovery.")
)
