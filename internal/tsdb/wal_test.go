package tsdb

import (
	"errors"
	"math"
	"testing"
	"time"

	"mcorr/internal/timeseries"
	"mcorr/internal/wal"
)

func durableStore(t *testing.T, dir string) (*Store, *wal.Log) {
	t.Helper()
	s, err := NewStore(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s.AttachWAL(l)
	return s, l
}

func TestWALBatchCodecRoundTrip(t *testing.T) {
	batch := []Sample{
		{ID: timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}, Time: t0, Value: 1.5},
		{ID: timeseries.MeasurementID{Machine: "m2", Metric: "net"}, Time: t0.Add(time.Minute), Value: math.NaN()},
		{ID: timeseries.MeasurementID{Machine: "", Metric: ""}, Time: t0.Add(2 * time.Minute), Value: -0.0},
	}
	payload, err := EncodeWALBatch(batch)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeWALBatch(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i].ID != batch[i].ID || !got[i].Time.Equal(batch[i].Time) {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], batch[i])
		}
		if math.Float64bits(got[i].Value) != math.Float64bits(batch[i].Value) {
			t.Errorf("sample %d value bits differ", i)
		}
	}
}

func TestWALBatchDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0},
		{0xff, 0xff, 0xff, 0xff}, // absurd count
		{0, 0, 0, 1},             // count 1, no body
		{0, 0, 0, 1, 0, 3, 'a'},  // short machine string
		{0, 0, 0, 0, 0xde, 0xad}, // trailing bytes
	}
	for _, in := range cases {
		if _, err := DecodeWALBatch(in); err == nil {
			t.Errorf("DecodeWALBatch(%x): want error", in)
		}
	}
}

func TestDurableStoreLogsBeforeReturn(t *testing.T) {
	dir := t.TempDir()
	s, l := durableStore(t, dir)
	if err := s.Append(Sample{ID: idCPU, Time: t0, Value: 1}); err != nil {
		t.Fatal(err)
	}
	batch := []Sample{
		{ID: idCPU, Time: t0.Add(time.Minute), Value: 2},
		{ID: idNet, Time: t0, Value: 3},
	}
	if err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (one record per append call)", l.LastSeq())
	}
	l.Close()

	// A fresh store replaying the WAL reproduces the exact contents.
	s2, err := NewStore(time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := s2.ReplayWAL(dir, 0)
	if err != nil || applied != 3 || skipped != 0 {
		t.Fatalf("ReplayWAL = %d applied, %d skipped, %v", applied, skipped, err)
	}
	for _, id := range []timeseries.MeasurementID{idCPU, idNet} {
		a, _ := s.Query(id, t0, t0.Add(time.Hour))
		b, err := s2.Query(id, t0, t0.Add(time.Hour))
		if err != nil {
			t.Fatalf("recovered store missing %s: %v", id, err)
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s: %d vs %d values", id, len(a.Values), len(b.Values))
		}
		for i := range a.Values {
			if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
				t.Fatalf("%s value %d differs after replay", id, i)
			}
		}
	}
}

func TestReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, l := durableStore(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	// Replaying into the SAME store: everything is a duplicate. The final
	// slot is an overwrite (allowed), earlier ones are stale skips.
	applied, skipped, err := s.ReplayWAL(dir, 0)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if applied+skipped != 5 {
		t.Fatalf("applied %d + skipped %d != 5", applied, skipped)
	}
	if skipped < 4 {
		t.Fatalf("skipped = %d, want ≥ 4 duplicates rejected", skipped)
	}
	if s.Len(idCPU) != 5 {
		t.Fatalf("Len = %d after idempotent replay, want 5", s.Len(idCPU))
	}
}

func TestReplayAfterSeqSkipsCheckpointedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, l := durableStore(t, dir)
	for i := 0; i < 6; i++ {
		if err := s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mark := l.LastSeq() - 2 // pretend a checkpoint covered all but the last two
	s2, _ := NewStore(time.Minute, 0)
	applied, _, err := s2.ReplayWAL(dir, mark)
	if err != nil || applied != 2 {
		t.Fatalf("ReplayWAL(after=%d) applied %d, %v; want 2", mark, applied, err)
	}
}

func TestPartialAppendErrorReportsStored(t *testing.T) {
	s := newStore(t, 0)
	batch := []Sample{
		{ID: idCPU, Time: t0.Add(time.Minute), Value: 1},
		{ID: idNet, Time: t0, Value: 2},
		{ID: idCPU, Time: t0, Value: 3}, // stale: slot before the stored one
		{ID: idNet, Time: t0.Add(time.Minute), Value: 4},
	}
	err := s.AppendBatch(batch)
	if err == nil {
		t.Fatal("stale batch member: want error")
	}
	var pe *PartialAppendError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PartialAppendError", err)
	}
	if pe.Stored != 2 {
		t.Fatalf("Stored = %d, want 2", pe.Stored)
	}
	if !errors.Is(err, ErrStale) {
		t.Fatalf("error %v does not unwrap to ErrStale", err)
	}
	if s.Len(idNet) != 1 {
		t.Fatalf("net samples = %d, want 1 (batch stops at the failure)", s.Len(idNet))
	}
}

func TestDurableStorePartialBatchLogsOnlyAppliedPrefix(t *testing.T) {
	dir := t.TempDir()
	s, l := durableStore(t, dir)
	batch := []Sample{
		{ID: idCPU, Time: t0.Add(time.Minute), Value: 1},
		{ID: idCPU, Time: t0, Value: 2}, // stale
		{ID: idNet, Time: t0, Value: 3},
	}
	err := s.AppendBatch(batch)
	var pe *PartialAppendError
	if !errors.As(err, &pe) || pe.Stored != 1 {
		t.Fatalf("err = %v, want PartialAppendError{Stored: 1}", err)
	}
	l.Close()
	s2, _ := NewStore(time.Minute, 0)
	applied, skipped, err := s2.ReplayWAL(dir, 0)
	if err != nil || applied != 1 || skipped != 0 {
		t.Fatalf("replay = %d applied, %d skipped, %v; want exactly the applied prefix", applied, skipped, err)
	}
}
