package tsdb

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"mcorr/internal/timeseries"
)

var (
	idCPU = timeseries.MeasurementID{Machine: "m1", Metric: "cpu"}
	idNet = timeseries.MeasurementID{Machine: "m2", Metric: "net"}
	t0    = timeseries.MonitoringStart
)

func newStore(t *testing.T, retention int) *Store {
	t.Helper()
	s, err := NewStore(time.Minute, retention)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0, 0); err == nil {
		t.Error("zero step: want error")
	}
	if _, err := NewStore(time.Second, -1); err == nil {
		t.Error("negative retention: want error")
	}
}

func TestAppendAndQuery(t *testing.T) {
	s := newStore(t, 0)
	for i := 0; i < 5; i++ {
		if err := s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := s.Query(idCPU, t0, t0.Add(5*time.Minute))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got.Len() != 5 || got.Values[3] != 3 {
		t.Errorf("Query = %v", got.Values)
	}
	if s.Len(idCPU) != 5 || s.Len(idNet) != 0 {
		t.Errorf("Len = %d / %d", s.Len(idCPU), s.Len(idNet))
	}
	if s.Step() != time.Minute {
		t.Errorf("Step = %v", s.Step())
	}
}

func TestQueryUnknown(t *testing.T) {
	s := newStore(t, 0)
	if _, err := s.Query(idCPU, t0, t0.Add(time.Hour)); err == nil {
		t.Error("unknown measurement: want error")
	}
}

func TestAppendGapFillsNaN(t *testing.T) {
	s := newStore(t, 0)
	s.Append(Sample{ID: idCPU, Time: t0, Value: 1})
	s.Append(Sample{ID: idCPU, Time: t0.Add(3 * time.Minute), Value: 4})
	got, err := s.Query(idCPU, t0, t0.Add(4*time.Minute))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got.Len() != 4 {
		t.Fatalf("Len = %d", got.Len())
	}
	if !math.IsNaN(got.Values[1]) || !math.IsNaN(got.Values[2]) {
		t.Errorf("gap should be NaN: %v", got.Values)
	}
	if got.Values[3] != 4 {
		t.Errorf("Values[3] = %g", got.Values[3])
	}
}

func TestAppendStaleRejected(t *testing.T) {
	s := newStore(t, 0)
	s.Append(Sample{ID: idCPU, Time: t0.Add(5 * time.Minute), Value: 1})
	if err := s.Append(Sample{ID: idCPU, Time: t0, Value: 2}); err == nil {
		t.Error("stale sample: want error")
	}
	// Overwriting the latest slot is allowed (collector retry).
	if err := s.Append(Sample{ID: idCPU, Time: t0.Add(5 * time.Minute), Value: 9}); err != nil {
		t.Errorf("overwrite latest: %v", err)
	}
	got, _ := s.Query(idCPU, t0, t0.Add(time.Hour))
	if got.Values[got.Len()-1] != 9 {
		t.Error("overwrite did not take effect")
	}
}

func TestAppendTruncatesOntoGrid(t *testing.T) {
	s := newStore(t, 0)
	s.Append(Sample{ID: idCPU, Time: t0.Add(90 * time.Second), Value: 7})
	lt, ok := s.LastTime(idCPU)
	if !ok || !lt.Equal(t0.Add(time.Minute)) {
		t.Errorf("LastTime = %v, %v", lt, ok)
	}
}

func TestRetentionRing(t *testing.T) {
	s := newStore(t, 3)
	for i := 0; i < 10; i++ {
		s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	if s.Len(idCPU) != 3 {
		t.Fatalf("Len = %d, want 3", s.Len(idCPU))
	}
	got, _ := s.Query(idCPU, t0, t0.Add(time.Hour))
	want := []float64{7, 8, 9}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Errorf("retained = %v, want %v", got.Values, want)
			break
		}
	}
}

func TestAppendBatchStopsAtError(t *testing.T) {
	s := newStore(t, 0)
	batch := []Sample{
		{ID: idCPU, Time: t0.Add(time.Minute), Value: 1},
		{ID: idCPU, Time: t0, Value: 2}, // stale
		{ID: idNet, Time: t0, Value: 3},
	}
	if err := s.AppendBatch(batch); err == nil {
		t.Fatal("stale batch member: want error")
	}
	if s.Len(idNet) != 0 {
		t.Error("batch should stop at the failing sample")
	}
}

func TestAppendBatchPartialResume(t *testing.T) {
	s := newStore(t, 0)
	batch := []Sample{
		{ID: idCPU, Time: t0, Value: 1},
		{ID: idCPU, Time: t0.Add(time.Minute), Value: 2},
		{ID: idCPU, Time: t0, Value: 3}, // stale: stops the batch here
		{ID: idNet, Time: t0, Value: 4},
	}
	err := s.AppendBatch(batch)
	var pe *PartialAppendError
	if !errors.As(err, &pe) {
		t.Fatalf("AppendBatch: got %v, want *PartialAppendError", err)
	}
	if pe.Stored != 2 {
		t.Fatalf("Stored = %d, want 2", pe.Stored)
	}
	// Resuming from the reported offset (skipping the poisoned sample, as
	// a sender that trims its buffer by Stored and drops the reject would)
	// must deliver the tail exactly once.
	if err := s.AppendBatch(batch[pe.Stored+1:]); err != nil {
		t.Fatalf("resume append: %v", err)
	}
	if got := s.Len(idCPU); got != 2 {
		t.Errorf("cpu samples = %d, want 2 (no duplicates)", got)
	}
	if got := s.Len(idNet); got != 1 {
		t.Errorf("net samples = %d, want 1", got)
	}
	// Re-sending the already-applied prefix must be rejected stale, not
	// silently duplicated — the property the ack protocol relies on.
	if err := s.AppendBatch(batch[:1]); err == nil {
		t.Error("re-sent prefix: want stale error")
	}
}

func TestQueryAllAndIDs(t *testing.T) {
	s := newStore(t, 0)
	s.Append(Sample{ID: idNet, Time: t0, Value: 1})
	s.Append(Sample{ID: idCPU, Time: t0, Value: 2})
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != idCPU {
		t.Errorf("IDs = %v", ids)
	}
	ds := s.QueryAll(t0, t0.Add(time.Minute))
	if ds.Len() != 2 || ds.Get(idNet).Values[0] != 1 {
		t.Error("QueryAll wrong")
	}
}

func TestQueryReturnsCopy(t *testing.T) {
	s := newStore(t, 0)
	s.Append(Sample{ID: idCPU, Time: t0, Value: 1})
	got, _ := s.Query(idCPU, t0, t0.Add(time.Minute))
	got.Values[0] = 99
	again, _ := s.Query(idCPU, t0, t0.Add(time.Minute))
	if again.Values[0] != 1 {
		t.Error("Query must return a copy")
	}
}

func TestLoadDataset(t *testing.T) {
	s := newStore(t, 0)
	ds := timeseries.NewDataset()
	src, _ := timeseries.NewSeries(idCPU, t0, time.Minute)
	src.Values = []float64{1, 2, 3}
	ds.Add(src)
	if err := s.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if s.Len(idCPU) != 3 {
		t.Errorf("Len = %d", s.Len(idCPU))
	}
	// Step mismatch rejected.
	bad := timeseries.NewDataset()
	b, _ := timeseries.NewSeries(idNet, t0, time.Second)
	b.Values = []float64{1}
	bad.Add(b)
	if err := s.LoadDataset(bad); err == nil {
		t.Error("step mismatch: want error")
	}
	// Retention applies on load.
	s2 := newStore(t, 2)
	if err := s2.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if s2.Len(idCPU) != 2 {
		t.Errorf("retained = %d, want 2", s2.Len(idCPU))
	}
	got, _ := s2.Query(idCPU, t0, t0.Add(time.Hour))
	if got.Values[0] != 2 || got.Values[1] != 3 {
		t.Errorf("retained values = %v", got.Values)
	}
}

func TestLastTimeUnknown(t *testing.T) {
	s := newStore(t, 0)
	if _, ok := s.LastTime(idCPU); ok {
		t.Error("LastTime of unknown should be false")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := newStore(t, 5)
	for i := 0; i < 4; i++ {
		s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i * i)})
	}
	s.Append(Sample{ID: idNet, Time: t0, Value: 7})
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.Step() != time.Minute || r.Len(idCPU) != 4 || r.Len(idNet) != 1 {
		t.Error("restored store differs")
	}
	got, _ := r.Query(idCPU, t0, t0.Add(time.Hour))
	if got.Values[3] != 9 {
		t.Errorf("restored values = %v", got.Values)
	}
	// Restore of garbage fails.
	if _, err := Restore(bytes.NewBufferString("not a gob")); err == nil {
		t.Error("garbage restore: want error")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := newStore(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := timeseries.MeasurementID{Machine: "m", Metric: string(rune('a' + g))}
			for i := 0; i < 500; i++ {
				_ = s.Append(Sample{ID: id, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
				if i%50 == 0 {
					_, _ = s.Query(id, t0, t0.Add(time.Hour))
					s.IDs()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(s.IDs()) != 8 {
		t.Errorf("IDs = %d", len(s.IDs()))
	}
}

func TestQueryResampled(t *testing.T) {
	s := newStore(t, 0)
	for i := 0; i < 6; i++ {
		s.Append(Sample{ID: idCPU, Time: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	got, err := s.QueryResampled(idCPU, t0, t0.Add(6*time.Minute), 2*time.Minute)
	if err != nil {
		t.Fatalf("QueryResampled: %v", err)
	}
	want := []float64{0.5, 2.5, 4.5}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Errorf("resampled = %v, want %v", got.Values, want)
			break
		}
	}
	if _, err := s.QueryResampled(idCPU, t0, t0.Add(time.Hour), 90*time.Second); err == nil {
		t.Error("non-multiple step: want error")
	}
	if _, err := s.QueryResampled(idNet, t0, t0.Add(time.Hour), 2*time.Minute); err == nil {
		t.Error("unknown measurement: want error")
	}
}
