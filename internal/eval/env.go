package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mcorr/internal/mathx"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// EnvConfig sizes the reproduction environment.
type EnvConfig struct {
	// Seed drives every group's generator.
	Seed int64
	// Machines per group; default 12.
	Machines int
	// Days of monitoring data; default 30 (the paper's May 29 – Jun 27).
	Days int
}

func (c EnvConfig) withDefaults() EnvConfig {
	if c.Machines <= 0 {
		c.Machines = 12
	}
	if c.Days <= 0 {
		c.Days = 30
	}
	return c
}

// Group is one simulated company infrastructure with its ground truth.
type Group struct {
	Name    string
	Dataset *timeseries.Dataset
	Truth   *simulator.GroundTruth
	// EventPair is the measurement pair carrying the group's Figure-12
	// problem event, and EventFault its ground-truth window.
	EventPair  [2]timeseries.MeasurementID
	EventFault simulator.Fault
	// SickMachine carries recurring problems through the test window
	// (the Figure-14 localization target).
	SickMachine string
}

// Env is the full reproduction environment: groups A, B and C.
type Env struct {
	Cfg    EnvConfig
	Groups []*Group
}

// NewEnv generates the three groups. Mirroring the paper's events, group
// A's problem occurs in the morning of June 13 and groups B and C's in the
// afternoon; each group also has one chronically sick machine across the
// test days (June 13–25).
func NewEnv(cfg EnvConfig) (*Env, error) {
	cfg = cfg.withDefaults()
	env := &Env{Cfg: cfg}
	eventDay := timeseries.TestStart

	specs := []struct {
		name   string
		fault  simulator.Fault
		metric [2]string // the pair whose link carries the event
	}{
		{
			name: "A",
			// The paper's Group A problem: CurrentUtilization_PORT vs
			// ifOutOctetsRate_PORT, found in the morning.
			fault: simulator.MorningFault("A-event", simulator.MachineName("A", 1),
				simulator.MetricPortUtil, simulator.FaultDecoupledSpike, eventDay, 1),
			metric: [2]string{simulator.MetricPortUtil, simulator.MetricNetOut},
		},
		{
			name: "B",
			// Group B: ifOutOctetsRate vs ifInOctetsRate, afternoon.
			fault: simulator.AfternoonFault("B-event", simulator.MachineName("B", 1),
				simulator.MetricNetOut, simulator.FaultCorrelationBreak, eventDay, 2.5),
			metric: [2]string{simulator.MetricNetOut, simulator.MetricNetIn},
		},
		{
			name: "C",
			// Group C: CurrentUtilization vs ifOutOctetsRate, afternoon.
			// Machine-wide flapping: every metric on the machine follows
			// the flapped load, so each pair stays on its correlation
			// manifold — only the transitions are anomalous. This is the
			// case static detectors cannot see.
			fault: simulator.Fault{
				ID: "C-event", Machine: simulator.MachineName("C", 1),
				Metric: "", Kind: simulator.FaultFlapping,
				Start: eventDay.Add(15 * time.Hour), End: eventDay.Add(17 * time.Hour),
			},
			metric: [2]string{simulator.MetricPortUtil, simulator.MetricNetOut},
		},
	}

	for gi, spec := range specs {
		sick := simulator.MachineName(spec.name, 3)
		faults := []simulator.Fault{spec.fault}
		// The sick machine misbehaves for four hours every test day.
		for d := 0; d < 13; d++ {
			day := timeseries.TestStart.AddDate(0, 0, d)
			faults = append(faults, simulator.Fault{
				ID:      fmt.Sprintf("%s-sick-%d", spec.name, d),
				Machine: sick, Metric: "",
				Kind:  simulator.FaultDecoupledSpike,
				Start: day.Add(12 * time.Hour), End: day.Add(16 * time.Hour),
			})
		}
		ds, gt, err := simulator.Generate(simulator.GroupConfig{
			Name:     spec.name,
			Machines: cfg.Machines,
			Days:     cfg.Days,
			Seed:     cfg.Seed + int64(gi)*1000,
			Faults:   faults,
		})
		if err != nil {
			return nil, fmt.Errorf("env group %s: %w", spec.name, err)
		}
		env.Groups = append(env.Groups, &Group{
			Name:    spec.name,
			Dataset: ds,
			Truth:   gt,
			EventPair: [2]timeseries.MeasurementID{
				{Machine: spec.fault.Machine, Metric: spec.metric[0]},
				{Machine: spec.fault.Machine, Metric: spec.metric[1]},
			},
			EventFault:  spec.fault,
			SickMachine: sick,
		})
	}
	return env, nil
}

// Group returns the named group, or nil.
func (e *Env) Group(name string) *Group {
	for _, g := range e.Groups {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// TrainSet returns the group's training window of the paper's shape:
// `days` whole days starting May 29.
func (g *Group) TrainSet(days int) *timeseries.Dataset {
	from, to := timeseries.TrainingSplit(days)
	return g.Dataset.Slice(from, to)
}

// TestSet returns the group's test window: `days` whole days starting
// June 13.
func (g *Group) TestSet(days int) *timeseries.Dataset {
	from, to := timeseries.TestSplit(days)
	return g.Dataset.Slice(from, to)
}

// PairPoints aligns a measurement pair over [from, to).
func (g *Group) PairPoints(a, b timeseries.MeasurementID, from, to time.Time) ([]mathx.Point2, error) {
	sa := g.Dataset.Get(a)
	sb := g.Dataset.Get(b)
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("group %s: unknown pair %s ~ %s", g.Name, a, b)
	}
	pts, _, err := timeseries.AlignPair(sa.Slice(from, to), sb.Slice(from, to))
	return pts, err
}

// SelectionCriteria mirror the paper's §6 measurement-selection rules.
type SelectionCriteria struct {
	// Max measurements to select; 0 selects all qualifying.
	Max int
	// MinCV is the minimum coefficient of variation ("high variance
	// during the monitoring period"); default 0.05.
	MinCV float64
	// ExcludeLinear drops measurements having |Pearson| ≥ LinearR with
	// any other candidate ("do not have any linear relationships").
	ExcludeLinear bool
	// LinearR is the linear-relationship cutoff; default 0.95.
	LinearR float64
}

// SelectMeasurements applies the criteria over the given window and
// returns qualifying IDs ranked by descending coefficient of variation.
func SelectMeasurements(ds *timeseries.Dataset, from, to time.Time, crit SelectionCriteria) []timeseries.MeasurementID {
	if crit.MinCV == 0 {
		crit.MinCV = 0.05
	}
	if crit.LinearR == 0 {
		crit.LinearR = 0.95
	}
	window := ds.Slice(from, to)
	type cand struct {
		id timeseries.MeasurementID
		cv float64
	}
	var cands []cand
	for _, id := range window.IDs() {
		s := window.Get(id)
		mean, std := s.Stats()
		if math.IsNaN(mean) || mean == 0 {
			continue
		}
		cv := std / math.Abs(mean)
		if cv >= crit.MinCV {
			cands = append(cands, cand{id: id, cv: cv})
		}
	}
	if crit.ExcludeLinear {
		// Drop any candidate with a (near-)linear relationship to another.
		linear := make(map[timeseries.MeasurementID]bool)
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if linear[cands[i].id] && linear[cands[j].id] {
					continue
				}
				pts, _, err := timeseries.AlignPair(window.Get(cands[i].id), window.Get(cands[j].id))
				if err != nil || len(pts) < 3 {
					continue
				}
				xs := make([]float64, len(pts))
				ys := make([]float64, len(pts))
				for k, p := range pts {
					xs[k], ys[k] = p.X, p.Y
				}
				r, err := mathx.Pearson(xs, ys)
				if err == nil && math.Abs(r) >= crit.LinearR {
					linear[cands[i].id] = true
					linear[cands[j].id] = true
				}
			}
		}
		kept := cands[:0]
		for _, c := range cands {
			if !linear[c.id] {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cv != cands[j].cv {
			return cands[i].cv > cands[j].cv
		}
		return cands[i].id.Less(cands[j].id)
	})
	if crit.Max > 0 && len(cands) > crit.Max {
		cands = cands[:crit.Max]
	}
	out := make([]timeseries.MeasurementID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Subset returns a dataset restricted to the given measurements.
func Subset(ds *timeseries.Dataset, ids []timeseries.MeasurementID) *timeseries.Dataset {
	out := timeseries.NewDataset()
	for _, id := range ids {
		if s := ds.Get(id); s != nil {
			out.Add(s)
		}
	}
	return out
}
