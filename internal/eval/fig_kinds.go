package eval

import (
	"fmt"
	"math"
	"time"

	"mcorr/internal/core"
	"mcorr/internal/simulator"
	"mcorr/internal/timeseries"
)

// FaultKindSweep is an extension experiment: one trace per fault kind,
// each injecting a two-hour event-day fault into the ifOut metric of one
// machine, measured on the directly affected ifIn~ifOut link. It answers
// "which failure modes does the transition model catch, and how hard?"
func FaultKindSweep(env *Env) (*Figure, error) {
	day := timeseries.TestStart
	machine := simulator.MachineName("K", 1)
	tab := &Table{
		Title:   "Per-kind detection on the affected pair (train 8 days, test the event day, alarm at Q < 0.5)",
		Columns: []string{"fault kind", "min Q in fault", "fault mean Q", "normal mean Q", "detected", "false-alarm rate"},
	}
	var notes []string
	detected := 0
	kinds := simulator.FaultKinds()
	for _, kind := range kinds {
		mag := 1.0
		if kind == simulator.FaultCorrelationBreak {
			mag = 2.5
		}
		fault := simulator.Fault{
			ID: "sweep-" + kind.String(), Machine: machine, Metric: simulator.MetricNetOut,
			Kind: kind, Start: day.Add(9 * time.Hour), End: day.Add(11 * time.Hour), Magnitude: mag,
		}
		ds, gt, err := simulator.Generate(simulator.GroupConfig{
			Name: "K", Machines: 4, Days: 16, Seed: env.Cfg.Seed + 77,
			Faults: []simulator.Fault{fault},
		})
		if err != nil {
			return nil, fmt.Errorf("fault sweep %s: %w", kind, err)
		}
		g := &Group{Name: "K", Dataset: ds, Truth: gt}
		a := timeseries.MeasurementID{Machine: machine, Metric: simulator.MetricNetIn}
		b := timeseries.MeasurementID{Machine: machine, Metric: simulator.MetricNetOut}
		fit, _, _, err := pairTimeline(g, a, b, 8, day, day.AddDate(0, 0, 1), core.Config{Adaptive: true})
		if err != nil {
			return nil, fmt.Errorf("fault sweep %s: %w", kind, err)
		}
		m := EvaluateDetection(fit, gt, 0.5)
		minQ := math.Inf(1)
		for _, s := range fit {
			if fault.ActiveAt(s.Time) && s.Score < minQ {
				minQ = s.Score
			}
		}
		if m.Detected == m.Events && m.Events > 0 {
			detected++
		}
		tab.AddRow(kind.String(),
			fmt.Sprintf("%.3f", minQ),
			fmt.Sprintf("%.3f", m.FaultMean), fmt.Sprintf("%.3f", m.NormalMean),
			fmt.Sprintf("%d/%d", m.Detected, m.Events),
			fmt.Sprintf("%.3f", m.FalseAlarmRate))
	}
	if detected == len(kinds) {
		notes = append(notes, "Every fault kind — spatial (decoupled, level shift, correlation break) and temporal (stuck value, flapping) — is caught on the affected link, because both the joint position and the joint transition are modeled.")
	} else {
		notes = append(notes, fmt.Sprintf("Detected %d of %d fault kinds.", detected, len(kinds)))
	}
	return &Figure{
		ID:     "faultkinds",
		Title:  "Detection quality by fault kind (extension)",
		Tables: []*Table{tab},
		Notes:  notes,
	}, nil
}
